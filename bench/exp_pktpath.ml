(* Vectorized packet-path macro benchmark.

   Pushes the same trace through the switch -> NAT -> monitor chain at
   several batching factors and reports end-to-end packets per second of
   wall time, so the BENCH_micro.json history tracks what the
   Packet_batch data path buys over the scalar one.

   --batch 1 runs the true scalar path: one engine event per packet at
   every hop (Trace.replay into Switch.receive, scalar links, scalar MB
   injection).  --batch N (N > 1) runs the batch path: the trace is
   grouped through a size-or-deadline window, the switch classifies each
   batch in one flow-table pass, and NAT and monitor use their
   vectorized receive_batch hooks, so the whole chain costs one engine
   event per batch per hop.

   bench pktpath [--batch N]... sweeps the requested factors (default
   1, 16, 64, 256), appending one "pktpath-bN" row per factor.  With
   --min-speedup S the run fails unless the best batched factor reaches
   S x the batch-1 packet rate — the perf gate for the batch path. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_traffic

(* Set by the driver (bench pktpath --batch N [--batch N...]
   / --min-speedup S). *)
let batches : int list ref = ref []
let min_speedup : float option ref = ref None

let default_batches = [ 1; 16; 64; 256 ]
let packets = 200_000
let flow_count = 4_096
let inter_arrival = Time.us 1.0
let window = Time.us 500.0
let internal_prefix = "10.0.0.0/8"

let fast_cost base = { base with Southbound.per_packet = Time.us 1.0 }

let tuple_of_flow i =
  {
    Five_tuple.src_ip = Addr.of_int (Addr.to_int (Addr.of_string "10.0.0.1") + (i / 16_384));
    dst_ip = Addr.of_string "1.1.1.5";
    src_port = 1_024 + (i mod 16_384);
    dst_port = 443;
    proto = Packet.Tcp;
  }

(* The same trace for every factor: [packets] data packets round-robined
   over [flow_count] flows at a fixed arrival spacing.  Materialized
   once, outside the measured region. *)
let make_trace () =
  Trace.of_packets
    (List.init packets (fun i ->
         let tup = tuple_of_flow (i mod flow_count) in
         Packet.make ~id:i
           ~ts:(Time.seconds (Time.to_seconds inter_arrival *. float_of_int i))
           ~src_ip:tup.Five_tuple.src_ip ~dst_ip:tup.dst_ip ~src_port:tup.src_port
           ~dst_port:tup.dst_port ~proto:tup.proto ()))

type result = {
  r_batch : int;
  r_pps : float;
  r_wall : float;
  r_events : int;
  r_occupancy : float;  (* mean members per switch batch (1.0 scalar) *)
  r_pool_hw : int;  (* peak outstanding batches across the run's pools *)
  r_minor_words : float;
}

let run_one trace ~batch =
  let tel = Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  let nat =
    Nat.create engine ~telemetry:tel ~name:"nat" ~cost:(fast_cost Nat.default_cost)
      ~external_ip:(Addr.of_string "5.5.5.0")
      ~external_ips:(List.init 2 (fun i -> Addr.of_int (Addr.to_int (Addr.of_string "5.5.5.0") + i + 1)))
      ~internal_prefix:(Addr.prefix_of_string internal_prefix)
      ()
  in
  let monitor =
    Monitor.create engine ~telemetry:tel ~name:"monitor"
      ~cost:(fast_cost Monitor.default_cost) ()
  in
  let egress = ref 0 in
  Mb_base.set_egress (Nat.base nat) (Monitor.receive monitor);
  Mb_base.set_egress (Monitor.base monitor) (fun _ -> incr egress);
  let sw = Switch.create engine ~telemetry:tel ~name:"edge" () in
  let to_nat = Link.create engine ~name:"sw-nat" ~dst:(Nat.receive nat) () in
  Switch.attach_port sw ~port:"nat" to_nat;
  ignore
    (Flow_table.install (Switch.table sw) ~priority:1 ~match_:Hfl.any
       ~action:(Flow_table.Forward "nat"));
  let pool = Packet_batch.pool ~telemetry:tel () in
  if batch > 1 then begin
    Link.set_dst_batch to_nat (Nat.receive_batch nat);
    Mb_base.set_egress_batch (Nat.base nat) (Monitor.receive_batch monitor);
    Mb_base.set_egress_batch (Monitor.base monitor) (fun b ->
        egress := !egress + Packet_batch.length b;
        Packet_batch.release b)
  end;
  (* Opt-in observability (--dash): the 0.2 s virtual horizon suits the
     scraper's default 1 ms cadence.  A dashboard run is a demo, not a
     gated number. *)
  let obs =
    if !Util.dash then begin
      let ts, slo = Util.attach_obs tel engine in
      Mb_base.register_series (Nat.base nat) ts;
      Mb_base.register_series (Monitor.base monitor) ts;
      Some (ts, slo)
    end
    else None
  in
  (* Setup (trace scheduling) happens inside the measured region for
     both modes — it is the injection half of the data path. *)
  let t0 = Monotonic_clock.now () in
  let mw0 = Gc.minor_words () in
  if batch > 1 then
    Trace.replay_batched engine trace ~pool ~batch ~window
      ~into:(Switch.receive_batch sw) ()
  else Trace.replay engine trace ~into:(Switch.receive sw);
  Engine.run engine;
  let mw1 = Gc.minor_words () in
  let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  if !egress <> packets then
    failwith
      (Printf.sprintf "pktpath: batch %d delivered %d of %d packets" batch !egress
         packets);
  if Nat.mapping_count nat <> flow_count then
    failwith
      (Printf.sprintf "pktpath: batch %d created %d of %d NAT mappings" batch
         (Nat.mapping_count nat) flow_count);
  let h_occ = Telemetry.histogram tel "switch.batch_occupancy" in
  (* observe_count stores a count k as k ns, and hist_sum reports
     seconds — scale back to raw counts. *)
  let occupancy =
    if Telemetry.hist_count h_occ = 0 then 1.0
    else Telemetry.hist_sum h_occ *. 1e9 /. float_of_int (Telemetry.hist_count h_occ)
  in
  let pool_hw =
    max (Packet_batch.pool_high_water pool)
      (Packet_batch.pool_high_water (Switch.batch_pool sw))
  in
  Util.maybe_dash obs;
  {
    r_batch = batch;
    r_pps = float_of_int packets /. wall;
    r_wall = wall;
    r_events = Engine.executed engine;
    r_occupancy = occupancy;
    r_pool_hw = pool_hw;
    r_minor_words = mw1 -. mw0;
  }

let run () =
  let factors = match !batches with [] -> default_batches | l -> List.rev l in
  Util.banner
    (Printf.sprintf "pktpath: %d packets / %d flows through switch+NAT+monitor" packets
       flow_count);
  let trace = make_trace () in
  let results = List.map (fun batch -> run_one trace ~batch) factors in
  let base =
    List.find_opt (fun r -> r.r_batch = 1) results |> Option.map (fun r -> r.r_pps)
  in
  Util.row "  %-8s %14s %10s %12s %10s %9s %8s %14s\n" "batch" "packets/sec" "speedup"
    "events" "occupancy" "pool hw" "wall s" "minor words/pkt";
  List.iter
    (fun r ->
      let speedup =
        match base with Some b when b > 0.0 -> r.r_pps /. b | _ -> Float.nan
      in
      Util.row "  %-8d %14.0f %9.2fx %12d %10.1f %9d %8.2f %14.1f\n" r.r_batch r.r_pps
        speedup r.r_events r.r_occupancy r.r_pool_hw r.r_wall
        (r.r_minor_words /. float_of_int packets))
    results;
  let open Openmb_wire in
  List.iter
    (fun r ->
      Util.append_row
        (Printf.sprintf "pktpath-b%d" r.r_batch)
        (Json.Assoc
           [
             ("packets", Json.Int packets);
             ("flows", Json.Int flow_count);
             ("batch", Json.Int r.r_batch);
             ("packets_per_sec", Json.Float r.r_pps);
             ("wall_seconds", Json.Float r.r_wall);
             ("events_executed", Json.Int r.r_events);
             ("batch_occupancy_mean", Json.Float r.r_occupancy);
             ("batch_pool_high_water", Json.Int r.r_pool_hw);
             ("minor_words_per_packet", Json.Float (r.r_minor_words /. float_of_int packets));
           ]))
    results;
  match !min_speedup with
  | None -> ()
  | Some gate -> (
    match base with
    | None -> failwith "pktpath: --min-speedup needs --batch 1 in the sweep"
    | Some b ->
      let best =
        List.fold_left
          (fun acc r -> if r.r_batch > 1 then Float.max acc (r.r_pps /. b) else acc)
          0.0 results
      in
      if best < gate then
        failwith
          (Printf.sprintf "pktpath: best batched speedup %.2fx below the --min-speedup %.2fx gate"
             best gate)
      else Util.row "  [gate] best batched speedup %.2fx >= %.2fx\n" best gate)
