(* Bechamel micro-benchmarks of the hot primitives: flow-table lookup,
   state-table find/insert, JSON codec, chunk sealing, LZSS compression
   and RE encoding — plus one tracked macro, a full 1k-flow move with
   compression on.

   The harness is hermetic: every benchmark builds its fixtures inside
   its own thunk and the heap is compacted between benchmarks, so one
   benchmark's long-lived fixtures (e.g. a 10k-entry state table) can't
   inflate another's GC costs.  The PR-1 "regressions" of
   hfl.matches_packet and re.encode were exactly that kind of
   cross-benchmark interference.

   With [json_label] set (main.exe micro --json [--label NAME]) the
   results are also merged into BENCH_micro.json under that label, so
   the perf trajectory of the packet path is tracked across PRs.
   [compare_files] backs the --compare subcommand: it diffs two result
   files and fails on >20%% regressions. *)

open Bechamel
open Openmb_net

(* Set by the driver: when [Some label], results are written to
   BENCH_micro.json under that label. *)
let json_label : string option ref = ref None

let mk_packet i =
  Packet.make ~id:i ~ts:Openmb_sim.Time.zero
    ~src_ip:(Addr.of_int (0x0A000000 lor (i land 0xFFFF)))
    ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(1024 + (i land 0x3FFF)) ~dst_port:80
    ~proto:Packet.Tcp ()

let mk_tuple i =
  {
    Five_tuple.src_ip = Addr.of_int (0x0A000000 lor (i land 0xFFFFFF));
    dst_ip = Addr.of_string "1.1.1.10";
    src_port = 1024 + (i land 0x3FFF);
    dst_port = 80;
    proto = Packet.Tcp;
  }

(* ------------------------------------------------------------------ *)
(* Micro benchmarks.  Each is a thunk so its fixtures are allocated    *)
(* only while it is the one being measured.                            *)
(* ------------------------------------------------------------------ *)

let flow_table_lookup () =
  let table = Flow_table.create () in
  for i = 0 to 99 do
    ignore
      (Flow_table.install table ~priority:i
         ~match_:[ Hfl.Src_ip (Addr.prefix (Addr.of_int (0x0A000000 lor (i lsl 8))) 24) ]
         ~action:(Flow_table.Forward (string_of_int i)))
  done;
  let p = mk_packet 7 in
  Test.make ~name:"flow_table.lookup (100 rules)"
    (Staged.stage (fun () -> ignore (Flow_table.lookup table p)))

let flow_table_lookup_exact () =
  (* Full five-tuple rules: the exact-match case switch tables are
     dominated by in practice. *)
  let table = Flow_table.create () in
  for i = 0 to 99 do
    let tup = mk_tuple i in
    ignore
      (Flow_table.install table ~priority:5
         ~match_:(Hfl.key_of_tuple Hfl.full_granularity tup)
         ~action:(Flow_table.Forward (string_of_int i)))
  done;
  let p = mk_packet 7 in
  Test.make ~name:"flow_table.lookup (100 exact rules)"
    (Staged.stage (fun () -> ignore (Flow_table.lookup table p)))

let big_state_table () =
  let t = Openmb_mbox.State_table.create ~granularity:Hfl.full_granularity () in
  for i = 0 to 9_999 do
    ignore (Openmb_mbox.State_table.find_or_create t (mk_tuple i) ~default:(fun () -> i))
  done;
  (t, mk_tuple 1234)

let state_table_find () =
  let t, tup = big_state_table () in
  Test.make ~name:"state_table.find (full, 10k entries)"
    (Staged.stage (fun () -> ignore (Openmb_mbox.State_table.find t tup)))

let state_table_find_or_create () =
  let t, tup = big_state_table () in
  Test.make ~name:"state_table.find_or_create (hit)"
    (Staged.stage (fun () ->
         ignore (Openmb_mbox.State_table.find_or_create t tup ~default:(fun () -> 0))))

let state_table_insert () =
  let t = Openmb_mbox.State_table.create ~granularity:Hfl.full_granularity () in
  let keys =
    Array.init 256 (fun i -> Hfl.key_of_tuple Hfl.full_granularity (mk_tuple i))
  in
  let i = ref 0 in
  Test.make ~name:"state_table.insert (full)"
    (Staged.stage (fun () ->
         let k = keys.(!i land 255) in
         incr i;
         Openmb_mbox.State_table.insert t ~key:k !i))

let json_codec () =
  let text =
    Openmb_wire.Json.to_string
      (Openmb_wire.Json.Assoc
         [
           ("op", Openmb_wire.Json.Int 42);
           ("type", Openmb_wire.Json.String "putSupportPerflow");
           ( "chunk",
             Openmb_wire.Json.Assoc
               [
                 ("key", Openmb_wire.Json.String "nw_src=10.0.0.1/32,tp_src=1234");
                 ("cipher", Openmb_wire.Json.String (String.make 200 'x'));
               ] );
         ])
  in
  Test.make ~name:"json.parse (protocol message)"
    (Staged.stage (fun () -> ignore (Openmb_wire.Json.of_string text)))

let put_chunk_msg () =
  let chunk =
    Openmb_core.Chunk.seal ~mb_kind:"bro" ~role:Openmb_core.Taxonomy.Supporting
      ~partition:Openmb_core.Taxonomy.Per_flow
      ~key:(Hfl.key_of_tuple Hfl.full_granularity (mk_tuple 17))
      ~plain:(String.make 200 's')
  in
  {
    Openmb_core.Message.op = 42;
    tid = 0;
    req = Openmb_core.Message.Put_support_perflow { seq = 42; chunk };
  }

let message_encode_json () =
  let msg = put_chunk_msg () in
  Test.make ~name:"message.encode (put chunk, json)"
    (Staged.stage (fun () ->
         ignore (Openmb_wire.Json.to_string (Openmb_core.Message.request_to_json msg))))

let message_encode_binary () =
  let msg = put_chunk_msg () in
  Test.make ~name:"message.encode (put chunk, binary)"
    (Staged.stage (fun () ->
         ignore
           (Openmb_core.Message.request_to_wire ~framing:Openmb_wire.Framing.Binary msg)))

let chunk_seal () =
  let plain = String.make 202 's' in
  Test.make ~name:"chunk.seal (202B)"
    (Staged.stage (fun () ->
         ignore
           (Openmb_core.Chunk.seal ~mb_kind:"bro" ~role:Openmb_core.Taxonomy.Supporting
              ~partition:Openmb_core.Taxonomy.Per_flow ~key:Hfl.any ~plain)))

let lzss () =
  let payload =
    String.concat "" (List.init 20 (fun i -> Printf.sprintf "{\"f\":%d,\"s\":\"state\"}" i))
  in
  Test.make ~name:"compress.lzss (400B json)"
    (Staged.stage (fun () -> ignore (Openmb_wire.Compress.compress payload)))

let re_encode () =
  let engine = Openmb_sim.Engine.create () in
  let enc = Openmb_mbox.Re_encoder.create engine ~name:"enc" () in
  Openmb_mbox.Mb_base.set_egress (Openmb_mbox.Re_encoder.base enc) (fun _ -> ());
  let counter = ref 0 in
  Test.make ~name:"re.encode (16-token packet)"
    (Staged.stage (fun () ->
         incr counter;
         let p =
           Packet.make ~id:!counter ~ts:(Openmb_sim.Engine.now engine)
             ~body:(Packet.Raw (Payload.of_tokens (Array.init 16 (fun k -> (!counter land 0xFF) + k))))
             ~src_ip:(Addr.of_string "10.0.0.1") ~dst_ip:(Addr.of_string "1.1.1.5")
             ~src_port:1024 ~dst_port:80 ~proto:Packet.Tcp ()
         in
         (* Drive the real encode path through the engine. *)
         Openmb_mbox.Re_encoder.receive enc p;
         Openmb_sim.Engine.run engine))

let hfl_match () =
  let hfl = Hfl.of_string "nw_src=10.0.0.0/8,tp_dst=80,proto=tcp" in
  let p = mk_packet 3 in
  Test.make ~name:"hfl.matches_packet"
    (Staged.stage (fun () -> ignore (Hfl.matches_packet hfl p)))

(* The scheduler hot path at scale: a standing population of 100k
   parked timeouts (a large connection table's worth of pending idle
   timers) while dense near-future events — packet arrivals — are
   scheduled and drained.  Each op schedules 100 events spread over
   200us and runs the engine 1ms forward. *)
let engine_dense_timers () =
  let open Openmb_sim in
  let engine = Engine.create () in
  let fired = ref 0 in
  let tick () = incr fired in
  for _ = 1 to 100_000 do
    ignore (Engine.schedule_at engine (Time.seconds 3600.0) tick)
  done;
  Test.make ~name:"engine.run (100 dense timers, 100k parked)"
    (Staged.stage (fun () ->
         let now = Engine.now engine in
         for i = 1 to 100 do
           ignore (Engine.schedule_at engine Time.(now + Time.us (float_of_int (2 * i))) tick)
         done;
         Engine.run ~until:Time.(now + Time.ms 1.0) engine))

(* A burst of messages through a channel: serialization bookkeeping,
   one delivery event per message, and the drain.  The canonical
   per-packet event the pooled representation targets — 64 in flight,
   because under load the queue always holds a window of undelivered
   packets (a single-message ping-pong would only measure the
   empty-queue edge case). *)
let channel_in_flight = 64

let channel_delivery () =
  let open Openmb_sim in
  let engine = Engine.create () in
  let delivered = ref 0 in
  let ch =
    Channel.create engine ~latency:(Time.us 10.0) ~bytes_per_sec:1e9
      ~deliver:(fun (_ : int) -> incr delivered)
      ()
  in
  Test.make ~name:"channel.send+deliver (64 in flight)"
    (Staged.stage (fun () ->
         for i = 1 to channel_in_flight do
           Channel.send ch ~bytes:(64 * i) 42
         done;
         Engine.run engine))

(* Telemetry-enabled twins of the two tracked scheduler rows: same
   workload with a live metric registry attached, so the overhead of
   the counter increments on the hot path is itself a tracked number
   (the perfgate holds the pair within a few percent). *)
let engine_dense_timers_telemetry () =
  let open Openmb_sim in
  let engine = Engine.create ~telemetry:(Telemetry.create ()) () in
  let fired = ref 0 in
  let tick () = incr fired in
  for _ = 1 to 100_000 do
    ignore (Engine.schedule_at engine (Time.seconds 3600.0) tick)
  done;
  Test.make ~name:"engine.run (100 dense timers, telemetry on)"
    (Staged.stage (fun () ->
         let now = Engine.now engine in
         for i = 1 to 100 do
           ignore (Engine.schedule_at engine Time.(now + Time.us (float_of_int (2 * i))) tick)
         done;
         Engine.run ~until:Time.(now + Time.ms 1.0) engine))

let channel_delivery_telemetry () =
  let open Openmb_sim in
  let tel = Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  let delivered = ref 0 in
  let ch =
    Channel.create engine ~telemetry:tel ~latency:(Time.us 10.0) ~bytes_per_sec:1e9
      ~deliver:(fun (_ : int) -> incr delivered)
      ()
  in
  Test.make ~name:"channel.send+deliver (64 in flight, telemetry on)"
    (Staged.stage (fun () ->
         for i = 1 to channel_in_flight do
           Channel.send ch ~bytes:(64 * i) 42
         done;
         Engine.run engine))

(* ------------------------------------------------------------------ *)
(* Measurement plumbing                                                *)
(* ------------------------------------------------------------------ *)

type result = {
  bench_name : string;
  ns_per_op : float;
  minor_words_per_op : float;
  major_words_per_op : float;
  promoted_words_per_op : float;
  minor_collections_per_op : float;
  major_collections_per_op : float;
}

(* Toolkit.Instance.minor_allocated reads [(Gc.quick_stat ()).minor_words],
   which on OCaml 5 only advances at minor-collection boundaries — sample
   batches that fit in the young generation report zero.  [Gc.minor_words]
   includes the young-pointer delta and is exact. *)
module Minor_words = struct
  type witness = unit

  let make () = ()
  let load () = ()
  let unload () = ()
  let get () = Gc.minor_words ()
  let label () = "minor-words"
  let unit () = "mnw"
end

(* The remaining GC counters only move at collection boundaries, so a
   single sample is quantized — but over OLS's growing run counts the
   per-op slope converges, which is exactly what we record. *)
module Major_words = struct
  type witness = unit

  let make () = ()
  let load () = ()
  let unload () = ()
  let get () = (Gc.quick_stat ()).Gc.major_words
  let label () = "major-words"
  let unit () = "mjw"
end

module Promoted_words = struct
  type witness = unit

  let make () = ()
  let load () = ()
  let unload () = ()
  let get () = (Gc.quick_stat ()).Gc.promoted_words
  let label () = "promoted-words"
  let unit () = "prw"
end

module Minor_collections = struct
  type witness = unit

  let make () = ()
  let load () = ()
  let unload () = ()
  let get () = float_of_int (Gc.quick_stat ()).Gc.minor_collections
  let label () = "minor-collections"
  let unit () = "mnc"
end

module Major_collections = struct
  type witness = unit

  let make () = ()
  let load () = ()
  let unload () = ()
  let get () = float_of_int (Gc.quick_stat ()).Gc.major_collections
  let label () = "major-collections"
  let unit () = "mjc"
end

let minor_words_instance =
  Measure.instance (module Minor_words) (Measure.register (module Minor_words))

let major_words_instance =
  Measure.instance (module Major_words) (Measure.register (module Major_words))

let promoted_words_instance =
  Measure.instance (module Promoted_words) (Measure.register (module Promoted_words))

let minor_collections_instance =
  Measure.instance (module Minor_collections) (Measure.register (module Minor_collections))

let major_collections_instance =
  Measure.instance (module Major_collections) (Measure.register (module Major_collections))

(* Run one benchmark in isolation: compact away everything previous
   benchmarks left behind, build this benchmark's fixtures, measure,
   and let the fixtures die with the returned closure.

   Per-sample GC stabilization and compaction are off: with a multi-MB
   fixture (a 10k-entry state table, 100k parked timers) each costs
   milliseconds per sample, which caps the sampler at small run counts
   and bleeds into the OLS slope — the state-table rows read ~10x their
   true per-op cost (and a spurious ~4 minor words/op) with stabilize
   on.  Heap hygiene across benchmarks is already handled by the
   explicit compact above. *)
let measure_one build =
  Gc.compact ();
  let cfg =
    Benchmark.cfg ~stabilize:false ~compaction:false ~limit:2000
      ~quota:(Time.second 0.5) ()
  in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let clock = Toolkit.Instance.monotonic_clock in
  let instances =
    [
      clock;
      minor_words_instance;
      major_words_instance;
      promoted_words_instance;
      minor_collections_instance;
      major_collections_instance;
    ]
  in
  List.map
    (fun elt ->
      let raw = Benchmark.run cfg instances elt in
      let estimate instance =
        match Analyze.OLS.estimates (Analyze.one ols instance raw) with
        | Some [ v ] -> v
        | Some _ | None -> nan
      in
      {
        bench_name = Test.Elt.name elt;
        ns_per_op = estimate clock;
        minor_words_per_op = estimate minor_words_instance;
        major_words_per_op = estimate major_words_instance;
        promoted_words_per_op = estimate promoted_words_instance;
        minor_collections_per_op = estimate minor_collections_instance;
        major_collections_per_op = estimate major_collections_instance;
      })
    (Test.elements (build ()))

let measure builds = List.concat_map measure_one builds

(* ------------------------------------------------------------------ *)
(* Macro: a full controller-brokered move, compression on              *)
(* ------------------------------------------------------------------ *)

(* One complete 1k-flow move between fresh dummy MBs with transfer
   compression enabled — the end-to-end path the PR-2 pipeline work
   (chunk batching, windowed puts, zero-alloc compress/seal) targets.
   Too heavy for Bechamel's per-iteration sampling, so it is timed
   directly: wall-clock and allocation over enough repetitions to fill
   the quota. *)
let one_macro_move () =
  let open Openmb_sim in
  let open Openmb_core in
  let open Openmb_apps in
  let engine = Engine.create () in
  let config = { Controller.default_config with quiescence = Time.ms 100.0 } in
  let ctrl = Controller.create engine ~config () in
  let src = Dummy_mb.create engine ~name:"src" () in
  let dst = Dummy_mb.create engine ~name:"dst" () in
  Dummy_mb.populate src ~n:1000;
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Dummy_mb.impl dst) ());
  let ok = ref false in
  Controller.move_internal ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any
    ~on_done:(fun res ->
      match res with
      | Ok mr ->
        assert (mr.Controller.chunks_moved = 1000);
        ok := true
      | Error e -> failwith (Errors.to_string e));
  Engine.run engine;
  assert !ok

let macro_move_1k () =
  Gc.compact ();
  let saved = !Openmb_core.Chunk.compression_enabled in
  Openmb_core.Chunk.compression_enabled := true;
  Fun.protect
    ~finally:(fun () -> Openmb_core.Chunk.compression_enabled := saved)
    (fun () ->
      one_macro_move ();
      (* warm-up *)
      let quota_ns = 1_000_000_000L in
      let t0 = ref 0L in
      let runs = ref 0 in
      let (), gc =
        Util.gc_delta (fun () ->
            t0 := Monotonic_clock.now ();
            while
              !runs < 3 || Int64.sub (Monotonic_clock.now ()) !t0 < quota_ns
            do
              one_macro_move ();
              incr runs
            done)
      in
      let elapsed = Int64.to_float (Int64.sub (Monotonic_clock.now ()) !t0) in
      let n = float_of_int !runs in
      {
        bench_name = "move (1k flows, compression on)";
        ns_per_op = elapsed /. n;
        minor_words_per_op = gc.Util.minor_words /. n;
        major_words_per_op = gc.Util.major_words /. n;
        promoted_words_per_op = gc.Util.promoted_words /. n;
        minor_collections_per_op = float_of_int gc.Util.minor_collections /. n;
        major_collections_per_op = float_of_int gc.Util.major_collections /. n;
      })

let bench_file = "BENCH_micro.json"

let result_row r =
  let open Openmb_wire in
  Json.Assoc
    [
      ("ns_per_op", Json.Float r.ns_per_op);
      ("minor_words_per_op", Json.Float r.minor_words_per_op);
      ("major_words_per_op", Json.Float r.major_words_per_op);
      ("promoted_words_per_op", Json.Float r.promoted_words_per_op);
      ("minor_collections_per_op", Json.Float r.minor_collections_per_op);
      ("major_collections_per_op", Json.Float r.major_collections_per_op);
    ]

(* Merge this run's results into BENCH_micro.json under [label],
   keeping any other labels (e.g. the pre-change numbers) intact. *)
let write_json results label =
  let open Openmb_wire in
  let existing =
    if Sys.file_exists bench_file then
      match Json.of_string (In_channel.with_open_text bench_file In_channel.input_all) with
      | Json.Assoc fields -> fields
      | _ | (exception Json.Parse_error _) -> []
    else []
  in
  let entry = Json.Assoc (List.map (fun r -> (r.bench_name, result_row r)) results) in
  let fields = List.remove_assoc label existing @ [ (label, entry) ] in
  Out_channel.with_open_text bench_file (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty (Json.Assoc fields));
      Out_channel.output_char oc '\n');
  Printf.printf "  [json] wrote %s (label %S)\n" bench_file label

(* Set by the driver (micro --rebaseline L1[,L2...]): after the suite
   runs, re-record the named committed labels in place instead of
   appending a new label. *)
let rebaseline_labels : string list ref = ref []

(* Host-drift helper: when the machine changes, every committed ns/op
   baseline is stale at once and a fresh run can't be compared against
   any of them.  [rebaseline results labels] overwrites, inside each
   named label of BENCH_micro.json, only the rows that label already
   tracks with this run's measurements.  Rows the fresh run didn't
   produce are kept verbatim (and counted, so a label fed by a
   different experiment is visibly not refreshed); rows the label never
   tracked are never added; a label absent from the file is a hard
   error — a typo'd label must fail loudly, not silently record
   nothing. *)
let rebaseline results labels =
  let open Openmb_wire in
  let fields =
    match Json.of_string (In_channel.with_open_text bench_file In_channel.input_all) with
    | Json.Assoc fields -> fields
    | _ -> failwith (bench_file ^ ": not a labelled result file")
    | exception Sys_error msg -> failwith msg
    | exception Json.Parse_error _ -> failwith (bench_file ^ ": unparseable result file")
  in
  let missing = List.filter (fun l -> not (List.mem_assoc l fields)) labels in
  if missing <> [] then begin
    List.iter
      (fun l -> Printf.eprintf "rebaseline: %s: missing label %S\n" bench_file l)
      missing;
    exit 1
  end;
  let fresh name = List.find_opt (fun r -> String.equal r.bench_name name) results in
  let fields =
    List.map
      (fun (label, entry) ->
        match (List.mem label labels, entry) with
        | false, _ -> (label, entry)
        | true, Json.Assoc rows ->
          let hit = ref 0 in
          let rows =
            List.map
              (fun (name, old) ->
                match fresh name with
                | Some r ->
                  incr hit;
                  (name, result_row r)
                | None -> (name, old))
              rows
          in
          Printf.printf "  [rebaseline] %S: overwrote %d row(s), kept %d\n" label !hit
            (List.length rows - !hit);
          (label, Json.Assoc rows)
        | true, other ->
          Printf.printf "  [rebaseline] %S: not a row table, kept verbatim\n" label;
          (label, other))
      fields
  in
  Out_channel.with_open_text bench_file (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty (Json.Assoc fields));
      Out_channel.output_char oc '\n');
  Printf.printf "  [json] rebaselined %s (labels %s)\n" bench_file
    (String.concat ", " labels)

(* ------------------------------------------------------------------ *)
(* Result comparison (--compare)                                       *)
(* ------------------------------------------------------------------ *)

(* A result file is either a flat {bench: {ns_per_op}} object or a
   BENCH_micro.json-style {label: {bench: {ns_per_op}}}; for the latter
   the LAST label wins (write_json appends the freshest label last). *)
(* [path] may carry a label selector — "BENCH_micro.json#before" reads
   that label from a labelled file, so one committed file can hold the
   whole before/after pair and still be diffed:

     micro --compare BENCH_micro.json#before BENCH_micro.json#after *)
let load_results path =
  let open Openmb_wire in
  let file, label =
    match String.index_opt path '#' with
    | Some i ->
      ( String.sub path 0 i,
        Some (String.sub path (i + 1) (String.length path - i - 1)) )
    | None -> (path, None)
  in
  let json = Json.of_string (In_channel.with_open_text file In_channel.input_all) in
  let looks_flat = function
    | Json.Assoc ((_, Json.Assoc fields) :: _) -> List.mem_assoc "ns_per_op" fields
    | _ -> false
  in
  let table =
    match (label, json) with
    | Some l, Json.Assoc labels -> (
      match List.assoc_opt l labels with
      | Some t -> t
      | None -> failwith (path ^ ": no label " ^ l))
    | Some _, _ -> failwith (path ^ ": not a labelled result file")
    | None, Json.Assoc _ when looks_flat json -> json
    | None, Json.Assoc ((_ :: _) as labels) ->
      snd (List.nth labels (List.length labels - 1))
    | None, _ -> failwith (path ^ ": not a benchmark result file")
  in
  match table with
  | Json.Assoc benches ->
    List.filter_map
      (fun (name, fields) ->
        match Json.member "ns_per_op" fields with
        | Json.Float ns -> Some (name, ns)
        | Json.Int ns -> Some (name, float_of_int ns)
        | _ | (exception _) -> None)
      benches
  | _ -> failwith (path ^ ": not a benchmark result file")

(* Default 20%; micro --threshold PCT overrides for tighter gates. *)
let regression_threshold = ref 0.20

(* Diff two result files; returns the number of failures — regressions
   beyond the threshold plus rows that vanished from the after file (a
   gone row means the gate silently stopped measuring something, which
   must fail as loudly as a slowdown). *)
let compare_results before_path after_path =
  let regression_threshold = !regression_threshold in
  let before = load_results before_path and after = load_results after_path in
  Util.banner
    (Printf.sprintf "Benchmark comparison: %s -> %s" before_path after_path);
  Util.row "  %-36s %12s %12s %9s\n" "benchmark" "before(ns)" "after(ns)" "delta";
  let regressions = ref 0 and gone = ref 0 in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name after with
      | None ->
        incr gone;
        Util.row "  %-36s %12.1f %12s %9s\n" name b "-" "GONE"
      | Some a ->
        let delta = (a -. b) /. b in
        let flag =
          if delta > regression_threshold then begin
            incr regressions;
            "  REGRESSION"
          end
          else ""
        in
        Util.row "  %-36s %12.1f %12.1f %+8.1f%%%s\n" name b a (delta *. 100.0) flag)
    before;
  List.iter
    (fun (name, a) ->
      if not (List.mem_assoc name before) then
        Util.row "  %-36s %12s %12.1f %9s\n" name "-" a "new")
    after;
  if !regressions > 0 then
    Printf.printf "  %d benchmark(s) regressed by more than %.0f%%\n" !regressions
      (regression_threshold *. 100.0)
  else Printf.printf "  no regression beyond %.0f%%\n" (regression_threshold *. 100.0);
  if !gone > 0 then
    Printf.printf
      "  FAIL: %d benchmark(s) present before are missing after — the gate is no \
       longer measuring them\n"
      !gone;
  !regressions + !gone

(* Gate helper: fail loudly when a labelled result file lacks any of
   the rows a gate intends to compare against, instead of the gate
   silently passing because the comparison never ran.  Returns the
   number of missing labels. *)
let require_labels path labels =
  let open Openmb_wire in
  let fields =
    match Json.of_string (In_channel.with_open_text path In_channel.input_all) with
    | Json.Assoc fields -> fields
    | _ -> failwith (path ^ ": not a labelled result file")
    | exception Json.Parse_error _ -> failwith (path ^ ": unparseable result file")
  in
  let missing = List.filter (fun l -> not (List.mem_assoc l fields)) labels in
  List.iter
    (fun l -> Printf.eprintf "require-labels: %s: missing label %S\n" path l)
    missing;
  if missing = [] then
    Printf.printf "  require-labels: %s has all of [%s]\n" path (String.concat ", " labels);
  List.length missing

(* Footnote-6 ablation: real wall-clock cost of the linear-scan get
   versus the source-indexed lookup, at growing table sizes. *)
let scan_vs_index () =
  Util.banner "Ablation: linear-scan get vs. source-indexed lookup (footnote 6)";
  Util.row "  %-10s %16s %16s %10s\n" "entries" "linear (ns)" "indexed (ns)" "speedup";
  List.iter
    (fun n ->
      let populate indexed =
        let t =
          Openmb_mbox.State_table.create ~indexed ~granularity:Hfl.full_granularity ()
        in
        for i = 0 to n - 1 do
          let tup =
            {
              Five_tuple.src_ip = Addr.of_int (0x0A000000 lor i);
              dst_ip = Addr.of_string "1.1.1.10";
              src_port = 1024 + (i land 0x3FFF);
              dst_port = 80;
              proto = Packet.Tcp;
            }
          in
          ignore (Openmb_mbox.State_table.find_or_create t tup ~default:(fun () -> i))
        done;
        t
      in
      let linear = populate false and indexed = populate true in
      let q = Hfl.of_string "nw_src=10.0.1.4/32" in
      let time_one label t =
        ignore label;
        let test =
          Test.make ~name:"scan"
            (Staged.stage (fun () -> ignore (Openmb_mbox.State_table.matching t q)))
        in
        let cfg =
          Benchmark.cfg ~stabilize:false ~compaction:false ~limit:1000
            ~quota:(Time.second 0.25) ()
        in
        let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
        let instance = Toolkit.Instance.monotonic_clock in
        match Test.elements test with
        | [ elt ] -> (
          match Analyze.OLS.estimates (Analyze.one ols instance (Benchmark.run cfg [ instance ] elt)) with
          | Some [ ns ] -> ns
          | Some _ | None -> nan)
        | _ -> nan
      in
      let tl = time_one "linear" linear and ti = time_one "indexed" indexed in
      Util.row "  %-10d %16.0f %16.0f %9.0fx\n" n tl ti (tl /. ti))
    [ 1000; 5000; 20000 ];
  Printf.printf
    "  The prototype's gets scan the whole table (the paper attributes the\n\
     6x get/put gap to this); a switch-style index makes the exact-source\n\
     get cost independent of table size.\n"

let tests () =
  [
    flow_table_lookup;
    flow_table_lookup_exact;
    state_table_find;
    state_table_find_or_create;
    state_table_insert;
    json_codec;
    message_encode_json;
    message_encode_binary;
    chunk_seal;
    lzss;
    re_encode;
    hfl_match;
    engine_dense_timers;
    channel_delivery;
    engine_dense_timers_telemetry;
    channel_delivery_telemetry;
  ]

(* ------------------------------------------------------------------ *)
(* micro-telemetry: the overhead gate                                  *)
(* ------------------------------------------------------------------ *)

(* Set by the driver (micro-telemetry --gate PCT): fail the invocation
   when any tracked pair's telemetry-on row is more than PCT slower
   than its telemetry-off twin. *)
let telemetry_gate : float option ref = ref None

let telemetry_pairs =
  [
    ( "engine.run (100 dense timers, 100k parked)",
      "engine.run (100 dense timers, telemetry on)" );
    ( "channel.send+deliver (64 in flight)",
      "channel.send+deliver (64 in flight, telemetry on)" );
  ]

(* Measure the two tracked rows with and without a live registry in
   one process (same machine state for both sides of each pair), print
   the overhead, and optionally gate on it.  Each row is the min of
   three interleaved rounds: single Bechamel estimates on a shared
   machine jitter by tens of percent, far above the few-percent signal
   this gate watches, and the per-side minimum discards the scheduling
   noise both sides suffer independently.  With --json the four rows
   are merged into BENCH_micro.json under the label (use
   --label micro-telemetry to keep the pair as its own entry). *)
let telemetry_rounds = 3

let run_telemetry () =
  Util.banner "Telemetry overhead: tracked scheduler rows, registry off vs. on";
  let best = Hashtbl.create 8 in
  for _ = 1 to telemetry_rounds do
    List.iter
      (fun r ->
        match Hashtbl.find_opt best r.bench_name with
        | Some prev when prev.ns_per_op <= r.ns_per_op -> ()
        | _ -> Hashtbl.replace best r.bench_name r)
      (measure
         [
           engine_dense_timers;
           engine_dense_timers_telemetry;
           channel_delivery;
           channel_delivery_telemetry;
         ])
  done;
  let find name = Hashtbl.find best name in
  let results =
    List.concat_map (fun (off, on) -> [ find off; find on ]) telemetry_pairs
  in
  Util.row "  %-46s %12s %12s %9s\n" "benchmark" "off(ns)" "on(ns)" "delta";
  let worst = ref neg_infinity in
  List.iter
    (fun (off_name, on_name) ->
      let off = find off_name and on = find on_name in
      let delta = (on.ns_per_op -. off.ns_per_op) /. off.ns_per_op in
      if delta > !worst then worst := delta;
      Util.row "  %-46s %12.1f %12.1f %+8.1f%%\n" off_name off.ns_per_op
        on.ns_per_op (delta *. 100.0))
    telemetry_pairs;
  (match !json_label with None -> () | Some label -> write_json results label);
  match !telemetry_gate with
  | None -> ()
  | Some limit ->
    if !worst *. 100.0 > limit then begin
      Printf.printf "  telemetry overhead %.1f%% exceeds the %.1f%% gate\n"
        (!worst *. 100.0) limit;
      exit 1
    end
    else
      Printf.printf "  telemetry overhead within the %.1f%% gate (worst %+.1f%%)\n"
        limit (!worst *. 100.0)

(* Set by the driver (micro --rounds N): run the whole suite N times
   and keep each benchmark's fastest round.  A single Bechamel estimate
   on a busy single-core machine jitters by tens of percent run to run
   — far above the 20% regression threshold — so the perfgate compares
   min-of-N against a min-of-N baseline: the per-row minimum
   approximates the noise floor the same way the telemetry gate's
   interleaved rounds do. *)
let micro_rounds = ref 1

let run () =
  Util.banner "Micro-benchmarks (Bechamel, wall-clock; hermetic fixtures)";
  let round () = measure (tests ()) @ [ macro_move_1k () ] in
  let best = ref (round ()) in
  for r = 2 to !micro_rounds do
    Printf.printf "  [rounds] best-of round %d/%d\n%!" r !micro_rounds;
    best :=
      List.map2
        (fun b fresh -> if fresh.ns_per_op < b.ns_per_op then fresh else b)
        !best (round ())
  done;
  let results = !best in
  Util.row "  %-42s %12s %10s %10s %8s\n" "benchmark" "ns/op" "minor w" "promoted" "mnc/op";
  List.iter
    (fun r ->
      Util.row "  %-42s %12.1f %10.1f %10.2f %8.4f\n" r.bench_name r.ns_per_op
        r.minor_words_per_op r.promoted_words_per_op r.minor_collections_per_op)
    results;
  match !rebaseline_labels with
  | _ :: _ as labels -> rebaseline results labels
  | [] -> (
    match !json_label with None -> () | Some label -> write_json results label)
