(* bench obs: the observability layer's overhead gate and demo.

   Runs a reduced single-engine scale workload (switch -> NAT ->
   monitor chain with a concurrent moveInternal) twice per round —
   once bare, once with the full scrape attachment (Timeseries over
   the shared registry signals + per-MB scrape sets + SLO evaluation
   on every tick + an armed flight recorder) — recording the
   min-of-rounds wall pair, the same noise-floor protocol as the PR 5
   telemetry gate.

   The *gated* overhead number is computed differently, because on a
   loaded single-core container two 0.25s macro walls differ by tens
   of percent between invocations and a 3% budget would gate pure
   scheduler noise.  Instead the per-tick scrape cost (sample every
   series + incremental SLO evaluation — the exact per-tick work the
   scrape-on run performs) is measured as an in-process
   microbenchmark over ~100k ticks (min of 3 reps, stable to a few
   percent), and the gate checks

     workload scrape ticks x per-tick cost / scrape-off wall <= PCT

   --gate PCT fails the run past the budget; perfgate passes 3.  Both
   the wall pair and the derived overhead land in BENCH_micro.json
   under the "obs" label, which the --require-labels check keeps from
   silently disappearing.

   --dash renders the terminal dashboard of the last scrape-on run. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_traffic
open Openmb_apps

(* Set by the driver (bench obs [--flows N] [--rounds R] [--gate PCT]). *)
let flows = ref 10_000
let rounds = ref 3
let gate : float option ref = ref None

let internal_prefix = "10.0.0.0/8"
let batch_size = 1_000
let inter_arrival = Time.us 50.0
let flow_duration = 0.01
let move_chunks = 2_000

(* 10ms of virtual time per sample: the workload's virtual horizon is
   dominated by the controller's post-move quiescence linger (tens of
   seconds with nothing happening), and the scraper keeps ticking
   through it — at 1ms the quiet tail alone is ~35k ticks and the
   "overhead" mostly measures idle scraping.  10ms keeps a 512-sample
   raw window spanning ~5s while the tick count stays two orders of
   magnitude under the workload's event count. *)
let scrape_every = Time.ms 10.0

let fast_cost base = { base with Southbound.per_packet = Time.us 1.0 }

let tuple_of_flow i =
  let ip = Addr.of_int (Addr.to_int (Addr.of_string "10.0.0.1") + (i / 16_384)) in
  {
    Five_tuple.src_ip = ip;
    dst_ip = Addr.of_string "1.1.1.5";
    src_port = 1_024 + (i mod 16_384);
    dst_port = 443;
    proto = Packet.Tcp;
  }

let nat_pool base n =
  let per_ip = 45_001 in
  let needed = ((n + per_ip - 1) / per_ip) + 1 in
  List.init needed (fun i -> Addr.of_int (Addr.to_int base + i + 1))

type obs_run = {
  wall : float;
  ticks : int;
  series : int;
  breaches : int;
  fr_dumps : int;
  obs : (Timeseries.t * Slo.t) option;
}

let run_once ~scrape =
  let n = !flows in
  let tel = Telemetry.create ~span_capacity:4_096 () in
  let engine = Engine.create ~telemetry:tel () in
  let nat =
    Nat.create engine ~telemetry:tel ~name:"nat" ~cost:(fast_cost Nat.default_cost)
      ~external_ip:(Addr.of_string "5.5.5.0")
      ~external_ips:(nat_pool (Addr.of_string "5.5.5.0") n)
      ~internal_prefix:(Addr.prefix_of_string internal_prefix)
      ()
  in
  let monitor =
    Monitor.create engine ~telemetry:tel ~name:"monitor"
      ~cost:(fast_cost Monitor.default_cost) ()
  in
  let egress = ref 0 in
  Mb_base.set_egress (Nat.base nat) (fun p -> Monitor.receive monitor p);
  Mb_base.set_egress (Monitor.base monitor) (fun _ -> incr egress);
  let sw = Switch.create engine ~telemetry:tel ~name:"edge" () in
  Switch.attach_port sw ~port:"nat"
    (Link.create engine ~name:"sw-nat" ~dst:(Nat.receive nat) ());
  ignore
    (Flow_table.install (Switch.table sw) ~priority:1 ~match_:[]
       ~action:(Flow_table.Forward "nat"));
  let ids = Trace.Id_gen.create () in
  let prng = Prng.create ~seed:7 in
  let internal = Addr.prefix_of_string internal_prefix in
  let start_of i = Time.to_seconds inter_arrival *. float_of_int i in
  let emit_flow i =
    List.iter
      (fun (p : Packet.t) ->
        if Addr.in_prefix p.src_ip internal then
          Engine.call2_at engine p.ts Switch.receive sw p)
      (Flow_gen.tcp_flow ~ids ~prng ~tuple:(tuple_of_flow i) ~start:(start_of i)
         ~duration:flow_duration ~data_packets:1 ~content:Flow_gen.empty_content ())
  in
  let rec emit_batch b () =
    let lo = b * batch_size and hi = min n ((b + 1) * batch_size) in
    for i = lo to hi - 1 do
      emit_flow i
    done;
    if hi < n then
      ignore
        (Engine.schedule_at engine (Time.seconds (start_of hi)) (emit_batch (b + 1)))
  in
  emit_batch 0 ();
  let ctrl = Controller.create engine ~telemetry:tel () in
  let src = Dummy_mb.create engine ~name:"move-src" () in
  let dst = Dummy_mb.create engine ~name:"move-dst" () in
  Dummy_mb.populate src ~n:move_chunks;
  Controller.connect ctrl
    (Mb_agent.create engine ~telemetry:tel ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl
    (Mb_agent.create engine ~telemetry:tel ~impl:(Dummy_mb.impl dst) ());
  let moved = ref false in
  ignore
    (Engine.schedule_at engine
       (Time.seconds (start_of (n / 2)))
       (fun () ->
         Controller.move_internal ctrl ~src:"move-src" ~dst:"move-dst" ~key:Hfl.any
           ~on_done:(fun res ->
             match res with
             | Ok _ -> moved := true
             | Error e -> failwith (Errors.to_string e))));
  (* The scrape attachment under test: shared-registry series, per-MB
     scrape sets, a NAT-occupancy poll, SLO evaluation per tick, and
     an armed flight recorder — the full per-tick cost a production
     deployment would pay. *)
  let obs, fr =
    if not scrape then (None, None)
    else begin
      let ts, slo = Util.attach_obs ~every:scrape_every tel engine in
      Mb_base.register_series (Nat.base nat) ts;
      Mb_base.register_series (Monitor.base monitor) ts;
      Timeseries.add ts ~name:"nat.mappings" ~mode:Timeseries.Sum
        (Timeseries.Poll (fun () -> float_of_int (Nat.mapping_count nat)));
      let fr = Flight_recorder.create ~telemetry:tel ~timeseries:ts ~slo () in
      Flight_recorder.arm fr ~engine;
      (Some (ts, slo), Some fr)
    end
  in
  let t0 = Monotonic_clock.now () in
  Engine.run engine;
  let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  if not !moved then failwith "obs: concurrent move did not complete";
  if Nat.mapping_count nat <> n then
    failwith
      (Printf.sprintf "obs: expected %d NAT mappings, got %d" n (Nat.mapping_count nat));
  {
    wall;
    ticks = (match obs with Some (ts, _) -> Timeseries.ticks ts | None -> 0);
    series = (match obs with Some (ts, _) -> Timeseries.n_series ts | None -> 0);
    breaches = (match obs with Some (_, slo) -> Slo.breach_count slo | None -> 0);
    fr_dumps = (match fr with Some fr -> Flight_recorder.dumps fr | None -> 0);
    obs;
  }

(* Per-tick scrape cost in seconds: the same 18-series attachment
   (shared registry set + two per-MB scrape sets + NAT-occupancy poll
   + SLO evaluation) ticking at 1us of virtual time on an engine with
   nothing else to do, over [ticks] ticks.  Metric state is
   pre-populated so histogram-quantile walks and counter reads see
   representative values, not empty fast paths. *)
let measure_tick_cost ~ticks =
  let tel = Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  List.iter
    (fun name ->
      let h = Telemetry.histogram tel name in
      for i = 1 to 1_000 do
        Telemetry.observe h (1e-6 *. float_of_int i)
      done)
    [ "mb.pkt_latency"; "controller.op_latency"; "controller.serialization_window" ];
  List.iter
    (fun name -> Telemetry.add (Telemetry.counter tel name) 123_456)
    [ "engine.events"; "mb.pkts"; "controller.msgs" ];
  let nat =
    Nat.create engine ~telemetry:tel ~name:"nat" ~cost:(fast_cost Nat.default_cost)
      ~external_ip:(Addr.of_string "5.5.5.0")
      ~external_ips:(nat_pool (Addr.of_string "5.5.5.0") 100)
      ~internal_prefix:(Addr.prefix_of_string internal_prefix)
      ()
  in
  let monitor =
    Monitor.create engine ~telemetry:tel ~name:"monitor"
      ~cost:(fast_cost Monitor.default_cost) ()
  in
  let ts, slo = Util.attach_obs ~every:(Time.us 1.0) tel engine in
  Mb_base.register_series (Nat.base nat) ts;
  Mb_base.register_series (Monitor.base monitor) ts;
  Timeseries.add ts ~name:"nat.mappings" ~mode:Timeseries.Sum
    (Timeseries.Poll (fun () -> float_of_int (Nat.mapping_count nat)));
  ignore slo;
  (* A sentinel event keeps the engine pending so the scraper ticks
     until the horizon, then auto-stops. *)
  ignore
    (Engine.schedule_at engine (Time.us (float_of_int ticks)) (fun () -> ()));
  let t0 = Monotonic_clock.now () in
  Engine.run engine;
  let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  if Timeseries.ticks ts < ticks then failwith "obs: tick micro stopped early";
  wall /. float_of_int (Timeseries.ticks ts)

let run () =
  let n = !flows and r = !rounds in
  Util.banner
    (Printf.sprintf "obs: scrape overhead on a %d-flow chain run (%d paired rounds)" n r);
  (* Min-of-rounds on both sides for the recorded wall pair: each
     round is an adjacent off/on pair from a compacted heap, with the
     pair order alternating so monotone drift cancels.  Per-round wall
     overheads are printed for eyeballing the spread (they swing by
     tens of percent on this container — which is exactly why the
     gate uses the derived number instead). *)
  let best_off = ref infinity and best_on = ref infinity in
  let overheads = Array.make r 0.0 in
  let last_on = ref None in
  let timed ~scrape =
    (* Start every timed run from a compacted heap: GC state inherited
       from the previous run is the dominant within-process noise. *)
    Gc.compact ();
    run_once ~scrape
  in
  for i = 0 to r - 1 do
    (* Alternate which side of the pair runs first so any residual
       monotone drift cancels in the median instead of biasing it. *)
    let off, on =
      if i mod 2 = 0 then begin
        let off = timed ~scrape:false in
        (off, timed ~scrape:true)
      end
      else begin
        let on = timed ~scrape:true in
        (timed ~scrape:false, on)
      end
    in
    if off.wall < !best_off then best_off := off.wall;
    if on.wall < !best_on then best_on := on.wall;
    overheads.(i) <- (on.wall -. off.wall) /. off.wall *. 100.0;
    last_on := Some on
  done;
  let on = match !last_on with Some o -> o | None -> assert false in
  if on.ticks = 0 then failwith "obs: scraper never ticked";
  Array.sort compare overheads;
  let wall_overhead = (!best_on -. !best_off) /. !best_off *. 100.0 in
  let tick_cost = ref infinity in
  for _ = 1 to 3 do
    Gc.compact ();
    let c = measure_tick_cost ~ticks:100_000 in
    if c < !tick_cost then tick_cost := c
  done;
  let overhead = float_of_int on.ticks *. !tick_cost /. !best_off *. 100.0 in
  Util.row "  %-28s %12.3f\n" "wall seconds (scrape off)" !best_off;
  Util.row "  %-28s %12.3f\n" "wall seconds (scrape on)" !best_on;
  Util.row "  %-28s %12.2f\n" "wall overhead % (min pair)" wall_overhead;
  Util.row "  %-28s %12.1f\n" "per-tick cost (ns)" (!tick_cost *. 1e9);
  Util.row "  %-28s %12.2f\n" "overhead % (gated)" overhead;
  Array.iter (fun o -> Util.row "  %-28s %12.2f\n" "  round wall overhead %" o) overheads;
  Util.row "  %-28s %12d\n" "series scraped" on.series;
  Util.row "  %-28s %12d\n" "scrape ticks" on.ticks;
  Util.row "  %-28s %12d\n" "samples stored" (on.ticks * on.series);
  Util.row "  %-28s %12d\n" "slo breaches" on.breaches;
  Util.row "  %-28s %12d\n" "flight-recorder dumps" on.fr_dumps;
  Util.maybe_dash on.obs;
  let open Openmb_wire in
  Util.append_row "obs"
    (Json.Assoc
       [
         ("flows", Json.Int n);
         ("rounds", Json.Int r);
         ("series", Json.Int on.series);
         ("scrape_ticks", Json.Int on.ticks);
         ("off_wall_s", Json.Float !best_off);
         ("on_wall_s", Json.Float !best_on);
         ("tick_cost_ns", Json.Float (!tick_cost *. 1e9));
         ("overhead_pct", Json.Float overhead);
         ("slo_breaches", Json.Int on.breaches);
       ]);
  match !gate with
  | Some pct when overhead > pct ->
    failwith
      (Printf.sprintf "obs: scrape overhead %.2f%% exceeds the --gate %.1f%% budget"
         overhead pct)
  | Some pct ->
    Printf.printf "  [gate] scrape overhead %.2f%% within the %.1f%% budget\n" overhead pct
  | None -> ()
