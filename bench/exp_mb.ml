(* Middlebox-level experiments: Figure 9 (get/put processing time and
   re-process event counts for PRADS and Bro) and the §8.2 per-packet
   latency comparison. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_apps

let bench_ctrl = { Controller.default_config with quiescence = Time.ms 100.0 }

(* Populate an MB with [n] distinct flows by feeding SYN packets
   directly (instantaneous engine time per packet is fine here: the
   measurements start afterwards). *)
let syn_packet i =
  Packet.make ~flags:Packet.syn_flags ~id:i ~ts:Time.zero
    ~src_ip:(Addr.of_string (Printf.sprintf "10.%d.%d.%d" (i / 65536) (i / 256 mod 256) (1 + (i mod 250))))
    ~dst_ip:(Addr.of_string "1.1.1.10") ~src_port:(10000 + (i mod 50000)) ~dst_port:80
    ~proto:Packet.Tcp ()

type mb_kind = Prads | Bro

let kind_name = function Prads -> "Prads" | Bro -> "Bro"

(* Measure the MB-side cost of a get and of the corresponding puts in
   isolation, exactly as Figure 9 does: requests are sent straight to
   the MB agents (no controller in the measurement path), the get time
   is send-to-endOfState, and the puts are issued back-to-back so their
   time is pure import processing rather than the paced arrival of the
   get stream. *)
let get_put_times kind ~chunks =
  let engine = Engine.create () in
  let feed_and_impls =
    match kind with
    | Prads ->
      let a = Monitor.create engine ~name:"src" () in
      let b = Monitor.create engine ~name:"dst" () in
      ((fun p -> Monitor.receive a p), Monitor.impl a, Monitor.impl b)
    | Bro ->
      let a = Ids.create engine ~name:"src" () in
      let b = Ids.create engine ~name:"dst" () in
      ((fun p -> Ids.receive a p), Ids.impl a, Ids.impl b)
  in
  let feed, impl_a, impl_b = feed_and_impls in
  for i = 0 to chunks - 1 do
    feed (syn_packet i)
  done;
  Engine.run engine;
  let agent_a = Mb_agent.create engine ~impl:impl_a () in
  let agent_b = Mb_agent.create engine ~impl:impl_b () in
  (* Get: capture the streamed chunks and time until End_of_state. *)
  let chunks_out = ref [] in
  let get_start = ref Time.zero and get_end = ref Time.zero in
  Mb_agent.set_uplinks agent_a
    ~send_reply:(fun msg ->
      match msg with
      | Message.Reply { reply = Message.State_chunk c; _ } ->
        chunks_out := c :: !chunks_out
      | Message.Reply { reply = Message.End_of_state _; _ } ->
        get_end := Engine.now engine
      | Message.Reply _ | Message.Event_msg _ -> ())
    ~send_event:(fun _ -> ());
  get_start := Engine.now engine;
  Mb_agent.handle_request agent_a
    { Message.op = 0; tid = 0; req = Message.Get_support_perflow Hfl.any };
  Mb_agent.handle_request agent_a
    { Message.op = 1; tid = 0; req = Message.Get_report_perflow Hfl.any };
  Engine.run engine;
  (* Puts: issue every chunk back-to-back and time until the last
     acknowledgement. *)
  let acks = ref 0 in
  let put_end = ref Time.zero in
  let n_puts = List.length !chunks_out in
  Mb_agent.set_uplinks agent_b
    ~send_reply:(fun msg ->
      match msg with
      | Message.Reply { reply = Message.Ack; _ } ->
        incr acks;
        if !acks = n_puts then put_end := Engine.now engine
      | Message.Reply _ | Message.Event_msg _ -> ())
    ~send_event:(fun _ -> ());
  let put_start = Engine.now engine in
  List.iteri
    (fun i (c : Chunk.t) ->
      let req =
        match c.role with
        | Taxonomy.Supporting -> Message.Put_support_perflow { seq = i; chunk = c }
        | Taxonomy.Reporting | Taxonomy.Configuring ->
          Message.Put_report_perflow { seq = i; chunk = c }
      in
      Mb_agent.handle_request agent_b { Message.op = i; tid = 0; req })
    !chunks_out;
  Engine.run engine;
  ( Time.to_seconds Time.(!get_end - !get_start) *. 1e3,
    Time.to_seconds Time.(!put_end - put_start) *. 1e3 )

let fig9ab () =
  Util.banner "Figure 9(a)/(b): get and put processing time per operation";
  Util.row "  %-8s %-8s %12s %12s %8s\n" "MB" "chunks" "get (ms)" "puts (ms)" "get/put";
  List.iter
    (fun kind ->
      List.iter
        (fun chunks ->
          let get_ms, put_ms = get_put_times kind ~chunks in
          Util.row "  %-8s %-8d %12.1f %12.1f %8.1f\n" (kind_name kind) chunks get_ms
            put_ms
            (if put_ms > 0.0 then get_ms /. put_ms else nan))
        [ 250; 500; 1000 ])
    [ Prads; Bro ];
  Util.paper_note
    "linear in chunks; puts ~6x cheaper than gets (no linear scan); Bro >> Prads.\n"

(* ------------------------------------------------------------------ *)
(* Figure 9(c)/(d): events generated during moveInternal               *)
(* ------------------------------------------------------------------ *)

let events_during_move kind ~chunks ~rate_pps =
  let scenario =
    Scenario.create ~ctrl_config:bench_ctrl ~with_recorder:false ()
  in
  let engine = Scenario.engine scenario in
  let attach name =
    match kind with
    | Prads ->
      let m = Monitor.create engine ~name () in
      Scenario.attach_mb scenario ~port:name ~receive:(Monitor.receive m)
        ~base:(Monitor.base m) ~impl:(Monitor.impl m)
    | Bro ->
      let m = Ids.create engine ~name () in
      Scenario.attach_mb scenario ~port:name ~receive:(Ids.receive m)
        ~base:(Ids.base m) ~impl:(Ids.impl m)
  in
  attach "src";
  attach "dst";
  Scenario.install_default_route scenario ~port:"src";
  let cbr =
    {
      Openmb_traffic.Cbr.default_params with
      n_flows = chunks;
      rate_pps;
      duration = 8.0;
    }
  in
  let trace = Openmb_traffic.Cbr.generate cbr in
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));
  Scenario.at scenario (Time.seconds 2.0) (fun () ->
      Migrate.migrate_perflow scenario ~src:"src" ~dst:"dst" ~key:Hfl.any
        ~config_keys:[] ~dst_port:"dst" ());
  Scenario.run scenario;
  Controller.events_forwarded (Scenario.controller scenario)

let fig9cd () =
  Util.banner "Figure 9(c)/(d): re-process events during moveInternal";
  List.iter
    (fun kind ->
      Util.section (kind_name kind);
      Util.row "  %-12s" "rate(pps)";
      List.iter (fun c -> Util.row " %10s" (Printf.sprintf "%dch" c)) [ 250; 500; 1000 ];
      Util.row "\n";
      List.iter
        (fun rate ->
          Util.row "  %-12.0f" rate;
          List.iter
            (fun chunks ->
              Util.row " %10d" (events_during_move kind ~chunks ~rate_pps:rate))
            [ 250; 500; 1000 ];
          Util.row "\n")
        [ 500.0; 1000.0; 1500.0; 2000.0; 2500.0 ])
    [ Prads; Bro ];
  Util.paper_note
    "events grow linearly with packet rate (more packets land in the\n";
  Printf.printf
    "          window between the get and the routing update taking effect).\n"

(* ------------------------------------------------------------------ *)
(* §8.2 per-packet latency during state operations                     *)
(* ------------------------------------------------------------------ *)

let latency () =
  Util.banner "Section 8.2: per-packet latency, normal vs. during get";
  (* Bro under a steady CBR load (low enough that queueing is
     negligible, so the op-slowdown penalty is visible), with a large
     state export mid-run. *)
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:bench_ctrl () in
  let a = Ids.create engine ~name:"bro-a" () in
  let b = Ids.create engine ~name:"bro-b" () in
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Ids.impl a) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Ids.impl b) ());
  let cbr =
    { Openmb_traffic.Cbr.default_params with n_flows = 1000; rate_pps = 400.0;
      duration = 30.0; opening_window = 4.0 }
  in
  let trace = Openmb_traffic.Cbr.generate cbr in
  Openmb_traffic.Trace.replay engine trace ~into:(Ids.receive a);
  ignore
    (Engine.schedule_at engine (Time.seconds 15.0) (fun () ->
         Controller.move_internal ctrl ~src:"bro-a" ~dst:"bro-b" ~key:Hfl.any
           ~on_done:(fun _ -> ())));
  Engine.run engine;
  (* Medians: the connection-opening burst at the head of the CBR trace
     briefly saturates the data path and would skew a mean. *)
  let normal = Stats.median (Mb_base.latency_stats (Ids.base a)) *. 1e3 in
  let during = Stats.median (Mb_base.latency_during_op_stats (Ids.base a)) *. 1e3 in
  Util.row "  Bro  normal operation   : %.3f ms/packet\n" normal;
  Util.row "  Bro  while serving get  : %.3f ms/packet (%+.1f%%)\n" during
    ((during -. normal) /. normal *. 100.0);
  Util.paper_note "Bro: 6.93 ms -> 7.06 ms (~2%%).\n";
  (* RE pair end-to-end latency, with a decoder cache clone mid-run. *)
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:bench_ctrl () in
  let enc = Re_encoder.create engine ~name:"enc" () in
  let dec = Re_decoder.create engine ~name:"dec" () in
  let dec2 = Re_decoder.create engine ~name:"dec2" () in
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Re_decoder.impl dec) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Re_decoder.impl dec2) ());
  let e2e_normal = Stats.create () and e2e_during = Stats.create () in
  let clone_window = ref false in
  Mb_base.set_egress (Re_encoder.base enc) (fun p -> Re_decoder.receive dec p);
  Mb_base.set_egress (Re_decoder.base dec) (fun p ->
      let lat = Time.to_seconds Time.(Engine.now engine - p.Packet.ts) in
      Stats.add (if !clone_window then e2e_during else e2e_normal) lat);
  let trace =
    Openmb_traffic.Redundancy_trace.generate
      { Openmb_traffic.Redundancy_trace.default_params with duration = 20.0 }
  in
  Openmb_traffic.Trace.replay engine trace ~into:(Re_encoder.receive enc);
  ignore
    (Engine.schedule_at engine (Time.seconds 8.0) (fun () ->
         clone_window := true;
         Controller.clone_support ctrl ~src:"dec" ~dst:"dec2" ~on_done:(fun _ ->
             clone_window := false)));
  Engine.run engine;
  Util.row "  RE   normal operation   : %.3f ms encoder->decoder\n"
    (Stats.mean e2e_normal *. 1e3);
  Util.row "  RE   while serving get  : %.3f ms encoder->decoder\n"
    (Stats.mean e2e_during *. 1e3);
  Util.paper_note "RE: 0.781 ms -> 0.790 ms.\n"
