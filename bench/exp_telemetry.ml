(* The instrumented move macro: one controller-brokered moveInternal
   between dummy MBs with every component sharing a single telemetry
   instance, so the run yields linked controller/agent trace spans and
   the paper's per-flow serialization-window histogram (the Figure-7
   metric: how long each flow's state sat between leaving the source
   and being acknowledged at the destination).

     bench move [--flows N] [--trace-out FILE.json]   # span/latency summary
     bench telemetry                                  # registry snapshot

   The --trace-out dump loads in Perfetto / about:tracing: the
   controller and each MB render as separate threads, and clicking a
   span exposes its op_id — the causality id that also rode the wire
   message — linking the controller-side op span to the agent-side
   execution span. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_apps

(* Set by the driver (bench move --flows N); shared default with the
   acceptance run. *)
let flows = ref 1000

(* One complete [n]-flow move between fresh dummy MBs, everything
   wired to one telemetry instance. *)
let run_move n =
  let tel = Telemetry.create ~span_capacity:16_384 () in
  let engine = Engine.create ~telemetry:tel () in
  let config = { Controller.default_config with quiescence = Time.ms 100.0 } in
  let ctrl = Controller.create engine ~config ~telemetry:tel () in
  let src = Dummy_mb.create engine ~name:"src" () in
  let dst = Dummy_mb.create engine ~name:"dst" () in
  Dummy_mb.populate src ~n;
  Controller.connect ctrl
    (Mb_agent.create engine ~telemetry:tel ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl
    (Mb_agent.create engine ~telemetry:tel ~impl:(Dummy_mb.impl dst) ());
  let result = ref None in
  Controller.move_internal ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any
    ~on_done:(fun res -> result := Some res);
  Engine.run engine;
  match !result with
  | Some (Ok mr) -> (tel, mr)
  | Some (Error e) -> failwith (Errors.to_string e)
  | None -> failwith "move did not complete"

(* Causality ids that have both a controller-side span and an
   agent-side span in the ring — the linkage the trace export exists
   to show. *)
let linked_ops tel =
  let tr = Telemetry.trace tel in
  let ctrl_id = Telemetry.Trace.lookup_id tr "controller" in
  let seen = Hashtbl.create 256 in
  Telemetry.Trace.fold tr ~init:()
    ~f:(fun () ~actor ~name:_ ~op ~a0:_ ~a1:_ ~t0:_ ~t1:_ ~detail:_ ->
      if op > 0 then begin
        let c, a = try Hashtbl.find seen op with Not_found -> (false, false) in
        Hashtbl.replace seen op
          (if actor = ctrl_id then (true, a) else (c, true))
      end);
  Hashtbl.fold (fun _ (c, a) n -> if c && a then n + 1 else n) seen 0

let q_ms h p = Telemetry.quantile h p *. 1e3

let move () =
  let n = !flows in
  Util.banner
    (Printf.sprintf "move: instrumented %d-flow moveInternal (telemetry on)" n);
  let tel, mr = run_move n in
  Util.row "  %-30s %12d\n" "chunks moved" mr.Controller.chunks_moved;
  Util.row "  %-30s %12d\n" "bytes moved" mr.Controller.bytes_moved;
  Util.row "  %-30s %12.1f\n" "move duration (ms)" (Util.ms mr.Controller.duration);
  let h_op = Telemetry.histogram tel "controller.op_latency" in
  let h_ser = Telemetry.histogram tel "controller.serialization_window" in
  Util.row "  %-30s %12d  p50=%.3fms p99=%.3fms\n" "southbound ops"
    (Telemetry.hist_count h_op) (q_ms h_op 0.5) (q_ms h_op 0.99);
  Util.row "  %-30s %12d  p50=%.3fms p99=%.3fms\n" "serialization windows"
    (Telemetry.hist_count h_ser) (q_ms h_ser 0.5) (q_ms h_ser 0.99);
  let tr = Telemetry.trace tel in
  Util.row "  %-30s %12d  (%d overwritten)\n" "trace spans"
    (Telemetry.Trace.total tr)
    (Telemetry.Trace.overwritten tr);
  Util.row "  %-30s %12d\n" "linked controller+agent ops" (linked_ops tel);
  Util.maybe_dump_trace tel

let report () =
  let n = !flows in
  Util.banner
    (Printf.sprintf "telemetry: registry snapshot after a %d-flow move" n);
  let tel, _mr = run_move n in
  let h = Telemetry.histogram tel "controller.serialization_window" in
  Util.row "  serialization window: n=%d p50=%.3f ms p99=%.3f ms max=%.3f ms\n"
    (Telemetry.hist_count h) (q_ms h 0.5) (q_ms h 0.99)
    (Telemetry.hist_max h *. 1e3);
  Format.printf "%a@." Telemetry.pp tel;
  Util.maybe_dump_trace tel
