(* §2's failure-recovery analysis, quantified.

   The paper argues three options for surviving a middlebox failure:
   a hot standby processing a copy of every packet (correct but doubles
   compute and network), periodic whole-state snapshots (cheaper but
   loses whatever was created since the last snapshot), and OpenMB's
   introspection events mirroring only the critical state (as effective
   as the standby at a tiny fraction of the cost).  This experiment
   runs all three against the same NAT workload and failure. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_apps

let internal = "10.0.0.0/8"
let n_connections = 200
let fail_at = 13.0
let snapshot_interval = 5.0

let data_packets_per_conn = 15

(* Each connection is a SYN (which creates the mapping) followed by a
   train of data packets — the traffic a hot standby must duplicate in
   full while the other schemes only care about the mapping. *)
let conn_packets i =
  let start = 0.2 +. (0.06 *. float_of_int i) in
  let src = Addr.of_string (Printf.sprintf "10.0.%d.%d" (i / 200) (1 + (i mod 200))) in
  let mk ~id ~ts ?(flags = Packet.no_flags) ?(tokens = [||]) () =
    Packet.make ~flags
      ~body:(Packet.Raw (Payload.of_tokens tokens))
      ~id ~ts:(Time.seconds ts) ~src_ip:src ~dst_ip:(Addr.of_string "1.1.1.5")
      ~src_port:(5000 + i) ~dst_port:443 ~proto:Packet.Tcp ()
  in
  mk ~id:(i * 100) ~ts:start ~flags:Packet.syn_flags ()
  :: List.init data_packets_per_conn (fun k ->
         mk
           ~id:((i * 100) + k + 1)
           ~ts:(start +. (0.05 *. float_of_int (k + 1)))
           ~tokens:(Array.init 6 (fun t -> (i * 64) + t))
           ())

let mapping_wire_bytes = 96 (* serialized mapping record *)
let event_wire_bytes = 150 (* introspection event incl. framing *)

type outcome = {
  mappings_at_failure : int;
  restored : int;
  overhead_bytes : int;  (** Extra wire bytes spent before the failure. *)
  overhead_pkts : int;  (** Extra packets processed before the failure. *)
}

(* Hot standby: every packet is duplicated to a second instance. *)
let hot_standby () =
  let engine = Engine.create () in
  let mk name =
    Nat.create engine ~name ~external_ip:(Addr.of_string "5.5.5.5")
      ~internal_prefix:(Addr.prefix_of_string internal) ()
  in
  let primary = mk "primary" and standby = mk "standby" in
  Mb_base.set_egress (Nat.base primary) (fun _ -> ());
  Mb_base.set_egress (Nat.base standby) (fun _ -> ());
  let duplicated = ref 0 and dup_bytes = ref 0 in
  for i = 0 to n_connections - 1 do
    List.iter
      (fun (p : Packet.t) ->
        if Time.to_seconds p.Packet.ts < fail_at then
          ignore
            (Engine.schedule_at engine p.Packet.ts (fun () ->
                 Nat.receive primary p;
                 Nat.receive standby p;
                 incr duplicated;
                 dup_bytes := !dup_bytes + Packet.wire_bytes p)))
      (conn_packets i)
  done;
  Engine.run engine;
  {
    mappings_at_failure = Nat.mapping_count primary;
    restored = Nat.mapping_count standby;
    overhead_bytes = !dup_bytes;
    overhead_pkts = !duplicated;
  }

(* Periodic snapshots: the full mapping table is copied every
   [snapshot_interval]; a failure loses everything since the last
   copy. *)
let snapshots () =
  let engine = Engine.create () in
  let primary =
    Nat.create engine ~name:"primary" ~external_ip:(Addr.of_string "5.5.5.5")
      ~internal_prefix:(Addr.prefix_of_string internal) ()
  in
  Mb_base.set_egress (Nat.base primary) (fun _ -> ());
  let last_snapshot = ref [] in
  let snapshot_bytes = ref 0 in
  let rec snap at =
    if at < fail_at then
      ignore
        (Engine.schedule_at engine (Time.seconds at) (fun () ->
             last_snapshot := Nat.mappings primary;
             snapshot_bytes :=
               !snapshot_bytes + (List.length !last_snapshot * mapping_wire_bytes);
             snap (at +. snapshot_interval)))
  in
  snap snapshot_interval;
  for i = 0 to n_connections - 1 do
    List.iter
      (fun (p : Packet.t) ->
        if Time.to_seconds p.Packet.ts < fail_at then
          ignore (Engine.schedule_at engine p.Packet.ts (fun () -> Nat.receive primary p)))
      (conn_packets i)
  done;
  Engine.run engine;
  {
    mappings_at_failure = Nat.mapping_count primary;
    restored = List.length !last_snapshot;
    overhead_bytes = !snapshot_bytes;
    overhead_pkts = 0;
  }

(* OpenMB: the failover application mirrors critical state from
   introspection events and restores it into a cold replacement.
   [plan], when given, subjects the controller channels (and the
   primary) to a fault-injection plan. *)
type introspection_outcome = {
  base : outcome;
  mirrored : int;  (** Records in the watcher's mirror at failure time. *)
  recovery : Time.t;  (** Failure to reroute-complete. *)
  counters : Controller.counters;
}

let introspection_run ?plan () =
  let config =
    {
      Controller.default_config with
      quiescence = Time.ms 200.0;
      (* Tight enough that retries under a fault plan land within the
         run instead of after the default 30 s idle window. *)
      request_timeout = Time.seconds 1.0;
      retry_backoff_cap = Time.seconds 8.0;
      max_retries = 4;
    }
  in
  let scenario = Scenario.create ~ctrl_config:config ?faults:plan ~with_recorder:false () in
  let engine = Scenario.engine scenario in
  let mk name =
    Nat.create engine ~name ~external_ip:(Addr.of_string "5.5.5.5")
      ~internal_prefix:(Addr.prefix_of_string internal) ()
  in
  let primary = mk "primary" and replacement = mk "replacement" in
  Scenario.attach_mb scenario ~port:"primary" ~receive:(Nat.receive primary)
    ~base:(Nat.base primary) ~impl:(Nat.impl primary);
  Scenario.attach_mb scenario ~port:"replacement" ~receive:(Nat.receive replacement)
    ~base:(Nat.base replacement) ~impl:(Nat.impl replacement);
  Scenario.install_default_route scenario ~port:"primary";
  let watcher = Failover.watch scenario ~mb:"primary" ~codes:[ "nat.new_mapping" ] () in
  let mappings_at_failure = ref 0 in
  for i = 0 to n_connections - 1 do
    List.iter
      (fun (p : Packet.t) ->
        if Time.to_seconds p.Packet.ts < fail_at then
          Scenario.at scenario p.Packet.ts (fun () ->
              Switch.receive (Scenario.switch scenario) p))
      (conn_packets i)
  done;
  let restored = ref 0 in
  let mirrored = ref 0 in
  let rerouted_at = ref Time.zero in
  Scenario.at scenario (Time.seconds fail_at) (fun () ->
      mappings_at_failure := Nat.mapping_count primary;
      mirrored := Failover.tracked watcher;
      Failover.fail_over watcher ~replacement:"replacement" ~dst_port:"replacement"
        ~on_done:(fun r ->
          restored := r.Failover.restored;
          rerouted_at := r.Failover.rerouted_at)
        ());
  Scenario.run scenario;
  Util.maybe_dump_trace (Scenario.telemetry scenario);
  {
    base =
      {
        mappings_at_failure = !mappings_at_failure;
        restored = !restored;
        overhead_bytes = !mappings_at_failure * event_wire_bytes;
        overhead_pkts = 0;
      };
    mirrored = !mirrored;
    recovery = Time.(!rerouted_at - Time.seconds fail_at);
    counters = Controller.counters (Scenario.controller scenario);
  }

let introspection () = (introspection_run ()).base

(* ------------------------------------------------------------------ *)
(* --faults <seed>: the same recovery under a named fault plan          *)
(* ------------------------------------------------------------------ *)

(* Set by the driver (bench failover --faults <seed>). *)
let fault_seed : int option ref = ref None

(* Only the primary is crash-eligible: the replacement must stay up for
   the restore to have somewhere to land (the controller still retries
   its messages through the faulty links). *)
let fault_plan seed =
  Openmb_sim.Faults.random_plan ~seed ~mbs:[ "primary" ]
    ~horizon:(Time.seconds (fail_at +. 2.0))

let append_bench_row ~seed (o : introspection_outcome) =
  let open Openmb_wire in
  let bench_file = "BENCH_micro.json" in
  let existing =
    if Sys.file_exists bench_file then
      match
        Json.of_string (In_channel.with_open_text bench_file In_channel.input_all)
      with
      | Json.Assoc fields -> fields
      | _ | (exception Json.Parse_error _) -> []
    else []
  in
  let label = "failover-faults" in
  let entry =
    Json.Assoc
      [
        ("seed", Json.Int seed);
        ("recovery_ms", Json.Float (Time.to_seconds o.recovery *. 1e3));
        ("retries", Json.Int o.counters.Controller.op_retries);
        ("timeouts", Json.Int o.counters.Controller.op_timeouts);
        ("mappings", Json.Int o.base.mappings_at_failure);
        ("mirrored", Json.Int o.mirrored);
        ("restored", Json.Int o.base.restored);
      ]
  in
  let fields = List.remove_assoc label existing @ [ (label, entry) ] in
  Out_channel.with_open_text bench_file (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty (Json.Assoc fields));
      Out_channel.output_char oc '\n');
  Printf.printf "  [json] wrote %s (label %S, seed %d)\n" bench_file label seed

let run_faults seed =
  Util.banner
    (Printf.sprintf "Failure recovery under fault plan %d (drops, dups, crashes)" seed);
  let clean = introspection_run () in
  let faulted = introspection_run ~plan:(fault_plan seed) () in
  Util.row "  %-22s %10s %10s %10s %12s %8s\n" "" "mappings" "mirrored" "restored"
    "recovery(ms)" "retries";
  let show name (o : introspection_outcome) =
    Util.row "  %-22s %10d %10d %10d %12.1f %8d\n" name o.base.mappings_at_failure
      o.mirrored o.base.restored
      (Time.to_seconds o.recovery *. 1e3)
      o.counters.Controller.op_retries
  in
  show "fault-free" clean;
  show (Printf.sprintf "fault plan %d" seed) faulted;
  Format.printf "  controller under faults: %a@." Controller.pp_counters faulted.counters;
  Printf.printf
    "  Dropped events thin the mirror (lost mappings); dropped control\n\
    \  messages stretch recovery by retry backoff, never losing the restore.\n";
  append_bench_row ~seed faulted

let run_battery () =
  Util.banner "Section 2: failure-recovery options for a NAT, quantified";
  let show name (o : outcome) =
    Util.row "  %-22s %10d %10d %8d %14d\n" name o.mappings_at_failure o.restored
      (o.mappings_at_failure - o.restored)
      o.overhead_bytes
  in
  Util.row "  %-22s %10s %10s %8s %14s\n" "" "mappings" "restored" "lost" "overhead (B)";
  show "hot standby" (hot_standby ());
  show "periodic snapshots" (snapshots ());
  show "OpenMB introspection" (introspection ());
  Printf.printf
    "  The standby loses nothing but processes every packet twice (overhead\n\
    \  shown is the duplicated wire bytes).  Snapshots lose whatever arrived\n\
    \  since the last interval.  Introspection mirroring loses nothing and\n\
    \  its overhead is one small event per state creation (R6).\n"

let run () =
  match !fault_seed with Some seed -> run_faults seed | None -> run_battery ()
