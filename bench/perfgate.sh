#!/bin/sh
# One-command perf + fault gate (also available as `dune build @perfgate`):
#
#   1. build the bench and chaos binaries — once, up front: everything
#      below invokes _build artifacts directly, because running dune
#      inside dune deadlocks on the build lock
#   2. fresh micro-benchmark run, diffed against the committed
#      BENCH_micro.json "after" baseline; any benchmark more than 20%
#      slower fails the gate
#   3. telemetry-overhead gate: the tracked scheduler rows re-measured
#      with a live metric registry attached must stay within 5% of
#      their registry-free twins (min-of-3 rounds, off/on pair also
#      recorded under the "micro-telemetry" label)
#   4. CHAOS_ITERS=5 chaos smoke: the full fault-plan suite at reduced
#      iteration count
#
# Usage: bench/perfgate.sh   (from anywhere inside the repo)
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe test/test_chaos.exe
bench="$PWD/_build/default/bench/main.exe"
chaos="$PWD/_build/default/test/test_chaos.exe"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
# micro --json writes ./BENCH_micro.json: run it in a scratch directory
# so the committed baseline is never clobbered.
(cd "$tmp" && "$bench" micro --json --label fresh)
"$bench" micro --compare "BENCH_micro.json#after" "$tmp/BENCH_micro.json#fresh"
(cd "$tmp" && "$bench" micro-telemetry --gate 5 --json --label micro-telemetry)
CHAOS_ITERS=5 "$chaos"
echo "perfgate: OK"
