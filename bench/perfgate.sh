#!/bin/sh
# One-command perf + fault gate (also available as `dune build @perfgate`):
#
#   1. build the bench and chaos binaries — once, up front: everything
#      below invokes _build artifacts directly, because running dune
#      inside dune deadlocks on the build lock
#   2. fresh micro-benchmark run (best of 3 rounds — single Bechamel
#      estimates jitter by tens of percent on a loaded single-core
#      machine, so the gate compares noise-floor minima on both sides),
#      diffed against the committed BENCH_micro.json "after" baseline
#      (itself recorded with --rounds 3); any benchmark more than 20%
#      slower fails the gate, and so does a baseline row the fresh run
#      no longer produces (a gone row means the gate stopped measuring)
#   3. baseline completeness: the committed BENCH_micro.json must still
#      carry the micro baseline and the sharded-scale sweep rows — a
#      gate comparing against a missing label must fail loudly, not
#      silently skip
#   4. sharded-scale smoke: the 8-shard engine on 4 domains at reduced
#      flow count, with a modest absolute events/sec floor (the full
#      10M-flow sweep is recorded in BENCH_micro.json, not rerun here)
#   5. batch-path gate: the pktpath macro at batching factors 1 and 64
#      must show the vectorized path at least 5x the scalar packet rate
#      (the full 1/16/64/256 sweep is recorded in BENCH_micro.json, not
#      rerun here)
#   5b. flow-state-core gate: the flat open-addressing table must beat
#      the Hashtbl baseline by at least 1.3x on 1M-entry find hits (it
#      measures ~3x when the machine is quiet; the floor catches a
#      probe path that collapsed, not scheduler noise)
#   6. telemetry-overhead gate: the tracked scheduler rows re-measured
#      with a live metric registry attached must stay within 5% of
#      their registry-free twins (min-of-3 rounds, off/on pair also
#      recorded under the "micro-telemetry" label)
#   6b. observability-overhead gate: the chain workload rerun with the
#      full Timeseries scraper + SLO evaluation attached must stay
#      within 3% (tick cost measured in-process — wall-pair quotients
#      swing by tens of percent on a loaded single-core machine)
#   7. CHAOS_ITERS=5 chaos smoke: the full fault-plan suite at reduced
#      iteration count
#   8. HA soak smoke: the reduced-scale soak bench (fingerprint must
#      match the fault-free oracle) plus a SOAK_ITERS=5 slice of the
#      chaos-soak seed matrix (the 100-seed acceptance matrix runs via
#      `dune build @soakcheck`, not here)
#
# Usage: bench/perfgate.sh   (from anywhere inside the repo)
set -eu
cd "$(dirname "$0")/.."
dune build bench/main.exe test/test_chaos.exe test/test_soak.exe
bench="$PWD/_build/default/bench/main.exe"
chaos="$PWD/_build/default/test/test_chaos.exe"
soak="$PWD/_build/default/test/test_soak.exe"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
# micro --json writes ./BENCH_micro.json: run it in a scratch directory
# so the committed baseline is never clobbered.
(cd "$tmp" && "$bench" micro --json --label fresh --rounds 3)
"$bench" micro --compare "BENCH_micro.json#after" "$tmp/BENCH_micro.json#fresh"
"$bench" micro --require-labels BENCH_micro.json \
  after,scale-d1,scale-d2,scale-d4,scale-d8,pktpath-b1,pktpath-b16,pktpath-b64,pktpath-b256,statetable-10k,statetable-1m,soak,obs
# The smoke floor is deliberately conservative: it catches a sharded
# core that collapsed (orders of magnitude), not scheduler noise on a
# loaded or single-core machine.
(cd "$tmp" && "$bench" scale --flows 20000 --domains 4 --min-events-per-sec 50000)
(cd "$tmp" && "$bench" pktpath --batch 1 --batch 64 --min-speedup 5)
(cd "$tmp" && "$bench" statetable --min-speedup 1.3)
(cd "$tmp" && "$bench" micro-telemetry --gate 5 --json --label micro-telemetry)
(cd "$tmp" && "$bench" obs --gate 3)
CHAOS_ITERS=5 "$chaos"
(cd "$tmp" && "$bench" soak)
SOAK_ITERS=5 "$soak"
echo "perfgate: OK"
