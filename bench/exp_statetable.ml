(* Flow-state core micro/macro benchmark: the flat open-addressing
   table (Flat_table, the structure behind State_table's packed fast
   path) against the Hashtbl it replaced (Five_tuple.Packed_table —
   bucket chains over boxed packed-key records), at a cache-resident
   population (10k entries) and a cache-hostile one (1M entries).

   Four steady-state ops per side, each cycling through the live keys
   in a shuffled order so the probe stream doesn't degenerate into a
   single hot line:

     find (hit)              probe a resident key
     find (miss)             probe an absent key (Robin Hood terminates
                             early on the displacement invariant; the
                             Hashtbl walks its whole bucket)
     insert (overwrite)      probe + store, no growth
     churn (delete+reinsert) backward-shift delete then re-insert — the
                             flow-expiry pattern; no tombstone build-up
                             on the flat side, cons-cell churn on the
                             Hashtbl side

   Rows are timed with plain calibrated loops (best of three rounds,
   wall clock plus Gc.minor_words deltas) rather than Bechamel: the
   sampling harness carries a per-iteration constant of a couple
   hundred ns that swamps a 30ns probe and flattens the very ratio
   this experiment exists to track.  Results are appended to
   BENCH_micro.json as "statetable-10k" / "statetable-1m".

   With --min-speedup S the run fails unless the find (hit) speedup of
   flat over Hashtbl at the largest population reaches S.  The floor
   deliberately sits on the 1M row: at 10k both structures are
   cache-resident and the Hashtbl's shorter load chain keeps it
   competitive on raw probes (the flat side's win there is the zero
   allocation); at 1M every bucket chase is a cache miss and the flat
   layout pulls ahead by design. *)

open Openmb_net

(* Set by the driver (bench statetable --min-speedup S). *)
let min_speedup : float option ref = ref None

(* (tag, entries, timed iterations) — iterations sized so each row
   takes a few hundred ms of wall clock. *)
let sizes = [ ("10k", 10_000, 5_000_000); ("1m", 1_000_000, 2_000_000) ]

let rounds = 3

(* Every key shares one destination word; sources are distinct
   10.x.y.z addresses with ports cycling under the address bits —
   distinct for 0 <= i < 2^24. *)
let dst_pb =
  Five_tuple.word_b
    {
      Five_tuple.src_ip = Addr.of_int 0;
      dst_ip = Addr.of_string "1.1.1.5";
      src_port = 0;
      dst_port = 443;
      proto = Packet.Tcp;
    }

let key_words i =
  (((0x0A000000 lor (i lsr 14)) lsl 16) lor (1024 + (i land 0x3FFF)), dst_pb)

type fixture = {
  n : int;
  ka : int array;  (* key word a, resident keys *)
  kb : int array;
  kh : int array;  (* precomputed hash *)
  packed : Five_tuple.packed array;  (* same keys, boxed for the Hashtbl *)
  order : int array;  (* shuffled probe order over 0..n-1 *)
  miss_ka : int array;  (* absent keys (disjoint address space) *)
  miss_kb : int array;
  miss_kh : int array;
  miss_packed : Five_tuple.packed array;
  flat : int Flat_table.t;
  htbl : int Five_tuple.Packed_table.t;
}

let build_fixture n =
  let ka = Array.make n 0 and kb = Array.make n 0 and kh = Array.make n 0 in
  let miss_ka = Array.make n 0 and miss_kb = Array.make n 0 and miss_kh = Array.make n 0 in
  for i = 0 to n - 1 do
    let pa, pb = key_words i in
    ka.(i) <- pa;
    kb.(i) <- pb;
    kh.(i) <- Five_tuple.hash_words ~pa ~pb;
    (* Absent keys: a disjoint source-address space (bit 25 of i). *)
    let mpa, mpb = key_words (i lor 0x1000000) in
    miss_ka.(i) <- mpa;
    miss_kb.(i) <- mpb;
    miss_kh.(i) <- Five_tuple.hash_words ~pa:mpa ~pb:mpb
  done;
  let packed = Array.init n (fun i -> Five_tuple.pack_words ~pa:ka.(i) ~pb:kb.(i)) in
  let miss_packed =
    Array.init n (fun i -> Five_tuple.pack_words ~pa:miss_ka.(i) ~pb:miss_kb.(i))
  in
  let flat = Flat_table.create ~capacity:n () in
  let htbl = Five_tuple.Packed_table.create n in
  for i = 0 to n - 1 do
    Flat_table.replace flat ~pa:ka.(i) ~pb:kb.(i) ~h:kh.(i) i;
    Five_tuple.Packed_table.replace htbl packed.(i) i
  done;
  (* Shuffled probe order: a full-period multiplicative walk (the
     stride is odd and coprime to 5, so coprime to both sizes). *)
  let order = Array.init n (fun i -> i * 2654435761 mod n) in
  { n; ka; kb; kh; packed; order; miss_ka; miss_kb; miss_kh; miss_packed; flat; htbl }

(* Best-of-[rounds] timing of [f iters]: wall-clock ns/op and minor
   words/op.  The minimum discards scheduling noise the same way the
   perfgate's min-of-N micro rounds do. *)
let time_op ~iters f =
  f 10_000;
  (* warm-up *)
  let best_ns = ref infinity and best_mnw = ref infinity in
  for _ = 1 to rounds do
    let mw0 = Gc.minor_words () in
    let t0 = Monotonic_clock.now () in
    f iters;
    let ns =
      Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. float_of_int iters
    in
    let mnw = (Gc.minor_words () -. mw0) /. float_of_int iters in
    if ns < !best_ns then best_ns := ns;
    if mnw < !best_mnw then best_mnw := mnw
  done;
  (!best_ns, !best_mnw)

(* The cursor walk shared by every row: each op consumes the next index
   of the shuffled order.  Its cost (an array load and a mod) is part of
   every row on both sides, so ratios are unaffected. *)
let ops fx =
  let cursor = ref 0 in
  let next () =
    let i = fx.order.(!cursor) in
    cursor := (!cursor + 1) mod fx.n;
    i
  in
  [
    ( "find hit",
      (fun iters ->
        for _ = 1 to iters do
          let i = next () in
          ignore
            (Flat_table.find fx.flat ~pa:(Array.unsafe_get fx.ka i)
               ~pb:(Array.unsafe_get fx.kb i) ~h:(Array.unsafe_get fx.kh i))
        done),
      fun iters ->
        for _ = 1 to iters do
          let i = next () in
          ignore (Five_tuple.Packed_table.find_opt fx.htbl (Array.unsafe_get fx.packed i))
        done );
    ( "find miss",
      (fun iters ->
        for _ = 1 to iters do
          let i = next () in
          ignore
            (Flat_table.find fx.flat ~pa:(Array.unsafe_get fx.miss_ka i)
               ~pb:(Array.unsafe_get fx.miss_kb i) ~h:(Array.unsafe_get fx.miss_kh i))
        done),
      fun iters ->
        for _ = 1 to iters do
          let i = next () in
          ignore
            (Five_tuple.Packed_table.find_opt fx.htbl
               (Array.unsafe_get fx.miss_packed i))
        done );
    ( "insert",
      (fun iters ->
        for _ = 1 to iters do
          let i = next () in
          Flat_table.replace fx.flat ~pa:(Array.unsafe_get fx.ka i)
            ~pb:(Array.unsafe_get fx.kb i) ~h:(Array.unsafe_get fx.kh i) i
        done),
      fun iters ->
        for _ = 1 to iters do
          let i = next () in
          Five_tuple.Packed_table.replace fx.htbl (Array.unsafe_get fx.packed i) i
        done );
    ( "churn",
      (fun iters ->
        for _ = 1 to iters do
          let i = next () in
          let pa = Array.unsafe_get fx.ka i
          and pb = Array.unsafe_get fx.kb i
          and h = Array.unsafe_get fx.kh i in
          ignore (Flat_table.remove fx.flat ~pa ~pb ~h : bool);
          Flat_table.replace fx.flat ~pa ~pb ~h i
        done),
      fun iters ->
        for _ = 1 to iters do
          let i = next () in
          let k = Array.unsafe_get fx.packed i in
          Five_tuple.Packed_table.remove fx.htbl k;
          Five_tuple.Packed_table.replace fx.htbl k i
        done );
  ]

let run () =
  Util.banner
    "Flow-state core: flat open-addressing table vs. Hashtbl bucket chains";
  let gate_speedup = ref infinity in
  List.iter
    (fun (tag, n, iters) ->
      let fx = build_fixture n in
      Gc.compact ();
      Util.row "  %-28s %12s %12s %9s %11s %11s\n"
        (Printf.sprintf "%s entries" tag) "flat(ns)" "htbl(ns)" "speedup"
        "flat mnw/op" "htbl mnw/op";
      let rows =
        List.map
          (fun (op, flat_op, htbl_op) ->
            let f_ns, f_mnw = time_op ~iters flat_op in
            let h_ns, h_mnw = time_op ~iters htbl_op in
            let speedup = h_ns /. f_ns in
            if String.equal op "find hit" then gate_speedup := speedup;
            Util.row "  %-28s %12.1f %12.1f %8.2fx %11.2f %11.2f\n" op f_ns h_ns
              speedup f_mnw h_mnw;
            (op, f_ns, f_mnw, h_ns, h_mnw, speedup))
          (ops fx)
      in
      let open Openmb_wire in
      Util.append_row
        (Printf.sprintf "statetable-%s" tag)
        (Json.Assoc
           (("entries", Json.Int n)
           :: List.concat_map
                (fun (op, f_ns, f_mnw, h_ns, h_mnw, speedup) ->
                  let slug = String.map (fun c -> if c = ' ' then '_' else c) op in
                  [
                    (slug ^ "_flat_ns", Json.Float f_ns);
                    (slug ^ "_hashtbl_ns", Json.Float h_ns);
                    (slug ^ "_speedup", Json.Float speedup);
                    (slug ^ "_flat_minor_words", Json.Float f_mnw);
                    (slug ^ "_hashtbl_minor_words", Json.Float h_mnw);
                  ])
                rows)))
    sizes;
  (* !gate_speedup is the find-hit ratio of the last (largest) size. *)
  match !min_speedup with
  | None -> ()
  | Some gate ->
    if !gate_speedup < gate then
      failwith
        (Printf.sprintf
           "statetable: 1M-entry find-hit speedup %.2fx below the --min-speedup %.2fx gate"
           !gate_speedup gate)
    else
      Util.row "  [gate] 1M-entry find-hit speedup %.2fx >= %.2fx\n" !gate_speedup gate
