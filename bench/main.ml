(* OpenMB benchmark harness.

   Regenerates every table and figure of the paper's evaluation (§8)
   plus the design-choice ablations.  With no arguments it runs the
   whole battery; pass experiment names to run a subset:

     dune exec bench/main.exe             # everything
     dune exec bench/main.exe table3 fig8 # a subset
     dune exec bench/main.exe -- --list   # available experiments

   The micro experiment additionally honours --json [--label NAME],
   which merges its results into BENCH_micro.json under that label
   (default "current") so the perf trajectory is tracked across PRs:

     dune exec bench/main.exe -- micro --json --label after

   micro --compare BEFORE.json AFTER.json skips the benchmarks and
   instead diffs two result files (flat results or BENCH_micro.json
   labelled files — the last label wins), exiting non-zero when any
   benchmark regressed by more than 20%:

     dune exec bench/main.exe -- micro --compare before.json after.json

   micro --rebaseline LABEL[,LABEL...] re-records committed baselines
   in place after a host change: the suite runs once (honouring
   --rounds) and, inside each named label of BENCH_micro.json, only the
   rows that label already tracks are overwritten — a label absent from
   the file fails the run:

     dune exec bench/main.exe -- micro --rounds 3 --rebaseline after

   failover --faults SEED swaps the failover battery for a single
   recovery run under the named deterministic fault plan (message drops
   and duplication, latency spikes, a possible primary crash),
   reporting recovery time and controller retries and appending the row
   to BENCH_micro.json under the "failover-faults" label:

     dune exec bench/main.exe -- failover --faults 42 *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("fig7", "MB actions during scale-up (timeline)", Exp_scenarios.fig7);
    ("fig8", "flow-duration CDF and deprecated-MB hold-up", Exp_scenarios.fig8);
    ("table2", "applicability matrix of MB control schemes", Exp_scenarios.table2);
    ("table3", "RE in live migration: encoded vs. undecodable", Exp_scenarios.table3);
    ("fig9ab", "get/put processing time vs. state chunks", Exp_mb.fig9ab);
    ("fig9cd", "re-process events vs. packet rate", Exp_mb.fig9cd);
    ("fig10a", "controller move time, with/without events", Exp_controller.fig10a);
    ("fig10b", "controller move time vs. simultaneous moves", Exp_controller.fig10b);
    ("snapshot", "VM-snapshot baseline sizes and log damage", Exp_scenarios.snapshot);
    ("splitmerge", "Split/Merge halt-and-buffer latency", Exp_scenarios.splitmerge);
    ("correctness", "migrated-MB output equals unmodified MB", Exp_scenarios.correctness);
    ("latency", "per-packet latency, normal vs. during get", Exp_mb.latency);
    ("compression", "state-transfer compression (section 8.3)", Exp_controller.compression);
    ( "ablation-events",
      "what breaks without re-process events",
      Exp_scenarios.ablation_events );
    ( "ablation-delete",
      "immediate vs. quiescence-deferred delete",
      Exp_scenarios.ablation_delete );
    ( "ablation-broker",
      "controller-brokered vs. direct transfer",
      Exp_controller.ablation_broker );
    ( "ablation-scan",
      "linear-scan get vs. indexed lookup (footnote 6)",
      Exp_micro.scan_vs_index );
    ("failover", "failure-recovery options quantified (section 2)", Exp_failover.run);
    ("micro", "Bechamel micro-benchmarks of hot primitives", Exp_micro.run);
    ( "scale",
      "million-flow switch+NAT+monitor chain with concurrent move",
      Exp_scale.run );
    ( "move",
      "instrumented move: spans, linked op ids, latency histograms",
      Exp_telemetry.move );
    ( "telemetry",
      "registry snapshot + serialization-window quantiles of a move",
      Exp_telemetry.report );
    ( "micro-telemetry",
      "overhead of a live registry on the tracked scheduler rows",
      Exp_micro.run_telemetry );
    ( "pktpath",
      "batched vs. scalar packet path through switch+NAT+monitor",
      Exp_pktpath.run );
    ( "statetable",
      "flat open-addressing flow-state core vs. Hashtbl, 10k and 1M entries",
      Exp_statetable.run );
    ( "soak",
      "HA chaos soak: replicated controller vs. fault-free oracle",
      Exp_soak.run );
    ( "obs",
      "time-series scrape overhead on the chain workload (3% gate target)",
      Exp_obs.run );
  ]

let list_experiments () =
  print_endline "Available experiments:";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-16s %s\n" name descr) experiments

let run_one name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) experiments with
  | Some (_, _, f) -> f ()
  | None ->
    Printf.eprintf "unknown experiment %S\n" name;
    list_experiments ();
    exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
    List.iter
      (fun (name, _, f) ->
        (* The million-flow macro takes minutes: explicit opt-in only. *)
        if not (String.equal name "scale") then begin
          Printf.printf "\n>>> %s\n%!" name;
          f ();
          Printf.printf "%!"
        end)
      experiments
  | _ :: args ->
    (* Strip flags before dispatching on experiment names. *)
    let rec strip = function
      | [] -> []
      | "--json" :: rest ->
        if !Exp_micro.json_label = None then Exp_micro.json_label := Some "current";
        strip rest
      | "--label" :: label :: rest ->
        Exp_micro.json_label := Some label;
        strip rest
      | "--compare" :: before :: after :: _ ->
        (* A comparison replaces the run entirely: diff the two result
           files and exit, failing the invocation on regressions. *)
        exit (if Exp_micro.compare_results before after > 0 then 1 else 0)
      | "--compare" :: _ ->
        Printf.eprintf "usage: micro --compare BEFORE.json AFTER.json\n";
        exit 2
      | "--faults" :: seed :: rest when int_of_string_opt seed <> None ->
        Exp_failover.fault_seed := int_of_string_opt seed;
        strip rest
      | "--faults" :: _ ->
        Printf.eprintf "usage: failover --faults SEED\n";
        exit 2
      | "--flows" :: count :: rest when int_of_string_opt count <> None ->
        (match int_of_string_opt count with
        | Some c when c > 0 ->
          Exp_scale.flows := c;
          Exp_telemetry.flows := c;
          Exp_obs.flows := c
        | _ ->
          Printf.eprintf "usage: scale|move --flows N (N > 0)\n";
          exit 2);
        strip rest
      | "--flows" :: _ ->
        Printf.eprintf "usage: scale|move --flows N\n";
        exit 2
      | "--domains" :: count :: rest when int_of_string_opt count <> None ->
        (match int_of_string_opt count with
        | Some d when d > 0 -> Exp_scale.domains := d
        | _ ->
          Printf.eprintf "usage: scale --domains D (D > 0)\n";
          exit 2);
        strip rest
      | "--domains" :: _ ->
        Printf.eprintf "usage: scale --domains D\n";
        exit 2
      | "--batch" :: size :: rest when int_of_string_opt size <> None ->
        (match int_of_string_opt size with
        | Some b when b > 0 -> Exp_pktpath.batches := b :: !Exp_pktpath.batches
        | _ ->
          Printf.eprintf "usage: pktpath --batch N (N > 0, repeatable)\n";
          exit 2);
        strip rest
      | "--batch" :: _ ->
        Printf.eprintf "usage: pktpath --batch N\n";
        exit 2
      | "--min-speedup" :: factor :: rest when float_of_string_opt factor <> None ->
        (match float_of_string_opt factor with
        | Some s when s > 0.0 ->
          (* The floor applies to whichever gated experiment runs. *)
          Exp_pktpath.min_speedup := Some s;
          Exp_statetable.min_speedup := Some s
        | _ ->
          Printf.eprintf "usage: pktpath|statetable --min-speedup S (S > 0)\n";
          exit 2);
        strip rest
      | "--min-speedup" :: _ ->
        Printf.eprintf "usage: pktpath|statetable --min-speedup S\n";
        exit 2
      | "--min-events-per-sec" :: rate :: rest when float_of_string_opt rate <> None ->
        (match float_of_string_opt rate with
        | Some r when r > 0.0 -> Exp_scale.min_events_per_sec := r
        | _ ->
          Printf.eprintf "usage: scale --min-events-per-sec RATE (RATE > 0)\n";
          exit 2);
        strip rest
      | "--min-events-per-sec" :: _ ->
        Printf.eprintf "usage: scale --min-events-per-sec RATE\n";
        exit 2
      | "--require-labels" :: file :: labels :: _ ->
        (* A label check replaces the run: verify the result file holds
           every comma-separated label, exiting non-zero otherwise so
           gates fail loudly instead of comparing against nothing. *)
        exit
          (if
             Exp_micro.require_labels file (String.split_on_char ',' labels) > 0
           then 1
           else 0)
      | "--require-labels" :: _ ->
        Printf.eprintf "usage: micro --require-labels FILE LABEL[,LABEL...]\n";
        exit 2
      | "--trace-out" :: file :: rest when String.length file > 0 ->
        Util.trace_out := Some file;
        strip rest
      | "--trace-out" :: _ ->
        Printf.eprintf "usage: move|telemetry|failover|scale --trace-out FILE.json\n";
        exit 2
      | "--rebaseline" :: labels :: rest when String.length labels > 0 ->
        Exp_micro.rebaseline_labels := String.split_on_char ',' labels;
        strip rest
      | "--rebaseline" :: _ ->
        Printf.eprintf "usage: micro --rebaseline LABEL[,LABEL...]\n";
        exit 2
      | "--dash" :: rest ->
        Util.dash := true;
        strip rest
      | "--rounds" :: n :: rest when int_of_string_opt n <> None ->
        (match int_of_string_opt n with
        | Some r when r > 0 ->
          Exp_micro.micro_rounds := r;
          Exp_obs.rounds := r
        | _ ->
          Printf.eprintf "usage: micro --rounds N (N > 0)\n";
          exit 2);
        strip rest
      | "--rounds" :: _ ->
        Printf.eprintf "usage: micro --rounds N\n";
        exit 2
      | "--threshold" :: pct :: rest when float_of_string_opt pct <> None ->
        (match float_of_string_opt pct with
        | Some p when p > 0.0 -> Exp_micro.regression_threshold := p /. 100.0
        | _ ->
          Printf.eprintf "usage: micro --threshold PCT (PCT > 0)\n";
          exit 2);
        strip rest
      | "--threshold" :: _ ->
        Printf.eprintf "usage: micro --threshold PCT\n";
        exit 2
      | "--gate" :: pct :: rest when float_of_string_opt pct <> None ->
        (* The budget applies to whichever gated experiment runs. *)
        Exp_micro.telemetry_gate := float_of_string_opt pct;
        Exp_obs.gate := float_of_string_opt pct;
        strip rest
      | "--gate" :: _ ->
        Printf.eprintf "usage: micro-telemetry|obs --gate PCT\n";
        exit 2
      | arg :: rest -> arg :: strip rest
    in
    List.iter
      (fun arg ->
        match arg with
        | "--list" | "-l" -> list_experiments ()
        | name ->
          run_one name;
          Printf.printf "%!")
      (strip args)
  | [] -> assert false
