(* HA chaos soak as a tracked benchmark.

   A reduced-scale cousin of test/test_soak.ml's matrix: a replicated
   controller pair drives rounds of full-table moves between two MBs
   while every channel (including the replication log) suffers a
   bounded impairment profile and the leader is killed mid-move once.
   The run must converge to the fault-free single-controller oracle's
   exact state fingerprint; its cost and recovery counters are appended
   to BENCH_micro.json under the "soak" label so perfgate's
   --require-labels check keeps the row from silently disappearing and
   the soak-cost trajectory is tracked across PRs. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_apps

let seed = 0xB05ED
let flows = 24
let rounds = 4
let settle = Time.seconds 60.0

(* Every pathology is bounded and every timeout clears the jitter tail
   (lognormal mu=-3 puts the median delay at ~50 ms), mirroring the
   tuning lessons the full soak encodes: a failover timeout under the
   link's typical delay deposes healthy leaders forever. *)
let impairment_plan =
  let dirp ~drop ~jitter =
    {
      Faults.clean_dir with
      drop;
      duplicate = 0.02;
      reorder = 0.05;
      reorder_window = Time.ms 50.0;
      spike = 0.01;
      spike_delay = Time.ms 200.0;
      jitter = Some jitter;
      corrupt = 0.01;
    }
  in
  {
    (Faults.clean_plan ~seed) with
    Faults.link =
      {
        fwd = dirp ~drop:0.03 ~jitter:(Dist.Lognormal_spec { mu = -3.0; sigma = 0.5 });
        rev = dirp ~drop:0.02 ~jitter:(Dist.Uniform_spec { lo = 0.0; hi = 0.1 });
      };
    partitions =
      [ { Faults.part_from = Time.seconds 200.0; part_until = Time.seconds 205.0 } ];
  }

let ctrl_config =
  {
    Controller.default_config with
    quiescence = Time.seconds 5.0;
    channel_latency = Time.us 100.0;
    request_timeout = Time.seconds 2.0;
    retry_backoff_cap = Time.seconds 10.0;
    max_retries = 8;
  }

let replica_config =
  {
    Controller_replica.default_config with
    heartbeat_every = Time.ms 250.0;
    failover_timeout = Time.seconds 2.0;
    move_retry_backoff = Time.seconds 1.0;
    move_retry_cap = Time.seconds 30.0;
    max_move_attempts = 1000;
    cleanup_linger = Time.seconds 60.0;
    ctrl = ctrl_config;
  }

type outcome = {
  fingerprint : (string * string) list;
  failure : string option;
  virtual_s : float;
  failovers : int;
  moves_rerun : int;
  retransmits : int;
  faults_lost : int;
  obs : (Timeseries.t * Slo.t) option;
  recorder : Flight_recorder.t option;
}

let run_once ~chaos =
  let tel = Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  let plan = if chaos then impairment_plan else Faults.clean_plan ~seed in
  let faults = Faults.create ~telemetry:tel engine plan in
  (* The chaos run always carries the observability stack: a coarse
     scraper sized to the hours-long virtual horizon, SLOs, and a
     flight recorder armed to dump on the first breach.  The post-mortem
     bundle embeds the impairment plan verbatim so a failure is
     replayable from the JSON alone. *)
  let obs, recorder =
    if chaos then begin
      let ts, slo = Util.attach_obs ~every:(Time.seconds 5.0) tel engine in
      let fr =
        Flight_recorder.create ~telemetry:tel ~timeseries:ts ~slo
          ~fault_plan:(Faults.plan_to_string plan) ()
      in
      Flight_recorder.arm fr ~engine;
      (Some (ts, slo), Some fr)
    end
    else (None, None)
  in
  let mb_a = Dummy_mb.create engine ~name:"mb-a" () in
  let mb_b = Dummy_mb.create engine ~name:"mb-b" () in
  Dummy_mb.populate mb_a ~n:flows;
  let agent mb = Mb_agent.create engine ~impl:(Dummy_mb.impl mb) () in
  let replica = ref None in
  let submit, finish =
    if chaos then begin
      let r =
        Controller_replica.create engine ~config:replica_config ~faults ~telemetry:tel ()
      in
      Controller_replica.connect r (agent mb_a);
      Controller_replica.connect r (agent mb_b);
      replica := Some r;
      ( (fun ~src ~dst ~on_done -> Controller_replica.move r ~src ~dst ~key:Hfl.any ~on_done),
        fun () -> Controller_replica.stop r )
    end
    else begin
      let c = Controller.create engine ~config:ctrl_config ~faults ~telemetry:tel () in
      Controller.connect c (agent mb_a);
      Controller.connect c (agent mb_b);
      ( (fun ~src ~dst ~on_done -> Controller.move_internal c ~src ~dst ~key:Hfl.any ~on_done),
        fun () -> () )
    end
  in
  let failure = ref None in
  let fail fmt =
    Printf.ksprintf (fun s -> if !failure = None then failure := Some s) fmt
  in
  let rounds_done = ref 0 in
  let rec round r =
    if r >= rounds || !failure <> None then finish ()
    else begin
      let src, dst = if r mod 2 = 0 then ("mb-a", "mb-b") else ("mb-b", "mb-a") in
      (* One forced leader kill mid-move: 5 ms after the submission of
         round 1, revived after the failover timeout has expired so the
         standby performs the takeover. *)
      (if chaos && r = 1 then
         match !replica with
         | Some rep ->
           ignore
             (Engine.schedule_after engine (Time.ms 5.0) (fun () ->
                  match Controller_replica.leader_name rep with
                  | None -> ()
                  | Some name ->
                    Controller_replica.kill rep ~name;
                    ignore
                      (Engine.schedule_after engine (Time.seconds 20.0) (fun () ->
                           Controller_replica.revive rep ~name))))
         | None -> ());
      submit ~src ~dst ~on_done:(fun res ->
          match res with
          | Error e ->
            fail "round %d: move %s->%s failed: %s" r src dst (Errors.to_string e);
            finish ()
          | Ok _ ->
            ignore
              (Engine.schedule_after engine settle (fun () ->
                   rounds_done := r + 1;
                   round (r + 1))))
    end
  in
  round 0;
  ignore
    (Engine.schedule_after engine
       (Time.seconds (float_of_int rounds *. 2000.0))
       (fun () ->
         if !rounds_done < rounds && !failure = None then begin
           fail "soak hung: %d/%d rounds by the watchdog deadline" !rounds_done rounds;
           finish ()
         end));
  Engine.run engine;
  {
    fingerprint =
      List.sort compare (Dummy_mb.support_entries mb_a @ Dummy_mb.support_entries mb_b);
    failure = !failure;
    virtual_s = Time.to_seconds (Engine.now engine);
    failovers = (match !replica with Some r -> Controller_replica.failovers r | None -> 0);
    moves_rerun =
      (match !replica with Some r -> Controller_replica.moves_rerun r | None -> 0);
    retransmits =
      (match !replica with Some r -> Controller_replica.log_retransmits r | None -> 0);
    faults_lost = Faults.lost faults;
    obs;
    recorder;
  }

let append_bench_row (o : outcome) ~wall_ms =
  let open Openmb_wire in
  let bench_file = "BENCH_micro.json" in
  let existing =
    if Sys.file_exists bench_file then
      match
        Json.of_string (In_channel.with_open_text bench_file In_channel.input_all)
      with
      | Json.Assoc fields -> fields
      | _ | (exception Json.Parse_error _) -> []
    else []
  in
  let label = "soak" in
  let entry =
    Json.Assoc
      [
        ("seed", Json.Int seed);
        ("rounds", Json.Int rounds);
        ("flows", Json.Int flows);
        ("wall_ms", Json.Float wall_ms);
        ("virtual_s", Json.Float o.virtual_s);
        ("failovers", Json.Int o.failovers);
        ("moves_rerun", Json.Int o.moves_rerun);
        ("log_retransmits", Json.Int o.retransmits);
        ("faults_lost", Json.Int o.faults_lost);
      ]
  in
  let fields = List.remove_assoc label existing @ [ (label, entry) ] in
  Out_channel.with_open_text bench_file (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty (Json.Assoc fields));
      Out_channel.output_char oc '\n');
  Printf.printf "  [json] wrote %s (label %S, seed %d)\n" bench_file label seed

let run () =
  Util.banner "HA chaos soak: replicated controller vs. fault-free oracle";
  let oracle = run_once ~chaos:false in
  (match oracle.failure with
  | Some f -> failwith ("soak bench: oracle run failed: " ^ f)
  | None -> ());
  let t0 = Sys.time () in
  let chaos = run_once ~chaos:true in
  let wall_ms = (Sys.time () -. t0) *. 1e3 in
  (* A failing chaos run ships its black box before the exception: the
     bundle captured at the first SLO breach if one fired, otherwise a
     fresh dump of the end-of-run state. *)
  let post_mortem reason =
    match chaos.recorder with
    | None -> ()
    | Some fr ->
      let path = "soak_flight.json" in
      if Flight_recorder.dumps fr = 0 then
        ignore (Flight_recorder.dump fr ~now:(Time.seconds chaos.virtual_s) ~reason);
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Option.value ~default:"{}" (Flight_recorder.last_bundle fr)));
      Printf.printf "  [flight] wrote %s (%s)\n" path reason
  in
  (match chaos.failure with
  | Some f ->
    post_mortem ("chaos run failed: " ^ f);
    failwith ("soak bench: chaos run failed: " ^ f)
  | None -> ());
  if chaos.fingerprint <> oracle.fingerprint then begin
    post_mortem "final state diverged from the fault-free oracle";
    failwith "soak bench: final state diverged from the fault-free oracle"
  end;
  Util.maybe_dash chaos.obs;
  Util.row "  %-28s %10s %10s %12s %12s\n" "" "failovers" "reruns" "retransmits" "lost";
  Util.row "  %-28s %10d %10d %12d %12d\n"
    (Printf.sprintf "chaos (%d rounds, %d flows)" rounds flows)
    chaos.failovers chaos.moves_rerun chaos.retransmits chaos.faults_lost;
  Printf.printf
    "  fingerprint: byte-identical to the oracle (%d entries); %.0f virtual s in %.0f ms\n"
    (List.length chaos.fingerprint) chaos.virtual_s wall_ms;
  append_bench_row chaos ~wall_ms
