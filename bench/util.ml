(* Shared helpers for the benchmark harness. *)

let banner title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let section title = Printf.printf "\n--- %s ---\n" title

let row fmt = Printf.printf fmt

let paper_note fmt =
  Printf.printf "  [paper] ";
  Printf.printf fmt

(* Run a function over a fresh engine-driven setup and hand back the
   result once the simulation drains. *)
let ms t = Openmb_sim.Time.to_ms t

(* Set by the driver (--trace-out FILE): experiments that own a
   telemetry instance dump its span ring as Chrome trace_event JSON
   here after their macro completes.  When several runs share one
   invocation the last dump wins. *)
let trace_out : string option ref = ref None

let maybe_dump_trace tel =
  match !trace_out with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Openmb_sim.Telemetry.export_chrome tel oc);
    Printf.printf "  [trace] wrote %s\n" path

let mb bytes = float_of_int bytes /. 1e6

(* Set by the driver (--dash): macros that attach an observability
   scraper render the terminal dashboard after their run. *)
let dash : bool ref = ref false

(* Standard observability attachment for the macros (bench obs and the
   --dash flag on scale/soak/pktpath): a Timeseries scraper over the
   registry signals every macro shares, plus default SLOs.  Signals a
   given workload never drives render as flat zero rows.  [every] must
   scale with the macro's virtual horizon — milliseconds for
   packet-path runs, seconds for the hours-long soak. *)
let attach_obs ?(every = Openmb_sim.Time.ms 1.0) ?(cap = 512) tel engine =
  let open Openmb_sim in
  let ts = Timeseries.create ~cap engine in
  let c n = Timeseries.add ts ~name:n (Timeseries.Counter (Telemetry.counter tel n)) in
  List.iter c
    [
      "engine.events";
      "mb.pkts";
      "controller.msgs";
      "controller.evt_dropped";
      "controller.op_retries";
      "faults.dropped";
      "replica.failovers";
    ];
  Timeseries.add ts ~name:"replica.log_lag" ~mode:Timeseries.Max
    (Timeseries.Gauge (Telemetry.gauge tel "replica.log_lag"));
  let q hist quant label =
    Timeseries.add ts ~name:label
      (Timeseries.Quantile (Telemetry.histogram tel hist, quant))
  in
  q "mb.pkt_latency" 0.99 "mb.pkt_latency_p99";
  q "controller.op_latency" 0.99 "controller.op_latency_p99";
  q "controller.serialization_window" 0.99 "controller.serialization_window_p99";
  let slo = Slo.create ts in
  Slo.add slo
    (Slo.objective ~name:"pkt-p99-under-2ms" ~series:"mb.pkt_latency_p99" Slo.Le 0.002);
  Slo.add slo
    (Slo.objective ~signal:Slo.Delta ~budget:1e-6 ~name:"evt-drops-zero"
       ~series:"controller.evt_dropped" Slo.Le 0.0);
  Slo.attach slo;
  Timeseries.start ts ~every;
  (ts, slo)

let maybe_dash obs =
  if !dash then
    match obs with
    | None -> ()
    | Some (_, slo) ->
      section "dashboard";
      Openmb_sim.Slo.pp_dash Format.std_formatter slo;
      Format.pp_print_flush Format.std_formatter ()

(* Append one labelled row to BENCH_micro.json (in the current
   directory), replacing any previous row under the same label. *)
let append_row label entry =
  let open Openmb_wire in
  let bench_file = "BENCH_micro.json" in
  let existing =
    if Sys.file_exists bench_file then
      match
        Json.of_string (In_channel.with_open_text bench_file In_channel.input_all)
      with
      | Json.Assoc fields -> fields
      | _ | (exception Json.Parse_error _) -> []
    else []
  in
  let fields = List.remove_assoc label existing @ [ (label, entry) ] in
  Out_channel.with_open_text bench_file (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty (Json.Assoc fields));
      Out_channel.output_char oc '\n');
  Printf.printf "  [json] wrote %s (label %S)\n" bench_file label

(* ------------------------------------------------------------------ *)
(* GC-pressure accounting                                              *)
(* ------------------------------------------------------------------ *)

(* Allocation and collection activity over a region of code.  Words are
   OCaml heap words; [minor_words] uses [Gc.minor_words] (exact, includes
   the young-pointer delta) while the rest come from [Gc.quick_stat]. *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_delta f =
  let s0 = Gc.quick_stat () in
  let mw0 = Gc.minor_words () in
  let result = f () in
  let mw1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  ( result,
    {
      minor_words = mw1 -. mw0;
      major_words = s1.Gc.major_words -. s0.Gc.major_words;
      promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
      minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
      major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
    } )

let pp_gc_delta d =
  Printf.printf
    "  [gc] minor %.0f w, major %.0f w, promoted %.0f w, collections %d minor / %d major\n"
    d.minor_words d.major_words d.promoted_words d.minor_collections
    d.major_collections
