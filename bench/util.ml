(* Shared helpers for the benchmark harness. *)

let banner title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let section title = Printf.printf "\n--- %s ---\n" title

let row fmt = Printf.printf fmt

let paper_note fmt =
  Printf.printf "  [paper] ";
  Printf.printf fmt

(* Run a function over a fresh engine-driven setup and hand back the
   result once the simulation drains. *)
let ms t = Openmb_sim.Time.to_ms t

(* Set by the driver (--trace-out FILE): experiments that own a
   telemetry instance dump its span ring as Chrome trace_event JSON
   here after their macro completes.  When several runs share one
   invocation the last dump wins. *)
let trace_out : string option ref = ref None

let maybe_dump_trace tel =
  match !trace_out with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Openmb_sim.Telemetry.export_chrome tel oc);
    Printf.printf "  [trace] wrote %s\n" path

let mb bytes = float_of_int bytes /. 1e6

(* Append one labelled row to BENCH_micro.json (in the current
   directory), replacing any previous row under the same label. *)
let append_row label entry =
  let open Openmb_wire in
  let bench_file = "BENCH_micro.json" in
  let existing =
    if Sys.file_exists bench_file then
      match
        Json.of_string (In_channel.with_open_text bench_file In_channel.input_all)
      with
      | Json.Assoc fields -> fields
      | _ | (exception Json.Parse_error _) -> []
    else []
  in
  let fields = List.remove_assoc label existing @ [ (label, entry) ] in
  Out_channel.with_open_text bench_file (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty (Json.Assoc fields));
      Out_channel.output_char oc '\n');
  Printf.printf "  [json] wrote %s (label %S)\n" bench_file label

(* ------------------------------------------------------------------ *)
(* GC-pressure accounting                                              *)
(* ------------------------------------------------------------------ *)

(* Allocation and collection activity over a region of code.  Words are
   OCaml heap words; [minor_words] uses [Gc.minor_words] (exact, includes
   the young-pointer delta) while the rest come from [Gc.quick_stat]. *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_delta f =
  let s0 = Gc.quick_stat () in
  let mw0 = Gc.minor_words () in
  let result = f () in
  let mw1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  ( result,
    {
      minor_words = mw1 -. mw0;
      major_words = s1.Gc.major_words -. s0.Gc.major_words;
      promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
      minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
      major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
    } )

let pp_gc_delta d =
  Printf.printf
    "  [gc] minor %.0f w, major %.0f w, promoted %.0f w, collections %d minor / %d major\n"
    d.minor_words d.major_words d.promoted_words d.minor_collections
    d.major_collections
