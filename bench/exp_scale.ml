(* Million-flow macro benchmark of the simulator core.

   Drives [flows] concurrent TCP flows (default one million) through a
   switch -> NAT -> monitor chain on a single engine while a 10k-chunk
   moveInternal runs between a dummy pair on the same engine, then
   reports raw event throughput and heap footprint.  This is the
   workload the timer wheel and pooled event cells exist for: tens of
   millions of near-future events with only a handful of live
   allocations per packet.

   Flows arrive incrementally — a self-rescheduling generator
   materializes them in batches just before their start times — so the
   pending-event set stays proportional to the arrival rate, not to
   the total flow count.  The NAT is given a carrier-grade external
   address pool: one address caps out at ~45k concurrent mappings.

   bench scale [--flows N] appends its numbers to BENCH_micro.json
   under the "scale" label. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_traffic
open Openmb_apps

(* Set by the driver (bench scale --flows N). *)
let flows = ref 1_000_000

let internal_prefix = "10.0.0.0/8"
let batch_size = 1_000
let inter_arrival = Time.us 50.0 (* one flow every 50us of sim time *)
let flow_duration = 0.01 (* seconds: packets spread over 10ms *)
let move_chunks = 10_000

(* The dp must outrun the offered load (~100k pps at the default
   arrival spacing) or the backlog grows without bound: give both MBs a
   1us/packet cost model instead of their PRADS/NAT-calibrated ones. *)
let fast_cost base = { base with Southbound.per_packet = Time.us 1.0 }

(* Flow [i]'s distinct internal (ip, port): 16k ports per address,
   consecutive addresses from 10.0.0.0/8. *)
let tuple_of_flow i =
  let ip = Addr.of_int (Addr.to_int (Addr.of_string "10.0.0.1") + (i / 16_384)) in
  {
    Five_tuple.src_ip = ip;
    dst_ip = Addr.of_string "1.1.1.5";
    src_port = 1_024 + (i mod 16_384);
    dst_port = 443;
    proto = Packet.Tcp;
  }

let run () =
  let n = !flows in
  Util.banner
    (Printf.sprintf "scale: %d concurrent flows + %dk-chunk move on one engine"
       n (move_chunks / 1000));
  let tel = Telemetry.create ~span_capacity:65_536 () in
  let engine = Engine.create ~telemetry:tel () in
  (* NAT pool: enough external addresses for every flow's mapping. *)
  let pool_extra =
    let per_ip = 45_001 in
    let needed = ((n + per_ip - 1) / per_ip) + 1 in
    List.init needed (fun i -> Addr.of_int (Addr.to_int (Addr.of_string "5.5.5.0") + i + 1))
  in
  let nat =
    Nat.create engine ~telemetry:tel ~name:"nat" ~cost:(fast_cost Nat.default_cost)
      ~external_ip:(Addr.of_string "5.5.5.0")
      ~external_ips:pool_extra
      ~internal_prefix:(Addr.prefix_of_string internal_prefix)
      ()
  in
  let monitor =
    Monitor.create engine ~telemetry:tel ~name:"monitor"
      ~cost:(fast_cost Monitor.default_cost) ()
  in
  let egress = ref 0 in
  Mb_base.set_egress (Nat.base nat) (fun p -> Monitor.receive monitor p);
  Mb_base.set_egress (Monitor.base monitor) (fun _ -> incr egress);
  let sw = Switch.create engine ~telemetry:tel ~name:"edge" () in
  Switch.attach_port sw ~port:"nat"
    (Link.create engine ~name:"sw-nat" ~dst:(Nat.receive nat) ());
  ignore
    (Flow_table.install (Switch.table sw) ~priority:1 ~match_:[]
       ~action:(Flow_table.Forward "nat"));
  (* Incremental arrivals: each generator event materializes one batch
     of flows and schedules the next batch at its first start time.
     Only originator-direction packets are injected — the reverse path
     would need a translated return trace, and the forward path is
     what exercises mapping creation. *)
  let ids = Trace.Id_gen.create () in
  let prng = Prng.create ~seed:7 in
  let internal = Addr.prefix_of_string internal_prefix in
  let start_of i = Time.to_seconds inter_arrival *. float_of_int i in
  let emit_flow i =
    List.iter
      (fun (p : Packet.t) ->
        if Addr.in_prefix p.src_ip internal then
          Engine.call2_at engine p.ts Switch.receive sw p)
      (Flow_gen.tcp_flow ~ids ~prng ~tuple:(tuple_of_flow i) ~start:(start_of i)
         ~duration:flow_duration ~data_packets:1 ~content:Flow_gen.empty_content ())
  in
  let rec emit_batch b () =
    let lo = b * batch_size and hi = min n ((b + 1) * batch_size) in
    for i = lo to hi - 1 do
      emit_flow i
    done;
    if hi < n then
      ignore
        (Engine.schedule_at engine (Time.seconds (start_of hi)) (emit_batch (b + 1)))
  in
  emit_batch 0 ();
  (* Concurrent control-plane work: a 10k-chunk moveInternal between a
     dummy pair sharing the engine, kicked off mid-run. *)
  let ctrl = Controller.create engine ~telemetry:tel () in
  let src = Dummy_mb.create engine ~name:"move-src" () in
  let dst = Dummy_mb.create engine ~name:"move-dst" () in
  Dummy_mb.populate src ~n:move_chunks;
  Controller.connect ctrl
    (Mb_agent.create engine ~telemetry:tel ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl
    (Mb_agent.create engine ~telemetry:tel ~impl:(Dummy_mb.impl dst) ());
  let move_ms = ref nan in
  ignore
    (Engine.schedule_at engine
       (Time.seconds (start_of (n / 2)))
       (fun () ->
         Controller.move_internal ctrl ~src:"move-src" ~dst:"move-dst"
           ~key:Hfl.any ~on_done:(fun res ->
             match res with
             | Ok mr -> move_ms := Util.ms mr.Controller.duration
             | Error e -> failwith (Errors.to_string e))));
  let t0 = Monotonic_clock.now () in
  Engine.run engine;
  let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  let executed = Engine.executed engine in
  let events_per_sec = float_of_int executed /. wall in
  let gc = Gc.stat () in
  let stats = Engine.pool_stats engine in
  Util.row "  %-28s %12d\n" "flows" n;
  Util.row "  %-28s %12d\n" "events executed" executed;
  Util.row "  %-28s %12.1f\n" "wall seconds" wall;
  Util.row "  %-28s %12.0f\n" "events/sec" events_per_sec;
  Util.row "  %-28s %12d\n" "NAT mappings" (Nat.mapping_count nat);
  Util.row "  %-28s %12d\n" "monitor flows" (Monitor.tracked_flows monitor);
  Util.row "  %-28s %12d\n" "egress packets" !egress;
  Util.row "  %-28s %12.1f\n" "move duration (ms)" !move_ms;
  Util.row "  %-28s %12d\n" "event pool high water" stats.Engine.high_water;
  Util.row "  %-28s %12d\n" "peak heap words" gc.Gc.top_heap_words;
  Util.row "  %-28s %12d\n" "live words at end" gc.Gc.live_words;
  Util.maybe_dump_trace tel;
  if Nat.mapping_count nat <> n then
    failwith
      (Printf.sprintf "scale: expected %d NAT mappings, got %d" n
         (Nat.mapping_count nat));
  if Float.is_nan !move_ms then failwith "scale: concurrent move did not complete";
  (* Append the row so perf history rides along with the micro numbers. *)
  let open Openmb_wire in
  let bench_file = "BENCH_micro.json" in
  let existing =
    if Sys.file_exists bench_file then
      match
        Json.of_string (In_channel.with_open_text bench_file In_channel.input_all)
      with
      | Json.Assoc fields -> fields
      | _ | (exception Json.Parse_error _) -> []
    else []
  in
  let entry =
    Json.Assoc
      [
        ("flows", Json.Int n);
        ("events_executed", Json.Int executed);
        ("wall_seconds", Json.Float wall);
        ("events_per_sec", Json.Float events_per_sec);
        ("move_ms", Json.Float !move_ms);
        ("pool_high_water", Json.Int stats.Engine.high_water);
        ("peak_heap_words", Json.Int gc.Gc.top_heap_words);
        ("live_words_end", Json.Int gc.Gc.live_words);
      ]
  in
  let fields = List.remove_assoc "scale" existing @ [ ("scale", entry) ] in
  Out_channel.with_open_text bench_file (fun oc ->
      Out_channel.output_string oc (Json.to_string_pretty (Json.Assoc fields));
      Out_channel.output_char oc '\n');
  Printf.printf "  [json] wrote %s (label \"scale\", %d flows)\n" bench_file n
