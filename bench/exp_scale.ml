(* Million-flow macro benchmark of the simulator core.

   Drives [flows] concurrent TCP flows (default one million) through a
   switch -> NAT -> monitor chain while a 10k-chunk moveInternal runs
   between a dummy pair, then reports raw event throughput and heap
   footprint.  This is the workload the timer wheel and pooled event
   cells exist for: tens of millions of near-future events with only a
   handful of live allocations per packet.

   Flows arrive incrementally — a self-rescheduling generator
   materializes them in batches just before their start times — so the
   pending-event set stays proportional to the arrival rate, not to
   the total flow count.  The NAT is given a carrier-grade external
   address pool: one address caps out at ~45k concurrent mappings.

   bench scale [--flows N] appends its numbers to BENCH_micro.json
   under the "scale" label.

   bench scale --domains D [--flows N] instead runs the sharded-core
   variant: the flow space is hash-partitioned across 8 logical shards
   (each its own switch -> NAT -> monitor chain on a private engine),
   run on D OCaml domains with epoch-barrier exchange.  The logical
   shard count is fixed so results are bit-identical across D — the
   row lands under the "scale-dD" label, and the run prints a state
   fingerprint that must not vary with D.  About 1 flow in 64 is
   emitted from a neighbouring shard, and the concurrent move runs
   from a shard-0 MB to a shard-1 MB through a remote-connected
   controller, so the cross-shard mailboxes see real traffic. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_traffic
open Openmb_apps

(* Set by the driver (bench scale --flows N / --domains D
   / --min-events-per-sec R). *)
let flows = ref 1_000_000
let domains = ref 0 (* 0 = legacy single-engine path *)
let min_events_per_sec = ref 0.0

let internal_prefix = "10.0.0.0/8"
let batch_size = 1_000
let inter_arrival = Time.us 50.0 (* one flow every 50us of sim time *)
let flow_duration = 0.01 (* seconds: packets spread over 10ms *)
let move_chunks = 10_000

(* Logical shards of the sharded variant — fixed, never derived from
   the domain count, so every --domains value runs the identical
   partition and the results can be diffed bit-for-bit. *)
let logical_shards = 8
let epoch = Time.ms 2.0

(* The dp must outrun the offered load (~100k pps at the default
   arrival spacing) or the backlog grows without bound: give both MBs a
   1us/packet cost model instead of their PRADS/NAT-calibrated ones. *)
let fast_cost base = { base with Southbound.per_packet = Time.us 1.0 }

(* Flow [i]'s distinct internal (ip, port): 16k ports per address,
   consecutive addresses from 10.0.0.0/8. *)
let tuple_of_flow i =
  let ip = Addr.of_int (Addr.to_int (Addr.of_string "10.0.0.1") + (i / 16_384)) in
  {
    Five_tuple.src_ip = ip;
    dst_ip = Addr.of_string "1.1.1.5";
    src_port = 1_024 + (i mod 16_384);
    dst_port = 443;
    proto = Packet.Tcp;
  }

(* NAT external pool sized for [n] concurrent mappings, based at
   [base] (per-shard bases keep the pools disjoint). *)
let nat_pool base n =
  let per_ip = 45_001 in
  let needed = ((n + per_ip - 1) / per_ip) + 1 in
  List.init needed (fun i -> Addr.of_int (Addr.to_int base + i + 1))

let append_row = Util.append_row

let gate_events_per_sec events_per_sec =
  if !min_events_per_sec > 0.0 && events_per_sec < !min_events_per_sec then
    failwith
      (Printf.sprintf "scale: %.0f events/sec below the --min-events-per-sec %.0f gate"
         events_per_sec !min_events_per_sec)

(* ------------------------------------------------------------------ *)
(* Legacy single-engine run ("scale" label)                            *)
(* ------------------------------------------------------------------ *)

let run_single () =
  let n = !flows in
  Util.banner
    (Printf.sprintf "scale: %d concurrent flows + %dk-chunk move on one engine"
       n (move_chunks / 1000));
  let tel = Telemetry.create ~span_capacity:65_536 () in
  let engine = Engine.create ~telemetry:tel () in
  let nat =
    Nat.create engine ~telemetry:tel ~name:"nat" ~cost:(fast_cost Nat.default_cost)
      ~external_ip:(Addr.of_string "5.5.5.0")
      ~external_ips:(nat_pool (Addr.of_string "5.5.5.0") n)
      ~internal_prefix:(Addr.prefix_of_string internal_prefix)
      ()
  in
  let monitor =
    Monitor.create engine ~telemetry:tel ~name:"monitor"
      ~cost:(fast_cost Monitor.default_cost) ()
  in
  let egress = ref 0 in
  Mb_base.set_egress (Nat.base nat) (fun p -> Monitor.receive monitor p);
  Mb_base.set_egress (Monitor.base monitor) (fun _ -> incr egress);
  let sw = Switch.create engine ~telemetry:tel ~name:"edge" () in
  Switch.attach_port sw ~port:"nat"
    (Link.create engine ~name:"sw-nat" ~dst:(Nat.receive nat) ());
  ignore
    (Flow_table.install (Switch.table sw) ~priority:1 ~match_:[]
       ~action:(Flow_table.Forward "nat"));
  (* Incremental arrivals: each generator event materializes one batch
     of flows and schedules the next batch at its first start time.
     Only originator-direction packets are injected — the reverse path
     would need a translated return trace, and the forward path is
     what exercises mapping creation. *)
  let ids = Trace.Id_gen.create () in
  let prng = Prng.create ~seed:7 in
  let internal = Addr.prefix_of_string internal_prefix in
  let start_of i = Time.to_seconds inter_arrival *. float_of_int i in
  let emit_flow i =
    List.iter
      (fun (p : Packet.t) ->
        if Addr.in_prefix p.src_ip internal then
          Engine.call2_at engine p.ts Switch.receive sw p)
      (Flow_gen.tcp_flow ~ids ~prng ~tuple:(tuple_of_flow i) ~start:(start_of i)
         ~duration:flow_duration ~data_packets:1 ~content:Flow_gen.empty_content ())
  in
  let rec emit_batch b () =
    let lo = b * batch_size and hi = min n ((b + 1) * batch_size) in
    for i = lo to hi - 1 do
      emit_flow i
    done;
    if hi < n then
      ignore
        (Engine.schedule_at engine (Time.seconds (start_of hi)) (emit_batch (b + 1)))
  in
  emit_batch 0 ();
  (* Concurrent control-plane work: a 10k-chunk moveInternal between a
     dummy pair sharing the engine, kicked off mid-run. *)
  let ctrl = Controller.create engine ~telemetry:tel () in
  let src = Dummy_mb.create engine ~name:"move-src" () in
  let dst = Dummy_mb.create engine ~name:"move-dst" () in
  Dummy_mb.populate src ~n:move_chunks;
  Controller.connect ctrl
    (Mb_agent.create engine ~telemetry:tel ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl
    (Mb_agent.create engine ~telemetry:tel ~impl:(Dummy_mb.impl dst) ());
  let move_ms = ref nan in
  ignore
    (Engine.schedule_at engine
       (Time.seconds (start_of (n / 2)))
       (fun () ->
         Controller.move_internal ctrl ~src:"move-src" ~dst:"move-dst"
           ~key:Hfl.any ~on_done:(fun res ->
             match res with
             | Ok mr -> move_ms := Util.ms mr.Controller.duration
             | Error e -> failwith (Errors.to_string e))));
  (* Opt-in observability (--dash): scraper + SLOs + per-MB series.
     Inside the timed region by design — the dashboard run is a demo,
     not the gated number ([bench obs] measures the overhead). *)
  let obs =
    if !Util.dash then begin
      let ts, slo = Util.attach_obs ~every:(Time.ms 10.0) tel engine in
      Mb_base.register_series (Nat.base nat) ts;
      Mb_base.register_series (Monitor.base monitor) ts;
      Timeseries.add ts ~name:"nat.mappings"
        (Timeseries.Poll (fun () -> float_of_int (Nat.mapping_count nat)));
      Some (ts, slo)
    end
    else None
  in
  let t0 = Monotonic_clock.now () in
  Engine.run engine;
  let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  let executed = Engine.executed engine in
  let events_per_sec = float_of_int executed /. wall in
  let gc = Gc.stat () in
  let stats = Engine.pool_stats engine in
  Util.row "  %-28s %12d\n" "flows" n;
  Util.row "  %-28s %12d\n" "events executed" executed;
  Util.row "  %-28s %12.1f\n" "wall seconds" wall;
  Util.row "  %-28s %12.0f\n" "events/sec" events_per_sec;
  Util.row "  %-28s %12d\n" "NAT mappings" (Nat.mapping_count nat);
  Util.row "  %-28s %12d\n" "monitor flows" (Monitor.tracked_flows monitor);
  Util.row "  %-28s %12d\n" "egress packets" !egress;
  Util.row "  %-28s %12.1f\n" "move duration (ms)" !move_ms;
  Util.row "  %-28s %12d\n" "event pool high water" stats.Engine.high_water;
  Util.row "  %-28s %12d\n" "peak heap words" gc.Gc.top_heap_words;
  Util.row "  %-28s %12d\n" "live words at end" gc.Gc.live_words;
  Util.maybe_dump_trace tel;
  Util.maybe_dash obs;
  if Nat.mapping_count nat <> n then
    failwith
      (Printf.sprintf "scale: expected %d NAT mappings, got %d" n
         (Nat.mapping_count nat));
  if Float.is_nan !move_ms then failwith "scale: concurrent move did not complete";
  gate_events_per_sec events_per_sec;
  (* Append the row so perf history rides along with the micro numbers. *)
  let open Openmb_wire in
  append_row "scale"
    (Json.Assoc
       [
         ("flows", Json.Int n);
         ("events_executed", Json.Int executed);
         ("wall_seconds", Json.Float wall);
         ("events_per_sec", Json.Float events_per_sec);
         ("move_ms", Json.Float !move_ms);
         ("pool_high_water", Json.Int stats.Engine.high_water);
         ("peak_heap_words", Json.Int gc.Gc.top_heap_words);
         ("live_words_end", Json.Int gc.Gc.live_words);
       ])

(* ------------------------------------------------------------------ *)
(* Sharded run ("scale-dD" labels)                                     *)
(* ------------------------------------------------------------------ *)

let run_sharded () =
  let n = !flows and nd = !domains in
  let s_count = logical_shards in
  Util.banner
    (Printf.sprintf
       "scale: %d flows across %d logical shards on %d domain(s) + cross-shard move"
       n s_count nd);
  let se =
    Sharded_engine.create ~domains:nd ~epoch ~seed:7 ~span_capacity:4_096
      ~shards:s_count ()
  in
  let router = Shard_router.create se in
  (* Partition the flow space once, up front: [owners] is the owning
     shard per flow (canonical five-tuple hash), [gens] the shard that
     emits it — the owner, except every 64th flow enters one shard over
     so the epoch mailboxes carry steady packet traffic. *)
  let owners = Bytes.create n in
  let gen_counts = Array.make s_count 0 in
  for i = 0 to n - 1 do
    let o = Shard_router.place router (Five_tuple.pack (tuple_of_flow i)) in
    Bytes.unsafe_set owners i (Char.unsafe_chr o);
    let g = if i mod 64 = 0 then (o + 1) mod s_count else o in
    gen_counts.(g) <- gen_counts.(g) + 1
  done;
  let owner_counts = Shard_router.placements router in
  let gen_flows = Array.init s_count (fun g -> Array.make gen_counts.(g) 0) in
  let gen_fill = Array.make s_count 0 in
  for i = 0 to n - 1 do
    let o = Char.code (Bytes.unsafe_get owners i) in
    let g = if i mod 64 = 0 then (o + 1) mod s_count else o in
    gen_flows.(g).(gen_fill.(g)) <- i;
    gen_fill.(g) <- gen_fill.(g) + 1
  done;
  (* One switch -> NAT -> monitor chain per shard, living entirely on
     that shard's engine and telemetry. *)
  let shard_of = Array.init s_count (fun i -> Sharded_engine.shard se i) in
  let egress = Array.make s_count 0 in
  let internal = Addr.prefix_of_string internal_prefix in
  let nats, monitors, switches =
    let mk s =
      let sh = shard_of.(s) in
      let eng = Shard.engine sh and tel = Shard.telemetry sh in
      let pool_base = Addr.of_int (Addr.to_int (Addr.of_string "5.0.0.0") + (s lsl 16)) in
      let nat =
        Nat.create eng ~telemetry:tel
          ~name:(Printf.sprintf "nat%d" s)
          ~cost:(fast_cost Nat.default_cost) ~external_ip:pool_base
          ~external_ips:(nat_pool pool_base owner_counts.(s))
          ~internal_prefix:internal ()
      in
      let monitor =
        Monitor.create eng ~telemetry:tel
          ~name:(Printf.sprintf "monitor%d" s)
          ~cost:(fast_cost Monitor.default_cost) ()
      in
      Mb_base.set_egress (Nat.base nat) (fun p -> Monitor.receive monitor p);
      Mb_base.set_egress (Monitor.base monitor) (fun _ ->
          egress.(s) <- egress.(s) + 1);
      let sw = Switch.create eng ~telemetry:tel ~name:(Printf.sprintf "edge%d" s) () in
      Switch.attach_port sw ~port:"nat"
        (Link.create eng ~name:(Printf.sprintf "sw-nat%d" s) ~dst:(Nat.receive nat) ());
      ignore
        (Flow_table.install (Switch.table sw) ~priority:1 ~match_:[]
           ~action:(Flow_table.Forward "nat"));
      (nat, monitor, sw)
    in
    let all = Array.init s_count mk in
    ( Array.map (fun (a, _, _) -> a) all,
      Array.map (fun (_, b, _) -> b) all,
      Array.map (fun (_, _, c) -> c) all )
  in
  (* Reused ingress closures, one per destination shard, so the
     per-packet post stays allocation-free on the same-shard fast
     path. *)
  let recvs = Array.init s_count (fun s -> fun p -> Switch.receive switches.(s) p) in
  let start_of i = Time.to_seconds inter_arrival *. float_of_int i in
  (* Per-shard incremental generators: each shard materializes its own
     slice of the arrival sequence in batches, using its private PRNG
     stream and id generator, and posts every packet toward the owning
     shard's switch (a local short-circuit for 63 in 64 flows). *)
  let start_generator g =
    let mine = gen_flows.(g) in
    if Array.length mine > 0 then begin
      let sh = shard_of.(g) in
      let eng = Shard.engine sh and prng = Shard.prng sh in
      let ids = Trace.Id_gen.create () in
      let emit_flow i =
        let o = Char.code (Bytes.unsafe_get owners i) in
        List.iter
          (fun (p : Packet.t) ->
            if Addr.in_prefix p.src_ip internal then
              Shard.post sh ~dst:o ~at:p.ts recvs.(o) p)
          (Flow_gen.tcp_flow ~ids ~prng ~tuple:(tuple_of_flow i) ~start:(start_of i)
             ~duration:flow_duration ~data_packets:1 ~content:Flow_gen.empty_content ())
      in
      let rec emit_batch pos () =
        let hi = min (Array.length mine) (pos + batch_size) in
        for k = pos to hi - 1 do
          emit_flow mine.(k)
        done;
        if hi < Array.length mine then
          ignore
            (Engine.schedule_at eng
               (Time.seconds (start_of mine.(hi)))
               (emit_batch hi))
      in
      emit_batch 0 ()
    end
  in
  for g = 0 to s_count - 1 do
    start_generator g
  done;
  (* Concurrent control-plane work, now genuinely cross-shard: the
     controller and source MB live on shard 0, the destination MB on
     shard 1, connected through the epoch mailboxes. *)
  let s0 = shard_of.(0) and s1 = shard_of.(1) in
  let ctrl =
    Controller.create (Shard.engine s0) ~telemetry:(Shard.telemetry s0) ()
  in
  let src = Dummy_mb.create (Shard.engine s0) ~name:"move-src" () in
  let dst = Dummy_mb.create (Shard.engine s1) ~name:"move-dst" () in
  Dummy_mb.populate src ~n:move_chunks;
  Controller.connect ctrl
    (Mb_agent.create (Shard.engine s0) ~telemetry:(Shard.telemetry s0)
       ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl
    ~remote:
      {
        Controller.to_agent = Shard_router.route router ~src:0 ~dst:1;
        to_controller = Shard_router.route router ~src:1 ~dst:0;
        agent_faults = None;
      }
    (Mb_agent.create (Shard.engine s1) ~telemetry:(Shard.telemetry s1)
       ~impl:(Dummy_mb.impl dst) ());
  let move_ms = ref nan in
  ignore
    (Engine.schedule_at (Shard.engine s0)
       (Time.seconds (start_of (n / 2)))
       (fun () ->
         Controller.move_internal ctrl ~src:"move-src" ~dst:"move-dst" ~key:Hfl.any
           ~on_done:(fun res ->
             match res with
             | Ok mr -> move_ms := Util.ms mr.Controller.duration
             | Error e -> failwith (Errors.to_string e))));
  (* Opt-in observability (--dash): one scraper per shard, each on its
     own engine and registry.  The scrape ticks are virtual-time events
     and therefore deterministic — the state fingerprint still must not
     vary with --domains, dashboard or not. *)
  let obs =
    if !Util.dash then
      Some
        (Array.init s_count (fun s ->
             let sh = shard_of.(s) in
             let ts, slo =
               Util.attach_obs ~every:(Time.ms 10.0) (Shard.telemetry sh)
                 (Shard.engine sh)
             in
             Mb_base.register_series (Nat.base nats.(s)) ts;
             Mb_base.register_series (Monitor.base monitors.(s)) ts;
             (ts, slo)))
    else None
  in
  let t0 = Monotonic_clock.now () in
  Sharded_engine.run se;
  let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
  let executed = Sharded_engine.executed se in
  let events_per_sec = float_of_int executed /. wall in
  let gc = Gc.stat () in
  let per_shard_executed =
    Array.init s_count (fun s -> Engine.executed (Shard.engine shard_of.(s)))
  in
  let per_shard_pool_hw =
    Array.init s_count (fun s ->
        (Engine.pool_stats (Shard.engine shard_of.(s))).Engine.high_water)
  in
  let skew = Shard_router.skew router in
  let mappings = Array.map Nat.mapping_count nats in
  let total_mappings = Array.fold_left ( + ) 0 mappings in
  (* Domain-count-independent fingerprint: every per-shard end state
     plus the merged registry's delivery counters.  Identical seeds and
     shard counts must print identical fingerprints for every
     --domains value — the quick bit-identity check without rerunning
     the determinism property. *)
  let fingerprint =
    let snap = Sharded_engine.merged_snapshot se in
    Hashtbl.hash
      ( Array.to_list mappings,
        Array.to_list (Array.map Monitor.tracked_flows monitors),
        Array.to_list egress,
        Array.to_list per_shard_executed,
        Controller.counters ctrl,
        Telemetry.snap_counter snap "channel.msgs",
        Telemetry.snap_counter snap "channel.bytes" )
    land 0xFFFFFF
  in
  Util.row "  %-28s %12d\n" "flows" n;
  Util.row "  %-28s %12d\n" "logical shards" s_count;
  Util.row "  %-28s %12d\n" "domains" (Sharded_engine.domains se);
  Util.row "  %-28s %12d\n" "events executed" executed;
  Util.row "  %-28s %12.1f\n" "wall seconds" wall;
  Util.row "  %-28s %12.0f\n" "events/sec" events_per_sec;
  Util.row "  %-28s %12d\n" "epoch barriers" (Sharded_engine.epochs se);
  Util.row "  %-28s %12d\n" "cross-shard messages" (Sharded_engine.exchanged se);
  Util.row "  %-28s %12.3f\n" "shard skew (max/mean)" skew;
  Util.row "  %-28s %12d\n" "NAT mappings (sum)" total_mappings;
  Util.row "  %-28s %12.1f\n" "move duration (ms)" !move_ms;
  Util.row "  %-28s %12d\n" "peak heap words" gc.Gc.top_heap_words;
  Util.row "  %-28s %12s\n" "state fingerprint" (Printf.sprintf "%06x" fingerprint);
  for s = 0 to s_count - 1 do
    Util.row "  shard %d: %9d flows %10d events %9.0f ev/s  pool hw %8d\n" s
      owner_counts.(s) per_shard_executed.(s)
      (float_of_int per_shard_executed.(s) /. wall)
      per_shard_pool_hw.(s)
  done;
  (match obs with
  | None -> ()
  | Some arr ->
    (* Shard 0 carries the controller; its dashboard is the interesting
       one.  The merged snapshot is the fleet view — print its size as
       a cheap existence proof and to keep it exercised. *)
    Util.maybe_dash (Some arr.(0));
    let merged =
      Timeseries.merge_all
        (Array.to_list (Array.map (fun (ts, _) -> Timeseries.snapshot ts) arr))
    in
    Util.row "  %-28s %12d\n" "merged obs json bytes"
      (String.length (Timeseries.to_json merged)));
  if total_mappings <> n then
    failwith
      (Printf.sprintf "scale: expected %d NAT mappings across shards, got %d" n
         total_mappings);
  Array.iteri
    (fun s m ->
      if m <> owner_counts.(s) then
        failwith
          (Printf.sprintf "scale: shard %d owns %d flows but holds %d mappings" s
             owner_counts.(s) m))
    mappings;
  if Float.is_nan !move_ms then failwith "scale: concurrent move did not complete";
  gate_events_per_sec events_per_sec;
  let open Openmb_wire in
  append_row
    (Printf.sprintf "scale-d%d" nd)
    (Json.Assoc
       [
         ("flows", Json.Int n);
         ("shards", Json.Int s_count);
         ("domains", Json.Int (Sharded_engine.domains se));
         ("events_executed", Json.Int executed);
         ("wall_seconds", Json.Float wall);
         ("events_per_sec", Json.Float events_per_sec);
         ( "per_shard_events",
           Json.List (Array.to_list (Array.map (fun e -> Json.Int e) per_shard_executed))
         );
         ( "per_shard_events_per_sec",
           Json.List
             (Array.to_list
                (Array.map
                   (fun e -> Json.Float (float_of_int e /. wall))
                   per_shard_executed)) );
         ( "per_shard_pool_high_water",
           Json.List (Array.to_list (Array.map (fun p -> Json.Int p) per_shard_pool_hw))
         );
         ("shard_skew", Json.Float skew);
         ("epoch_barriers", Json.Int (Sharded_engine.epochs se));
         ("cross_shard_messages", Json.Int (Sharded_engine.exchanged se));
         ("move_ms", Json.Float !move_ms);
         ("fingerprint", Json.Int fingerprint);
         ("peak_heap_words", Json.Int gc.Gc.top_heap_words);
         ("live_words_end", Json.Int gc.Gc.live_words);
       ])

let run () = if !domains > 0 then run_sharded () else run_single ()
