(** End host: traffic sink (and, via an attached link, source). *)

type t

val create : name:string -> unit -> t
(** Host with no uplink; received packets are recorded. *)

val name : t -> string

val attach_uplink : t -> Link.t -> unit
(** Link used by {!send}. *)

val send : t -> Packet.t -> unit
(** Transmit on the uplink.  Raises [Failure] if no uplink is
    attached. *)

val receive : t -> Packet.t -> unit
(** Packet delivery to this host. *)

val on_receive : t -> (Packet.t -> unit) -> unit
(** Extra callback invoked on each delivery (after recording). *)

val packets_received : t -> int
val bytes_received : t -> int

val received : t -> Packet.t list
(** Every packet delivered, in arrival order. *)

val clear : t -> unit
(** Forget recorded packets (counters reset too). *)
