lib/net/sdn_controller.mli: Flow_table Hfl Openmb_sim Switch
