lib/net/switch.ml: Engine Flow_table Hashtbl Link Openmb_sim Packet Time
