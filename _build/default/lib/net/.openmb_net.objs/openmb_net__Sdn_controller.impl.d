lib/net/sdn_controller.ml: Engine Flow_table Hashtbl Openmb_sim Printf Switch Time
