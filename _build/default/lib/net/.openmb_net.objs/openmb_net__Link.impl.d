lib/net/link.ml: Channel Openmb_sim Packet Time
