lib/net/host.mli: Link Packet
