lib/net/flow_table.mli: Hfl Packet
