lib/net/payload.ml: Array Format List
