lib/net/link.mli: Openmb_sim Packet
