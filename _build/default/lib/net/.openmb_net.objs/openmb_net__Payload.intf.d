lib/net/payload.mli: Format
