lib/net/five_tuple.mli: Addr Format Hashtbl Packet
