lib/net/hfl.mli: Addr Five_tuple Format Packet
