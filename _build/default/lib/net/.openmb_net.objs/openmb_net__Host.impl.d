lib/net/host.ml: Link List Packet Printf
