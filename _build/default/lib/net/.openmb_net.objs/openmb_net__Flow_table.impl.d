lib/net/flow_table.ml: Hfl Int List Packet
