lib/net/packet.ml: Addr Format List Openmb_sim Payload Printf
