lib/net/switch.mli: Flow_table Link Openmb_sim Packet
