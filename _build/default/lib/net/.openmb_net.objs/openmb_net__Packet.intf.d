lib/net/packet.mli: Addr Format Openmb_sim Payload
