lib/net/five_tuple.ml: Addr Format Hashtbl Int Packet Printf Stdlib
