lib/net/hfl.ml: Addr Five_tuple Format List Packet Printf Stdlib String
