type t = {
  src_ip : Addr.t;
  dst_ip : Addr.t;
  src_port : int;
  dst_port : int;
  proto : Packet.proto;
}

let of_packet (p : Packet.t) =
  {
    src_ip = p.src_ip;
    dst_ip = p.dst_ip;
    src_port = p.src_port;
    dst_port = p.dst_port;
    proto = p.proto;
  }

let reverse t =
  {
    src_ip = t.dst_ip;
    dst_ip = t.src_ip;
    src_port = t.dst_port;
    dst_port = t.src_port;
    proto = t.proto;
  }

let compare a b =
  let c = Addr.compare a.src_ip b.src_ip in
  if c <> 0 then c
  else
    let c = Addr.compare a.dst_ip b.dst_ip in
    if c <> 0 then c
    else
      let c = Int.compare a.src_port b.src_port in
      if c <> 0 then c
      else
        let c = Int.compare a.dst_port b.dst_port in
        if c <> 0 then c else Stdlib.compare a.proto b.proto

let canonical t =
  let r = reverse t in
  if compare t r <= 0 then t else r

let equal a b = compare a b = 0
let hash t = Hashtbl.hash t

let to_string t =
  Printf.sprintf "%s %s:%d>%s:%d"
    (Packet.proto_to_string t.proto)
    (Addr.to_string t.src_ip) t.src_port (Addr.to_string t.dst_ip) t.dst_port

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
