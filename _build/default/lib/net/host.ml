type t = {
  name : string;
  mutable uplink : Link.t option;
  mutable rx_rev : Packet.t list;
  mutable rx_count : int;
  mutable rx_bytes : int;
  mutable callback : (Packet.t -> unit) option;
}

let create ~name () =
  { name; uplink = None; rx_rev = []; rx_count = 0; rx_bytes = 0; callback = None }

let name t = t.name
let attach_uplink t link = t.uplink <- Some link

let send t p =
  match t.uplink with
  | Some link -> Link.send link p
  | None -> failwith (Printf.sprintf "Host.send: host %s has no uplink" t.name)

let receive t p =
  t.rx_rev <- p :: t.rx_rev;
  t.rx_count <- t.rx_count + 1;
  t.rx_bytes <- t.rx_bytes + Packet.wire_bytes p;
  match t.callback with Some f -> f p | None -> ()

let on_receive t f = t.callback <- Some f
let packets_received t = t.rx_count
let bytes_received t = t.rx_bytes
let received t = List.rev t.rx_rev

let clear t =
  t.rx_rev <- [];
  t.rx_count <- 0;
  t.rx_bytes <- 0
