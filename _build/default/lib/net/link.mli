(** Simulated network link.

    Delivers packets to the attached receiver after propagation latency
    plus store-and-forward serialization delay, in FIFO order.  A
    non-zero latency is what creates the paper's in-flight-packet
    window: packets already on the wire keep arriving at the old
    middlebox after a routing update. *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?latency:Openmb_sim.Time.t ->
  ?bandwidth_bps:float ->
  name:string ->
  dst:(Packet.t -> unit) ->
  unit ->
  t
(** [create engine ~name ~dst ()] is a link delivering to [dst].
    [latency] defaults to 50 µs (one LAN hop); [bandwidth_bps] to
    1 Gbit/s, matching the paper's testbed NICs. *)

val send : t -> Packet.t -> unit
(** Put a packet on the wire. *)

val name : t -> string
val packets_sent : t -> int
val bytes_sent : t -> int
