let token_bytes = 64

type t = { toks : int array; trailing : int }

let empty = { toks = [||]; trailing = 0 }
let of_tokens a = { toks = Array.copy a; trailing = 0 }

let of_tokens_trailing a ~trailing =
  if trailing < 0 || trailing >= token_bytes then
    invalid_arg "Payload.of_tokens_trailing: trailing out of range";
  { toks = Array.copy a; trailing }

let tokens p = Array.copy p.toks
let token_count p = Array.length p.toks

let get_token p i =
  if i < 0 || i >= Array.length p.toks then invalid_arg "Payload.get_token: out of range";
  p.toks.(i)

let size_bytes p = (Array.length p.toks * token_bytes) + p.trailing

let sub p ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length p.toks then
    invalid_arg "Payload.sub: out of range";
  let trailing = if pos + len = Array.length p.toks then p.trailing else 0 in
  { toks = Array.sub p.toks pos len; trailing }

let concat parts =
  let toks = Array.concat (List.map (fun p -> p.toks) parts) in
  let trailing = List.fold_left (fun acc p -> acc + p.trailing) 0 parts in
  (* Fold accumulated trailing bytes into whole tokens where possible;
     the residue stays as trailing.  Token values for folded bytes are
     not meaningful content, so this only happens when callers
     concatenate incomplete payloads, which the MBs never do for
     content-bearing traffic. *)
  { toks; trailing = trailing mod token_bytes }

let equal a b = a.trailing = b.trailing && Array.length a.toks = Array.length b.toks
  && (let n = Array.length a.toks in
      let rec go i = i >= n || (a.toks.(i) = b.toks.(i) && go (i + 1)) in
      go 0)

let fingerprint p ~pos = get_token p pos

let pp fmt p =
  let n = Array.length p.toks in
  let shown = min n 4 in
  Format.fprintf fmt "<%dB:" (size_bytes p);
  for i = 0 to shown - 1 do
    Format.fprintf fmt " %x" p.toks.(i)
  done;
  if n > shown then Format.fprintf fmt " ...";
  Format.fprintf fmt ">"
