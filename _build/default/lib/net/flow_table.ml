type action = Forward of string | Drop | To_controller

type rule = {
  cookie : int;
  priority : int;
  match_ : Hfl.t;
  action : action;
  mutable packets : int;
  mutable bytes : int;
}

type t = { mutable rules : rule list; mutable next_cookie : int }
(* [rules] is kept sorted: descending priority, then ascending cookie
   (insertion order) so that lookup is a single scan. *)

let create () = { rules = []; next_cookie = 0 }

let rule_order a b =
  let c = Int.compare b.priority a.priority in
  if c <> 0 then c else Int.compare a.cookie b.cookie

let install t ~priority ~match_ ~action =
  let rule = { cookie = t.next_cookie; priority; match_; action; packets = 0; bytes = 0 } in
  t.next_cookie <- t.next_cookie + 1;
  t.rules <- List.sort rule_order (rule :: t.rules);
  rule

let remove t ~cookie =
  let before = List.length t.rules in
  t.rules <- List.filter (fun r -> r.cookie <> cookie) t.rules;
  List.length t.rules < before

let remove_matching t hfl =
  let before = List.length t.rules in
  t.rules <- List.filter (fun r -> not (Hfl.equal r.match_ hfl)) t.rules;
  before - List.length t.rules

let lookup t p =
  let rec scan = function
    | [] -> None
    | r :: rest ->
      if Hfl.matches_packet r.match_ p then begin
        r.packets <- r.packets + 1;
        r.bytes <- r.bytes + Packet.wire_bytes p;
        Some r.action
      end
      else scan rest
  in
  scan t.rules

let rules t = t.rules
let size t = List.length t.rules
