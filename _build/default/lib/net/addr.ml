type t = int (* 32-bit value in the low bits *)

type prefix = { base : t; len : int }

let of_int n = n land 0xFFFFFFFF
let to_int a = a

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let octet x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 -> v
      | _ -> invalid_arg (Printf.sprintf "Addr.of_string: bad octet %S in %S" x s)
    in
    (octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d
  | _ -> invalid_arg (Printf.sprintf "Addr.of_string: malformed address %S" s)

let to_string a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash

let mask_of_len len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let prefix addr len =
  if len < 0 || len > 32 then invalid_arg "Addr.prefix: mask length out of range";
  { base = addr land mask_of_len len; len }

let prefix_of_string s =
  match String.index_opt s '/' with
  | None -> prefix (of_string s) 32
  | Some i ->
    let addr = of_string (String.sub s 0 i) in
    let len_str = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt len_str with
    | Some len -> prefix addr len
    | None -> invalid_arg (Printf.sprintf "Addr.prefix_of_string: bad mask in %S" s))

let prefix_len p = p.len
let prefix_base p = p.base
let prefix_to_string p = Printf.sprintf "%s/%d" (to_string p.base) p.len
let prefix_equal p q = p.len = q.len && equal p.base q.base
let in_prefix a p = a land mask_of_len p.len = p.base

let prefix_subsumes p q =
  p.len <= q.len && q.base land mask_of_len p.len = p.base

let host_in_prefix p i =
  let capacity = if p.len >= 32 then 1 else 1 lsl (32 - p.len) in
  if i < 0 || i >= capacity then invalid_arg "Addr.host_in_prefix: offset out of range";
  of_int (p.base + i)

let pp fmt a = Format.pp_print_string fmt (to_string a)
let pp_prefix fmt p = Format.pp_print_string fmt (prefix_to_string p)
