(** Network packets.

    A packet carries L3/L4 header fields, TCP flags, an optional
    application-layer annotation (used by the IDS HTTP analyzer) and a
    body.  The body is either raw payload content or a
    redundancy-elimination encoding — a sequence of literal regions and
    shims referencing a decoder cache — because encoded packets travel
    through the simulated network between the RE encoder and decoder
    exactly as in SmartRE. *)

type proto = Tcp | Udp | Icmp

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type app =
  | Plain
  | Http_request of { method_ : string; host : string; uri : string }
  | Http_response of { status : int }
      (** Application-layer annotation for analyzers; [Plain] for
          traffic without one. *)

type segment =
  | Literal of Payload.t  (** Content carried verbatim. *)
  | Shim of { offset : int; len : int }
      (** Reference to [len] tokens at absolute cache offset
          [offset]. *)

type body =
  | Raw of Payload.t
  | Encoded of {
      cache_id : int;  (** Decoder cache the shims reference. *)
      append_base : int;
          (** Absolute cache offset at which the decoder appends the
              reconstructed payload (explicit position-sync mode). *)
      segments : segment list;
      orig : Payload.t;
          (** Ground truth for the simulator's corruption accounting:
              what a correct reconstruction must equal.  Not part of
              the wire representation and never read by decoder
              logic. *)
    }  (** RE-encoded body. *)

type t = {
  id : int;  (** Unique per simulation run. *)
  ts : Openmb_sim.Time.t;  (** Time the packet entered the network. *)
  src_ip : Addr.t;
  dst_ip : Addr.t;
  src_port : int;
  dst_port : int;
  proto : proto;
  flags : tcp_flags;
  app : app;
  body : body;
}

val make :
  ?flags:tcp_flags ->
  ?app:app ->
  ?body:body ->
  id:int ->
  ts:Openmb_sim.Time.t ->
  src_ip:Addr.t ->
  dst_ip:Addr.t ->
  src_port:int ->
  dst_port:int ->
  proto:proto ->
  unit ->
  t
(** Packet constructor; [flags] default to all-clear, [app] to [Plain],
    [body] to an empty [Raw] payload. *)

val no_flags : tcp_flags
(** All TCP flags clear. *)

val syn_flags : tcp_flags
(** Only SYN set. *)

val synack_flags : tcp_flags
(** SYN and ACK set. *)

val fin_flags : tcp_flags
(** FIN and ACK set. *)

val rst_flags : tcp_flags
(** Only RST set. *)

val header_bytes : int
(** Modelled L2–L4 header overhead per packet (54 bytes). *)

val body_bytes : t -> int
(** Size of the body on the wire: raw payload size, or sum of literal
    sizes plus {!shim_bytes} per shim for an encoded body. *)

val wire_bytes : t -> int
(** [header_bytes + body_bytes]. *)

val original_body_bytes : t -> int
(** Size the body represents once decoded (shims expanded). *)

val shim_bytes : int
(** Wire size of one shim (12 bytes: cache id, offset, length). *)

val proto_to_string : proto -> string
val proto_of_string : string -> proto

val flow_label : t -> string
(** Compact ["tcp 10.0.0.1:3456>1.1.1.5:80"] rendering for logs. *)

val pp : Format.formatter -> t -> unit
