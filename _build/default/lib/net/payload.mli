(** Packet payload contents, modelled as content tokens.

    Storing real multi-hundred-megabyte payloads would make the
    redundancy-elimination experiments (500 MB caches) infeasible in
    memory, so payload content is modelled as a sequence of {e content
    tokens}: each token stands for {!token_bytes} bytes of concrete
    content, and two regions are byte-identical iff their token
    sequences are equal.  This preserves exactly the property the RE
    middleboxes depend on — detecting and re-constructing repeated
    content — at 1/16th the storage. *)

val token_bytes : int
(** Number of payload bytes represented by one token (64). *)

type t
(** An immutable payload. *)

val empty : t
(** Zero-length payload. *)

val of_tokens : int array -> t
(** Payload made of the given token sequence (copied). *)

val of_tokens_trailing : int array -> trailing:int -> t
(** Like {!of_tokens} with [trailing] extra literal bytes
    (0 ≤ trailing < {!token_bytes}) that never match any cache
    content. *)

val tokens : t -> int array
(** The token sequence (copy). *)

val token_count : t -> int
(** Number of tokens. *)

val get_token : t -> int -> int
(** [get_token p i] is token [i]; raises [Invalid_argument] when out of
    range. *)

val size_bytes : t -> int
(** Total payload size in bytes. *)

val sub : t -> pos:int -> len:int -> t
(** Token subsequence [\[pos, pos+len)]; raises [Invalid_argument] when
    out of range.  Trailing bytes are dropped unless the slice reaches
    the end. *)

val concat : t list -> t
(** Concatenation; any trailing bytes of non-final parts are folded
    into the byte count of the result. *)

val equal : t -> t -> bool
(** Byte-level equality (token sequences and sizes agree). *)

val fingerprint : t -> pos:int -> int
(** Rabin-style fingerprint of the window starting at token [pos]
    (the token value itself — one token is already a content hash of
    its bytes in this model). *)

val pp : Format.formatter -> t -> unit
(** Abbreviated rendering: byte size and first few tokens. *)
