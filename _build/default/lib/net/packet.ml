type proto = Tcp | Udp | Icmp

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type app =
  | Plain
  | Http_request of { method_ : string; host : string; uri : string }
  | Http_response of { status : int }

type segment = Literal of Payload.t | Shim of { offset : int; len : int }

type body =
  | Raw of Payload.t
  | Encoded of {
      cache_id : int;
      append_base : int;
      segments : segment list;
      orig : Payload.t;
    }

type t = {
  id : int;
  ts : Openmb_sim.Time.t;
  src_ip : Addr.t;
  dst_ip : Addr.t;
  src_port : int;
  dst_port : int;
  proto : proto;
  flags : tcp_flags;
  app : app;
  body : body;
}

let no_flags = { syn = false; ack = false; fin = false; rst = false }
let syn_flags = { no_flags with syn = true }
let synack_flags = { no_flags with syn = true; ack = true }
let fin_flags = { no_flags with fin = true; ack = true }
let rst_flags = { no_flags with rst = true }

let make ?(flags = no_flags) ?(app = Plain) ?(body = Raw Payload.empty) ~id ~ts ~src_ip
    ~dst_ip ~src_port ~dst_port ~proto () =
  { id; ts; src_ip; dst_ip; src_port; dst_port; proto; flags; app; body }

let header_bytes = 54
let shim_bytes = 12

let body_bytes p =
  match p.body with
  | Raw payload -> Payload.size_bytes payload
  | Encoded { segments; _ } ->
    List.fold_left
      (fun acc seg ->
        match seg with
        | Literal payload -> acc + Payload.size_bytes payload
        | Shim _ -> acc + shim_bytes)
      0 segments

let wire_bytes p = header_bytes + body_bytes p

let original_body_bytes p =
  match p.body with
  | Raw payload -> Payload.size_bytes payload
  | Encoded { segments; _ } ->
    List.fold_left
      (fun acc seg ->
        match seg with
        | Literal payload -> acc + Payload.size_bytes payload
        | Shim { len; _ } -> acc + (len * Payload.token_bytes))
      0 segments

let proto_to_string = function Tcp -> "tcp" | Udp -> "udp" | Icmp -> "icmp"

let proto_of_string = function
  | "tcp" -> Tcp
  | "udp" -> Udp
  | "icmp" -> Icmp
  | s -> invalid_arg (Printf.sprintf "Packet.proto_of_string: %S" s)

let flow_label p =
  Printf.sprintf "%s %s:%d>%s:%d" (proto_to_string p.proto) (Addr.to_string p.src_ip)
    p.src_port (Addr.to_string p.dst_ip) p.dst_port

let pp fmt p =
  Format.fprintf fmt "#%d %s %dB" p.id (flow_label p) (wire_bytes p)
