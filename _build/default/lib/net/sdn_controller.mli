(** SDN controller for L2/L3 forwarding state.

    Control applications coordinate this controller with the MB
    controller: a [moveInternal] must complete before the routing
    update it enables is issued (§3, Figure 4).  Rule installation is
    not instantaneous — each install takes a configurable delay
    modelling controller-to-switch RTT plus TCAM update, which together
    with link latency creates the window during which packets keep
    arriving at the old middlebox. *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?install_delay:Openmb_sim.Time.t ->
  unit ->
  t
(** [install_delay] defaults to 10 ms per rule operation (commodity
    OpenFlow switches install on the order of hundreds of rules per
    second). *)

val register_switch : t -> Switch.t -> unit
(** Bring a switch under this controller's management.  Registering
    also claims the switch's miss handler (misses are counted and
    dropped, as the scenarios install proactive rules). *)

val install_rule :
  t ->
  switch:string ->
  priority:int ->
  match_:Hfl.t ->
  action:Flow_table.action ->
  ?on_done:(unit -> unit) ->
  unit ->
  unit
(** Install a rule on the named switch after the install delay;
    [on_done] fires once the rule is active.  Raises [Failure] for an
    unknown switch. *)

val remove_rules :
  t -> switch:string -> match_:Hfl.t -> ?on_done:(unit -> unit) -> unit -> unit
(** Remove all rules with exactly this match from the named switch
    after the install delay. *)

val update_route :
  t ->
  switch:string ->
  match_:Hfl.t ->
  new_action:Flow_table.action ->
  ?priority:int ->
  ?on_done:(unit -> unit) ->
  unit ->
  unit
(** Atomically (from the switch's perspective) replace the forwarding
    decision for [match_]: after the install delay, rules with this
    exact match are removed and the new rule becomes active in the same
    instant.  This is the routing flip used by the control
    applications; [priority] defaults to 100. *)

val rule_operations : t -> int
(** Total rule install/remove operations issued (for reporting). *)
