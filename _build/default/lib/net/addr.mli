(** IPv4 addresses and prefixes. *)

type t
(** An IPv4 address. *)

type prefix
(** A CIDR prefix: address plus mask length.  The host bits of the
    stored address are always zero. *)

val of_string : string -> t
(** [of_string "10.1.2.3"] parses dotted-quad notation.  Raises
    [Invalid_argument] on malformed input. *)

val of_int : int -> t
(** [of_int n] is the address whose 32-bit big-endian value is
    [n land 0xFFFFFFFF]. *)

val to_int : t -> int
(** 32-bit value of the address. *)

val to_string : t -> string
(** Dotted-quad rendering. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val prefix_of_string : string -> prefix
(** [prefix_of_string "10.1.2.0/24"] parses CIDR notation; a bare
    address is treated as a /32.  Raises [Invalid_argument] on
    malformed input or a mask length outside [0, 32]. *)

val prefix : t -> int -> prefix
(** [prefix addr len] is the CIDR prefix of [addr] with mask length
    [len]; host bits are cleared. *)

val prefix_len : prefix -> int
(** Mask length of a prefix. *)

val prefix_base : prefix -> t
(** Network address (host bits zero) of a prefix. *)

val prefix_to_string : prefix -> string
(** CIDR rendering, e.g. ["10.1.2.0/24"]. *)

val prefix_equal : prefix -> prefix -> bool

val in_prefix : t -> prefix -> bool
(** [in_prefix a p] is [true] iff [a] falls inside [p]. *)

val prefix_subsumes : prefix -> prefix -> bool
(** [prefix_subsumes p q] is [true] iff every address in [q] is also in
    [p] (i.e. [p] is coarser than or equal to [q]). *)

val host_in_prefix : prefix -> int -> t
(** [host_in_prefix p i] is the [i]-th host address inside [p]
    (offset [i] added to the network address).  Raises
    [Invalid_argument] if [i] exceeds the prefix capacity. *)

val pp : Format.formatter -> t -> unit
val pp_prefix : Format.formatter -> prefix -> unit
