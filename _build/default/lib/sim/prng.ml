(* SplitMix64 (Steele, Lea & Flood 2014): tiny state, excellent
   statistical quality for simulation purposes, and trivially
   splittable. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = mix (bits64 g) }

let int g bound =
  assert (bound > 0);
  (* Drop two bits so the value fits OCaml's 63-bit int without
     touching the sign bit. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  r mod bound

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 uniform mantissa bits. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  r /. 9007199254740992.0 *. bound

let bool g = Int64.logand (bits64 g) 1L = 1L

let chance g p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))
