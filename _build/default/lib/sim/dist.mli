(** Random-variate distributions used by the traffic generators.

    Each sampler takes the {!Prng.t} explicitly so the caller controls
    which stream the draw comes from. *)

val exponential : Prng.t -> mean:float -> float
(** Exponential variate with the given mean. *)

val uniform : Prng.t -> lo:float -> hi:float -> float
(** Uniform variate in [\[lo, hi)]. *)

val pareto : Prng.t -> shape:float -> scale:float -> float
(** Pareto (type I) variate: minimum value [scale], tail index
    [shape].  Heavy-tailed for [shape <= 2]. *)

val bounded_pareto : Prng.t -> shape:float -> lo:float -> hi:float -> float
(** Pareto variate truncated to [\[lo, hi\]] by inverse-CDF sampling of
    the bounded distribution (no rejection). *)

val lognormal : Prng.t -> mu:float -> sigma:float -> float
(** Log-normal variate with parameters of the underlying normal. *)

val normal : Prng.t -> mean:float -> stddev:float -> float
(** Normal variate (Box–Muller). *)

val zipf : Prng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[1, n\]] with exponent [s], sampled by
    inversion over the precomputed normalization (O(log n) per draw
    after an O(n) table build per call site is avoided by a small
    internal cache keyed on [(n, s)]). *)

val empirical : Prng.t -> points:(float * float) array -> float
(** [empirical g ~points] samples from the CDF given as
    [(value, cumulative_probability)] pairs sorted by probability, with
    linear interpolation between points.  The final pair must have
    cumulative probability [1.0]. *)

val weighted_index : Prng.t -> weights:float array -> int
(** Index [i] chosen with probability proportional to [weights.(i)].
    Weights must be non-negative and not all zero. *)
