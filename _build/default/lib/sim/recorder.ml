type entry = { time : Time.t; actor : string; kind : string; detail : string }

type t = { engine : Engine.t; mutable entries_rev : entry list; mutable n : int }

let create engine = { engine; entries_rev = []; n = 0 }

let record t ~actor ~kind ~detail =
  t.entries_rev <- { time = Engine.now t.engine; actor; kind; detail } :: t.entries_rev;
  t.n <- t.n + 1

let entries t = List.rev t.entries_rev

let matches ?actor ?kind ?since ?until e =
  (match actor with None -> true | Some a -> String.equal e.actor a)
  && (match kind with None -> true | Some k -> String.equal e.kind k)
  && (match since with None -> true | Some s -> Time.compare e.time s >= 0)
  && match until with None -> true | Some u -> Time.compare e.time u <= 0

let filter ?actor ?kind ?since ?until t =
  List.filter (matches ?actor ?kind ?since ?until) (entries t)

let count ?actor ?kind t =
  List.fold_left
    (fun acc e -> if matches ?actor ?kind e then acc + 1 else acc)
    0 t.entries_rev

let pp_entry fmt e =
  Format.fprintf fmt "[%8.3fs] %-16s %-12s %s" (Time.to_seconds e.time) e.actor e.kind
    e.detail

let clear t =
  t.entries_rev <- [];
  t.n <- 0
