(** Simulated time.

    Time is represented as a [float] number of seconds since the start of
    the simulation.  All OpenMB latencies and delays are expressed in this
    unit; helper constructors are provided for the sub-second magnitudes
    the paper reports (milliseconds for API-call processing, microseconds
    for per-packet costs). *)

type t = float
(** A point in simulated time, in seconds.  Always non-negative. *)

val zero : t
(** The simulation epoch. *)

val seconds : float -> t
(** [seconds s] is the duration of [s] seconds. *)

val ms : float -> t
(** [ms m] is the duration of [m] milliseconds. *)

val us : float -> t
(** [us u] is the duration of [u] microseconds. *)

val to_seconds : t -> float
(** [to_seconds t] is [t] expressed in seconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val compare : t -> t -> int
(** Total order on time points. *)

val ( + ) : t -> t -> t
(** Sum of a time point and a duration (or two durations). *)

val ( - ) : t -> t -> t
(** Difference of two time points; may be negative for out-of-order
    arguments. *)

val max : t -> t -> t
(** Later of two time points. *)

val min : t -> t -> t
(** Earlier of two time points. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints [t] with millisecond precision, e.g. ["12.345s"]. *)
