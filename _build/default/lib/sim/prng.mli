(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulation — traffic generators,
    payload content, jitter — draws from an explicit [Prng.t] so that a
    run is fully reproducible from its seed.  Generators can be [split]
    to give independent streams to independent components without the
    draw order of one perturbing the other. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split g] is a new generator whose stream is independent of
    subsequent draws from [g]; it advances [g] by one step. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive; requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p] (clamped to
    [\[0, 1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
