lib/sim/dist.ml: Array Float Hashtbl Prng
