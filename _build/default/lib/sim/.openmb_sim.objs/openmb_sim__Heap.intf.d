lib/sim/heap.mli:
