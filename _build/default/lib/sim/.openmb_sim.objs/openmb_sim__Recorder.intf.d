lib/sim/recorder.mli: Engine Format Time
