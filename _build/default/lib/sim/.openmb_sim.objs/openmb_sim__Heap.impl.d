lib/sim/heap.ml: Array Int Obj
