lib/sim/recorder.ml: Engine Format List String Time
