lib/sim/prng.mli:
