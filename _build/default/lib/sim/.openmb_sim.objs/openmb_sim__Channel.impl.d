lib/sim/channel.ml: Engine Time
