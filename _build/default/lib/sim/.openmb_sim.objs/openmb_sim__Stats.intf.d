lib/sim/stats.mli:
