(** Discrete-event simulation engine.

    The engine owns a virtual clock and a queue of pending events.  A
    component schedules a closure to run at (or after) some simulated
    time; [run] repeatedly pops the earliest event, advances the clock
    to its timestamp and executes it.  Events scheduled for the same
    instant execute in scheduling order.

    All OpenMB components — middleboxes, the MB controller, switches,
    traffic sources — are driven by one shared engine, which is what
    lets the benches measure protocol latencies deterministically. *)

type t
(** A simulation engine instance. *)

type handle
(** A cancellable reference to a scheduled event. *)

val create : unit -> t
(** Fresh engine with the clock at {!Time.zero} and no pending
    events. *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at t when_ f] runs [f] when the clock reaches [when_].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_after t delay f] runs [f] at [now t + delay].  A negative
    [delay] raises [Invalid_argument]. *)

val cancel : handle -> unit
(** Cancel a pending event; a no-op if it already ran or was
    cancelled. *)

val is_cancelled : handle -> bool
(** Whether {!cancel} was called on this handle. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    discarded). *)

val run : ?until:Time.t -> t -> unit
(** [run t] executes events until the queue drains.  With [?until],
    stops once the next event would be strictly later than [until] and
    advances the clock to [until]. *)

val step : t -> bool
(** Execute the single earliest pending event.  Returns [false] when
    the queue is empty. *)
