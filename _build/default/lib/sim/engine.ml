type handle = { mutable cancelled : bool }

type event = { at : Time.t; action : unit -> unit; h : handle }

type t = { mutable clock : Time.t; queue : event Heap.t }

let create () =
  { clock = Time.zero; queue = Heap.create ~cmp:(fun a b -> Time.compare a.at b.at) }

let now t = t.clock

let schedule_at t when_ f =
  if Time.compare when_ t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  let h = { cancelled = false } in
  Heap.push t.queue { at = when_; action = f; h };
  h

let schedule_after t delay f =
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t Time.(t.clock + delay) f

let cancel h = h.cancelled <- true
let is_cancelled h = h.cancelled
let pending t = Heap.size t.queue

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if ev.h.cancelled then step t
    else begin
      t.clock <- ev.at;
      ev.action ();
      true
    end

let run ?until t =
  let keep_going () =
    match until with
    | None -> not (Heap.is_empty t.queue)
    | Some limit -> (
      match Heap.peek t.queue with
      | None -> false
      | Some ev -> Time.compare ev.at limit <= 0)
  in
  while keep_going () do
    ignore (step t)
  done;
  match until with
  | Some limit when Time.compare t.clock limit < 0 -> t.clock <- limit
  | _ -> ()
