type t = float

let zero = 0.0
let seconds s = s
let ms m = m *. 1e-3
let us u = u *. 1e-6
let to_seconds t = t
let to_ms t = t *. 1e3
let to_us t = t *. 1e6
let compare = Float.compare
let ( + ) = Stdlib.( +. )
let ( - ) = Stdlib.( -. )
let max = Float.max
let min = Float.min
let pp fmt t = Format.fprintf fmt "%.3fs" t
