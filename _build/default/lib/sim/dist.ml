let exponential g ~mean =
  let u = 1.0 -. Prng.float g 1.0 in
  -.mean *. log u

let uniform g ~lo ~hi = lo +. Prng.float g (hi -. lo)

let pareto g ~shape ~scale =
  let u = 1.0 -. Prng.float g 1.0 in
  scale /. (u ** (1.0 /. shape))

let bounded_pareto g ~shape ~lo ~hi =
  (* Inverse CDF of the Pareto truncated to [lo, hi]. *)
  let u = Prng.float g 1.0 in
  let la = lo ** shape and ha = hi ** shape in
  let x = -.((u *. ha) -. (u *. la) -. ha) /. (ha *. la) in
  x ** (-1.0 /. shape)

let normal g ~mean ~stddev =
  let u1 = 1.0 -. Prng.float g 1.0 in
  let u2 = Prng.float g 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal g ~mu ~sigma = exp (normal g ~mean:mu ~stddev:sigma)

(* Zipf sampling by inversion over a cached cumulative table.  The
   cache is keyed on (n, s); generators in this codebase use a handful
   of distinct configurations, so the table is built once each. *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 7

let zipf_table n s =
  match Hashtbl.find_opt zipf_cache (n, s) with
  | Some t -> t
  | None ->
    let t = Array.make n 0.0 in
    let acc = ref 0.0 in
    for k = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int k ** s));
      t.(k - 1) <- !acc
    done;
    (* Normalize to a proper CDF. *)
    let total = t.(n - 1) in
    for k = 0 to n - 1 do
      t.(k) <- t.(k) /. total
    done;
    Hashtbl.replace zipf_cache (n, s) t;
    t

let zipf g ~n ~s =
  assert (n > 0);
  let t = zipf_table n s in
  let u = Prng.float g 1.0 in
  (* Binary search for the first index whose CDF value exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1) + 1

let empirical g ~points =
  let n = Array.length points in
  assert (n > 0);
  let u = Prng.float g 1.0 in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let _, p = points.(mid) in
      if p < u then search (mid + 1) hi else search lo mid
  in
  let i = search 0 (n - 1) in
  if i = 0 then
    let v, p = points.(0) in
    if p <= 0.0 then v else v *. (u /. p)
  else
    let v0, p0 = points.(i - 1) and v1, p1 = points.(i) in
    if p1 <= p0 then v1 else v0 +. ((v1 -. v0) *. ((u -. p0) /. (p1 -. p0)))

let weighted_index g ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (total > 0.0);
  let u = Prng.float g total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0
