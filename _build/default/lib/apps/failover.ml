open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

type t = {
  scenario : Scenario.t;
  mb : string;
  mirror : (string, Json.t) Hashtbl.t;  (* key string -> critical info *)
}

let log_step scenario step =
  match Scenario.recorder scenario with
  | Some r -> Recorder.record r ~actor:"failover-app" ~kind:"step" ~detail:step
  | None -> ()

let watch scenario ~mb ~codes () =
  let t = { scenario; mb; mirror = Hashtbl.create 64 } in
  Controller.subscribe_introspection (Scenario.controller scenario) ~mb ~codes
    ~key:Hfl.any
    ~handler:(fun ev ->
      match ev with
      | Event.Introspect { key; info; _ } ->
        Hashtbl.replace t.mirror (Hfl.to_string key) info
      | Event.Reprocess _ -> ())
    ();
  t

let tracked t = Hashtbl.length t.mirror

type recovery = { restored : int; rerouted_at : Time.t }

let fail_over t ~replacement ~dst_port ?(on_done = fun _ -> ()) () =
  let ctrl = Scenario.controller t.scenario in
  log_step t.scenario (Printf.sprintf "instance %s failed; restoring %d records" t.mb
       (Hashtbl.length t.mirror));
  Controller.disconnect ctrl t.mb;
  let infos = Hashtbl.fold (fun _ info acc -> info :: acc) t.mirror [] in
  let restored = List.length infos in
  (* Critical state re-enters through the replacement's configuration
     interface; non-critical fields revert to defaults (§2). *)
  Controller.write_config ctrl ~dst:replacement ~key:[ "static_mappings" ] ~values:infos
    ~on_done:(fun res ->
      match res with
      | Error e -> failwith (Printf.sprintf "failover: restore failed: %s" (Errors.to_string e))
      | Ok () ->
        log_step t.scenario "rerouting to replacement";
        Scenario.route t.scenario ~match_:Hfl.any ~port:dst_port
          ~on_done:(fun () ->
            on_done { restored; rerouted_at = Engine.now (Scenario.engine t.scenario) })
          ())
