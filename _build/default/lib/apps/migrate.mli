(** Live-migration control application (§6.1).

    Coordinates MB state transfer with network routing updates so a
    subset of flows can be shifted to middlebox instances in a new
    data center without correctness loss:

    - {!migrate_perflow} covers MBs whose migratable state is per-flow
      (IDS, monitor, NAT, load balancer, firewall): duplicate
      configuration, [moveInternal] the flows' state, then — only once
      the move has returned — update routing (requirement R4).
    - {!migrate_re} is the paper's five-step RE recipe: duplicate the
      decoder configuration, [cloneSupport] the decoder cache, grow the
      encoder's cache set, update routing, then split the encoder's
      traffic across caches and stop the source decoder's sync
      events. *)

type result = {
  move : Openmb_core.Controller.move_result option;
      (** The state transfer's outcome ([None] until it returns). *)
  routing_done_at : Openmb_sim.Time.t option;
      (** When the routing update took effect. *)
}

val migrate_perflow :
  Scenario.t ->
  src:string ->
  dst:string ->
  key:Openmb_net.Hfl.t ->
  dst_port:string ->
  ?config_keys:Openmb_core.Config_tree.path list ->
  ?also_route:Openmb_net.Hfl.t list ->
  ?on_done:(result -> unit) ->
  unit ->
  unit
(** Move per-flow state matching [key] from [src] to [dst] and then
    reroute matching traffic to switch port [dst_port].
    [config_keys] (default [[[]]] = everything) are read from [src] and
    written to [dst] first — the R3 configuration clone.  [also_route]
    lists additional match keys flipped with the same update — the
    reverse direction of connection-oriented traffic. *)

val migrate_re :
  Scenario.t ->
  orig_decoder:string ->
  new_decoder:string ->
  encoder:string ->
  keep_prefix:Openmb_net.Addr.prefix ->
  move_prefix:Openmb_net.Addr.prefix ->
  dst_port:string ->
  ?on_done:(result -> unit) ->
  unit ->
  unit
(** The §6.1 recipe.  [move_prefix] traffic ends up on [dst_port]
    (the new decoder); [keep_prefix] traffic keeps its current path. *)
