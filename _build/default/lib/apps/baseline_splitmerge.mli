(** Split/Merge baseline (§2.1, §8.1.2).

    Split/Merge guarantees atomicity by {e halting} the affected
    traffic while per-flow state moves: packets arriving during the
    move are buffered and replayed at the destination once the move and
    routing update complete.  The cost is latency — the paper measures
    244 packets buffered and an 863 ms average latency increase for a
    1000-chunk move at 1000 pkt/s — versus OpenMB's events, which keep
    packets flowing at a ≤2% penalty. *)

type report = {
  move_duration : float;  (** Seconds traffic was halted. *)
  buffered_packets : int;
  avg_added_latency : float;
      (** Mean extra per-packet latency of the buffered packets versus
          undisturbed processing, in seconds. *)
  max_added_latency : float;
}

val run :
  n_chunks:int ->
  rate_pps:float ->
  ?per_chunk_move:Openmb_sim.Time.t ->
  ?per_packet:Openmb_sim.Time.t ->
  unit ->
  report
(** Simulate a Split/Merge move of [n_chunks] records while traffic
    arrives at [rate_pps]: traffic halts for
    [n_chunks × per_chunk_move] (default 0.244 ms each — Split/Merge
    moves state by direct reference, no linear scan), then the buffered
    packets drain through the destination at [per_packet] service time
    (default the IDS's 0.8 ms) while live traffic continues to
    arrive. *)
