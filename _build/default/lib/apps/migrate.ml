open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

type result = {
  move : Controller.move_result option;
  routing_done_at : Time.t option;
}

let log_step scenario step =
  match Scenario.recorder scenario with
  | Some r -> Recorder.record r ~actor:"migrate-app" ~kind:"step" ~detail:step
  | None -> ()

let fail_step step err =
  failwith (Printf.sprintf "migrate: %s failed: %s" step (Errors.to_string err))

(* Duplicate the configuration subtrees in [keys] from src to dst,
   then continue. *)
let clone_config scenario ~src ~dst ~keys k =
  let ctrl = Scenario.controller scenario in
  let rec copy = function
    | [] -> k ()
    | key :: rest ->
      Controller.read_config ctrl ~src ~key ~on_done:(fun res ->
          match res with
          | Error e -> fail_step "readConfig" e
          | Ok entries ->
            let rec write = function
              | [] -> copy rest
              | (entry : Config_tree.entry) :: more ->
                Controller.write_config ctrl ~dst ~key:entry.path ~values:entry.values
                  ~on_done:(fun res ->
                    match res with
                    | Error e -> fail_step "writeConfig" e
                    | Ok () -> write more)
            in
            write entries)
  in
  copy keys

let migrate_perflow scenario ~src ~dst ~key ~dst_port ?(config_keys = [ [] ])
    ?(also_route = []) ?(on_done = fun _ -> ()) () =
  let ctrl = Scenario.controller scenario in
  log_step scenario (Printf.sprintf "clone config %s->%s" src dst);
  clone_config scenario ~src ~dst ~keys:config_keys (fun () ->
      log_step scenario (Printf.sprintf "moveInternal %s->%s %s" src dst (Hfl.to_string key));
      Controller.move_internal ctrl ~src ~dst ~key ~on_done:(fun res ->
          match res with
          | Error e -> fail_step "moveInternal" e
          | Ok mr ->
            (* R4: the routing update is issued strictly after the move
               returns.  Bidirectional MB state needs both directions
               rerouted; [also_route] carries the reverse keys. *)
            log_step scenario "routing update";
            List.iter
              (fun extra -> Scenario.route scenario ~match_:extra ~port:dst_port ())
              also_route;
            Scenario.route scenario ~match_:key ~port:dst_port
              ~on_done:(fun () ->
                log_step scenario "routing active";
                on_done
                  {
                    move = Some mr;
                    routing_done_at = Some (Engine.now (Scenario.engine scenario));
                  })
              ()))

let migrate_re scenario ~orig_decoder ~new_decoder ~encoder ~keep_prefix ~move_prefix
    ~dst_port ?(on_done = fun _ -> ()) () =
  let ctrl = Scenario.controller scenario in
  (* Step 1: launch (done by the caller) + duplicate configuration. *)
  log_step scenario "step 1: duplicate decoder config";
  clone_config scenario ~src:orig_decoder ~dst:new_decoder ~keys:[ [] ] (fun () ->
      (* Step 3 (issued before the clone so the encoder-side second
         cache mirrors the original during the transfer): add a second
         cache to the encoder; internally it clones its original
         cache. *)
      log_step scenario "step 3: encoder NumCaches=2";
      Controller.write_config ctrl ~dst:encoder ~key:[ "NumCaches" ]
        ~values:[ Json.Int 2 ] ~on_done:(fun res ->
          match res with
          | Error e -> fail_step "writeConfig NumCaches" e
          | Ok () ->
            (* Step 2: clone the original decoder's cache. *)
            log_step scenario "step 2: cloneSupport decoder cache";
            Controller.clone_support ctrl ~src:orig_decoder ~dst:new_decoder
              ~on_done:(fun res ->
                match res with
                | Error e -> fail_step "cloneSupport" e
                | Ok mr ->
                  (* Step 5 is applied BEFORE the routing update (the
                     paper lists it after): once the caches are cloned
                     and mirrored, either decoder can decode either
                     cache's stream, so splitting the encoder first is
                     safe — whereas splitting after the flip diverts
                     cache-0-encoded packets away from the original
                     decoder, leaving it permanent gaps.  See
                     DESIGN.md §7. *)
                  log_step scenario "step 5a: encoder CacheFlows";
                  Controller.write_config ctrl ~dst:encoder ~key:[ "CacheFlows" ]
                    ~values:
                      [
                        Json.String (Addr.prefix_to_string keep_prefix);
                        Json.String (Addr.prefix_to_string move_prefix);
                      ]
                    ~on_done:(fun res ->
                      match res with
                      | Error e -> fail_step "writeConfig CacheFlows" e
                      | Ok () ->
                        (* Step 4: update network routing for the
                           migrating prefix. *)
                        log_step scenario "step 4: routing update";
                        Scenario.route scenario
                          ~match_:[ Hfl.Dst_ip move_prefix ]
                          ~port:dst_port
                          ~on_done:(fun () ->
                            let now = Engine.now (Scenario.engine scenario) in
                            (* Step 5b: stop the source decoder's sync
                               events now that the new decoder receives
                               its stream natively. *)
                            log_step scenario "step 5b: stop sync events";
                            Controller.write_config ctrl ~dst:orig_decoder
                              ~key:[ "SyncEvents" ] ~values:[ Json.Bool false ]
                              ~on_done:(fun res ->
                                match res with
                                | Error e -> fail_step "writeConfig SyncEvents" e
                                | Ok () ->
                                  on_done { move = Some mr; routing_done_at = Some now }))
                          ()))))
