lib/apps/failover.mli: Openmb_sim Scenario
