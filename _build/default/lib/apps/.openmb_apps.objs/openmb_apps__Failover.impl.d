lib/apps/failover.ml: Controller Engine Errors Event Hashtbl Hfl Json List Openmb_core Openmb_net Openmb_sim Openmb_wire Printf Recorder Scenario Time
