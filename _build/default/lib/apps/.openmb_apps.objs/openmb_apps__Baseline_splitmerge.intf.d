lib/apps/baseline_splitmerge.mli: Openmb_sim
