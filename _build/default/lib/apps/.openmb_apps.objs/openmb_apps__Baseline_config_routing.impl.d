lib/apps/baseline_config_routing.ml: Engine Five_tuple Float Hfl List Mb_base Openmb_mbox Openmb_net Openmb_sim Openmb_traffic Packet Payload Re_decoder Re_encoder Time
