lib/apps/scenario.mli: Openmb_core Openmb_mbox Openmb_net Openmb_sim Openmb_traffic
