lib/apps/baseline_splitmerge.ml: Engine Float Openmb_sim Queue Stats Time
