lib/apps/baseline_snapshot.mli: Openmb_net Openmb_traffic
