lib/apps/dummy_mb.ml: Addr Buffer Chunk Engine Errors Event Five_tuple Hfl List Mb_base Openmb_core Openmb_mbox Openmb_net Openmb_sim Packet Payload Printf Southbound State_table String Taxonomy Time
