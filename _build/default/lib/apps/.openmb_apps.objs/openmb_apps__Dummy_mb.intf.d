lib/apps/dummy_mb.mli: Openmb_core Openmb_mbox Openmb_net Openmb_sim
