lib/apps/baseline_snapshot.ml: Engine Hfl Ids Openmb_mbox Openmb_net Openmb_sim Openmb_traffic Time
