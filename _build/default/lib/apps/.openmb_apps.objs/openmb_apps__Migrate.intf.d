lib/apps/migrate.mli: Openmb_core Openmb_net Openmb_sim Scenario
