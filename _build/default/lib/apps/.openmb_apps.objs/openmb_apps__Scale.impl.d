lib/apps/scale.ml: Config_tree Controller Engine Errors Hfl List Openmb_core Openmb_net Openmb_sim Printf Recorder Scenario Southbound Time
