lib/apps/baseline_config_routing.mli: Openmb_traffic
