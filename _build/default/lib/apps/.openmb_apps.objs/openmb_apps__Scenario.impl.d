lib/apps/scenario.ml: Controller Engine Flow_table Hfl Host Link Mb_agent Mb_base Openmb_core Openmb_mbox Openmb_net Openmb_sim Openmb_traffic Recorder Sdn_controller Switch Time
