lib/apps/migrate.ml: Addr Config_tree Controller Engine Errors Hfl Json List Openmb_core Openmb_net Openmb_sim Openmb_wire Printf Recorder Scenario Time
