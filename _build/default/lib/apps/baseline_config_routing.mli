(** Config-and-routing-only baseline (§2.1, §8.1.2): SDN reroutes
    traffic and MB configuration is updated, but internal state never
    moves.

    Two experiments use it:

    - {!scale_down_holdup}: scale-down that leaves in-progress flows on
      the deprecated instance and sends only new flows to the survivor.
      The deprecated MB is held up until its last flow completes —
      with the university-DC duration tail (Fig. 8), over 1500 s.
    - {!re_migration}: decoder migration with a fresh empty
      encoder/decoder pair (classic implicit-position RE).  The encoder
      switches before routing catches up, so encoded packets reach the
      old decoder, the new pair's caches desynchronize, and every
      encoded byte is undecodable (Table 3's second row). *)

type holdup_report = {
  rerouted_at : float;  (** When new flows started going to the survivor. *)
  holdup_seconds : float;
      (** How long after the reroute the deprecated MB still had live
          flows. *)
  stranded_flows : int;  (** Flows pinned to the deprecated instance. *)
  frac_over_1500 : float;
      (** Fraction of stranded flows still alive 1500 s after the
          reroute. *)
}

val scale_down_holdup :
  ?trace_params:Openmb_traffic.University_dc.params ->
  reroute_at:float ->
  unit ->
  holdup_report

type re_report = {
  encoded_bytes : int;  (** Redundant bytes the new encoder eliminated. *)
  undecodable_bytes : int;  (** Of those, bytes never reconstructed. *)
  old_decoder_failures : int;
      (** Encoded packets that hit the old decoder during the routing
          lag. *)
}

val re_migration :
  ?trace_params:Openmb_traffic.Redundancy_trace.params ->
  routing_lag_packets:int ->
  unit ->
  re_report
(** The encoder pair switches for the migrating prefix; the routing
    update takes effect only after [routing_lag_packets] migrated
    packets have been encoded (the paper assumes 10). *)
