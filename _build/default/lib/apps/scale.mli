(** Elastic scaling control application (§6.2).

    Scale-up: duplicate the configuration onto a fresh instance, query
    how much per-flow state exists for the rebalanced subnet, move that
    state, and reroute the subnet — so in-progress flows land on the
    new instance with their records intact.

    Scale-down: move {e all} per-flow state back to the surviving
    instance, merge the shared reporting state (counters add; no
    over- or under-reporting), reroute, and only then release the
    deprecated instance. *)

type up_result = {
  queried : Openmb_core.Southbound.stats;
      (** The pre-move [stats] answer used to decide the rebalance. *)
  move : Openmb_core.Controller.move_result;
  routing_done_at : Openmb_sim.Time.t;
}

val scale_up :
  Scenario.t ->
  existing:string ->
  fresh:string ->
  rebalance:Openmb_net.Hfl.t ->
  dst_port:string ->
  ?also_route:Openmb_net.Hfl.t list ->
  ?on_done:(up_result -> unit) ->
  unit ->
  unit
(** The four §6.2 scale-up actions against instance [existing],
    shifting [rebalance]-matching flows to [fresh] (reachable on switch
    port [dst_port]).  [also_route] lists additional match keys flipped
    with the same update — the reverse direction of the rebalanced
    traffic, so both directions of a connection land on the same
    instance. *)

type down_result = {
  moved : Openmb_core.Controller.move_result;
  merged : Openmb_core.Controller.move_result;
  deprecated_released_at : Openmb_sim.Time.t;
}

val scale_down :
  Scenario.t ->
  deprecated:string ->
  survivor:string ->
  dst_port:string ->
  ?on_done:(down_result -> unit) ->
  unit ->
  unit
(** The four §6.2 scale-down actions: move all per-flow state and merge
    shared reporting state from [deprecated] into [survivor], reroute
    everything to [dst_port], then disconnect [deprecated]. *)
