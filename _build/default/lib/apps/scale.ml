open Openmb_sim
open Openmb_net
open Openmb_core

type up_result = {
  queried : Southbound.stats;
  move : Controller.move_result;
  routing_done_at : Time.t;
}

type down_result = {
  moved : Controller.move_result;
  merged : Controller.move_result;
  deprecated_released_at : Time.t;
}

let log_step scenario step =
  match Scenario.recorder scenario with
  | Some r -> Recorder.record r ~actor:"scale-app" ~kind:"step" ~detail:step
  | None -> ()

let fail_step step err =
  failwith (Printf.sprintf "scale: %s failed: %s" step (Errors.to_string err))

let clone_all_config ctrl ~src ~dst k =
  Controller.read_config ctrl ~src ~key:[] ~on_done:(fun res ->
      match res with
      | Error e -> fail_step "readConfig *" e
      | Ok entries ->
        let rec write = function
          | [] -> k ()
          | (entry : Config_tree.entry) :: rest ->
            Controller.write_config ctrl ~dst ~key:entry.path ~values:entry.values
              ~on_done:(fun res ->
                match res with
                | Error e -> fail_step "writeConfig" e
                | Ok () -> write rest)
        in
        write entries)

let scale_up scenario ~existing ~fresh ~rebalance ~dst_port ?(also_route = [])
    ?(on_done = fun _ -> ()) () =
  let ctrl = Scenario.controller scenario in
  (* 1. Launch (caller) + duplicate the configuration. *)
  log_step scenario (Printf.sprintf "duplicate config %s->%s" existing fresh);
  clone_all_config ctrl ~src:existing ~dst:fresh (fun () ->
      (* 2. Query how much per-flow state exists for the subnet. *)
      log_step scenario (Printf.sprintf "stats %s %s" existing (Hfl.to_string rebalance));
      Controller.stats ctrl ~src:existing ~key:rebalance ~on_done:(fun res ->
          match res with
          | Error e -> fail_step "stats" e
          | Ok queried ->
            (* 3. Move the subset of per-flow state. *)
            log_step scenario "moveInternal";
            Controller.move_internal ctrl ~src:existing ~dst:fresh ~key:rebalance
              ~on_done:(fun res ->
                match res with
                | Error e -> fail_step "moveInternal" e
                | Ok move ->
                  (* 4. Route the moved flows — both directions for
                     connection-oriented traffic — to the new
                     instance. *)
                  log_step scenario "routing update";
                  List.iter
                    (fun extra ->
                      Scenario.route scenario ~match_:extra ~port:dst_port ())
                    also_route;
                  Scenario.route scenario ~match_:rebalance ~port:dst_port
                    ~on_done:(fun () ->
                      on_done
                        {
                          queried;
                          move;
                          routing_done_at = Engine.now (Scenario.engine scenario);
                        })
                    ())))

let scale_down scenario ~deprecated ~survivor ~dst_port ?(on_done = fun _ -> ()) () =
  let ctrl = Scenario.controller scenario in
  let engine = Scenario.engine scenario in
  (* 1. Transfer the per-flow reporting state for all flows. *)
  log_step scenario (Printf.sprintf "moveInternal %s->%s (all)" deprecated survivor);
  Controller.move_internal ctrl ~src:deprecated ~dst:survivor ~key:Hfl.any
    ~on_done:(fun res ->
      match res with
      | Error e -> fail_step "moveInternal" e
      | Ok moved ->
        (* 2. Route flows to the remaining instance.  The catch-all
           must dominate the finer-grained rebalance rule the scale-up
           installed, so it goes in at higher priority. *)
        log_step scenario "routing update";
        Scenario.route scenario ~match_:Hfl.any ~port:dst_port ~priority:200
          ~on_done:(fun () ->
            (* 3. Merge the shared reporting state once the deprecated
               instance has drained its in-flight packets.  Merging
               after the routing flip (the paper lists it before)
               guarantees exact counter conservation: every packet the
               deprecated instance ever counted is in the snapshot the
               survivor merges, and none is counted twice. *)
            let do_merge () =
              log_step scenario "mergeInternal";
              Controller.merge_internal ctrl ~src:deprecated ~dst:survivor
                ~on_done:(fun res ->
                  match res with
                  | Error e -> fail_step "mergeInternal" e
                  | Ok merged ->
                    (* 4. Terminate the unneeded instance. *)
                    let terminate () =
                      log_step scenario (Printf.sprintf "terminate %s" deprecated);
                      Controller.disconnect ctrl deprecated;
                      on_done
                        { moved; merged; deprecated_released_at = Engine.now engine }
                    in
                    ignore (Engine.schedule_after engine (Time.seconds 0.25) terminate))
            in
            ignore (Engine.schedule_after engine (Time.seconds 0.25) do_merge))
          ())
