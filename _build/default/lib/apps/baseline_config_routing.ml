open Openmb_sim
open Openmb_net
open Openmb_mbox

type holdup_report = {
  rerouted_at : float;
  holdup_seconds : float;
  stranded_flows : int;
  frac_over_1500 : float;
}

(* Flow intervals (first/last packet timestamp per canonical tuple),
   derived from the trace the deprecated MB would be carrying. *)
let flow_intervals trace =
  let tbl = Five_tuple.Table.create 1024 in
  List.iter
    (fun (p : Packet.t) ->
      let key = Five_tuple.canonical (Five_tuple.of_packet p) in
      let ts = Time.to_seconds p.ts in
      match Five_tuple.Table.find_opt tbl key with
      | None -> Five_tuple.Table.replace tbl key (ts, ts)
      | Some (first, last) ->
        Five_tuple.Table.replace tbl key (Float.min first ts, Float.max last ts))
    (Openmb_traffic.Trace.packets trace);
  Five_tuple.Table.fold (fun _ interval acc -> interval :: acc) tbl []

let scale_down_holdup ?(trace_params = Openmb_traffic.University_dc.default_params)
    ~reroute_at () =
  let trace = Openmb_traffic.University_dc.generate trace_params in
  let intervals = flow_intervals trace in
  (* Flows already in progress at the reroute stay pinned to the
     deprecated instance; it cannot be destroyed until they finish. *)
  let stranded =
    List.filter (fun (first, last) -> first <= reroute_at && last > reroute_at) intervals
  in
  let holdup =
    List.fold_left (fun acc (_, last) -> Float.max acc (last -. reroute_at)) 0.0 stranded
  in
  let over_1500 =
    List.length (List.filter (fun (_, last) -> last -. reroute_at > 1500.0) stranded)
  in
  let n = List.length stranded in
  {
    rerouted_at = reroute_at;
    holdup_seconds = holdup;
    stranded_flows = n;
    frac_over_1500 = (if n = 0 then 0.0 else float_of_int over_1500 /. float_of_int n);
  }

type re_report = {
  encoded_bytes : int;
  undecodable_bytes : int;
  old_decoder_failures : int;
}

let re_migration ?(trace_params = Openmb_traffic.Redundancy_trace.default_params)
    ~routing_lag_packets () =
  let engine = Engine.create () in
  (* Classic implicit-position RE: the failure mode under study is the
     permanent cache desynchronization one missed packet causes. *)
  let mode = Re_encoder.Implicit in
  let old_enc = Re_encoder.create engine ~mode ~name:"enc-old" () in
  let old_dec = Re_decoder.create engine ~mode ~name:"dec-old" () in
  let new_enc = Re_encoder.create engine ~mode ~name:"enc-new" () in
  let new_dec = Re_decoder.create engine ~mode ~name:"dec-new" () in
  let move_hfl = Openmb_traffic.Redundancy_trace.class_b_hfl trace_params in
  let trace = Openmb_traffic.Redundancy_trace.generate trace_params in
  let encoder_switched = ref false in
  let routing_updated = ref false in
  let new_enc_packets = ref 0 in
  let lost_pkts = ref 0 in
  let lost_shim_bytes = ref 0 in
  let shim_bytes (p : Packet.t) =
    match p.body with
    | Packet.Raw _ -> 0
    | Packet.Encoded { segments; _ } ->
      List.fold_left
        (fun acc seg ->
          match seg with
          | Packet.Shim { len; _ } -> acc + (len * Payload.token_bytes)
          | Packet.Literal _ -> acc)
        0 segments
  in
  (* Old pair path: unaffected by the migration. *)
  Mb_base.set_egress (Re_encoder.base old_enc) (fun p -> Re_decoder.receive old_dec p);
  (* New pair path: until routing catches up, packets land at the old
     decoder, which holds a different cache and cannot recover them
     (it validates the cache region and drops).  The new decoder never
     sees them — the desynchronization seed. *)
  Mb_base.set_egress (Re_encoder.base new_enc)
    (fun p ->
      incr new_enc_packets;
      (* The routing change takes effect only after the new encoder has
         sent [routing_lag_packets] packets (§8.1.2 assumes 10). *)
      if !routing_updated then Re_decoder.receive new_dec p
      else begin
        incr lost_pkts;
        lost_shim_bytes := !lost_shim_bytes + shim_bytes p;
        if !new_enc_packets >= routing_lag_packets then routing_updated := true
      end);
  (* The encoder-side switch happens 30% into the trace — before the
     routing update by construction, which is the hazard. *)
  let switch_at =
    Time.seconds (0.3 *. Time.to_seconds (Openmb_traffic.Trace.duration trace))
  in
  ignore (Engine.schedule_at engine switch_at (fun () -> encoder_switched := true));
  Openmb_traffic.Trace.replay engine trace ~into:(fun p ->
      if !encoder_switched && Hfl.matches_packet move_hfl p then
        Re_encoder.receive new_enc p
      else Re_encoder.receive old_enc p);
  Engine.run engine;
  {
    encoded_bytes = Re_encoder.encoded_bytes new_enc;
    undecodable_bytes = Re_decoder.undecodable_bytes new_dec + !lost_shim_bytes;
    old_decoder_failures = !lost_pkts;
  }
