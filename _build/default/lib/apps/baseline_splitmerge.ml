open Openmb_sim

type report = {
  move_duration : float;
  buffered_packets : int;
  avg_added_latency : float;
  max_added_latency : float;
}

let run ~n_chunks ~rate_pps ?(per_chunk_move = Time.us 244.0)
    ?(per_packet = Time.us 800.0) () =
  let engine = Engine.create () in
  let halt_duration = Time.to_seconds per_chunk_move *. float_of_int n_chunks in
  let service = Time.to_seconds per_packet in
  (* The destination MB's data path: serial server with queueing. *)
  let dp_free_at = ref 0.0 in
  let added = Stats.create () in
  let process ~arrival ~buffered =
    let now = Time.to_seconds (Engine.now engine) in
    let start = Float.max now !dp_free_at in
    dp_free_at := start +. service;
    let finish = !dp_free_at in
    if buffered then Stats.add added (finish -. arrival -. service)
  in
  (* Halt window [t0, t0 + halt]: arrivals buffer; at the end of the
     window the buffer drains into the destination ahead of (already
     scheduled) live arrivals at the same instant. *)
  let t0 = 0.5 in
  let t_resume = t0 +. halt_duration in
  let buffer = Queue.create () in
  let buffered_total = ref 0 in
  let horizon = t_resume +. 30.0 in
  let interval = 1.0 /. rate_pps in
  let n_arrivals = int_of_float (horizon /. interval) in
  for k = 0 to n_arrivals - 1 do
    let ts = float_of_int k *. interval in
    ignore
      (Engine.schedule_at engine (Time.seconds ts) (fun () ->
           let now = Time.to_seconds (Engine.now engine) in
           if now >= t0 && now < t_resume then begin
             Queue.push now buffer;
             incr buffered_total
           end
           else process ~arrival:now ~buffered:false))
  done;
  ignore
    (Engine.schedule_at engine (Time.seconds t_resume) (fun () ->
         Queue.iter (fun arrival -> process ~arrival ~buffered:true) buffer;
         Queue.clear buffer));
  Engine.run engine;
  {
    move_duration = halt_duration;
    buffered_packets = !buffered_total;
    avg_added_latency = Stats.mean added;
    max_added_latency = Stats.max_value added;
  }
