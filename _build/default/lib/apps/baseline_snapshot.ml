open Openmb_sim
open Openmb_net
open Openmb_mbox

type report = {
  full_delta_bytes : int;
  http_delta_bytes : int;
  other_delta_bytes : int;
  sdmbn_moved_bytes : int;
  anomalies_old : int;
  anomalies_new : int;
}

let run ?(trace_params = Openmb_traffic.Cloud_trace.default_params) ~migrate_key
    ~snapshot_at () =
  let engine = Engine.create () in
  let old_ids = Ids.create engine ~name:"bro-old" () in
  let new_ids = Ids.create engine ~name:"bro-new" () in
  let trace = Openmb_traffic.Cloud_trace.generate trace_params in
  (* Before the snapshot instant, everything goes to the old instance;
     afterwards the migrating substream goes to the clone.  The flip is
     done at injection (the routing component is exercised elsewhere) —
     what this baseline measures is state footprint and log damage. *)
  let migrated = ref false in
  Openmb_traffic.Trace.replay engine trace ~into:(fun p ->
      if !migrated && Hfl.matches_packet migrate_key p then Ids.receive new_ids p
      else Ids.receive old_ids p);
  let report = ref None in
  ignore
    (Engine.schedule_at engine (Time.seconds snapshot_at) (fun () ->
         (* Image deltas measured at the instant of migration. *)
         let full_delta = Ids.memory_bytes old_ids in
         let http_delta = Ids.memory_bytes_for old_ids ~key:migrate_key in
         let other_delta = full_delta - http_delta in
         let sdmbn_moved = Ids.serialized_bytes old_ids ~key:migrate_key in
         Ids.snapshot_into old_ids new_ids;
         migrated := true;
         report := Some (full_delta, http_delta, other_delta, sdmbn_moved)));
  Engine.run engine;
  (* Tear both instances down; stranded foreign state surfaces as
     anomalous log entries. *)
  Ids.finalize old_ids;
  Ids.finalize new_ids;
  match !report with
  | None -> failwith "Baseline_snapshot.run: snapshot instant past end of trace"
  | Some (full_delta_bytes, http_delta_bytes, other_delta_bytes, sdmbn_moved_bytes) ->
    {
      full_delta_bytes;
      http_delta_bytes;
      other_delta_bytes;
      sdmbn_moved_bytes;
      anomalies_old = Ids.anomalous_entries old_ids;
      anomalies_new = Ids.anomalous_entries new_ids;
    }
