(** VM-snapshot baseline (§2.1, §8.1.2).

    Moving middlebox state by cloning the whole VM image carries
    {e all} state to the destination: the new instance holds records
    for flows that will never reach it, and the old instance keeps
    records for the migrated flows.  Both populations of stranded
    records terminate abruptly and pollute the logs, and the image
    deltas are far larger than the state OpenMB would move. *)

type report = {
  full_delta_bytes : int;
      (** FULL−BASE: memory the traffic state added to the image. *)
  http_delta_bytes : int;  (** Memory held by HTTP-substream state. *)
  other_delta_bytes : int;  (** Memory held by the other substream's state. *)
  sdmbn_moved_bytes : int;
      (** What OpenMB would actually transfer: the serialized per-flow
          state of the migrating (HTTP) flows. *)
  anomalies_old : int;
      (** Incorrect conn.log entries at the old instance (migrated
          flows cut off mid-stream). *)
  anomalies_new : int;
      (** Incorrect conn.log entries at the new instance (foreign
          flows that never progressed). *)
}

val run :
  ?trace_params:Openmb_traffic.Cloud_trace.params ->
  migrate_key:Openmb_net.Hfl.t ->
  snapshot_at:float ->
  unit ->
  report
(** Drive the cloud trace through an IDS; at [snapshot_at] snapshot it
    into a second instance and flip [migrate_key]-matching traffic to
    the clone; run the rest of the trace; account sizes and log
    anomalies. *)
