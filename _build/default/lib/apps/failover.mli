(** Failure-recovery control application (§2, requirement R6).

    Rather than running a hot standby (double resources) or
    snapshotting everything (expensive, lossy), the application
    subscribes to the middlebox's introspection events and keeps a live
    copy of only the {e critical} state — e.g. a NAT's address/port
    mappings, announced via ["nat.new_mapping"] events.  When the
    instance fails, a replacement is loaded with the critical state
    (non-critical fields such as idle timers revert to defaults) and
    traffic is rerouted. *)

type t

val watch :
  Scenario.t ->
  mb:string ->
  codes:string list ->
  unit ->
  t
(** Subscribe to the given introspection event codes at [mb] and start
    mirroring critical state into the application. *)

val tracked : t -> int
(** Critical-state records currently mirrored. *)

type recovery = {
  restored : int;  (** Critical records installed at the replacement. *)
  rerouted_at : Openmb_sim.Time.t;
}

val fail_over :
  t ->
  replacement:string ->
  dst_port:string ->
  ?on_done:(recovery -> unit) ->
  unit ->
  unit
(** The watched instance has failed: disconnect it, push the mirrored
    critical state into [replacement] (already launched and connected),
    and reroute all traffic to [dst_port]. *)
