lib/mbox/re_decoder.mli: Mb_base Openmb_core Openmb_net Openmb_sim Re_cache Re_encoder
