lib/mbox/firewall.mli: Mb_base Openmb_core Openmb_net Openmb_sim Openmb_wire
