lib/mbox/ids.mli: Mb_base Openmb_core Openmb_net Openmb_sim
