lib/mbox/load_balancer.ml: Addr Array Chunk Config_tree Errors Event Five_tuple Hashtbl Hfl Json List Mb_base Openmb_core Openmb_net Openmb_sim Openmb_wire Packet Southbound State_table Taxonomy Time
