lib/mbox/re_cache.mli:
