lib/mbox/mb_base.mli: Openmb_core Openmb_net Openmb_sim Openmb_wire
