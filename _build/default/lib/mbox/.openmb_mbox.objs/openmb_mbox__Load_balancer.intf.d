lib/mbox/load_balancer.mli: Mb_base Openmb_core Openmb_net Openmb_sim
