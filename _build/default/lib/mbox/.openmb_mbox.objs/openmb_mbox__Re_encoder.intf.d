lib/mbox/re_encoder.mli: Mb_base Openmb_core Openmb_net Openmb_sim Re_cache
