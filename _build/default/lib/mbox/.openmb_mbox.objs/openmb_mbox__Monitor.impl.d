lib/mbox/monitor.ml: Chunk Config_tree Errors Event Five_tuple Float Hfl Json List Mb_base Openmb_core Openmb_net Openmb_sim Openmb_wire Packet Southbound State_table String Taxonomy Time
