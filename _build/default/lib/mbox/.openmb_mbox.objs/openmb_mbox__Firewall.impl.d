lib/mbox/firewall.ml: Chunk Config_tree Errors Event Five_tuple Hfl Json List Mb_base Openmb_core Openmb_net Openmb_sim Openmb_wire Packet Printf Southbound State_table String Taxonomy Time
