lib/mbox/mb_base.ml: Chunk Config_tree Engine Errors Event Openmb_core Openmb_net Openmb_sim Openmb_wire Recorder Southbound Stats Time
