lib/mbox/re_cache.ml: Array Buffer Char Int List String
