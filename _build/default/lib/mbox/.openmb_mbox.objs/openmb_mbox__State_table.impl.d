lib/mbox/state_table.ml: Addr Five_tuple Hashtbl Hfl List Openmb_net
