lib/mbox/state_table.mli: Openmb_net
