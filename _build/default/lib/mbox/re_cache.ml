(* Ring storage: slot s = offset mod capacity holds the token for the
   single absolute offset recorded in [offs.(s)] (-1 = empty).  Reads
   verify the recorded offset, which implements windowing for free. *)

type t = {
  cap : int;
  toks : int array;
  offs : int array;
  mutable head : int;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Re_cache.create: capacity must be positive";
  { cap = capacity; toks = Array.make capacity 0; offs = Array.make capacity (-1); head = 0 }

let capacity t = t.cap
let pos t = t.head
let set_pos t p = t.head <- p

let write t ~offset ~token =
  let s = offset mod t.cap in
  t.toks.(s) <- token;
  t.offs.(s) <- offset;
  if offset >= t.head then t.head <- offset + 1

let append t tokens =
  let base = t.head in
  Array.iteri (fun i token -> write t ~offset:(base + i) ~token) tokens;
  base

let in_window t offset = offset >= 0 && offset >= t.head - t.cap && offset < t.head

let read t ~offset =
  if offset < 0 then None
  else
    let s = offset mod t.cap in
    if t.offs.(s) = offset then Some t.toks.(s) else None

let read_run t ~offset ~len =
  let out = Array.make len 0 in
  let rec go i =
    if i >= len then Some out
    else
      match read t ~offset:(offset + i) with
      | Some token ->
        out.(i) <- token;
        go (i + 1)
      | None -> None
  in
  if len <= 0 then Some [||] else go 0

let resident_tokens t =
  Array.fold_left (fun acc o -> if o >= 0 then acc + 1 else acc) 0 t.offs

let clone t =
  { cap = t.cap; toks = Array.copy t.toks; offs = Array.copy t.offs; head = t.head }

(* ------------------------------------------------------------------ *)
(* Binary serialization                                                *)
(* ------------------------------------------------------------------ *)

let put_i64 buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xFF))
  done

let get_i64 s pos =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let magic = "REC1"

let serialize t =
  (* Header, then resident entries as maximal contiguous runs:
     (start offset, length, tokens...). *)
  let buf = Buffer.create (resident_tokens t * 9) in
  Buffer.add_string buf magic;
  put_i64 buf t.cap;
  put_i64 buf t.head;
  let n_res = resident_tokens t in
  let resident = Array.make n_res 0 in
  let idx = ref 0 in
  Array.iter
    (fun o ->
      if o >= 0 then begin
        resident.(!idx) <- o;
        incr idx
      end)
    t.offs;
  Array.sort Int.compare resident;
  (* Group sorted offsets into maximal contiguous (start, length) runs. *)
  let run_list = ref [] in
  let i = ref 0 in
  while !i < n_res do
    let start = resident.(!i) in
    let j = ref !i in
    while !j + 1 < n_res && resident.(!j + 1) = resident.(!j) + 1 do
      incr j
    done;
    run_list := (start, !j - !i + 1) :: !run_list;
    i := !j + 1
  done;
  let run_list = List.rev !run_list in
  put_i64 buf (List.length run_list);
  List.iter
    (fun (start, len) ->
      put_i64 buf start;
      put_i64 buf len;
      for off = start to start + len - 1 do
        match read t ~offset:off with
        | Some token -> put_i64 buf token
        | None -> assert false
      done)
    run_list;
  Buffer.contents buf

let deserialize s =
  let fail () = invalid_arg "Re_cache.deserialize: corrupt input" in
  if String.length s < 28 || String.sub s 0 4 <> magic then fail ();
  let cap = get_i64 s 4 in
  let head = get_i64 s 12 in
  if cap <= 0 then fail ();
  let t = create ~capacity:cap () in
  let nruns = get_i64 s 20 in
  let pos = ref 28 in
  let need n = if !pos + n > String.length s then fail () in
  for _ = 1 to nruns do
    need 16;
    let start = get_i64 s !pos in
    let len = get_i64 s (!pos + 8) in
    pos := !pos + 16;
    need (len * 8);
    for i = 0 to len - 1 do
      write t ~offset:(start + i) ~token:(get_i64 s !pos);
      pos := !pos + 8
    done
  done;
  t.head <- head;
  t

let equal_contents a b =
  a.head = b.head
  &&
  let ok = ref true in
  Array.iteri
    (fun s o -> if o >= 0 && read b ~offset:o <> Some a.toks.(s) then ok := false)
    a.offs;
  Array.iteri
    (fun s o -> if o >= 0 && read a ~offset:o <> Some b.toks.(s) then ok := false)
    b.offs;
  !ok
