open Openmb_net

type 'a entry = { key : Hfl.t; mutable value : 'a; mutable moved : bool }

type 'a t = {
  granularity : Hfl.granularity;
  by_key : (string, 'a entry) Hashtbl.t;
  (* Optional secondary index: source address -> entries, serving
     exact-source and host-prefix requests in O(matches) instead of a
     full scan (the paper's footnote-6 improvement). *)
  by_src : (int, (string, 'a entry) Hashtbl.t) Hashtbl.t option;
  mutable move_filters : Hfl.t list;
}

let create ?(indexed = false) ~granularity () =
  {
    granularity;
    by_key = Hashtbl.create 64;
    by_src = (if indexed then Some (Hashtbl.create 64) else None);
    move_filters = [];
  }

let src_of_key key =
  List.find_map
    (fun f ->
      match f with
      | Hfl.Src_ip p when Addr.prefix_len p = 32 -> Some (Addr.to_int (Addr.prefix_base p))
      | Hfl.Src_ip _ | Hfl.Dst_ip _ | Hfl.Src_port _ | Hfl.Dst_port _ | Hfl.Proto _ ->
        None)
    key

let index_add t (e : 'a entry) =
  match (t.by_src, src_of_key e.key) with
  | Some idx, Some src ->
    let bucket =
      match Hashtbl.find_opt idx src with
      | Some b -> b
      | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.replace idx src b;
        b
    in
    Hashtbl.replace bucket (Hfl.to_string e.key) e
  | (Some _ | None), _ -> ()

let index_remove t (e : 'a entry) =
  match (t.by_src, src_of_key e.key) with
  | Some idx, Some src -> (
    match Hashtbl.find_opt idx src with
    | Some bucket ->
      Hashtbl.remove bucket (Hfl.to_string e.key);
      if Hashtbl.length bucket = 0 then Hashtbl.remove idx src
    | None -> ())
  | (Some _ | None), _ -> ()

let granularity t = t.granularity
let size t = Hashtbl.length t.by_key
let key_of t tup = Hfl.key_of_tuple t.granularity tup

let find t tup = Hashtbl.find_opt t.by_key (Hfl.to_string (key_of t tup))

let find_bidir t tup =
  match find t tup with
  | Some e -> Some e
  | None -> find t (Five_tuple.reverse tup)

let find_or_create t tup ~default =
  match find_bidir t tup with
  | Some e -> (e, false)
  | None ->
    let key = key_of t tup in
    (* State created while a covering move is in progress belongs to
       the destination: flag it immediately so its packets are
       re-processed there (the flow started after the export scan and
       its record will never be put — the replayed packets rebuild it
       at the destination from scratch). *)
    let moved = List.exists (fun f -> Hfl.subsumes f key) t.move_filters in
    let e = { key; value = default (); moved } in
    Hashtbl.replace t.by_key (Hfl.to_string key) e;
    index_add t e;
    (e, true)

let insert t ~key value =
  let id = Hfl.to_string key in
  (match Hashtbl.find_opt t.by_key id with
  | Some old -> index_remove t old
  | None -> ());
  let e = { key; value; moved = false } in
  Hashtbl.replace t.by_key id e;
  index_add t e

(* A request pinning the source to a single host can be served from the
   index; anything else falls back to the linear scan the paper's
   prototype performs. *)
let indexed_candidates t hfl =
  match t.by_src with
  | None -> None
  | Some idx ->
    List.find_map
      (fun f ->
        match f with
        | Hfl.Src_ip p when Addr.prefix_len p = 32 -> (
          match Hashtbl.find_opt idx (Addr.to_int (Addr.prefix_base p)) with
          | Some bucket -> Some (Hashtbl.fold (fun _ e acc -> e :: acc) bucket [])
          | None -> Some [])
        | Hfl.Src_ip _ | Hfl.Dst_ip _ | Hfl.Src_port _ | Hfl.Dst_port _ | Hfl.Proto _ ->
          None)
      hfl

let matching t hfl =
  match indexed_candidates t hfl with
  | Some candidates -> List.filter (fun e -> Hfl.subsumes hfl e.key) candidates
  | None ->
    Hashtbl.fold
      (fun _ e acc -> if Hfl.subsumes hfl e.key then e :: acc else acc)
      t.by_key []

let remove_matching t hfl =
  let hits = matching t hfl in
  List.iter
    (fun e ->
      Hashtbl.remove t.by_key (Hfl.to_string e.key);
      index_remove t e)
    hits;
  hits

(* The deferred delete that completes a move (Fig. 5) must only remove
   state that is still the exported copy: an entry whose [moved] flag
   was cleared by a later import belongs to a newer transfer and must
   survive — otherwise a move back to this instance races the delete
   and loses state. *)
let remove_moved_matching t hfl =
  let hits = List.filter (fun e -> e.moved) (matching t hfl) in
  List.iter
    (fun e ->
      Hashtbl.remove t.by_key (Hfl.to_string e.key);
      index_remove t e)
    hits;
  hits

let remove_key t key =
  let id = Hfl.to_string key in
  match Hashtbl.find_opt t.by_key id with
  | Some e ->
    Hashtbl.remove t.by_key id;
    index_remove t e;
    true
  | None -> false

let add_move_filter t hfl = t.move_filters <- hfl :: t.move_filters

let remove_move_filter t hfl =
  t.move_filters <- List.filter (fun f -> not (Hfl.equal f hfl)) t.move_filters

let iter t f = Hashtbl.iter (fun _ e -> f e) t.by_key
let fold t ~init ~f = Hashtbl.fold (fun _ e acc -> f acc e) t.by_key init
let clear t =
  Hashtbl.reset t.by_key;
  match t.by_src with Some idx -> Hashtbl.reset idx | None -> ()
