(** Packet cache for redundancy elimination.

    A fixed-capacity window over an append-only stream of content
    tokens, addressed by {e absolute} offsets (the offset of a token
    never changes; old offsets fall out of the window as new content
    arrives).  This is the ring buffer of the paper's RE encoder and
    decoder (§6.1), with two position-synchronization modes:

    - {e explicit}: writers place tokens at caller-supplied absolute
      offsets (used by OpenMB-enabled decoders, which append at the
      offset stamped on each encoded packet — robust to reordering);
    - {e implicit}: classic SmartRE behaviour, the writer appends at
      its own head position.  One missed packet permanently desynchronizes
      an implicit decoder from its encoder.

    The mode is a property of the {e user} (the cache itself supports
    both write styles). *)

type t

val create : capacity:int -> unit -> t
(** Cache holding the most recent [capacity] tokens.  [capacity] must
    be positive. *)

val capacity : t -> int

val pos : t -> int
(** Head: the absolute offset the next self-appended token would get. *)

val set_pos : t -> int -> unit
(** Restore the head (state import). *)

val write : t -> offset:int -> token:int -> unit
(** Place [token] at absolute [offset]; advances {!pos} to
    [offset + 1] when beyond it. *)

val append : t -> int array -> int
(** Append tokens at the head; returns the base offset they were
    written at. *)

val read : t -> offset:int -> int option
(** Token at absolute [offset], or [None] if it was never written or
    has left the window. *)

val read_run : t -> offset:int -> len:int -> int array option
(** [len] consecutive tokens from [offset]; [None] if any is absent. *)

val in_window : t -> int -> bool
(** Whether an absolute offset is within the current window. *)

val resident_tokens : t -> int
(** Number of tokens currently resident. *)

val clone : t -> t
(** Deep copy (the encoder's internal cache clone on [NumCaches]
    growth). *)

val serialize : t -> string
(** Compact binary serialization of the window contents and head —
    the decoder's shared-supporting-state chunk body (an MB-private
    format; opaque to the controller per §4.1.2). *)

val deserialize : string -> t
(** Inverse of {!serialize}.  Raises [Invalid_argument] on corrupt
    input. *)

val equal_contents : t -> t -> bool
(** Same head and same resident (offset, token) pairs — cache
    synchronization check used by tests. *)
