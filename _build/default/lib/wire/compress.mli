(** LZ-style compression for state transfers.

    The paper's controller profile (§8.3) shows that move latency is
    dominated by socket reads and that compressing state by 38% cuts a
    500-chunk move from 110 ms to 70 ms.  This module provides a real
    (self-contained) LZSS compressor so the compression bench measures
    an actual ratio on actual serialized state rather than assuming
    one. *)

val compress : string -> string
(** [compress s] is an LZSS encoding of [s].  Worst case it is slightly
    larger than the input (one flag bit per literal byte). *)

val decompress : string -> string
(** Inverse of {!compress}.  Raises [Invalid_argument] on input that
    was not produced by {!compress}. *)

val compressed_size : string -> int
(** [compressed_size s] is [String.length (compress s)] without
    materializing the intermediate string twice. *)

val ratio : string -> float
(** [ratio s] is [1 - compressed_size s / length s]: the fraction of
    bytes saved (0 for incompressible input, approaching 1 for highly
    redundant input).  Returns [0.] for the empty string. *)
