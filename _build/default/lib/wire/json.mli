(** Minimal JSON implementation.

    OpenMB's controller and middleboxes exchange JSON messages (the
    paper uses JSON-C over UNIX sockets).  The container has no JSON
    package installed, so this module provides the value type, a
    printer and a parser.  It supports the full JSON grammar except
    that numbers are split into [Int] and [Float] on parse ([Int] when
    the literal has no fraction/exponent and fits in an OCaml [int]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list
      (** Object fields in insertion order; duplicate keys are
          preserved by the printer and resolved to the first occurrence
          by {!member}. *)

exception Parse_error of string
(** Raised by {!of_string} on malformed input, with a description
    including the offending position. *)

val to_string : t -> string
(** Compact (no-whitespace) serialization. *)

val to_string_pretty : t -> string
(** Two-space-indented serialization for logs and examples. *)

val of_string : string -> t
(** Parse a JSON document.  Raises {!Parse_error} on malformed input or
    trailing garbage. *)

val wire_size : t -> int
(** Byte length of {!to_string}; used for simulated transfer costs. *)

(** {1 Accessors}

    Accessors raise [Invalid_argument] when the value has the wrong
    shape, to fail fast on protocol violations. *)

val member : string -> t -> t
(** [member key (Assoc _)] is the value bound to [key], or [Null] if
    absent. *)

val mem : string -> t -> bool
(** [mem key j] is [true] iff [j] is an object with field [key]. *)

val get_string : t -> string
(** Contents of a [String]. *)

val get_int : t -> int
(** Contents of an [Int] (also accepts an integral [Float]). *)

val get_float : t -> float
(** Contents of a [Float] or [Int]. *)

val get_bool : t -> bool
(** Contents of a [Bool]. *)

val get_list : t -> t list
(** Contents of a [List]. *)

val equal : t -> t -> bool
(** Structural equality; object field order is significant. *)
