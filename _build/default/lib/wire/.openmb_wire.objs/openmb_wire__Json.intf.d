lib/wire/json.mli:
