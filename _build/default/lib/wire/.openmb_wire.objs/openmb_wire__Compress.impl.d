lib/wire/compress.ml: Array Buffer Char Float String
