lib/wire/compress.mli:
