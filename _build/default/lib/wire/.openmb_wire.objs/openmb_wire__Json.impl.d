lib/wire/json.ml: Bool Buffer Char Float Int List Printf String
