type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as j -> write buf j
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        write_pretty buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Assoc [] -> Buffer.add_string buf "{}"
  | Assoc fields ->
    let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        escape_string buf k;
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 256 in
  write_pretty buf 0 j;
  Buffer.contents buf

let wire_size j = String.length (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at position %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let s = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some v -> v
  | None -> fail st "invalid \\u escape"

let add_utf8 buf code =
  (* Encode a Unicode scalar value as UTF-8. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        let code = parse_hex4 st in
        (* Combine surrogate pairs. *)
        let code =
          if code >= 0xD800 && code <= 0xDBFF then begin
            if peek st = Some '\\' then begin
              advance st;
              if peek st = Some 'u' then begin
                advance st;
                let low = parse_hex4 st in
                if low >= 0xDC00 && low <= 0xDFFF then
                  0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                else fail st "invalid low surrogate"
              end
              else fail st "expected low surrogate"
            end
            else fail st "unpaired surrogate"
          end
          else code
        in
        add_utf8 buf code
      | _ -> fail st "invalid escape");
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec consume () =
    match peek st with
    | Some c when is_number_char c ->
      advance st;
      consume ()
    | _ -> ()
  in
  consume ();
  let lit = String.sub st.src start (st.pos - start) in
  let is_integral =
    not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit)
  in
  if is_integral then
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail st "invalid number")
  else
    match float_of_string_opt lit with
    | Some f -> Float f
    | None -> fail st "invalid number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' -> parse_list st
  | Some '{' -> parse_assoc st
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec items acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        items (v :: acc)
      | Some ']' ->
        advance st;
        List (List.rev (v :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    items []
  end

and parse_assoc st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Assoc []
  end
  else begin
    let rec fields acc =
      skip_ws st;
      let k = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        fields ((k, v) :: acc)
      | Some '}' ->
        advance st;
        Assoc (List.rev ((k, v) :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    fields []
  end

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Assoc fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> invalid_arg "Json.member: not an object"

let mem key = function
  | Assoc fields -> List.mem_assoc key fields
  | _ -> false

let get_string = function
  | String s -> s
  | _ -> invalid_arg "Json.get_string"

let get_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> invalid_arg "Json.get_int"

let get_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> invalid_arg "Json.get_float"

let get_bool = function
  | Bool b -> b
  | _ -> invalid_arg "Json.get_bool"

let get_list = function
  | List l -> l
  | _ -> invalid_arg "Json.get_list"

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Assoc x, Assoc y ->
    List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Assoc _), _ -> false
