open Openmb_sim
open Openmb_net

type params = {
  seed : int;
  n_flows : int;
  clients : Addr.prefix;
  servers : Addr.prefix;
}

let default_params =
  {
    seed = 1337;
    n_flows = 2000;
    clients = Addr.prefix_of_string "10.2.0.0/16";
    servers = Addr.prefix_of_string "10.3.0.0/24";
  }

(* Control points of the flow-duration CDF: mostly short flows with a
   long tail; 9% exceed 1500 s (the paper's Figure 8 observation). *)
let duration_distribution =
  [|
    (0.1, 0.00);
    (1.0, 0.30);
    (10.0, 0.55);
    (60.0, 0.72);
    (300.0, 0.83);
    (900.0, 0.88);
    (1500.0, 0.91);
    (3600.0, 0.97);
    (7200.0, 1.00);
  |]

let sample_duration prng = Dist.empirical prng ~points:duration_distribution

let pick_host prng prefix =
  let capacity = 1 lsl (32 - Addr.prefix_len prefix) in
  Addr.host_in_prefix prefix (1 + Prng.int prng (max 1 (capacity - 2)))

let generate ?(ids = Trace.Id_gen.create ()) p =
  let prng = Prng.create ~seed:p.seed in
  let flows =
    List.concat
      (List.init p.n_flows (fun i ->
           let tuple =
             {
               Five_tuple.src_ip = pick_host prng p.clients;
               dst_ip = pick_host prng p.servers;
               src_port = 10000 + (i mod 50000);
               dst_port = 80;
               proto = Packet.Tcp;
             }
           in
           let duration = sample_duration prng in
           let start = Dist.uniform prng ~lo:0.0 ~hi:60.0 in
           (* Long flows trickle packets; short flows burst. *)
           let data_packets = max 2 (min 40 (int_of_float (4.0 +. (duration /. 60.0)))) in
           Flow_gen.tcp_flow ~ids ~prng ~tuple ~start ~duration ~data_packets
             ~content:(Flow_gen.fresh_content prng ~tokens_per_packet:6)
             ~http:[ ("dc.internal", "/service") ]
             ()))
  in
  Trace.of_packets flows
