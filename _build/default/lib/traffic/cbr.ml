open Openmb_sim
open Openmb_net

type params = {
  seed : int;
  n_flows : int;
  rate_pps : float;
  duration : float;
  tokens_per_packet : int;
  opening_window : float;
  clients : Addr.prefix;
  server : Addr.t;
  dst_port : int;
}

let default_params =
  {
    seed = 11;
    n_flows = 100;
    rate_pps = 1000.0;
    duration = 5.0;
    tokens_per_packet = 4;
    opening_window = 0.1;
    clients = Addr.prefix_of_string "10.0.0.0/16";
    server = Addr.of_string "1.1.1.10";
    dst_port = 80;
  }

let flows_hfl p = [ Hfl.Src_ip p.clients ]

let generate ?(ids = Trace.Id_gen.create ()) p =
  let prng = Prng.create ~seed:p.seed in
  let tuples =
    Array.init p.n_flows (fun i ->
        {
          Five_tuple.src_ip = Addr.host_in_prefix p.clients (1 + i);
          dst_ip = p.server;
          src_port = 10000 + i;
          dst_port = p.dst_port;
          proto = Packet.Tcp;
        })
  in
  let openings =
    Array.to_list tuples
    |> List.concat_map (fun tuple ->
           let start = Dist.uniform prng ~lo:0.0 ~hi:p.opening_window in
           let syn = Flow_gen.syn_probe ~ids ~tuple ~start in
           let synack =
             Packet.make ~flags:Packet.synack_flags ~id:(Trace.Id_gen.next ids)
               ~ts:(Time.seconds (start +. 0.001))
               ~src_ip:tuple.dst_ip ~dst_ip:tuple.src_ip ~src_port:tuple.dst_port
               ~dst_port:tuple.src_port ~proto:tuple.proto ()
           in
           [ syn; synack ])
  in
  let interval = 1.0 /. p.rate_pps in
  let data_start = p.opening_window +. 0.05 in
  let n_data = int_of_float ((p.duration -. data_start) /. interval) in
  let data =
    List.init n_data (fun k ->
        let tuple = tuples.(k mod p.n_flows) in
        let ts = data_start +. (float_of_int k *. interval) in
        let tokens =
          Array.init p.tokens_per_packet (fun _ -> 0x2000000 + Prng.int prng 0xFFFFFFF)
        in
        Packet.make
          ~body:(Packet.Raw (Payload.of_tokens tokens))
          ~id:(Trace.Id_gen.next ids) ~ts:(Time.seconds ts) ~src_ip:tuple.src_ip
          ~dst_ip:tuple.dst_ip ~src_port:tuple.src_port ~dst_port:tuple.dst_port
          ~proto:tuple.proto ())
  in
  Trace.of_packets (openings @ data)
