lib/traffic/cbr.mli: Openmb_net Trace
