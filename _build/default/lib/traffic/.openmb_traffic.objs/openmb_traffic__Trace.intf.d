lib/traffic/trace.mli: Openmb_net Openmb_sim
