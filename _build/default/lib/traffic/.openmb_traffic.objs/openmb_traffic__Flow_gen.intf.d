lib/traffic/flow_gen.mli: Openmb_net Openmb_sim Trace
