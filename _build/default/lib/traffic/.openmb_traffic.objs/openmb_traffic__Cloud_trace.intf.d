lib/traffic/cloud_trace.mli: Openmb_net Trace
