lib/traffic/redundancy_trace.mli: Openmb_net Trace
