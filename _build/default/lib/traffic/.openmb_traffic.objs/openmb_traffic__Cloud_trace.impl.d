lib/traffic/cloud_trace.ml: Addr Dist Five_tuple Flow_gen List Openmb_net Openmb_sim Packet Prng Trace
