lib/traffic/flow_gen.ml: Array Five_tuple Float List Openmb_net Openmb_sim Packet Payload Prng Time Trace
