lib/traffic/redundancy_trace.ml: Addr Array Dist Five_tuple Flow_gen Hfl List Openmb_net Openmb_sim Packet Payload Prng Trace
