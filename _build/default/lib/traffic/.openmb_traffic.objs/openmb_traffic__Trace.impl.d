lib/traffic/trace.ml: Array Engine List Openmb_net Openmb_sim Packet Time
