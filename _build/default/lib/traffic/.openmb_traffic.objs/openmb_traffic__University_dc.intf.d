lib/traffic/university_dc.mli: Openmb_net Openmb_sim Trace
