(** Flow-level packet synthesis.

    Builds the packet sequences of individual transport flows — TCP
    handshake, data exchange (optionally carrying HTTP transactions),
    and teardown — with timestamps spread over the flow's lifetime.
    The trace generators compose these into whole traces. *)

type content = {
  payload_for : int -> Openmb_net.Payload.t;
      (** Payload for the [i]-th data packet of the flow. *)
}

val fresh_content :
  Openmb_sim.Prng.t -> tokens_per_packet:int -> content
(** Every packet gets previously-unseen random tokens (no cross- or
    intra-flow redundancy). *)

val empty_content : content
(** Zero-length payloads (control-plane-ish flows). *)

val tcp_flow :
  ids:Trace.Id_gen.gen ->
  prng:Openmb_sim.Prng.t ->
  tuple:Openmb_net.Five_tuple.t ->
  start:float ->
  duration:float ->
  data_packets:int ->
  ?content:content ->
  ?http:(string * string) list ->
  ?close:bool ->
  unit ->
  Openmb_net.Packet.t list
(** A full TCP flow: SYN, SYN-ACK, [data_packets] data packets
    alternating originator/responder, and (when [close], the default)
    FIN.  With [http] = [(host, uri); ...], transactions are spread
    over the flow: each request is marked [Http_request] on an
    originator packet and answered by an [Http_response] on the next
    responder packet.  Timestamps are uniform over
    [\[start, start + duration\]] (sorted). *)

val udp_flow :
  ids:Trace.Id_gen.gen ->
  prng:Openmb_sim.Prng.t ->
  tuple:Openmb_net.Five_tuple.t ->
  start:float ->
  duration:float ->
  data_packets:int ->
  ?content:content ->
  unit ->
  Openmb_net.Packet.t list
(** A UDP exchange (no handshake or teardown). *)

val syn_probe :
  ids:Trace.Id_gen.gen ->
  tuple:Openmb_net.Five_tuple.t ->
  start:float ->
  Openmb_net.Packet.t
(** A lone SYN (scanner probe). *)
