(** Synthetic stand-in for the university data-center capture
    (Benson et al., IMC 2010) used for Figure 8: what matters there is
    the flow-duration distribution — heavy-tailed, with roughly 9% of
    HTTP flows lasting longer than 1500 s, which is what strands a
    deprecated middlebox under config-and-routing-only scale-down. *)

type params = {
  seed : int;
  n_flows : int;
  clients : Openmb_net.Addr.prefix;
  servers : Openmb_net.Addr.prefix;
}

val default_params : params
(** 2000 flows between 10.2.0.0/16 and 10.3.0.0/24. *)

val generate : ?ids:Trace.Id_gen.gen -> params -> Trace.t
(** Flows all start in the first minute (so scale-down at t=60 s sees
    them all active); each carries a handful of packets spread over its
    duration. *)

val duration_distribution : (float * float) array
(** The empirical flow-duration CDF the generator samples —
    [(seconds, cumulative probability)] control points with
    [P(d > 1500 s) ≈ 0.09]. *)

val sample_duration : Openmb_sim.Prng.t -> float
(** One draw from {!duration_distribution}. *)
