open Openmb_sim
open Openmb_net

type params = {
  seed : int;
  n_http_flows : int;
  n_other_flows : int;
  n_scanners : int;
  duration : float;
  campus : Addr.prefix;
  cloud_http : Addr.prefix;
  cloud_other : Addr.prefix;
}

let default_params =
  {
    seed = 42;
    n_http_flows = 300;
    n_other_flows = 120;
    n_scanners = 2;
    duration = 60.0;
    campus = Addr.prefix_of_string "10.0.0.0/16";
    cloud_http = Addr.prefix_of_string "1.1.1.0/24";
    cloud_other = Addr.prefix_of_string "1.1.2.0/24";
  }

let is_http (p : Packet.t) = p.dst_port = 80 || p.src_port = 80

let pick_host prng prefix =
  (* Avoid the network (offset 0) and broadcast-ish tail. *)
  let capacity = 1 lsl (32 - Addr.prefix_len prefix) in
  Addr.host_in_prefix prefix (1 + Prng.int prng (max 1 (capacity - 2)))

let uris = [| "/index.html"; "/api/v1/items"; "/static/app.js"; "/images/logo.png";
              "/search?q=ocaml"; "/login"; "/data.json"; "/feed.xml" |]

let hosts = [| "app.cloud.example"; "cdn.cloud.example"; "api.cloud.example" |]

let generate ?(ids = Trace.Id_gen.create ()) p =
  let master = Prng.create ~seed:p.seed in
  let g_http = Prng.split master in
  let g_other = Prng.split master in
  let g_scan = Prng.split master in
  let http_flows =
    List.concat
      (List.init p.n_http_flows (fun i ->
           let tuple =
             {
               Five_tuple.src_ip = pick_host g_http p.campus;
               dst_ip = pick_host g_http p.cloud_http;
               src_port = 10000 + (i mod 50000);
               dst_port = 80;
               proto = Packet.Tcp;
             }
           in
           (* Flows start early enough to complete within the trace. *)
           let duration = Dist.uniform g_http ~lo:1.0 ~hi:(p.duration *. 0.6) in
           let start = Dist.uniform g_http ~lo:0.0 ~hi:(p.duration -. duration -. 0.1) in
           let n_txn = 1 + Prng.int g_http 4 in
           let http =
             List.init n_txn (fun _ ->
                 (Prng.choose g_http hosts, Prng.choose g_http uris))
           in
           let data_packets = max (2 * n_txn) (4 + Prng.int g_http 20) in
           Flow_gen.tcp_flow ~ids ~prng:g_http ~tuple ~start ~duration ~data_packets
             ~content:(Flow_gen.fresh_content g_http ~tokens_per_packet:8)
             ~http ()))
  in
  let other_flows =
    List.concat
      (List.init p.n_other_flows (fun i ->
           let proto = if Prng.chance g_other 0.3 then Packet.Udp else Packet.Tcp in
           let tuple =
             {
               Five_tuple.src_ip = pick_host g_other p.campus;
               dst_ip = pick_host g_other p.cloud_other;
               src_port = 20000 + (i mod 40000);
               dst_port = Prng.choose g_other [| 22; 443; 53; 25; 8443 |];
               proto;
             }
           in
           let duration = Dist.uniform g_other ~lo:0.5 ~hi:(p.duration *. 0.5) in
           let start = Dist.uniform g_other ~lo:0.0 ~hi:(p.duration -. duration -. 0.1) in
           let data_packets = 2 + Prng.int g_other 10 in
           let content = Flow_gen.fresh_content g_other ~tokens_per_packet:4 in
           match proto with
           | Packet.Udp ->
             Flow_gen.udp_flow ~ids ~prng:g_other ~tuple ~start ~duration ~data_packets
               ~content ()
           | Packet.Tcp | Packet.Icmp ->
             Flow_gen.tcp_flow ~ids ~prng:g_other ~tuple ~start ~duration ~data_packets
               ~content ()))
  in
  let scan_probes =
    List.concat
      (List.init p.n_scanners (fun i ->
           let src = pick_host g_scan p.campus in
           (* Each scanner probes enough distinct destinations to trip
              the IDS threshold. *)
           List.init 30 (fun j ->
               let tuple =
                 {
                   Five_tuple.src_ip = src;
                   dst_ip = pick_host g_scan p.cloud_other;
                   src_port = 30000 + (i * 100) + j;
                   dst_port = 1 + Prng.int g_scan 1024;
                   proto = Packet.Tcp;
                 }
               in
               Flow_gen.syn_probe ~ids ~tuple
                 ~start:(Dist.uniform g_scan ~lo:0.0 ~hi:p.duration))))
  in
  Trace.of_packets (http_flows @ other_flows @ scan_probes)
