(** Constant-rate traffic over a fixed population of long-lived flows —
    the controlled workload of the Figure 9 and Split/Merge
    experiments, where the packet rate and the number of per-flow state
    chunks are the independent variables. *)

type params = {
  seed : int;
  n_flows : int;  (** Concurrent long-lived flows (= state chunks). *)
  rate_pps : float;  (** Aggregate packet rate. *)
  duration : float;
  tokens_per_packet : int;
  opening_window : float;
      (** Seconds over which the flows' handshakes are spread (default
          0.1; raise it when the MB under test cannot absorb a
          handshake burst without queueing). *)
  clients : Openmb_net.Addr.prefix;
  server : Openmb_net.Addr.t;
  dst_port : int;
}

val default_params : params
(** 100 flows at 1000 pkt/s for 5 s toward 1.1.1.10:80. *)

val generate : ?ids:Trace.Id_gen.gen -> params -> Trace.t
(** First each flow opens (SYN/SYN-ACK within [opening_window]), then
    data packets are dealt round-robin across flows at the aggregate
    rate.  No FINs — flows stay alive for the whole run. *)

val flows_hfl : params -> Openmb_net.Hfl.t
(** HFL covering all generated flows (the clients prefix). *)
