open Openmb_sim
open Openmb_net

type params = {
  seed : int;
  n_flows_a : int;
  n_flows_b : int;
  packets_per_flow : int;
  tokens_per_packet : int;
  redundancy : float;
  pool_size : int;
  duration : float;
  clients : Addr.prefix;
  class_a : Addr.prefix;
  class_b : Addr.prefix;
}

let default_params =
  {
    seed = 7;
    n_flows_a = 60;
    n_flows_b = 60;
    packets_per_flow = 40;
    tokens_per_packet = 16;
    redundancy = 0.5;
    pool_size = 512;
    duration = 30.0;
    clients = Addr.prefix_of_string "10.0.0.0/16";
    class_a = Addr.prefix_of_string "1.1.1.0/24";
    class_b = Addr.prefix_of_string "1.1.2.0/24";
  }

let class_b_hfl p = [ Hfl.Dst_ip p.class_b ]

let pick_host prng prefix =
  let capacity = 1 lsl (32 - Addr.prefix_len prefix) in
  Addr.host_in_prefix prefix (1 + Prng.int prng (max 1 (capacity - 2)))

(* Token spaces: popular pool tokens are [class_tag + rank]; fresh
   tokens live far above any pool.  Class tags keep the pools
   disjoint. *)
let pool_token ~class_tag rank = (class_tag lsl 20) lor rank

let content_for prng p ~class_tag ~fresh_base =
  let counter = ref 0 in
  {
    Flow_gen.payload_for =
      (fun _ ->
        Payload.of_tokens
          (Array.init p.tokens_per_packet (fun _ ->
               if Prng.chance prng p.redundancy then
                 pool_token ~class_tag (Dist.zipf prng ~n:p.pool_size ~s:1.1)
               else begin
                 incr counter;
                 fresh_base + !counter
               end)));
  }

let flows_for ?(ids = Trace.Id_gen.create ()) prng p ~n ~class_tag ~dst_prefix ~port_base =
  List.concat
    (List.init n (fun i ->
         let tuple =
           {
             Five_tuple.src_ip = pick_host prng p.clients;
             dst_ip = pick_host prng dst_prefix;
             src_port = port_base + i;
             dst_port = 80;
             proto = Packet.Tcp;
           }
         in
         let start = Dist.uniform prng ~lo:0.0 ~hi:(p.duration *. 0.2) in
         let duration = p.duration *. 0.75 in
         let fresh_base = (class_tag lsl 44) lor (i lsl 24) in
         Flow_gen.tcp_flow ~ids ~prng ~tuple ~start ~duration
           ~data_packets:p.packets_per_flow
           ~content:(content_for prng p ~class_tag ~fresh_base)
           ()))

let generate ?(ids = Trace.Id_gen.create ()) p =
  let prng = Prng.create ~seed:p.seed in
  let a = flows_for ~ids prng p ~n:p.n_flows_a ~class_tag:1 ~dst_prefix:p.class_a ~port_base:10000 in
  let b = flows_for ~ids prng p ~n:p.n_flows_b ~class_tag:2 ~dst_prefix:p.class_b ~port_base:20000 in
  Trace.of_packets (a @ b)
