(** Synthetic stand-in for the paper's campus↔cloud capture: traffic
    between a campus network and two cloud-provider prefixes over ~15
    minutes, with an HTTP substream (to the cloud web services) and an
    "other" substream (non-HTTP ports), plus a small population of
    scanners probing the campus.

    The HTTP/other split is what the migration scenarios partition on
    (HTTP flows move; other flows stay). *)

type params = {
  seed : int;
  n_http_flows : int;
  n_other_flows : int;
  n_scanners : int;  (** Sources emitting bare SYN probes. *)
  duration : float;  (** Trace length, seconds. *)
  campus : Openmb_net.Addr.prefix;  (** Client population. *)
  cloud_http : Openmb_net.Addr.prefix;  (** HTTP destinations. *)
  cloud_other : Openmb_net.Addr.prefix;  (** Non-HTTP destinations. *)
}

val default_params : params
(** 300 HTTP flows, 120 other flows, 2 scanners over 60 s —
    test-sized.  The benches scale the flow counts up to the paper's
    populations. *)

val generate : ?ids:Trace.Id_gen.gen -> params -> Trace.t

val is_http : Openmb_net.Packet.t -> bool
(** Whether a packet belongs to the HTTP substream (port 80 on either
    side). *)
