open Openmb_sim
open Openmb_net

type content = { payload_for : int -> Payload.t }

(* Fresh tokens come from a dedicated 48-bit space so they never
   collide with generator pools. *)
let fresh_content prng ~tokens_per_packet =
  {
    payload_for =
      (fun _ ->
        Payload.of_tokens
          (Array.init tokens_per_packet (fun _ ->
               0x1000000 + Prng.int prng 0xFFFFFFFFFF)));
  }

let empty_content = { payload_for = (fun _ -> Payload.empty) }

(* Sorted timestamps for [n] packets across [start, start+duration]:
   the handshake happens promptly, the rest spread uniformly. *)
let timestamps prng ~start ~duration ~n =
  if n <= 0 then [||]
  else begin
    let ts = Array.make n start in
    for i = 0 to n - 1 do
      ts.(i) <- start +. Prng.float prng (Float.max duration 1e-6)
    done;
    Array.sort Float.compare ts;
    ts
  end

let mk ~ids ~ts ~tuple:(tup : Five_tuple.t) ?(flags = Packet.no_flags) ?(app = Packet.Plain)
    ?(body = Packet.Raw Payload.empty) ~reverse () =
  let t = if reverse then Five_tuple.reverse tup else tup in
  Packet.make ~flags ~app ~body ~id:(Trace.Id_gen.next ids) ~ts:(Time.seconds ts)
    ~src_ip:t.src_ip ~dst_ip:t.dst_ip ~src_port:t.src_port ~dst_port:t.dst_port
    ~proto:t.proto ()

let tcp_flow ~ids ~prng ~tuple ~start ~duration ~data_packets
    ?(content = empty_content) ?(http = []) ?(close = true) () =
  let handshake_gap = 0.001 in
  let syn = mk ~ids ~ts:start ~tuple ~flags:Packet.syn_flags ~reverse:false () in
  let synack =
    mk ~ids ~ts:(start +. handshake_gap) ~tuple ~flags:Packet.synack_flags ~reverse:true ()
  in
  let data_start = start +. (2.0 *. handshake_gap) in
  let data_span = Float.max 0.0 (duration -. (3.0 *. handshake_gap)) in
  let ts = timestamps prng ~start:data_start ~duration:data_span ~n:data_packets in
  (* Interleave HTTP transactions: request on an originator packet,
     response on the following responder packet. *)
  let http = Array.of_list http in
  let n_http = Array.length http in
  let data =
    List.init data_packets (fun i ->
        let reverse = i mod 2 = 1 in
        (* Transaction k rides data packets 2k (request) and 2k+1
           (response). *)
        let app =
          if (not reverse) && i / 2 < n_http then begin
            let host, uri = http.(i / 2) in
            Packet.Http_request { method_ = "GET"; host; uri }
          end
          else if reverse && i / 2 < n_http then Packet.Http_response { status = 200 }
          else Packet.Plain
        in
        mk ~ids ~ts:ts.(i) ~tuple ~app
          ~body:(Packet.Raw (content.payload_for i))
          ~reverse ())
  in
  let fin =
    if close then
      [ mk ~ids ~ts:(start +. duration) ~tuple ~flags:Packet.fin_flags ~reverse:false () ]
    else []
  in
  (syn :: synack :: data) @ fin

let udp_flow ~ids ~prng ~tuple ~start ~duration ~data_packets ?(content = empty_content)
    () =
  let ts = timestamps prng ~start ~duration ~n:data_packets in
  List.init data_packets (fun i ->
      mk ~ids ~ts:ts.(i) ~tuple
        ~body:(Packet.Raw (content.payload_for i))
        ~reverse:(i mod 2 = 1) ())

let syn_probe ~ids ~tuple ~start =
  mk ~ids ~ts:start ~tuple ~flags:Packet.syn_flags ~reverse:false ()
