(** Synthetic stand-in for the high-redundancy campus capture used by
    the RE experiments (Table 3).

    Payload tokens are drawn from per-destination-class content pools
    with Zipf popularity, so a large fraction of content repeats —
    the redundancy an RE encoder eliminates.  Redundancy is strictly
    {e intra-class}: the pools of the two destination prefixes are
    disjoint, so content never repeats across the migration boundary.
    (Cross-class repeats would let the encoder emit shims for class-A
    traffic that reference class-B content appended during the small
    routing/config window — a failure mode the paper's trace evidently
    did not exhibit; see DESIGN.md.) *)

type params = {
  seed : int;
  n_flows_a : int;  (** Flows to the class-A prefix (stay in DC A). *)
  n_flows_b : int;  (** Flows to the class-B prefix (migrate to DC B). *)
  packets_per_flow : int;
  tokens_per_packet : int;
  redundancy : float;  (** Fraction of tokens drawn from the popular pool. *)
  pool_size : int;  (** Distinct popular tokens per class. *)
  duration : float;
  clients : Openmb_net.Addr.prefix;
  class_a : Openmb_net.Addr.prefix;
  class_b : Openmb_net.Addr.prefix;
}

val default_params : params
(** 60+60 flows, 40 packets × 16 tokens each, 50% redundancy over
    30 s. *)

val generate : ?ids:Trace.Id_gen.gen -> params -> Trace.t

val class_b_hfl : params -> Openmb_net.Hfl.t
(** Header-field list selecting the migrating (class-B) traffic. *)
