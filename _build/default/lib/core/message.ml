open Openmb_wire
open Openmb_net

type op_id = int

type request =
  | Get_config of Config_tree.path
  | Set_config of Config_tree.path * Json.t list
  | Del_config of Config_tree.path
  | Get_support_perflow of Hfl.t
  | Put_support_perflow of Chunk.t
  | Del_support_perflow of Hfl.t
  | Get_support_shared
  | Put_support_shared of Chunk.t
  | Get_report_perflow of Hfl.t
  | Put_report_perflow of Chunk.t
  | Del_report_perflow of Hfl.t
  | Get_report_shared
  | Put_report_shared of Chunk.t
  | Get_stats of Hfl.t
  | Enable_events of { codes : string list; key : Hfl.t }
  | Disable_events of { codes : string list }
  | Reprocess_packet of { key : Hfl.t; packet : Packet.t }

type reply =
  | State_chunk of Chunk.t
  | End_of_state of { count : int }
  | Ack
  | Config_values of Config_tree.entry list
  | Stats_reply of Southbound.stats
  | Op_error of Errors.t

type to_mb = { op : op_id; req : request }

type from_mb = Reply of { op : op_id; reply : reply } | Event_msg of Event.t

(* ------------------------------------------------------------------ *)
(* JSON encodings                                                      *)
(* ------------------------------------------------------------------ *)

let hfl_to_json hfl = Json.String (Hfl.to_string hfl)
let hfl_of_json j = Hfl.of_string (Json.get_string j)
let path_to_json p = Json.String (Config_tree.path_to_string p)
let path_of_json j = Config_tree.path_of_string (Json.get_string j)

let chunk_to_json (c : Chunk.t) =
  Json.Assoc
    [
      ("kind", Json.String c.mb_kind);
      ("role", Json.String (Taxonomy.role_to_string c.role));
      ("partition", Json.String (Taxonomy.partition_to_string c.partition));
      ("key", hfl_to_json c.key);
      ("cipher", Json.String c.cipher);
    ]

let chunk_of_json j : Chunk.t =
  {
    mb_kind = Json.get_string (Json.member "kind" j);
    role = Taxonomy.role_of_string (Json.get_string (Json.member "role" j));
    partition =
      Taxonomy.partition_of_string (Json.get_string (Json.member "partition" j));
    key = hfl_of_json (Json.member "key" j);
    cipher = Json.get_string (Json.member "cipher" j);
  }

let flags_to_json (f : Packet.tcp_flags) =
  Json.Assoc
    [
      ("syn", Json.Bool f.syn);
      ("ack", Json.Bool f.ack);
      ("fin", Json.Bool f.fin);
      ("rst", Json.Bool f.rst);
    ]

let flags_of_json j : Packet.tcp_flags =
  {
    syn = Json.get_bool (Json.member "syn" j);
    ack = Json.get_bool (Json.member "ack" j);
    fin = Json.get_bool (Json.member "fin" j);
    rst = Json.get_bool (Json.member "rst" j);
  }

let app_to_json = function
  | Packet.Plain -> Json.Null
  | Packet.Http_request { method_; host; uri } ->
    Json.Assoc
      [
        ("t", Json.String "req");
        ("method", Json.String method_);
        ("host", Json.String host);
        ("uri", Json.String uri);
      ]
  | Packet.Http_response { status } ->
    Json.Assoc [ ("t", Json.String "resp"); ("status", Json.Int status) ]

let app_of_json = function
  | Json.Null -> Packet.Plain
  | j -> (
    match Json.get_string (Json.member "t" j) with
    | "req" ->
      Packet.Http_request
        {
          method_ = Json.get_string (Json.member "method" j);
          host = Json.get_string (Json.member "host" j);
          uri = Json.get_string (Json.member "uri" j);
        }
    | "resp" -> Packet.Http_response { status = Json.get_int (Json.member "status" j) }
    | s -> invalid_arg (Printf.sprintf "Message.app_of_json: %S" s))

let payload_to_json p =
  Json.Assoc
    [
      ("tokens", Json.List (Array.to_list (Array.map (fun t -> Json.Int t) (Payload.tokens p))));
      ("trailing", Json.Int (Payload.size_bytes p mod Payload.token_bytes));
    ]

let payload_of_json j =
  let tokens =
    Array.of_list (List.map Json.get_int (Json.get_list (Json.member "tokens" j)))
  in
  let trailing = Json.get_int (Json.member "trailing" j) in
  Payload.of_tokens_trailing tokens ~trailing

let segment_to_json = function
  | Packet.Literal p -> Json.Assoc [ ("t", Json.String "lit"); ("payload", payload_to_json p) ]
  | Packet.Shim { offset; len } ->
    Json.Assoc
      [ ("t", Json.String "shim"); ("offset", Json.Int offset); ("len", Json.Int len) ]

let segment_of_json j =
  match Json.get_string (Json.member "t" j) with
  | "lit" -> Packet.Literal (payload_of_json (Json.member "payload" j))
  | "shim" ->
    Packet.Shim
      { offset = Json.get_int (Json.member "offset" j); len = Json.get_int (Json.member "len" j) }
  | s -> invalid_arg (Printf.sprintf "Message.segment_of_json: %S" s)

let body_to_json = function
  | Packet.Raw p -> Json.Assoc [ ("t", Json.String "raw"); ("payload", payload_to_json p) ]
  | Packet.Encoded { cache_id; append_base; segments; orig } ->
    Json.Assoc
      [
        ("t", Json.String "enc");
        ("cache", Json.Int cache_id);
        ("base", Json.Int append_base);
        ("segments", Json.List (List.map segment_to_json segments));
        ("orig", payload_to_json orig);
      ]

let body_of_json j =
  match Json.get_string (Json.member "t" j) with
  | "raw" -> Packet.Raw (payload_of_json (Json.member "payload" j))
  | "enc" ->
    Packet.Encoded
      {
        cache_id = Json.get_int (Json.member "cache" j);
        append_base = Json.get_int (Json.member "base" j);
        segments = List.map segment_of_json (Json.get_list (Json.member "segments" j));
        orig = payload_of_json (Json.member "orig" j);
      }
  | s -> invalid_arg (Printf.sprintf "Message.body_of_json: %S" s)

let packet_to_json (p : Packet.t) =
  Json.Assoc
    [
      ("id", Json.Int p.id);
      ("ts", Json.Float (Openmb_sim.Time.to_seconds p.ts));
      ("src_ip", Json.String (Addr.to_string p.src_ip));
      ("dst_ip", Json.String (Addr.to_string p.dst_ip));
      ("src_port", Json.Int p.src_port);
      ("dst_port", Json.Int p.dst_port);
      ("proto", Json.String (Packet.proto_to_string p.proto));
      ("flags", flags_to_json p.flags);
      ("app", app_to_json p.app);
      ("body", body_to_json p.body);
    ]

let packet_of_json j : Packet.t =
  {
    id = Json.get_int (Json.member "id" j);
    ts = Openmb_sim.Time.seconds (Json.get_float (Json.member "ts" j));
    src_ip = Addr.of_string (Json.get_string (Json.member "src_ip" j));
    dst_ip = Addr.of_string (Json.get_string (Json.member "dst_ip" j));
    src_port = Json.get_int (Json.member "src_port" j);
    dst_port = Json.get_int (Json.member "dst_port" j);
    proto = Packet.proto_of_string (Json.get_string (Json.member "proto" j));
    flags = flags_of_json (Json.member "flags" j);
    app = app_of_json (Json.member "app" j);
    body = body_of_json (Json.member "body" j);
  }

let request_body_to_json = function
  | Get_config p -> ("getConfig", [ ("key", path_to_json p) ])
  | Set_config (p, vs) -> ("setConfig", [ ("key", path_to_json p); ("values", Json.List vs) ])
  | Del_config p -> ("delConfig", [ ("key", path_to_json p) ])
  | Get_support_perflow h -> ("getSupportPerflow", [ ("key", hfl_to_json h) ])
  | Put_support_perflow c -> ("putSupportPerflow", [ ("chunk", chunk_to_json c) ])
  | Del_support_perflow h -> ("delSupportPerflow", [ ("key", hfl_to_json h) ])
  | Get_support_shared -> ("getSupportShared", [])
  | Put_support_shared c -> ("putSupportShared", [ ("chunk", chunk_to_json c) ])
  | Get_report_perflow h -> ("getReportPerflow", [ ("key", hfl_to_json h) ])
  | Put_report_perflow c -> ("putReportPerflow", [ ("chunk", chunk_to_json c) ])
  | Del_report_perflow h -> ("delReportPerflow", [ ("key", hfl_to_json h) ])
  | Get_report_shared -> ("getReportShared", [])
  | Put_report_shared c -> ("putReportShared", [ ("chunk", chunk_to_json c) ])
  | Get_stats h -> ("getStats", [ ("key", hfl_to_json h) ])
  | Enable_events { codes; key } ->
    ( "enableEvents",
      [
        ("codes", Json.List (List.map (fun c -> Json.String c) codes));
        ("key", hfl_to_json key);
      ] )
  | Disable_events { codes } ->
    ("disableEvents", [ ("codes", Json.List (List.map (fun c -> Json.String c) codes)) ])
  | Reprocess_packet { key; packet } ->
    ("reprocessPacket", [ ("key", hfl_to_json key); ("packet", packet_to_json packet) ])

let request_to_json { op; req } =
  let name, fields = request_body_to_json req in
  Json.Assoc (("op", Json.Int op) :: ("type", Json.String name) :: fields)

let request_of_json j =
  let op = Json.get_int (Json.member "op" j) in
  let key_field () = Json.member "key" j in
  let chunk_field () = chunk_of_json (Json.member "chunk" j) in
  let req =
    match Json.get_string (Json.member "type" j) with
    | "getConfig" -> Get_config (path_of_json (key_field ()))
    | "setConfig" ->
      Set_config (path_of_json (key_field ()), Json.get_list (Json.member "values" j))
    | "delConfig" -> Del_config (path_of_json (key_field ()))
    | "getSupportPerflow" -> Get_support_perflow (hfl_of_json (key_field ()))
    | "putSupportPerflow" -> Put_support_perflow (chunk_field ())
    | "delSupportPerflow" -> Del_support_perflow (hfl_of_json (key_field ()))
    | "getSupportShared" -> Get_support_shared
    | "putSupportShared" -> Put_support_shared (chunk_field ())
    | "getReportPerflow" -> Get_report_perflow (hfl_of_json (key_field ()))
    | "putReportPerflow" -> Put_report_perflow (chunk_field ())
    | "delReportPerflow" -> Del_report_perflow (hfl_of_json (key_field ()))
    | "getReportShared" -> Get_report_shared
    | "putReportShared" -> Put_report_shared (chunk_field ())
    | "getStats" -> Get_stats (hfl_of_json (key_field ()))
    | "enableEvents" ->
      Enable_events
        {
          codes = List.map Json.get_string (Json.get_list (Json.member "codes" j));
          key = hfl_of_json (key_field ());
        }
    | "disableEvents" ->
      Disable_events
        { codes = List.map Json.get_string (Json.get_list (Json.member "codes" j)) }
    | "reprocessPacket" ->
      Reprocess_packet
        { key = hfl_of_json (key_field ()); packet = packet_of_json (Json.member "packet" j) }
    | s -> invalid_arg (Printf.sprintf "Message.request_of_json: unknown type %S" s)
  in
  { op; req }

let stats_to_json (s : Southbound.stats) =
  Json.Assoc
    [
      ("pf_support_chunks", Json.Int s.perflow_support_chunks);
      ("pf_report_chunks", Json.Int s.perflow_report_chunks);
      ("pf_support_bytes", Json.Int s.perflow_support_bytes);
      ("pf_report_bytes", Json.Int s.perflow_report_bytes);
      ("sh_support_bytes", Json.Int s.shared_support_bytes);
      ("sh_report_bytes", Json.Int s.shared_report_bytes);
    ]

let stats_of_json j : Southbound.stats =
  {
    perflow_support_chunks = Json.get_int (Json.member "pf_support_chunks" j);
    perflow_report_chunks = Json.get_int (Json.member "pf_report_chunks" j);
    perflow_support_bytes = Json.get_int (Json.member "pf_support_bytes" j);
    perflow_report_bytes = Json.get_int (Json.member "pf_report_bytes" j);
    shared_support_bytes = Json.get_int (Json.member "sh_support_bytes" j);
    shared_report_bytes = Json.get_int (Json.member "sh_report_bytes" j);
  }

let error_to_json (e : Errors.t) =
  let code, arg =
    match e with
    | Granularity_too_fine -> ("granularity", "")
    | Unknown_mb s -> ("unknown_mb", s)
    | Unknown_config_key s -> ("unknown_config_key", s)
    | Illegal_operation s -> ("illegal_operation", s)
    | Bad_chunk s -> ("bad_chunk", s)
    | Op_failed s -> ("op_failed", s)
  in
  Json.Assoc [ ("code", Json.String code); ("arg", Json.String arg) ]

let error_of_json j : Errors.t =
  let arg = Json.get_string (Json.member "arg" j) in
  match Json.get_string (Json.member "code" j) with
  | "granularity" -> Granularity_too_fine
  | "unknown_mb" -> Unknown_mb arg
  | "unknown_config_key" -> Unknown_config_key arg
  | "illegal_operation" -> Illegal_operation arg
  | "bad_chunk" -> Bad_chunk arg
  | "op_failed" -> Op_failed arg
  | s -> invalid_arg (Printf.sprintf "Message.error_of_json: %S" s)

let entry_to_json (e : Config_tree.entry) =
  Json.Assoc
    [ ("key", Json.String (Config_tree.path_to_string e.path)); ("values", Json.List e.values) ]

let entry_of_json j : Config_tree.entry =
  {
    path = Config_tree.path_of_string (Json.get_string (Json.member "key" j));
    values = Json.get_list (Json.member "values" j);
  }

let reply_to_json = function
  | State_chunk c -> ("stateChunk", [ ("chunk", chunk_to_json c) ])
  | End_of_state { count } -> ("endOfState", [ ("count", Json.Int count) ])
  | Ack -> ("ack", [])
  | Config_values es -> ("configValues", [ ("entries", Json.List (List.map entry_to_json es)) ])
  | Stats_reply s -> ("stats", [ ("stats", stats_to_json s) ])
  | Op_error e -> ("error", [ ("error", error_to_json e) ])

let event_to_json = function
  | Event.Reprocess { key; packet } ->
    Json.Assoc
      [
        ("t", Json.String "reprocess");
        ("key", hfl_to_json key);
        ("packet", packet_to_json packet);
      ]
  | Event.Introspect { code; key; info } ->
    Json.Assoc
      [
        ("t", Json.String "introspect");
        ("code", Json.String code);
        ("key", hfl_to_json key);
        ("info", info);
      ]

let event_of_json j =
  match Json.get_string (Json.member "t" j) with
  | "reprocess" ->
    Event.Reprocess
      { key = hfl_of_json (Json.member "key" j); packet = packet_of_json (Json.member "packet" j) }
  | "introspect" ->
    Event.Introspect
      {
        code = Json.get_string (Json.member "code" j);
        key = hfl_of_json (Json.member "key" j);
        info = Json.member "info" j;
      }
  | s -> invalid_arg (Printf.sprintf "Message.event_of_json: %S" s)

let from_mb_to_json = function
  | Reply { op; reply } ->
    let name, fields = reply_to_json reply in
    Json.Assoc (("op", Json.Int op) :: ("type", Json.String name) :: fields)
  | Event_msg ev -> Json.Assoc [ ("type", Json.String "event"); ("event", event_to_json ev) ]

let from_mb_of_json j =
  match Json.get_string (Json.member "type" j) with
  | "event" -> Event_msg (event_of_json (Json.member "event" j))
  | name ->
    let op = Json.get_int (Json.member "op" j) in
    let reply =
      match name with
      | "stateChunk" -> State_chunk (chunk_of_json (Json.member "chunk" j))
      | "endOfState" -> End_of_state { count = Json.get_int (Json.member "count" j) }
      | "ack" -> Ack
      | "configValues" ->
        Config_values (List.map entry_of_json (Json.get_list (Json.member "entries" j)))
      | "stats" -> Stats_reply (stats_of_json (Json.member "stats" j))
      | "error" -> Op_error (error_of_json (Json.member "error" j))
      | s -> invalid_arg (Printf.sprintf "Message.from_mb_of_json: unknown type %S" s)
    in
    Reply { op; reply }

(* ------------------------------------------------------------------ *)
(* Wire sizes                                                          *)
(* ------------------------------------------------------------------ *)

(* Framing overhead covering the op id, type tag and JSON punctuation.
   State- and packet-bearing messages avoid materializing the (large)
   JSON text on the hot path; everything else measures the actual
   encoding. *)
let framing = 48

let request_wire_bytes m =
  match m.req with
  | Put_support_perflow c | Put_support_shared c | Put_report_perflow c
  | Put_report_shared c ->
    framing + Chunk.size_bytes c + String.length (Hfl.to_string c.key)
  | Reprocess_packet { key; packet } ->
    framing + Packet.wire_bytes packet + String.length (Hfl.to_string key)
  | Get_config _ | Set_config _ | Del_config _ | Get_support_perflow _
  | Del_support_perflow _ | Get_support_shared | Get_report_perflow _
  | Del_report_perflow _ | Get_report_shared | Get_stats _ | Enable_events _
  | Disable_events _ ->
    Json.wire_size (request_to_json m)

let reply_wire_bytes = function
  | Reply { reply = State_chunk c; _ } ->
    framing + Chunk.size_bytes c + String.length (Hfl.to_string c.key)
  | Event_msg ev -> framing + Event.wire_bytes ev
  | Reply { op; reply = (End_of_state _ | Ack | Config_values _ | Stats_reply _ | Op_error _) as reply } ->
    Json.wire_size (from_mb_to_json (Reply { op; reply }))

(* ------------------------------------------------------------------ *)
(* Descriptions                                                        *)
(* ------------------------------------------------------------------ *)

let describe_request req =
  let name, _ = request_body_to_json req in
  let detail =
    match req with
    | Get_config p | Set_config (p, _) | Del_config p -> Config_tree.path_to_string p
    | Get_support_perflow h | Del_support_perflow h | Get_report_perflow h
    | Del_report_perflow h | Get_stats h ->
      Hfl.to_string h
    | Put_support_perflow c | Put_support_shared c | Put_report_perflow c
    | Put_report_shared c ->
      Chunk.describe c
    | Get_support_shared | Get_report_shared -> ""
    | Enable_events { codes; _ } | Disable_events { codes } -> String.concat "," codes
    | Reprocess_packet { packet; _ } -> Packet.flow_label packet
  in
  if detail = "" then name else name ^ " " ^ detail

let describe_reply = function
  | State_chunk c -> "stateChunk " ^ Chunk.describe c
  | End_of_state { count } -> Printf.sprintf "endOfState count=%d" count
  | Ack -> "ack"
  | Config_values es -> Printf.sprintf "configValues n=%d" (List.length es)
  | Stats_reply _ -> "stats"
  | Op_error e -> "error " ^ Errors.to_string e
