open Openmb_net

type t =
  | Reprocess of { key : Hfl.t; packet : Packet.t }
  | Introspect of { code : string; key : Hfl.t; info : Openmb_wire.Json.t }

let framing_bytes = 32

let wire_bytes = function
  | Reprocess { packet; _ } -> framing_bytes + Packet.wire_bytes packet
  | Introspect { code; key; info } ->
    framing_bytes + String.length code
    + String.length (Hfl.to_string key)
    + Openmb_wire.Json.wire_size info

let key = function Reprocess { key; _ } -> key | Introspect { key; _ } -> key

let describe = function
  | Reprocess { key; packet } ->
    Printf.sprintf "reprocess key=%s pkt=%s" (Hfl.to_string key)
      (Packet.flow_label packet)
  | Introspect { code; key; _ } ->
    Printf.sprintf "introspect %s key=%s" code (Hfl.to_string key)

module Filter = struct
  type event = t

  type enablement = { codes : string list; key : Hfl.t }

  type t = { mutable enabled : enablement list }

  let create () = { enabled = [] }

  let enable t ~codes ~key = t.enabled <- { codes; key } :: t.enabled

  let disable t ~codes =
    match codes with
    | [] -> t.enabled <- []
    | codes ->
      t.enabled <-
        List.filter
          (fun e ->
            e.codes <> [] && not (List.exists (fun c -> List.mem c e.codes) codes))
          t.enabled

  let admits t = function
    | Reprocess _ -> true
    | Introspect { code; key; _ } ->
      List.exists
        (fun e ->
          (e.codes = [] || List.mem code e.codes) && Hfl.subsumes e.key key)
        t.enabled
end
