type path = string list

type node = Values of Openmb_wire.Json.t list | Children of (string, node) Hashtbl.t

type t = { mutable root : (string, node) Hashtbl.t }

type entry = { path : path; values : Openmb_wire.Json.t list }

let create () = { root = Hashtbl.create 8 }

let is_root_path = function [] | [ "*" ] -> true | _ -> false

let set t p values =
  if is_root_path p then invalid_arg "Config_tree.set: cannot set values at the root";
  let rec go tbl = function
    | [] -> assert false
    | [ last ] -> Hashtbl.replace tbl last (Values values)
    | seg :: rest -> (
      match Hashtbl.find_opt tbl seg with
      | Some (Children sub) -> go sub rest
      | Some (Values _) ->
        invalid_arg
          (Printf.sprintf "Config_tree.set: key %S already holds values" seg)
      | None ->
        let sub = Hashtbl.create 4 in
        Hashtbl.replace tbl seg (Children sub);
        go sub rest)
  in
  go t.root p

let rec leaves_under prefix tbl =
  Hashtbl.fold
    (fun seg node acc ->
      match node with
      | Values vs -> { path = List.rev (seg :: prefix); values = vs } :: acc
      | Children sub -> leaves_under (seg :: prefix) sub @ acc)
    tbl []

let sort_entries es =
  List.sort (fun a b -> Stdlib.compare a.path b.path) es

let find_node t p =
  let rec go tbl = function
    | [] -> Some (Children tbl)
    | seg :: rest -> (
      match Hashtbl.find_opt tbl seg with
      | None -> None
      | Some (Values _ as n) -> if rest = [] then Some n else None
      | Some (Children sub as n) -> if rest = [] then Some n else go sub rest)
  in
  go t.root p

let get t p =
  let p = if is_root_path p then [] else p in
  match find_node t p with
  | None -> []
  | Some (Values vs) -> [ { path = p; values = vs } ]
  | Some (Children tbl) -> sort_entries (leaves_under (List.rev p) tbl)

let mem t p =
  let p = if is_root_path p then [] else p in
  p = [] || find_node t p <> None

let del t p =
  if is_root_path p then begin
    let had = Hashtbl.length t.root > 0 in
    t.root <- Hashtbl.create 8;
    had
  end
  else begin
    let rec go tbl = function
      | [] -> false
      | [ last ] ->
        if Hashtbl.mem tbl last then begin
          Hashtbl.remove tbl last;
          true
        end
        else false
      | seg :: rest -> (
        match Hashtbl.find_opt tbl seg with
        | Some (Children sub) -> go sub rest
        | Some (Values _) | None -> false)
    in
    go t.root p
  end

let entries t = sort_entries (leaves_under [] t.root)

let replace_all t es =
  t.root <- Hashtbl.create 8;
  List.iter (fun e -> set t e.path e.values) es

let path_to_string = function [] -> "*" | p -> String.concat "." p

let path_of_string s =
  if s = "*" || s = "" then [] else String.split_on_char '.' s

let size t = List.length (entries t)
