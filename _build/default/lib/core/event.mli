(** State events raised by middleboxes (§4.2).

    Events are raised when an MB {e establishes or updates state} in
    response to a trigger — not when the trigger itself occurs — so the
    controller gains visibility into the occurrence of state actions
    while the MB's internal logic stays hidden.

    Two families exist: {e re-process} events carry a copy of a packet
    that updated moved/cloned state, so the destination MB can replay
    the state change (§4.2.1); {e introspection} events announce
    MB-specific state creations (a NAT mapping, a load-balancer
    assignment) to interested control applications (§4.2.2). *)

type t =
  | Reprocess of { key : Openmb_net.Hfl.t; packet : Openmb_net.Packet.t }
      (** [key] identifies the moved/cloned state the packet updated. *)
  | Introspect of {
      code : string;  (** MB-specific event code, e.g. ["nat.new_mapping"]. *)
      key : Openmb_net.Hfl.t;  (** The relevant state's key. *)
      info : Openmb_wire.Json.t;  (** Additional MB-specific values. *)
    }

val wire_bytes : t -> int
(** Modelled wire size: re-process events carry the packet copy plus
    framing; introspection events carry their JSON body. *)

val key : t -> Openmb_net.Hfl.t
(** The state key the event concerns. *)

val describe : t -> string

(** {1 Filters}

    Introspection event generation can be enabled or disabled based on
    event codes and keys so that controller, network and MB are not at
    risk of overload (§4.2.2).  Re-process events are never filtered —
    they are required for atomicity. *)

module Filter : sig
  type event = t

  type t
  (** Mutable filter set; initially everything is disabled. *)

  val create : unit -> t

  val enable : t -> codes:string list -> key:Openmb_net.Hfl.t -> unit
  (** Allow introspection events whose code is in [codes] (or any code
      if [codes] is empty) and whose key is subsumed by [key]. *)

  val disable : t -> codes:string list -> unit
  (** Remove every enablement whose code list intersects [codes]; with
      [codes = []], remove all enablements. *)

  val admits : t -> event -> bool
  (** Whether the event should be emitted.  [Reprocess] events are
      always admitted. *)
end
