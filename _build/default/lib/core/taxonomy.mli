(** The paper's middlebox state taxonomy (§3.1, Table 1).

    Every piece of MB state is classified along two dimensions — its
    {e role} in MB operation and its {e partitioning} — and the
    classification determines which control operations are legal on it
    and who (MB vs. controller) may create or modify it. *)

type role =
  | Configuring
      (** Policies and parameters defining/tuning MB behaviour.  The MB
          only reads it; the controller owns creation and updates. *)
  | Supporting
      (** Details on past traffic guiding MB decisions and actions.
          Read and written by the MB's internal logic. *)
  | Reporting
      (** Quantified observations and decisions, maintained solely for
          external consumption.  Written by the MB. *)

type partition =
  | Per_flow  (** Applies to one flow (at the MB's key granularity). *)
  | Shared  (** Applies to all traffic at the MB. *)

type access = Read_only | Write_only | Read_write
(** How the MB's own logic touches state of a given role. *)

val mb_access : role -> access
(** Table 1's "MB Ops" column: Configuring → [Read_only], Supporting →
    [Read_write], Reporting → [Write_only]. *)

val controller_may_write : role -> bool
(** Whether the controller may create/update state contents of this
    role (true only for [Configuring]); for the other roles it may only
    relocate opaque chunks. *)

val partitions_of : role -> partition list
(** Legal partitionings per Table 1: configuring state is always
    shared; supporting and reporting state may be either. *)

val may_move : role -> partition -> bool
(** Whether a chunk of this class may be {e moved} between MBs
    (per-flow supporting and reporting state only: moving shared state
    away would strand remaining flows, §4.1.2). *)

val may_clone : role -> partition -> bool
(** Whether a chunk of this class may be {e cloned}: configuring and
    supporting state yes; reporting state never (double reporting,
    §4.1.3). *)

val may_merge : role -> partition -> bool
(** Whether chunks of this class may be {e merged} by the receiving
    MB: shared supporting and shared reporting state (MB-specific
    logic); per-flow state is moved instead. *)

val role_to_string : role -> string
val role_of_string : string -> role
val partition_to_string : partition -> string
val partition_of_string : string -> partition
val pp_role : Format.formatter -> role -> unit
val pp_partition : Format.formatter -> partition -> unit
