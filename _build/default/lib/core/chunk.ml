type t = {
  mb_kind : string;
  role : Taxonomy.role;
  partition : Taxonomy.partition;
  key : Openmb_net.Hfl.t;
  cipher : string;
}

let magic = "OMB1"

(* Keystream: SplitMix64 seeded from a hash of the MB kind, standing in
   for a per-vendor symmetric key. *)
let xor_keystream ~mb_kind s =
  let g = Openmb_sim.Prng.create ~seed:(Hashtbl.hash ("vendor-secret:" ^ mb_kind)) in
  let n = String.length s in
  let out = Bytes.create n in
  let block = ref 0L and avail = ref 0 in
  for i = 0 to n - 1 do
    if !avail = 0 then begin
      block := Openmb_sim.Prng.bits64 g;
      avail := 8
    end;
    let k = Int64.to_int (Int64.logand !block 0xFFL) in
    block := Int64.shift_right_logical !block 8;
    decr avail;
    Bytes.set out i (Char.chr (Char.code s.[i] lxor k))
  done;
  Bytes.to_string out

let compression_enabled = ref false

let seal ~mb_kind ~role ~partition ~key ~plain =
  (* Compress-then-encrypt: the XOR keystream destroys redundancy, so
     any compression must happen on the plaintext.  A flag byte after
     the magic records whether the body is compressed. *)
  let body =
    if !compression_enabled then
      let c = Openmb_wire.Compress.compress plain in
      if String.length c < String.length plain then "C" ^ c else "R" ^ plain
    else "R" ^ plain
  in
  { mb_kind; role; partition; key; cipher = xor_keystream ~mb_kind (magic ^ body) }

let unseal ~mb_kind t =
  let plain = xor_keystream ~mb_kind t.cipher in
  let ml = String.length magic in
  if String.length plain >= ml + 1 && String.sub plain 0 ml = magic then begin
    let body = String.sub plain (ml + 1) (String.length plain - ml - 1) in
    match plain.[ml] with
    | 'R' -> Ok body
    | 'C' -> (
      match Openmb_wire.Compress.decompress body with
      | s -> Ok s
      | exception Invalid_argument _ ->
        Error (Errors.Bad_chunk "corrupt compressed chunk body"))
    | _ -> Error (Errors.Bad_chunk "corrupt chunk framing")
  end
  else
    Error
      (Errors.Bad_chunk
         (Printf.sprintf "cannot unseal %s chunk with kind %s key" t.mb_kind mb_kind))

let size_bytes t = String.length t.cipher

let describe t =
  Printf.sprintf "%s/%s %s (%dB)"
    (Taxonomy.role_to_string t.role)
    (Taxonomy.partition_to_string t.partition)
    (match t.key with [] -> "<shared>" | key -> Openmb_net.Hfl.to_string key)
    (size_bytes t)
