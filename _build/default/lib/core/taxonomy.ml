type role = Configuring | Supporting | Reporting

type partition = Per_flow | Shared

type access = Read_only | Write_only | Read_write

let mb_access = function
  | Configuring -> Read_only
  | Supporting -> Read_write
  | Reporting -> Write_only

let controller_may_write = function
  | Configuring -> true
  | Supporting | Reporting -> false

let partitions_of = function
  | Configuring -> [ Shared ]
  | Supporting | Reporting -> [ Per_flow; Shared ]

let may_move role partition =
  match (role, partition) with
  | (Supporting | Reporting), Per_flow -> true
  | (Supporting | Reporting), Shared -> false
  | Configuring, (Per_flow | Shared) -> false

let may_clone role partition =
  match (role, partition) with
  | Configuring, (Per_flow | Shared) -> true
  | Supporting, (Per_flow | Shared) -> true
  | Reporting, (Per_flow | Shared) -> false

let may_merge role partition =
  match (role, partition) with
  | (Supporting | Reporting), Shared -> true
  | (Supporting | Reporting), Per_flow -> false
  | Configuring, (Per_flow | Shared) -> false

let role_to_string = function
  | Configuring -> "configuring"
  | Supporting -> "supporting"
  | Reporting -> "reporting"

let role_of_string = function
  | "configuring" -> Configuring
  | "supporting" -> Supporting
  | "reporting" -> Reporting
  | s -> invalid_arg (Printf.sprintf "Taxonomy.role_of_string: %S" s)

let partition_to_string = function Per_flow -> "per-flow" | Shared -> "shared"

let partition_of_string = function
  | "per-flow" -> Per_flow
  | "shared" -> Shared
  | s -> invalid_arg (Printf.sprintf "Taxonomy.partition_of_string: %S" s)

let pp_role fmt r = Format.pp_print_string fmt (role_to_string r)
let pp_partition fmt p = Format.pp_print_string fmt (partition_to_string p)
