(** Hierarchical configuration state (§4.1.1).

    OpenMB organizes MB configuration as a hierarchy of keys and
    values: each key is associated with either an unordered set of
    sub-keys or an ordered list of values (a parameter, a firewall
    rule, an IPS rule, ...).  Middleboxes instantiate one tree each;
    the controller reads and writes it through the
    [getConfig]/[setConfig]/[delConfig] southbound calls. *)

type path = string list
(** Hierarchical key, root-first, e.g. [["rules"; "http"]].  The empty
    path denotes the root. *)

type t
(** A mutable configuration tree. *)

type entry = { path : path; values : Openmb_wire.Json.t list }
(** One leaf: a key holding an ordered list of configuration values. *)

val create : unit -> t
(** Empty tree. *)

val set : t -> path -> Openmb_wire.Json.t list -> unit
(** [set t p vs] binds the ordered value list [vs] at [p], creating
    intermediate keys.  Raises [Invalid_argument] if [p] is empty or if
    an existing ancestor of [p] already holds values (a key holds
    either sub-keys or values, never both). *)

val get : t -> path -> entry list
(** [get t p] is the leaf at [p] (singleton list) if [p] holds values,
    or all leaves beneath [p] in lexicographic path order if [p] is an
    interior key.  The wildcard path [["*"]] (or the empty path) is the
    whole tree — this serves the paper's [readConfig(MB, "*")].
    Returns [[]] for an unknown key. *)

val mem : t -> path -> bool
(** Whether [p] names a leaf or interior key. *)

val del : t -> path -> bool
(** Remove the leaf or subtree at [p]; [false] if absent. *)

val entries : t -> entry list
(** All leaves in lexicographic path order. *)

val replace_all : t -> entry list -> unit
(** Clear the tree and install the given leaves — used to duplicate a
    configuration onto a new MB instance. *)

val path_to_string : path -> string
(** Dot-joined rendering, e.g. ["rules.http"]; ["*"] for the root. *)

val path_of_string : string -> path
(** Inverse of {!path_to_string}. *)

val size : t -> int
(** Number of leaves. *)
