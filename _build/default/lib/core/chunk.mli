(** Opaque state chunks.

    Per-flow state is exported as [⟨HeaderFieldList⟩ : ⟨EncryptedChunk⟩]
    pairs and shared state as a single encrypted chunk (§4.1.2).
    Encryption lets MBs conceal the syntax and semantics of their
    internal structures from the controller and control applications
    while still allowing a same-kind MB to import the state.

    The sealing here is a real (if deliberately lightweight) XOR
    keystream derived from the MB kind's vendor secret: the controller
    cannot read chunk contents, and unsealing with the wrong kind is
    detected by a magic prefix check rather than silently yielding
    garbage. *)

type t = {
  mb_kind : string;  (** MB type able to unseal this chunk. *)
  role : Taxonomy.role;
  partition : Taxonomy.partition;
  key : Openmb_net.Hfl.t;
      (** State key for per-flow chunks; [Hfl.any] for shared chunks. *)
  cipher : string;  (** Sealed serialized state. *)
}

val compression_enabled : bool ref
(** When set, {!seal} compresses the plaintext (compress-then-encrypt)
    before sealing, shrinking transfer sizes — the §8.3 optimization.
    Off by default.  Unsealing handles both forms transparently. *)

val seal :
  mb_kind:string ->
  role:Taxonomy.role ->
  partition:Taxonomy.partition ->
  key:Openmb_net.Hfl.t ->
  plain:string ->
  t
(** Encrypt [plain] under [mb_kind]'s keystream, compressing first when
    {!compression_enabled} is set. *)

val unseal : mb_kind:string -> t -> (string, Errors.t) result
(** Recover the plaintext.  Returns [Error (Bad_chunk _)] when
    [mb_kind] differs from the sealing kind or the ciphertext is
    corrupt. *)

val size_bytes : t -> int
(** Wire size of the chunk body (ciphertext length). *)

val describe : t -> string
(** One-line ["supporting/per-flow nw_src=... (1234B)"] summary — all
    the controller is allowed to know. *)
