lib/core/config_tree.mli: Openmb_wire
