lib/core/southbound.ml: Chunk Config_tree Errors Event Openmb_net Openmb_sim Openmb_wire Time
