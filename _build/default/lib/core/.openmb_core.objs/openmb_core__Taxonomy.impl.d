lib/core/taxonomy.ml: Format Printf
