lib/core/config_tree.ml: Hashtbl List Openmb_wire Printf Stdlib String
