lib/core/taxonomy.mli: Format
