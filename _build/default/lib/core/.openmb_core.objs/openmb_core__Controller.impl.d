lib/core/controller.ml: Channel Chunk Config_tree Engine Errors Event Hashtbl Hfl List Mb_agent Message Openmb_net Openmb_sim Printf Queue Recorder Southbound String Taxonomy Time
