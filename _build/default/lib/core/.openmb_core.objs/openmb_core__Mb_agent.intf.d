lib/core/mb_agent.mli: Message Openmb_sim Southbound
