lib/core/controller.mli: Config_tree Errors Event Mb_agent Openmb_net Openmb_sim Openmb_wire Southbound
