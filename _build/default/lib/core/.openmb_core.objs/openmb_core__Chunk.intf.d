lib/core/chunk.mli: Errors Openmb_net Taxonomy
