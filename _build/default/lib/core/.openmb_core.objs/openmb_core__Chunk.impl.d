lib/core/chunk.ml: Bytes Char Errors Hashtbl Int64 Openmb_net Openmb_sim Openmb_wire Printf String Taxonomy
