lib/core/message.ml: Addr Array Chunk Config_tree Errors Event Hfl Json List Openmb_net Openmb_sim Openmb_wire Packet Payload Printf Southbound String Taxonomy
