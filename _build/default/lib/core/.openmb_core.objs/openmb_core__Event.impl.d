lib/core/event.ml: Hfl List Openmb_net Openmb_wire Packet Printf String
