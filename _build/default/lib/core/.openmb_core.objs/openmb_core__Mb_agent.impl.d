lib/core/mb_agent.ml: Chunk Engine Errors Event List Message Openmb_net Openmb_sim Printf Recorder Southbound Time
