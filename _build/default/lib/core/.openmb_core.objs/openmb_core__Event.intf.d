lib/core/event.mli: Openmb_net Openmb_wire
