lib/core/message.mli: Chunk Config_tree Errors Event Openmb_net Openmb_wire Southbound
