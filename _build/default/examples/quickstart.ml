(* Quickstart: the smallest complete OpenMB deployment.

   One firewall sits between a traffic source and a sink.  We connect
   it to the MB controller, read and update its configuration through
   the northbound API, let some traffic flow, query its state with
   [stats], and finally move its per-flow state to a second instance —
   the core OpenMB loop in ~100 lines.

   Run with:  dune exec examples/quickstart.exe *)

open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core
open Openmb_mbox

let () =
  (* 1. A simulation engine drives everything. *)
  let engine = Engine.create () in

  (* 2. The MB controller (northbound API lives here). *)
  let ctrl = Controller.create engine () in

  (* 3. Two firewall instances, both attached to the controller. *)
  let fw1 =
    Firewall.create engine
      ~rules:[ { Firewall.rl_match = Hfl.of_string "tp_dst=22"; rl_action = Firewall.Deny } ]
      ~name:"fw1" ()
  in
  let fw2 = Firewall.create engine ~name:"fw2" () in
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Firewall.impl fw1) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Firewall.impl fw2) ());
  Mb_base.set_egress (Firewall.base fw1) (fun _ -> ());
  Mb_base.set_egress (Firewall.base fw2) (fun _ -> ());

  (* 4. Read fw1's configuration through the controller. *)
  Controller.read_config ctrl ~src:"fw1" ~key:[ "rules" ] ~on_done:(fun res ->
      match res with
      | Ok [ { Config_tree.values; _ } ] ->
        Printf.printf "fw1 has %d configured rule(s)\n" (List.length values)
      | Ok _ -> print_endline "fw1 rules: unexpected shape"
      | Error e -> Printf.printf "readConfig failed: %s\n" (Errors.to_string e));

  (* 5. Push a policy update (requirement R3: dynamic configuration). *)
  Controller.write_config ctrl ~dst:"fw1" ~key:[ "default" ]
    ~values:[ Json.String "allow" ] ~on_done:(fun res ->
      match res with
      | Ok () -> print_endline "fw1 default action set to allow"
      | Error e -> Printf.printf "writeConfig failed: %s\n" (Errors.to_string e));

  (* 6. Some traffic: ten flows through fw1. *)
  for i = 0 to 9 do
    let p =
      Packet.make ~id:i
        ~ts:(Time.ms (10.0 +. float_of_int i))
        ~src_ip:(Addr.of_string (Printf.sprintf "10.0.0.%d" (i + 1)))
        ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(1000 + i) ~dst_port:80
        ~proto:Packet.Tcp ()
    in
    ignore (Engine.schedule_at engine p.Packet.ts (fun () -> Firewall.receive fw1 p))
  done;

  (* 7. After the traffic: how much per-flow state does fw1 hold? *)
  ignore
    (Engine.schedule_at engine (Time.ms 100.0) (fun () ->
         Controller.stats ctrl ~src:"fw1" ~key:Hfl.any ~on_done:(fun res ->
             match res with
             | Ok s ->
               Printf.printf "fw1 holds %d per-flow chunks (%d bytes serialized)\n"
                 s.Southbound.perflow_support_chunks s.Southbound.perflow_support_bytes
             | Error e -> Printf.printf "stats failed: %s\n" (Errors.to_string e))));

  (* 8. Move the 10.0.0.0/28 flows' state to fw2 (requirement R1). *)
  ignore
    (Engine.schedule_at engine (Time.ms 200.0) (fun () ->
         Controller.move_internal ctrl ~src:"fw1" ~dst:"fw2"
           ~key:(Hfl.of_string "nw_src=10.0.0.0/28")
           ~on_done:(fun res ->
             match res with
             | Ok mr ->
               Printf.printf "moved %d chunks (%d bytes) in %.1f ms\n"
                 mr.Controller.chunks_moved mr.Controller.bytes_moved
                 (Time.to_ms mr.Controller.duration)
             | Error e -> Printf.printf "move failed: %s\n" (Errors.to_string e))));

  (* 9. Run the simulation to completion and inspect the outcome. *)
  Engine.run engine;
  Printf.printf "fw1 verdict cache: %d entries; fw2 verdict cache: %d entries\n"
    (Firewall.cached_verdicts fw1) (Firewall.cached_verdicts fw2);
  print_endline "quickstart done."
