(* A service chain under live migration.

   Enterprise traffic traverses a chain of three middleboxes —
   firewall → load balancer → NAT (the SNAT-last pattern) — and half
   the client subnet migrates to a second chain instance (the Figure-2
   scenario generalized to a chain).  Every middlebox's state for the
   moving subnet must travel: the firewall's verdict cache (or flows
   get re-evaluated against a possibly-changed policy), the balancer's
   assignments (or transactions switch servers mid-stream), and the
   NAT's address mappings (or in-progress connections break).  One
   moveInternal per hop, then a single routing flip.

   The NAT sits last deliberately: it rewrites sources, so a hop behind
   it could not have its state addressed by client subnet — state keys
   live in whatever namespace the middlebox actually sees, and a
   control application must plan chains accordingly.

   Run with:  dune exec examples/service_chain.exe *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_apps

let backends = [ Addr.of_string "10.9.0.1"; Addr.of_string "10.9.0.2" ]
let move_subnet = Addr.prefix_of_string "10.0.0.0/17"

let () =
  let scenario =
    Scenario.create
      ~ctrl_config:{ Controller.default_config with quiescence = Time.ms 500.0 }
      ()
  in
  let engine = Scenario.engine scenario in
  (* Chain A (original) and chain B (migration target). *)
  let build tag =
    let fw =
      Firewall.create engine
        ~rules:[ { Firewall.rl_match = Hfl.of_string "tp_dst=22"; rl_action = Firewall.Deny } ]
        ~name:("fw-" ^ tag) ()
    in
    let nat =
      Nat.create engine ~name:("nat-" ^ tag) ~external_ip:(Addr.of_string "5.5.5.5")
        ~internal_prefix:(Addr.prefix_of_string "10.0.0.0/8") ()
    in
    let lb = Load_balancer.create engine ~backends ~name:("lb-" ^ tag) () in
    (* Chain the stages: firewall feeds the balancer feeds the NAT. *)
    Scenario.chain ~receive:(Load_balancer.receive lb) (Firewall.base fw);
    Scenario.chain ~receive:(Nat.receive nat) (Load_balancer.base lb);
    (fw, nat, lb)
  in
  let fw_a, nat_a, lb_a = build "a" in
  let fw_b, nat_b, lb_b = build "b" in
  (* The switch feeds each chain's head; each chain's tail drains to the
     sink.  Only the heads and the controller attachments differ from a
     single-MB deployment. *)
  Scenario.attach_mb scenario ~port:"chainA" ~receive:(Firewall.receive fw_a)
    ~base:(Nat.base nat_a) ~impl:(Firewall.impl fw_a);
  Scenario.attach_mb scenario ~port:"chainB" ~receive:(Firewall.receive fw_b)
    ~base:(Nat.base nat_b) ~impl:(Firewall.impl fw_b);
  let connect impl =
    Controller.connect (Scenario.controller scenario) (Mb_agent.create engine ~impl ())
  in
  connect (Nat.impl nat_a);
  connect (Load_balancer.impl lb_a);
  connect (Nat.impl nat_b);
  connect (Load_balancer.impl lb_b);
  Scenario.install_default_route scenario ~port:"chainA";

  (* Traffic: 60 client connections, half in the migrating subnet. *)
  for i = 0 to 59 do
    let subnet = if i mod 2 = 0 then "10.0.1" else "10.0.200" in
    for k = 0 to 9 do
      let ts = 0.5 +. (0.2 *. float_of_int i) +. (0.9 *. float_of_int k) in
      let p =
        Packet.make
          ~flags:(if k = 0 then Packet.syn_flags else Packet.no_flags)
          ~id:((i * 100) + k)
          ~ts:(Time.seconds ts)
          ~src_ip:(Addr.of_string (Printf.sprintf "%s.%d" subnet (1 + i)))
          ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(4000 + i) ~dst_port:443
          ~proto:Packet.Tcp ()
      in
      Scenario.at scenario (Time.seconds ts) (fun () ->
          Switch.receive (Scenario.switch scenario) p)
    done
  done;

  (* At t=6s: move every hop's state for the subnet, then flip routing
     once.  The moves run concurrently; the flip waits for all three. *)
  Scenario.at scenario (Time.seconds 6.0) (fun () ->
      print_endline "t=6s   migrating the 10.0.0.0/17 subnet across the chain ...";
      let ctrl = Scenario.controller scenario in
      let key = [ Hfl.Src_ip move_subnet ] in
      let pending = ref 3 in
      let moved_chunks = ref 0 in
      let finish () =
        decr pending;
        if !pending = 0 then begin
          Printf.printf "t=%.2fs all hops moved (%d chunks total); flipping routing\n"
            (Time.to_seconds (Engine.now engine))
            !moved_chunks;
          Scenario.route scenario ~match_:key ~port:"chainB"
            ~on_done:(fun () ->
              Printf.printf "t=%.2fs routing active\n"
                (Time.to_seconds (Engine.now engine)))
            ()
        end
      in
      List.iter
        (fun (src, dst) ->
          Controller.move_internal ctrl ~src ~dst ~key ~on_done:(fun res ->
              (match res with
              | Ok mr -> moved_chunks := !moved_chunks + mr.Controller.chunks_moved
              | Error e -> Printf.printf "move %s failed: %s\n" src (Errors.to_string e));
              finish ()))
        [ ("fw-a", "fw-b"); ("nat-a", "nat-b"); ("lb-a", "lb-b") ]);
  Scenario.run scenario;

  Printf.printf "\nchain A: %d verdicts, %d mappings, %d assignments\n"
    (Firewall.cached_verdicts fw_a) (Nat.mapping_count nat_a)
    (Load_balancer.assignment_count lb_a);
  Printf.printf "chain B: %d verdicts, %d mappings, %d assignments\n"
    (Firewall.cached_verdicts fw_b) (Nat.mapping_count nat_b)
    (Load_balancer.assignment_count lb_b);
  Printf.printf "denied at A+B: %d (ssh probes only)\n"
    (Firewall.denied fw_a + Firewall.denied fw_b)
