examples/quickstart.mli:
