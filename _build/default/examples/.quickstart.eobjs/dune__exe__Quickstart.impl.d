examples/quickstart.ml: Addr Config_tree Controller Engine Errors Firewall Hfl Json List Mb_agent Mb_base Openmb_core Openmb_mbox Openmb_net Openmb_sim Openmb_wire Packet Printf Southbound Time
