examples/failure_recovery.ml: Addr Engine Failover Nat Openmb_apps Openmb_core Openmb_mbox Openmb_net Openmb_sim Packet Printf Scenario Switch Time
