examples/elastic_scaling.ml: Addr Engine Hfl Monitor Openmb_apps Openmb_core Openmb_mbox Openmb_net Openmb_sim Openmb_traffic Printf Scale Scenario Switch Time
