examples/live_migration.ml: Engine Five_tuple Hfl Ids List Migrate Openmb_apps Openmb_core Openmb_mbox Openmb_net Openmb_sim Openmb_traffic Printf Scenario String Switch Time
