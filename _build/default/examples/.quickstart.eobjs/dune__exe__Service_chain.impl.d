examples/service_chain.ml: Addr Controller Engine Errors Firewall Hfl List Load_balancer Mb_agent Nat Openmb_apps Openmb_core Openmb_mbox Openmb_net Openmb_sim Packet Printf Scenario Switch Time
