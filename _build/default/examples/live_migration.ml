(* Live migration between data centers (§6.1 / Figure 2).

   An IDS inspects all traffic between a campus and two cloud prefixes.
   Mid-run, the application VMs behind the HTTP prefix migrate to a new
   data center: the control application clones the IDS configuration to
   a new instance there, moves the HTTP flows' connection state, and
   flips routing — all without the IDS missing or double-reporting
   anything.  The example prints the per-step timeline and verifies the
   combined logs against an unmigrated reference run.

   Run with:  dune exec examples/live_migration.exe *)

open Openmb_sim
open Openmb_net
open Openmb_mbox
open Openmb_apps

let trace_params =
  {
    Openmb_traffic.Cloud_trace.default_params with
    n_http_flows = 80;
    n_other_flows = 40;
    n_scanners = 1;
    duration = 30.0;
  }

let http_prefix = trace_params.Openmb_traffic.Cloud_trace.cloud_http

let () =
  let trace = Openmb_traffic.Cloud_trace.generate trace_params in
  Printf.printf "trace: %d packets over %.0f s\n"
    (Openmb_traffic.Trace.packet_count trace)
    (Time.to_seconds (Openmb_traffic.Trace.duration trace));

  (* Reference: one unmodified IDS sees everything. *)
  let reference =
    let engine = Engine.create () in
    let ids = Ids.create engine ~name:"reference" () in
    Openmb_traffic.Trace.replay engine trace ~into:(Ids.receive ids);
    Engine.run engine;
    Ids.finalize ids;
    ids
  in

  (* The migration deployment: two IDS instances behind one switch. *)
  let scenario =
    Scenario.create
      ~ctrl_config:
        { Openmb_core.Controller.default_config with quiescence = Time.ms 500.0 }
      ()
  in
  let engine = Scenario.engine scenario in
  let dc_a = Ids.create engine ?recorder:(Scenario.recorder scenario) ~name:"ids-dcA" () in
  let dc_b = Ids.create engine ?recorder:(Scenario.recorder scenario) ~name:"ids-dcB" () in
  Scenario.attach_mb scenario ~port:"dcA" ~receive:(Ids.receive dc_a) ~base:(Ids.base dc_a)
    ~impl:(Ids.impl dc_a);
  Scenario.attach_mb scenario ~port:"dcB" ~receive:(Ids.receive dc_b) ~base:(Ids.base dc_b)
    ~impl:(Ids.impl dc_b);
  Scenario.install_default_route scenario ~port:"dcA";
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));

  (* At t=12s: migrate the HTTP application's flows to DC B. *)
  Scenario.at scenario (Time.seconds 12.0) (fun () ->
      print_endline "t=12s  migrating HTTP flows to DC B ...";
      Migrate.migrate_perflow scenario ~src:"ids-dcA" ~dst:"ids-dcB"
        ~key:[ Hfl.Dst_ip http_prefix ]
        ~also_route:[ [ Hfl.Src_ip http_prefix ] ]
        ~dst_port:"dcB"
        ~on_done:(fun r ->
          (match r.Migrate.move with
          | Some mr ->
            Printf.printf "t=%.2fs migration done: %d chunks, %d bytes, %d events replayed\n"
              (Time.to_seconds (Engine.now engine))
              mr.Openmb_core.Controller.chunks_moved mr.Openmb_core.Controller.bytes_moved
              mr.Openmb_core.Controller.events_forwarded
          | None -> print_endline "migration returned without a move result"))
        ());
  Scenario.run scenario;
  Ids.finalize dc_a;
  Ids.finalize dc_b;

  (* Compare outputs with the reference. *)
  let signature (e : Ids.conn_entry) =
    Printf.sprintf "%s %.3f %d %d %s"
      (Five_tuple.to_string e.Ids.ce_tuple)
      e.Ids.ce_start e.Ids.ce_orig_bytes e.Ids.ce_resp_bytes e.Ids.ce_state
  in
  let sorted ids_list =
    List.sort String.compare (List.concat_map (fun i -> List.map signature (Ids.conn_log i)) ids_list)
  in
  let ref_log = sorted [ reference ] and got_log = sorted [ dc_a; dc_b ] in
  Printf.printf "reference conn.log entries : %d\n" (List.length ref_log);
  Printf.printf "migrated  conn.log entries : %d (DC A %d + DC B %d)\n"
    (List.length got_log)
    (List.length (Ids.conn_log dc_a))
    (List.length (Ids.conn_log dc_b));
  Printf.printf "logs identical             : %b\n" (ref_log = got_log);
  Printf.printf "anomalous entries          : %d\n"
    (Ids.anomalous_entries dc_a + Ids.anomalous_entries dc_b);
  Printf.printf "alerts (ref vs. migrated)  : %d vs. %d\n"
    (List.length (Ids.alerts reference))
    (List.length (Ids.alerts dc_a) + List.length (Ids.alerts dc_b))
