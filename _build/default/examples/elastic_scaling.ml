(* Elastic scaling of a monitoring middlebox (§6.2 / Figure 3).

   A PRADS-like monitor watches all traffic.  When load rises, the
   control application brings up a second instance, asks [stats] how
   much per-flow state the rebalanced subnet holds, moves that state
   and reroutes — then scales back down later, merging the shared
   counters so nothing is over- or under-reported.

   Run with:  dune exec examples/elastic_scaling.exe *)

open Openmb_sim
open Openmb_net
open Openmb_mbox
open Openmb_apps

let () =
  let trace =
    Openmb_traffic.Cloud_trace.generate
      {
        Openmb_traffic.Cloud_trace.default_params with
        n_http_flows = 100;
        n_other_flows = 50;
        n_scanners = 0;
        duration = 40.0;
      }
  in
  (* Reference totals from a single unscaled instance. *)
  let reference =
    let engine = Engine.create () in
    let m = Monitor.create engine ~name:"reference" () in
    Openmb_traffic.Trace.replay engine trace ~into:(Monitor.receive m);
    Engine.run engine;
    Monitor.totals m
  in

  let scenario =
    Scenario.create
      ~ctrl_config:
        { Openmb_core.Controller.default_config with quiescence = Time.ms 500.0 }
      ()
  in
  let engine = Scenario.engine scenario in
  let m1 = Monitor.create engine ~name:"prads1" () in
  let m2 = Monitor.create engine ~name:"prads2" () in
  Scenario.attach_mb scenario ~port:"mb1" ~receive:(Monitor.receive m1)
    ~base:(Monitor.base m1) ~impl:(Monitor.impl m1);
  Scenario.attach_mb scenario ~port:"mb2" ~receive:(Monitor.receive m2)
    ~base:(Monitor.base m2) ~impl:(Monitor.impl m2);
  Scenario.install_default_route scenario ~port:"mb1";
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));

  let rebalance = [ Hfl.Src_ip (Addr.prefix_of_string "10.0.0.0/17") ] in
  Scenario.at scenario (Time.seconds 10.0) (fun () ->
      print_endline "t=10s  load is up: scaling out ...";
      Scale.scale_up scenario ~existing:"prads1" ~fresh:"prads2" ~rebalance
        ~also_route:[ [ Hfl.Dst_ip (Addr.prefix_of_string "10.0.0.0/17") ] ]
        ~dst_port:"mb2"
        ~on_done:(fun r ->
          Printf.printf
            "t=%.2fs scale-up done: stats said %d chunks for the subnet; moved %d\n"
            (Time.to_seconds (Engine.now engine))
            r.Scale.queried.Openmb_core.Southbound.perflow_report_chunks
            r.Scale.move.Openmb_core.Controller.chunks_moved)
        ());
  Scenario.at scenario (Time.seconds 28.0) (fun () ->
      print_endline "t=28s  load is down: scaling in ...";
      Scale.scale_down scenario ~deprecated:"prads2" ~survivor:"prads1" ~dst_port:"mb1"
        ~on_done:(fun r ->
          Printf.printf "t=%.2fs scale-down done: merged %d shared chunk(s)\n"
            (Time.to_seconds (Engine.now engine))
            r.Scale.merged.Openmb_core.Controller.chunks_moved)
        ());
  Scenario.run scenario;

  (* After scale-down the deprecated instance's counters were merged
     into the survivor and the instance terminated, so the survivor
     alone must match the reference — no over- or under-reporting. *)
  let t1 = Monitor.totals m1 in
  Printf.printf "\nreference totals : %d pkts, %d bytes, %d flows\n"
    reference.Monitor.tot_pkts reference.Monitor.tot_bytes reference.Monitor.tot_new_flows;
  Printf.printf "survivor totals  : %d pkts, %d bytes, %d flows\n" t1.Monitor.tot_pkts
    t1.Monitor.tot_bytes t1.Monitor.tot_new_flows;
  Printf.printf "counters conserved: %b\n"
    (reference.Monitor.tot_pkts = t1.Monitor.tot_pkts
    && reference.Monitor.tot_bytes = t1.Monitor.tot_bytes
    && reference.Monitor.tot_new_flows = t1.Monitor.tot_new_flows)
