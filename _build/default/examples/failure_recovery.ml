(* Middlebox failure recovery via introspection (§2, requirement R6).

   A NAT translates outbound campus traffic.  The failure-recovery
   application subscribes to its ["nat.new_mapping"] introspection
   events, mirroring only the critical state (address/port mappings) —
   no hot standby, no full snapshots.  When the NAT dies, a replacement
   is loaded with the mirrored mappings (idle timers reset to defaults)
   and traffic is rerouted; in-progress connections keep their public
   ports.

   Run with:  dune exec examples/failure_recovery.exe *)

open Openmb_sim
open Openmb_net
open Openmb_mbox
open Openmb_apps

let () =
  let scenario =
    Scenario.create
      ~ctrl_config:
        { Openmb_core.Controller.default_config with quiescence = Time.ms 500.0 }
      ()
  in
  let engine = Scenario.engine scenario in
  let internal = Addr.prefix_of_string "10.0.0.0/8" in
  let public = Addr.of_string "5.5.5.5" in
  let nat1 = Nat.create engine ~name:"nat-primary" ~external_ip:public ~internal_prefix:internal () in
  let nat2 = Nat.create engine ~name:"nat-standby" ~external_ip:public ~internal_prefix:internal () in
  Scenario.attach_mb scenario ~port:"primary" ~receive:(Nat.receive nat1)
    ~base:(Nat.base nat1) ~impl:(Nat.impl nat1);
  Scenario.attach_mb scenario ~port:"standby" ~receive:(Nat.receive nat2)
    ~base:(Nat.base nat2) ~impl:(Nat.impl nat2);
  Scenario.install_default_route scenario ~port:"primary";

  (* The recovery application mirrors critical state as it is created. *)
  let watcher = Failover.watch scenario ~mb:"nat-primary" ~codes:[ "nat.new_mapping" ] () in

  (* 25 outbound connections establish mappings. *)
  for i = 0 to 24 do
    let ts = 0.2 +. (0.1 *. float_of_int i) in
    let p =
      Packet.make ~id:i ~ts:(Time.seconds ts)
        ~src_ip:(Addr.of_string (Printf.sprintf "10.0.1.%d" (1 + i)))
        ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(5000 + i) ~dst_port:443
        ~proto:Packet.Tcp ()
    in
    Scenario.at scenario (Time.seconds ts) (fun () ->
        Switch.receive (Scenario.switch scenario) p)
  done;

  Scenario.at scenario (Time.seconds 4.0) (fun () ->
      Printf.printf "t=4s   mirroring %d critical mappings (primary holds %d)\n"
        (Failover.tracked watcher) (Nat.mapping_count nat1);
      print_endline "t=4s   PRIMARY NAT FAILS — recovering ...";
      Failover.fail_over watcher ~replacement:"nat-standby" ~dst_port:"standby"
        ~on_done:(fun r ->
          Printf.printf "t=%.2fs recovery complete: %d mappings restored, traffic rerouted\n"
            (Time.to_seconds (Engine.now engine))
            r.Failover.restored)
        ());

  (* After recovery, a server reply for an old connection must still
     translate correctly at the replacement. *)
  Scenario.at scenario (Time.seconds 5.0) (fun () ->
      match Nat.lookup_external nat2 ~ext_port:20000 with
      | Some m ->
        Printf.printf "t=5s   replacement translates ext port 20000 -> %s:%d\n"
          (Addr.to_string m.Nat.m_int_ip) m.Nat.m_int_port
      | None -> print_endline "t=5s   ERROR: mapping missing at replacement");
  Scenario.run scenario;
  Printf.printf "standby now holds %d mappings (timers reset to defaults)\n"
    (Nat.mapping_count nat2)
