bench/util.ml: Openmb_sim Printf String
