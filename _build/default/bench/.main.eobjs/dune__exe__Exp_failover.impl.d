bench/exp_failover.ml: Addr Array Controller Engine Failover List Mb_base Nat Openmb_apps Openmb_core Openmb_mbox Openmb_net Openmb_sim Packet Payload Printf Scenario Switch Time Util
