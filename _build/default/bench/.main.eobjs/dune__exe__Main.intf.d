bench/main.mli:
