bench/main.ml: Array Exp_controller Exp_failover Exp_mb Exp_micro Exp_scenarios List Printf String Sys
