bench/exp_controller.ml: Buffer Chunk Controller Dummy_mb Engine Errors List Mb_agent Openmb_apps Openmb_core Openmb_net Openmb_sim Openmb_wire Printf Stats Time Util
