(* Scenario-level experiments: Figure 7 (scale-up timeline), Figure 8
   (flow-duration CDF and deprecated-MB hold-up), Table 2
   (applicability matrix), Table 3 (RE migration), the §8.1.2 snapshot
   and Split/Merge studies, the §8.2 correctness checks, and the
   design-choice ablations. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_apps

let bench_ctrl = { Controller.default_config with quiescence = Time.ms 250.0 }

(* ------------------------------------------------------------------ *)
(* Figure 7: MB actions during scale-up                                *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  Util.banner "Figure 7: MB actions during the scale-up scenario";
  let scenario = Scenario.create ~ctrl_config:bench_ctrl () in
  let engine = Scenario.engine scenario in
  let recorder = Option.get (Scenario.recorder scenario) in
  let m1 = Monitor.create engine ~recorder ~name:"prads1" () in
  let m2 = Monitor.create engine ~recorder ~name:"prads2" () in
  Scenario.attach_mb scenario ~port:"mb1" ~receive:(Monitor.receive m1)
    ~base:(Monitor.base m1) ~impl:(Monitor.impl m1);
  Scenario.attach_mb scenario ~port:"mb2" ~receive:(Monitor.receive m2)
    ~base:(Monitor.base m2) ~impl:(Monitor.impl m2);
  Scenario.install_default_route scenario ~port:"mb1";
  let trace =
    Openmb_traffic.Cloud_trace.generate
      {
        Openmb_traffic.Cloud_trace.default_params with
        n_http_flows = 200;
        n_other_flows = 40;
        n_scanners = 0;
        duration = 12.0;
      }
  in
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));
  let move_at = 5.0 in
  Scenario.at scenario (Time.seconds move_at) (fun () ->
      Scale.scale_up scenario ~existing:"prads1" ~fresh:"prads2"
        ~rebalance:[ Hfl.Dst_ip (Addr.prefix_of_string "1.1.1.0/24") ]
        ~also_route:[ [ Hfl.Src_ip (Addr.prefix_of_string "1.1.1.0/24") ] ]
        ~dst_port:"mb2" ());
  Scenario.run scenario;
  (* Print a 3-second window around the operation as 100 ms buckets. *)
  let w0 = move_at -. 0.2 and w1 = move_at +. 2.8 in
  let bucket time = int_of_float ((time -. w0) /. 0.1) in
  let nbuckets = bucket w1 in
  let count actor kind =
    let a = Array.make (nbuckets + 1) 0 in
    List.iter
      (fun (e : Recorder.entry) ->
        let t = Time.to_seconds e.Recorder.time in
        if t >= w0 && t < w1 then a.(bucket t) <- a.(bucket t) + 1)
      (Recorder.filter ~actor ~kind recorder);
    a
  in
  let p1 = count "prads1" "pkt" and p2 = count "prads2" "pkt" in
  let ev_raise = count "prads1" "event-raise" and ev_proc = count "prads2" "event-proc" in
  Util.row "  %-9s %12s %12s %12s %12s\n" "t(s)" "prads1 pkts" "prads2 pkts" "ev raised"
    "ev replayed";
  for b = 0 to nbuckets - 1 do
    Util.row "  %-9.1f %12d %12d %12d %12d\n"
      (w0 +. (0.1 *. float_of_int b))
      p1.(b) p2.(b) ev_raise.(b) ev_proc.(b)
  done;
  let marks kind actor =
    List.iter
      (fun (e : Recorder.entry) ->
        let t = Time.to_seconds e.Recorder.time in
        if t >= w0 && t < w1 then
          Util.row "  marker: %-10s at %.3fs (%s)\n" kind t e.Recorder.detail)
      (Recorder.filter ~actor ~kind recorder)
  in
  marks "get-start" "prads1";
  marks "get-end" "prads1";
  Util.paper_note
    "packets shift from the original to the new instance just after the\n";
  Printf.printf
    "          final put; events are raised from get-start until shortly after\n";
  Printf.printf "          the routing update takes effect.\n"

(* ------------------------------------------------------------------ *)
(* Figure 8: flow durations and deprecated-MB hold-up                  *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  Util.banner "Figure 8: university data-center flow durations (CDF)";
  let params = { Openmb_traffic.University_dc.default_params with n_flows = 3000 } in
  let prng = Prng.create ~seed:99 in
  let durations = Stats.create () in
  for _ = 1 to 20000 do
    Stats.add durations (Openmb_traffic.University_dc.sample_duration prng)
  done;
  Util.row "  %-12s %8s\n" "duration(s)" "CDF";
  List.iter
    (fun d -> Util.row "  %-12.0f %8.3f\n" d (1.0 -. Stats.fraction_above durations d))
    [ 1.0; 10.0; 60.0; 300.0; 600.0; 900.0; 1200.0; 1500.0; 3600.0; 7200.0 ];
  Util.row "  fraction of flows > 1500 s: %.1f%%\n"
    (Stats.fraction_above durations 1500.0 *. 100.0);
  let r = Baseline_config_routing.scale_down_holdup ~trace_params:params ~reroute_at:60.0 () in
  Util.section "config+routing scale-down (state never moves)";
  Util.row "  flows stranded on deprecated MB : %d\n" r.Baseline_config_routing.stranded_flows;
  Util.row "  deprecated MB held up for       : %.0f s\n"
    r.Baseline_config_routing.holdup_seconds;
  Util.row "  stranded flows alive at +1500 s : %.1f%%\n"
    (r.Baseline_config_routing.frac_over_1500 *. 100.0);
  Util.paper_note "~9%% of flows exceed 1500 s; the deprecated MB was held >1500 s.\n"

(* ------------------------------------------------------------------ *)
(* Table 3: RE in live migration                                       *)
(* ------------------------------------------------------------------ *)

let re_params =
  {
    Openmb_traffic.Redundancy_trace.default_params with
    n_flows_a = 80;
    n_flows_b = 80;
    packets_per_flow = 60;
    duration = 40.0;
  }

let sdmbn_re_migration () =
  let scenario = Scenario.create ~ctrl_config:bench_ctrl ~with_recorder:false () in
  let engine = Scenario.engine scenario in
  let enc = Re_encoder.create engine ~name:"enc" () in
  let dec_a = Re_decoder.create engine ~name:"dec-a" () in
  let dec_b = Re_decoder.create engine ~name:"dec-b" () in
  Scenario.attach_mb scenario ~port:"decA" ~receive:(Re_decoder.receive dec_a)
    ~base:(Re_decoder.base dec_a) ~impl:(Re_decoder.impl dec_a);
  Scenario.attach_mb scenario ~port:"decB" ~receive:(Re_decoder.receive dec_b)
    ~base:(Re_decoder.base dec_b) ~impl:(Re_decoder.impl dec_b);
  Scenario.install_default_route scenario ~port:"decA";
  Controller.connect (Scenario.controller scenario)
    (Mb_agent.create engine ~impl:(Re_encoder.impl enc) ());
  Mb_base.set_egress (Re_encoder.base enc) (Switch.receive (Scenario.switch scenario));
  let trace = Openmb_traffic.Redundancy_trace.generate re_params in
  Scenario.inject scenario trace ~into:(Re_encoder.receive enc);
  Scenario.at scenario (Time.seconds 15.0) (fun () ->
      Migrate.migrate_re scenario ~orig_decoder:"dec-a" ~new_decoder:"dec-b"
        ~encoder:"enc"
        ~keep_prefix:re_params.Openmb_traffic.Redundancy_trace.class_a
        ~move_prefix:re_params.Openmb_traffic.Redundancy_trace.class_b ~dst_port:"decB"
        ());
  Scenario.run scenario;
  ( Re_encoder.encoded_bytes enc,
    Re_decoder.undecodable_bytes dec_a + Re_decoder.undecodable_bytes dec_b )

let table3 () =
  Util.banner "Table 3: RE performance in live migration";
  let sdmbn_encoded, sdmbn_undec = sdmbn_re_migration () in
  let baseline =
    Baseline_config_routing.re_migration ~trace_params:re_params ~routing_lag_packets:10
      ()
  in
  Util.row "  %-18s %16s %18s\n" "" "Encoded (MB)" "Undecodable (MB)";
  Util.row "  %-18s %16.2f %18.2f\n" "SDMBN" (Util.mb sdmbn_encoded) (Util.mb sdmbn_undec);
  Util.row "  %-18s %16.2f %18.2f\n" "Config + routing"
    (Util.mb baseline.Baseline_config_routing.encoded_bytes)
    (Util.mb baseline.Baseline_config_routing.undecodable_bytes);
  Util.paper_note
    "SDMBN 148.42 MB encoded / 0 undecodable; config+routing 97.33 / 97.33.\n";
  Printf.printf
    "          (Absolute volume tracks the synthetic trace size; the shape —\n";
  Printf.printf
    "          warm caches encode more and everything decodes under SDMBN,\n";
  Printf.printf
    "          cold desynced caches lose everything they encoded — holds.)\n"

(* ------------------------------------------------------------------ *)
(* §8.1.2: VM snapshots and Split/Merge                                *)
(* ------------------------------------------------------------------ *)

let snapshot () =
  Util.banner "Section 8.1.2: whole-VM snapshots vs. OpenMB state move";
  (* Sized so the populations of flows still active at the snapshot
     instant land near the paper's 3173 HTTP / 716 other stranded
     flows. *)
  let trace_params =
    {
      Openmb_traffic.Cloud_trace.default_params with
      n_http_flows = 4250;
      n_other_flows = 2900;
      n_scanners = 0;
      duration = 120.0;
    }
  in
  let r =
    Baseline_snapshot.run ~trace_params
      ~migrate_key:[ Hfl.Dst_ip trace_params.Openmb_traffic.Cloud_trace.cloud_http ]
      ~snapshot_at:60.0 ()
  in
  Util.row "  image delta FULL-BASE            : %6.1f MB\n"
    (Util.mb r.Baseline_snapshot.full_delta_bytes);
  Util.row "  image delta HTTP substream       : %6.1f MB\n"
    (Util.mb r.Baseline_snapshot.http_delta_bytes);
  Util.row "  image delta OTHER substream      : %6.1f MB\n"
    (Util.mb r.Baseline_snapshot.other_delta_bytes);
  Util.row "  state OpenMB would move          : %6.1f MB\n"
    (Util.mb r.Baseline_snapshot.sdmbn_moved_bytes);
  Util.row "  bad conn.log entries (old MB)    : %d\n" r.Baseline_snapshot.anomalies_old;
  Util.row "  bad conn.log entries (new MB)    : %d\n" r.Baseline_snapshot.anomalies_new;
  Util.paper_note
    "22 MB / 19 MB / 4 MB image deltas vs. 8.1 MB moved; 3173 and 716 bad\n";
  Printf.printf "          conn.log entries from abruptly terminated foreign flows.\n"

let splitmerge () =
  Util.banner "Section 8.1.2: Split/Merge halt-and-buffer move";
  let r = Baseline_splitmerge.run ~n_chunks:1000 ~rate_pps:1000.0 () in
  Util.row "  halt duration          : %.0f ms\n" (r.Baseline_splitmerge.move_duration *. 1e3);
  Util.row "  packets buffered       : %d\n" r.Baseline_splitmerge.buffered_packets;
  Util.row "  avg added latency      : %.0f ms\n"
    (r.Baseline_splitmerge.avg_added_latency *. 1e3);
  Util.row "  max added latency      : %.0f ms\n"
    (r.Baseline_splitmerge.max_added_latency *. 1e3);
  Util.paper_note "244 packets buffered; +863 ms average processing latency.\n"

(* ------------------------------------------------------------------ *)
(* §8.2 correctness: outputs equal a single unmodified MB              *)
(* ------------------------------------------------------------------ *)

let cloud_params =
  {
    Openmb_traffic.Cloud_trace.default_params with
    n_http_flows = 120;
    n_other_flows = 60;
    n_scanners = 2;
    duration = 30.0;
  }

let http_prefix = cloud_params.Openmb_traffic.Cloud_trace.cloud_http

let conn_signature (e : Ids.conn_entry) =
  Printf.sprintf "%s %.3f %.3f %d %d %s"
    (Five_tuple.to_string e.Ids.ce_tuple)
    e.Ids.ce_start e.Ids.ce_duration e.Ids.ce_orig_bytes e.Ids.ce_resp_bytes
    e.Ids.ce_state

(* Run the IDS migration scenario (with or without event forwarding and
   with a configurable quiescence) and diff the merged logs against a
   single unmodified instance.  Returns (mismatched entries,
   anomalies). *)
let ids_migration_diff ?(config = bench_ctrl) ?install_delay () =
  let trace = Openmb_traffic.Cloud_trace.generate cloud_params in
  let reference =
    let engine = Engine.create () in
    let ids = Ids.create engine ~name:"ref" () in
    Openmb_traffic.Trace.replay engine trace ~into:(Ids.receive ids);
    Engine.run engine;
    Ids.finalize ids;
    ids
  in
  let scenario =
    Scenario.create ~ctrl_config:config ?install_delay ~with_recorder:false ()
  in
  let engine = Scenario.engine scenario in
  let a = Ids.create engine ~name:"bro-a" () in
  let b = Ids.create engine ~name:"bro-b" () in
  Scenario.attach_mb scenario ~port:"mbA" ~receive:(Ids.receive a) ~base:(Ids.base a)
    ~impl:(Ids.impl a);
  Scenario.attach_mb scenario ~port:"mbB" ~receive:(Ids.receive b) ~base:(Ids.base b)
    ~impl:(Ids.impl b);
  Scenario.install_default_route scenario ~port:"mbA";
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));
  Scenario.at scenario (Time.seconds 10.0) (fun () ->
      Migrate.migrate_perflow scenario ~src:"bro-a" ~dst:"bro-b"
        ~key:[ Hfl.Dst_ip http_prefix ]
        ~also_route:[ [ Hfl.Src_ip http_prefix ] ]
        ~dst_port:"mbB" ());
  Scenario.run scenario;
  Ids.finalize a;
  Ids.finalize b;
  let sort l = List.sort String.compare l in
  let ref_log = sort (List.map conn_signature (Ids.conn_log reference)) in
  let got_log = sort (List.map conn_signature (Ids.conn_log a @ Ids.conn_log b)) in
  let module SS = Set.Make (String) in
  let diff =
    SS.cardinal
      (SS.union
         (SS.diff (SS.of_list ref_log) (SS.of_list got_log))
         (SS.diff (SS.of_list got_log) (SS.of_list ref_log)))
  in
  (diff, Ids.anomalous_entries a + Ids.anomalous_entries b, List.length ref_log)

let correctness () =
  Util.banner "Section 8.2: correctness under live migration";
  let diff, anomalies, total = ids_migration_diff () in
  Util.row "  conn.log entries compared        : %d\n" total;
  Util.row "  mismatched entries (OpenMB)      : %d\n" diff;
  Util.row "  anomalous entries (OpenMB)       : %d\n" anomalies;
  Util.paper_note "no differences in conn.log/http.log under OpenMB.\n"

(* ------------------------------------------------------------------ *)
(* Ablations of OpenMB design choices                                  *)
(* ------------------------------------------------------------------ *)

let ablation_events () =
  Util.banner "Ablation: re-process events disabled";
  let diff_on, _, total = ids_migration_diff () in
  let diff_off, _, _ =
    ids_migration_diff ~config:{ bench_ctrl with Controller.forward_events = false } ()
  in
  Util.row "  conn.log entries compared          : %d\n" total;
  Util.row "  mismatches with events (OpenMB)    : %d\n" diff_on;
  Util.row "  mismatches without event forwarding: %d\n" diff_off;
  Printf.printf
    "  Without events, packets processed at the source during the move are\n";
  Printf.printf
    "  lost to the destination's state: the moved records terminate with\n";
  Printf.printf "  stale counters and histories.\n"

let ablation_delete () =
  Util.banner "Ablation: deferred delete (quiescence) vs. immediate delete";
  (* A slow (WAN-scale) rule installation widens the window between the
     move returning and the routing update taking effect — the window
     the quiescence delay exists to cover. *)
  let install_delay = Time.ms 200.0 in
  let _, anomalies_deferred, total =
    ids_migration_diff ~config:{ bench_ctrl with Controller.quiescence = Time.ms 500.0 }
      ~install_delay ()
  in
  let diff_imm, anomalies_imm, _ =
    ids_migration_diff
      ~config:{ bench_ctrl with Controller.quiescence = Time.zero }
      ~install_delay ()
  in
  Util.row "  conn.log entries compared             : %d\n" total;
  Util.row "  anomalies with 500 ms quiescence      : %d\n" anomalies_deferred;
  Util.row "  anomalies with immediate delete       : %d\n" anomalies_imm;
  Util.row "  mismatches with immediate delete      : %d\n" diff_imm;
  Printf.printf
    "  Deleting as soon as the move returns races the routing update:\n";
  Printf.printf
    "  packets still in flight toward the source re-create freshly-keyed\n";
  Printf.printf "  state that later surfaces as anomalous log entries.\n"

(* ------------------------------------------------------------------ *)
(* Table 2: applicability matrix                                       *)
(* ------------------------------------------------------------------ *)

let table2 () =
  Util.banner "Table 2: applicability of MB control schemes";
  (* Evidence gathered from the other experiments, summarized. *)
  let diff, anomalies, _ = ids_migration_diff () in
  let sdmbn_ok = diff = 0 && anomalies = 0 in
  let snap =
    Baseline_snapshot.run
      ~trace_params:
        { cloud_params with Openmb_traffic.Cloud_trace.n_scanners = 0 }
      ~migrate_key:[ Hfl.Dst_ip http_prefix ] ~snapshot_at:10.0 ()
  in
  let holdup =
    Baseline_config_routing.scale_down_holdup
      ~trace_params:{ Openmb_traffic.University_dc.default_params with n_flows = 500 }
      ~reroute_at:60.0 ()
  in
  let sm = Baseline_splitmerge.run ~n_chunks:1000 ~rate_pps:1000.0 () in
  Util.row "  %-26s %-10s %-12s %-10s\n" "" "Scale up" "Scale down" "Migration";
  Util.row "  %-26s %-10s %-12s %-10s\n" "SDMBN (OpenMB)"
    (if sdmbn_ok then "yes" else "issues")
    "yes" (if sdmbn_ok then "yes" else "issues");
  Util.row "  %-26s %-10s %-12s %-10s\n" "VM snapshot" "partial" "no" "partial";
  Util.row "    (%d + %d bad log entries; cannot merge state)\n"
    snap.Baseline_snapshot.anomalies_old snap.Baseline_snapshot.anomalies_new;
  Util.row "  %-26s %-10s %-12s %-10s\n" "Config + routing" "partial" "partial" "partial";
  Util.row "    (deprecated MB held %.0f s waiting for its flows)\n"
    holdup.Baseline_config_routing.holdup_seconds;
  Util.row "  %-26s %-10s %-12s %-10s\n" "Split/Merge" "yes" "partial" "no";
  Util.row "    (halts traffic: %d packets buffered, +%.0f ms avg latency;\n"
    sm.Baseline_splitmerge.buffered_packets
    (sm.Baseline_splitmerge.avg_added_latency *. 1e3);
  Util.row "     no shared-state merge)\n"
