(* Bechamel micro-benchmarks of the hot primitives: flow-table lookup,
   JSON codec, chunk sealing, LZSS compression and RE encoding. *)

open Bechamel
open Openmb_net

let mk_packet i =
  Packet.make ~id:i ~ts:Openmb_sim.Time.zero
    ~src_ip:(Addr.of_int (0x0A000000 lor (i land 0xFFFF)))
    ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(1024 + (i land 0x3FFF)) ~dst_port:80
    ~proto:Packet.Tcp ()

let flow_table_lookup =
  let table = Flow_table.create () in
  for i = 0 to 99 do
    ignore
      (Flow_table.install table ~priority:i
         ~match_:[ Hfl.Src_ip (Addr.prefix (Addr.of_int (0x0A000000 lor (i lsl 8))) 24) ]
         ~action:(Flow_table.Forward (string_of_int i)))
  done;
  let p = mk_packet 7 in
  Test.make ~name:"flow_table.lookup (100 rules)"
    (Staged.stage (fun () -> ignore (Flow_table.lookup table p)))

let json_codec =
  let text =
    Openmb_wire.Json.to_string
      (Openmb_wire.Json.Assoc
         [
           ("op", Openmb_wire.Json.Int 42);
           ("type", Openmb_wire.Json.String "putSupportPerflow");
           ( "chunk",
             Openmb_wire.Json.Assoc
               [
                 ("key", Openmb_wire.Json.String "nw_src=10.0.0.1/32,tp_src=1234");
                 ("cipher", Openmb_wire.Json.String (String.make 200 'x'));
               ] );
         ])
  in
  Test.make ~name:"json.parse (protocol message)"
    (Staged.stage (fun () -> ignore (Openmb_wire.Json.of_string text)))

let chunk_seal =
  let plain = String.make 202 's' in
  Test.make ~name:"chunk.seal (202B)"
    (Staged.stage (fun () ->
         ignore
           (Openmb_core.Chunk.seal ~mb_kind:"bro" ~role:Openmb_core.Taxonomy.Supporting
              ~partition:Openmb_core.Taxonomy.Per_flow ~key:Hfl.any ~plain)))

let lzss =
  let payload =
    String.concat "" (List.init 20 (fun i -> Printf.sprintf "{\"f\":%d,\"s\":\"state\"}" i))
  in
  Test.make ~name:"compress.lzss (400B json)"
    (Staged.stage (fun () -> ignore (Openmb_wire.Compress.compress payload)))

let re_encode =
  let engine = Openmb_sim.Engine.create () in
  let enc = Openmb_mbox.Re_encoder.create engine ~name:"enc" () in
  Openmb_mbox.Mb_base.set_egress (Openmb_mbox.Re_encoder.base enc) (fun _ -> ());
  let counter = ref 0 in
  Test.make ~name:"re.encode (16-token packet)"
    (Staged.stage (fun () ->
         incr counter;
         let p =
           Packet.make ~id:!counter ~ts:(Openmb_sim.Engine.now engine)
             ~body:(Packet.Raw (Payload.of_tokens (Array.init 16 (fun k -> (!counter land 0xFF) + k))))
             ~src_ip:(Addr.of_string "10.0.0.1") ~dst_ip:(Addr.of_string "1.1.1.5")
             ~src_port:1024 ~dst_port:80 ~proto:Packet.Tcp ()
         in
         (* Drive the real encode path through the engine. *)
         Openmb_mbox.Re_encoder.receive enc p;
         Openmb_sim.Engine.run engine))

let hfl_match =
  let hfl = Hfl.of_string "nw_src=10.0.0.0/8,tp_dst=80,proto=tcp" in
  let p = mk_packet 3 in
  Test.make ~name:"hfl.matches_packet"
    (Staged.stage (fun () -> ignore (Hfl.matches_packet hfl p)))

(* Footnote-6 ablation: real wall-clock cost of the linear-scan get
   versus the source-indexed lookup, at growing table sizes. *)
let scan_vs_index () =
  Util.banner "Ablation: linear-scan get vs. source-indexed lookup (footnote 6)";
  Util.row "  %-10s %16s %16s %10s\n" "entries" "linear (ns)" "indexed (ns)" "speedup";
  List.iter
    (fun n ->
      let populate indexed =
        let t =
          Openmb_mbox.State_table.create ~indexed ~granularity:Hfl.full_granularity ()
        in
        for i = 0 to n - 1 do
          let tup =
            {
              Five_tuple.src_ip = Addr.of_int (0x0A000000 lor i);
              dst_ip = Addr.of_string "1.1.1.10";
              src_port = 1024 + (i land 0x3FFF);
              dst_port = 80;
              proto = Packet.Tcp;
            }
          in
          ignore (Openmb_mbox.State_table.find_or_create t tup ~default:(fun () -> i))
        done;
        t
      in
      let linear = populate false and indexed = populate true in
      let q = Hfl.of_string "nw_src=10.0.1.4/32" in
      let time_one label t =
        ignore label;
        let test =
          Test.make ~name:"scan"
            (Staged.stage (fun () -> ignore (Openmb_mbox.State_table.matching t q)))
        in
        let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
        let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
        let instance = Toolkit.Instance.monotonic_clock in
        match Test.elements test with
        | [ elt ] -> (
          match Analyze.OLS.estimates (Analyze.one ols instance (Benchmark.run cfg [ instance ] elt)) with
          | Some [ ns ] -> ns
          | Some _ | None -> nan)
        | _ -> nan
      in
      let tl = time_one "linear" linear and ti = time_one "indexed" indexed in
      Util.row "  %-10d %16.0f %16.0f %9.0fx\n" n tl ti (tl /. ti))
    [ 1000; 5000; 20000 ];
  Printf.printf
    "  The prototype's gets scan the whole table (the paper attributes the\n\
     6x get/put gap to this); a switch-style index makes the exact-source\n\
     get cost independent of table size.\n"

let run () =
  Util.banner "Micro-benchmarks (Bechamel, wall-clock)";
  let tests = [ flow_table_lookup; json_codec; chunk_seal; lzss; re_encode; hfl_match ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance result in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Util.row "  %-34s %12.1f ns/run\n" (Test.Elt.name elt) ns
          | Some _ | None -> Util.row "  %-34s %12s\n" (Test.Elt.name elt) "n/a")
        (Test.elements test))
    tests
