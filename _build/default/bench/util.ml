(* Shared helpers for the benchmark harness. *)

let banner title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let section title = Printf.printf "\n--- %s ---\n" title

let row fmt = Printf.printf fmt

let paper_note fmt =
  Printf.printf "  [paper] ";
  Printf.printf fmt

(* Run a function over a fresh engine-driven setup and hand back the
   result once the simulation drains. *)
let ms t = Openmb_sim.Time.to_ms t

let mb bytes = float_of_int bytes /. 1e6
