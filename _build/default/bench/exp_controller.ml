(* Controller-performance experiments (§8.3, Figure 10) and the
   compression/broker studies, using the paper's dummy middleboxes:
   202-byte state chunks, 128-byte events. *)

open Openmb_sim
open Openmb_core
open Openmb_apps

let bench_config =
  { Controller.default_config with quiescence = Time.ms 100.0 }

(* One move of [chunks] chunks between a fresh dummy pair; returns the
   operation duration in simulated milliseconds. *)
let one_move ~chunks ~events () =
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:bench_config () in
  let src = Dummy_mb.create engine ~name:"src" () in
  let dst = Dummy_mb.create engine ~name:"dst" () in
  Dummy_mb.populate src ~n:chunks;
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Dummy_mb.impl dst) ());
  if events then Dummy_mb.start_events src ~rate_pps:1000.0;
  let duration = ref nan in
  Controller.move_internal ctrl ~src:"src" ~dst:"dst" ~key:Openmb_net.Hfl.any
    ~on_done:(fun res ->
      match res with
      | Ok mr ->
        duration := Util.ms mr.Controller.duration;
        Dummy_mb.stop_events src
      | Error e -> failwith (Errors.to_string e));
  Engine.run engine;
  !duration

let fig10a () =
  Util.banner "Figure 10(a): controller time per move vs. state chunks";
  Util.row "  %-10s %14s %14s %10s\n" "chunks" "w/o events(ms)" "with events(ms)" "overhead";
  List.iter
    (fun chunks ->
      let plain = one_move ~chunks ~events:false () in
      let with_ev = one_move ~chunks ~events:true () in
      Util.row "  %-10d %14.1f %14.1f %9.1f%%\n" chunks plain with_ev
        ((with_ev -. plain) /. plain *. 100.0))
    [ 5000; 10000; 15000; 20000; 25000 ];
  Util.paper_note
    "linear in chunks; events increase operation time by at most 9%%.\n"

(* [k] simultaneous moves between k disjoint MB pairs. *)
let simultaneous_moves ~pairs ~chunks () =
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:bench_config () in
  for i = 0 to (2 * pairs) - 1 do
    let mb = Dummy_mb.create engine ~name:(Printf.sprintf "mb%d" i) () in
    if i mod 2 = 0 then Dummy_mb.populate mb ~n:chunks;
    Controller.connect ctrl (Mb_agent.create engine ~impl:(Dummy_mb.impl mb) ())
  done;
  let durations = Stats.create () in
  for i = 0 to pairs - 1 do
    Controller.move_internal ctrl
      ~src:(Printf.sprintf "mb%d" (2 * i))
      ~dst:(Printf.sprintf "mb%d" ((2 * i) + 1))
      ~key:Openmb_net.Hfl.any
      ~on_done:(fun res ->
        match res with
        | Ok mr -> Stats.add durations (Util.ms mr.Controller.duration)
        | Error e -> failwith (Errors.to_string e))
  done;
  Engine.run engine;
  Stats.mean durations

let fig10b () =
  Util.banner "Figure 10(b): avg time per move vs. simultaneous moves";
  let chunk_counts = [ 1000; 2000; 3000 ] in
  Util.row "  %-8s" "moves";
  List.iter (fun c -> Util.row " %10s" (Printf.sprintf "%dch(ms)" c)) chunk_counts;
  Util.row "\n";
  List.iter
    (fun pairs ->
      Util.row "  %-8d" pairs;
      List.iter
        (fun chunks -> Util.row " %10.1f" (simultaneous_moves ~pairs ~chunks ()))
        chunk_counts;
      Util.row "\n")
    [ 1; 2; 4; 8; 12; 16; 20 ];
  Util.paper_note
    "avg move time grows linearly with simultaneous operations and chunks.\n"

let compression () =
  Util.banner "Section 8.3: compressing state transfers (500 chunks)";
  (* Measure the real LZSS ratio on a sample of the dummy state. *)
  let sample =
    let buf = Buffer.create 4096 in
    for i = 0 to 19 do
      Buffer.add_string buf (Printf.sprintf "{\"flow\":%d,\"state\":\"" i);
      let x = ref (i + 0x9E37) in
      for _ = 1 to 20 do
        x := (!x * 1103515245) + 12345;
        Buffer.add_string buf (Printf.sprintf "seq=%04x;" (!x land 0xFFFF))
      done;
      Buffer.add_string buf "\"}"
    done;
    Buffer.contents buf
  in
  let ratio = Openmb_wire.Compress.ratio sample in
  Chunk.compression_enabled := false;
  let plain = one_move ~chunks:500 ~events:false () in
  Chunk.compression_enabled := true;
  let compressed = one_move ~chunks:500 ~events:false () in
  Chunk.compression_enabled := false;
  Util.row "  measured LZSS ratio on dummy state : %.0f%%\n" (ratio *. 100.0);
  Util.row "  move of 500 chunks, no compression : %.1f ms\n" plain;
  Util.row "  move of 500 chunks, compressed     : %.1f ms\n" compressed;
  Util.paper_note "state compresses by 38%%; 110 ms -> 70 ms.\n"

let ablation_broker () =
  Util.banner "Ablation: controller-brokered transfer vs. direct MB-to-MB";
  let chunks = 1000 in
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:bench_config () in
  let src = Dummy_mb.create engine ~name:"src" () in
  let dst = Dummy_mb.create engine ~name:"dst" () in
  Dummy_mb.populate src ~n:chunks;
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Dummy_mb.impl dst) ());
  Controller.move_internal ctrl ~src:"src" ~dst:"dst" ~key:Openmb_net.Hfl.any
    ~on_done:(fun _ -> ());
  Engine.run engine;
  let brokered = Controller.messages_processed ctrl in
  (* Direct MB-to-MB would cross the wire once per chunk plus one ack
     each, with no controller CPU — but every MB pair must then
     implement ordering, retries and event interleaving itself
     (§5, "Why A Separate API"). *)
  let direct = (chunks * 2) + 2 in
  Util.row "  chunks moved                      : %d\n" chunks;
  Util.row "  messages through controller       : %d\n" brokered;
  Util.row "  messages if MBs exchanged directly: %d (but each MB re-implements\n"
    direct;
  Util.row "    put ordering, ack tracking and event replay: the complexity the\n";
  Util.row "    controller centralizes once)\n"
