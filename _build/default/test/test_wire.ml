(* Tests for the JSON codec and the LZSS compressor. *)

open Openmb_wire

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (Json.to_string j)) Json.equal

let test_json_print_basics () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "-42" (Json.to_string (Json.Int (-42)));
  Alcotest.(check string) "string" {|"hi"|} (Json.to_string (Json.String "hi"));
  Alcotest.(check string) "list" "[1,2]" (Json.to_string (Json.List [ Json.Int 1; Json.Int 2 ]));
  Alcotest.(check string) "assoc" {|{"a":1}|}
    (Json.to_string (Json.Assoc [ ("a", Json.Int 1) ]))

let test_json_escape_roundtrip () =
  let s = "line1\nline2\t\"quoted\"\\back\x01ctl" in
  let j = Json.String s in
  Alcotest.check json "escaped string round-trips" j (Json.of_string (Json.to_string j))

let test_json_parse_whitespace () =
  let j = Json.of_string "  { \"a\" : [ 1 , 2.5 , null ] , \"b\" : false }  " in
  Alcotest.check json "parsed"
    (Json.Assoc
       [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]); ("b", Json.Bool false) ])
    j

let test_json_parse_nested () =
  let text = {|{"outer":{"inner":[{"x":1},{"y":[true,false]}]}}|} in
  let j = Json.of_string text in
  Alcotest.(check string) "reprint" text (Json.to_string j)

let test_json_numbers () =
  Alcotest.check json "negative float" (Json.Float (-3.25)) (Json.of_string "-3.25");
  Alcotest.check json "exponent" (Json.Float 1500.0) (Json.of_string "1.5e3");
  Alcotest.check json "int stays int" (Json.Int 7) (Json.of_string "7")

let test_json_unicode_escape () =
  let j = Json.of_string {|"Aé"|} in
  Alcotest.(check string) "utf8 decoded" "A\xc3\xa9" (Json.get_string j)

let test_json_errors () =
  let fails s =
    match Json.of_string s with
    | _ -> Alcotest.fail (Printf.sprintf "expected parse failure for %S" s)
    | exception Json.Parse_error _ -> ()
  in
  List.iter fails [ ""; "{"; "[1,"; "tru"; "{\"a\":}"; "1 2"; "\"unterminated" ]

let test_json_member () =
  let j = Json.Assoc [ ("a", Json.Int 1); ("b", Json.Null) ] in
  Alcotest.check json "present" (Json.Int 1) (Json.member "a" j);
  Alcotest.check json "absent is null" Json.Null (Json.member "zz" j);
  Alcotest.(check bool) "mem" true (Json.mem "b" j);
  Alcotest.(check bool) "not mem" false (Json.mem "zz" j)

let test_json_accessor_errors () =
  Alcotest.check_raises "get_int on string" (Invalid_argument "Json.get_int") (fun () ->
      ignore (Json.get_int (Json.String "x")));
  Alcotest.check_raises "member on list" (Invalid_argument "Json.member: not an object")
    (fun () -> ignore (Json.member "a" (Json.List [])))

let test_json_wire_size () =
  let j = Json.Assoc [ ("a", Json.Int 1) ] in
  Alcotest.(check int) "wire size matches encoding" (String.length (Json.to_string j))
    (Json.wire_size j)

let json_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
            map (fun s -> Json.String s) (string_size (int_range 0 12));
          ]
      else
        oneof
          [
            map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
            map
              (fun fields -> Json.Assoc fields)
              (list_size (int_range 0 4)
                 (pair (string_size (int_range 1 6)) (self (n / 2))));
          ])

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"JSON print/parse round-trip" ~count:300 json_gen (fun j ->
      Json.equal j (Json.of_string (Json.to_string j)))

let prop_json_pretty_roundtrip =
  QCheck2.Test.make ~name:"pretty print/parse round-trip" ~count:150 json_gen (fun j ->
      Json.equal j (Json.of_string (Json.to_string_pretty j)))

(* ------------------------------------------------------------------ *)
(* Compression                                                         *)
(* ------------------------------------------------------------------ *)

let test_compress_roundtrip_basic () =
  let cases =
    [
      "";
      "a";
      "abcabcabcabcabcabc";
      String.make 1000 'x';
      "no repeats here at all!?";
      String.concat "" (List.init 50 (fun i -> Printf.sprintf "{\"field\":%d}" (i mod 3)));
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "roundtrip %d bytes" (String.length s))
        s
        (Compress.decompress (Compress.compress s)))
    cases

let test_compress_shrinks_redundant () =
  let s = String.concat "" (List.init 200 (fun _ -> "the same phrase again and again. ")) in
  Alcotest.(check bool) "redundant input shrinks" true
    (Compress.compressed_size s < String.length s / 2);
  Alcotest.(check bool) "ratio positive" true (Compress.ratio s > 0.5)

let test_compress_ratio_empty () =
  Alcotest.(check (float 1e-9)) "empty ratio" 0.0 (Compress.ratio "")

let prop_json_parse_total =
  (* Parsing arbitrary bytes either yields a value or raises
     Parse_error — never anything else. *)
  QCheck2.Test.make ~name:"JSON parser is total" ~count:500
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      match Json.of_string s with
      | _ -> true
      | exception Json.Parse_error _ -> true)

let prop_compress_roundtrip =
  QCheck2.Test.make ~name:"LZSS round-trip" ~count:300
    QCheck2.Gen.(string_size (int_range 0 2000))
    (fun s -> Compress.decompress (Compress.compress s) = s)

let prop_compress_roundtrip_redundant =
  (* Strings with long repeats exercise the back-reference paths. *)
  QCheck2.Test.make ~name:"LZSS round-trip on repetitive input" ~count:200
    QCheck2.Gen.(
      pair (string_size (int_range 1 40)) (int_range 2 100))
    (fun (unit_, reps) ->
      let s = String.concat "" (List.init reps (fun _ -> unit_)) in
      Compress.decompress (Compress.compress s) = s)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openmb_wire"
    [
      ( "json",
        [
          Alcotest.test_case "print basics" `Quick test_json_print_basics;
          Alcotest.test_case "escape roundtrip" `Quick test_json_escape_roundtrip;
          Alcotest.test_case "whitespace" `Quick test_json_parse_whitespace;
          Alcotest.test_case "nested" `Quick test_json_parse_nested;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "accessor errors" `Quick test_json_accessor_errors;
          Alcotest.test_case "wire size" `Quick test_json_wire_size;
        ]
        @ qcheck [ prop_json_roundtrip; prop_json_pretty_roundtrip; prop_json_parse_total ] );
      ( "compress",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_compress_roundtrip_basic;
          Alcotest.test_case "shrinks redundant input" `Quick test_compress_shrinks_redundant;
          Alcotest.test_case "empty ratio" `Quick test_compress_ratio_empty;
        ]
        @ qcheck [ prop_compress_roundtrip; prop_compress_roundtrip_redundant ] );
    ]
