(* Integration tests: full control-application scenarios, including the
   paper's §8.2 correctness experiment (output of OpenMB-enabled MBs
   under dynamic reconfiguration equals a single unmodified MB's). *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_apps

(* Short quiescence so tests need not simulate 5 s idle tails. *)
let fast_ctrl = { Controller.default_config with quiescence = Time.ms 200.0 }

let small_cloud =
  {
    Openmb_traffic.Cloud_trace.default_params with
    n_http_flows = 40;
    n_other_flows = 20;
    n_scanners = 1;
    duration = 30.0;
  }

let http_prefix = small_cloud.Openmb_traffic.Cloud_trace.cloud_http

(* ------------------------------------------------------------------ *)
(* §8.2 correctness: IDS live migration                                *)
(* ------------------------------------------------------------------ *)

type conn_key = string

let conn_signature (e : Ids.conn_entry) : conn_key =
  Printf.sprintf "%s start=%.3f dur=%.3f ob=%d rb=%d st=%s"
    (Five_tuple.to_string e.Ids.ce_tuple)
    e.Ids.ce_start e.Ids.ce_duration e.Ids.ce_orig_bytes e.Ids.ce_resp_bytes
    e.Ids.ce_state

let http_signature (e : Ids.http_entry) =
  Printf.sprintf "%s %s %s %s %d"
    (Five_tuple.to_string e.Ids.he_tuple)
    e.Ids.he_method e.Ids.he_host e.Ids.he_uri e.Ids.he_status

let sorted_conn_log ids =
  List.sort String.compare (List.map conn_signature (Ids.conn_log ids))

let reference_ids_run trace =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro-ref" () in
  Openmb_traffic.Trace.replay engine trace ~into:(Ids.receive ids);
  Engine.run engine;
  Ids.finalize ids;
  ids

let migration_ids_run trace =
  let scenario = Scenario.create ~ctrl_config:fast_ctrl () in
  let a = Ids.create (Scenario.engine scenario) ?recorder:(Scenario.recorder scenario)
      ~name:"bro-a" ()
  in
  let b = Ids.create (Scenario.engine scenario) ?recorder:(Scenario.recorder scenario)
      ~name:"bro-b" ()
  in
  Scenario.attach_mb scenario ~port:"mbA" ~receive:(Ids.receive a) ~base:(Ids.base a)
    ~impl:(Ids.impl a);
  Scenario.attach_mb scenario ~port:"mbB" ~receive:(Ids.receive b) ~base:(Ids.base b)
    ~impl:(Ids.impl b);
  Scenario.install_default_route scenario ~port:"mbA";
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));
  let migrated = ref None in
  Scenario.at scenario (Time.seconds 10.0) (fun () ->
      Migrate.migrate_perflow scenario ~src:"bro-a" ~dst:"bro-b"
        ~key:[ Hfl.Dst_ip http_prefix ]
        ~also_route:[ [ Hfl.Src_ip http_prefix ] ]
        ~dst_port:"mbB"
        ~on_done:(fun r -> migrated := Some r)
        ());
  Scenario.run scenario;
  Ids.finalize a;
  Ids.finalize b;
  (a, b, !migrated)

let test_migration_correctness () =
  let trace = Openmb_traffic.Cloud_trace.generate small_cloud in
  let reference = reference_ids_run trace in
  let a, b, migrated = migration_ids_run trace in
  (match migrated with
  | Some { Migrate.move = Some mr; routing_done_at = Some _ } ->
    Alcotest.(check bool) "some chunks moved" true (mr.Controller.chunks_moved > 0)
  | _ -> Alcotest.fail "migration did not complete");
  (* No anomalous entries anywhere. *)
  Alcotest.(check int) "no anomalies in reference" 0 (Ids.anomalous_entries reference);
  Alcotest.(check int) "no anomalies at A" 0 (Ids.anomalous_entries a);
  Alcotest.(check int) "no anomalies at B" 0 (Ids.anomalous_entries b);
  (* conn.log equality: merged migrated logs == reference log. *)
  let ref_log = sorted_conn_log reference in
  let merged =
    List.sort String.compare
      (List.map conn_signature (Ids.conn_log a @ Ids.conn_log b))
  in
  Alcotest.(check int) "same number of conn entries" (List.length ref_log)
    (List.length merged);
  List.iter2
    (fun expected got -> Alcotest.(check string) "conn entry" expected got)
    ref_log merged;
  (* http.log equality. *)
  let ref_http =
    List.sort String.compare (List.map http_signature (Ids.http_log reference))
  in
  let merged_http =
    List.sort String.compare
      (List.map http_signature (Ids.http_log a @ Ids.http_log b))
  in
  Alcotest.(check (list string)) "http log equal" ref_http merged_http;
  (* Alert equality (kinds and sources). *)
  let alert_sig al = al.Ids.al_kind ^ ":" ^ al.Ids.al_source in
  let ref_alerts = List.sort String.compare (List.map alert_sig (Ids.alerts reference)) in
  let got_alerts =
    List.sort String.compare (List.map alert_sig (Ids.alerts a @ Ids.alerts b))
  in
  Alcotest.(check (list string)) "alerts equal" ref_alerts got_alerts

let test_migration_latency_penalty_small () =
  (* §8.2: per-packet latency rises by at most ~2% while state
     operations execute. *)
  let trace = Openmb_traffic.Cloud_trace.generate small_cloud in
  let reference = reference_ids_run trace in
  let a, b, _ = migration_ids_run trace in
  let ref_mean = Stats.mean (Mb_base.latency_stats (Ids.base reference)) in
  let mig_mean =
    let sa = Mb_base.latency_stats (Ids.base a) and sb = Mb_base.latency_stats (Ids.base b) in
    (Stats.total sa +. Stats.total sb) /. float_of_int (Stats.count sa + Stats.count sb)
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean latency within 10%% (ref=%.4fms mig=%.4fms)" (ref_mean *. 1e3)
       (mig_mean *. 1e3))
    true
    (mig_mean < ref_mean *. 1.10)

(* ------------------------------------------------------------------ *)
(* Monitor scaling: no over- or under-reporting                        *)
(* ------------------------------------------------------------------ *)

let monitor_scale_run trace =
  let scenario = Scenario.create ~ctrl_config:fast_ctrl () in
  let engine = Scenario.engine scenario in
  let m1 = Monitor.create engine ~name:"prads1" () in
  let m2 = Monitor.create engine ~name:"prads2" () in
  Scenario.attach_mb scenario ~port:"mb1" ~receive:(Monitor.receive m1)
    ~base:(Monitor.base m1) ~impl:(Monitor.impl m1);
  Scenario.attach_mb scenario ~port:"mb2" ~receive:(Monitor.receive m2)
    ~base:(Monitor.base m2) ~impl:(Monitor.impl m2);
  Scenario.install_default_route scenario ~port:"mb1";
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));
  let up = ref None and down = ref None in
  (* Scale up at 8 s: shift the 10.0.0.0/17 half of the campus to the
     new instance.  Scale back down at 20 s. *)
  let rebalance = [ Hfl.Src_ip (Addr.prefix_of_string "10.0.0.0/17") ] in
  let reverse = [ Hfl.Dst_ip (Addr.prefix_of_string "10.0.0.0/17") ] in
  Scenario.at scenario (Time.seconds 8.0) (fun () ->
      Scale.scale_up scenario ~existing:"prads1" ~fresh:"prads2" ~rebalance
        ~also_route:[ reverse ] ~dst_port:"mb2"
        ~on_done:(fun r -> up := Some r)
        ());
  Scenario.at scenario (Time.seconds 20.0) (fun () ->
      Scale.scale_down scenario ~deprecated:"prads2" ~survivor:"prads1" ~dst_port:"mb1"
        ~on_done:(fun r -> down := Some r)
        ());
  Scenario.run scenario;
  (m1, m2, !up, !down)

let test_scaling_no_over_or_under_reporting () =
  let trace =
    Openmb_traffic.Cloud_trace.generate
      { small_cloud with n_scanners = 0; n_http_flows = 30; n_other_flows = 15 }
  in
  (* Reference totals: one unscaled instance. *)
  let engine = Engine.create () in
  let reference = Monitor.create engine ~name:"prads-ref" () in
  Openmb_traffic.Trace.replay engine trace ~into:(Monitor.receive reference);
  Engine.run engine;
  let m1, m2, up, down = monitor_scale_run trace in
  (match up with
  | Some u ->
    Alcotest.(check bool) "stats answered before the move" true
      (u.Scale.queried.Southbound.perflow_report_chunks > 0);
    Alcotest.(check int) "stats chunk count matches chunks moved"
      u.Scale.queried.Southbound.perflow_report_chunks u.Scale.move.Controller.chunks_moved
  | None -> Alcotest.fail "scale-up never completed");
  (match down with
  | Some d -> Alcotest.(check bool) "scale-down merged" true
      (d.Scale.merged.Controller.chunks_moved >= 1)
  | None -> Alcotest.fail "scale-down never completed");
  let rt = Monitor.totals reference in
  let t1 = Monitor.totals m1 in
  (* After scale-down everything has been merged into prads1 and the
     deprecated instance terminated; its counters were snapshotted into
     the merge, so the survivor alone must equal the reference — the
     "no over- or under-reporting" property. *)
  Alcotest.(check int) "packet totals conserved" rt.Monitor.tot_pkts t1.Monitor.tot_pkts;
  Alcotest.(check int) "byte totals conserved" rt.Monitor.tot_bytes t1.Monitor.tot_bytes;
  Alcotest.(check int) "tcp totals conserved" rt.Monitor.tot_tcp t1.Monitor.tot_tcp;
  (* Per-flow records: every flow tracked exactly once across the two
     instances, with reference packet counts. *)
  let record_sigs m =
    List.map
      (fun (key, r) -> Printf.sprintf "%s pkts=%d" (Hfl.to_string key) r.Monitor.fr_pkts)
      (Monitor.flow_records m)
  in
  let ref_sigs = List.sort String.compare (record_sigs reference) in
  let got_sigs = List.sort String.compare (record_sigs m1) in
  Alcotest.(check (list string)) "per-flow records conserved" ref_sigs got_sigs;
  Alcotest.(check int) "deprecated instance left no records behind" 0
    (Monitor.tracked_flows m2)

(* ------------------------------------------------------------------ *)
(* RE live migration (§6.1)                                            *)
(* ------------------------------------------------------------------ *)

let re_params =
  {
    Openmb_traffic.Redundancy_trace.default_params with
    n_flows_a = 30;
    n_flows_b = 30;
    packets_per_flow = 30;
  }

let re_migration_run () =
  let scenario = Scenario.create ~ctrl_config:fast_ctrl () in
  let engine = Scenario.engine scenario in
  let enc = Re_encoder.create engine ~name:"enc" () in
  let dec_a = Re_decoder.create engine ~name:"dec-a" () in
  let dec_b = Re_decoder.create engine ~name:"dec-b" () in
  (* Topology: traffic -> encoder -> switch -> decoder A or B -> sink.
     The decoders hang off switch ports; the encoder feeds the
     switch. *)
  Scenario.attach_mb scenario ~port:"decA" ~receive:(Re_decoder.receive dec_a)
    ~base:(Re_decoder.base dec_a) ~impl:(Re_decoder.impl dec_a);
  Scenario.attach_mb scenario ~port:"decB" ~receive:(Re_decoder.receive dec_b)
    ~base:(Re_decoder.base dec_b) ~impl:(Re_decoder.impl dec_b);
  Scenario.install_default_route scenario ~port:"decA";
  (* The encoder is upstream of the switch: wire it into the MB
     controller directly and chain its egress into the switch. *)
  let enc_agent =
    Mb_agent.create engine ?recorder:(Scenario.recorder scenario) ~impl:(Re_encoder.impl enc)
      ()
  in
  Controller.connect (Scenario.controller scenario) enc_agent;
  Mb_base.set_egress (Re_encoder.base enc) (Switch.receive (Scenario.switch scenario));
  let trace = Openmb_traffic.Redundancy_trace.generate re_params in
  Scenario.inject scenario trace ~into:(Re_encoder.receive enc);
  let migrated = ref None in
  Scenario.at scenario (Time.seconds 12.0) (fun () ->
      Migrate.migrate_re scenario ~orig_decoder:"dec-a" ~new_decoder:"dec-b"
        ~encoder:"enc"
        ~keep_prefix:re_params.Openmb_traffic.Redundancy_trace.class_a
        ~move_prefix:re_params.Openmb_traffic.Redundancy_trace.class_b ~dst_port:"decB"
        ~on_done:(fun r -> migrated := Some r)
        ());
  Scenario.run scenario;
  (enc, dec_a, dec_b, !migrated)

let test_re_migration_all_decodable () =
  let enc, dec_a, dec_b, migrated = re_migration_run () in
  (match migrated with
  | Some { Migrate.move = Some mr; _ } ->
    Alcotest.(check bool) "cache cloned" true (mr.Controller.bytes_moved > 0)
  | _ -> Alcotest.fail "RE migration did not complete");
  Alcotest.(check bool) "encoder eliminated redundancy" true
    (Re_encoder.encoded_bytes enc > 0);
  Alcotest.(check int) "no undecodable bytes at A" 0 (Re_decoder.undecodable_bytes dec_a);
  Alcotest.(check int) "no undecodable bytes at B" 0 (Re_decoder.undecodable_bytes dec_b);
  Alcotest.(check bool) "new decoder served migrated traffic" true
    (Re_decoder.packets_decoded dec_b > 0);
  Alcotest.(check int) "encoder runs two caches" 2 (Re_encoder.num_caches enc)

(* ------------------------------------------------------------------ *)
(* NAT failure recovery (§2, R6)                                       *)
(* ------------------------------------------------------------------ *)

let test_nat_failover () =
  let scenario = Scenario.create ~ctrl_config:fast_ctrl () in
  let engine = Scenario.engine scenario in
  let internal_prefix = Addr.prefix_of_string "10.0.0.0/8" in
  let external_ip = Addr.of_string "5.5.5.5" in
  let nat1 = Nat.create engine ~name:"nat1" ~external_ip ~internal_prefix () in
  let nat2 = Nat.create engine ~name:"nat2" ~external_ip ~internal_prefix () in
  Scenario.attach_mb scenario ~port:"nat1" ~receive:(Nat.receive nat1)
    ~base:(Nat.base nat1) ~impl:(Nat.impl nat1);
  Scenario.attach_mb scenario ~port:"nat2" ~receive:(Nat.receive nat2)
    ~base:(Nat.base nat2) ~impl:(Nat.impl nat2);
  Scenario.install_default_route scenario ~port:"nat1";
  let watcher = Failover.watch scenario ~mb:"nat1" ~codes:[ "nat.new_mapping" ] () in
  (* Outbound flows establish mappings at nat1. *)
  let mk_out i ts =
    Packet.make ~id:i ~ts:(Time.seconds ts)
      ~src_ip:(Addr.of_string (Printf.sprintf "10.0.0.%d" (1 + i)))
      ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(1000 + i) ~dst_port:80
      ~proto:Packet.Tcp ()
  in
  for i = 0 to 9 do
    Scenario.at scenario
      (Time.seconds (0.1 +. (0.05 *. float_of_int i)))
      (fun () -> Switch.receive (Scenario.switch scenario) (mk_out i (0.1 +. (0.05 *. float_of_int i))))
  done;
  let recovered = ref None in
  Scenario.at scenario (Time.seconds 2.0) (fun () ->
      Alcotest.(check int) "watcher mirrored all mappings" 10 (Failover.tracked watcher);
      Failover.fail_over watcher ~replacement:"nat2" ~dst_port:"nat2"
        ~on_done:(fun r -> recovered := Some r)
        ());
  Scenario.run scenario;
  (match !recovered with
  | Some r -> Alcotest.(check int) "all critical records restored" 10 r.Failover.restored
  | None -> Alcotest.fail "failover never completed");
  Alcotest.(check int) "replacement holds the mappings" 10 (Nat.mapping_count nat2);
  (* The replacement translates an in-progress connection's reply using
     the restored mapping. *)
  let ext_port =
    match Nat.lookup_external nat2 ~ext_port:20000 with
    | Some _ -> 20000
    | None -> Alcotest.fail "expected the first allocated port to be 20000"
  in
  let reply =
    Packet.make ~id:999 ~ts:(Engine.now engine) ~src_ip:(Addr.of_string "1.1.1.5")
      ~dst_ip:external_ip ~src_port:80 ~dst_port:ext_port ~proto:Packet.Tcp ()
  in
  let out = ref [] in
  Mb_base.set_egress (Nat.base nat2) (fun p -> out := p :: !out);
  Nat.receive nat2 reply;
  Scenario.run scenario;
  match !out with
  | [ p ] -> Alcotest.(check string) "reply translated by replacement" "10.0.0.1"
      (Addr.to_string p.Packet.dst_ip)
  | _ -> Alcotest.fail "replacement failed to translate"

(* ------------------------------------------------------------------ *)
(* NAT and load-balancer migration through the full stack              *)
(* ------------------------------------------------------------------ *)

let test_nat_migration_keeps_connections () =
  (* Move a subnet's NAT mappings to a second instance mid-run; the
     migrated connections keep their external ports, so replies routed
     to the new instance still translate. *)
  let scenario = Scenario.create ~ctrl_config:fast_ctrl () in
  let engine = Scenario.engine scenario in
  let internal = Addr.prefix_of_string "10.0.0.0/8" in
  let mk name =
    Nat.create engine ~name ~external_ip:(Addr.of_string "5.5.5.5")
      ~internal_prefix:internal ()
  in
  let a = mk "nat-a" and b = mk "nat-b" in
  Scenario.attach_mb scenario ~port:"a" ~receive:(Nat.receive a) ~base:(Nat.base a)
    ~impl:(Nat.impl a);
  Scenario.attach_mb scenario ~port:"b" ~receive:(Nat.receive b) ~base:(Nat.base b)
    ~impl:(Nat.impl b);
  Scenario.install_default_route scenario ~port:"a";
  (* Ten outbound connections; their replies come back after the
     migration. *)
  let ext_ports = ref [] in
  Mb_base.set_egress (Nat.base a) (fun p -> ext_ports := p.Packet.src_port :: !ext_ports);
  for i = 0 to 9 do
    let ts = 0.1 +. (0.05 *. float_of_int i) in
    let p =
      Packet.make ~id:i ~ts:(Time.seconds ts)
        ~src_ip:(Addr.of_string (Printf.sprintf "10.0.0.%d" (1 + i)))
        ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(6000 + i) ~dst_port:443
        ~proto:Packet.Tcp ()
    in
    Scenario.at scenario (Time.seconds ts) (fun () ->
        Switch.receive (Scenario.switch scenario) p)
  done;
  let migrated = ref false in
  Scenario.at scenario (Time.seconds 2.0) (fun () ->
      Migrate.migrate_perflow scenario ~src:"nat-a" ~dst:"nat-b"
        ~key:[ Hfl.Src_ip (Addr.prefix_of_string "10.0.0.0/24") ]
        ~dst_port:"b"
        ~on_done:(fun _ -> migrated := true)
        ());
  Scenario.run scenario;
  Alcotest.(check bool) "migration completed" true !migrated;
  Alcotest.(check int) "all mappings at B" 10 (Nat.mapping_count b);
  Alcotest.(check int) "source drained" 0 (Nat.mapping_count a);
  (* Every original external port resolves at the new instance to the
     right internal endpoint. *)
  List.iter
    (fun ext_port ->
      match Nat.lookup_external b ~ext_port with
      | Some m ->
        Alcotest.(check bool) "internal port preserved" true (m.Nat.m_int_port >= 6000)
      | None -> Alcotest.failf "external port %d lost in migration" ext_port)
    !ext_ports

let test_lb_migration_keeps_backends () =
  (* The Balance scenario: per-flow assignments move so in-progress
     transactions stay on their server. *)
  let scenario = Scenario.create ~ctrl_config:fast_ctrl () in
  let engine = Scenario.engine scenario in
  let backends = [ Addr.of_string "10.9.0.1"; Addr.of_string "10.9.0.2" ] in
  let a = Load_balancer.create engine ~backends ~name:"lb-a" () in
  let b = Load_balancer.create engine ~backends ~name:"lb-b" () in
  Scenario.attach_mb scenario ~port:"a" ~receive:(Load_balancer.receive a)
    ~base:(Load_balancer.base a) ~impl:(Load_balancer.impl a);
  Scenario.attach_mb scenario ~port:"b" ~receive:(Load_balancer.receive b)
    ~base:(Load_balancer.base b) ~impl:(Load_balancer.impl b);
  Scenario.install_default_route scenario ~port:"a";
  let sink_backends : (int, Addr.t) Hashtbl.t = Hashtbl.create 16 in
  let record_backend (p : Packet.t) =
    match Hashtbl.find_opt sink_backends p.Packet.src_port with
    | Some prev ->
      if not (Addr.equal prev p.Packet.dst_ip) then
        Alcotest.failf "flow %d switched backend mid-stream" p.Packet.src_port
    | None -> Hashtbl.replace sink_backends p.Packet.src_port p.Packet.dst_ip
  in
  Mb_base.set_egress (Load_balancer.base a) record_backend;
  Mb_base.set_egress (Load_balancer.base b) record_backend;
  (* Eight flows sending before and after the migration. *)
  for i = 0 to 7 do
    List.iter
      (fun ts ->
        let p =
          Packet.make
            ~id:((i * 10) + int_of_float ts)
            ~ts:(Time.seconds ts)
            ~src_ip:(Addr.of_string (Printf.sprintf "10.0.0.%d" (1 + i)))
            ~dst_ip:(Addr.of_string "1.1.1.99") ~src_port:(7000 + i) ~dst_port:80
            ~proto:Packet.Tcp ()
        in
        Scenario.at scenario (Time.seconds ts) (fun () ->
            Switch.receive (Scenario.switch scenario) p))
      [ 0.2 +. (0.01 *. float_of_int i); 3.0 +. (0.01 *. float_of_int i) ]
  done;
  Scenario.at scenario (Time.seconds 1.5) (fun () ->
      Migrate.migrate_perflow scenario ~src:"lb-a" ~dst:"lb-b" ~key:Hfl.any
        ~dst_port:"b" ());
  Scenario.run scenario;
  Alcotest.(check int) "all assignments at B" 8 (Load_balancer.assignment_count b);
  Alcotest.(check int) "eight flows observed" 8 (Hashtbl.length sink_backends)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let test_baseline_snapshot_report () =
  let r =
    Baseline_snapshot.run ~trace_params:small_cloud
      ~migrate_key:[ Hfl.Dst_ip http_prefix ]
      ~snapshot_at:10.0 ()
  in
  Alcotest.(check bool) "http + other covers full" true
    (abs (r.Baseline_snapshot.full_delta_bytes
          - (r.Baseline_snapshot.http_delta_bytes + r.Baseline_snapshot.other_delta_bytes))
     <= 1);
  Alcotest.(check bool) "OpenMB moves less than the http image delta" true
    (r.Baseline_snapshot.sdmbn_moved_bytes < r.Baseline_snapshot.http_delta_bytes);
  Alcotest.(check bool) "old instance logs anomalies" true
    (r.Baseline_snapshot.anomalies_old > 0);
  Alcotest.(check bool) "new instance logs anomalies" true
    (r.Baseline_snapshot.anomalies_new > 0)

let test_baseline_holdup () =
  let r =
    Baseline_config_routing.scale_down_holdup
      ~trace_params:
        { Openmb_traffic.University_dc.default_params with n_flows = 800 }
      ~reroute_at:60.0 ()
  in
  Alcotest.(check bool) "deprecated MB held up beyond 1500s" true
    (r.Baseline_config_routing.holdup_seconds > 1500.0);
  (* Conditioned on being active at the reroute, long flows are
     over-represented, so the surviving fraction exceeds the
     unconditional 9%. *)
  Alcotest.(check bool) "a long tail of flows outlasts 1500s" true
    (r.Baseline_config_routing.frac_over_1500 > 0.03
    && r.Baseline_config_routing.frac_over_1500 < 0.5);
  Alcotest.(check bool) "many flows stranded" true
    (r.Baseline_config_routing.stranded_flows > 100)

let test_baseline_re_migration_fails () =
  let r = Baseline_config_routing.re_migration ~routing_lag_packets:10 () in
  Alcotest.(check bool) "encoder eliminated something" true
    (r.Baseline_config_routing.encoded_bytes > 0);
  Alcotest.(check int) "routing lag hit the old decoder" 10
    r.Baseline_config_routing.old_decoder_failures;
  (* The desynchronized caches make (essentially) everything encoded
     unrecoverable. *)
  Alcotest.(check bool) "most encoded bytes undecodable" true
    (float_of_int r.Baseline_config_routing.undecodable_bytes
    > 0.9 *. float_of_int r.Baseline_config_routing.encoded_bytes)

let test_baseline_splitmerge_latency () =
  let r = Baseline_splitmerge.run ~n_chunks:1000 ~rate_pps:1000.0 () in
  Alcotest.(check int) "buffered about rate x halt" 244 r.Baseline_splitmerge.buffered_packets;
  Alcotest.(check bool) "hundreds of ms of added latency" true
    (r.Baseline_splitmerge.avg_added_latency > 0.15);
  Alcotest.(check bool) "bounded" true (r.Baseline_splitmerge.avg_added_latency < 3.0)

let () =
  Alcotest.run "openmb_apps"
    [
      ( "migration",
        [
          Alcotest.test_case "IDS output equals unmodified IDS" `Slow
            test_migration_correctness;
          Alcotest.test_case "latency penalty small" `Slow
            test_migration_latency_penalty_small;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "no over/under reporting" `Slow
            test_scaling_no_over_or_under_reporting;
        ] );
      ("re", [ Alcotest.test_case "live migration all decodable" `Slow
                 test_re_migration_all_decodable ]);
      ("failover", [ Alcotest.test_case "NAT failover" `Quick test_nat_failover ]);
      ( "chain",
        [
          Alcotest.test_case "NAT migration keeps connections" `Quick
            test_nat_migration_keeps_connections;
          Alcotest.test_case "LB migration keeps backends" `Quick
            test_lb_migration_keeps_backends;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "snapshot" `Slow test_baseline_snapshot_report;
          Alcotest.test_case "config+routing holdup" `Quick test_baseline_holdup;
          Alcotest.test_case "config+routing RE" `Quick test_baseline_re_migration_fails;
          Alcotest.test_case "split/merge latency" `Quick test_baseline_splitmerge_latency;
        ] );
    ]
