(* Tests for the traffic generators. *)

open Openmb_sim
open Openmb_net
open Openmb_traffic

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let mk ~id ~ts =
  Packet.make ~id ~ts:(Time.seconds ts) ~src_ip:(Addr.of_string "10.0.0.1")
    ~dst_ip:(Addr.of_string "1.1.1.1") ~src_port:1 ~dst_port:2 ~proto:Packet.Tcp ()

let test_trace_sorting_and_replay () =
  let t = Trace.of_packets [ mk ~id:2 ~ts:2.0; mk ~id:1 ~ts:1.0; mk ~id:3 ~ts:3.0 ] in
  Alcotest.(check int) "count" 3 (Trace.packet_count t);
  Alcotest.(check (float 1e-9)) "duration" 3.0 (Time.to_seconds (Trace.duration t));
  let engine = Engine.create () in
  let seen = ref [] in
  Trace.replay engine t ~into:(fun p ->
      seen := (p.Packet.id, Time.to_seconds (Engine.now engine)) :: !seen);
  Engine.run engine;
  Alcotest.(check (list (pair int (float 1e-9)))) "in order at their timestamps"
    [ (1, 1.0); (2, 2.0); (3, 3.0) ]
    (List.rev !seen)

let test_trace_merge_filter () =
  let a = Trace.of_packets [ mk ~id:1 ~ts:1.0 ] in
  let b = Trace.of_packets [ mk ~id:2 ~ts:0.5 ] in
  let m = Trace.merge [ a; b ] in
  Alcotest.(check int) "merged" 2 (Trace.packet_count m);
  (match Trace.packets m with
  | p :: _ -> Alcotest.(check int) "earliest first" 2 p.Packet.id
  | [] -> Alcotest.fail "empty merge");
  let f = Trace.filter m ~f:(fun p -> p.Packet.id = 1) in
  Alcotest.(check int) "filtered" 1 (Trace.packet_count f)

(* ------------------------------------------------------------------ *)
(* Flow generation                                                     *)
(* ------------------------------------------------------------------ *)

let test_tcp_flow_shape () =
  let ids = Trace.Id_gen.create () in
  let prng = Prng.create ~seed:1 in
  let tuple =
    {
      Five_tuple.src_ip = Addr.of_string "10.0.0.1";
      dst_ip = Addr.of_string "1.1.1.1";
      src_port = 1000;
      dst_port = 80;
      proto = Packet.Tcp;
    }
  in
  let pkts =
    Flow_gen.tcp_flow ~ids ~prng ~tuple ~start:5.0 ~duration:10.0 ~data_packets:6
      ~http:[ ("host", "/uri") ] ()
  in
  Alcotest.(check int) "syn+synack+data+fin" 9 (List.length pkts);
  (match pkts with
  | syn :: synack :: _ ->
    Alcotest.(check bool) "starts with SYN" true syn.Packet.flags.Packet.syn;
    Alcotest.(check bool) "then SYN-ACK" true
      (synack.Packet.flags.Packet.syn && synack.Packet.flags.Packet.ack);
    Alcotest.(check bool) "synack reversed" true
      (Addr.equal synack.Packet.src_ip tuple.Five_tuple.dst_ip)
  | _ -> Alcotest.fail "too few packets");
  let last = List.nth pkts 8 in
  Alcotest.(check bool) "ends with FIN" true last.Packet.flags.Packet.fin;
  Alcotest.(check (float 1e-6)) "fin at start+duration" 15.0
    (Time.to_seconds last.Packet.ts);
  (* Exactly one HTTP request and one response. *)
  let reqs =
    List.filter (fun p -> match p.Packet.app with Packet.Http_request _ -> true | _ -> false) pkts
  in
  let resps =
    List.filter
      (fun p -> match p.Packet.app with Packet.Http_response _ -> true | _ -> false)
      pkts
  in
  Alcotest.(check int) "one request" 1 (List.length reqs);
  Alcotest.(check int) "one response" 1 (List.length resps)

let test_flow_ids_unique () =
  let ids = Trace.Id_gen.create () in
  let prng = Prng.create ~seed:2 in
  let tuple =
    {
      Five_tuple.src_ip = Addr.of_string "10.0.0.1";
      dst_ip = Addr.of_string "1.1.1.1";
      src_port = 1000;
      dst_port = 80;
      proto = Packet.Tcp;
    }
  in
  let a = Flow_gen.tcp_flow ~ids ~prng ~tuple ~start:0.0 ~duration:1.0 ~data_packets:3 () in
  let b = Flow_gen.udp_flow ~ids ~prng ~tuple ~start:0.0 ~duration:1.0 ~data_packets:3 () in
  let all = List.map (fun p -> p.Packet.id) (a @ b) in
  Alcotest.(check int) "unique ids" (List.length all)
    (List.length (List.sort_uniq Int.compare all))

(* ------------------------------------------------------------------ *)
(* Cloud trace                                                         *)
(* ------------------------------------------------------------------ *)

let test_cloud_trace_substreams () =
  let p = Cloud_trace.default_params in
  let t = Cloud_trace.generate p in
  let pkts = Trace.packets t in
  Alcotest.(check bool) "non-empty" true (List.length pkts > 1000);
  let http, other = List.partition Cloud_trace.is_http pkts in
  Alcotest.(check bool) "has http substream" true (List.length http > 0);
  Alcotest.(check bool) "has other substream" true (List.length other > 0);
  (* HTTP packets stay within campus<->cloud_http prefixes. *)
  List.iter
    (fun (pkt : Packet.t) ->
      let ok =
        Addr.in_prefix pkt.dst_ip p.Cloud_trace.cloud_http
        || Addr.in_prefix pkt.src_ip p.Cloud_trace.cloud_http
      in
      if not ok then Alcotest.fail "http packet outside cloud prefix")
    http;
  (* Deterministic for a fixed seed. *)
  let t2 = Cloud_trace.generate p in
  Alcotest.(check int) "deterministic" (Trace.packet_count t) (Trace.packet_count t2)

let test_cloud_trace_flows_complete () =
  (* Every TCP flow in the trace closes (FIN or RST) before it ends, so
     correctness comparisons see completed connections. *)
  let t = Cloud_trace.generate { Cloud_trace.default_params with n_scanners = 0 } in
  let opens = Hashtbl.create 256 and closes = Hashtbl.create 256 in
  List.iter
    (fun (p : Packet.t) ->
      let key =
        Five_tuple.to_string (Five_tuple.canonical (Five_tuple.of_packet p))
      in
      if p.proto = Packet.Tcp then begin
        if p.flags.Packet.syn && not p.flags.Packet.ack then Hashtbl.replace opens key ();
        if p.flags.Packet.fin || p.flags.Packet.rst then Hashtbl.replace closes key ()
      end)
    (Trace.packets t);
  Hashtbl.iter
    (fun key () ->
      if not (Hashtbl.mem closes key) then
        Alcotest.failf "flow %s never closes" key)
    opens

(* ------------------------------------------------------------------ *)
(* University DC trace                                                 *)
(* ------------------------------------------------------------------ *)

let test_university_duration_tail () =
  let prng = Prng.create ~seed:5 in
  let n = 20000 in
  let over = ref 0 in
  for _ = 1 to n do
    if University_dc.sample_duration prng > 1500.0 then incr over
  done;
  let frac = float_of_int !over /. float_of_int n in
  (* The paper observes ~9% of flows above 1500 s. *)
  Alcotest.(check bool) "9% +- 1.5% over 1500s" true (frac > 0.075 && frac < 0.105)

let test_university_trace_generates () =
  let t =
    University_dc.generate { University_dc.default_params with n_flows = 200 }
  in
  Alcotest.(check bool) "packets exist" true (Trace.packet_count t > 1000);
  Alcotest.(check bool) "long tail present" true
    (Time.to_seconds (Trace.duration t) > 1500.0)

(* ------------------------------------------------------------------ *)
(* Redundancy trace                                                    *)
(* ------------------------------------------------------------------ *)

let test_redundancy_trace_classes_disjoint () =
  let p = Openmb_traffic.Redundancy_trace.default_params in
  let t = Redundancy_trace.generate p in
  (* Collect payload tokens per destination class; the popular pools
     must not overlap (intra-class redundancy only). *)
  let tokens_of cls =
    let tbl = Hashtbl.create 4096 in
    List.iter
      (fun (pkt : Packet.t) ->
        if Addr.in_prefix pkt.dst_ip cls then
          match pkt.body with
          | Packet.Raw payload ->
            Array.iter (fun tok -> Hashtbl.replace tbl tok ()) (Payload.tokens payload)
          | Packet.Encoded _ -> ())
      (Trace.packets t);
    tbl
  in
  let a = tokens_of p.Redundancy_trace.class_a and b = tokens_of p.Redundancy_trace.class_b in
  Hashtbl.iter
    (fun tok () ->
      if Hashtbl.mem b tok then Alcotest.failf "token %d appears in both classes" tok)
    a

let test_redundancy_trace_has_repeats () =
  let p = { Redundancy_trace.default_params with n_flows_a = 20; n_flows_b = 20 } in
  let t = Redundancy_trace.generate p in
  let counts = Hashtbl.create 4096 in
  let total = ref 0 in
  List.iter
    (fun (pkt : Packet.t) ->
      match pkt.Packet.body with
      | Packet.Raw payload ->
        Array.iter
          (fun tok ->
            incr total;
            Hashtbl.replace counts tok (1 + Option.value ~default:0 (Hashtbl.find_opt counts tok)))
          (Payload.tokens payload)
      | Packet.Encoded _ -> ())
    (Trace.packets t);
  let repeated =
    Hashtbl.fold (fun _ c acc -> if c > 1 then acc + c else acc) counts 0
  in
  let frac = float_of_int repeated /. float_of_int !total in
  (* Half the tokens come from small zipf pools: a large repeated
     fraction must exist. *)
  Alcotest.(check bool) "repeats present" true (frac > 0.3)

let test_redundancy_class_b_hfl () =
  let p = Redundancy_trace.default_params in
  let hfl = Redundancy_trace.class_b_hfl p in
  let t = Redundancy_trace.generate p in
  let matches =
    List.filter (fun pkt -> Hfl.matches_packet hfl pkt) (Trace.packets t)
  in
  Alcotest.(check bool) "selects class B only" true
    (List.for_all
       (fun (pkt : Packet.t) -> Addr.in_prefix pkt.dst_ip p.Redundancy_trace.class_b)
       matches);
  Alcotest.(check bool) "selects something" true (matches <> [])

(* ------------------------------------------------------------------ *)
(* CBR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cbr_rate_and_flows () =
  let p = { Cbr.default_params with n_flows = 10; rate_pps = 500.0; duration = 2.0 } in
  let t = Cbr.generate p in
  (* ~500 pkt/s for ~1.85 s of data plus 20 handshake packets. *)
  let n = Trace.packet_count t in
  Alcotest.(check bool) "about rate*duration packets" true (n > 900 && n < 1000);
  (* Flow population is exactly n_flows. *)
  let flows = Hashtbl.create 32 in
  List.iter
    (fun (pkt : Packet.t) ->
      Hashtbl.replace flows
        (Five_tuple.to_string (Five_tuple.canonical (Five_tuple.of_packet pkt)))
        ())
    (Trace.packets t);
  Alcotest.(check int) "flow population" 10 (Hashtbl.length flows)

let () =
  Alcotest.run "openmb_traffic"
    [
      ( "trace",
        [
          Alcotest.test_case "sorting and replay" `Quick test_trace_sorting_and_replay;
          Alcotest.test_case "merge and filter" `Quick test_trace_merge_filter;
        ] );
      ( "flow_gen",
        [
          Alcotest.test_case "tcp flow shape" `Quick test_tcp_flow_shape;
          Alcotest.test_case "unique ids" `Quick test_flow_ids_unique;
        ] );
      ( "cloud",
        [
          Alcotest.test_case "substreams" `Quick test_cloud_trace_substreams;
          Alcotest.test_case "flows complete" `Quick test_cloud_trace_flows_complete;
        ] );
      ( "university",
        [
          Alcotest.test_case "duration tail" `Quick test_university_duration_tail;
          Alcotest.test_case "generates" `Quick test_university_trace_generates;
        ] );
      ( "redundancy",
        [
          Alcotest.test_case "classes disjoint" `Quick test_redundancy_trace_classes_disjoint;
          Alcotest.test_case "has repeats" `Quick test_redundancy_trace_has_repeats;
          Alcotest.test_case "class-b hfl" `Quick test_redundancy_class_b_hfl;
        ] );
      ("cbr", [ Alcotest.test_case "rate and flows" `Quick test_cbr_rate_and_flows ]);
    ]
