test/test_mbox.mli:
