test/test_sim.ml: Alcotest Array Channel Dist Engine Float Heap Int List Openmb_sim Prng QCheck2 QCheck_alcotest Recorder Stats Time
