test/test_wire.ml: Alcotest Compress Format Json List Openmb_wire Printf QCheck2 QCheck_alcotest String
