test/test_net.ml: Addr Alcotest Engine Five_tuple Flow_table Fmt Format Hfl Host Link List Openmb_net Openmb_sim Packet Payload Printf QCheck2 QCheck_alcotest Sdn_controller Switch Time
