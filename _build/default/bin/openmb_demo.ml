(* openmb_demo — command-line front end to the OpenMB scenarios.

   Subcommands:
     migrate   IDS live migration with a configurable trace
     scale     monitor scale-up/scale-down cycle
     failover  NAT failure recovery via introspection events
     re        redundancy-elimination decoder migration
     traces    inspect the synthetic trace generators *)

open Cmdliner
open Openmb_sim
open Openmb_net
open Openmb_mbox
open Openmb_apps

let quiesce_ctrl =
  { Openmb_core.Controller.default_config with quiescence = Time.ms 500.0 }

(* --------------------------- migrate ------------------------------ *)

let run_migrate http_flows other_flows duration migrate_at seed =
  let params =
    {
      Openmb_traffic.Cloud_trace.default_params with
      n_http_flows = http_flows;
      n_other_flows = other_flows;
      duration;
      seed;
    }
  in
  let http_prefix = params.Openmb_traffic.Cloud_trace.cloud_http in
  let trace = Openmb_traffic.Cloud_trace.generate params in
  Printf.printf "trace: %d packets, %.0f s\n"
    (Openmb_traffic.Trace.packet_count trace)
    (Time.to_seconds (Openmb_traffic.Trace.duration trace));
  let scenario = Scenario.create ~ctrl_config:quiesce_ctrl () in
  let engine = Scenario.engine scenario in
  let a = Ids.create engine ~name:"ids-a" () in
  let b = Ids.create engine ~name:"ids-b" () in
  Scenario.attach_mb scenario ~port:"a" ~receive:(Ids.receive a) ~base:(Ids.base a)
    ~impl:(Ids.impl a);
  Scenario.attach_mb scenario ~port:"b" ~receive:(Ids.receive b) ~base:(Ids.base b)
    ~impl:(Ids.impl b);
  Scenario.install_default_route scenario ~port:"a";
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));
  Scenario.at scenario (Time.seconds migrate_at) (fun () ->
      Printf.printf "t=%.1fs migrating HTTP flows\n" migrate_at;
      Migrate.migrate_perflow scenario ~src:"ids-a" ~dst:"ids-b"
        ~key:[ Hfl.Dst_ip http_prefix ]
        ~also_route:[ [ Hfl.Src_ip http_prefix ] ]
        ~dst_port:"b"
        ~on_done:(fun r ->
          match r.Migrate.move with
          | Some mr ->
            Printf.printf "t=%.2fs move returned: %d chunks, %d bytes, %d events\n"
              (Time.to_seconds (Engine.now engine))
              mr.Openmb_core.Controller.chunks_moved mr.Openmb_core.Controller.bytes_moved
              mr.Openmb_core.Controller.events_forwarded
          | None -> ())
        ());
  Scenario.run scenario;
  Ids.finalize a;
  Ids.finalize b;
  Printf.printf "conn.log: %d entries at A, %d at B; anomalies %d; alerts %d\n"
    (List.length (Ids.conn_log a))
    (List.length (Ids.conn_log b))
    (Ids.anomalous_entries a + Ids.anomalous_entries b)
    (List.length (Ids.alerts a) + List.length (Ids.alerts b))

(* ---------------------------- scale ------------------------------- *)

let run_scale flows duration up_at down_at seed =
  let trace =
    Openmb_traffic.Cloud_trace.generate
      {
        Openmb_traffic.Cloud_trace.default_params with
        n_http_flows = flows;
        n_other_flows = flows / 2;
        n_scanners = 0;
        duration;
        seed;
      }
  in
  let scenario = Scenario.create ~ctrl_config:quiesce_ctrl () in
  let engine = Scenario.engine scenario in
  let m1 = Monitor.create engine ~name:"prads1" () in
  let m2 = Monitor.create engine ~name:"prads2" () in
  Scenario.attach_mb scenario ~port:"mb1" ~receive:(Monitor.receive m1)
    ~base:(Monitor.base m1) ~impl:(Monitor.impl m1);
  Scenario.attach_mb scenario ~port:"mb2" ~receive:(Monitor.receive m2)
    ~base:(Monitor.base m2) ~impl:(Monitor.impl m2);
  Scenario.install_default_route scenario ~port:"mb1";
  Scenario.inject scenario trace ~into:(Switch.receive (Scenario.switch scenario));
  Scenario.at scenario (Time.seconds up_at) (fun () ->
      Printf.printf "t=%.1fs scale up\n" up_at;
      Scale.scale_up scenario ~existing:"prads1" ~fresh:"prads2"
        ~rebalance:[ Hfl.Src_ip (Addr.prefix_of_string "10.0.0.0/17") ]
        ~dst_port:"mb2"
        ~on_done:(fun r ->
          Printf.printf "t=%.2fs scale-up moved %d chunks\n"
            (Time.to_seconds (Engine.now engine))
            r.Scale.move.Openmb_core.Controller.chunks_moved)
        ());
  Scenario.at scenario (Time.seconds down_at) (fun () ->
      Printf.printf "t=%.1fs scale down\n" down_at;
      Scale.scale_down scenario ~deprecated:"prads2" ~survivor:"prads1" ~dst_port:"mb1"
        ~on_done:(fun r ->
          Printf.printf "t=%.2fs scale-down merged %d shared chunk(s)\n"
            (Time.to_seconds (Engine.now engine))
            r.Scale.merged.Openmb_core.Controller.chunks_moved)
        ());
  Scenario.run scenario;
  let t1 = Monitor.totals m1 and t2 = Monitor.totals m2 in
  Printf.printf "totals: %d pkts (%d survivor + %d residual), %d flows\n"
    (t1.Monitor.tot_pkts + t2.Monitor.tot_pkts)
    t1.Monitor.tot_pkts t2.Monitor.tot_pkts
    (t1.Monitor.tot_new_flows + t2.Monitor.tot_new_flows)

(* --------------------------- failover ----------------------------- *)

let run_failover conns fail_at =
  let scenario = Scenario.create ~ctrl_config:quiesce_ctrl () in
  let engine = Scenario.engine scenario in
  let internal = Addr.prefix_of_string "10.0.0.0/8" in
  let public = Addr.of_string "5.5.5.5" in
  let nat1 = Nat.create engine ~name:"nat1" ~external_ip:public ~internal_prefix:internal () in
  let nat2 = Nat.create engine ~name:"nat2" ~external_ip:public ~internal_prefix:internal () in
  Scenario.attach_mb scenario ~port:"nat1" ~receive:(Nat.receive nat1)
    ~base:(Nat.base nat1) ~impl:(Nat.impl nat1);
  Scenario.attach_mb scenario ~port:"nat2" ~receive:(Nat.receive nat2)
    ~base:(Nat.base nat2) ~impl:(Nat.impl nat2);
  Scenario.install_default_route scenario ~port:"nat1";
  let watcher = Failover.watch scenario ~mb:"nat1" ~codes:[ "nat.new_mapping" ] () in
  for i = 0 to conns - 1 do
    let ts = 0.2 +. (0.02 *. float_of_int i) in
    let p =
      Packet.make ~id:i ~ts:(Time.seconds ts)
        ~src_ip:(Addr.of_string (Printf.sprintf "10.0.%d.%d" (i / 200) (1 + (i mod 200))))
        ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(5000 + i) ~dst_port:443
        ~proto:Packet.Tcp ()
    in
    Scenario.at scenario (Time.seconds ts) (fun () ->
        Switch.receive (Scenario.switch scenario) p)
  done;
  Scenario.at scenario (Time.seconds fail_at) (fun () ->
      Printf.printf "t=%.1fs primary fails (%d mappings mirrored)\n" fail_at
        (Failover.tracked watcher);
      Failover.fail_over watcher ~replacement:"nat2" ~dst_port:"nat2"
        ~on_done:(fun r ->
          Printf.printf "t=%.2fs recovered: %d mappings restored\n"
            (Time.to_seconds (Engine.now engine))
            r.Failover.restored)
        ());
  Scenario.run scenario;
  Printf.printf "replacement holds %d mappings\n" (Nat.mapping_count nat2)

(* ------------------------------ re -------------------------------- *)

let run_re flows pkts migrate_at =
  let params =
    {
      Openmb_traffic.Redundancy_trace.default_params with
      n_flows_a = flows;
      n_flows_b = flows;
      packets_per_flow = pkts;
      duration = migrate_at *. 2.5;
    }
  in
  let scenario = Scenario.create ~ctrl_config:quiesce_ctrl () in
  let engine = Scenario.engine scenario in
  let enc = Re_encoder.create engine ~name:"enc" () in
  let dec_a = Re_decoder.create engine ~name:"dec-a" () in
  let dec_b = Re_decoder.create engine ~name:"dec-b" () in
  Scenario.attach_mb scenario ~port:"decA" ~receive:(Re_decoder.receive dec_a)
    ~base:(Re_decoder.base dec_a) ~impl:(Re_decoder.impl dec_a);
  Scenario.attach_mb scenario ~port:"decB" ~receive:(Re_decoder.receive dec_b)
    ~base:(Re_decoder.base dec_b) ~impl:(Re_decoder.impl dec_b);
  Scenario.install_default_route scenario ~port:"decA";
  Openmb_core.Controller.connect (Scenario.controller scenario)
    (Openmb_core.Mb_agent.create engine ~impl:(Re_encoder.impl enc) ());
  Mb_base.set_egress (Re_encoder.base enc) (Switch.receive (Scenario.switch scenario));
  let trace = Openmb_traffic.Redundancy_trace.generate params in
  Scenario.inject scenario trace ~into:(Re_encoder.receive enc);
  Scenario.at scenario (Time.seconds migrate_at) (fun () ->
      Printf.printf "t=%.1fs migrating the class-B decoder\n" migrate_at;
      Migrate.migrate_re scenario ~orig_decoder:"dec-a" ~new_decoder:"dec-b"
        ~encoder:"enc" ~keep_prefix:params.Openmb_traffic.Redundancy_trace.class_a
        ~move_prefix:params.Openmb_traffic.Redundancy_trace.class_b ~dst_port:"decB" ());
  Scenario.run scenario;
  Printf.printf "encoder eliminated %.2f MB of redundancy across %d caches\n"
    (float_of_int (Re_encoder.encoded_bytes enc) /. 1e6)
    (Re_encoder.num_caches enc);
  Printf.printf "decoded: A %d pkts, B %d pkts; undecodable bytes: %d\n"
    (Re_decoder.packets_decoded dec_a)
    (Re_decoder.packets_decoded dec_b)
    (Re_decoder.undecodable_bytes dec_a + Re_decoder.undecodable_bytes dec_b)

(* ----------------------------- traces ------------------------------ *)

let run_traces () =
  let show name t =
    Printf.printf "%-12s %8d packets  %10d payload bytes  %8.1f s\n" name
      (Openmb_traffic.Trace.packet_count t)
      (Openmb_traffic.Trace.payload_bytes t)
      (Time.to_seconds (Openmb_traffic.Trace.duration t))
  in
  show "cloud" (Openmb_traffic.Cloud_trace.generate Openmb_traffic.Cloud_trace.default_params);
  show "university"
    (Openmb_traffic.University_dc.generate
       { Openmb_traffic.University_dc.default_params with n_flows = 500 });
  show "redundancy"
    (Openmb_traffic.Redundancy_trace.generate Openmb_traffic.Redundancy_trace.default_params);
  show "cbr" (Openmb_traffic.Cbr.generate Openmb_traffic.Cbr.default_params)

(* ------------------------------ CLI -------------------------------- *)

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let migrate_cmd =
  let http = Arg.(value & opt int 80 & info [ "http-flows" ] ~doc:"HTTP flows.") in
  let other = Arg.(value & opt int 40 & info [ "other-flows" ] ~doc:"Other flows.") in
  let duration = Arg.(value & opt float 30.0 & info [ "duration" ] ~doc:"Trace seconds.") in
  let at = Arg.(value & opt float 12.0 & info [ "at" ] ~doc:"Migration instant (s).") in
  Cmd.v (Cmd.info "migrate" ~doc:"IDS live migration")
    Term.(const run_migrate $ http $ other $ duration $ at $ seed_arg)

let scale_cmd =
  let flows = Arg.(value & opt int 100 & info [ "flows" ] ~doc:"HTTP flows.") in
  let duration = Arg.(value & opt float 40.0 & info [ "duration" ] ~doc:"Trace seconds.") in
  let up = Arg.(value & opt float 10.0 & info [ "up-at" ] ~doc:"Scale-up instant.") in
  let down = Arg.(value & opt float 28.0 & info [ "down-at" ] ~doc:"Scale-down instant.") in
  Cmd.v (Cmd.info "scale" ~doc:"Monitor scale-up/down cycle")
    Term.(const run_scale $ flows $ duration $ up $ down $ seed_arg)

let failover_cmd =
  let conns = Arg.(value & opt int 25 & info [ "connections" ] ~doc:"Active connections.") in
  let at = Arg.(value & opt float 4.0 & info [ "at" ] ~doc:"Failure instant (s).") in
  Cmd.v (Cmd.info "failover" ~doc:"NAT failure recovery")
    Term.(const run_failover $ conns $ at)

let re_cmd =
  let flows = Arg.(value & opt int 40 & info [ "flows" ] ~doc:"Flows per class.") in
  let pkts = Arg.(value & opt int 40 & info [ "packets" ] ~doc:"Packets per flow.") in
  let at = Arg.(value & opt float 12.0 & info [ "at" ] ~doc:"Migration instant (s).") in
  Cmd.v (Cmd.info "re" ~doc:"RE decoder live migration")
    Term.(const run_re $ flows $ pkts $ at)

let traces_cmd =
  Cmd.v (Cmd.info "traces" ~doc:"Describe the synthetic traces")
    Term.(const run_traces $ const ())

let () =
  let info = Cmd.info "openmb_demo" ~doc:"OpenMB software-defined middlebox scenarios" in
  exit (Cmd.eval (Cmd.group info [ migrate_cmd; scale_cmd; failover_cmd; re_cmd; traces_cmd ]))
