(* Long-horizon chaos soak: the replicated controller pair under
   production-grade impairment profiles, proven against a fault-free
   single-controller oracle.

   Each iteration derives an impairment plan
   (Faults.random_impairment_plan: per-direction drop / duplication /
   reorder / spikes / distribution-drawn jitter / corruption /
   token-bucket shaping / blackholes, plus partitions and MB crashes)
   and a controller kill schedule from one seed, then ping-pongs the
   full state table between two middleboxes for hours of virtual time:

     submit move -> (maybe kill the leader mid-move) -> move completes
     -> settle -> checkpoint invariants -> next round

   Checkpoint invariants, every round:
   - the source was emptied by the deferred delete (re-issued by a
     takeover if the old leader died holding it);
   - the destination holds exactly the initial table — nothing lost,
     nothing duplicated, byte-for-byte.

   After the last round the final state fingerprint must be
   byte-identical to the oracle's (same rounds, clean plan, single
   controller, no kills), and the first seed is run twice to prove the
   whole soak is deterministic.

   A failing seed prints its plan via Faults.plan_to_string; re-run it
   verbatim with SOAK_PLAN='plan{...}'.  Knobs: SOAK_ITERS (default
   10), SOAK_SEED, SOAK_ROUNDS, SOAK_FLOWS. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_apps

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try max 1 (int_of_string s) with _ -> default)
  | None -> default

let soak_iters = env_int "SOAK_ITERS" 10
let base_seed = env_int "SOAK_SEED" 0xA05ED
let soak_rounds = env_int "SOAK_ROUNDS" 12
let soak_flows = env_int "SOAK_FLOWS" 48

(* Virtual-time shape: rounds are chained (next submission only after
   the previous move completed and settled), so pathologies stretch the
   run instead of overlapping rounds.  [settle] must exceed the longest
   clamped pathology window plus the delete's retry backoff cap, or a
   checkpoint could observe a deferred delete still stuck behind a
   partition. *)
let settle = Time.seconds 600.0
let est_horizon = Time.seconds (float_of_int soak_rounds *. 800.0)

(* Op-layer patience: idempotent ops (puts, deletes, aborts) must
   survive the longest clamped outage (120 s) on retries alone, while
   non-retryable gets still fail fast and roll the move back to the
   replica layer.  The base timeout must clear the clamped jitter tail
   (pareto draws reach 20 s) with room to spare: a 2 s timeout turns
   every get into a coin flip against the jitter distribution and a
   move into dozens of backoff-capped re-runs. *)
let soak_ctrl_config =
  {
    Controller.default_config with
    quiescence = Time.seconds 5.0;
    channel_latency = Time.us 100.0;
    request_timeout = Time.seconds 45.0;
    retry_backoff_cap = Time.seconds 90.0;
    max_retries = 16;
  }

let soak_replica_config =
  {
    Controller_replica.default_config with
    heartbeat_every = Time.ms 250.0;
    (* Must exceed the worst-case clamped log-link jitter (a constant
       5 s shifts every heartbeat past a smaller threshold, and the
       detector then deposes a perfectly healthy leader every cycle,
       forever).  8 s clears the 5 s constant/uniform clamp with margin
       while heavy-tailed draws still need ~30 consecutive >8 s delays
       to fake a silence — vanishingly unlikely. *)
    failover_timeout = Time.seconds 8.0;
    move_retry_backoff = Time.seconds 1.0;
    move_retry_cap = Time.seconds 60.0;
    (* Effectively unbounded: every injected pathology is bounded, so a
       retried move eventually lands; a client-visible failure would
       diverge from the oracle and fail the fingerprint check anyway. *)
    max_move_attempts = 10_000;
    cleanup_linger = Time.seconds 300.0;
    ctrl = soak_ctrl_config;
  }

(* Clamp the generator's horizon-scaled pathology windows so every
   outage is strictly shorter than [settle] (see above).  Start times
   still span the whole run; only durations are bounded.  Purely
   structural, so the clamped plan round-trips and re-runs verbatim. *)
let bound_for_soak (plan : Faults.plan) =
  let clamp_t cap t = if Time.compare t cap > 0 then cap else t in
  let window = Time.seconds 120.0 in
  let clamp_jitter = function
    | None -> None
    | Some spec ->
      Some
        (match spec with
        | Dist.Constant v -> Dist.Constant (Float.min v 5.0)
        | Dist.Uniform_spec { lo; hi } ->
          Dist.Uniform_spec { lo = Float.min lo 5.0; hi = Float.min hi 5.0 }
        | Dist.Exponential_spec { mean } ->
          Dist.Exponential_spec { mean = Float.min mean 1.0 }
        | Dist.Normal_spec { mean; stddev } ->
          Dist.Normal_spec { mean = Float.min mean 2.0; stddev = Float.min stddev 1.0 }
        | Dist.Lognormal_spec { mu; sigma } ->
          Dist.Lognormal_spec { mu = Float.min mu 0.0; sigma = Float.min sigma 0.5 }
        | Dist.Pareto_spec { shape; lo; hi } ->
          let lo = Float.min lo 1.0 in
          Dist.Pareto_spec { shape; lo; hi = Float.min hi 20.0 })
  in
  let clamp_dir (d : Faults.dir_profile) =
    {
      d with
      Faults.reorder_window = clamp_t (Time.seconds 5.0) d.Faults.reorder_window;
      spike_delay = clamp_t (Time.seconds 10.0) d.Faults.spike_delay;
      jitter = clamp_jitter d.Faults.jitter;
      rate =
        Option.map
          (fun (r : Faults.rate_limit) ->
            { r with Faults.max_queue = clamp_t (Time.seconds 10.0) r.Faults.max_queue })
          d.Faults.rate;
      blackholes =
        List.map
          (fun (b : Faults.blackhole) ->
            {
              b with
              Faults.bh_until = clamp_t Time.(b.Faults.bh_from + window) b.Faults.bh_until;
            })
          d.Faults.blackholes;
    }
  in
  {
    plan with
    Faults.link =
      {
        Faults.fwd = clamp_dir plan.Faults.link.Faults.fwd;
        rev = clamp_dir plan.Faults.link.Faults.rev;
      };
    partitions =
      List.map
        (fun (p : Faults.partition) ->
          {
            p with
            Faults.part_until =
              clamp_t Time.(p.Faults.part_from + window) p.Faults.part_until;
          })
        plan.Faults.partitions;
    crashes =
      List.map
        (fun (mb, (c : Faults.crash)) ->
          ( mb,
            {
              c with
              Faults.restart_after =
                Some
                  (match c.Faults.restart_after with
                  | Some r -> clamp_t window r
                  | None -> window);
            } ))
        plan.Faults.crashes;
  }

(* ------------------------------------------------------------------ *)
(* Controller kill schedule                                            *)
(* ------------------------------------------------------------------ *)

type kill = {
  k_delta : Time.t;  (* after the round's submission *)
  k_revive : Time.t;  (* after the kill *)
  k_target : [ `Leader | `Standby ];
}

(* Drawn entirely up front from the plan seed, so the schedule is a
   pure function of the printed plan and a SOAK_PLAN re-run reproduces
   it exactly.  At least one round always kills the leader almost
   immediately after submission — the mid-move takeover the soak
   exists to prove. *)
let kill_schedule ~seed ~rounds =
  let g = Prng.create ~seed:(seed lxor 0x4B115) in
  let kills =
    Array.init rounds (fun _ ->
        if Prng.chance g 0.35 then
          Some
            {
              k_delta = Time.seconds (0.01 +. Prng.float g 1.5);
              k_revive = Time.seconds (3.0 +. Prng.float g 12.0);
              k_target = (if Prng.chance g 0.8 then `Leader else `Standby);
            }
        else None)
  in
  let first_leader_kill =
    Array.to_list kills
    |> List.mapi (fun i k -> (i, k))
    |> List.find_opt (fun (_, k) ->
           match k with Some { k_target = `Leader; _ } -> true | _ -> false)
  in
  (* The forced kill also pins its revive past the failure detector's
     window, so at least one round per seed exercises the
     standby-initiated takeover (a revive that beats the detector makes
     the old leader cold-start-promote itself instead, which is a
     different — also covered — path). *)
  (match first_leader_kill with
  | Some (i, Some k) ->
    kills.(i) <- Some { k with k_delta = Time.ms 5.0; k_revive = Time.seconds 20.0 }
  | Some (_, None) | None ->
    kills.(rounds / 2) <-
      Some { k_delta = Time.ms 5.0; k_revive = Time.seconds 20.0; k_target = `Leader });
  kills

(* ------------------------------------------------------------------ *)
(* One soak run (chaos or oracle)                                      *)
(* ------------------------------------------------------------------ *)

type soak_stats = {
  s_fingerprint : (string * string * string) list;
      (* (mb, key, value) for every resident entry, sorted *)
  s_failure : string option;  (* first violated invariant, if any *)
  s_failovers : int;
  s_moves_rerun : int;
  s_deletes_reissued : int;
  s_kills_fired : int;
}

let fingerprint mbs =
  List.concat_map
    (fun (name, mb) ->
      List.map (fun (k, v) -> (name, "s:" ^ k, v)) (Dummy_mb.support_entries mb)
      @ List.map (fun (k, v) -> (name, "r:" ^ k, v)) (Dummy_mb.report_entries mb))
    mbs
  |> List.sort compare

let soak_debug = Sys.getenv_opt "SOAK_DEBUG" <> None

(* The chaos side always carries the observability stack: a coarse
   scraper over the registry, an SLO on the replication-log lag, and a
   flight recorder armed to capture a post-mortem bundle on the first
   breach.  A failing run writes the bundle to soak_flight.json — the
   black box riding along with the printed plan.  [strict_slo] adds a
   deliberately unmeetable objective (any fault-layer drop breaches) so
   the bundle path itself is testable on a healthy seed. *)
let run_soak ?(strict_slo = false) ~plan ~use_replica ~kills () =
  let tel = Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  let recorder = if soak_debug then Some (Recorder.create engine) else None in
  let faults = Faults.create ~telemetry:tel engine plan in
  let mb_a = Dummy_mb.create engine ~name:"mb-a" () in
  let mb_b = Dummy_mb.create engine ~name:"mb-b" () in
  Dummy_mb.populate mb_a ~n:soak_flows;
  let initial = Dummy_mb.support_entries mb_a in
  let agent mb = Mb_agent.create engine ~impl:(Dummy_mb.impl mb) () in
  let replica = ref None in
  let submit_move, finish =
    if use_replica then begin
      let r =
        Controller_replica.create engine ~config:soak_replica_config ?recorder
          ~faults ~telemetry:tel ()
      in
      Controller_replica.connect r (agent mb_a);
      Controller_replica.connect r (agent mb_b);
      replica := Some r;
      ( (fun ~src ~dst ~on_done -> Controller_replica.move r ~src ~dst ~key:Hfl.any ~on_done),
        fun () -> Controller_replica.stop r )
    end
    else begin
      let c =
        Controller.create engine ~config:soak_ctrl_config ?recorder ~faults
          ~telemetry:tel ()
      in
      Controller.connect c (agent mb_a);
      Controller.connect c (agent mb_b);
      ( (fun ~src ~dst ~on_done ->
          Controller.move_internal c ~src ~dst ~key:Hfl.any ~on_done),
        fun () -> () )
    end
  in
  let failure = ref None in
  let kills_fired = ref 0 in
  let rounds_done = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> if !failure = None then failure := Some s) fmt in
  let mb_named = function "mb-a" -> mb_a | _ -> mb_b in
  let checkpoint r ~src ~dst =
    let src_e = Dummy_mb.support_entries (mb_named src)
    and dst_e = Dummy_mb.support_entries (mb_named dst) in
    if src_e <> [] then
      fail "round %d: source %s not emptied by deferred delete (%d entries left)" r src
        (List.length src_e);
    if dst_e <> initial then
      fail "round %d: destination %s diverged (%d entries, expected %d, equal=%b)" r dst
        (List.length dst_e) (List.length initial)
        (List.length dst_e = List.length initial)
  in
  let schedule_kill (k : kill) =
    match !replica with
    | None -> ()
    | Some r ->
      ignore
        (Engine.schedule_after engine k.k_delta (fun () ->
             let victim =
               match k.k_target with
               | `Leader -> Controller_replica.leader_name r
               | `Standby -> (
                 match
                   ( Controller_replica.role r ~name:"ctrl-a",
                     Controller_replica.role r ~name:"ctrl-b" )
                 with
                 | `Standby, _ -> Some "ctrl-a"
                 | _, `Standby -> Some "ctrl-b"
                 | _ -> None)
             in
             match victim with
             | None -> ()
             | Some name ->
               incr kills_fired;
               Controller_replica.kill r ~name;
               ignore
                 (Engine.schedule_after engine k.k_revive (fun () ->
                      Controller_replica.revive r ~name))))
  in
  let rec round r =
    if r >= soak_rounds || !failure <> None then finish ()
    else begin
      let src, dst = if r mod 2 = 0 then ("mb-a", "mb-b") else ("mb-b", "mb-a") in
      (match kills.(r) with Some k -> schedule_kill k | None -> ());
      submit_move ~src ~dst ~on_done:(fun res ->
          match res with
          | Error e ->
            fail "round %d: move %s->%s failed: %s" r src dst (Errors.to_string e);
            finish ()
          | Ok _ ->
            ignore
              (Engine.schedule_after engine settle (fun () ->
                   checkpoint r ~src ~dst;
                   rounds_done := r + 1;
                   round (r + 1))))
    end
  in
  let recorder_fr =
    if use_replica then begin
      let ts = Timeseries.create ~cap:512 engine in
      List.iter
        (fun n ->
          Timeseries.add ts ~name:n (Timeseries.Counter (Telemetry.counter tel n)))
        [ "controller.msgs"; "controller.op_retries"; "faults.dropped";
          "replica.failovers" ];
      Timeseries.add ts ~name:"replica.log_lag" ~mode:Timeseries.Max
        (Timeseries.Gauge (Telemetry.gauge tel "replica.log_lag"));
      let slo = Slo.create ts in
      (* Sustained unacked-op backlog far beyond the table size means
         replication stopped draining — bounded outages recover well
         inside the 60-sample (5-minute) window. *)
      Slo.add slo
        (Slo.objective ~budget:0.5
           ~windows:[ (60, 1.0) ]
           ~name:"log-lag-bounded" ~series:"replica.log_lag" Slo.Le
           (float_of_int (soak_flows * 4)));
      if strict_slo then
        Slo.add slo
          (Slo.objective ~signal:Slo.Delta ~budget:1e-9
             ~windows:[ (1, 1.0) ]
             ~name:"no-drops-ever" ~series:"faults.dropped" Slo.Le 0.0);
      Slo.attach slo;
      let fr =
        Flight_recorder.create ~telemetry:tel ~timeseries:ts ~slo
          ~fault_plan:(Faults.plan_to_string plan) ()
      in
      Flight_recorder.arm fr ~engine;
      Timeseries.start ts ~every:(Time.seconds 5.0);
      Some fr
    end
    else None
  in
  round 0;
  (* Liveness watchdog: a move that never completes (or a failover that
     never converges) would otherwise keep the heartbeat timers alive
     and hang Engine.run forever.  The far-future event itself is free
     — the timer wheel jumps straight to it once everything drains. *)
  ignore
    (Engine.schedule_after engine
       (Time.seconds (float_of_int soak_rounds *. 2000.0))
       (fun () ->
         if !rounds_done < soak_rounds && !failure = None then begin
           fail "soak hung: only %d/%d rounds completed by the watchdog deadline"
             !rounds_done soak_rounds;
           finish ()
         end));
  Engine.run engine;
  (match !replica with
  | Some r ->
    if !failure = None && !kills_fired > 0 && Controller_replica.failovers r = 0 then
      fail "%d controller kills fired but no takeover happened" !kills_fired
  | None -> ());
  (* SOAK_DEBUG=1: dump replica state and the event-timeline tail of a
     failing run — the first stop of the triage recipe in EXPERIMENTS.md. *)
  if soak_debug && !failure <> None then begin
    Printf.eprintf "--- SOAK_DEBUG: %s\n" (Option.value ~default:"?" !failure);
    (match !replica with
    | Some r ->
      Printf.eprintf
        "    epoch=%d leader=%s roles=a:%s/b:%s pending=%d failovers=%d \
         retries=%d reruns=%d resubmitted=%d redeletes=%d snapshots=%d \
         retrans=%d\n"
        (Controller_replica.epoch r)
        (Option.value ~default:"none" (Controller_replica.leader_name r))
        (match Controller_replica.role r ~name:"ctrl-a" with
        | `Leader -> "L" | `Standby -> "S" | `Down -> "D")
        (match Controller_replica.role r ~name:"ctrl-b" with
        | `Leader -> "L" | `Standby -> "S" | `Down -> "D")
        (Controller_replica.pending_moves r)
        (Controller_replica.failovers r)
        (Controller_replica.moves_retried r)
        (Controller_replica.moves_rerun r)
        (Controller_replica.moves_resubmitted r)
        (Controller_replica.deletes_reissued r)
        (Controller_replica.snapshots r)
        (Controller_replica.log_retransmits r)
    | None -> ());
    (match recorder with
    | Some rec_ ->
      let entries = Recorder.entries rec_ in
      let n = List.length entries in
      let tail = if n > 120 then List.filteri (fun i _ -> i >= n - 120) entries else entries in
      List.iter (fun e -> Format.eprintf "    %a@." Recorder.pp_entry e) tail
    | None -> ())
  end;
  (* A failing chaos run ships its black box: the bundle captured at
     the first SLO breach if one fired, otherwise a fresh dump of the
     end-of-run state. *)
  (match (recorder_fr, !failure) with
  | Some fr, Some msg ->
    if Flight_recorder.dumps fr = 0 then
      ignore (Flight_recorder.dump fr ~now:(Engine.now engine) ~reason:msg);
    Out_channel.with_open_text "soak_flight.json" (fun oc ->
        Out_channel.output_string oc
          (Option.value ~default:"{}" (Flight_recorder.last_bundle fr)));
    Printf.eprintf "soak: flight-recorder bundle written to soak_flight.json\n"
  | _ -> ());
  ( {
      s_fingerprint = fingerprint [ ("mb-a", mb_a); ("mb-b", mb_b) ];
      s_failure = !failure;
      s_failovers =
        (match !replica with Some r -> Controller_replica.failovers r | None -> 0);
      s_moves_rerun =
        (match !replica with Some r -> Controller_replica.moves_rerun r | None -> 0);
      s_deletes_reissued =
        (match !replica with Some r -> Controller_replica.deletes_reissued r | None -> 0);
      s_kills_fired = !kills_fired;
    },
    recorder_fr )

(* ------------------------------------------------------------------ *)
(* The soak proper                                                     *)
(* ------------------------------------------------------------------ *)

let no_kills = Array.make soak_rounds None

let triage_hint plan =
  Printf.sprintf
    "re-run verbatim: SOAK_PLAN='%s' SOAK_ROUNDS=%d SOAK_FLOWS=%d dune exec \
     test/test_soak.exe"
    (Faults.plan_to_string plan) soak_rounds soak_flows

let soak_one_plan plan =
  let kills = kill_schedule ~seed:plan.Faults.seed ~rounds:soak_rounds in
  (* Fault-free single-controller oracle of the same scenario. *)
  let oracle, _ =
    run_soak ~plan:(Faults.clean_plan ~seed:plan.Faults.seed) ~use_replica:false
      ~kills:no_kills ()
  in
  (match oracle.s_failure with
  | Some msg -> Alcotest.failf "seed %d: oracle run failed: %s" plan.Faults.seed msg
  | None -> ());
  let chaos, _ = run_soak ~plan ~use_replica:true ~kills () in
  (match chaos.s_failure with
  | Some msg ->
    Alcotest.failf "seed %d: %s\n  plan: %s\n  %s" plan.Faults.seed msg
      (Faults.plan_to_string plan) (triage_hint plan)
  | None -> ());
  if chaos.s_fingerprint <> oracle.s_fingerprint then
    Alcotest.failf
      "seed %d: final state fingerprint diverged from oracle (%d vs %d entries)\n\
      \  plan: %s\n\
      \  %s"
      plan.Faults.seed
      (List.length chaos.s_fingerprint)
      (List.length oracle.s_fingerprint)
      (Faults.plan_to_string plan) (triage_hint plan);
  chaos

let test_soak_matrix () =
  match Sys.getenv_opt "SOAK_PLAN" with
  | Some s ->
    let plan = Faults.plan_of_string s in
    let outcome = soak_one_plan plan in
    Printf.printf "SOAK_PLAN seed=%d: ok (failovers=%d reruns=%d redeletes=%d kills=%d)\n"
      plan.Faults.seed outcome.s_failovers outcome.s_moves_rerun
      outcome.s_deletes_reissued outcome.s_kills_fired
  | None ->
    let failovers = ref 0 and reruns = ref 0 and redeletes = ref 0 in
    for i = 0 to soak_iters - 1 do
      let seed = base_seed + i in
      let plan =
        bound_for_soak
          (Faults.random_impairment_plan ~seed ~mbs:[ "mb-a"; "mb-b" ]
             ~horizon:est_horizon)
      in
      let outcome = soak_one_plan plan in
      failovers := !failovers + outcome.s_failovers;
      reruns := !reruns + outcome.s_moves_rerun;
      redeletes := !redeletes + outcome.s_deletes_reissued
    done;
    (* The matrix must actually have exercised failover machinery: the
       forced mid-move leader kill guarantees at least one takeover per
       seed. *)
    Alcotest.(check bool)
      (Printf.sprintf "soak exercised takeovers (%d across %d seeds)" !failovers
         soak_iters)
      true
      (!failovers >= soak_iters);
    Printf.printf "soak: %d seeds, %d failovers, %d move re-runs, %d deletes re-issued\n"
      soak_iters !failovers !reruns !redeletes

(* The soak is deterministic: one full iteration repeated bit-identically
   (fingerprint and every replica-level counter). *)
let test_soak_determinism () =
  let plan =
    bound_for_soak
      (Faults.random_impairment_plan ~seed:base_seed ~mbs:[ "mb-a"; "mb-b" ]
         ~horizon:est_horizon)
  in
  let kills = kill_schedule ~seed:plan.Faults.seed ~rounds:soak_rounds in
  let first, _ = run_soak ~plan ~use_replica:true ~kills () in
  let second, _ = run_soak ~plan ~use_replica:true ~kills () in
  Alcotest.(check bool) "same plan, same soak outcome" true (first = second)

(* Forced SLO breach: [strict_slo] adds a deliberately unmeetable
   objective (any fault-layer drop in a scrape interval breaches), so a
   healthy chaos seed trips it almost immediately and the armed flight
   recorder must ship a post-mortem bundle carrying the breached series
   window, the span-ring tail, and the replayable plan string verbatim
   — the triage contract for real failures. *)
let test_flight_recorder_on_breach () =
  let plan =
    bound_for_soak
      (Faults.random_impairment_plan ~seed:base_seed ~mbs:[ "mb-a"; "mb-b" ]
         ~horizon:est_horizon)
  in
  let kills = kill_schedule ~seed:plan.Faults.seed ~rounds:soak_rounds in
  let stats, fr = run_soak ~strict_slo:true ~plan ~use_replica:true ~kills () in
  (match stats.s_failure with
  | Some msg -> Alcotest.failf "strict-SLO run unexpectedly failed: %s" msg
  | None -> ());
  let fr = match fr with Some fr -> fr | None -> Alcotest.fail "no flight recorder" in
  Alcotest.(check int) "first breach captured exactly one bundle" 1
    (Flight_recorder.dumps fr);
  let bundle =
    match Flight_recorder.last_bundle fr with
    | Some b -> b
    | None -> Alcotest.fail "no bundle captured"
  in
  let open Openmb_wire in
  let fields =
    match Json.of_string bundle with
    | Json.Assoc fields -> fields
    | _ -> Alcotest.fail "bundle is not a JSON object"
    | exception Json.Parse_error _ -> Alcotest.fail "bundle failed to parse"
  in
  (match List.assoc_opt "fault_plan" fields with
  | Some (Json.String s) ->
    Alcotest.(check string) "replayable plan embedded verbatim"
      (Faults.plan_to_string plan) s
  | _ -> Alcotest.fail "bundle carries no fault_plan string");
  (match List.assoc_opt "span_tail" fields with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "bundle carries no span tail");
  (match List.assoc_opt "breaches" fields with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "bundle carries no breach log");
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "breached series window present" true
    (contains ~sub:"\"faults.dropped\"" bundle);
  Alcotest.(check bool) "breaching objective named" true
    (contains ~sub:"no-drops-ever" bundle)

(* The plan a failing seed would print reproduces its run: parse of
   print is structurally identical, so the SOAK_PLAN path re-runs the
   exact same decisions. *)
let test_plan_roundtrip_soak () =
  for i = 0 to 4 do
    let plan =
      bound_for_soak
        (Faults.random_impairment_plan ~seed:(base_seed + i) ~mbs:[ "mb-a"; "mb-b" ]
           ~horizon:est_horizon)
    in
    let reparsed = Faults.plan_of_string (Faults.plan_to_string plan) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: soak plan round-trips exactly" (base_seed + i))
      true (reparsed = plan)
  done

let () =
  Alcotest.run "soak"
    [
      ( "soak",
        [
          Alcotest.test_case "plan round-trip" `Quick test_plan_roundtrip_soak;
          Alcotest.test_case "flight recorder on breach" `Quick
            test_flight_recorder_on_breach;
          Alcotest.test_case "determinism" `Quick test_soak_determinism;
          Alcotest.test_case "chaos soak matrix" `Slow test_soak_matrix;
        ] );
    ]
