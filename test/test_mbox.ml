(* Tests for the middlebox implementations. *)

open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core
open Openmb_mbox

let mk_packet ?(id = 0) ?(ts = 0.0) ?(src = "10.0.0.1") ?(dst = "1.1.1.5") ?(sport = 1234)
    ?(dport = 80) ?(proto = Packet.Tcp) ?(flags = Packet.no_flags) ?(app = Packet.Plain)
    ?(tokens = [||]) () =
  Packet.make ~flags ~app
    ~body:(Packet.Raw (Payload.of_tokens tokens))
    ~id ~ts:(Time.seconds ts) ~src_ip:(Addr.of_string src) ~dst_ip:(Addr.of_string dst)
    ~src_port:sport ~dst_port:dport ~proto ()

let run_all engine = Engine.run engine

(* ------------------------------------------------------------------ *)
(* State table                                                         *)
(* ------------------------------------------------------------------ *)

let test_state_table_basic () =
  let t = State_table.create ~granularity:Hfl.full_granularity () in
  let tup = Five_tuple.of_packet (mk_packet ()) in
  let entry, created = State_table.find_or_create t tup ~default:(fun () -> 1) in
  Alcotest.(check bool) "created" true created;
  let entry2, created2 = State_table.find_or_create t tup ~default:(fun () -> 2) in
  Alcotest.(check bool) "found" false created2;
  Alcotest.(check int) "same entry" entry.State_table.value entry2.State_table.value;
  Alcotest.(check int) "size" 1 (State_table.size t)

let test_state_table_bidir () =
  let t = State_table.create ~granularity:Hfl.full_granularity () in
  let tup = Five_tuple.of_packet (mk_packet ()) in
  ignore (State_table.find_or_create t tup ~default:(fun () -> 7));
  (match State_table.find_bidir t (Five_tuple.reverse tup) with
  | Some e -> Alcotest.(check int) "reverse finds" 7 e.State_table.value
  | None -> Alcotest.fail "reverse lookup failed");
  Alcotest.(check bool) "exact reverse lookup misses" true
    (State_table.find t (Five_tuple.reverse tup) = None)

let test_state_table_matching_scan () =
  let t = State_table.create ~granularity:Hfl.full_granularity () in
  for i = 0 to 9 do
    let tup =
      Five_tuple.of_packet (mk_packet ~src:(Printf.sprintf "10.0.0.%d" i) ~sport:(1000 + i) ())
    in
    ignore (State_table.find_or_create t tup ~default:(fun () -> i))
  done;
  let hits = State_table.matching t (Hfl.of_string "nw_src=10.0.0.4/30") in
  Alcotest.(check int) "prefix scan" 4 (List.length hits);
  let removed = State_table.remove_matching t (Hfl.of_string "nw_src=10.0.0.4/30") in
  Alcotest.(check int) "removed" 4 (List.length removed);
  Alcotest.(check int) "left" 6 (State_table.size t)

let test_state_table_insert_clears_moved () =
  let t = State_table.create ~granularity:Hfl.full_granularity () in
  let tup = Five_tuple.of_packet (mk_packet ()) in
  let entry, _ = State_table.find_or_create t tup ~default:(fun () -> 0) in
  entry.State_table.moved <- true;
  State_table.insert t ~key:entry.State_table.key 9;
  match State_table.find t tup with
  | Some e ->
    Alcotest.(check int) "value replaced" 9 e.State_table.value;
    Alcotest.(check bool) "moved cleared" false e.State_table.moved
  | None -> Alcotest.fail "entry vanished"

let test_state_table_indexed_equivalence () =
  let linear = State_table.create ~granularity:Hfl.full_granularity () in
  let indexed = State_table.create ~indexed:true ~granularity:Hfl.full_granularity () in
  for i = 0 to 49 do
    let tup =
      Five_tuple.of_packet
        (mk_packet ~src:(Printf.sprintf "10.0.%d.%d" (i mod 3) (1 + i)) ~sport:(1000 + i) ())
    in
    ignore (State_table.find_or_create linear tup ~default:(fun () -> i));
    ignore (State_table.find_or_create indexed tup ~default:(fun () -> i))
  done;
  let queries =
    [
      Hfl.of_string "nw_src=10.0.0.5/32";
      Hfl.of_string "nw_src=10.0.1.0/24";
      Hfl.of_string "nw_src=10.0.0.5/32,tp_src=1004";
      Hfl.of_string "nw_src=192.168.0.1/32";
      Hfl.any;
    ]
  in
  List.iter
    (fun q ->
      let keys t =
        List.sort String.compare
          (List.map (fun (e : int State_table.entry) -> Hfl.to_string e.key)
             (State_table.matching t q))
      in
      Alcotest.(check (list string))
        (Printf.sprintf "same matches for %s" (Hfl.to_string q))
        (keys linear) (keys indexed))
    queries;
  (* Removal keeps the index consistent. *)
  ignore (State_table.remove_matching indexed (Hfl.of_string "nw_src=10.0.0.5/32"));
  Alcotest.(check (list string)) "removed from index" []
    (List.map
       (fun (e : int State_table.entry) -> Hfl.to_string e.key)
       (State_table.matching indexed (Hfl.of_string "nw_src=10.0.0.5/32")))

let prop_state_table_index_equivalence =
  QCheck2.Test.make ~name:"indexed matching equals linear matching" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 40) (pair (int_bound 8) (int_range 1 5000)))
        (int_bound 8))
    (fun (flows, q_host) ->
      let mk_tab indexed =
        let t = State_table.create ~indexed ~granularity:Hfl.full_granularity () in
        List.iter
          (fun (host, port) ->
            let tup =
              Five_tuple.of_packet
                (mk_packet ~src:(Printf.sprintf "10.0.0.%d" (1 + host)) ~sport:port ())
            in
            ignore (State_table.find_or_create t tup ~default:(fun () -> port)))
          flows;
        t
      in
      let q = Hfl.of_string (Printf.sprintf "nw_src=10.0.0.%d/32" (1 + q_host)) in
      let keys t =
        List.sort String.compare
          (List.map (fun (e : int State_table.entry) -> Hfl.to_string e.key)
             (State_table.matching t q))
      in
      keys (mk_tab false) = keys (mk_tab true))

(* A random HFL filter of varying coarseness: a source prefix (host
   bits cleared) optionally conjoined with a source-port constraint. *)
let filter_gen =
  QCheck2.Gen.(
    map
      (fun (host, len, port) ->
        let base =
          match len with
          | 32 -> 1 + host
          | 30 -> (1 + host) land lnot 3
          | _ -> 0
        in
        let prefix = Printf.sprintf "nw_src=10.0.0.%d/%d" base len in
        match port with
        | None -> Hfl.of_string prefix
        | Some p -> Hfl.of_string (Printf.sprintf "%s,tp_src=%d" prefix p))
      (triple (int_bound 8) (oneofl [ 8; 24; 30; 32 ]) (opt (int_range 1 5000))))

let flow_tuple (host, port) =
  Five_tuple.of_packet
    (mk_packet ~src:(Printf.sprintf "10.0.0.%d" (1 + host)) ~sport:port ())

let entry_keys entries =
  List.sort String.compare
    (List.map (fun (e : int State_table.entry) -> Hfl.to_string e.key) entries)

let prop_state_table_index_remove_equivalence =
  QCheck2.Test.make ~name:"indexed remove_matching equals linear" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 40) (pair (int_bound 8) (int_range 1 5000)))
        filter_gen)
    (fun (flows, q) ->
      let mk_tab indexed =
        let t = State_table.create ~indexed ~granularity:Hfl.full_granularity () in
        List.iter
          (fun flow ->
            ignore (State_table.find_or_create t (flow_tuple flow) ~default:(fun () -> 0)))
          flows;
        t
      in
      let a = mk_tab false and b = mk_tab true in
      entry_keys (State_table.remove_matching a q)
      = entry_keys (State_table.remove_matching b q)
      && State_table.size a = State_table.size b
      && entry_keys (State_table.matching a Hfl.any)
         = entry_keys (State_table.matching b Hfl.any))

let prop_state_table_packed_equivalence =
  (* Full-granularity tables keyed by packed five-tuples must be
     observationally identical to the string-keyed implementation,
     including reverse-direction lookups and removal by filter. *)
  QCheck2.Test.make ~name:"packed keys equal string keys" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 40) (triple (int_bound 8) (int_range 1 5000) bool))
        filter_gen)
    (fun (flows, q) ->
      let tuple_of (host, port, reversed) =
        let tup = flow_tuple (host, port) in
        if reversed then Five_tuple.reverse tup else tup
      in
      let mk_tab packed =
        let t = State_table.create ~packed ~granularity:Hfl.full_granularity () in
        List.iter
          (fun flow ->
            ignore (State_table.find_or_create t (tuple_of flow) ~default:(fun () -> 0)))
          flows;
        t
      in
      let a = mk_tab true and b = mk_tab false in
      let probe t tup =
        let key (e : int State_table.entry) = Hfl.to_string e.key in
        ( Option.map key (State_table.find t tup),
          Option.map key (State_table.find t (Five_tuple.reverse tup)),
          Option.map key (State_table.find_bidir t (Five_tuple.reverse tup)) )
      in
      let lookups_agree =
        List.for_all (fun flow -> probe a (tuple_of flow) = probe b (tuple_of flow)) flows
      in
      entry_keys (State_table.matching a q) = entry_keys (State_table.matching b q)
      && lookups_agree
      && entry_keys (State_table.remove_matching a q)
         = entry_keys (State_table.remove_matching b q)
      && State_table.size a = State_table.size b)

let prop_state_table_masked_equivalence =
  (* Coarse granularities probe the flat core through masked packed
     words: tables at every granularity must stay observationally
     identical to the string-keyed layout, and the exact-key lookup
     ([find_key]) must agree with tuple lookups.  Ports are drawn from
     a tiny range so distinct tuples collide under the mask. *)
  QCheck2.Test.make ~name:"masked granularities equal string keys" ~count:100
    QCheck2.Gen.(
      triple (int_bound 3)
        (list_size (int_range 0 40) (triple (int_bound 8) (int_range 1 50) bool))
        filter_gen)
    (fun (gi, flows, q) ->
      let granularity =
        match gi with
        | 0 -> Hfl.[ Dim_src_ip; Dim_src_port; Dim_proto ] (* the NAT's *)
        | 1 -> Hfl.[ Dim_src_ip; Dim_dst_ip ]
        | 2 -> Hfl.[ Dim_dst_port ]
        | _ -> Hfl.full_granularity
      in
      let tuple_of (host, port, reversed) =
        let tup = flow_tuple (host, port) in
        if reversed then Five_tuple.reverse tup else tup
      in
      let mk_tab packed =
        let t = State_table.create ~packed ~granularity () in
        List.iter
          (fun flow ->
            ignore (State_table.find_or_create t (tuple_of flow) ~default:(fun () -> 0)))
          flows;
        t
      in
      let a = mk_tab true and b = mk_tab false in
      let key (e : int State_table.entry) = Hfl.to_string e.key in
      let probe t tup =
        ( Option.map key (State_table.find t tup),
          Option.map key (State_table.find_bidir t (Five_tuple.reverse tup)) )
      in
      let lookups_agree =
        List.for_all (fun flow -> probe a (tuple_of flow) = probe b (tuple_of flow)) flows
      in
      let find_key_agrees =
        List.for_all
          (fun flow ->
            let tup = tuple_of flow in
            let k = State_table.key_of a tup in
            Option.map key (State_table.find_key a k)
            = Option.map key (State_table.find a tup)
            && Option.map key (State_table.find_key b k)
               = Option.map key (State_table.find b tup))
          flows
      in
      lookups_agree && find_key_agrees
      && entry_keys (State_table.matching a q) = entry_keys (State_table.matching b q)
      && State_table.size a = State_table.size b
      && entry_keys (State_table.remove_matching a q)
         = entry_keys (State_table.remove_matching b q)
      && State_table.size a = State_table.size b)

(* ------------------------------------------------------------------ *)
(* Mb_base                                                             *)
(* ------------------------------------------------------------------ *)

let test_mb_base_queueing_latency () =
  let engine = Engine.create () in
  let cost = { Southbound.default_cost with per_packet = Time.ms 1.0 } in
  let base = Mb_base.create engine ~name:"mb" ~kind:"t" ~cost () in
  (* Two packets arriving together: the second queues behind the
     first. *)
  Mb_base.inject base (mk_packet ~id:1 ()) ~side_effects:true ~work:(fun _ -> ());
  Mb_base.inject base (mk_packet ~id:2 ()) ~side_effects:true ~work:(fun _ -> ());
  run_all engine;
  let s = Mb_base.latency_stats base in
  Alcotest.(check int) "two processed" 2 (Stats.count s);
  Alcotest.(check (float 1e-6)) "first latency 1ms" 0.001 (Stats.min_value s);
  Alcotest.(check (float 1e-6)) "second queued to 2ms" 0.002 (Stats.max_value s)

let test_mb_base_op_slowdown () =
  let engine = Engine.create () in
  let cost = { Southbound.default_cost with per_packet = Time.ms 1.0; op_slowdown = 1.5 } in
  let base = Mb_base.create engine ~name:"mb" ~kind:"t" ~cost () in
  Mb_base.set_op_active base true;
  Mb_base.inject base (mk_packet ()) ~side_effects:true ~work:(fun _ -> ());
  run_all engine;
  Alcotest.(check (float 1e-6)) "slowed per-packet cost" 0.0015
    (Stats.max_value (Mb_base.latency_stats base))

let test_mb_base_seal_roundtrip () =
  let engine = Engine.create () in
  let base = Mb_base.create engine ~name:"mb" ~kind:"kindx" ~cost:Southbound.default_cost () in
  let j = Json.Assoc [ ("a", Json.Int 1) ] in
  let chunk =
    Mb_base.seal_json base ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow
      ~key:Hfl.any j
  in
  match Mb_base.unseal_json base chunk with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (Json.equal j j')
  | Error e -> Alcotest.failf "unseal: %s" (Errors.to_string e)

(* ------------------------------------------------------------------ *)
(* IDS                                                                 *)
(* ------------------------------------------------------------------ *)

let tcp_conversation ?(src = "10.0.0.1") ?(dst = "1.1.1.5") ?(sport = 1234) () =
  (* SYN, SYN-ACK, request, response, FIN. *)
  let fwd ?flags ?app ?(ts = 0.0) id =
    mk_packet ~id ~ts ~src ~dst ~sport ?flags ?app ~tokens:[| id |] ()
  in
  let rev ?flags ?app ?(ts = 0.0) id =
    mk_packet ~id ~ts ~src:dst ~dst:src ~sport:80 ~dport:sport ?flags ?app ~tokens:[| id |] ()
  in
  [
    fwd ~flags:Packet.syn_flags ~ts:0.0 1;
    rev ~flags:Packet.synack_flags ~ts:0.01 2;
    fwd ~ts:0.02 ~app:(Packet.Http_request { method_ = "GET"; host = "h"; uri = "/x" }) 3;
    rev ~ts:0.03 ~app:(Packet.Http_response { status = 200 }) 4;
    fwd ~flags:Packet.fin_flags ~ts:0.04 5;
  ]

let feed_ids ids pkts =
  let engine = Mb_base.engine (Ids.base ids) in
  let start = Time.to_seconds (Engine.now engine) in
  List.iter
    (fun (p : Packet.t) ->
      ignore
        (Engine.schedule_at engine
           (Time.seconds (start +. Time.to_seconds p.Packet.ts))
           (fun () -> Ids.receive ids p)))
    pkts;
  run_all engine

let test_ids_connection_lifecycle () =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro1" () in
  feed_ids ids (tcp_conversation ());
  Alcotest.(check int) "one conn logged" 1 (List.length (Ids.conn_log ids));
  let entry = List.hd (Ids.conn_log ids) in
  Alcotest.(check string) "clean close" "SF" entry.Ids.ce_state;
  Alcotest.(check bool) "not anomalous" false entry.Ids.ce_anomalous;
  Alcotest.(check int) "one http txn" 1 (List.length (Ids.http_log ids));
  let h = List.hd (Ids.http_log ids) in
  Alcotest.(check string) "uri" "/x" h.Ids.he_uri;
  Alcotest.(check int) "status" 200 h.Ids.he_status

let test_ids_rst () =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro1" () in
  feed_ids ids
    [
      mk_packet ~id:1 ~flags:Packet.syn_flags ();
      mk_packet ~id:2 ~ts:0.01 ~flags:Packet.rst_flags ();
    ];
  let entry = List.hd (Ids.conn_log ids) in
  Alcotest.(check string) "reset by originator" "RSTO" entry.Ids.ce_state

let test_ids_exploit_alert () =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro1" () in
  feed_ids ids
    [
      mk_packet ~id:1 ~flags:Packet.syn_flags ();
      mk_packet ~id:2 ~ts:0.01
        ~app:(Packet.Http_request { method_ = "GET"; host = "h"; uri = "/cgi/cmd.exe" })
        ();
    ];
  match Ids.alerts ids with
  | [ a ] -> Alcotest.(check string) "exploit alert" "http-exploit" a.Ids.al_kind
  | l -> Alcotest.failf "expected one alert, got %d" (List.length l)

let test_ids_scan_alert_once () =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro1" () in
  let probes =
    List.init 30 (fun i ->
        mk_packet ~id:i ~ts:(0.01 *. float_of_int i) ~flags:Packet.syn_flags
          ~dst:(Printf.sprintf "1.1.2.%d" (i + 1))
          ~sport:(2000 + i) ())
  in
  feed_ids ids probes;
  let scans = List.filter (fun a -> a.Ids.al_kind = "port-scan") (Ids.alerts ids) in
  Alcotest.(check int) "exactly one scan alert" 1 (List.length scans)

let test_ids_get_put_roundtrip () =
  (* Serialize state out of one IDS, import into another, and check the
     connection concludes normally there. *)
  let engine = Engine.create () in
  let a = Ids.create engine ~name:"bro-a" () in
  let b = Ids.create engine ~name:"bro-b" () in
  let pkts = tcp_conversation () in
  let head, tail =
    (List.filteri (fun i _ -> i < 3) pkts, List.filteri (fun i _ -> i >= 3) pkts)
  in
  feed_ids a head;
  let impl_a = Ids.impl a and impl_b = Ids.impl b in
  (match impl_a.Southbound.get_support_perflow Hfl.any with
  | Ok [ chunk ] -> (
    match impl_b.Southbound.put_support_perflow chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "put: %s" (Errors.to_string e))
  | Ok l -> Alcotest.failf "expected 1 chunk, got %d" (List.length l)
  | Error e -> Alcotest.failf "get: %s" (Errors.to_string e));
  ignore (impl_a.Southbound.del_support_perflow Hfl.any);
  feed_ids b tail;
  Alcotest.(check int) "A logged nothing" 0 (List.length (Ids.conn_log a));
  (match Ids.conn_log b with
  | [ entry ] ->
    Alcotest.(check string) "B closed the moved conn" "SF" entry.Ids.ce_state;
    Alcotest.(check bool) "history survived the move" true (entry.Ids.ce_orig_bytes > 0)
  | l -> Alcotest.failf "expected 1 entry at B, got %d" (List.length l));
  Alcotest.(check int) "http logged at B" 1 (List.length (Ids.http_log b))

let test_ids_moved_flag_raises_events () =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro1" () in
  let events = ref [] in
  (Ids.impl ids).Southbound.set_event_sink (fun ev -> events := ev :: !events);
  feed_ids ids [ mk_packet ~id:1 ~flags:Packet.syn_flags () ];
  ignore ((Ids.impl ids).Southbound.get_support_perflow Hfl.any);
  feed_ids ids [ mk_packet ~id:2 ~ts:0.01 () ];
  let reprocess =
    List.filter (function Event.Reprocess _ -> true | Event.Introspect _ -> false) !events
  in
  Alcotest.(check int) "one reprocess event" 1 (List.length reprocess)

let test_ids_del_after_move_no_anomaly () =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro1" () in
  feed_ids ids [ mk_packet ~id:1 ~flags:Packet.syn_flags () ];
  ignore ((Ids.impl ids).Southbound.get_support_perflow Hfl.any);
  ignore ((Ids.impl ids).Southbound.del_support_perflow Hfl.any);
  Ids.finalize ids;
  Alcotest.(check int) "no anomalous entries" 0 (Ids.anomalous_entries ids)

let test_ids_finalize_anomalies () =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro1" () in
  (* An established connection cut off mid-stream is anomalous; a lone
     unanswered SYN (S0 - a probe) is a legitimate ending. *)
  feed_ids ids
    [
      mk_packet ~id:1 ~flags:Packet.syn_flags ();
      mk_packet ~id:2 ~ts:0.01 ~flags:Packet.synack_flags ~src:"1.1.1.5" ~dst:"10.0.0.1"
        ~sport:80 ~dport:1234 ();
      mk_packet ~id:3 ~ts:0.02 ~tokens:[| 5 |] ();
      mk_packet ~id:4 ~ts:0.03 ~flags:Packet.syn_flags ~src:"10.0.0.99" ~sport:7777 ();
    ];
  Ids.finalize ids;
  Alcotest.(check int) "only the established conn is anomalous" 1
    (Ids.anomalous_entries ids)

let test_ids_granularity_and_stats () =
  let engine = Engine.create () in
  let ids = Ids.create engine ~name:"bro1" () in
  feed_ids ids (tcp_conversation ());
  let impl = Ids.impl ids in
  let stats = impl.Southbound.stats Hfl.any in
  Alcotest.(check int) "one chunk" 1 stats.Southbound.perflow_support_chunks;
  (* A connection that carried data has reassembly and analyzer state:
     the chunk is an order of magnitude heavier than PRADS' flat
     record. *)
  Alcotest.(check bool) "bro chunks are heavy" true
    (stats.Southbound.perflow_support_bytes > 500)

let test_ids_scan_state_clone_merge () =
  let engine = Engine.create () in
  let a = Ids.create engine ~name:"bro-a" () in
  let b = Ids.create engine ~name:"bro-b" () in
  (* Fifteen probes at each instance from the same source; merged they
     exceed the threshold of 20. *)
  let probes base =
    List.init 15 (fun i ->
        mk_packet ~id:(base + i) ~ts:(0.01 *. float_of_int i) ~flags:Packet.syn_flags
          ~dst:(Printf.sprintf "1.1.2.%d" ((base mod 100) + i + 1))
          ~sport:(3000 + base + i) ())
  in
  feed_ids a (probes 0);
  feed_ids b (probes 100);
  (match (Ids.impl a).Southbound.get_support_shared () with
  | Ok (Some chunk) -> (
    match (Ids.impl b).Southbound.put_support_shared chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "merge put: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "no shared chunk");
  (* One more probe at B must now trip the merged counter. *)
  feed_ids b
    [ mk_packet ~id:999 ~ts:1.0 ~flags:Packet.syn_flags ~dst:"1.1.2.250" ~sport:9999 () ];
  let scans = List.filter (fun al -> al.Ids.al_kind = "port-scan") (Ids.alerts b) in
  Alcotest.(check int) "merged counts trip the alert" 1 (List.length scans)

(* ------------------------------------------------------------------ *)
(* Monitor                                                             *)
(* ------------------------------------------------------------------ *)

let feed_monitor mon pkts =
  let engine = Mb_base.engine (Monitor.base mon) in
  let start = Time.to_seconds (Engine.now engine) in
  List.iter
    (fun (p : Packet.t) ->
      ignore
        (Engine.schedule_at engine
           (Time.seconds (start +. Time.to_seconds p.Packet.ts))
           (fun () -> Monitor.receive mon p)))
    pkts;
  run_all engine

let test_monitor_counters () =
  let engine = Engine.create () in
  let mon = Monitor.create engine ~name:"prads1" () in
  feed_monitor mon
    [
      mk_packet ~id:1 ~tokens:[| 1; 2 |] ();
      mk_packet ~id:2 ~ts:0.01 ~tokens:[| 3 |] ();
      mk_packet ~id:3 ~ts:0.02 ~proto:Packet.Udp ~dport:53 ~sport:5353 ();
    ];
  let t = Monitor.totals mon in
  Alcotest.(check int) "pkts" 3 t.Monitor.tot_pkts;
  Alcotest.(check int) "tcp" 2 t.Monitor.tot_tcp;
  Alcotest.(check int) "udp" 1 t.Monitor.tot_udp;
  Alcotest.(check int) "flows" 2 t.Monitor.tot_new_flows;
  Alcotest.(check int) "bytes" (3 * Payload.token_bytes) t.Monitor.tot_bytes

let test_monitor_asset_event () =
  let engine = Engine.create () in
  let mon = Monitor.create engine ~name:"prads1" () in
  let events = ref [] in
  (Monitor.impl mon).Southbound.set_event_sink (fun ev -> events := ev :: !events);
  feed_monitor mon [ mk_packet ~id:1 () ];
  match !events with
  | [ Event.Introspect { code; _ } ] ->
    Alcotest.(check string) "asset event" "monitor.new_asset" code
  | _ -> Alcotest.fail "expected one introspection event"

let test_monitor_move_report () =
  let engine = Engine.create () in
  let a = Monitor.create engine ~name:"prads-a" () in
  let b = Monitor.create engine ~name:"prads-b" () in
  feed_monitor a [ mk_packet ~id:1 (); mk_packet ~id:2 ~ts:0.01 () ];
  (match (Monitor.impl a).Southbound.get_report_perflow Hfl.any with
  | Ok [ chunk ] -> (
    match (Monitor.impl b).Southbound.put_report_perflow chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "put: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "expected one report chunk");
  ignore ((Monitor.impl a).Southbound.del_report_perflow Hfl.any);
  Alcotest.(check int) "B tracks the flow" 1 (Monitor.tracked_flows b);
  Alcotest.(check int) "A forgot it" 0 (Monitor.tracked_flows a);
  match Monitor.flow_records b with
  | [ (_, r) ] -> Alcotest.(check int) "counters intact" 2 r.Monitor.fr_pkts
  | _ -> Alcotest.fail "missing record at B"

let test_monitor_shared_merge_adds () =
  let engine = Engine.create () in
  let a = Monitor.create engine ~name:"prads-a" () in
  let b = Monitor.create engine ~name:"prads-b" () in
  feed_monitor a [ mk_packet ~id:1 (); mk_packet ~id:2 ~ts:0.01 () ];
  feed_monitor b [ mk_packet ~id:3 ~src:"10.0.0.9" ~sport:9 () ];
  (match (Monitor.impl a).Southbound.get_report_shared () with
  | Ok (Some chunk) -> (
    match (Monitor.impl b).Southbound.put_report_shared chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "merge: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "no shared chunk");
  let t = Monitor.totals b in
  Alcotest.(check int) "pkts added" 3 t.Monitor.tot_pkts;
  Alcotest.(check int) "flows added" 2 t.Monitor.tot_new_flows

let test_monitor_rejects_wrong_chunk_class () =
  let engine = Engine.create () in
  let a = Monitor.create engine ~name:"prads-a" () in
  feed_monitor a [ mk_packet ~id:1 () ];
  match (Monitor.impl a).Southbound.get_report_perflow Hfl.any with
  | Ok [ chunk ] -> (
    (* A per-flow reporting chunk pushed through the shared-report put
       must be refused. *)
    match (Monitor.impl a).Southbound.put_report_shared chunk with
    | Error (Errors.Illegal_operation _) -> ()
    | Ok () -> Alcotest.fail "wrong-class put accepted"
    | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "expected one chunk"

(* ------------------------------------------------------------------ *)
(* RE cache                                                            *)
(* ------------------------------------------------------------------ *)

let test_re_cache_append_read () =
  let c = Re_cache.create ~capacity:8 () in
  let base = Re_cache.append c [| 10; 11; 12 |] in
  Alcotest.(check int) "base" 0 base;
  Alcotest.(check (option int)) "read" (Some 11) (Re_cache.read c ~offset:1);
  Alcotest.(check (option int)) "missing" None (Re_cache.read c ~offset:5);
  match Re_cache.read_run c ~offset:0 ~len:3 with
  | Some run -> Alcotest.(check (array int)) "run" [| 10; 11; 12 |] run
  | None -> Alcotest.fail "run read failed"

let test_re_cache_window_eviction () =
  let c = Re_cache.create ~capacity:4 () in
  ignore (Re_cache.append c [| 1; 2; 3; 4; 5; 6 |]);
  Alcotest.(check (option int)) "old evicted" None (Re_cache.read c ~offset:0);
  Alcotest.(check (option int)) "recent present" (Some 6) (Re_cache.read c ~offset:5);
  Alcotest.(check bool) "in_window" true (Re_cache.in_window c 5);
  Alcotest.(check bool) "out of window" false (Re_cache.in_window c 0)

let test_re_cache_serialize_roundtrip () =
  let c = Re_cache.create ~capacity:16 () in
  ignore (Re_cache.append c (Array.init 10 (fun i -> i * 7)));
  let c' = Re_cache.deserialize (Re_cache.serialize c) in
  Alcotest.(check bool) "contents equal" true (Re_cache.equal_contents c c');
  Alcotest.(check int) "pos preserved" (Re_cache.pos c) (Re_cache.pos c')

let test_re_cache_clone_independent () =
  let c = Re_cache.create ~capacity:16 () in
  ignore (Re_cache.append c [| 1; 2 |]);
  let d = Re_cache.clone c in
  ignore (Re_cache.append c [| 3 |]);
  Alcotest.(check (option int)) "clone unaffected" None (Re_cache.read d ~offset:2);
  Alcotest.(check (option int)) "original advanced" (Some 3) (Re_cache.read c ~offset:2)

let prop_re_cache_serialize_roundtrip =
  QCheck2.Test.make ~name:"re-cache serialize round-trip" ~count:100
    QCheck2.Gen.(pair (int_range 1 64) (list_size (int_range 0 100) (int_bound 1000000)))
    (fun (cap, tokens) ->
      let c = Re_cache.create ~capacity:cap () in
      ignore (Re_cache.append c (Array.of_list tokens));
      Re_cache.equal_contents c (Re_cache.deserialize (Re_cache.serialize c)))

(* ------------------------------------------------------------------ *)
(* RE encoder / decoder                                                *)
(* ------------------------------------------------------------------ *)

let re_pair engine ?(mode = Re_encoder.Explicit) () =
  let enc = Re_encoder.create engine ~mode ~name:"enc" () in
  let dec = Re_decoder.create engine ~mode ~name:"dec" () in
  Mb_base.set_egress (Re_encoder.base enc) (fun p -> Re_decoder.receive dec p);
  (enc, dec)

let content_packet ~id ~ts tokens = mk_packet ~id ~ts ~tokens ()

let send_via engine enc ~id ~ts tokens =
  let start = Time.to_seconds (Engine.now engine) in
  ignore
    (Engine.schedule_at engine
       (Time.seconds (start +. ts))
       (fun () -> Re_encoder.receive enc (content_packet ~id ~ts tokens)))

let test_re_encode_decode_identity () =
  let engine = Engine.create () in
  let enc, dec = re_pair engine () in
  let sink = ref [] in
  Mb_base.set_egress (Re_decoder.base dec) (fun p -> sink := p :: !sink);
  send_via engine enc ~id:1 ~ts:0.0 [| 1; 2; 3; 4 |];
  send_via engine enc ~id:2 ~ts:0.01 [| 1; 2; 3; 4 |];
  send_via engine enc ~id:3 ~ts:0.02 [| 9; 1; 2; 8 |];
  run_all engine;
  Alcotest.(check int) "all delivered" 3 (List.length !sink);
  Alcotest.(check int) "all decoded" 3 (Re_decoder.packets_decoded dec);
  Alcotest.(check int) "none failed" 0 (Re_decoder.packets_failed dec);
  Alcotest.(check bool) "redundancy eliminated" true (Re_encoder.encoded_bytes enc > 0);
  Alcotest.(check int) "decoder reconstructed every eliminated byte"
    (Re_encoder.encoded_bytes enc) (Re_decoder.decoded_bytes dec);
  List.iter
    (fun (p : Packet.t) ->
      match p.Packet.body with
      | Packet.Raw _ -> ()
      | Packet.Encoded _ -> Alcotest.fail "decoder must emit raw packets")
    !sink

let test_re_encoder_shrinks_wire_bytes () =
  let engine = Engine.create () in
  let enc = Re_encoder.create engine ~name:"enc" () in
  let out = ref None in
  Mb_base.set_egress (Re_encoder.base enc) (fun p -> out := Some p);
  let repeated = Array.init 16 (fun i -> 100 + i) in
  send_via engine enc ~id:1 ~ts:0.0 repeated;
  send_via engine enc ~id:2 ~ts:0.01 repeated;
  run_all engine;
  match !out with
  | Some p ->
    Alcotest.(check bool) "encoded smaller than original" true
      (Packet.wire_bytes p < Packet.header_bytes + (16 * Payload.token_bytes));
    Alcotest.(check int) "original size recorded" (16 * Payload.token_bytes)
      (Packet.original_body_bytes p)
  | None -> Alcotest.fail "no output"

let test_re_implicit_desync_on_loss () =
  (* Classic RE: dropping one encoded packet desynchronizes the caches
     and later shims reconstruct wrong content. *)
  let engine = Engine.create () in
  let enc = Re_encoder.create engine ~mode:Re_encoder.Implicit ~name:"enc" () in
  let dec = Re_decoder.create engine ~mode:Re_encoder.Implicit ~name:"dec" () in
  let drop = ref false in
  Mb_base.set_egress (Re_encoder.base enc) (fun p ->
      if !drop then drop := false else Re_decoder.receive dec p);
  send_via engine enc ~id:1 ~ts:0.0 [| 1; 2; 3; 4 |];
  ignore (Engine.schedule_at engine (Time.seconds 0.005) (fun () -> drop := true));
  send_via engine enc ~id:2 ~ts:0.01 [| 5; 6; 7; 8 |];
  send_via engine enc ~id:3 ~ts:0.02 [| 20; 21; 22; 23 |];
  send_via engine enc ~id:4 ~ts:0.03 [| 20; 21; 22; 23 |];
  run_all engine;
  Alcotest.(check bool) "desync detected" true (Re_decoder.undecodable_bytes dec > 0)

let test_re_explicit_survives_literal_loss () =
  (* Explicit positions: after losing a literal-only packet, later
     shims that do not reference the lost region still decode. *)
  let engine = Engine.create () in
  let enc = Re_encoder.create engine ~mode:Re_encoder.Explicit ~name:"enc" () in
  let dec = Re_decoder.create engine ~mode:Re_encoder.Explicit ~name:"dec" () in
  let drop = ref false in
  Mb_base.set_egress (Re_encoder.base enc) (fun p ->
      if !drop then drop := false else Re_decoder.receive dec p);
  send_via engine enc ~id:1 ~ts:0.0 [| 1; 2; 3; 4 |];
  ignore (Engine.schedule_at engine (Time.seconds 0.005) (fun () -> drop := true));
  send_via engine enc ~id:2 ~ts:0.01 [| 50; 51 |];
  send_via engine enc ~id:3 ~ts:0.02 [| 1; 2; 3; 4 |];
  run_all engine;
  Alcotest.(check int) "no failures" 0 (Re_decoder.packets_failed dec);
  Alcotest.(check int) "two decoded" 2 (Re_decoder.packets_decoded dec)

let test_re_decoder_clone_via_chunks () =
  let engine = Engine.create () in
  let enc, dec = re_pair engine () in
  send_via engine enc ~id:1 ~ts:0.0 [| 1; 2; 3 |];
  run_all engine;
  let dec2 = Re_decoder.create engine ~name:"dec2" () in
  (match (Re_decoder.impl dec).Southbound.get_support_shared () with
  | Ok (Some chunk) -> (
    match (Re_decoder.impl dec2).Southbound.put_support_shared chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "put: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "no cache chunk");
  Alcotest.(check bool) "caches identical" true
    (Re_cache.equal_contents (Re_decoder.cache dec) (Re_decoder.cache dec2))

let test_re_decoder_cloned_raises_events () =
  let engine = Engine.create () in
  let enc, dec = re_pair engine () in
  let events = ref 0 in
  (Re_decoder.impl dec).Southbound.set_event_sink (fun _ -> incr events);
  ignore ((Re_decoder.impl dec).Southbound.get_support_shared ());
  send_via engine enc ~id:1 ~ts:0.0 [| 1; 2 |];
  run_all engine;
  Alcotest.(check int) "cache update raised an event" 1 !events;
  (match
     (Re_decoder.impl dec).Southbound.set_config [ "SyncEvents" ] [ Json.Bool false ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "set_config: %s" (Errors.to_string e));
  send_via engine enc ~id:2 ~ts:0.01 [| 3; 4 |];
  run_all engine;
  Alcotest.(check int) "no further events" 1 !events

let test_re_encoder_num_caches_clone_and_flows () =
  let engine = Engine.create () in
  let enc = Re_encoder.create engine ~name:"enc" () in
  Mb_base.set_egress (Re_encoder.base enc) (fun _ -> ());
  send_via engine enc ~id:1 ~ts:0.0 [| 1; 2; 3 |];
  run_all engine;
  (match (Re_encoder.impl enc).Southbound.set_config [ "NumCaches" ] [ Json.Int 2 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "NumCaches: %s" (Errors.to_string e));
  Alcotest.(check int) "two caches" 2 (Re_encoder.num_caches enc);
  Alcotest.(check bool) "clone matches original" true
    (Re_cache.equal_contents (Re_encoder.cache enc 0) (Re_encoder.cache enc 1));
  send_via engine enc ~id:2 ~ts:0.01 [| 4; 5 |];
  run_all engine;
  Alcotest.(check bool) "mirroring before the split" true
    (Re_cache.equal_contents (Re_encoder.cache enc 0) (Re_encoder.cache enc 1));
  (match
     (Re_encoder.impl enc).Southbound.set_config [ "CacheFlows" ]
       [ Json.String "1.1.1.0/24"; Json.String "1.1.2.0/24" ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "CacheFlows: %s" (Errors.to_string e));
  let start = Time.to_seconds (Engine.now engine) in
  ignore
    (Engine.schedule_at engine
       (Time.seconds (start +. 0.01))
       (fun () ->
         Re_encoder.receive enc (mk_packet ~id:3 ~ts:0.02 ~dst:"1.1.2.9" ~tokens:[| 6 |] ())));
  run_all engine;
  Alcotest.(check bool) "caches diverge after the split" false
    (Re_cache.equal_contents (Re_encoder.cache enc 0) (Re_encoder.cache enc 1))

let prop_re_lossless_path_decodes =
  (* Any token stream pushed through a lossless encoder/decoder pair
     reconstructs perfectly, whatever the redundancy pattern. *)
  QCheck2.Test.make ~name:"re pair decodes arbitrary streams" ~count:60
    QCheck2.Gen.(list_size (int_range 1 30) (list_size (int_range 1 12) (int_bound 40)))
    (fun packets ->
      let engine = Engine.create () in
      let enc = Re_encoder.create engine ~name:"enc" () in
      let dec = Re_decoder.create engine ~name:"dec" () in
      Mb_base.set_egress (Re_encoder.base enc) (fun p -> Re_decoder.receive dec p);
      List.iteri
        (fun i tokens ->
          let ts = 0.01 *. float_of_int i in
          ignore
            (Engine.schedule_at engine (Time.seconds ts) (fun () ->
                 Re_encoder.receive enc
                   (mk_packet ~id:i ~ts ~tokens:(Array.of_list tokens) ()))))
        packets;
      Engine.run engine;
      Re_decoder.packets_failed dec = 0
      && Re_decoder.packets_decoded dec = List.length packets)

(* ------------------------------------------------------------------ *)
(* NAT                                                                 *)
(* ------------------------------------------------------------------ *)

let make_nat ?(name = "nat1") engine =
  Nat.create engine ~name ~external_ip:(Addr.of_string "5.5.5.5")
    ~internal_prefix:(Addr.prefix_of_string "10.0.0.0/8") ()

let test_nat_translation_roundtrip () =
  let engine = Engine.create () in
  let nat = make_nat engine in
  let out = ref [] in
  Mb_base.set_egress (Nat.base nat) (fun p -> out := p :: !out);
  Nat.receive nat (mk_packet ~id:1 ());
  run_all engine;
  (match !out with
  | [ p ] ->
    Alcotest.(check string) "rewritten source" "5.5.5.5" (Addr.to_string p.Packet.src_ip);
    Alcotest.(check bool) "external port allocated" true (p.Packet.src_port >= 20000);
    let reply =
      mk_packet ~id:2 ~ts:0.01 ~src:"1.1.1.5" ~dst:"5.5.5.5" ~sport:80
        ~dport:p.Packet.src_port ()
    in
    out := [];
    Nat.receive nat reply;
    run_all engine;
    (match !out with
    | [ r ] ->
      Alcotest.(check string) "restored dst" "10.0.0.1" (Addr.to_string r.Packet.dst_ip);
      Alcotest.(check int) "restored port" 1234 r.Packet.dst_port
    | _ -> Alcotest.fail "reply not translated")
  | _ -> Alcotest.fail "no outbound packet");
  Alcotest.(check int) "one mapping" 1 (Nat.mapping_count nat)

let test_nat_unknown_inbound_dropped () =
  let engine = Engine.create () in
  let nat = make_nat engine in
  Mb_base.set_egress (Nat.base nat) (fun _ -> ());
  Nat.receive nat (mk_packet ~id:1 ~src:"1.1.1.5" ~dst:"5.5.5.5" ~sport:80 ~dport:31337 ());
  run_all engine;
  Alcotest.(check int) "dropped" 1 (Nat.packets_dropped nat)

let test_nat_introspection_event () =
  let engine = Engine.create () in
  let nat = make_nat engine in
  let events = ref [] in
  (Nat.impl nat).Southbound.set_event_sink (fun ev -> events := ev :: !events);
  Nat.receive nat (mk_packet ~id:1 ());
  run_all engine;
  match !events with
  | [ Event.Introspect { code; info; _ } ] ->
    Alcotest.(check string) "mapping event" "nat.new_mapping" code;
    Alcotest.(check bool) "carries the external port" true (Json.mem "ext_port" info)
  | _ -> Alcotest.fail "expected one introspection event"

let test_nat_granularity () =
  let engine = Engine.create () in
  let nat = make_nat engine in
  Mb_base.set_egress (Nat.base nat) (fun _ -> ());
  Nat.receive nat (mk_packet ~id:1 ());
  run_all engine;
  let impl = Nat.impl nat in
  (match impl.Southbound.get_support_perflow (Hfl.of_string "tp_dst=80") with
  | Error Errors.Granularity_too_fine -> ()
  | _ -> Alcotest.fail "expected granularity error");
  match impl.Southbound.get_support_perflow (Hfl.of_string "nw_src=10.0.0.0/8") with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "expected one mapping chunk"

let test_nat_move_preserves_mapping () =
  let engine = Engine.create () in
  let a = make_nat engine in
  let b = make_nat ~name:"nat2" engine in
  Mb_base.set_egress (Nat.base a) (fun _ -> ());
  Nat.receive a (mk_packet ~id:1 ());
  run_all engine;
  let ext_port =
    match Nat.mappings a with [ m ] -> m.Nat.m_ext_port | _ -> Alcotest.fail "no mapping"
  in
  (match (Nat.impl a).Southbound.get_support_perflow Hfl.any with
  | Ok [ chunk ] -> (
    match (Nat.impl b).Southbound.put_support_perflow chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "put: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "expected one chunk");
  match Nat.lookup_external b ~ext_port with
  | Some m -> Alcotest.(check int) "internal port preserved" 1234 m.Nat.m_int_port
  | None -> Alcotest.fail "mapping lost in move"

let test_nat_static_mapping_restore () =
  let engine = Engine.create () in
  let nat = make_nat engine in
  let info =
    Json.Assoc
      [
        ("int_ip", Json.String "10.0.0.42");
        ("int_port", Json.Int 4242);
        ("ext_port", Json.Int 33333);
        ("proto", Json.String "tcp");
      ]
  in
  (match (Nat.impl nat).Southbound.set_config [ "static_mappings" ] [ info ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "restore: %s" (Errors.to_string e));
  match Nat.lookup_external nat ~ext_port:33333 with
  | Some m ->
    Alcotest.(check string) "restored ip" "10.0.0.42" (Addr.to_string m.Nat.m_int_ip);
    Alcotest.(check (float 1e-9)) "timer reset to default" 0.0 m.Nat.m_last_active
  | None -> Alcotest.fail "static mapping not installed"

(* ------------------------------------------------------------------ *)
(* Load balancer                                                       *)
(* ------------------------------------------------------------------ *)

let backends = [ Addr.of_string "10.9.0.1"; Addr.of_string "10.9.0.2" ]

let test_lb_round_robin_sticky () =
  let engine = Engine.create () in
  let lb = Load_balancer.create engine ~backends ~name:"lb1" () in
  let out = ref [] in
  Mb_base.set_egress (Load_balancer.base lb) (fun p -> out := p :: !out);
  Load_balancer.receive lb (mk_packet ~id:1 ~sport:1000 ());
  Load_balancer.receive lb (mk_packet ~id:2 ~sport:2000 ());
  Load_balancer.receive lb (mk_packet ~id:3 ~sport:1000 ());
  run_all engine;
  (match List.rev !out with
  | [ p1; p2; p3 ] ->
    Alcotest.(check bool) "flows spread" false (Addr.equal p1.Packet.dst_ip p2.Packet.dst_ip);
    Alcotest.(check bool) "same flow sticks" true
      (Addr.equal p1.Packet.dst_ip p3.Packet.dst_ip)
  | _ -> Alcotest.fail "expected three packets");
  Alcotest.(check int) "two assignments" 2 (Load_balancer.assignment_count lb)

let test_lb_granularity_rejects_five_tuple () =
  let engine = Engine.create () in
  let lb = Load_balancer.create engine ~backends ~name:"lb1" () in
  match
    (Load_balancer.impl lb).Southbound.get_support_perflow
      (Hfl.of_string "nw_src=10.0.0.1/32,nw_dst=1.1.1.5/32")
  with
  | Error Errors.Granularity_too_fine -> ()
  | _ -> Alcotest.fail "destination constraint must be too fine for Balance"

let test_lb_move_keeps_backend () =
  let engine = Engine.create () in
  let a = Load_balancer.create engine ~backends ~name:"lb-a" () in
  let b = Load_balancer.create engine ~backends ~name:"lb-b" () in
  Mb_base.set_egress (Load_balancer.base a) (fun _ -> ());
  Load_balancer.receive a (mk_packet ~id:1 ());
  run_all engine;
  let backend =
    match Load_balancer.assignments a with
    | [ (_, be) ] -> be
    | _ -> Alcotest.fail "no assignment"
  in
  (match (Load_balancer.impl a).Southbound.get_support_perflow Hfl.any with
  | Ok [ chunk ] -> (
    match (Load_balancer.impl b).Southbound.put_support_perflow chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "put: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "expected one chunk");
  let out = ref [] in
  Mb_base.set_egress (Load_balancer.base b) (fun p -> out := p :: !out);
  Load_balancer.receive b (mk_packet ~id:2 ~ts:0.01 ());
  run_all engine;
  match !out with
  | [ p ] ->
    Alcotest.(check bool) "in-progress transaction stays on its server" true
      (Addr.equal p.Packet.dst_ip backend)
  | _ -> Alcotest.fail "no output at B"

let test_lb_least_conn_policy () =
  let engine = Engine.create () in
  let lb =
    Load_balancer.create engine ~policy:Load_balancer.Least_conn ~backends ~name:"lb1" ()
  in
  Mb_base.set_egress (Load_balancer.base lb) (fun _ -> ());
  for i = 1 to 4 do
    Load_balancer.receive lb (mk_packet ~id:i ~sport:(1000 * i) ())
  done;
  run_all engine;
  let load = Load_balancer.backend_load lb in
  List.iter (fun (_, c) -> Alcotest.(check int) "balanced" 2 c) load

let test_lb_reconfigure_backends () =
  let engine = Engine.create () in
  let lb = Load_balancer.create engine ~backends ~name:"lb1" () in
  (match
     (Load_balancer.impl lb).Southbound.set_config [ "backends" ]
       [ Json.String "10.9.0.9" ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "set_config: %s" (Errors.to_string e));
  let out = ref [] in
  Mb_base.set_egress (Load_balancer.base lb) (fun p -> out := p :: !out);
  Load_balancer.receive lb (mk_packet ~id:1 ());
  run_all engine;
  match !out with
  | [ p ] -> Alcotest.(check string) "new backend" "10.9.0.9" (Addr.to_string p.Packet.dst_ip)
  | _ -> Alcotest.fail "no output"

(* ------------------------------------------------------------------ *)
(* Firewall                                                            *)
(* ------------------------------------------------------------------ *)

let test_firewall_rules_and_cache () =
  let engine = Engine.create () in
  let fw =
    Firewall.create engine
      ~rules:
        [
          { Firewall.rl_match = Hfl.of_string "tp_dst=22"; rl_action = Firewall.Deny };
          { Firewall.rl_match = Hfl.of_string "nw_src=10.0.0.0/8"; rl_action = Firewall.Allow };
        ]
      ~default_action:Firewall.Deny ~name:"fw1" ()
  in
  let out = ref 0 in
  Mb_base.set_egress (Firewall.base fw) (fun _ -> incr out);
  Firewall.receive fw (mk_packet ~id:1 ());
  Firewall.receive fw (mk_packet ~id:2 ~dport:22 ~sport:9 ());
  Firewall.receive fw (mk_packet ~id:3 ~src:"192.168.0.1" ~sport:10 ());
  run_all engine;
  Alcotest.(check int) "one allowed through" 1 !out;
  Alcotest.(check int) "allowed counter" 1 (Firewall.allowed fw);
  Alcotest.(check int) "denied counter" 2 (Firewall.denied fw);
  Alcotest.(check int) "verdicts cached" 3 (Firewall.cached_verdicts fw)

let test_firewall_shared_report_merge () =
  let engine = Engine.create () in
  let a = Firewall.create engine ~name:"fw-a" () in
  let b = Firewall.create engine ~name:"fw-b" () in
  Mb_base.set_egress (Firewall.base a) (fun _ -> ());
  Mb_base.set_egress (Firewall.base b) (fun _ -> ());
  Firewall.receive a (mk_packet ~id:1 ());
  Firewall.receive b (mk_packet ~id:2 ~sport:9 ());
  run_all engine;
  (match (Firewall.impl a).Southbound.get_report_shared () with
  | Ok (Some chunk) -> (
    match (Firewall.impl b).Southbound.put_report_shared chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "merge: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "no shared report");
  Alcotest.(check int) "counters added" 2 (Firewall.allowed b)

let test_firewall_verdict_move () =
  let engine = Engine.create () in
  let a = Firewall.create engine ~default_action:Firewall.Allow ~name:"fw-a" () in
  let b = Firewall.create engine ~default_action:Firewall.Deny ~name:"fw-b" () in
  Mb_base.set_egress (Firewall.base a) (fun _ -> ());
  Firewall.receive a (mk_packet ~id:1 ());
  run_all engine;
  (match (Firewall.impl a).Southbound.get_support_perflow Hfl.any with
  | Ok [ chunk ] -> (
    match (Firewall.impl b).Southbound.put_support_perflow chunk with
    | Ok () -> ()
    | Error e -> Alcotest.failf "put: %s" (Errors.to_string e))
  | _ -> Alcotest.fail "expected one verdict chunk");
  (* The moved flow keeps its Allow verdict even though B's policy
     default is Deny — the R1 correctness property. *)
  let out = ref 0 in
  Mb_base.set_egress (Firewall.base b) (fun _ -> incr out);
  Firewall.receive b (mk_packet ~id:2 ~ts:0.01 ());
  run_all engine;
  Alcotest.(check int) "moved verdict honoured" 1 !out

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openmb_mbox"
    [
      ( "state_table",
        [
          Alcotest.test_case "basic" `Quick test_state_table_basic;
          Alcotest.test_case "bidirectional" `Quick test_state_table_bidir;
          Alcotest.test_case "matching scan" `Quick test_state_table_matching_scan;
          Alcotest.test_case "insert clears moved" `Quick test_state_table_insert_clears_moved;
          Alcotest.test_case "indexed equivalence" `Quick
            test_state_table_indexed_equivalence;
        ]
        @ qcheck
            [
              prop_state_table_index_equivalence;
              prop_state_table_index_remove_equivalence;
              prop_state_table_packed_equivalence;
              prop_state_table_masked_equivalence;
            ] );
      ( "mb_base",
        [
          Alcotest.test_case "queueing latency" `Quick test_mb_base_queueing_latency;
          Alcotest.test_case "op slowdown" `Quick test_mb_base_op_slowdown;
          Alcotest.test_case "seal roundtrip" `Quick test_mb_base_seal_roundtrip;
        ] );
      ( "ids",
        [
          Alcotest.test_case "connection lifecycle" `Quick test_ids_connection_lifecycle;
          Alcotest.test_case "rst" `Quick test_ids_rst;
          Alcotest.test_case "exploit alert" `Quick test_ids_exploit_alert;
          Alcotest.test_case "scan alert once" `Quick test_ids_scan_alert_once;
          Alcotest.test_case "get/put roundtrip" `Quick test_ids_get_put_roundtrip;
          Alcotest.test_case "moved flag events" `Quick test_ids_moved_flag_raises_events;
          Alcotest.test_case "del after move no anomaly" `Quick
            test_ids_del_after_move_no_anomaly;
          Alcotest.test_case "finalize anomalies" `Quick test_ids_finalize_anomalies;
          Alcotest.test_case "granularity and stats" `Quick test_ids_granularity_and_stats;
          Alcotest.test_case "scan state clone/merge" `Quick test_ids_scan_state_clone_merge;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "counters" `Quick test_monitor_counters;
          Alcotest.test_case "asset event" `Quick test_monitor_asset_event;
          Alcotest.test_case "move report" `Quick test_monitor_move_report;
          Alcotest.test_case "shared merge adds" `Quick test_monitor_shared_merge_adds;
          Alcotest.test_case "wrong chunk class" `Quick test_monitor_rejects_wrong_chunk_class;
        ] );
      ( "re_cache",
        [
          Alcotest.test_case "append/read" `Quick test_re_cache_append_read;
          Alcotest.test_case "window eviction" `Quick test_re_cache_window_eviction;
          Alcotest.test_case "serialize roundtrip" `Quick test_re_cache_serialize_roundtrip;
          Alcotest.test_case "clone independence" `Quick test_re_cache_clone_independent;
        ]
        @ qcheck [ prop_re_cache_serialize_roundtrip ] );
      ( "re",
        [
          Alcotest.test_case "encode/decode identity" `Quick test_re_encode_decode_identity;
          Alcotest.test_case "wire shrink" `Quick test_re_encoder_shrinks_wire_bytes;
          Alcotest.test_case "implicit desync on loss" `Quick test_re_implicit_desync_on_loss;
          Alcotest.test_case "explicit survives literal loss" `Quick
            test_re_explicit_survives_literal_loss;
          Alcotest.test_case "decoder clone via chunks" `Quick test_re_decoder_clone_via_chunks;
          Alcotest.test_case "cloned decoder raises events" `Quick
            test_re_decoder_cloned_raises_events;
          Alcotest.test_case "encoder NumCaches/CacheFlows" `Quick
            test_re_encoder_num_caches_clone_and_flows;
        ]
        @ qcheck [ prop_re_lossless_path_decodes ] );
      ( "nat",
        [
          Alcotest.test_case "translation roundtrip" `Quick test_nat_translation_roundtrip;
          Alcotest.test_case "unknown inbound dropped" `Quick test_nat_unknown_inbound_dropped;
          Alcotest.test_case "introspection event" `Quick test_nat_introspection_event;
          Alcotest.test_case "granularity" `Quick test_nat_granularity;
          Alcotest.test_case "move preserves mapping" `Quick test_nat_move_preserves_mapping;
          Alcotest.test_case "static mapping restore" `Quick test_nat_static_mapping_restore;
        ] );
      ( "load_balancer",
        [
          Alcotest.test_case "round robin sticky" `Quick test_lb_round_robin_sticky;
          Alcotest.test_case "granularity rejects 5-tuple" `Quick
            test_lb_granularity_rejects_five_tuple;
          Alcotest.test_case "move keeps backend" `Quick test_lb_move_keeps_backend;
          Alcotest.test_case "least-conn policy" `Quick test_lb_least_conn_policy;
          Alcotest.test_case "reconfigure backends" `Quick test_lb_reconfigure_backends;
        ] );
      ( "firewall",
        [
          Alcotest.test_case "rules and cache" `Quick test_firewall_rules_and_cache;
          Alcotest.test_case "shared report merge" `Quick test_firewall_shared_report_merge;
          Alcotest.test_case "verdict move" `Quick test_firewall_verdict_move;
        ] );
    ]
