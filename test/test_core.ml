(* Tests for the OpenMB framework core: taxonomy, configuration trees,
   chunks, the wire protocol, events, and full controller protocol runs
   against dummy middleboxes. *)

open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

let errt = Alcotest.testable Errors.pp Errors.equal

(* ------------------------------------------------------------------ *)
(* Taxonomy                                                            *)
(* ------------------------------------------------------------------ *)

let test_taxonomy_table1 () =
  Alcotest.(check bool) "config read-only" true
    (Taxonomy.mb_access Taxonomy.Configuring = Taxonomy.Read_only);
  Alcotest.(check bool) "supporting rw" true
    (Taxonomy.mb_access Taxonomy.Supporting = Taxonomy.Read_write);
  Alcotest.(check bool) "reporting wo" true
    (Taxonomy.mb_access Taxonomy.Reporting = Taxonomy.Write_only);
  Alcotest.(check bool) "controller writes config" true
    (Taxonomy.controller_may_write Taxonomy.Configuring);
  Alcotest.(check bool) "controller can't write supporting" false
    (Taxonomy.controller_may_write Taxonomy.Supporting)

let test_taxonomy_operations () =
  (* Move: per-flow supporting/reporting only. *)
  Alcotest.(check bool) "move pf supporting" true
    (Taxonomy.may_move Taxonomy.Supporting Taxonomy.Per_flow);
  Alcotest.(check bool) "move shared supporting" false
    (Taxonomy.may_move Taxonomy.Supporting Taxonomy.Shared);
  (* Clone: never for reporting (double counting). *)
  Alcotest.(check bool) "clone shared supporting" true
    (Taxonomy.may_clone Taxonomy.Supporting Taxonomy.Shared);
  Alcotest.(check bool) "clone reporting forbidden" false
    (Taxonomy.may_clone Taxonomy.Reporting Taxonomy.Shared);
  Alcotest.(check bool) "clone config" true
    (Taxonomy.may_clone Taxonomy.Configuring Taxonomy.Shared);
  (* Merge: shared state only. *)
  Alcotest.(check bool) "merge shared reporting" true
    (Taxonomy.may_merge Taxonomy.Reporting Taxonomy.Shared);
  Alcotest.(check bool) "merge per-flow forbidden" false
    (Taxonomy.may_merge Taxonomy.Supporting Taxonomy.Per_flow)

let test_taxonomy_strings () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "role roundtrip" true
        (Taxonomy.role_of_string (Taxonomy.role_to_string r) = r))
    [ Taxonomy.Configuring; Taxonomy.Supporting; Taxonomy.Reporting ];
  List.iter
    (fun p ->
      Alcotest.(check bool) "partition roundtrip" true
        (Taxonomy.partition_of_string (Taxonomy.partition_to_string p) = p))
    [ Taxonomy.Per_flow; Taxonomy.Shared ]

(* ------------------------------------------------------------------ *)
(* Config tree                                                         *)
(* ------------------------------------------------------------------ *)

let test_config_set_get () =
  let t = Config_tree.create () in
  Config_tree.set t [ "rules"; "http" ] [ Json.String "allow" ];
  Config_tree.set t [ "rules"; "ssh" ] [ Json.String "deny" ];
  Config_tree.set t [ "cache_size" ] [ Json.Int 500 ];
  (match Config_tree.get t [ "rules"; "http" ] with
  | [ { values = [ Json.String "allow" ]; _ } ] -> ()
  | _ -> Alcotest.fail "leaf lookup");
  Alcotest.(check int) "subtree" 2 (List.length (Config_tree.get t [ "rules" ]));
  Alcotest.(check int) "wildcard root" 3 (List.length (Config_tree.get t [ "*" ]));
  Alcotest.(check int) "size" 3 (Config_tree.size t)

let test_config_del () =
  let t = Config_tree.create () in
  Config_tree.set t [ "a"; "b" ] [ Json.Int 1 ];
  Config_tree.set t [ "a"; "c" ] [ Json.Int 2 ];
  Alcotest.(check bool) "del leaf" true (Config_tree.del t [ "a"; "b" ]);
  Alcotest.(check bool) "gone" false (Config_tree.mem t [ "a"; "b" ]);
  Alcotest.(check bool) "sibling intact" true (Config_tree.mem t [ "a"; "c" ]);
  Alcotest.(check bool) "del subtree" true (Config_tree.del t [ "a" ]);
  Alcotest.(check int) "empty" 0 (Config_tree.size t);
  Alcotest.(check bool) "del absent" false (Config_tree.del t [ "zz" ])

let test_config_replace_all () =
  let t = Config_tree.create () in
  Config_tree.set t [ "old" ] [ Json.Int 1 ];
  let src = Config_tree.create () in
  Config_tree.set src [ "x"; "y" ] [ Json.Int 9 ];
  Config_tree.replace_all t (Config_tree.entries src);
  Alcotest.(check bool) "old gone" false (Config_tree.mem t [ "old" ]);
  Alcotest.(check int) "copied" 1 (List.length (Config_tree.get t [ "x"; "y" ]))

let test_config_value_vs_subtree_conflict () =
  let t = Config_tree.create () in
  Config_tree.set t [ "a" ] [ Json.Int 1 ];
  Alcotest.(check bool) "cannot nest under a value" true
    (match Config_tree.set t [ "a"; "b" ] [ Json.Int 2 ] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_config_path_strings () =
  Alcotest.(check string) "join" "a.b.c" (Config_tree.path_to_string [ "a"; "b"; "c" ]);
  Alcotest.(check string) "root" "*" (Config_tree.path_to_string []);
  Alcotest.(check (list string)) "parse" [ "a"; "b" ] (Config_tree.path_of_string "a.b");
  Alcotest.(check (list string)) "parse root" [] (Config_tree.path_of_string "*")

(* ------------------------------------------------------------------ *)
(* Chunks                                                              *)
(* ------------------------------------------------------------------ *)

let test_chunk_seal_unseal () =
  let key = Hfl.of_string "nw_src=10.0.0.1/32" in
  let c =
    Chunk.seal ~mb_kind:"bro" ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow ~key
      ~plain:"secret state"
  in
  (match Chunk.unseal ~mb_kind:"bro" c with
  | Ok s -> Alcotest.(check string) "roundtrip" "secret state" s
  | Error e -> Alcotest.failf "unseal failed: %s" (Errors.to_string e));
  (match Chunk.unseal ~mb_kind:"prads" c with
  | Error (Errors.Bad_chunk _) -> ()
  | Ok _ -> Alcotest.fail "wrong kind must not unseal"
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e))

let test_chunk_opacity () =
  (* The ciphertext must not contain the plaintext. *)
  let plain = "this-is-visible-state-data" in
  let c =
    Chunk.seal ~mb_kind:"bro" ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow
      ~key:Hfl.any ~plain
  in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "ciphertext hides plaintext" false (contains ~sub:"visible" c.cipher)

let test_chunk_compression () =
  let plain = String.concat "" (List.init 100 (fun _ -> "repetitive-state ")) in
  Chunk.compression_enabled := false;
  let raw =
    Chunk.seal ~mb_kind:"bro" ~role:Taxonomy.Supporting ~partition:Taxonomy.Shared
      ~key:Hfl.any ~plain
  in
  Chunk.compression_enabled := true;
  let small =
    Chunk.seal ~mb_kind:"bro" ~role:Taxonomy.Supporting ~partition:Taxonomy.Shared
      ~key:Hfl.any ~plain
  in
  Chunk.compression_enabled := false;
  Alcotest.(check bool) "compressed smaller" true
    (Chunk.size_bytes small < Chunk.size_bytes raw);
  (match Chunk.unseal ~mb_kind:"bro" small with
  | Ok s -> Alcotest.(check string) "compressed roundtrip" plain s
  | Error e -> Alcotest.failf "unseal failed: %s" (Errors.to_string e))

let prop_chunk_roundtrip =
  QCheck2.Test.make ~name:"chunk seal/unseal round-trip" ~count:200
    QCheck2.Gen.(pair (string_size (int_range 0 500)) (string_size (int_range 1 10)))
    (fun (plain, kind) ->
      let c =
        Chunk.seal ~mb_kind:kind ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow
          ~key:Hfl.any ~plain
      in
      Chunk.unseal ~mb_kind:kind c = Ok plain)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let mk_packet ?(id = 0) () =
  Packet.make ~id ~ts:Time.zero ~src_ip:(Addr.of_string "10.0.0.1")
    ~dst_ip:(Addr.of_string "1.1.1.1") ~src_port:1234 ~dst_port:80 ~proto:Packet.Tcp ()

let test_event_filter () =
  let f = Event.Filter.create () in
  let intro code =
    Event.Introspect { code; key = Hfl.of_string "nw_src=10.0.0.1/32"; info = Json.Null }
  in
  Alcotest.(check bool) "disabled by default" false (Event.Filter.admits f (intro "nat.new"));
  Alcotest.(check bool) "reprocess always admitted" true
    (Event.Filter.admits f (Event.Reprocess { key = Hfl.any; packet = mk_packet () }));
  Event.Filter.enable f ~codes:[ "nat.new" ] ~key:(Hfl.of_string "nw_src=10.0.0.0/8");
  Alcotest.(check bool) "enabled code+key" true (Event.Filter.admits f (intro "nat.new"));
  Alcotest.(check bool) "other code still blocked" false
    (Event.Filter.admits f (intro "lb.assign"));
  Event.Filter.disable f ~codes:[ "nat.new" ];
  Alcotest.(check bool) "disabled again" false (Event.Filter.admits f (intro "nat.new"))

let test_event_filter_key_scope () =
  let f = Event.Filter.create () in
  Event.Filter.enable f ~codes:[] ~key:(Hfl.of_string "nw_src=10.0.0.0/8");
  let intro src =
    Event.Introspect
      { code = "x"; key = Hfl.of_string (Printf.sprintf "nw_src=%s/32" src); info = Json.Null }
  in
  Alcotest.(check bool) "in scope" true (Event.Filter.admits f (intro "10.1.2.3"));
  Alcotest.(check bool) "out of scope" false (Event.Filter.admits f (intro "192.168.1.1"))

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

let roundtrip_request req =
  let msg = { Message.op = 7; tid = 0; req } in
  let j = Message.request_to_json msg in
  let back = Message.request_of_json (Json.of_string (Json.to_string j)) in
  Alcotest.(check bool)
    (Printf.sprintf "request roundtrip: %s" (Message.describe_request req))
    true (back = msg)

(* The causality id on the envelope: omitted from the JSON encoding
   when 0 (untraced messages stay byte-identical to the pre-telemetry
   wire format) and round-trips under both framings otherwise. *)
let test_message_tid_roundtrip () =
  let req = Message.Get_support_perflow (Hfl.of_string "nw_src=10.0.0.0/24") in
  (match Message.request_to_json { Message.op = 3; tid = 0; req } with
  | Json.Assoc fields ->
    Alcotest.(check bool) "tid omitted when 0" false (List.mem_assoc "tid" fields)
  | _ -> Alcotest.fail "request did not encode to an object");
  List.iter
    (fun tid ->
      let msg = { Message.op = 3; tid; req } in
      List.iter
        (fun framing ->
          Alcotest.(check bool)
            (Printf.sprintf "tid=%d survives the wire" tid)
            true
            (Message.request_of_wire (Message.request_to_wire ~framing msg) = msg))
        [ Framing.Json; Framing.Binary ])
    [ 0; 1; 77; 123_456_789 ]

let test_message_request_roundtrips () =
  let key = Hfl.of_string "nw_src=10.0.0.0/24,tp_dst=80" in
  let chunk =
    Chunk.seal ~mb_kind:"bro" ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow ~key
      ~plain:"some\nbinary\x01payload"
  in
  List.iter roundtrip_request
    [
      Message.Get_config [ "rules"; "http" ];
      Message.Set_config ([ "cache" ], [ Json.Int 500; Json.String "lru" ]);
      Message.Del_config [ "rules" ];
      Message.Get_support_perflow key;
      Message.Put_support_perflow { seq = 9; chunk };
      Message.Del_support_perflow key;
      Message.Get_support_shared;
      Message.Put_support_shared
        {
          seq = 10;
          chunk =
            Chunk.seal ~mb_kind:"re-decoder" ~role:Taxonomy.Supporting
              ~partition:Taxonomy.Shared ~key:Hfl.any ~plain:"cache";
        };
      Message.Put_batch { seq = 11; chunks = [ chunk; chunk ] };
      Message.Abort_perflow key;
      Message.Get_report_perflow key;
      Message.Del_report_perflow key;
      Message.Get_report_shared;
      Message.Get_stats key;
      Message.Enable_events { codes = [ "nat.new" ]; key };
      Message.Disable_events { codes = [] };
      Message.Reprocess_packet { key; packet = mk_packet () };
    ]

let roundtrip_reply reply =
  let msg = Message.Reply { op = 3; reply } in
  let j = Message.from_mb_to_json msg in
  let back = Message.from_mb_of_json (Json.of_string (Json.to_string j)) in
  Alcotest.(check bool)
    (Printf.sprintf "reply roundtrip: %s" (Message.describe_reply reply))
    true (back = msg)

let test_message_reply_roundtrips () =
  List.iter roundtrip_reply
    [
      Message.State_chunk
        (Chunk.seal ~mb_kind:"prads" ~role:Taxonomy.Reporting ~partition:Taxonomy.Per_flow
           ~key:(Hfl.of_string "tp_src=99") ~plain:"rec");
      Message.End_of_state { count = 42 };
      Message.Ack;
      Message.Batch_ack
        { seq = 8; count = 3; errors = [ (1, Errors.Bad_chunk "mac") ] };
      Message.Config_values
        [ { Config_tree.path = [ "a"; "b" ]; values = [ Json.Int 1 ] } ];
      Message.Stats_reply
        {
          Southbound.perflow_support_chunks = 1;
          perflow_report_chunks = 2;
          perflow_support_bytes = 300;
          perflow_report_bytes = 400;
          shared_support_bytes = 5;
          shared_report_bytes = 6;
        };
      Message.Op_error Errors.Granularity_too_fine;
      Message.Op_error (Errors.Unknown_mb "x");
    ]

let test_message_event_roundtrips () =
  let events =
    [
      Event.Reprocess { key = Hfl.of_string "tp_dst=80"; packet = mk_packet () };
      Event.Introspect
        {
          code = "nat.new_mapping";
          key = Hfl.of_string "nw_src=10.0.0.1/32";
          info = Json.Assoc [ ("ext_port", Json.Int 4242) ];
        };
    ]
  in
  List.iter
    (fun ev ->
      let msg = Message.Event_msg ev in
      let back = Message.from_mb_of_json (Json.of_string (Json.to_string (Message.from_mb_to_json msg))) in
      Alcotest.(check bool) "event roundtrip" true (back = msg))
    events

let test_message_wire_bytes_chunked () =
  let chunk =
    Chunk.seal ~mb_kind:"bro" ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow
      ~key:Hfl.any ~plain:(String.make 1000 'x')
  in
  let msg = { Message.op = 0; tid = 0; req = Message.Put_support_perflow { seq = 0; chunk } } in
  Alcotest.(check bool) "wire size covers chunk body" true
    (Message.request_wire_bytes msg >= 1000)

(* ------------------------------------------------------------------ *)
(* Binary codec equivalence                                            *)
(* ------------------------------------------------------------------ *)

let all_requests () =
  let key = Hfl.of_string "nw_src=10.0.0.0/24,tp_dst=80" in
  let chunk kind =
    Chunk.seal ~mb_kind:kind ~role:Taxonomy.Reporting ~partition:Taxonomy.Per_flow ~key
      ~plain:"some\nbinary\x01payload"
  in
  [
    Message.Get_config [ "rules"; "http" ];
    Message.Get_config [];
    Message.Set_config ([ "cache" ], [ Json.Int 500; Json.String "lru"; Json.Null ]);
    Message.Del_config [ "rules" ];
    Message.Get_support_perflow key;
    Message.Put_support_perflow { seq = 0; chunk = chunk "bro" };
    Message.Del_support_perflow key;
    Message.Get_support_shared;
    Message.Put_support_shared { seq = 123456; chunk = chunk "re-encoder" };
    Message.Put_batch { seq = 7; chunks = [ chunk "bro"; chunk "bro"; chunk "bro" ] };
    Message.Put_batch { seq = 8; chunks = [] };
    Message.Abort_perflow key;
    Message.Abort_perflow Hfl.any;
    Message.Get_report_perflow key;
    Message.Put_report_perflow { seq = 1; chunk = chunk "prads" };
    Message.Del_report_perflow Hfl.any;
    Message.Get_report_shared;
    Message.Put_report_shared { seq = 2; chunk = chunk "prads" };
    Message.Get_stats key;
    Message.Enable_events { codes = [ "nat.new"; "lb.assign" ]; key };
    Message.Disable_events { codes = [] };
    Message.Reprocess_packet { key; packet = mk_packet ~id:77 () };
  ]

let all_replies () =
  [
    Message.State_chunk
      (Chunk.seal ~mb_kind:"prads" ~role:Taxonomy.Reporting ~partition:Taxonomy.Per_flow
         ~key:(Hfl.of_string "tp_src=99") ~plain:"rec");
    Message.End_of_state { count = 42 };
    Message.Ack;
    Message.Batch_ack { seq = 0; count = 16; errors = [] };
    Message.Batch_ack
      { seq = 99; count = 2; errors = [ (0, Errors.Op_failed "x"); (1, Errors.Timeout "y") ] };
    Message.Config_values
      [
        { Config_tree.path = [ "a"; "b" ]; values = [ Json.Int 1 ] };
        {
          Config_tree.path = [ "c" ];
          values = [ Json.List [ Json.Bool true; Json.Float 2.5 ]; Json.Assoc [ ("k", Json.Null) ] ];
        };
      ];
    Message.Stats_reply
      {
        Southbound.perflow_support_chunks = 1;
        perflow_report_chunks = 2;
        perflow_support_bytes = 300;
        perflow_report_bytes = 400;
        shared_support_bytes = 5;
        shared_report_bytes = 6;
      };
    Message.Op_error Errors.Granularity_too_fine;
    Message.Op_error (Errors.Unknown_mb "x");
    Message.Op_error (Errors.Illegal_operation "move shared");
    Message.Op_error (Errors.Unknown_config_key "a.b");
    Message.Op_error (Errors.Bad_chunk "mac");
    Message.Op_error (Errors.Op_failed "boom");
    Message.Op_error (Errors.Timeout "op=3 putBatch[16]");
    Message.Op_error (Errors.Move_aborted "timed out: getSupportPerflow");
  ]

let all_events () =
  [
    Event.Reprocess { key = Hfl.of_string "tp_dst=80"; packet = mk_packet () };
    Event.Introspect
      {
        code = "nat.new_mapping";
        key = Hfl.of_string "nw_src=10.0.0.1/32";
        info = Json.Assoc [ ("ext_port", Json.Int 4242) ];
      };
  ]

let test_request_codec_equivalence () =
  List.iter
    (fun req ->
      let msg = { Message.op = 11; tid = 0; req } in
      let bin = Message.request_to_wire ~framing:Framing.Binary msg in
      let json = Message.request_to_wire msg in
      let what = Message.describe_request req in
      Alcotest.(check bool) (what ^ ": binary is tagged") true (bin.[0] = '\x42');
      Alcotest.(check bool) (what ^ ": binary decodes") true
        (Message.request_of_wire bin = msg);
      Alcotest.(check bool) (what ^ ": json decodes") true
        (Message.request_of_wire json = msg);
      Alcotest.(check int)
        (what ^ ": binary wire bytes are exact")
        (4 + String.length bin)
        (Message.request_wire_bytes ~framing:Framing.Binary msg);
      Alcotest.(check bool) (what ^ ": binary is no larger than json") true
        (String.length bin <= String.length json))
    (all_requests ())

let test_reply_codec_equivalence () =
  let msgs =
    List.map (fun reply -> Message.Reply { op = 3; reply }) (all_replies ())
    @ List.map (fun ev -> Message.Event_msg ev) (all_events ())
  in
  List.iter
    (fun msg ->
      let bin = Message.from_mb_to_wire ~framing:Framing.Binary msg in
      let json = Message.from_mb_to_wire msg in
      Alcotest.(check bool) "binary decodes" true (Message.from_mb_of_wire bin = msg);
      Alcotest.(check bool) "json decodes" true (Message.from_mb_of_wire json = msg);
      Alcotest.(check int) "binary wire bytes are exact" (4 + String.length bin)
        (Message.reply_wire_bytes ~framing:Framing.Binary msg))
    msgs

let test_chunk_wire_roundtrip () =
  let c =
    Chunk.seal ~mb_kind:"bro" ~role:Taxonomy.Supporting ~partition:Taxonomy.Shared
      ~key:(Hfl.of_string "nw_dst=1.1.1.0/24,proto=udp")
      ~plain:"shared\x00cache"
  in
  Alcotest.(check bool) "chunk frame round-trips" true
    (Message.chunk_of_wire (Message.chunk_to_wire c) = c)

let test_binary_decode_rejects_garbage () =
  let fails s =
    match Message.request_of_wire s with
    | _ -> Alcotest.fail "garbage accepted"
    | exception Openmb_wire.Binary.Decode_error _ -> ()
  in
  (* Tagged as binary but truncated / trailing garbage. *)
  let bin =
    Message.request_to_wire ~framing:Framing.Binary
      { Message.op = 1; tid = 0; req = Message.Get_support_shared }
  in
  fails (String.sub bin 0 (String.length bin - 1));
  fails (bin ^ "\x00")

(* ------------------------------------------------------------------ *)
(* Controller end-to-end                                               *)
(* ------------------------------------------------------------------ *)

(* A fast controller config so tests needn't simulate 5 s quiescence. *)
let test_config =
  {
    Controller.default_config with
    quiescence = Time.ms 50.0;
    channel_latency = Time.us 100.0;
  }

type rig = {
  engine : Engine.t;
  ctrl : Controller.t;
  src : Openmb_apps.Dummy_mb.t;
  dst : Openmb_apps.Dummy_mb.t;
}

let make_rig ?(src_chunks = 20) ?granularity ?kind () =
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:test_config () in
  let src = Openmb_apps.Dummy_mb.create engine ?granularity ?kind ~name:"src" () in
  let dst = Openmb_apps.Dummy_mb.create engine ?granularity ?kind ~name:"dst" () in
  Openmb_apps.Dummy_mb.populate src ~n:src_chunks;
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl src) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl dst) ());
  { engine; ctrl; src; dst }

let test_move_internal_basic () =
  let r = make_rig ~src_chunks:20 () in
  let result = ref None in
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      result := Some res);
  Engine.run r.engine;
  (match !result with
  | Some (Ok mr) ->
    Alcotest.(check int) "all chunks moved" 20 mr.Controller.chunks_moved;
    Alcotest.(check bool) "bytes accounted" true (mr.Controller.bytes_moved > 20 * 100)
  | Some (Error e) -> Alcotest.failf "move failed: %s" (Errors.to_string e)
  | None -> Alcotest.fail "move never returned");
  Alcotest.(check int) "dst has the state" 20 (Openmb_apps.Dummy_mb.chunk_count r.dst);
  (* After quiescence the deferred delete must have emptied the src. *)
  Alcotest.(check int) "src deleted after quiescence" 0
    (Openmb_apps.Dummy_mb.chunk_count r.src);
  Alcotest.(check int) "no transfers left" 0 (Controller.active_transfers r.ctrl)

let test_move_internal_subset () =
  let r = make_rig ~src_chunks:30 () in
  (* Keys are 10.0.0.x for the first 250 chunks; move a /30 slice. *)
  let key = Hfl.of_string "nw_src=10.0.0.4/30" in
  let result = ref None in
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst" ~key ~on_done:(fun res ->
      result := Some res);
  Engine.run r.engine;
  (match !result with
  | Some (Ok mr) -> Alcotest.(check int) "4 chunks in slice" 4 mr.Controller.chunks_moved
  | _ -> Alcotest.fail "move failed");
  Alcotest.(check int) "dst got slice" 4 (Openmb_apps.Dummy_mb.chunk_count r.dst);
  Alcotest.(check int) "src kept the rest" 26 (Openmb_apps.Dummy_mb.chunk_count r.src)

let test_move_unknown_mb () =
  let r = make_rig () in
  let result = ref None in
  Controller.move_internal r.ctrl ~src:"nope" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      result := Some res);
  Engine.run r.engine;
  match !result with
  | Some (Error e) -> Alcotest.check errt "unknown mb" (Errors.Unknown_mb "nope") e
  | _ -> Alcotest.fail "expected failure"

let test_move_granularity_error () =
  (* MB keyed on src ip/port only; a dst-port request is finer. *)
  let r = make_rig ~granularity:Hfl.[ Dim_src_ip; Dim_src_port ] () in
  let result = ref None in
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst"
    ~key:(Hfl.of_string "tp_dst=80")
    ~on_done:(fun res -> result := Some res);
  Engine.run r.engine;
  match !result with
  | Some (Error e) -> Alcotest.check errt "granularity" Errors.Granularity_too_fine e
  | _ -> Alcotest.fail "expected granularity error"

let test_move_kind_mismatch () =
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:test_config () in
  let src = Openmb_apps.Dummy_mb.create engine ~kind:"bro" ~name:"src" () in
  let dst = Openmb_apps.Dummy_mb.create engine ~kind:"prads" ~name:"dst" () in
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl src) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl dst) ());
  let result = ref None in
  Controller.move_internal ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      result := Some res);
  Engine.run engine;
  match !result with
  | Some (Error (Errors.Illegal_operation _)) -> ()
  | _ -> Alcotest.fail "expected kind-mismatch error"

let test_move_with_events_buffered_and_forwarded () =
  let r = make_rig ~src_chunks:50 () in
  (* The source raises re-process events while the move is in
     flight; every one must reach the destination exactly once. *)
  Openmb_apps.Dummy_mb.start_events r.src ~rate_pps:2000.0;
  let result = ref None in
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      result := Some res;
      (* Stop events shortly after the move returns so quiescence can
         be reached. *)
      ignore
        (Engine.schedule_after r.engine (Time.ms 10.0) (fun () ->
             Openmb_apps.Dummy_mb.stop_events r.src)));
  Engine.run r.engine;
  (match !result with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "move failed");
  Alcotest.(check bool) "events were forwarded" true (Controller.events_forwarded r.ctrl > 0);
  Alcotest.(check int) "every forwarded event was replayed at dst"
    (Controller.events_forwarded r.ctrl)
    (Openmb_apps.Dummy_mb.reprocessed r.dst);
  Alcotest.(check int) "none dropped" 0 (Controller.events_dropped r.ctrl)

let test_event_for_unmoved_state_dropped () =
  let r = make_rig ~src_chunks:10 () in
  (* Events with no active transfer are dropped and counted. *)
  Openmb_apps.Dummy_mb.start_events r.src ~rate_pps:1000.0;
  ignore
    (Engine.schedule_after r.engine (Time.ms 20.0) (fun () ->
         Openmb_apps.Dummy_mb.stop_events r.src));
  Engine.run r.engine;
  Alcotest.(check bool) "dropped counted" true (Controller.events_dropped r.ctrl > 0);
  Alcotest.(check int) "nothing forwarded" 0 (Controller.events_forwarded r.ctrl)

let test_clone_support () =
  let r = make_rig () in
  Openmb_apps.Dummy_mb.set_shared_support r.src "the-cache";
  let result = ref None in
  Controller.clone_support r.ctrl ~src:"src" ~dst:"dst" ~on_done:(fun res ->
      result := Some res);
  Engine.run r.engine;
  (match !result with
  | Some (Ok mr) -> Alcotest.(check int) "one chunk" 1 mr.Controller.chunks_moved
  | _ -> Alcotest.fail "clone failed");
  Alcotest.(check (option string)) "dst has the clone" (Some "the-cache")
    (Openmb_apps.Dummy_mb.shared_support r.dst);
  (* Clone must NOT delete the source copy. *)
  Alcotest.(check (option string)) "src keeps its copy" (Some "the-cache")
    (Openmb_apps.Dummy_mb.shared_support r.src)

let test_merge_internal () =
  let r = make_rig () in
  Openmb_apps.Dummy_mb.set_shared_support r.src "src-sup";
  Openmb_apps.Dummy_mb.set_shared_report r.src "src-rep";
  Openmb_apps.Dummy_mb.set_shared_support r.dst "dst-sup";
  Openmb_apps.Dummy_mb.set_shared_report r.dst "dst-rep";
  let result = ref None in
  Controller.merge_internal r.ctrl ~src:"src" ~dst:"dst" ~on_done:(fun res ->
      result := Some res);
  Engine.run r.engine;
  (match !result with
  | Some (Ok mr) -> Alcotest.(check int) "two shared chunks" 2 mr.Controller.chunks_moved
  | _ -> Alcotest.fail "merge failed");
  Alcotest.(check (option string)) "supporting merged" (Some "dst-sup+src-sup")
    (Openmb_apps.Dummy_mb.shared_support r.dst);
  Alcotest.(check (option string)) "reporting merged" (Some "dst-rep+src-rep")
    (Openmb_apps.Dummy_mb.shared_report r.dst)

let test_merge_with_empty_shared () =
  (* PRADS-style: no shared supporting state; merge must still
     complete via the reporting chunk alone. *)
  let r = make_rig () in
  Openmb_apps.Dummy_mb.set_shared_report r.src "only-rep";
  let result = ref None in
  Controller.merge_internal r.ctrl ~src:"src" ~dst:"dst" ~on_done:(fun res ->
      result := Some res);
  Engine.run r.engine;
  (match !result with
  | Some (Ok mr) -> Alcotest.(check int) "one chunk" 1 mr.Controller.chunks_moved
  | _ -> Alcotest.fail "merge failed");
  Alcotest.(check (option string)) "reporting arrived" (Some "only-rep")
    (Openmb_apps.Dummy_mb.shared_report r.dst)

let test_read_write_config () =
  let r = make_rig () in
  Config_tree.set (Openmb_mbox.Mb_base.config (Openmb_apps.Dummy_mb.base r.src))
    [ "policy" ] [ Json.String "strict" ];
  let got = ref None in
  Controller.read_config r.ctrl ~src:"src" ~key:[ "policy" ] ~on_done:(fun res ->
      got := Some res);
  Engine.run r.engine;
  (match !got with
  | Some (Ok [ { Config_tree.values = [ Json.String "strict" ]; _ } ]) -> ()
  | _ -> Alcotest.fail "read_config");
  (* Clone it to the destination. *)
  let wrote = ref None in
  Controller.write_config r.ctrl ~dst:"dst" ~key:[ "policy" ]
    ~values:[ Json.String "strict" ] ~on_done:(fun res -> wrote := Some res);
  Engine.run r.engine;
  (match !wrote with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "write_config");
  match
    Config_tree.get (Openmb_mbox.Mb_base.config (Openmb_apps.Dummy_mb.base r.dst))
      [ "policy" ]
  with
  | [ { Config_tree.values = [ Json.String "strict" ]; _ } ] -> ()
  | _ -> Alcotest.fail "config not applied at dst"

let test_read_config_unknown_key () =
  let r = make_rig () in
  let got = ref None in
  Controller.read_config r.ctrl ~src:"src" ~key:[ "no"; "such" ] ~on_done:(fun res ->
      got := Some res);
  Engine.run r.engine;
  match !got with
  | Some (Error (Errors.Unknown_config_key _)) -> ()
  | _ -> Alcotest.fail "expected unknown-key error"

let test_stats_call () =
  let r = make_rig ~src_chunks:15 () in
  let got = ref None in
  Controller.stats r.ctrl ~src:"src" ~key:Hfl.any ~on_done:(fun res -> got := Some res);
  Engine.run r.engine;
  match !got with
  | Some (Ok s) ->
    Alcotest.(check int) "chunk count" 15 s.Southbound.perflow_support_chunks;
    Alcotest.(check int) "bytes" (15 * 202) s.Southbound.perflow_support_bytes
  | _ -> Alcotest.fail "stats failed"

let test_introspection_subscription () =
  let r = make_rig () in
  let seen = ref [] in
  Controller.subscribe_introspection r.ctrl ~mb:"src" ~codes:[ "test.event" ] ~key:Hfl.any
    ~handler:(fun ev -> seen := ev :: !seen)
    ();
  (* Give the Enable_events message time to land, then raise events. *)
  ignore
    (Engine.schedule_after r.engine (Time.ms 5.0) (fun () ->
         Openmb_mbox.Mb_base.raise_event (Openmb_apps.Dummy_mb.base r.src)
           (Event.Introspect { code = "test.event"; key = Hfl.any; info = Json.Null });
         Openmb_mbox.Mb_base.raise_event (Openmb_apps.Dummy_mb.base r.src)
           (Event.Introspect { code = "other.event"; key = Hfl.any; info = Json.Null })));
  Engine.run r.engine;
  Alcotest.(check int) "only subscribed code delivered" 1 (List.length !seen)

let test_concurrent_moves () =
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:test_config () in
  let mbs =
    List.init 4 (fun i ->
        let mb = Openmb_apps.Dummy_mb.create engine ~name:(Printf.sprintf "mb%d" i) () in
        Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl mb) ());
        mb)
  in
  (match mbs with
  | [ a; _b; c; _d ] ->
    Openmb_apps.Dummy_mb.populate a ~n:25;
    Openmb_apps.Dummy_mb.populate c ~n:25
  | _ -> assert false);
  let done_count = ref 0 in
  Controller.move_internal ctrl ~src:"mb0" ~dst:"mb1" ~key:Hfl.any ~on_done:(fun res ->
      (match res with Ok _ -> incr done_count | Error _ -> ()));
  Controller.move_internal ctrl ~src:"mb2" ~dst:"mb3" ~key:Hfl.any ~on_done:(fun res ->
      (match res with Ok _ -> incr done_count | Error _ -> ()));
  Engine.run engine;
  Alcotest.(check int) "both moves completed" 2 !done_count;
  (match mbs with
  | [ _; b; _; d ] ->
    Alcotest.(check int) "mb1 got state" 25 (Openmb_apps.Dummy_mb.chunk_count b);
    Alcotest.(check int) "mb3 got state" 25 (Openmb_apps.Dummy_mb.chunk_count d)
  | _ -> assert false)

let test_clone_config () =
  let r = make_rig () in
  let cfg = Openmb_mbox.Mb_base.config (Openmb_apps.Dummy_mb.base r.src) in
  Config_tree.set cfg [ "rules"; "http" ] [ Json.String "allow" ];
  Config_tree.set cfg [ "rules"; "ssh" ] [ Json.String "deny" ];
  Config_tree.set cfg [ "cache" ] [ Json.Int 512 ];
  let result = ref None in
  Controller.clone_config r.ctrl ~src:"src" ~dst:"dst" ~key:[] ~on_done:(fun res ->
      result := Some res);
  Engine.run r.engine;
  (match !result with
  | Some (Ok n) -> Alcotest.(check int) "three entries cloned" 3 n
  | _ -> Alcotest.fail "cloneConfig failed");
  let dst_cfg = Openmb_mbox.Mb_base.config (Openmb_apps.Dummy_mb.base r.dst) in
  Alcotest.(check int) "destination has the subtree" 3 (Config_tree.size dst_cfg);
  match Config_tree.get dst_cfg [ "rules"; "ssh" ] with
  | [ { Config_tree.values = [ Json.String "deny" ]; _ } ] -> ()
  | _ -> Alcotest.fail "cloned value wrong"

let test_clone_config_unknown_dst () =
  let r = make_rig () in
  Config_tree.set (Openmb_mbox.Mb_base.config (Openmb_apps.Dummy_mb.base r.src))
    [ "x" ] [ Json.Int 1 ];
  let result = ref None in
  Controller.clone_config r.ctrl ~src:"src" ~dst:"nope" ~key:[] ~on_done:(fun res ->
      result := Some res);
  Engine.run r.engine;
  match !result with
  | Some (Error (Errors.Unknown_mb _)) -> ()
  | _ -> Alcotest.fail "expected unknown-mb error"

let test_timed_subscription_expires () =
  let r = make_rig () in
  let seen = ref 0 in
  Controller.subscribe_introspection r.ctrl ~expires_after:(Time.ms 100.0) ~mb:"src"
    ~codes:[ "tick" ] ~key:Hfl.any
    ~handler:(fun _ -> incr seen)
    ();
  let raise_at ts =
    ignore
      (Engine.schedule_at r.engine (Time.ms ts) (fun () ->
           Openmb_mbox.Mb_base.raise_event (Openmb_apps.Dummy_mb.base r.src)
             (Event.Introspect { code = "tick"; key = Hfl.any; info = Json.Null })))
  in
  raise_at 20.0;
  raise_at 50.0;
  raise_at 200.0;
  (* after expiry *)
  Engine.run r.engine;
  Alcotest.(check int) "only events before expiry delivered" 2 !seen

let test_unsubscribe () =
  let r = make_rig () in
  let seen = ref 0 in
  Controller.subscribe_introspection r.ctrl ~mb:"src" ~codes:[ "tick" ] ~key:Hfl.any
    ~handler:(fun _ -> incr seen)
    ();
  ignore
    (Engine.schedule_at r.engine (Time.ms 20.0) (fun () ->
         Openmb_mbox.Mb_base.raise_event (Openmb_apps.Dummy_mb.base r.src)
           (Event.Introspect { code = "tick"; key = Hfl.any; info = Json.Null })));
  ignore
    (Engine.schedule_at r.engine (Time.ms 40.0) (fun () ->
         Controller.unsubscribe_introspection r.ctrl ~mb:"src" ~codes:[ "tick" ]));
  ignore
    (Engine.schedule_at r.engine (Time.ms 60.0) (fun () ->
         Openmb_mbox.Mb_base.raise_event (Openmb_apps.Dummy_mb.base r.src)
           (Event.Introspect { code = "tick"; key = Hfl.any; info = Json.Null })));
  Engine.run r.engine;
  Alcotest.(check int) "nothing delivered after unsubscribe" 1 !seen

let test_disconnect_mid_move () =
  (* The destination vanishes while a move streams: the controller must
     not crash, and the transfer is abandoned (puts can no longer be
     delivered, so the move never returns success). *)
  let r = make_rig ~src_chunks:200 () in
  let result = ref None in
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      result := Some res);
  ignore
    (Engine.schedule_after r.engine (Time.us 400.0) (fun () ->
         Controller.disconnect r.ctrl "dst"));
  Engine.run r.engine;
  (match !result with
  | Some (Ok _) -> Alcotest.fail "move must not complete against a dead destination"
  | Some (Error _) | None -> ());
  Alcotest.(check int) "source keeps its state" 200 (Openmb_apps.Dummy_mb.chunk_count r.src)

let test_corrupt_chunk_rejected () =
  (* A chunk whose ciphertext was corrupted in transit must be refused
     by the destination, failing the move rather than importing
     garbage. *)
  let r = make_rig ~src_chunks:1 () in
  let impl_src = Openmb_apps.Dummy_mb.impl r.src in
  let chunk =
    match impl_src.Southbound.get_support_perflow Hfl.any with
    | Ok [ c ] -> c
    | _ -> Alcotest.fail "expected one chunk"
  in
  let corrupt = { chunk with Chunk.cipher = "garbage" ^ chunk.Chunk.cipher } in
  let impl_dst = Openmb_apps.Dummy_mb.impl r.dst in
  match impl_dst.Southbound.put_support_perflow corrupt with
  | Error (Errors.Bad_chunk _) -> ()
  | Ok () -> Alcotest.fail "corrupt chunk accepted"
  | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)

let test_move_empty_key_range () =
  (* Moving a key that matches nothing returns successfully with zero
     chunks (and the deferred delete is a harmless no-op). *)
  let r = make_rig ~src_chunks:5 () in
  let result = ref None in
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst"
    ~key:(Hfl.of_string "nw_src=192.168.0.0/16")
    ~on_done:(fun res -> result := Some res);
  Engine.run r.engine;
  (match !result with
  | Some (Ok mr) -> Alcotest.(check int) "zero chunks" 0 mr.Controller.chunks_moved
  | _ -> Alcotest.fail "empty move failed");
  Alcotest.(check int) "source untouched" 5 (Openmb_apps.Dummy_mb.chunk_count r.src)

let test_event_wire_bytes () =
  let reprocess = Event.Reprocess { key = Hfl.any; packet = mk_packet () } in
  Alcotest.(check bool) "reprocess carries the packet" true
    (Event.wire_bytes reprocess >= Packet.wire_bytes (mk_packet ()));
  let intro =
    Event.Introspect
      { code = "nat.new_mapping"; key = Hfl.of_string "tp_src=1"; info = Json.Assoc [] }
  in
  Alcotest.(check bool) "introspection is small" true (Event.wire_bytes intro < 100)

let test_buffered_peak_tracked () =
  (* Chunks serialize slowly while events pour in: the controller must
     buffer them (peak > 0) and forward every one afterwards. *)
  let r = make_rig ~src_chunks:100 () in
  Openmb_apps.Dummy_mb.start_events r.src ~rate_pps:5000.0;
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun _ ->
      ignore
        (Engine.schedule_after r.engine (Time.ms 5.0) (fun () ->
             Openmb_apps.Dummy_mb.stop_events r.src)));
  Engine.run r.engine;
  Alcotest.(check bool) "events were buffered at some point" true
    (Controller.events_buffered_peak r.ctrl > 0);
  Alcotest.(check int) "all buffered events eventually replayed"
    (Controller.events_forwarded r.ctrl)
    (Openmb_apps.Dummy_mb.reprocessed r.dst)

let test_duplicate_connect_rejected () =
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:test_config () in
  let mb = Openmb_apps.Dummy_mb.create engine ~name:"x" () in
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl mb) ());
  Alcotest.check_raises "duplicate" (Failure "Controller.connect: duplicate MB name x")
    (fun () ->
      Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl mb) ()))

let test_move_under_binary_framing () =
  (* The negotiated framing only changes byte accounting on the
     simulated channels; a move must produce identical functional
     results under either, and binary framing must not inflate the
     bytes transferred. *)
  let run ?framing_override config_framing =
    let engine = Engine.create () in
    let ctrl =
      Controller.create engine
        ~config:{ test_config with Controller.framing = config_framing }
        ()
    in
    let src = Openmb_apps.Dummy_mb.create engine ~name:"src" () in
    let dst = Openmb_apps.Dummy_mb.create engine ~name:"dst" () in
    Openmb_apps.Dummy_mb.populate src ~n:20;
    Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl src) ());
    Controller.connect ctrl ?framing:framing_override
      (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl dst) ());
    let result = ref None in
    Controller.move_internal ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
        result := Some res);
    Engine.run engine;
    match !result with
    | Some (Ok mr) ->
      ( (mr.Controller.chunks_moved, mr.Controller.bytes_moved),
        mr.Controller.duration,
        Openmb_apps.Dummy_mb.chunk_count dst,
        Openmb_apps.Dummy_mb.chunk_count src )
    | _ -> Alcotest.fail "move failed"
  in
  let moved_j, dur_json, dj, sj = run Framing.Json in
  let moved_b, dur_bin, db, sb = run Framing.Binary in
  Alcotest.(check (pair int int)) "json moved everything" (20, snd moved_j) moved_j;
  Alcotest.(check (pair int int)) "identical state accounting" moved_j moved_b;
  Alcotest.(check (pair int int)) "same dst/src occupancy" (dj, sj) (db, sb);
  (* Smaller messages on the simulated channels: the move returns
     sooner under binary framing. *)
  Alcotest.(check bool) "binary move is faster" true
    (Time.to_seconds dur_bin < Time.to_seconds dur_json);
  (* A per-connection override on one MB must coexist with JSON peers. *)
  let moved_m, _, dm, sm = run ~framing_override:Framing.Binary Framing.Json in
  Alcotest.(check (pair int int)) "mixed framing same accounting" moved_j moved_m;
  Alcotest.(check (pair int int)) "mixed framing same occupancy" (dj, sj) (dm, sm)

(* Protocol-level property: an arbitrary sequence of moves between
   three MBs neither loses nor duplicates state — every chunk ends up
   at exactly one instance, and the union of keys is preserved. *)
let prop_moves_conserve_state =
  QCheck2.Test.make ~name:"random move sequences conserve state" ~count:25
    QCheck2.Gen.(
      pair (int_range 1 30) (list_size (int_range 1 6) (pair (int_bound 2) (int_bound 2))))
    (fun (n_chunks, moves) ->
      let engine = Engine.create () in
      let ctrl = Controller.create engine ~config:test_config () in
      let mbs =
        Array.init 3 (fun i ->
            let mb =
              Openmb_apps.Dummy_mb.create engine ~name:(Printf.sprintf "mb%d" i) ()
            in
            Controller.connect ctrl
              (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl mb) ());
            mb)
      in
      Openmb_apps.Dummy_mb.populate mbs.(0) ~n:n_chunks;
      (* Execute the moves strictly one after another (each waits for
         the previous to return), self-moves skipped. *)
      let rec run_moves = function
        | [] -> ()
        | (src, dst) :: rest ->
          if src = dst then run_moves rest
          else
            Controller.move_internal ctrl
              ~src:(Printf.sprintf "mb%d" src)
              ~dst:(Printf.sprintf "mb%d" dst)
              ~key:Hfl.any
              ~on_done:(fun _ -> run_moves rest)
      in
      run_moves moves;
      Engine.run engine;
      let counts = Array.map Openmb_apps.Dummy_mb.chunk_count mbs in
      Array.fold_left ( + ) 0 counts = n_chunks)

(* The batched transfer pipeline must be observationally equivalent to
   the per-chunk reference path ([batch_chunks <= 1]): same destination
   state tables, same chunk/byte accounting, the same per-key replay
   order for forwarded re-process events, and the same number of
   replays at the destination — under random scenario shapes with
   packets arriving mid-move. *)
type transfer_trace = {
  tr_chunks : int;
  tr_bytes : int;
  tr_dst_support : (string * string) list;
  tr_dst_report : (string * string) list;
  tr_dst_reprocessed : int;
  tr_fwd_by_key : (string * string list) list;
}

let run_move_scenario ~batch_chunks ~batch_bytes ~put_window ~n_chunks ~n_reports
    ~rate_pps =
  let engine = Engine.create () in
  let recorder = Recorder.create engine in
  let config = { test_config with batch_chunks; batch_bytes; put_window } in
  let ctrl = Controller.create engine ~config ~recorder () in
  let src = Openmb_apps.Dummy_mb.create engine ~name:"src" () in
  let dst = Openmb_apps.Dummy_mb.create engine ~name:"dst" () in
  Openmb_apps.Dummy_mb.populate src ~n:n_chunks;
  Openmb_apps.Dummy_mb.populate_reporting src ~n:n_reports;
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl src) ());
  Controller.connect ctrl (Mb_agent.create engine ~impl:(Openmb_apps.Dummy_mb.impl dst) ());
  if rate_pps > 0.0 then begin
    Openmb_apps.Dummy_mb.start_events src ~rate_pps;
    (* Stop at a fixed virtual time, so the schedule of raised events is
       independent of when the move happens to return. *)
    ignore
      (Engine.schedule_after engine (Time.ms 8.0) (fun () ->
           Openmb_apps.Dummy_mb.stop_events src))
  end;
  let result = ref None in
  Controller.move_internal ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      result := Some res);
  Engine.run engine;
  match !result with
  | Some (Ok mr) ->
    (* Per-key order of forwarded re-process events; the detail line is
       "src->dst reprocess key=<key> pkt=<label>" (no spaces within
       fields). *)
    let tbl = Hashtbl.create 16 in
    let find_marker detail marker =
      let n = String.length detail and m = String.length marker in
      let rec scan i =
        if i + m > n then None
        else if String.sub detail i m = marker then Some i
        else scan (i + 1)
      in
      scan 0
    in
    List.iter
      (fun (e : Recorder.entry) ->
        (* The packet label may itself contain spaces, so split on the
           field markers rather than on whitespace. *)
        match (find_marker e.detail " key=", find_marker e.detail " pkt=") with
        | Some k, Some p when k < p ->
          let key = String.sub e.detail (k + 5) (p - k - 5) in
          let pkt = String.sub e.detail (p + 5) (String.length e.detail - p - 5) in
          let prev = try Hashtbl.find tbl key with Not_found -> [] in
          Hashtbl.replace tbl key (pkt :: prev)
        | _ -> Alcotest.fail ("unparsable event-fwd detail: " ^ e.detail))
      (Recorder.filter ~actor:"controller" ~kind:"event-fwd" recorder);
    {
      tr_chunks = mr.Controller.chunks_moved;
      tr_bytes = mr.Controller.bytes_moved;
      tr_dst_support = Openmb_apps.Dummy_mb.support_entries dst;
      tr_dst_report = Openmb_apps.Dummy_mb.report_entries dst;
      tr_dst_reprocessed = Openmb_apps.Dummy_mb.reprocessed dst;
      tr_fwd_by_key =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []);
    }
  | Some (Error e) -> Alcotest.fail ("move failed: " ^ Errors.to_string e)
  | None -> Alcotest.fail "move did not return"

let prop_batched_transfer_equivalent =
  QCheck2.Test.make ~name:"batched transfer equals per-chunk transfer" ~count:30
    QCheck2.Gen.(
      pair
        (quad (int_range 1 40) (int_range 0 10) (int_range 2 10) (int_range 1 6))
        (int_bound 4))
    (fun ((n_chunks, n_reports, batch_chunks, put_window), rate_level) ->
      let rate_pps = float_of_int rate_level *. 2000.0 in
      (* Alternate a tight byte bound in so batches also get cut on
         size, not only on chunk count. *)
      let batch_bytes = if batch_chunks mod 2 = 0 then 2048 else 32768 in
      let reference =
        run_move_scenario ~batch_chunks:1 ~batch_bytes:32768 ~put_window:1 ~n_chunks
          ~n_reports ~rate_pps
      in
      let batched =
        run_move_scenario ~batch_chunks ~batch_bytes ~put_window ~n_chunks ~n_reports
          ~rate_pps
      in
      reference = batched)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openmb_core"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "table 1" `Quick test_taxonomy_table1;
          Alcotest.test_case "operation legality" `Quick test_taxonomy_operations;
          Alcotest.test_case "string roundtrips" `Quick test_taxonomy_strings;
        ] );
      ( "config_tree",
        [
          Alcotest.test_case "set/get" `Quick test_config_set_get;
          Alcotest.test_case "del" `Quick test_config_del;
          Alcotest.test_case "replace_all" `Quick test_config_replace_all;
          Alcotest.test_case "value/subtree conflict" `Quick
            test_config_value_vs_subtree_conflict;
          Alcotest.test_case "path strings" `Quick test_config_path_strings;
        ] );
      ( "chunk",
        [
          Alcotest.test_case "seal/unseal" `Quick test_chunk_seal_unseal;
          Alcotest.test_case "opacity" `Quick test_chunk_opacity;
          Alcotest.test_case "compression" `Quick test_chunk_compression;
        ]
        @ qcheck [ prop_chunk_roundtrip ] );
      ( "event",
        [
          Alcotest.test_case "filter codes" `Quick test_event_filter;
          Alcotest.test_case "filter key scope" `Quick test_event_filter_key_scope;
        ] );
      ( "message",
        [
          Alcotest.test_case "request roundtrips" `Quick test_message_request_roundtrips;
          Alcotest.test_case "tid roundtrips" `Quick test_message_tid_roundtrip;
          Alcotest.test_case "reply roundtrips" `Quick test_message_reply_roundtrips;
          Alcotest.test_case "event roundtrips" `Quick test_message_event_roundtrips;
          Alcotest.test_case "chunk wire bytes" `Quick test_message_wire_bytes_chunked;
          Alcotest.test_case "request codec equivalence" `Quick
            test_request_codec_equivalence;
          Alcotest.test_case "reply codec equivalence" `Quick test_reply_codec_equivalence;
          Alcotest.test_case "chunk wire roundtrip" `Quick test_chunk_wire_roundtrip;
          Alcotest.test_case "binary decode rejects garbage" `Quick
            test_binary_decode_rejects_garbage;
        ] );
      ( "controller",
        [
          Alcotest.test_case "move all" `Quick test_move_internal_basic;
          Alcotest.test_case "move subset" `Quick test_move_internal_subset;
          Alcotest.test_case "move unknown MB" `Quick test_move_unknown_mb;
          Alcotest.test_case "move granularity error" `Quick test_move_granularity_error;
          Alcotest.test_case "move kind mismatch" `Quick test_move_kind_mismatch;
          Alcotest.test_case "events buffered and forwarded" `Quick
            test_move_with_events_buffered_and_forwarded;
          Alcotest.test_case "stray events dropped" `Quick
            test_event_for_unmoved_state_dropped;
          Alcotest.test_case "clone support" `Quick test_clone_support;
          Alcotest.test_case "merge internal" `Quick test_merge_internal;
          Alcotest.test_case "merge with empty shared" `Quick test_merge_with_empty_shared;
          Alcotest.test_case "read/write config" `Quick test_read_write_config;
          Alcotest.test_case "read unknown config key" `Quick test_read_config_unknown_key;
          Alcotest.test_case "stats" `Quick test_stats_call;
          Alcotest.test_case "introspection subscription" `Quick
            test_introspection_subscription;
          Alcotest.test_case "concurrent moves" `Quick test_concurrent_moves;
          Alcotest.test_case "clone config" `Quick test_clone_config;
          Alcotest.test_case "clone config unknown dst" `Quick test_clone_config_unknown_dst;
          Alcotest.test_case "timed subscription expires" `Quick
            test_timed_subscription_expires;
          Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
          Alcotest.test_case "disconnect mid-move" `Quick test_disconnect_mid_move;
          Alcotest.test_case "corrupt chunk rejected" `Quick test_corrupt_chunk_rejected;
          Alcotest.test_case "move empty key range" `Quick test_move_empty_key_range;
          Alcotest.test_case "event wire bytes" `Quick test_event_wire_bytes;
          Alcotest.test_case "buffered peak tracked" `Quick test_buffered_peak_tracked;
          Alcotest.test_case "duplicate connect" `Quick test_duplicate_connect_rejected;
          Alcotest.test_case "move under binary framing" `Quick
            test_move_under_binary_framing;
        ]
        @ qcheck [ prop_moves_conserve_state; prop_batched_transfer_equivalent ] );
    ]
