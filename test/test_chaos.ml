(* Chaos harness: randomized fault plans against the state-transfer
   protocol, checked against a fault-free oracle run of the same seed.

   Each iteration derives a scenario (table size, event rate) and a
   fault plan (drop/duplicate/reorder/spike/partition/crash) from one
   seed, runs it to completion, and checks the transactional
   invariants:

   - a completed move delivered every chunk exactly once: the
     destination's table equals the source's initial table;
   - an aborted move lost nothing: the source's table is intact;
   - no packet was ever replayed against missing per-flow state;
   - the whole thing is deterministic: the same seed yields the same
     verdict, counters and final tables.

   The oracle (the same scenario under a fault-free plan) must complete
   with zero drops, retries, timeouts and aborts.

   Iteration count comes from CHAOS_ITERS (default 100, CI-fast); the
   base seed from CHAOS_SEED. *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_apps

let chaos_iters =
  match Sys.getenv_opt "CHAOS_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 100)
  | None -> 100

let base_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> (try int_of_string s with _ -> 0x5EED)
  | None -> 0x5EED

(* Tight timeouts so a crashed MB is detected within the run instead of
   after the default 30 s. *)
let chaos_config =
  {
    Controller.default_config with
    quiescence = Time.ms 40.0;
    channel_latency = Time.us 100.0;
    request_timeout = Time.ms 50.0;
    retry_backoff_cap = Time.ms 400.0;
    max_retries = 3;
  }

(* Faults stay active well past the transfer's natural end so late
   stages (deletes, event forwarding) are exercised too. *)
let horizon = Time.ms 30.0
let event_stop = Time.ms 8.0

(* Scenario shape is seed-derived, like the plan, so "oracle of the
   same seed" pins both the faults and the traffic. *)
let scenario_params seed =
  let g = Prng.create ~seed:(seed lxor 0x51CA9A3B) in
  let chunks = 20 + Prng.int g 41 in
  let rate_pps = 500.0 +. Prng.float g 3000.0 in
  (chunks, rate_pps)

(* Invariant: a replay (process_packet without side effects) must find
   the per-flow state it applies to already present. *)
let wrap_replay_check mb violations (impl : Southbound.impl) =
  {
    impl with
    Southbound.process_packet =
      (fun p ~side_effects ->
        if (not side_effects) && not (Dummy_mb.has_state_for mb p) then incr violations;
        impl.Southbound.process_packet p ~side_effects);
  }

type outcome = {
  verdict : (int, string) result;  (* chunks moved, or the error *)
  src_entries : (string * string) list;
  dst_entries : (string * string) list;
  violations : int;
  counters : Controller.counters;
  f_dropped : int;
  f_duplicated : int;
  f_delayed : int;
  f_crashes : int;
  f_restarts : int;
}

let run_plan plan ~chunks ~rate_pps =
  let tel = Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  let faults = Faults.create ~telemetry:tel engine plan in
  let ctrl = Controller.create engine ~config:chaos_config ~faults () in
  let src = Dummy_mb.create engine ~name:"src" () in
  let dst = Dummy_mb.create engine ~name:"dst" () in
  Dummy_mb.populate src ~n:chunks;
  let violations = ref 0 in
  let connect mb =
    Controller.connect ctrl
      (Mb_agent.create engine ~impl:(wrap_replay_check mb violations (Dummy_mb.impl mb)) ())
  in
  connect src;
  connect dst;
  let verdict = ref None in
  Dummy_mb.start_events src ~rate_pps;
  ignore (Engine.schedule_at engine event_stop (fun () -> Dummy_mb.stop_events src));
  Controller.move_internal ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      verdict := Some res);
  Engine.run engine;
  let verdict =
    match !verdict with
    | None -> Alcotest.failf "seed %d: move never returned a verdict" plan.Faults.seed
    | Some (Ok mr) -> Ok mr.Controller.chunks_moved
    | Some (Error e) -> Error (Errors.to_string e)
  in
  (* The registry mirrors the injector's own accounting exactly: every
     realized fault bumped the corresponding counter, nothing else did. *)
  let tel_count name = Telemetry.counter_value (Telemetry.counter tel name) in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: telemetry drops == realized drops" plan.Faults.seed)
    (Faults.dropped faults) (tel_count "faults.dropped");
  Alcotest.(check int)
    (Printf.sprintf "seed %d: telemetry dups == realized dups" plan.Faults.seed)
    (Faults.duplicated faults)
    (tel_count "faults.duplicated");
  Alcotest.(check int)
    (Printf.sprintf "seed %d: telemetry delays == realized delays" plan.Faults.seed)
    (Faults.delayed faults) (tel_count "faults.delayed");
  Alcotest.(check int)
    (Printf.sprintf "seed %d: telemetry crashes == realized crashes" plan.Faults.seed)
    (Faults.crashes_fired faults)
    (tel_count "faults.crashes");
  List.iter
    (fun (what, injector, counter) ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: telemetry %s == realized %s" plan.Faults.seed what
           what)
        (injector faults) (tel_count counter))
    [
      ("corruptions", Faults.corrupted, "faults.corrupted");
      ("throttles", Faults.throttled, "faults.throttled");
      ("shaper tail-drops", Faults.shaper_dropped, "faults.shaper_dropped");
      ("blackhole losses", Faults.blackholed, "faults.blackholed");
      ("restarts", Faults.restarts_fired, "faults.restarts");
    ];
  (* Every loss is attributed to exactly one cause. *)
  Alcotest.(check int)
    (Printf.sprintf "seed %d: lost == dropped + blackholed + shaper + corrupted"
       plan.Faults.seed)
    (Faults.dropped faults + Faults.blackholed faults + Faults.shaper_dropped faults
   + Faults.corrupted faults)
    (Faults.lost faults);
  {
    verdict;
    src_entries = Dummy_mb.support_entries src;
    dst_entries = Dummy_mb.support_entries dst;
    violations = !violations;
    counters = Controller.counters ctrl;
    f_dropped = Faults.dropped faults;
    f_duplicated = Faults.duplicated faults;
    f_delayed = Faults.delayed faults;
    f_crashes = Faults.crashes_fired faults;
    f_restarts = Faults.restarts_fired faults;
  }

let check_entries what expected got =
  Alcotest.(check (list (pair string string))) what expected got

let check_invariants ~seed ~initial outcome =
  (match outcome.verdict with
  | Ok n ->
    Alcotest.(check int)
      (Printf.sprintf "seed %d: completed move counted every chunk" seed)
      (List.length initial) n;
    check_entries
      (Printf.sprintf "seed %d: completed move installed exactly the source state" seed)
      initial outcome.dst_entries
  | Error _ ->
    check_entries
      (Printf.sprintf "seed %d: aborted move left the source intact" seed)
      initial outcome.src_entries);
  Alcotest.(check int)
    (Printf.sprintf "seed %d: no replay against missing state" seed)
    0 outcome.violations

let run_one_seed ?(impairment = false) seed =
  let chunks, rate_pps = scenario_params seed in
  let initial =
    (* The keys/values populate installs, computed without running. *)
    let e = Engine.create () in
    let mb = Dummy_mb.create e ~name:"src" () in
    Dummy_mb.populate mb ~n:chunks;
    Dummy_mb.support_entries mb
  in
  (* Fault-free oracle: same scenario, empty plan.  Everything must go
     perfectly — in particular the events_dropped counter stays 0. *)
  let oracle = run_plan (Faults.clean_plan ~seed) ~chunks ~rate_pps in
  (match oracle.verdict with
  | Ok n -> Alcotest.(check int) "oracle moved all chunks" chunks n
  | Error e -> Alcotest.failf "seed %d: oracle move failed: %s" seed e);
  check_entries "oracle: dst equals initial src" initial oracle.dst_entries;
  check_entries "oracle: src emptied by deferred delete" [] oracle.src_entries;
  Alcotest.(check int) "oracle: no events dropped" 0 oracle.counters.Controller.evt_dropped;
  Alcotest.(check int) "oracle: no retries" 0 oracle.counters.Controller.op_retries;
  Alcotest.(check int) "oracle: no timeouts" 0 oracle.counters.Controller.op_timeouts;
  Alcotest.(check int) "oracle: no aborts" 0
    oracle.counters.Controller.aborted_transfers;
  Alcotest.(check int) "oracle: no replay violations" 0 oracle.violations;
  (* Faulted run, twice: invariants hold and the run is reproducible. *)
  let plan =
    if impairment then
      Faults.random_impairment_plan ~seed ~mbs:[ "src"; "dst" ] ~horizon
    else Faults.random_plan ~seed ~mbs:[ "src"; "dst" ] ~horizon
  in
  let first = run_plan plan ~chunks ~rate_pps in
  check_invariants ~seed ~initial first;
  let second = run_plan plan ~chunks ~rate_pps in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: same plan, same outcome" seed)
    true (first = second);
  first

let test_chaos_plans () =
  let aborted = ref 0 and completed = ref 0 in
  for i = 0 to chaos_iters - 1 do
    let outcome = run_one_seed (base_seed + i) in
    match outcome.verdict with Ok _ -> incr completed | Error _ -> incr aborted
  done;
  (* The plan generator is aggressive enough that both outcomes show up
     across a default run; with very few iterations this is vacuous. *)
  if chaos_iters >= 50 then begin
    Alcotest.(check bool) "some plans completed" true (!completed > 0);
    Alcotest.(check bool) "some plans aborted" true (!aborted > 0)
  end

(* Same scenario under the production-grade generator: jitter drawn
   from distributions, token-bucket shapers, corruption and blackhole
   windows all active, and every new-kind registry counter reconciled
   against the injector by [run_plan]. *)
let test_impairment_plans () =
  let iters = max 1 (chaos_iters / 2) in
  let exercised = ref 0 in
  for i = 0 to iters - 1 do
    let outcome = run_one_seed ~impairment:true (base_seed + 0x11000 + i) in
    ignore outcome.verdict;
    if
      outcome.f_dropped + outcome.f_duplicated + outcome.f_delayed + outcome.f_crashes
      > 0
    then incr exercised
  done;
  Alcotest.(check bool) "impairment plans realized some faults" true (!exercised > 0)

(* ------------------------------------------------------------------ *)
(* Deterministic mid-move crash: abort, zero source loss, recovery     *)
(* ------------------------------------------------------------------ *)

type crash_rig = {
  engine : Engine.t;
  ctrl : Controller.t;
  src : Dummy_mb.t;
  dst : Dummy_mb.t;
  dst_agent : Mb_agent.t;
}

let make_crash_rig ~chunks =
  let engine = Engine.create () in
  let ctrl = Controller.create engine ~config:chaos_config () in
  let src = Dummy_mb.create engine ~name:"src" () in
  let dst = Dummy_mb.create engine ~name:"dst" () in
  Dummy_mb.populate src ~n:chunks;
  let src_agent = Mb_agent.create engine ~impl:(Dummy_mb.impl src) () in
  let dst_agent = Mb_agent.create engine ~impl:(Dummy_mb.impl dst) () in
  Controller.connect ctrl src_agent;
  Controller.connect ctrl dst_agent;
  { engine; ctrl; src; dst; dst_agent }

let test_mid_move_crash_aborts () =
  let chunks = 200 in
  let r = make_crash_rig ~chunks in
  let initial = Dummy_mb.support_entries r.src in
  let verdict = ref None in
  (* 200 chunks keep the controller busy for tens of ms; 5 ms is
     mid-stream, after some puts have been acknowledged. *)
  ignore (Engine.schedule_at r.engine (Time.ms 5.0) (fun () -> Mb_agent.crash r.dst_agent));
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      verdict := Some res);
  Engine.run r.engine;
  (match !verdict with
  | Some (Error (Errors.Move_aborted _)) -> ()
  | Some (Error e) -> Alcotest.failf "expected Move_aborted, got %s" (Errors.to_string e)
  | Some (Ok _) -> Alcotest.fail "move against a crashed destination completed"
  | None -> Alcotest.fail "move never returned");
  Alcotest.(check bool) "controller retried before giving up" true
    (Controller.op_retries r.ctrl > 0);
  Alcotest.(check bool) "timeout was recorded" true (Controller.op_timeouts r.ctrl > 0);
  Alcotest.(check int) "abort counted" 1 (Controller.transfers_aborted r.ctrl);
  (* Zero source-state loss: every entry still present and intact. *)
  check_entries "source intact after abort" initial (Dummy_mb.support_entries r.src);
  (* Recovery: restart the destination and retry the move — the abort
     must have cleared the moved marks, so every chunk exports again. *)
  Mb_agent.restart r.dst_agent;
  let verdict2 = ref None in
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      verdict2 := Some res);
  Engine.run r.engine;
  (match !verdict2 with
  | Some (Ok mr) ->
    Alcotest.(check int) "second move exports every chunk" chunks
      mr.Controller.chunks_moved
  | Some (Error e) -> Alcotest.failf "second move failed: %s" (Errors.to_string e)
  | None -> Alcotest.fail "second move never returned");
  check_entries "destination has the full state" initial (Dummy_mb.support_entries r.dst);
  check_entries "source emptied after successful move" []
    (Dummy_mb.support_entries r.src)

(* ------------------------------------------------------------------ *)
(* Regression: late re-process must not resurrect deleted state        *)
(* ------------------------------------------------------------------ *)

let test_reprocess_after_delete_no_resurrect () =
  let chunks = 5 in
  let r = make_crash_rig ~chunks in
  let verdict = ref None in
  Controller.move_internal r.ctrl ~src:"src" ~dst:"dst" ~key:Hfl.any ~on_done:(fun res ->
      verdict := Some res);
  Engine.run r.engine;
  (match !verdict with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "move failed");
  Alcotest.(check int) "deferred delete emptied the source" 0
    (Dummy_mb.chunk_count r.src);
  (* A straggler re-process replay for a deleted flow arrives at the
     source after delSupportPerflow ran.  Replaying it must not
     re-create the flow entry. *)
  let key = Dummy_mb.key_for 0 in
  let packet =
    Packet.make ~id:424242 ~ts:(Engine.now r.engine)
      ~src_ip:(Addr.of_string "10.0.0.1") ~dst_ip:(Addr.of_string "1.1.1.1")
      ~src_port:10000 ~dst_port:80 ~proto:Packet.Tcp ()
  in
  let src_agent =
    (* Deliver straight to the agent, as a retried forward would. *)
    Mb_agent.create r.engine ~impl:(Dummy_mb.impl r.src) ()
  in
  Mb_agent.set_uplinks src_agent ~send_reply:(fun _ -> ()) ~send_event:(fun _ -> ());
  Mb_agent.handle_request src_agent
    { Message.op = 999; tid = 0; req = Message.Reprocess_packet { key; packet } };
  Engine.run r.engine;
  Alcotest.(check int) "replay did not resurrect the entry" 0
    (Dummy_mb.chunk_count r.src);
  Alcotest.(check bool) "no per-flow state for the replayed packet" false
    (Dummy_mb.has_state_for r.src packet)

(* ------------------------------------------------------------------ *)
(* Failover under crash: primary dies mid-snapshot                     *)
(* ------------------------------------------------------------------ *)

let test_failover_primary_crash_mid_snapshot () =
  let fast = { Controller.default_config with quiescence = Time.ms 200.0 } in
  let scenario = Scenario.create ~ctrl_config:fast () in
  let engine = Scenario.engine scenario in
  let internal_prefix = Addr.prefix_of_string "10.0.0.0/8" in
  let external_ip = Addr.of_string "5.5.5.5" in
  let nat1 = Nat.create engine ~name:"nat1" ~external_ip ~internal_prefix () in
  let nat2 = Nat.create engine ~name:"nat2" ~external_ip ~internal_prefix () in
  let nat1_agent =
    Scenario.attach_mb_agent scenario ~port:"nat1" ~receive:(Nat.receive nat1)
      ~base:(Nat.base nat1) ~impl:(Nat.impl nat1)
  in
  Scenario.attach_mb scenario ~port:"nat2" ~receive:(Nat.receive nat2)
    ~base:(Nat.base nat2) ~impl:(Nat.impl nat2);
  Scenario.install_default_route scenario ~port:"nat1";
  let watcher = Failover.watch scenario ~mb:"nat1" ~codes:[ "nat.new_mapping" ] () in
  let mk_out i ts =
    Packet.make ~id:i ~ts:(Time.seconds ts)
      ~src_ip:(Addr.of_string (Printf.sprintf "10.0.0.%d" (1 + i)))
      ~dst_ip:(Addr.of_string "1.1.1.5") ~src_port:(1000 + i) ~dst_port:80
      ~proto:Packet.Tcp ()
  in
  for i = 0 to 9 do
    let ts = 0.1 +. (0.05 *. float_of_int i) in
    Scenario.at scenario (Time.seconds ts) (fun () ->
        Switch.receive (Scenario.switch scenario) (mk_out i ts))
  done;
  (* The primary crashes while mappings are still being established:
     introspection events raised after this instant are lost with it. *)
  Scenario.at scenario (Time.seconds 0.3) (fun () -> Mb_agent.crash nat1_agent);
  let tracked_at_failover = ref 0 in
  let recovered = ref None in
  Scenario.at scenario (Time.seconds 1.0) (fun () ->
      tracked_at_failover := Failover.tracked watcher;
      Failover.fail_over watcher ~replacement:"nat2" ~dst_port:"nat2"
        ~on_done:(fun r -> recovered := Some r)
        ());
  Scenario.run scenario;
  (match !recovered with
  | Some r ->
    Alcotest.(check bool) "some mappings were mirrored before the crash" true
      (!tracked_at_failover > 0);
    Alcotest.(check bool) "crash lost the later mappings" true
      (!tracked_at_failover < 10);
    Alcotest.(check int) "everything mirrored was restored" !tracked_at_failover
      r.Failover.restored
  | None -> Alcotest.fail "failover never completed");
  Alcotest.(check int) "replacement holds every mirrored mapping" !tracked_at_failover
    (Nat.mapping_count nat2)

(* ------------------------------------------------------------------ *)
(* Codec properties: seq-numbered messages across both framings        *)
(* ------------------------------------------------------------------ *)

let gen_chunk =
  QCheck2.Gen.(
    let* idx = int_range 0 400 in
    let* plain = string_size (int_range 0 300) in
    let* supporting = bool in
    let role = if supporting then Taxonomy.Supporting else Taxonomy.Reporting in
    return
      (Chunk.seal ~mb_kind:"chaos" ~role ~partition:Taxonomy.Per_flow
         ~key:(Dummy_mb.key_for idx) ~plain))

let gen_seq_request =
  QCheck2.Gen.(
    let* seq = int_range 0 0xFFFFFF in
    oneof
      [
        (let* chunk = gen_chunk in
         return (Message.Put_support_perflow { seq; chunk }));
        (let* chunk = gen_chunk in
         return (Message.Put_report_perflow { seq; chunk }));
        (let* chunks = list_size (int_range 0 6) gen_chunk in
         return (Message.Put_batch { seq; chunks }));
        (let* idx = int_range 0 400 in
         return (Message.Abort_perflow (Dummy_mb.key_for idx)));
      ])

let gen_seq_reply =
  QCheck2.Gen.(
    let* seq = int_range 0 0xFFFFFF in
    let* count = int_range 0 32 in
    let gen_err =
      oneof
        [
          map (fun s -> Errors.Timeout s) (string_size (int_range 0 20));
          map (fun s -> Errors.Move_aborted s) (string_size (int_range 0 20));
          map (fun s -> Errors.Bad_chunk s) (string_size (int_range 0 20));
          return Errors.Granularity_too_fine;
        ]
    in
    let* errors = list_size (int_range 0 3) (pair (int_range 0 31) gen_err) in
    oneof
      [
        return (Message.Batch_ack { seq; count; errors });
        (match errors with
        | (_, e) :: _ -> return (Message.Op_error e)
        | [] -> return (Message.Op_error (Errors.Timeout "t")));
      ])

(* Both codecs round-trip, and a channel carrying a mix of framings
   still decodes every message — the decoder dispatches per message on
   the binary tag. *)
let prop_seq_request_roundtrip =
  QCheck2.Test.make ~name:"seq-numbered requests round-trip on mixed framing"
    ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 8) (triple gen_seq_request bool (int_range 0 0xFFFFF)))
    (fun reqs ->
      List.for_all
        (fun (req, binary, tid) ->
          let msg = { Message.op = 5; tid; req } in
          let framing =
            if binary then Openmb_wire.Framing.Binary else Openmb_wire.Framing.Json
          in
          Message.request_of_wire (Message.request_to_wire ~framing msg) = msg)
        reqs)

let prop_seq_reply_roundtrip =
  QCheck2.Test.make ~name:"batchAck/Move_aborted replies round-trip on mixed framing"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 8) (pair gen_seq_reply bool))
    (fun replies ->
      List.for_all
        (fun (reply, binary) ->
          let msg = Message.Reply { op = 9; reply } in
          let framing =
            if binary then Openmb_wire.Framing.Binary else Openmb_wire.Framing.Json
          in
          Message.from_mb_of_wire (Message.from_mb_to_wire ~framing msg) = msg)
        replies)

(* ------------------------------------------------------------------ *)
(* Link faults against batch members                                   *)
(* ------------------------------------------------------------------ *)

(* Per-link faults must act on batch members individually: a dropped
   member is compacted out in place, a delayed member splits off to a
   scalar delivery (so later batches can overtake it), a duplicate's
   extra copy travels scalar — and on-time survivors still arrive in
   batch order.  Checked by conservation against the injector's own
   accounting, by a fault-free oracle over the same batched traffic,
   and by same-seed reproducibility. *)

let batch_faults_pkts = 400
let batch_faults_size = 16

let run_batch_faults plan =
  let tel = Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  let faults = Faults.create ~telemetry:tel engine plan in
  let got = ref [] in
  let link =
    Link.create engine
      ~faults:(Faults.link faults ~name:"batch-wire" ())
      ~name:"batch-wire"
      ~dst:(fun p -> got := p.Packet.id :: !got)
      ()
  in
  let gen = Prng.create ~seed:(plan.Faults.seed lxor 0xBF17) in
  let trace =
    Openmb_traffic.Trace.of_packets
      (List.init batch_faults_pkts (fun i ->
           Packet.make ~id:i
             ~ts:(Time.us (float_of_int (100 + (i * 20) + Prng.int gen 10)))
             ~src_ip:(Addr.of_int (0x0a_00_00_01 + Prng.int gen 16))
             ~dst_ip:(Addr.of_string "1.1.1.5")
             ~src_port:(1_024 + Prng.int gen 100)
             ~dst_port:443 ~proto:Packet.Tcp ()))
  in
  Openmb_traffic.Trace.replay_batched engine trace ~batch:batch_faults_size
    ~window:(Time.ms 1.0) ~into:(Link.send_batch link) ();
  Engine.run engine;
  (List.rev !got, Faults.dropped faults, Faults.duplicated faults, Faults.delayed faults)

let test_batch_link_faults () =
  let dropped_total = ref 0 and dup_total = ref 0 and delayed_total = ref 0 in
  let iters = max 1 (chaos_iters / 4) in
  for i = 0 to iters - 1 do
    let seed = base_seed + (7 * i) in
    (* Fault-free oracle: every member of every batch arrives, in order. *)
    let oracle, o_drop, o_dup, _ = run_batch_faults (Faults.clean_plan ~seed) in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: oracle delivers every member in order" seed)
      (List.init batch_faults_pkts Fun.id)
      oracle;
    Alcotest.(check int) "oracle: nothing dropped" 0 o_drop;
    Alcotest.(check int) "oracle: nothing duplicated" 0 o_dup;
    (* Faulted run: conservation against the injector's counters. *)
    let plan = Faults.random_plan ~seed ~mbs:[] ~horizon:(Time.ms 20.0) in
    let got, dropped, duplicated, delayed = run_batch_faults plan in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: received = emitted - dropped + duplicated" seed)
      (batch_faults_pkts - dropped + duplicated)
      (List.length got);
    let mult = Hashtbl.create 64 in
    List.iter
      (fun id ->
        if id < 0 || id >= batch_faults_pkts then
          Alcotest.failf "seed %d: received id %d was never emitted" seed id;
        Hashtbl.replace mult id (1 + Option.value ~default:0 (Hashtbl.find_opt mult id)))
      got;
    Hashtbl.iter
      (fun id n ->
        if n > 2 then Alcotest.failf "seed %d: id %d delivered %d times (max 2)" seed id n)
      mult;
    (* Same plan, same traffic: bit-identical delivery sequence. *)
    let again, _, _, _ = run_batch_faults plan in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d: same plan reproduces the delivery sequence" seed)
      got again;
    dropped_total := !dropped_total + dropped;
    dup_total := !dup_total + duplicated;
    delayed_total := !delayed_total + delayed
  done;
  (* The plan generator is aggressive enough that each fault kind lands
     on some batch member across a default run. *)
  if iters >= 12 then begin
    Alcotest.(check bool) "some members dropped" true (!dropped_total > 0);
    Alcotest.(check bool) "some members duplicated" true (!dup_total > 0);
    Alcotest.(check bool) "some members delayed out of their batch" true (!delayed_total > 0)
  end

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openmb_chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random fault plans vs oracle" chaos_iters)
            `Slow test_chaos_plans;
          Alcotest.test_case
            (Printf.sprintf "%d batched-link fault plans vs oracle" (max 1 (chaos_iters / 4)))
            `Slow test_batch_link_faults;
          Alcotest.test_case
            (Printf.sprintf "%d impairment plans vs oracle" (max 1 (chaos_iters / 2)))
            `Slow test_impairment_plans;
        ] );
      ( "crash",
        [
          Alcotest.test_case "mid-move crash aborts, source intact" `Quick
            test_mid_move_crash_aborts;
          Alcotest.test_case "failover when primary crashes mid-snapshot" `Quick
            test_failover_primary_crash_mid_snapshot;
        ] );
      ( "regression",
        [
          Alcotest.test_case "re-process after delete does not resurrect" `Quick
            test_reprocess_after_delete_no_resurrect;
        ] );
      ("codec", qcheck [ prop_seq_request_roundtrip; prop_seq_reply_roundtrip ]);
    ]
