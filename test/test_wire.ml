(* Tests for the JSON codec and the LZSS compressor. *)

open Openmb_wire

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (Json.to_string j)) Json.equal

let test_json_print_basics () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "-42" (Json.to_string (Json.Int (-42)));
  Alcotest.(check string) "string" {|"hi"|} (Json.to_string (Json.String "hi"));
  Alcotest.(check string) "list" "[1,2]" (Json.to_string (Json.List [ Json.Int 1; Json.Int 2 ]));
  Alcotest.(check string) "assoc" {|{"a":1}|}
    (Json.to_string (Json.Assoc [ ("a", Json.Int 1) ]))

let test_json_escape_roundtrip () =
  let s = "line1\nline2\t\"quoted\"\\back\x01ctl" in
  let j = Json.String s in
  Alcotest.check json "escaped string round-trips" j (Json.of_string (Json.to_string j))

let test_json_parse_whitespace () =
  let j = Json.of_string "  { \"a\" : [ 1 , 2.5 , null ] , \"b\" : false }  " in
  Alcotest.check json "parsed"
    (Json.Assoc
       [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]); ("b", Json.Bool false) ])
    j

let test_json_parse_nested () =
  let text = {|{"outer":{"inner":[{"x":1},{"y":[true,false]}]}}|} in
  let j = Json.of_string text in
  Alcotest.(check string) "reprint" text (Json.to_string j)

let test_json_numbers () =
  Alcotest.check json "negative float" (Json.Float (-3.25)) (Json.of_string "-3.25");
  Alcotest.check json "exponent" (Json.Float 1500.0) (Json.of_string "1.5e3");
  Alcotest.check json "int stays int" (Json.Int 7) (Json.of_string "7")

let test_json_unicode_escape () =
  let j = Json.of_string {|"Aé"|} in
  Alcotest.(check string) "utf8 decoded" "A\xc3\xa9" (Json.get_string j)

let test_json_errors () =
  let fails s =
    match Json.of_string s with
    | _ -> Alcotest.fail (Printf.sprintf "expected parse failure for %S" s)
    | exception Json.Parse_error _ -> ()
  in
  List.iter fails [ ""; "{"; "[1,"; "tru"; "{\"a\":}"; "1 2"; "\"unterminated" ]

let test_json_member () =
  let j = Json.Assoc [ ("a", Json.Int 1); ("b", Json.Null) ] in
  Alcotest.check json "present" (Json.Int 1) (Json.member "a" j);
  Alcotest.check json "absent is null" Json.Null (Json.member "zz" j);
  Alcotest.(check bool) "mem" true (Json.mem "b" j);
  Alcotest.(check bool) "not mem" false (Json.mem "zz" j)

let test_json_accessor_errors () =
  Alcotest.check_raises "get_int on string" (Invalid_argument "Json.get_int") (fun () ->
      ignore (Json.get_int (Json.String "x")));
  Alcotest.check_raises "member on list" (Invalid_argument "Json.member: not an object")
    (fun () -> ignore (Json.member "a" (Json.List [])))

let test_json_wire_size () =
  let j = Json.Assoc [ ("a", Json.Int 1) ] in
  Alcotest.(check int) "wire size matches encoding" (String.length (Json.to_string j))
    (Json.wire_size j)

let json_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
            map (fun s -> Json.String s) (string_size (int_range 0 12));
          ]
      else
        oneof
          [
            map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
            map
              (fun fields -> Json.Assoc fields)
              (list_size (int_range 0 4)
                 (pair (string_size (int_range 1 6)) (self (n / 2))));
          ])

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"JSON print/parse round-trip" ~count:300 json_gen (fun j ->
      Json.equal j (Json.of_string (Json.to_string j)))

let prop_json_pretty_roundtrip =
  QCheck2.Test.make ~name:"pretty print/parse round-trip" ~count:150 json_gen (fun j ->
      Json.equal j (Json.of_string (Json.to_string_pretty j)))

(* ------------------------------------------------------------------ *)
(* Compression                                                         *)
(* ------------------------------------------------------------------ *)

let test_compress_roundtrip_basic () =
  let cases =
    [
      "";
      "a";
      "abcabcabcabcabcabc";
      String.make 1000 'x';
      "no repeats here at all!?";
      String.concat "" (List.init 50 (fun i -> Printf.sprintf "{\"field\":%d}" (i mod 3)));
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "roundtrip %d bytes" (String.length s))
        s
        (Compress.decompress (Compress.compress s)))
    cases

let test_compress_shrinks_redundant () =
  let s = String.concat "" (List.init 200 (fun _ -> "the same phrase again and again. ")) in
  Alcotest.(check bool) "redundant input shrinks" true
    (Compress.compressed_size s < String.length s / 2);
  Alcotest.(check bool) "ratio positive" true (Compress.ratio s > 0.5)

let test_compress_ratio_empty () =
  Alcotest.(check (float 1e-9)) "empty ratio" 0.0 (Compress.ratio "")

let prop_json_parse_total =
  (* Parsing arbitrary bytes either yields a value or raises
     Parse_error — never anything else. *)
  QCheck2.Test.make ~name:"JSON parser is total" ~count:500
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      match Json.of_string s with
      | _ -> true
      | exception Json.Parse_error _ -> true)

let prop_compress_roundtrip =
  QCheck2.Test.make ~name:"LZSS round-trip" ~count:300
    QCheck2.Gen.(string_size (int_range 0 2000))
    (fun s -> Compress.decompress (Compress.compress s) = s)

let prop_compress_roundtrip_redundant =
  (* Strings with long repeats exercise the back-reference paths. *)
  QCheck2.Test.make ~name:"LZSS round-trip on repetitive input" ~count:200
    QCheck2.Gen.(
      pair (string_size (int_range 1 40)) (int_range 2 100))
    (fun (unit_, reps) ->
      let s = String.concat "" (List.init reps (fun _ -> unit_)) in
      Compress.decompress (Compress.compress s) = s)

let prop_compress_workspace_equivalent =
  (* A long-lived workspace reused across many inputs (the controller's
     transfer pipeline) must behave exactly like compressing each input
     with a fresh workspace: identical bytes out, and every output
     round-trips through the one shared decompressor.  Mixes random and
     highly repetitive inputs so hash chains carry real state from one
     call into the next. *)
  QCheck2.Test.make ~name:"workspace reuse equals fresh compression" ~count:60
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (oneof
           [
             string_size (int_range 0 400);
             map
               (fun (unit_, reps) -> String.concat "" (List.init reps (fun _ -> unit_)))
               (pair (string_size (int_range 1 24)) (int_range 2 50));
           ]))
    (fun inputs ->
      let shared = Compress.create_workspace () in
      List.for_all
        (fun s ->
          let reused = Compress.compress_with shared s in
          let fresh = Compress.compress_with (Compress.create_workspace ()) s in
          reused = fresh
          && reused = Compress.compress s
          && Compress.decompress reused = s)
        inputs)

(* ------------------------------------------------------------------ *)
(* Binary primitives                                                   *)
(* ------------------------------------------------------------------ *)

let encode f =
  let buf = Buffer.create 16 in
  f (Binary.buffer_sink buf);
  Buffer.contents buf

let test_binary_fixed_roundtrip () =
  List.iter
    (fun v ->
      let s = encode (fun k -> Binary.u8 k v) in
      Alcotest.(check int) "u8 is one byte" 1 (String.length s);
      Alcotest.(check int) "u8 value" v (Binary.get_u8 (Binary.reader s)))
    [ 0; 1; 127; 255 ];
  List.iter
    (fun v ->
      let s = encode (fun k -> Binary.u16 k v) in
      Alcotest.(check int) "u16 is two bytes" 2 (String.length s);
      Alcotest.(check int) "u16 value" v (Binary.get_u16 (Binary.reader s)))
    [ 0; 258; 65535 ];
  List.iter
    (fun v ->
      let s = encode (fun k -> Binary.u32 k v) in
      Alcotest.(check int) "u32 is four bytes" 4 (String.length s);
      Alcotest.(check int) "u32 value" v (Binary.get_u32 (Binary.reader s)))
    [ 0; 0xDEADBEEF; 0xFFFFFFFF ]

let test_binary_varint_sizes () =
  let len v = String.length (encode (fun k -> Binary.uvarint k v)) in
  Alcotest.(check int) "7 bits fit one byte" 1 (len 127);
  Alcotest.(check int) "8 bits need two" 2 (len 128);
  Alcotest.(check int) "max_int round-trips" max_int
    (Binary.get_uvarint (Binary.reader (encode (fun k -> Binary.uvarint k max_int))));
  (match Binary.uvarint (Binary.buffer_sink (Buffer.create 4)) (-1) with
  | () -> Alcotest.fail "negative uvarint accepted"
  | exception Invalid_argument _ -> ());
  (* Zigzag keeps small magnitudes small regardless of sign. *)
  let zlen v = String.length (encode (fun k -> Binary.varint k v)) in
  Alcotest.(check int) "-1 fits one byte" 1 (zlen (-1));
  Alcotest.(check int) "63 fits one byte" 1 (zlen 63);
  List.iter
    (fun v ->
      Alcotest.(check int) "varint value" v
        (Binary.get_varint (Binary.reader (encode (fun k -> Binary.varint k v)))))
    [ 0; 1; -1; 63; -64; 123456; -987654; max_int; min_int ]

let test_binary_f64_str_frame () =
  List.iter
    (fun v ->
      let got = Binary.get_f64 (Binary.reader (encode (fun k -> Binary.f64 k v))) in
      Alcotest.(check bool) "f64 bit-exact" true
        (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float got)))
    [ 0.0; -0.0; 1.5; -3.25e17; 1e-300; infinity; neg_infinity ];
  List.iter
    (fun s ->
      Alcotest.(check string) "str round-trip" s
        (Binary.get_str (Binary.reader (encode (fun k -> Binary.str k s)))))
    [ ""; "x"; "some\x00binary\xffdata"; String.make 500 'q' ];
  let body = "hello frame" in
  let r = Binary.reader (Binary.frame body) in
  Alcotest.(check string) "frame round-trip" body (Binary.unframe r);
  Alcotest.(check int) "frame fully consumed" (String.length (Binary.frame body)) r.Binary.pos

let test_binary_counting_sink () =
  let write k =
    Binary.u32 k 7;
    Binary.str k "abc";
    Binary.varint k (-5)
  in
  let k, count = Binary.counting_sink () in
  write k;
  Alcotest.(check int) "count matches materialized bytes"
    (String.length (encode write))
    (count ())

let test_binary_truncated () =
  let fails what f =
    match f () with
    | _ -> Alcotest.fail (what ^ ": expected Decode_error")
    | exception Binary.Decode_error _ -> ()
  in
  fails "u32 on two bytes" (fun () -> Binary.get_u32 (Binary.reader "\x00\x01"));
  fails "u8 at end" (fun () -> Binary.get_u8 (Binary.reader ""));
  fails "str length past end" (fun () -> Binary.get_str (Binary.reader "\x0axy"));
  fails "uvarint with dangling continuation" (fun () ->
      Binary.get_uvarint (Binary.reader "\x80"));
  fails "uvarint too wide" (fun () ->
      Binary.get_uvarint (Binary.reader "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01"));
  fails "unframe truncated body" (fun () ->
      Binary.unframe (Binary.reader "\x00\x00\x00\x05ab"))

let prop_varint_roundtrip =
  QCheck2.Test.make ~name:"varint round-trip on full int range" ~count:500
    QCheck2.Gen.int
    (fun v -> Binary.get_varint (Binary.reader (encode (fun k -> Binary.varint k v))) = v)

let prop_uvarint_roundtrip =
  QCheck2.Test.make ~name:"uvarint round-trip" ~count:500
    QCheck2.Gen.(map (fun i -> i land max_int) int)
    (fun v -> Binary.get_uvarint (Binary.reader (encode (fun k -> Binary.uvarint k v))) = v)

let prop_str_roundtrip =
  QCheck2.Test.make ~name:"str round-trip on arbitrary bytes" ~count:300
    QCheck2.Gen.(string_size (int_range 0 300))
    (fun s -> Binary.get_str (Binary.reader (encode (fun k -> Binary.str k s))) = s)

let prop_f64_roundtrip =
  QCheck2.Test.make ~name:"f64 round-trip" ~count:300 QCheck2.Gen.float (fun v ->
      Int64.equal (Int64.bits_of_float v)
        (Int64.bits_of_float
           (Binary.get_f64 (Binary.reader (encode (fun k -> Binary.f64 k v))))))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openmb_wire"
    [
      ( "json",
        [
          Alcotest.test_case "print basics" `Quick test_json_print_basics;
          Alcotest.test_case "escape roundtrip" `Quick test_json_escape_roundtrip;
          Alcotest.test_case "whitespace" `Quick test_json_parse_whitespace;
          Alcotest.test_case "nested" `Quick test_json_parse_nested;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "accessor errors" `Quick test_json_accessor_errors;
          Alcotest.test_case "wire size" `Quick test_json_wire_size;
        ]
        @ qcheck [ prop_json_roundtrip; prop_json_pretty_roundtrip; prop_json_parse_total ] );
      ( "compress",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_compress_roundtrip_basic;
          Alcotest.test_case "shrinks redundant input" `Quick test_compress_shrinks_redundant;
          Alcotest.test_case "empty ratio" `Quick test_compress_ratio_empty;
        ]
        @ qcheck
            [
              prop_compress_roundtrip;
              prop_compress_roundtrip_redundant;
              prop_compress_workspace_equivalent;
            ] );
      ( "binary",
        [
          Alcotest.test_case "fixed-width round-trips" `Quick test_binary_fixed_roundtrip;
          Alcotest.test_case "varint sizes and values" `Quick test_binary_varint_sizes;
          Alcotest.test_case "f64/str/frame" `Quick test_binary_f64_str_frame;
          Alcotest.test_case "counting sink" `Quick test_binary_counting_sink;
          Alcotest.test_case "truncated input" `Quick test_binary_truncated;
        ]
        @ qcheck
            [
              prop_varint_roundtrip;
              prop_uvarint_roundtrip;
              prop_str_roundtrip;
              prop_f64_roundtrip;
            ] );
    ]
