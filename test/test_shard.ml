(* Sharded simulator core: determinism and cross-shard plumbing.

   The heart of this suite is the domain-count-invariance property: a
   seeded scenario — cross-shard hop traffic mutating per-shard state
   tables, plus a faulted controller move between MBs on different
   shards — is run once on a single domain (the oracle) and again on
   2, 4 and 8 domains, and every observable outcome (state-table
   contents, per-shard execution counts, controller and fault
   counters, merged telemetry) must be byte-identical.  The logical
   shard count stays fixed at 8 throughout, so only the domain
   scheduling varies.

   Iteration count for the property comes from CHAOS_ITERS (default 5;
   `dune build @shardcheck` runs it at 20). *)

open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox
open Openmb_apps

let prop_count =
  match Sys.getenv_opt "CHAOS_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 5)
  | None -> 5

let shards = 8
let epoch = Time.ms 1.0
let initial_hops = 8 (* seed events per shard *)
let hop_ttl = 6 (* cross-shard hops per seed event *)
let move_chunks = 120

(* Tight enough that a faulted move resolves (completes or aborts)
   within the scenario instead of waiting out 30 s timeouts. *)
let shard_config =
  {
    Controller.default_config with
    Controller.request_timeout = Time.seconds 2.0;
    retry_backoff_cap = Time.seconds 8.0;
    max_retries = 3;
    quiescence = Time.seconds 0.5;
  }

let tuple_of j =
  {
    Five_tuple.src_ip = Addr.of_int (0x0a_00_00_01 + (j / 100));
    dst_ip = Addr.of_string "1.1.1.5";
    src_port = 1_024 + (j mod 16_384);
    dst_port = 443;
    proto = Packet.Tcp;
  }

(* One full scenario at a given domain count, rendered to strings so
   divergences are both comparable and printable.  Every random draw
   comes either from scenario setup (before the run, domain-count
   independent) or from the PRNG stream of the shard executing the
   drawing event.

   [fp_app] is the application-state fingerprint: state tables, hop
   counters, move outcome, controller/fault counters, merged telemetry.
   [fp_sched] adds the scheduler observables (per-shard executed event
   counts, epoch count) that a scraper legitimately perturbs — its
   ticks are real events.  [fp_full] is their concatenation.  With
   [~scrape:true] every shard carries a Timeseries scraper over its own
   registry; [fp_ts] renders all shard scrapes and [fp_ticks] counts
   their samples. *)
type scenario_fp = {
  fp_app : string;
  fp_sched : string;
  fp_full : string;
  fp_ts : string;
  fp_ticks : int;
}

let run_scenario ?(scrape = false) ~domains ~seed () =
  let se = Sharded_engine.create ~domains ~epoch ~seed ~shards () in
  let router = Shard_router.create se in
  let sh = Array.init shards (Sharded_engine.shard se) in
  let tbls =
    Array.init shards (fun _ ->
        State_table.create ~granularity:Hfl.full_granularity ())
  in
  let hop_ctr =
    Array.map (fun s -> Telemetry.counter (Shard.telemetry s) "hop.executed") sh
  in
  (* Hop payloads carry the shard they execute on, so the handler can
     find its own table and PRNG without any shared mutable state. *)
  let rec hop (s, ttl) =
    let h = sh.(s) in
    let prng = Shard.prng h in
    Telemetry.incr hop_ctr.(s);
    let j = Prng.int prng 500 in
    let v = Prng.int prng 1_000_000 in
    State_table.insert tbls.(s)
      ~key:(Hfl.key_of_tuple Hfl.full_granularity (tuple_of j))
      v;
    if ttl > 0 then begin
      let dst = Prng.int prng shards in
      let delay = Time.us (float_of_int (1 + Prng.int prng 3_000)) in
      Shard.post h ~dst
        ~at:Time.(Engine.now (Shard.engine h) + delay)
        hop (dst, ttl - 1)
    end
  in
  let setup = Prng.create ~seed:(seed lxor 0x5eed11) in
  for s = 0 to shards - 1 do
    for _ = 1 to initial_hops do
      let at = Time.us (float_of_int (Prng.int setup 5_000)) in
      ignore (Engine.schedule_at (Shard.engine sh.(s)) at (fun () -> hop (s, hop_ttl)))
    done
  done;
  (* Faulted cross-shard move: controller and source on shard 0, the
     destination on shard 1 behind a remote connect.  Each side draws
     faults from an instance on its own shard. *)
  let horizon = Time.seconds 60.0 in
  let ctl_faults =
    Faults.create
      ~telemetry:(Shard.telemetry sh.(0))
      (Shard.engine sh.(0))
      (Faults.random_plan ~seed:(seed + 1) ~mbs:[ "move-src" ] ~horizon)
  in
  let agent_faults =
    Faults.create
      ~telemetry:(Shard.telemetry sh.(1))
      (Shard.engine sh.(1))
      (Faults.random_plan ~seed:(seed + 2) ~mbs:[ "move-dst" ] ~horizon)
  in
  let ctrl =
    Controller.create (Shard.engine sh.(0)) ~config:shard_config ~faults:ctl_faults
      ~telemetry:(Shard.telemetry sh.(0))
      ()
  in
  let src = Dummy_mb.create (Shard.engine sh.(0)) ~name:"move-src" () in
  let dst = Dummy_mb.create (Shard.engine sh.(1)) ~name:"move-dst" () in
  Dummy_mb.populate src ~n:move_chunks;
  Controller.connect ctrl
    (Mb_agent.create (Shard.engine sh.(0))
       ~telemetry:(Shard.telemetry sh.(0))
       ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl
    ~remote:
      {
        Controller.to_agent = Shard_router.route router ~src:0 ~dst:1;
        to_controller = Shard_router.route router ~src:1 ~dst:0;
        agent_faults = Some agent_faults;
      }
    (Mb_agent.create (Shard.engine sh.(1))
       ~telemetry:(Shard.telemetry sh.(1))
       ~impl:(Dummy_mb.impl dst) ());
  let move_result = ref "pending" in
  ignore
    (Engine.schedule_at (Shard.engine sh.(0)) (Time.ms 3.0) (fun () ->
         Controller.move_internal ctrl ~src:"move-src" ~dst:"move-dst" ~key:Hfl.any
           ~on_done:(fun res ->
             move_result :=
               match res with
               | Ok mr ->
                 Printf.sprintf "ok chunks=%d bytes=%d events=%d" mr.Controller.chunks_moved
                   mr.Controller.bytes_moved mr.Controller.events_forwarded
               | Error e -> "error " ^ Errors.to_string e)));
  (* Optional per-shard scrapers, each on its shard's private engine
     and registry.  Ticks are virtual-time events: they auto-stop when
     the shard drains, so they never extend the run. *)
  let scrapers =
    if not scrape then [||]
    else
      Array.map
        (fun h ->
          let ts = Timeseries.create ~cap:128 (Shard.engine h) in
          List.iter
            (fun n ->
              Timeseries.add ts ~name:n
                (Timeseries.Counter (Telemetry.counter (Shard.telemetry h) n)))
            [ "hop.executed"; "channel.msgs"; "faults.dropped" ];
          Timeseries.start ts ~every:(Time.us 500.0);
          ts)
        sh
  in
  Sharded_engine.run se;
  (* Render every observable. *)
  let buf = Buffer.create 4_096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  for s = 0 to shards - 1 do
    let dump =
      State_table.fold tbls.(s) ~init:[] ~f:(fun acc e ->
          (Lazy.force e.State_table.id, e.State_table.value) :: acc)
      |> List.sort compare
    in
    p "shard %d: hops=%d table=[" s (Telemetry.counter_value hop_ctr.(s));
    List.iter (fun (id, v) -> p " %s=%d" id v) dump;
    p " ]\n"
  done;
  p "exchanged=%d\n" (Sharded_engine.exchanged se);
  p "move: %s\n" !move_result;
  p "src chunks=%d [" (Dummy_mb.chunk_count src);
  List.iter (fun (k, v) -> p " %s=%s" k v) (List.sort compare (Dummy_mb.support_entries src));
  p " ]\n";
  p "dst chunks=%d [" (Dummy_mb.chunk_count dst);
  List.iter (fun (k, v) -> p " %s=%s" k v) (List.sort compare (Dummy_mb.support_entries dst));
  p " ]\n";
  p "controller: %s\n" (Format.asprintf "%a" Controller.pp_counters (Controller.counters ctrl));
  List.iter
    (fun (tag, f) ->
      p "faults %s: drop=%d dup=%d delay=%d crash=%d restart=%d\n" tag (Faults.dropped f)
        (Faults.duplicated f) (Faults.delayed f) (Faults.crashes_fired f)
        (Faults.restarts_fired f))
    [ ("ctl", ctl_faults); ("agent", agent_faults) ];
  let snap = Sharded_engine.merged_snapshot se in
  List.iter
    (fun name ->
      match Telemetry.snap_counter snap name with
      | Some v -> p "tel %s=%d\n" name v
      | None -> p "tel %s=-\n" name)
    [
      "hop.executed"; "channel.msgs"; "channel.bytes"; "faults.dropped";
      "faults.duplicated"; "faults.delayed"; "faults.crashes"; "faults.restarts";
      "controller.msgs_processed";
    ];
  let fp_app = Buffer.contents buf in
  let sched = Buffer.create 256 in
  let ps fmt = Printf.ksprintf (Buffer.add_string sched) fmt in
  for s = 0 to shards - 1 do
    ps "shard %d executed=%d\n" s (Engine.executed (Shard.engine sh.(s)))
  done;
  ps "epochs=%d\n" (Sharded_engine.epochs se);
  let fp_sched = Buffer.contents sched in
  let fp_ts =
    String.concat "\n"
      (Array.to_list
         (Array.mapi
            (fun s ts ->
              Printf.sprintf "shard %d ticks=%d %s" s (Timeseries.ticks ts)
                (Timeseries.to_json (Timeseries.snapshot ts)))
            scrapers))
  in
  let fp_ticks = Array.fold_left (fun acc ts -> acc + Timeseries.ticks ts) 0 scrapers in
  { fp_app; fp_sched; fp_full = fp_app ^ fp_sched; fp_ts; fp_ticks }

(* ------------------------------------------------------------------ *)
(* Batch-vs-scalar equivalence across the sharded pipeline             *)
(* ------------------------------------------------------------------ *)

(* The vectorized batch path must be an optimization, not a semantic
   change: the same trace, pushed through switch → NAT (shard 0) →
   monitor (shard 3) → firewall (shard 5) → sink, must leave
   bit-identical middlebox state, telemetry counters and drop decisions
   whether packets travel one per event or batched — and whether the
   batch run is scheduled on 1, 2, 4 or 8 domains (batches cross the
   epoch-barrier mailboxes as single records).  The fingerprint
   deliberately excludes time-of-dispatch observables (latency stats,
   channel message counts, engine event counts): batching legitimately
   amortizes those.  Everything derived from packet content, packet
   timestamps and processing order must match exactly. *)
let run_pipeline ~domains ~batched ~seed =
  let se = Sharded_engine.create ~domains ~epoch ~seed ~shards () in
  let sh = Array.init shards (Sharded_engine.shard se) in
  let s0 = sh.(0) and s3 = sh.(3) and s5 = sh.(5) in
  (* -- the chain ---------------------------------------------------- *)
  let sw = Switch.create (Shard.engine s0) ~telemetry:(Shard.telemetry s0) ~name:"s1" () in
  let nat =
    Nat.create (Shard.engine s0)
      ~telemetry:(Shard.telemetry s0)
      ~external_ip:(Addr.of_string "5.5.5.5")
      ~internal_prefix:(Addr.prefix_of_string "10.0.0.0/8")
      ~name:"nat" ()
  in
  let mon = Monitor.create (Shard.engine s3) ~telemetry:(Shard.telemetry s3) ~name:"mon" () in
  let fw =
    Firewall.create (Shard.engine s5)
      ~telemetry:(Shard.telemetry s5)
      ~rules:[ { Firewall.rl_match = Hfl.of_string "tp_dst=22"; rl_action = Firewall.Deny } ]
      ~default_action:Firewall.Allow ~name:"fw" ()
  in
  let sink = ref [] in
  let sink_recv (p : Packet.t) = sink := p.Packet.id :: !sink in
  (* Switch port "mb" leads to the NAT; tp_dst=9999 traffic is dropped
     at the switch so batches split between fast path and drop. *)
  let to_nat = Link.create (Shard.engine s0) ~name:"s1-mb" ~dst:(Nat.receive nat) () in
  if batched then Link.set_dst_batch to_nat (Nat.receive_batch nat);
  Switch.attach_port sw ~port:"mb" to_nat;
  ignore
    (Flow_table.install (Switch.table sw) ~priority:10 ~match_:(Hfl.of_string "tp_dst=9999")
       ~action:Flow_table.Drop);
  ignore
    (Flow_table.install (Switch.table sw) ~priority:1 ~match_:Hfl.any
       ~action:(Flow_table.Forward "mb"));
  (* Cross-shard hops: each MB's egress posts into the next shard's
     mailbox — scalar packets one per post, batches as one record
     (detached first: pools are single-domain). *)
  let hop_scalar src ~dst recv (p : Packet.t) =
    Shard.post src ~dst ~at:(Engine.now (Shard.engine src)) recv p
  in
  let hop_batch src ~dst recv b =
    Packet_batch.detach b;
    Shard.post src ~dst ~at:(Engine.now (Shard.engine src)) recv b
  in
  Mb_base.set_egress (Nat.base nat) (hop_scalar s0 ~dst:3 (Monitor.receive mon));
  Mb_base.set_egress (Monitor.base mon) (hop_scalar s3 ~dst:5 (Firewall.receive fw));
  Mb_base.set_egress (Firewall.base fw) sink_recv;
  if batched then begin
    Mb_base.set_egress_batch (Nat.base nat) (hop_batch s0 ~dst:3 (Monitor.receive_batch mon));
    Mb_base.set_egress_batch (Monitor.base mon) (hop_batch s3 ~dst:5 (Firewall.receive_batch fw));
    Mb_base.set_egress_batch (Firewall.base fw) (fun b -> Packet_batch.drain b sink_recv)
  end;
  (* -- the trace, pre-grouped identically for both modes ------------ *)
  let gen = Prng.create ~seed:(seed lxor 0xba7c4) in
  let dports = [| 80; 443; 22; 9999; 53 |] in
  let pkts =
    List.init 160 (fun i ->
        Packet.make ~id:i
          ~ts:(Time.us (1_000.0 +. (float_of_int i *. 50.0)))
          ~src_ip:(Addr.of_int (0x0a_00_00_01 + Prng.int gen 8))
          ~dst_ip:(Addr.of_string "1.1.1.5")
          ~src_port:(1_024 + Prng.int gen 48)
          ~dst_port:dports.(Prng.int gen (Array.length dports))
          ~proto:(if Prng.int gen 4 = 0 then Packet.Udp else Packet.Tcp)
          ())
  in
  let rec group = function
    | [] -> []
    | pkts ->
      let n = 1 + Prng.int gen 8 in
      let rec take k = function
        | p :: rest when k > 0 ->
          let g, rest = take (k - 1) rest in
          (p :: g, rest)
        | rest -> ([], rest)
      in
      let g, rest = take n pkts in
      g :: group rest
  in
  let groups = group pkts in
  let pool = Packet_batch.pool ~telemetry:(Shard.telemetry s0) () in
  List.iter
    (fun g ->
      let at = (List.nth g (List.length g - 1)).Packet.ts in
      if batched then begin
        let b = Packet_batch.alloc pool in
        List.iter (Packet_batch.push b) g;
        ignore
          (Engine.schedule_at (Shard.engine s0) at (fun () -> Switch.receive_batch sw b))
      end
      else
        ignore
          (Engine.schedule_at (Shard.engine s0) at (fun () ->
               List.iter (Switch.receive sw) g)))
    groups;
  Sharded_engine.run se;
  (* -- the fingerprint ---------------------------------------------- *)
  let buf = Buffer.create 4_096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "sink: %s\n" (String.concat "," (List.rev_map string_of_int !sink));
  p "switch: rx=%d drop=%d\n" (Switch.packets_received sw) (Switch.packets_dropped sw);
  List.iter
    (fun (r : Flow_table.rule) -> p "rule prio=%d pkts=%d bytes=%d\n" r.priority r.packets r.bytes)
    (Flow_table.rules (Switch.table sw));
  p "nat: mappings=%d dropped=%d\n" (Nat.mapping_count nat) (Nat.packets_dropped nat);
  List.iter
    (fun (m : Nat.mapping) ->
      p "map %s:%d -> %s:%d %s created=%.6f last=%.6f\n" (Addr.to_string m.m_int_ip)
        m.m_int_port (Addr.to_string m.m_ext_ip) m.m_ext_port
        (Packet.proto_to_string m.m_proto) m.m_created m.m_last_active)
    (List.sort compare (Nat.mappings nat));
  let tot = Monitor.totals mon in
  p "monitor: pkts=%d bytes=%d tcp=%d udp=%d icmp=%d new=%d flows=%d\n" tot.Monitor.tot_pkts
    tot.tot_bytes tot.tot_tcp tot.tot_udp tot.tot_icmp tot.tot_new_flows
    (Monitor.tracked_flows mon);
  List.iter
    (fun (key, (r : Monitor.flow_record)) ->
      p "flow %s first=%.6f last=%.6f pkts=%d bytes=%d svc=%s\n" key r.fr_first r.fr_last
        r.fr_pkts r.fr_bytes r.fr_service)
    (List.sort compare
       (List.map (fun (k, r) -> (Hfl.to_string k, r)) (Monitor.flow_records mon)));
  p "firewall: allowed=%d denied=%d cached=%d\n" (Firewall.allowed fw) (Firewall.denied fw)
    (Firewall.cached_verdicts fw);
  let snap = Sharded_engine.merged_snapshot se in
  List.iter
    (fun name ->
      match Telemetry.snap_counter snap name with
      | Some v -> p "tel %s=%d\n" name v
      | None -> p "tel %s=-\n" name)
    [ "mb.pkts"; "switch.received"; "switch.dropped" ];
  Buffer.contents buf

let prop_batch_scalar_equivalence =
  QCheck2.Test.make ~name:"batch path is scalar-equivalent across domain counts"
    ~count:prop_count
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let oracle = run_pipeline ~domains:1 ~batched:false ~seed in
      List.for_all
        (fun d ->
          let o = run_pipeline ~domains:d ~batched:true ~seed in
          String.equal o oracle
          || QCheck2.Test.fail_reportf
               "seed %d: batched domains=%d diverged from scalar oracle\n\
                --- scalar oracle ---\n\
                %s\n\
                --- batched domains=%d ---\n\
                %s"
               seed d oracle d o)
        [ 1; 2; 4; 8 ])

(* ------------------------------------------------------------------ *)
(* The determinism property                                            *)
(* ------------------------------------------------------------------ *)

let prop_domain_invariance =
  QCheck2.Test.make ~name:"sharded outcome is domain-count invariant" ~count:prop_count
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let oracle = run_scenario ~domains:1 ~seed () in
      List.for_all
        (fun d ->
          let o = run_scenario ~domains:d ~seed () in
          String.equal o.fp_full oracle.fp_full
          || QCheck2.Test.fail_reportf
               "seed %d: domains=%d diverged from 1-domain oracle\n--- oracle ---\n%s\n--- domains=%d ---\n%s"
               seed d oracle.fp_full d o.fp_full)
        [ 2; 4; 8 ])

(* Observability neutrality: attaching per-shard scrapers must leave
   the application state fingerprint bit-identical to the scrape-free
   oracle — sampling only reads — and the scraped series themselves
   must be identical at every domain count (the scrape schedule is
   virtual-time, so what a tick observes cannot depend on domain
   scheduling). *)
let prop_scrape_neutral =
  QCheck2.Test.make ~name:"scraping is state-neutral and domain-count invariant"
    ~count:prop_count
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let oracle = run_scenario ~domains:1 ~seed () in
      let obs1 = run_scenario ~scrape:true ~domains:1 ~seed () in
      if not (String.equal obs1.fp_app oracle.fp_app) then
        QCheck2.Test.fail_reportf
          "seed %d: scraping perturbed application state\n--- off ---\n%s\n--- on ---\n%s"
          seed oracle.fp_app obs1.fp_app;
      if obs1.fp_ticks = 0 then
        QCheck2.Test.fail_reportf "seed %d: scraper never sampled" seed;
      List.for_all
        (fun d ->
          let o = run_scenario ~scrape:true ~domains:d ~seed () in
          if not (String.equal o.fp_app oracle.fp_app) then
            QCheck2.Test.fail_reportf
              "seed %d: domains=%d scrape run perturbed application state" seed d;
          String.equal o.fp_ts obs1.fp_ts
          || QCheck2.Test.fail_reportf
               "seed %d: domains=%d scraped series diverged\n--- domains=1 ---\n%s\n--- domains=%d ---\n%s"
               seed d obs1.fp_ts d o.fp_ts)
        [ 2; 4; 8 ])

(* ------------------------------------------------------------------ *)
(* Directed smokes                                                     *)
(* ------------------------------------------------------------------ *)

(* A ring of posts around 4 shards on 4 real domains: every hop is
   cross-shard, so this exercises outboxes, barrier merge and horizon
   clamping with genuine parallelism. *)
let test_ring_4_domains () =
  let n = 4 in
  let se = Sharded_engine.create ~domains:n ~epoch ~seed:1 ~shards:n () in
  let sh = Array.init n (Sharded_engine.shard se) in
  let hits = Array.make n 0 in
  let rounds = 100 in
  let rec ring (s, k) =
    hits.(s) <- hits.(s) + 1;
    if k > 0 then begin
      let dst = (s + 1) mod n in
      Shard.post sh.(s) ~dst
        ~at:(Engine.now (Shard.engine sh.(s)))
        ring
        (dst, k - 1)
    end
  in
  ignore (Engine.schedule_at (Shard.engine sh.(0)) (Time.us 1.0) (fun () -> ring (0, rounds)));
  Sharded_engine.run se;
  Alcotest.(check int) "total hops" (rounds + 1) (Array.fold_left ( + ) 0 hits);
  Alcotest.(check int) "all hops crossed shards" rounds (Sharded_engine.exchanged se);
  Alcotest.(check int) "domains ran" n (Sharded_engine.domains se)

(* A clean (fault-free) move whose destination lives on another shard:
   the full controller pipeline over the epoch mailboxes must deliver
   every chunk and delete the source copy after quiescence. *)
let test_remote_move () =
  let se = Sharded_engine.create ~domains:2 ~epoch ~seed:3 ~shards:2 () in
  let router = Shard_router.create se in
  let s0 = Sharded_engine.shard se 0 and s1 = Sharded_engine.shard se 1 in
  let ctrl =
    Controller.create (Shard.engine s0) ~config:shard_config
      ~telemetry:(Shard.telemetry s0) ()
  in
  let src = Dummy_mb.create (Shard.engine s0) ~name:"move-src" () in
  let dst = Dummy_mb.create (Shard.engine s1) ~name:"move-dst" () in
  Dummy_mb.populate src ~n:move_chunks;
  let expected = List.sort compare (Dummy_mb.support_entries src) in
  Controller.connect ctrl
    (Mb_agent.create (Shard.engine s0) ~telemetry:(Shard.telemetry s0)
       ~impl:(Dummy_mb.impl src) ());
  Controller.connect ctrl
    ~remote:
      {
        Controller.to_agent = Shard_router.route router ~src:0 ~dst:1;
        to_controller = Shard_router.route router ~src:1 ~dst:0;
        agent_faults = None;
      }
    (Mb_agent.create (Shard.engine s1) ~telemetry:(Shard.telemetry s1)
       ~impl:(Dummy_mb.impl dst) ());
  let result = ref None in
  ignore
    (Engine.schedule_at (Shard.engine s0) (Time.ms 1.0) (fun () ->
         Controller.move_internal ctrl ~src:"move-src" ~dst:"move-dst" ~key:Hfl.any
           ~on_done:(fun res -> result := Some res)));
  Sharded_engine.run se;
  (match !result with
  | Some (Ok mr) ->
    Alcotest.(check int) "chunks moved" move_chunks mr.Controller.chunks_moved
  | Some (Error e) -> Alcotest.failf "move failed: %s" (Errors.to_string e)
  | None -> Alcotest.fail "move never completed");
  Alcotest.(check (list (pair string string)))
    "destination holds the moved state" expected
    (List.sort compare (Dummy_mb.support_entries dst));
  Alcotest.(check int) "source copy deleted" 0 (Dummy_mb.chunk_count src);
  Alcotest.(check bool) "mailboxes carried traffic" true (Sharded_engine.exchanged se > 0)

(* The canonical hash must ignore direction, and the router must agree
   with it. *)
let test_canonical_hash () =
  for j = 0 to 999 do
    let t = tuple_of j in
    let k = Five_tuple.pack t and r = Five_tuple.pack (Five_tuple.reverse t) in
    Alcotest.(check int)
      (Printf.sprintf "flow %d: canonical hash direction-insensitive" j)
      (Five_tuple.packed_canonical_hash k)
      (Five_tuple.packed_canonical_hash r)
  done

let () =
  Alcotest.run "shard"
    [
      ( "sharded-engine",
        [
          Alcotest.test_case "4-domain ring" `Quick test_ring_4_domains;
          Alcotest.test_case "remote move" `Quick test_remote_move;
          Alcotest.test_case "canonical hash" `Quick test_canonical_hash;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_domain_invariance;
              prop_batch_scalar_equivalence;
              prop_scrape_neutral;
            ] );
    ]
