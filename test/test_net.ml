(* Tests for the network substrate: addresses, header-field lists,
   flow tables, switches and the SDN controller. *)

open Openmb_sim
open Openmb_net

let addr = Alcotest.testable (Fmt.of_to_string Addr.to_string) Addr.equal

let mk_packet ?(id = 0) ?(ts = 0.0) ?(src = "10.0.0.1") ?(dst = "1.1.1.5") ?(sport = 1234)
    ?(dport = 80) ?(proto = Packet.Tcp) ?(flags = Packet.no_flags) () =
  Packet.make ~flags ~id ~ts:(Time.seconds ts) ~src_ip:(Addr.of_string src)
    ~dst_ip:(Addr.of_string dst) ~src_port:sport ~dst_port:dport ~proto ()

(* ------------------------------------------------------------------ *)
(* Addr                                                                *)
(* ------------------------------------------------------------------ *)

let test_addr_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Addr.to_string (Addr.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.1.2.3"; "192.168.0.1" ]

let test_addr_bad_input () =
  List.iter
    (fun s ->
      match Addr.of_string s with
      | _ -> Alcotest.fail (Printf.sprintf "expected failure for %S" s)
      | exception Invalid_argument _ -> ())
    [ "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "" ]

let test_prefix_membership () =
  let p = Addr.prefix_of_string "10.1.0.0/16" in
  Alcotest.(check bool) "inside" true (Addr.in_prefix (Addr.of_string "10.1.255.3") p);
  Alcotest.(check bool) "outside" false (Addr.in_prefix (Addr.of_string "10.2.0.1") p);
  Alcotest.(check string) "host bits cleared" "10.1.0.0/16"
    (Addr.prefix_to_string (Addr.prefix (Addr.of_string "10.1.2.3") 16))

let test_prefix_subsumption () =
  let p16 = Addr.prefix_of_string "10.1.0.0/16" in
  let p24 = Addr.prefix_of_string "10.1.2.0/24" in
  let other = Addr.prefix_of_string "10.2.0.0/16" in
  Alcotest.(check bool) "coarser subsumes finer" true (Addr.prefix_subsumes p16 p24);
  Alcotest.(check bool) "finer does not subsume coarser" false (Addr.prefix_subsumes p24 p16);
  Alcotest.(check bool) "disjoint" false (Addr.prefix_subsumes other p24);
  Alcotest.(check bool) "reflexive" true (Addr.prefix_subsumes p16 p16)

let test_prefix_zero () =
  let p0 = Addr.prefix_of_string "0.0.0.0/0" in
  Alcotest.(check bool) "matches everything" true
    (Addr.in_prefix (Addr.of_string "255.1.2.3") p0)

let test_host_in_prefix () =
  let p = Addr.prefix_of_string "1.1.1.0/24" in
  Alcotest.check addr "offset 5" (Addr.of_string "1.1.1.5") (Addr.host_in_prefix p 5);
  Alcotest.check_raises "overflow" (Invalid_argument "Addr.host_in_prefix: offset out of range")
    (fun () -> ignore (Addr.host_in_prefix p 256))

(* ------------------------------------------------------------------ *)
(* Payload                                                             *)
(* ------------------------------------------------------------------ *)

let test_payload_sizes () =
  let p = Payload.of_tokens [| 1; 2; 3 |] in
  Alcotest.(check int) "bytes" (3 * Payload.token_bytes) (Payload.size_bytes p);
  Alcotest.(check int) "tokens" 3 (Payload.token_count p);
  let q = Payload.of_tokens_trailing [| 1 |] ~trailing:10 in
  Alcotest.(check int) "trailing" (Payload.token_bytes + 10) (Payload.size_bytes q)

let test_payload_sub_equal () =
  let p = Payload.of_tokens [| 1; 2; 3; 4; 5 |] in
  let s = Payload.sub p ~pos:1 ~len:3 in
  Alcotest.(check bool) "slice" true (Payload.equal s (Payload.of_tokens [| 2; 3; 4 |]));
  Alcotest.(check bool) "concat" true
    (Payload.equal p
       (Payload.concat [ Payload.sub p ~pos:0 ~len:2; Payload.sub p ~pos:2 ~len:3 ]))

(* ------------------------------------------------------------------ *)
(* Five-tuple                                                          *)
(* ------------------------------------------------------------------ *)

let test_five_tuple_reverse_canonical () =
  let t = Five_tuple.of_packet (mk_packet ()) in
  let r = Five_tuple.reverse t in
  Alcotest.(check bool) "reverse differs" false (Five_tuple.equal t r);
  Alcotest.(check bool) "double reverse" true (Five_tuple.equal t (Five_tuple.reverse r));
  Alcotest.(check bool) "canonical equal both directions" true
    (Five_tuple.equal (Five_tuple.canonical t) (Five_tuple.canonical r))

let test_packed_roundtrip () =
  let t = Five_tuple.of_packet (mk_packet ()) in
  let p = Five_tuple.pack t in
  Alcotest.(check bool) "unpack inverts pack" true (Five_tuple.equal t (Five_tuple.unpack p));
  Alcotest.(check bool) "pack_packet agrees with pack" true
    (Five_tuple.packed_equal p (Five_tuple.pack_packet (mk_packet ())));
  Alcotest.(check bool) "packed_reverse = pack of reverse" true
    (Five_tuple.packed_equal (Five_tuple.packed_reverse p)
       (Five_tuple.pack (Five_tuple.reverse t)));
  Alcotest.(check int) "hash is deterministic" (Five_tuple.packed_hash p)
    (Five_tuple.packed_hash (Five_tuple.pack_packet (mk_packet ())))

let tuple_gen =
  QCheck2.Gen.(
    map
      (fun ((sip, dip), (sp, dp), pr) ->
        {
          Five_tuple.src_ip = Addr.of_int sip;
          dst_ip = Addr.of_int dip;
          src_port = sp;
          dst_port = dp;
          proto = (match pr with 0 -> Packet.Tcp | 1 -> Packet.Udp | _ -> Packet.Icmp);
        })
      (triple
         (pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))
         (pair (int_bound 65535) (int_bound 65535))
         (int_bound 2)))

let prop_packed_roundtrip =
  QCheck2.Test.make ~name:"packed key round-trip" ~count:500 tuple_gen (fun t ->
      let p = Five_tuple.pack t in
      Five_tuple.equal (Five_tuple.unpack p) t
      && Five_tuple.packed_equal (Five_tuple.packed_reverse p)
           (Five_tuple.pack (Five_tuple.reverse t))
      && Five_tuple.equal
           (Five_tuple.unpack (Five_tuple.packed_reverse (Five_tuple.packed_reverse p)))
           t
      && Five_tuple.packed_hash p = Five_tuple.packed_hash (Five_tuple.pack t))

(* ------------------------------------------------------------------ *)
(* Flat_table                                                          *)
(* ------------------------------------------------------------------ *)

let fh pa pb = Five_tuple.hash_words ~pa ~pb

let test_flat_table_basics () =
  let t = Flat_table.create () in
  Alcotest.(check int) "empty" 0 (Flat_table.length t);
  for i = 0 to 99 do
    Flat_table.replace t ~pa:i ~pb:(i * 2) ~h:(fh i (i * 2)) (i * 10)
  done;
  Alcotest.(check int) "length" 100 (Flat_table.length t);
  Alcotest.(check bool) "grew" true (Flat_table.capacity t >= 128);
  for i = 0 to 99 do
    Alcotest.(check (option int))
      (Printf.sprintf "find %d" i)
      (Some (i * 10))
      (Flat_table.find t ~pa:i ~pb:(i * 2) ~h:(fh i (i * 2)))
  done;
  Alcotest.(check (option int)) "miss" None (Flat_table.find t ~pa:5 ~pb:11 ~h:(fh 5 11));
  Flat_table.replace t ~pa:7 ~pb:14 ~h:(fh 7 14) 999;
  Alcotest.(check (option int)) "overwrite" (Some 999)
    (Flat_table.find t ~pa:7 ~pb:14 ~h:(fh 7 14));
  Alcotest.(check int) "overwrite keeps length" 100 (Flat_table.length t);
  Alcotest.(check bool) "remove hit" true (Flat_table.remove t ~pa:7 ~pb:14 ~h:(fh 7 14));
  Alcotest.(check bool) "remove miss" false (Flat_table.remove t ~pa:7 ~pb:14 ~h:(fh 7 14));
  Alcotest.(check int) "length after remove" 99 (Flat_table.length t);
  Flat_table.clear t;
  Alcotest.(check int) "cleared" 0 (Flat_table.length t);
  Alcotest.(check (option int)) "find after clear" None
    (Flat_table.find t ~pa:3 ~pb:6 ~h:(fh 3 6))

let test_flat_table_collision_chain () =
  (* The hash is caller-supplied, so collisions can be forced: every key
     below shares home slot 5.  Robin Hood placement and backward-shift
     deletion must keep the whole chain findable through arbitrary
     middle deletions, with no tombstone residue. *)
  let t = Flat_table.create ~capacity:16 () in
  let h = 5 in
  for k = 0 to 5 do
    Flat_table.replace t ~pa:k ~pb:0 ~h k
  done;
  Alcotest.(check int) "chain placed" 6 (Flat_table.length t);
  Alcotest.(check bool) "probe chain length is the cluster" true (Flat_table.max_probe t >= 5);
  (* Delete from the middle, twice. *)
  Alcotest.(check bool) "del 2" true (Flat_table.remove t ~pa:2 ~pb:0 ~h);
  Alcotest.(check bool) "del 4" true (Flat_table.remove t ~pa:4 ~pb:0 ~h);
  List.iter
    (fun k ->
      Alcotest.(check (option int))
        (Printf.sprintf "survivor %d" k)
        (Some k)
        (Flat_table.find t ~pa:k ~pb:0 ~h))
    [ 0; 1; 3; 5 ];
  Alcotest.(check (option int)) "deleted gone" None (Flat_table.find t ~pa:2 ~pb:0 ~h);
  (* Backward shift compacted the chain: displacement shrank. *)
  Alcotest.(check bool) "chain compacted" true (Flat_table.max_probe t <= 3)

let test_flat_table_flags () =
  let t = Flat_table.create () in
  Flat_table.replace t ~pa:1 ~pb:2 ~h:(fh 1 2) "a";
  Alcotest.(check bool) "fresh insert unflagged" false (Flat_table.flag t ~pa:1 ~pb:2 ~h:(fh 1 2));
  Flat_table.set_flag t ~pa:1 ~pb:2 ~h:(fh 1 2) true;
  Alcotest.(check bool) "set" true (Flat_table.flag t ~pa:1 ~pb:2 ~h:(fh 1 2));
  Flat_table.replace t ~pa:1 ~pb:2 ~h:(fh 1 2) "b";
  Alcotest.(check bool) "overwrite keeps flag" true (Flat_table.flag t ~pa:1 ~pb:2 ~h:(fh 1 2));
  (* The flag must survive growth and ride displacement. *)
  for i = 10 to 300 do
    Flat_table.replace t ~pa:i ~pb:0 ~h:(fh i 0) "x"
  done;
  Alcotest.(check bool) "flag survives growth" true (Flat_table.flag t ~pa:1 ~pb:2 ~h:(fh 1 2));
  ignore (Flat_table.remove t ~pa:1 ~pb:2 ~h:(fh 1 2) : bool);
  Flat_table.replace t ~pa:1 ~pb:2 ~h:(fh 1 2) "c";
  Alcotest.(check bool) "reinsert after delete is unflagged" false
    (Flat_table.flag t ~pa:1 ~pb:2 ~h:(fh 1 2));
  Alcotest.(check bool) "flag of absent key" false (Flat_table.flag t ~pa:9 ~pb:9 ~h:(fh 9 9))

let test_flat_table_batch_probe () =
  let t = Flat_table.create () in
  let n = 64 in
  let ka = Array.init n (fun i -> i land 15)
  and kb = Array.init n (fun i -> i lsr 4) in
  let kh = Array.init n (fun i -> fh ka.(i) kb.(i)) in
  let out = Array.make n None in
  Flat_table.find_batch t ~ka ~kb ~kh ~n out;
  Alcotest.(check bool) "all miss on empty table" true (Array.for_all (( = ) None) out);
  Flat_table.find_or_create_batch t ~ka ~kb ~kh ~n ~default:(fun i -> i) out;
  Alcotest.(check bool) "every member resolved" true
    (Array.for_all (function Some _ -> true | None -> false) out);
  Alcotest.(check int) "distinct keys created once" 64 (Flat_table.length t);
  (* Second pass hits every slot and creates nothing. *)
  let out2 = Array.make n None in
  Flat_table.find_batch t ~ka ~kb ~kh ~n out2;
  for i = 0 to n - 1 do
    Alcotest.(check (option int)) (Printf.sprintf "member %d" i) (Some i) out2.(i)
  done

(* Model-equivalence over random op sequences: the flat table must agree
   with a reference Hashtbl at every step — through inserts, overwrites,
   deletes, flag traffic, growth and churn. *)
let prop_flat_table_model =
  let op_gen =
    (* (op kind, key within a small pool to force collisions/overwrites,
       payload) *)
    QCheck2.Gen.(triple (int_bound 5) (pair (int_bound 60) (int_bound 3)) (int_bound 1000))
  in
  QCheck2.Test.make ~name:"flat table agrees with Hashtbl model" ~count:200
    QCheck2.Gen.(list_size (int_range 0 500) op_gen)
    (fun ops ->
      let ft = Flat_table.create () in
      let model : (int * int, int * bool) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun (op, (ka, kb), v) ->
          let h = fh ka kb in
          match op with
          | 0 ->
            Flat_table.replace ft ~pa:ka ~pb:kb ~h v;
            let flag =
              match Hashtbl.find_opt model (ka, kb) with Some (_, f) -> f | None -> false
            in
            Hashtbl.replace model (ka, kb) (v, flag)
          | 1 ->
            let removed = Flat_table.remove ft ~pa:ka ~pb:kb ~h in
            check (removed = Hashtbl.mem model (ka, kb));
            Hashtbl.remove model (ka, kb)
          | 2 ->
            check
              (Flat_table.find ft ~pa:ka ~pb:kb ~h
              = Option.map fst (Hashtbl.find_opt model (ka, kb)))
          | 3 | 4 ->
            let b = op = 3 in
            Flat_table.set_flag ft ~pa:ka ~pb:kb ~h b;
            (match Hashtbl.find_opt model (ka, kb) with
            | Some (v, _) -> Hashtbl.replace model (ka, kb) (v, b)
            | None -> ())
          | _ ->
            check
              (Flat_table.flag ft ~pa:ka ~pb:kb ~h
              = (match Hashtbl.find_opt model (ka, kb) with
                | Some (_, f) -> f
                | None -> false)))
        ops;
      check (Flat_table.length ft = Hashtbl.length model);
      (* Full traversal agrees, values and flags both. *)
      let seen = ref 0 in
      Flat_table.iter ft (fun ~pa ~pb v ->
          incr seen;
          match Hashtbl.find_opt model (pa, pb) with
          | Some (mv, mf) ->
            check (v = mv);
            check (Flat_table.flag ft ~pa ~pb ~h:(fh pa pb) = mf)
          | None -> check false);
      check (!seen = Hashtbl.length model);
      !ok)

(* Distribution quality of the packed-key mixer on adversarial patterns:
   sequential ports (one host scanning), same-subnet addresses
   (sequential IPs, fixed ports) and sequential flow ids must spread
   evenly over power-of-two slot masks — the regime the flat tables
   probe in.  With 2048 keys in 512 buckets (expected load 4), an
   avalanching hash keeps the max bucket under ~20 with overwhelming
   probability; the pre-mixer hashes concentrated thousands of such keys
   onto a handful of buckets. *)
let prop_hash_bucket_skew =
  let buckets = 512 and n = 2048 and bound = 26 in
  let max_load keys =
    let load = Array.make buckets 0 in
    List.iter
      (fun (pa, pb) ->
        let b = Five_tuple.hash_words ~pa ~pb land (buckets - 1) in
        load.(b) <- load.(b) + 1)
      keys;
    Array.fold_left max 0 load
  in
  QCheck2.Test.make ~name:"mixer bounds bucket skew on adversarial keys" ~count:40
    QCheck2.Gen.(triple (int_bound 0xFFFFFF) (int_bound 0xFFFF) (int_bound 2))
    (fun (base_ip, base_port, pattern) ->
      let tup ~sip ~sp =
        {
          Five_tuple.src_ip = Addr.of_int (sip land 0xFFFFFFFF);
          dst_ip = Addr.of_int 0x01010105;
          src_port = sp land 0xFFFF;
          dst_port = 80;
          proto = Packet.Tcp;
        }
      in
      let key t = (Five_tuple.word_a t, Five_tuple.word_b t) in
      let keys =
        List.init n (fun i ->
            match pattern with
            | 0 -> key (tup ~sip:base_ip ~sp:(base_port + i)) (* sequential ports *)
            | 1 -> key (tup ~sip:(base_ip + i) ~sp:base_port) (* same-subnet IPs *)
            | _ -> key (tup ~sip:(base_ip + (i lsr 8)) ~sp:(base_port + (i land 0xFF))))
      in
      max_load keys <= bound)

(* ------------------------------------------------------------------ *)
(* Header-field lists                                                  *)
(* ------------------------------------------------------------------ *)

let test_hfl_matching () =
  let p = mk_packet () in
  let hfl = Hfl.of_string "nw_src=10.0.0.0/8,tp_dst=80,proto=tcp" in
  Alcotest.(check bool) "matches" true (Hfl.matches_packet hfl p);
  Alcotest.(check bool) "port mismatch" false
    (Hfl.matches_packet (Hfl.of_string "tp_dst=443") p);
  Alcotest.(check bool) "empty matches all" true (Hfl.matches_packet Hfl.any p)

let test_hfl_bidir () =
  let t = Five_tuple.of_packet (mk_packet ()) in
  let hfl = Hfl.of_string "nw_src=1.1.1.5/32" in
  Alcotest.(check bool) "forward no" false (Hfl.matches_tuple hfl t);
  Alcotest.(check bool) "bidir yes" true (Hfl.matches_bidir hfl t)

let test_hfl_string_roundtrip () =
  let cases =
    [ "nw_src=10.0.0.0/8"; "nw_dst=1.1.1.0/24,tp_dst=80"; "proto=udp,tp_src=53"; "" ]
  in
  List.iter
    (fun s -> Alcotest.(check string) s s (Hfl.to_string (Hfl.of_string s)))
    cases

let test_hfl_subsumes () =
  let coarse = Hfl.of_string "nw_src=10.0.0.0/8" in
  let fine = Hfl.of_string "nw_src=10.1.0.0/16,tp_dst=80" in
  Alcotest.(check bool) "coarse subsumes fine" true (Hfl.subsumes coarse fine);
  Alcotest.(check bool) "fine does not subsume coarse" false (Hfl.subsumes fine coarse);
  Alcotest.(check bool) "any subsumes all" true (Hfl.subsumes Hfl.any fine);
  Alcotest.(check bool) "disjoint dims" false
    (Hfl.subsumes (Hfl.of_string "tp_src=9") fine)

let test_hfl_granularity () =
  (* The Balance example: per-flow state keyed on source IP/port only. *)
  let lb_gran = Hfl.[ Dim_src_ip; Dim_src_port ] in
  Alcotest.(check bool) "coarser ok" true
    (Hfl.compatible_with_granularity (Hfl.of_string "nw_src=10.0.0.0/8") lb_gran);
  Alcotest.(check bool) "exact ok" true
    (Hfl.compatible_with_granularity
       (Hfl.of_string "nw_src=10.0.0.1/32,tp_src=99")
       lb_gran);
  Alcotest.(check bool) "finer rejected" false
    (Hfl.compatible_with_granularity (Hfl.of_string "tp_dst=80") lb_gran)

let test_hfl_key_of_tuple () =
  let t = Five_tuple.of_packet (mk_packet ()) in
  let key = Hfl.key_of_tuple Hfl.[ Dim_src_ip; Dim_src_port ] t in
  Alcotest.(check string) "projected" "nw_src=10.0.0.1/32,tp_src=1234" (Hfl.to_string key);
  let full = Hfl.key_of_tuple Hfl.full_granularity t in
  Alcotest.(check bool) "full key matches own packet" true
    (Hfl.matches_packet full (mk_packet ()))

let test_hfl_equal_order_insensitive () =
  let a = Hfl.of_string "tp_dst=80,nw_src=10.0.0.0/8" in
  let b = Hfl.of_string "nw_src=10.0.0.0/8,tp_dst=80" in
  Alcotest.(check bool) "order-insensitive" true (Hfl.equal a b);
  Alcotest.(check bool) "distinct lists differ" false
    (Hfl.equal a (Hfl.of_string "tp_dst=80"));
  (* Regression: a repeated constraint must not absorb a different one
     on the same dimension, in either argument order. *)
  let dup = Hfl.of_string "tp_dst=80,tp_dst=80" in
  let two = Hfl.of_string "tp_dst=80,tp_dst=81" in
  Alcotest.(check bool) "dup vs distinct" false (Hfl.equal dup two);
  Alcotest.(check bool) "distinct vs dup" false (Hfl.equal two dup);
  Alcotest.(check bool) "dup equals itself" true (Hfl.equal dup dup)

let test_hfl_to_tuple () =
  let t = Five_tuple.of_packet (mk_packet ()) in
  let full = Hfl.key_of_tuple Hfl.full_granularity t in
  (match Hfl.to_tuple full with
  | Some t' ->
    Alcotest.(check bool) "inverts full projection" true (Five_tuple.equal t t')
  | None -> Alcotest.fail "full key should pin a tuple");
  Alcotest.(check bool) "partial key pins nothing" true
    (Hfl.to_tuple (Hfl.of_string "nw_src=10.0.0.1/32,tp_dst=80") = None);
  Alcotest.(check bool) "wide prefix pins nothing" true
    (Hfl.to_tuple
       (Hfl.of_string "nw_src=10.0.0.0/24,nw_dst=1.1.1.5/32,tp_src=1234,tp_dst=80,proto=tcp")
    = None);
  Alcotest.(check bool) "empty pins nothing" true (Hfl.to_tuple Hfl.any = None)

let test_hfl_well_formed () =
  Alcotest.(check bool) "dup dim" false
    (Hfl.well_formed (Hfl.of_string "tp_dst=80,tp_dst=81"));
  Alcotest.(check bool) "ok" true (Hfl.well_formed (Hfl.of_string "tp_dst=80,tp_src=1"))

let prop_hfl_subsumes_implies_match =
  (* If a subsumes b, any tuple matching b matches a. *)
  let gen =
    QCheck2.Gen.(
      let prefix = map2 (fun a len -> Addr.prefix (Addr.of_int a) len) (int_bound 0xFFFFFFF) (int_range 8 32) in
      let field =
        oneof
          [
            map (fun p -> Hfl.Src_ip p) prefix;
            map (fun p -> Hfl.Dst_ip p) prefix;
            map (fun p -> Hfl.Src_port p) (int_range 1 65535);
            map (fun p -> Hfl.Dst_port p) (int_range 1 65535);
            return (Hfl.Proto Packet.Tcp);
          ]
      in
      triple (list_size (int_range 0 3) field) (list_size (int_range 0 3) field)
        (pair (int_bound 0xFFFFFFF) (pair (int_range 1 65535) (int_range 1 65535))))
  in
  QCheck2.Test.make ~name:"subsumption is sound" ~count:500 gen
    (fun (a, b, (ip, (sp, dp))) ->
      let tup =
        {
          Five_tuple.src_ip = Addr.of_int ip;
          dst_ip = Addr.of_int (ip lxor 0xFF);
          src_port = sp;
          dst_port = dp;
          proto = Packet.Tcp;
        }
      in
      (not (Hfl.subsumes a b && Hfl.matches_tuple b tup)) || Hfl.matches_tuple a tup)

let prop_hfl_packet_matches_tuple =
  (* The zero-allocation packet fast path must agree with matching the
     packet's extracted five-tuple. *)
  let gen =
    QCheck2.Gen.(
      let prefix =
        map2 (fun a len -> Addr.prefix (Addr.of_int a) len) (int_bound 0xFFFFFFF)
          (int_range 0 32)
      in
      let field =
        oneof
          [
            map (fun p -> Hfl.Src_ip p) prefix;
            map (fun p -> Hfl.Dst_ip p) prefix;
            map (fun p -> Hfl.Src_port p) (int_range 1 65535);
            map (fun p -> Hfl.Dst_port p) (int_range 1 65535);
            map
              (fun b -> Hfl.Proto (if b then Packet.Tcp else Packet.Udp))
              bool;
          ]
      in
      pair
        (list_size (int_range 0 5) field)
        (triple (pair (int_bound 0xFFFFFFF) bool)
           (pair (int_range 1 65535) (int_range 1 65535))
           bool))
  in
  QCheck2.Test.make ~name:"matches_packet agrees with matches_tuple" ~count:500 gen
    (fun (hfl, ((ip, flip), (sp, dp), tcp)) ->
      let p =
        Packet.make ~id:1 ~ts:Openmb_sim.Time.zero ~src_ip:(Addr.of_int ip)
          ~dst_ip:(Addr.of_int (if flip then ip lxor 0xFF else ip))
          ~src_port:sp ~dst_port:dp
          ~proto:(if tcp then Packet.Tcp else Packet.Udp)
          ()
      in
      Hfl.matches_packet hfl p = Hfl.matches_tuple hfl (Five_tuple.of_packet p))

(* ------------------------------------------------------------------ *)
(* Flow table                                                          *)
(* ------------------------------------------------------------------ *)

let action =
  Alcotest.testable
    (fun fmt -> function
      | Flow_table.Forward p -> Format.fprintf fmt "forward:%s" p
      | Flow_table.Drop -> Format.fprintf fmt "drop"
      | Flow_table.To_controller -> Format.fprintf fmt "controller")
    ( = )

let test_flow_table_priority () =
  let t = Flow_table.create () in
  ignore (Flow_table.install t ~priority:10 ~match_:Hfl.any ~action:(Flow_table.Forward "default"));
  ignore
    (Flow_table.install t ~priority:100
       ~match_:(Hfl.of_string "tp_dst=80")
       ~action:(Flow_table.Forward "http"));
  Alcotest.(check (option action)) "http wins" (Some (Flow_table.Forward "http"))
    (Flow_table.lookup t (mk_packet ()));
  Alcotest.(check (option action)) "default" (Some (Flow_table.Forward "default"))
    (Flow_table.lookup t (mk_packet ~dport:22 ()))

let test_flow_table_tie_break () =
  let t = Flow_table.create () in
  ignore (Flow_table.install t ~priority:5 ~match_:Hfl.any ~action:(Flow_table.Forward "first"));
  ignore (Flow_table.install t ~priority:5 ~match_:Hfl.any ~action:(Flow_table.Forward "second"));
  Alcotest.(check (option action)) "earlier install wins ties"
    (Some (Flow_table.Forward "first"))
    (Flow_table.lookup t (mk_packet ()))

let test_flow_table_remove_and_counters () =
  let t = Flow_table.create () in
  let r = Flow_table.install t ~priority:1 ~match_:Hfl.any ~action:Flow_table.Drop in
  ignore (Flow_table.lookup t (mk_packet ()));
  ignore (Flow_table.lookup t (mk_packet ()));
  Alcotest.(check int) "packet counter" 2 r.Flow_table.packets;
  Alcotest.(check bool) "removed" true (Flow_table.remove t ~cookie:r.Flow_table.cookie);
  Alcotest.(check (option action)) "miss after removal" None (Flow_table.lookup t (mk_packet ()));
  Alcotest.(check bool) "double remove" false (Flow_table.remove t ~cookie:r.Flow_table.cookie)

let test_flow_table_remove_matching () =
  let t = Flow_table.create () in
  let m = Hfl.of_string "tp_dst=80" in
  ignore (Flow_table.install t ~priority:1 ~match_:m ~action:Flow_table.Drop);
  ignore (Flow_table.install t ~priority:2 ~match_:m ~action:(Flow_table.Forward "x"));
  ignore (Flow_table.install t ~priority:1 ~match_:Hfl.any ~action:Flow_table.Drop);
  Alcotest.(check int) "removed both" 2 (Flow_table.remove_matching t m);
  Alcotest.(check int) "one left" 1 (Flow_table.size t)

(* Full five-tuple matches take the exact-match hash path; these tests
   pin its interaction with wildcard rules, priorities and removal. *)

let exact_hfl ?(sport = 1234) () =
  Hfl.of_string
    (Printf.sprintf "nw_src=10.0.0.1/32,nw_dst=1.1.1.5/32,tp_src=%d,tp_dst=80,proto=tcp"
       sport)

let test_flow_table_exact_vs_wildcard () =
  let t = Flow_table.create () in
  ignore
    (Flow_table.install t ~priority:10 ~match_:(exact_hfl ())
       ~action:(Flow_table.Forward "exact"));
  ignore
    (Flow_table.install t ~priority:50
       ~match_:(Hfl.of_string "tp_dst=80")
       ~action:(Flow_table.Forward "wild"));
  Alcotest.(check (option action)) "higher-priority wildcard beats exact"
    (Some (Flow_table.Forward "wild"))
    (Flow_table.lookup t (mk_packet ()));
  ignore
    (Flow_table.install t ~priority:100 ~match_:(exact_hfl ())
       ~action:(Flow_table.Forward "exact-hi"));
  Alcotest.(check (option action)) "higher-priority exact wins"
    (Some (Flow_table.Forward "exact-hi"))
    (Flow_table.lookup t (mk_packet ()));
  Alcotest.(check (option action)) "other flows fall through to wildcard"
    (Some (Flow_table.Forward "wild"))
    (Flow_table.lookup t (mk_packet ~sport:9999 ()))

let test_flow_table_exact_tie_break () =
  let t = Flow_table.create () in
  ignore
    (Flow_table.install t ~priority:5 ~match_:(exact_hfl ())
       ~action:(Flow_table.Forward "first"));
  ignore
    (Flow_table.install t ~priority:5 ~match_:(exact_hfl ())
       ~action:(Flow_table.Forward "second"));
  Alcotest.(check (option action)) "earlier exact install wins ties"
    (Some (Flow_table.Forward "first"))
    (Flow_table.lookup t (mk_packet ()));
  Alcotest.(check int) "both rules kept" 2 (Flow_table.size t)

let test_flow_table_exact_remove () =
  let t = Flow_table.create () in
  let r = Flow_table.install t ~priority:5 ~match_:(exact_hfl ()) ~action:Flow_table.Drop in
  ignore
    (Flow_table.install t ~priority:5 ~match_:(exact_hfl ~sport:1111 ())
       ~action:Flow_table.Drop);
  Alcotest.(check bool) "remove by cookie" true
    (Flow_table.remove t ~cookie:r.Flow_table.cookie);
  Alcotest.(check (option action)) "removed rule no longer matches" None
    (Flow_table.lookup t (mk_packet ()));
  Alcotest.(check (option action)) "sibling exact rule intact" (Some Flow_table.Drop)
    (Flow_table.lookup t (mk_packet ~sport:1111 ()));
  Alcotest.(check int) "remove_matching drops exact rules" 1
    (Flow_table.remove_matching t (exact_hfl ~sport:1111 ()));
  Alcotest.(check int) "empty" 0 (Flow_table.size t)

let prop_flow_table_reference =
  (* The exact-hash + wildcard-scan lookup must behave exactly like a
     naive priority-then-insertion-order linear search. *)
  QCheck2.Gen.(
    QCheck2.Test.make ~name:"lookup equals linear reference" ~count:300
      (pair
         (list_size (int_range 0 20)
            (quad (int_bound 4) (int_range 0 3) (int_bound 4) (int_bound 4)))
         (pair (int_bound 4) (int_bound 4))))
    (fun (rules, (psrc, pdst)) ->
      let mk_hfl kind sp dp =
        match kind with
        | 0 -> Hfl.any
        | 1 -> Hfl.of_string (Printf.sprintf "tp_src=%d" (1000 + sp))
        | 2 -> Hfl.of_string (Printf.sprintf "tp_dst=%d" (80 + dp))
        | _ ->
          Hfl.of_string
            (Printf.sprintf
               "nw_src=10.0.0.1/32,nw_dst=1.1.1.5/32,tp_src=%d,tp_dst=%d,proto=tcp"
               (1000 + sp) (80 + dp))
      in
      let rules_l =
        List.mapi
          (fun i (prio, kind, sp, dp) ->
            (prio, i, mk_hfl kind sp dp, Flow_table.Forward (Printf.sprintf "p%d" i)))
          rules
      in
      let t = Flow_table.create () in
      List.iter
        (fun (prio, _, m, act) ->
          ignore (Flow_table.install t ~priority:prio ~match_:m ~action:act))
        rules_l;
      let pkt = mk_packet ~sport:(1000 + psrc) ~dport:(80 + pdst) () in
      let reference =
        List.fold_left
          (fun best (prio, i, m, act) ->
            if not (Hfl.matches_packet m pkt) then best
            else
              match best with
              | Some (bp, bi, _) when bp > prio || (bp = prio && bi < i) -> best
              | _ -> Some (prio, i, act))
          None rules_l
      in
      Flow_table.lookup t pkt = Option.map (fun (_, _, a) -> a) reference)

(* ------------------------------------------------------------------ *)
(* Switch + SDN controller                                             *)
(* ------------------------------------------------------------------ *)

let test_switch_forwarding () =
  let e = Engine.create () in
  let received = ref [] in
  let sw = Switch.create e ~name:"s1" () in
  let link =
    Link.create e ~name:"s1-out" ~dst:(fun p -> received := p :: !received) ()
  in
  Switch.attach_port sw ~port:"out" link;
  ignore
    (Flow_table.install (Switch.table sw) ~priority:1 ~match_:Hfl.any
       ~action:(Flow_table.Forward "out"));
  Switch.receive sw (mk_packet ());
  Engine.run e;
  Alcotest.(check int) "delivered" 1 (List.length !received);
  Alcotest.(check int) "rx count" 1 (Switch.packets_received sw)

let test_switch_miss_handler () =
  let e = Engine.create () in
  let punted = ref 0 in
  let sw = Switch.create e ~name:"s1" () in
  Switch.on_miss sw (fun _ -> incr punted);
  Switch.receive sw (mk_packet ());
  Engine.run e;
  Alcotest.(check int) "punted on miss" 1 !punted

let test_sdn_route_update_takes_time () =
  let e = Engine.create () in
  let to_a = ref 0 and to_b = ref 0 in
  let sw = Switch.create e ~name:"s1" () in
  let mk_counter_link name counter =
    Link.create e ~name ~dst:(fun _ -> incr counter) ()
  in
  Switch.attach_port sw ~port:"a" (mk_counter_link "la" to_a);
  Switch.attach_port sw ~port:"b" (mk_counter_link "lb" to_b);
  let ctrl = Sdn_controller.create e ~install_delay:(Time.ms 10.0) () in
  Sdn_controller.register_switch ctrl sw;
  (* Initial rule issued at t=0 is active at t=10 ms.  Traffic at 1 kHz
     over [20 ms, 70 ms); the reroute issued at t=40 ms takes effect at
     t=50 ms, so 30 packets go to port a and 20 to port b. *)
  Sdn_controller.install_rule ctrl ~switch:"s1" ~priority:1 ~match_:Hfl.any
    ~action:(Flow_table.Forward "a") ();
  for i = 0 to 49 do
    ignore
      (Engine.schedule_at e
         (Time.ms (20.0 +. float_of_int i))
         (fun () -> Switch.receive sw (mk_packet ~id:i ())))
  done;
  ignore
    (Engine.schedule_at e (Time.ms 40.0) (fun () ->
         Sdn_controller.update_route ctrl ~switch:"s1" ~match_:Hfl.any
           ~new_action:(Flow_table.Forward "b") ()));
  Engine.run e;
  Alcotest.(check int) "packets before flip" 30 !to_a;
  Alcotest.(check int) "packets after flip" 20 !to_b

let test_sdn_unknown_switch () =
  let e = Engine.create () in
  let ctrl = Sdn_controller.create e () in
  Alcotest.check_raises "unknown switch" (Failure "Sdn_controller: unknown switch nope")
    (fun () ->
      Sdn_controller.install_rule ctrl ~switch:"nope" ~priority:1 ~match_:Hfl.any
        ~action:Flow_table.Drop ())

let test_link_counters_and_order () =
  let e = Engine.create () in
  let got = ref [] in
  let link = Link.create e ~name:"l" ~dst:(fun p -> got := p.Packet.id :: !got) () in
  Link.send link (mk_packet ~id:1 ());
  Link.send link (mk_packet ~id:2 ());
  Engine.run e;
  Alcotest.(check (list int)) "FIFO delivery" [ 1; 2 ] (List.rev !got);
  Alcotest.(check int) "packets counted" 2 (Link.packets_sent link);
  Alcotest.(check bool) "bytes counted" true (Link.bytes_sent link >= 2 * Packet.header_bytes)

let test_switch_unknown_port_drops () =
  let e = Engine.create () in
  let sw = Switch.create e ~name:"s1" () in
  ignore
    (Flow_table.install (Switch.table sw) ~priority:1 ~match_:Hfl.any
       ~action:(Flow_table.Forward "nowhere"));
  Switch.receive sw (mk_packet ());
  Engine.run e;
  Alcotest.(check int) "dropped" 1 (Switch.packets_dropped sw)

let test_sdn_remove_rules () =
  let e = Engine.create () in
  let sw = Switch.create e ~name:"s1" () in
  let hits = ref 0 in
  Switch.attach_port sw ~port:"p" (Link.create e ~name:"lp" ~dst:(fun _ -> incr hits) ());
  let ctrl = Sdn_controller.create e ~install_delay:(Time.ms 1.0) () in
  Sdn_controller.register_switch ctrl sw;
  let m = Hfl.of_string "tp_dst=80" in
  Sdn_controller.install_rule ctrl ~switch:"s1" ~priority:5 ~match_:m
    ~action:(Flow_table.Forward "p") ();
  Engine.run e;
  Switch.receive sw (mk_packet ~id:1 ());
  Engine.run e;
  Sdn_controller.remove_rules ctrl ~switch:"s1" ~match_:m ();
  Engine.run e;
  Switch.receive sw (mk_packet ~id:2 ());
  Engine.run e;
  Alcotest.(check int) "only pre-removal packet forwarded" 1 !hits;
  Alcotest.(check int) "two rule operations issued" 2 (Sdn_controller.rule_operations ctrl)

let test_host_send_receive () =
  let h = Host.create ~name:"h1" () in
  Host.receive h (mk_packet ());
  Alcotest.(check int) "received" 1 (Host.packets_received h);
  Alcotest.(check int) "recorded" 1 (List.length (Host.received h));
  Host.clear h;
  Alcotest.(check int) "cleared" 0 (Host.packets_received h)

(* ------------------------------------------------------------------ *)
(* Packet_batch                                                        *)
(* ------------------------------------------------------------------ *)

let batch_ids b =
  let ids = ref [] in
  Packet_batch.iter b (fun p -> ids := p.Packet.id :: !ids);
  List.rev !ids

let test_batch_columns () =
  let b = Packet_batch.create ~capacity:2 () in
  for i = 0 to 4 do
    Packet_batch.push b (mk_packet ~id:i ~ts:(float_of_int i *. 0.001) ~sport:(1000 + i) ())
  done;
  Alcotest.(check int) "length" 5 (Packet_batch.length b);
  Alcotest.(check bool) "grown past initial capacity" true (Packet_batch.capacity b >= 5);
  let check_member i =
    let p = Packet_batch.get b i in
    let packed = Five_tuple.pack_packet p in
    Alcotest.(check int) "key_a column" (Five_tuple.packed_pa packed) (Packet_batch.key_a b).(i);
    Alcotest.(check int) "key_b column" (Five_tuple.packed_pb packed) (Packet_batch.key_b b).(i);
    Alcotest.(check int) "hash column" (Five_tuple.packed_hash packed)
      (Packet_batch.key_hash b).(i);
    Alcotest.(check int) "size column" (Packet.wire_bytes p) (Packet_batch.sizes b).(i)
  in
  for i = 0 to 4 do
    check_member i;
    Alcotest.(check (float 1e-9)) "arrival"
      (float_of_int i *. 0.001)
      (Time.to_seconds (Packet_batch.arrival b i))
  done;
  (* A header rewrite (NAT) must refresh the key columns in place. *)
  Packet_batch.set b 2 (mk_packet ~id:2 ~src:"99.9.9.9" ~sport:777 ());
  check_member 2;
  let sum = Array.fold_left ( + ) 0 (Array.sub (Packet_batch.sizes b) 0 5) in
  Alcotest.(check int) "total_bytes is the size-column sum" sum (Packet_batch.total_bytes b)

let test_batch_drop_compact () =
  let b = Packet_batch.create () in
  for i = 0 to 9 do
    Packet_batch.push b (mk_packet ~id:i ~sport:(1000 + i) ())
  done;
  Packet_batch.drop b 0;
  Packet_batch.drop b 4;
  Packet_batch.drop b 9;
  Alcotest.(check bool) "marked" true (Packet_batch.is_dropped b 4);
  Alcotest.(check int) "removed" 3 (Packet_batch.compact b);
  Alcotest.(check int) "length" 7 (Packet_batch.length b);
  Alcotest.(check (list int)) "survivor order preserved" [ 1; 2; 3; 5; 6; 7; 8 ] (batch_ids b);
  Alcotest.(check bool) "marks cleared" false (Packet_batch.is_dropped b 0);
  (* Key columns must track the compacted payload slots. *)
  for i = 0 to 6 do
    Alcotest.(check int) "key follows survivor"
      (Five_tuple.packed_pa (Five_tuple.pack_packet (Packet_batch.get b i)))
      (Packet_batch.key_a b).(i)
  done;
  Alcotest.(check int) "compact with no marks" 0 (Packet_batch.compact b)

let test_batch_pool_reuse () =
  let pool = Packet_batch.pool () in
  let b1 = Packet_batch.alloc pool in
  Packet_batch.push b1 (mk_packet ());
  let b2 = Packet_batch.alloc pool in
  Alcotest.(check int) "created" 2 (Packet_batch.pool_created pool);
  Alcotest.(check int) "outstanding" 2 (Packet_batch.pool_outstanding pool);
  Alcotest.(check int) "high water" 2 (Packet_batch.pool_high_water pool);
  Packet_batch.release b1;
  Alcotest.(check int) "outstanding after release" 1 (Packet_batch.pool_outstanding pool);
  let b3 = Packet_batch.alloc pool in
  Alcotest.(check bool) "free-list reuse, no allocation" true (b3 == b1);
  Alcotest.(check int) "reuse creates nothing" 2 (Packet_batch.pool_created pool);
  Alcotest.(check int) "cleared on release" 0 (Packet_batch.length b3);
  (* A detached batch (cross-shard handoff) never returns to the pool. *)
  Packet_batch.detach b2;
  Packet_batch.release b2;
  let b4 = Packet_batch.alloc pool in
  Alcotest.(check bool) "detached batch not recycled" true (b4 != b2);
  Alcotest.(check int) "fresh batch created instead" 3 (Packet_batch.pool_created pool)

let test_batch_builder_triggers () =
  let emitted = ref [] in
  let bld =
    Packet_batch.Builder.create ~size:3 ~window:(Time.ms 10.0)
      ~emit:(fun ~at b ->
        emitted := (Time.to_seconds at, batch_ids b) :: !emitted;
        Packet_batch.release b)
      ()
  in
  List.iter
    (fun (id, ms) -> Packet_batch.Builder.add bld (mk_packet ~id ~ts:(ms /. 1000.0) ()))
    [
      (0, 0.0);
      (1, 1.0);
      (2, 2.0) (* fills the batch: emit [0;1;2] at 2 ms *);
      (3, 20.0);
      (4, 35.0) (* past 20 ms + 10 ms window: emit [3] at its 30 ms deadline *);
      (5, 36.0);
    ];
  Packet_batch.Builder.flush bld (* remainder [4;5] at its last member's 36 ms *);
  Alcotest.(check int) "batches emitted" 3 (Packet_batch.Builder.batches_emitted bld);
  Alcotest.(check (list (pair (float 1e-9) (list int))))
    "size trigger at filling ts, window trigger at deadline, flush at last ts"
    [ (0.002, [ 0; 1; 2 ]); (0.030, [ 3 ]); (0.036, [ 4; 5 ]) ]
    (List.rev !emitted)

let test_flow_table_batch_matches_scalar () =
  (* One classification pass over a batch must agree with per-packet
     lookups — same winning actions, same per-rule counters — across
     the exact fast path, the wildcard sidecar, their priority
     interplay, and misses. *)
  let install_rules t =
    ignore
      (Flow_table.install t ~priority:10
         ~match_:
           (Hfl.of_string "nw_src=10.0.0.1/32,nw_dst=1.1.1.5/32,tp_src=1000,tp_dst=80,proto=tcp")
         ~action:(Flow_table.Forward "exact"));
    ignore
      (Flow_table.install t ~priority:15 ~match_:(Hfl.of_string "tp_src=1001")
         ~action:(Flow_table.Forward "wild-wins"));
    ignore
      (Flow_table.install t ~priority:10
         ~match_:
           (Hfl.of_string "nw_src=10.0.0.1/32,nw_dst=1.1.1.5/32,tp_src=1001,tp_dst=80,proto=tcp")
         ~action:(Flow_table.Forward "exact-shadowed"));
    ignore
      (Flow_table.install t ~priority:20 ~match_:(Hfl.of_string "tp_dst=443")
         ~action:(Flow_table.Forward "wild"));
    ignore (Flow_table.install t ~priority:5 ~match_:(Hfl.of_string "tp_dst=22") ~action:Flow_table.Drop)
  in
  let ta = Flow_table.create () and tb = Flow_table.create () in
  install_rules ta;
  install_rules tb;
  let pkts =
    [
      mk_packet ~id:0 ~sport:1000 ~dport:80 () (* exact fast path *);
      mk_packet ~id:1 ~sport:7 ~dport:443 () (* wildcard scan *);
      mk_packet ~id:2 ~sport:1001 ~dport:80 () (* wildcard outranks exact *);
      mk_packet ~id:3 ~sport:8 ~dport:22 () (* Drop rule *);
      mk_packet ~id:4 ~sport:9 ~dport:9999 () (* table miss *);
      mk_packet ~id:5 ~sport:1000 ~dport:80 ~proto:Packet.Udp () (* near-miss on proto *);
    ]
  in
  let b = Packet_batch.create () in
  List.iter (Packet_batch.push b) pkts;
  let actions = Array.make (Packet_batch.length b) None in
  Flow_table.lookup_batch tb b actions;
  List.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "member %d action agrees" i)
        true
        (Flow_table.lookup ta p = actions.(i)))
    pkts;
  List.iter2
    (fun (ra : Flow_table.rule) (rb : Flow_table.rule) ->
      Alcotest.(check int) "rule packet counter agrees" ra.packets rb.packets;
      Alcotest.(check int) "rule byte counter agrees" ra.bytes rb.bytes)
    (Flow_table.rules ta) (Flow_table.rules tb)

let test_switch_batch_uniform_fast_path () =
  let e = Engine.create () in
  let sw = Switch.create e ~name:"s1" () in
  let batch_lens = ref [] and scalar = ref 0 in
  let link = Link.create e ~name:"s1-out" ~dst:(fun _ -> incr scalar) () in
  Link.set_dst_batch link (fun b ->
      batch_lens := Packet_batch.length b :: !batch_lens;
      Packet_batch.release b);
  Switch.attach_port sw ~port:"out" link;
  ignore
    (Flow_table.install (Switch.table sw) ~priority:1 ~match_:Hfl.any
       ~action:(Flow_table.Forward "out"));
  let b = Packet_batch.alloc (Switch.batch_pool sw) in
  for i = 0 to 7 do
    Packet_batch.push b (mk_packet ~id:i ())
  done;
  Switch.receive_batch sw b;
  Engine.run e;
  Alcotest.(check (list int)) "delivered whole, as one batch" [ 8 ] !batch_lens;
  Alcotest.(check int) "no scalar fallback" 0 !scalar;
  Alcotest.(check int) "rx counter counts members" 8 (Switch.packets_received sw);
  Alcotest.(check int) "link counts members" 8 (Link.packets_sent link);
  Alcotest.(check int) "batch recycled to switch pool" 0
    (Packet_batch.pool_outstanding (Switch.batch_pool sw))

let test_switch_batch_split_fifo () =
  (* Satellite guarantee: when one batch splits between the exact fast
     path and the wildcard/miss sidecar, every destination — each output
     port, the controller punt queue, the drop counter — still sees its
     members in exact arrival order. *)
  let e = Engine.create () in
  let sw = Switch.create e ~name:"s1" () in
  let got_a = ref [] and got_b = ref [] and punted = ref [] in
  let mk_rec_link name cell =
    Link.create e ~name ~dst:(fun p -> cell := p.Packet.id :: !cell) ()
  in
  Switch.attach_port sw ~port:"a" (mk_rec_link "la" got_a);
  Switch.attach_port sw ~port:"b" (mk_rec_link "lb" got_b);
  Switch.on_miss sw (fun p -> punted := p.Packet.id :: !punted);
  let exact sport =
    Hfl.of_string
      (Printf.sprintf "nw_src=10.0.0.1/32,nw_dst=1.1.1.5/32,tp_src=%d,tp_dst=80,proto=tcp" sport)
  in
  let table = Switch.table sw in
  ignore (Flow_table.install table ~priority:10 ~match_:(exact 1000) ~action:(Flow_table.Forward "a"));
  ignore (Flow_table.install table ~priority:10 ~match_:(exact 1001) ~action:(Flow_table.Forward "a"));
  ignore
    (Flow_table.install table ~priority:10 ~match_:(Hfl.of_string "tp_dst=443")
       ~action:(Flow_table.Forward "b"));
  ignore (Flow_table.install table ~priority:10 ~match_:(Hfl.of_string "tp_dst=22") ~action:Flow_table.Drop);
  let b = Packet_batch.alloc (Switch.batch_pool sw) in
  List.iter
    (fun (id, sport, dport) -> Packet_batch.push b (mk_packet ~id ~sport ~dport ()))
    [
      (0, 1000, 80) (* exact -> a *);
      (1, 7, 443) (* wildcard -> b *);
      (2, 1001, 80) (* exact -> a *);
      (3, 9, 9999) (* miss -> punt *);
      (4, 8, 22) (* Drop *);
      (5, 7, 443) (* wildcard -> b *);
      (6, 1000, 80) (* exact -> a *);
      (7, 9, 9999) (* miss -> punt *);
    ];
  Switch.receive_batch sw b;
  Engine.run e;
  Alcotest.(check (list int)) "port a FIFO" [ 0; 2; 6 ] (List.rev !got_a);
  Alcotest.(check (list int)) "port b FIFO" [ 1; 5 ] (List.rev !got_b);
  Alcotest.(check (list int)) "punts in order" [ 3; 7 ] (List.rev !punted);
  Alcotest.(check int) "drop counted" 1 (Switch.packets_dropped sw);
  Alcotest.(check int) "rx counter" 8 (Switch.packets_received sw);
  Alcotest.(check int) "sub-batches recycled" 0
    (Packet_batch.pool_outstanding (Switch.batch_pool sw))

let test_link_batch_scalar_drain () =
  (* A batch sent over a link whose destination is batch-unaware drains
     member-by-member, in order, with member-granularity counters. *)
  let e = Engine.create () in
  let got = ref [] in
  let link = Link.create e ~name:"l" ~dst:(fun p -> got := p.Packet.id :: !got) () in
  let b = Packet_batch.create () in
  for i = 0 to 3 do
    Packet_batch.push b (mk_packet ~id:i ())
  done;
  let bytes = Packet_batch.total_bytes b in
  Link.send_batch link b;
  Engine.run e;
  Alcotest.(check (list int)) "drained in order" [ 0; 1; 2; 3 ] (List.rev !got);
  Alcotest.(check int) "packets counted per member" 4 (Link.packets_sent link);
  Alcotest.(check int) "bytes counted" bytes (Link.bytes_sent link)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openmb_net"
    [
      ( "addr",
        [
          Alcotest.test_case "roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "bad input" `Quick test_addr_bad_input;
          Alcotest.test_case "prefix membership" `Quick test_prefix_membership;
          Alcotest.test_case "prefix subsumption" `Quick test_prefix_subsumption;
          Alcotest.test_case "zero prefix" `Quick test_prefix_zero;
          Alcotest.test_case "host in prefix" `Quick test_host_in_prefix;
        ] );
      ( "payload",
        [
          Alcotest.test_case "sizes" `Quick test_payload_sizes;
          Alcotest.test_case "sub/concat/equal" `Quick test_payload_sub_equal;
        ] );
      ( "five_tuple",
        [
          Alcotest.test_case "reverse and canonical" `Quick test_five_tuple_reverse_canonical;
          Alcotest.test_case "packed round-trip" `Quick test_packed_roundtrip;
        ]
        @ qcheck [ prop_packed_roundtrip; prop_hash_bucket_skew ] );
      ( "flat_table",
        [
          Alcotest.test_case "basics" `Quick test_flat_table_basics;
          Alcotest.test_case "forced collision chain" `Quick test_flat_table_collision_chain;
          Alcotest.test_case "flag column" `Quick test_flat_table_flags;
          Alcotest.test_case "batch probe" `Quick test_flat_table_batch_probe;
        ]
        @ qcheck [ prop_flat_table_model ] );
      ( "hfl",
        [
          Alcotest.test_case "matching" `Quick test_hfl_matching;
          Alcotest.test_case "bidirectional" `Quick test_hfl_bidir;
          Alcotest.test_case "string roundtrip" `Quick test_hfl_string_roundtrip;
          Alcotest.test_case "subsumption" `Quick test_hfl_subsumes;
          Alcotest.test_case "granularity" `Quick test_hfl_granularity;
          Alcotest.test_case "key projection" `Quick test_hfl_key_of_tuple;
          Alcotest.test_case "well-formedness" `Quick test_hfl_well_formed;
          Alcotest.test_case "equality" `Quick test_hfl_equal_order_insensitive;
          Alcotest.test_case "to_tuple" `Quick test_hfl_to_tuple;
        ]
        @ qcheck [ prop_hfl_subsumes_implies_match; prop_hfl_packet_matches_tuple ] );
      ( "flow_table",
        [
          Alcotest.test_case "priority" `Quick test_flow_table_priority;
          Alcotest.test_case "tie break" `Quick test_flow_table_tie_break;
          Alcotest.test_case "remove and counters" `Quick test_flow_table_remove_and_counters;
          Alcotest.test_case "remove matching" `Quick test_flow_table_remove_matching;
          Alcotest.test_case "exact vs wildcard" `Quick test_flow_table_exact_vs_wildcard;
          Alcotest.test_case "exact tie break" `Quick test_flow_table_exact_tie_break;
          Alcotest.test_case "exact remove" `Quick test_flow_table_exact_remove;
        ]
        @ qcheck [ prop_flow_table_reference ] );
      ( "packet_batch",
        [
          Alcotest.test_case "columns track members" `Quick test_batch_columns;
          Alcotest.test_case "drop and compact" `Quick test_batch_drop_compact;
          Alcotest.test_case "pool reuse" `Quick test_batch_pool_reuse;
          Alcotest.test_case "builder triggers" `Quick test_batch_builder_triggers;
          Alcotest.test_case "lookup_batch matches scalar" `Quick
            test_flow_table_batch_matches_scalar;
        ] );
      ( "switch",
        [
          Alcotest.test_case "forwarding" `Quick test_switch_forwarding;
          Alcotest.test_case "miss handler" `Quick test_switch_miss_handler;
          Alcotest.test_case "unknown port drops" `Quick test_switch_unknown_port_drops;
          Alcotest.test_case "batch uniform fast path" `Quick test_switch_batch_uniform_fast_path;
          Alcotest.test_case "batch split preserves FIFO" `Quick test_switch_batch_split_fifo;
        ] );
      ( "link",
        [
          Alcotest.test_case "counters and order" `Quick test_link_counters_and_order;
          Alcotest.test_case "batch scalar drain" `Quick test_link_batch_scalar_drain;
        ] );
      ( "sdn",
        [
          Alcotest.test_case "route update delay" `Quick test_sdn_route_update_takes_time;
          Alcotest.test_case "unknown switch" `Quick test_sdn_unknown_switch;
          Alcotest.test_case "remove rules" `Quick test_sdn_remove_rules;
        ] );
      ("host", [ Alcotest.test_case "send/receive" `Quick test_host_send_receive ]);
    ]
