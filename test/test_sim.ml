(* Unit and property tests for the simulation substrate. *)

open Openmb_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (drain [])

let test_heap_fifo_ties () =
  (* Equal keys pop in insertion order. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let labels = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, l) ->
      labels := l :: !labels;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "fifo ties" [ "z"; "a"; "b"; "c" ] (List.rev !labels)

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h)

let test_heap_clear () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "size after clear" 0 (Heap.size h);
  Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* PRNG and distributions                                              *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:99 and b = Prng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:99 in
  let c = Prng.split a in
  (* Splitting then drawing from the parent must not change the
     child's stream. *)
  let expected = List.init 10 (fun _ -> Prng.bits64 (Prng.split (Prng.create ~seed:99))) in
  ignore expected;
  let child_first = Prng.bits64 c in
  let a2 = Prng.create ~seed:99 in
  let c2 = Prng.split a2 in
  ignore (Prng.bits64 a2);
  Alcotest.(check int64) "child unaffected by parent draws" child_first (Prng.bits64 c2)

let test_prng_bounds () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "int_in range" true (v >= -5 && v <= 5)
  done

let test_prng_float_mean () =
  let g = Prng.create ~seed:5 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float g 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_dist_exponential_mean () =
  let g = Prng.create ~seed:8 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential g ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_dist_zipf_rank1_most_popular () =
  let g = Prng.create ~seed:21 in
  let counts = Array.make 11 0 in
  for _ = 1 to 10000 do
    let r = Dist.zipf g ~n:10 ~s:1.2 in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 beats rank 10" true (counts.(1) > counts.(10) * 3);
  Alcotest.(check int) "rank 0 unused" 0 counts.(0)

let test_dist_empirical_endpoints () =
  let g = Prng.create ~seed:2 in
  let points = [| (1.0, 0.5); (10.0, 1.0) |] in
  for _ = 1 to 1000 do
    let v = Dist.empirical g ~points in
    Alcotest.(check bool) "within hull" true (v >= 0.0 && v <= 10.0)
  done

let test_dist_bounded_pareto_bounds () =
  let g = Prng.create ~seed:77 in
  for _ = 1 to 1000 do
    let v = Dist.bounded_pareto g ~shape:1.2 ~lo:2.0 ~hi:50.0 in
    Alcotest.(check bool) "in [lo,hi]" true (v >= 2.0 -. 1e-9 && v <= 50.0 +. 1e-9)
  done

let test_dist_weighted_index () =
  let g = Prng.create ~seed:6 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Dist.weighted_index g ~weights:[| 0.0; 1.0; 9.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(0);
  Alcotest.(check bool) "9:1 ratio" true (counts.(2) > counts.(1) * 5)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "total" 10.0 (Stats.total s);
  check_float "min" 1.0 (Stats.min_value s);
  check_float "max" 4.0 (Stats.max_value s);
  check_float "median" 2.5 (Stats.median s)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 0.0; 10.0 ];
  check_float "p25" 2.5 (Stats.percentile s 25.0);
  check_float "p100" 10.0 (Stats.percentile s 100.0);
  check_float "p0" 0.0 (Stats.percentile s 0.0)

let test_stats_fraction_above () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check_float "fraction above 90" 0.10 (Stats.fraction_above s 90.0);
  check_float "fraction above 0" 1.0 (Stats.fraction_above s 0.0)

let test_stats_cdf_monotone () =
  let s = Stats.create () in
  let g = Prng.create ~seed:4 in
  for _ = 1 to 500 do
    Stats.add s (Prng.float g 100.0)
  done;
  let cdf = Stats.cdf s ~points:20 in
  Alcotest.(check int) "points" 20 (List.length cdf);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone cdf);
  let _, last = List.nth cdf 19 in
  check_float "ends at 1" 1.0 last

let test_stats_histogram_total () =
  let s = Stats.create () in
  for i = 0 to 99 do
    Stats.add s (float_of_int i)
  done;
  let h = Stats.histogram s ~bins:10 in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples binned" 100 total

let prop_stats_mean_bounded =
  QCheck2.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let m = Stats.mean s in
      m >= Stats.min_value s -. 1e-6 && m <= Stats.max_value s +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  let log tag () = order := tag :: !order in
  ignore (Engine.schedule_at e (Time.seconds 2.0) (log "b"));
  ignore (Engine.schedule_at e (Time.seconds 1.0) (log "a"));
  ignore (Engine.schedule_at e (Time.seconds 3.0) (log "c"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order);
  check_float "clock at last event" 3.0 (Time.to_seconds (Engine.now e))

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore
      (Engine.schedule_at e (Time.seconds 1.0) (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e (Time.seconds 1.0) (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check bool) "is_cancelled" true (Engine.is_cancelled h)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick n () =
    incr count;
    if n > 0 then ignore (Engine.schedule_after e (Time.seconds 1.0) (tick (n - 1)))
  in
  ignore (Engine.schedule_after e Time.zero (tick 9));
  Engine.run e;
  Alcotest.(check int) "chain of 10" 10 !count;
  check_float "clock" 9.0 (Time.to_seconds (Engine.now e))

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e (Time.seconds (float_of_int i)) (fun () -> incr count))
  done;
  Engine.run ~until:(Time.seconds 5.5) e;
  Alcotest.(check int) "five fired" 5 !count;
  check_float "clock advanced to until" 5.5 (Time.to_seconds (Engine.now e));
  Engine.run e;
  Alcotest.(check int) "rest fired" 10 !count

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e (Time.seconds 5.0) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past scheduling fails"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      ignore (Engine.schedule_at e (Time.seconds 1.0) (fun () -> ())))

let prop_engine_time_order =
  (* Whatever the scheduling order, callbacks execute in non-decreasing
     virtual time. *)
  QCheck2.Test.make ~name:"events execute in time order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) (float_range 0.0 100.0))
    (fun times ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter
        (fun t ->
          ignore
            (Engine.schedule_at e (Time.seconds t) (fun () ->
                 seen := Time.to_seconds (Engine.now e) :: !seen)))
        times;
      Engine.run e;
      let order = List.rev !seen in
      List.sort Float.compare order = order
      && List.length order = List.length times)

(* ------------------------------------------------------------------ *)
(* Timer wheel vs. reference scheduler                                 *)
(* ------------------------------------------------------------------ *)

(* The seed engine, verbatim: a binary heap of closures whose FIFO
   tie-break comes from Heap's insertion sequence.  This is the
   semantic oracle the timer-wheel engine must match event for
   event. *)
module Ref_engine = struct
  type handle = { mutable cancelled : bool }
  type event = { at : float; action : unit -> unit; h : handle }
  type t = { mutable clock : float; queue : event Heap.t }

  let create () =
    { clock = 0.0; queue = Heap.create ~cmp:(fun a b -> Float.compare a.at b.at) }

  let now t = t.clock

  let schedule_at t when_ f =
    if when_ < t.clock then invalid_arg "Ref_engine.schedule_at: past";
    let h = { cancelled = false } in
    Heap.push t.queue { at = when_; action = f; h };
    h

  let cancel h = h.cancelled <- true

  let rec step t =
    match Heap.pop t.queue with
    | None -> false
    | Some ev ->
      if ev.h.cancelled then step t
      else begin
        t.clock <- ev.at;
        ev.action ();
        true
      end

  let run ?until t =
    let keep_going () =
      match until with
      | None -> not (Heap.is_empty t.queue)
      | Some limit ->
        (* One deliberate deviation from the seed: decide the [until]
           boundary on the next *live* event.  The seed peeked at the
           raw head, so a cancelled event with [at <= limit] would
           admit one live event beyond the limit; the wheel engine
           sweeps tombstones, which makes that overshoot unobservable
           and was never meaningful behavior. *)
        let rec live () =
          match Heap.peek t.queue with
          | None -> false
          | Some ev ->
            if ev.h.cancelled then begin
              ignore (Heap.pop t.queue);
              live ()
            end
            else ev.at <= limit
        in
        live ()
    in
    while keep_going () do
      ignore (step t)
    done;
    match until with Some l when t.clock < l -> t.clock <- l | _ -> ()
end

(* A random scheduling program: top-level events at absolute times,
   each possibly spawning same-or-later children and cancelling an
   earlier event when it fires, interpreted over an abstract scheduler
   so the wheel engine and the reference produce comparable traces. *)
type ev_spec = { at_s : float; kids : float list; cancel_tgt : int option }
type program = { events : ev_spec list; untils : float list }

type ('t, 'h) sched = {
  s_create : unit -> 't;
  s_now : 't -> float;
  s_schedule : 't -> float -> (unit -> unit) -> 'h;
  s_cancel : 'h -> unit;
  s_run : 't -> float option -> unit;
  s_pending : ('t -> int) option; (* None: use the interpreter's count *)
}

type trace = {
  tr_log : (int * float) list; (* (event id, fire time), in fire order *)
  tr_marks : (float * int * int) list; (* (clock, fired so far, live) per segment *)
}

let exec_program sched prog =
  let t = sched.s_create () in
  let log = ref [] in
  let fired = ref 0 in
  let cancelled_pending = ref 0 in
  let handles : (int, 'h) Hashtbl.t = Hashtbl.create 64 in
  let gone : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let rec schedule spec =
    let id = !next_id in
    incr next_id;
    let h = sched.s_schedule t spec.at_s (fun () -> fire spec id) in
    Hashtbl.replace handles id h
  and fire spec id =
    incr fired;
    Hashtbl.replace gone id ();
    log := (id, sched.s_now t) :: !log;
    (match spec.cancel_tgt with
    | Some k when !next_id > 0 ->
      let tgt = k mod !next_id in
      sched.s_cancel (Hashtbl.find handles tgt);
      if not (Hashtbl.mem gone tgt) then begin
        incr cancelled_pending;
        Hashtbl.replace gone tgt ()
      end
    | _ -> ());
    List.iter
      (fun d -> schedule { at_s = sched.s_now t +. d; kids = []; cancel_tgt = None })
      spec.kids
  in
  List.iter schedule prog.events;
  let marks = ref [] in
  let mark () =
    let live =
      match sched.s_pending with
      | Some pending -> pending t
      | None -> !next_id - !fired - !cancelled_pending
    in
    marks := (sched.s_now t, !fired, live) :: !marks
  in
  List.iter
    (fun u ->
      sched.s_run t (Some u);
      mark ())
    (List.sort Float.compare prog.untils);
  sched.s_run t None;
  mark ();
  { tr_log = List.rev !log; tr_marks = List.rev !marks }

let ref_sched =
  {
    s_create = Ref_engine.create;
    s_now = Ref_engine.now;
    s_schedule = (fun t at f -> Ref_engine.schedule_at t at f);
    s_cancel = Ref_engine.cancel;
    s_run = (fun t until -> match until with
      | None -> Ref_engine.run t
      | Some u -> Ref_engine.run ~until:u t);
    s_pending = None;
  }

let wheel_sched ~slot_us =
  {
    s_create = (fun () -> Engine.create ~slot_us ());
    s_now = (fun t -> Time.to_seconds (Engine.now t));
    s_schedule = (fun t at f -> Engine.schedule_at t (Time.seconds at) f);
    s_cancel = Engine.cancel;
    s_run = (fun t until -> match until with
      | None -> Engine.run t
      | Some u -> Engine.run ~until:(Time.seconds u) t);
    (* Checked against the interpreter's own live count: validates that
       [pending] excludes tombstones. *)
    s_pending = Some Engine.pending;
  }

let gen_program =
  let open QCheck2.Gen in
  let gen_time =
    frequency
      [
        (* Dense microseconds: slot collisions and same-instant ties. *)
        (6, map (fun n -> float_of_int n *. 1e-6) (int_range 0 300));
        (* Milliseconds: level-1/2 placement and block crossings. *)
        (3, map (fun n -> float_of_int n *. 0.37e-3) (int_range 0 100));
        (* Seconds: level-3 placement at 1us slots. *)
        (2, map (fun n -> float_of_int n) (int_range 0 5));
        (* Beyond the 1us-slot wheel span: the overflow heap. *)
        (1, map (fun n -> 4000.0 +. (float_of_int n *. 250.0)) (int_range 0 8));
      ]
  in
  let gen_kid = map (fun n -> float_of_int n *. 1e-6) (int_range 0 50) in
  let gen_spec =
    map3
      (fun at_s kids cancel_tgt -> { at_s; kids; cancel_tgt })
      gen_time
      (list_size (int_range 0 3) gen_kid)
      (option (int_range 0 1000))
  in
  map2
    (fun events untils -> { events; untils })
    (list_size (int_range 0 40) gen_spec)
    (list_size (int_range 0 4) gen_time)

let print_program p =
  let spec s =
    Printf.sprintf "{at=%g; kids=[%s]; cancel=%s}" s.at_s
      (String.concat ";" (List.map (Printf.sprintf "%g") s.kids))
      (match s.cancel_tgt with None -> "-" | Some k -> string_of_int k)
  in
  Printf.sprintf "events=[%s] untils=[%s]"
    (String.concat "; " (List.map spec p.events))
    (String.concat ";" (List.map (Printf.sprintf "%g") p.untils))

let equiv_prop ~slot_us prog =
  let expected = exec_program ref_sched prog in
  let actual = exec_program (wheel_sched ~slot_us) prog in
  if expected = actual then true
  else
    QCheck2.Test.fail_reportf
      "diverged (slot_us=%g)\nref:   %d fired, marks %s\nwheel: %d fired, marks %s\nfirst diff: %s"
      slot_us
      (List.length expected.tr_log)
      (String.concat " "
         (List.map (fun (c, f, l) -> Printf.sprintf "(%g,%d,%d)" c f l) expected.tr_marks))
      (List.length actual.tr_log)
      (String.concat " "
         (List.map (fun (c, f, l) -> Printf.sprintf "(%g,%d,%d)" c f l) actual.tr_marks))
      (match
         List.find_opt
           (fun ((a, _), (b, _)) -> a <> b)
           (List.combine
              (expected.tr_log @ List.init (max 0 (List.length actual.tr_log - List.length expected.tr_log)) (fun _ -> (-1, 0.0)))
              (actual.tr_log @ List.init (max 0 (List.length expected.tr_log - List.length actual.tr_log)) (fun _ -> (-1, 0.0))))
       with
      | Some ((a, ta), (b, tb)) -> Printf.sprintf "ref id %d@%g vs wheel id %d@%g" a ta b tb
      | None -> "same ids, different times/marks")

let prop_wheel_equiv =
  QCheck2.Test.make ~name:"timer wheel == seed heap scheduling (1us slots)"
    ~count:500 ~print:print_program gen_program (equiv_prop ~slot_us:1.0)

let prop_wheel_equiv_coarse =
  (* 1ms slots: many distinct timestamps share a slot, exercising the
     sorted drain. *)
  QCheck2.Test.make ~name:"timer wheel == seed heap scheduling (1ms slots)"
    ~count:300 ~print:print_program gen_program (equiv_prop ~slot_us:1000.0)

let prop_wheel_equiv_fine =
  (* 10ns slots: a ~43s wheel span, so the seconds/heap branches cross
     blocks and overflow constantly. *)
  QCheck2.Test.make ~name:"timer wheel == seed heap scheduling (0.01us slots)"
    ~count:300 ~print:print_program gen_program (equiv_prop ~slot_us:0.01)

let prop_pool_invariants =
  QCheck2.Test.make ~name:"event pool: capacity = free + queued, drains empty"
    ~count:300 ~print:print_program gen_program (fun prog ->
      let e = Engine.create () in
      let check_stats () =
        let s = Engine.pool_stats e in
        s.Engine.capacity = s.Engine.free + s.Engine.queued
        && s.Engine.high_water <= s.Engine.capacity
        && s.Engine.queued >= Engine.pending e
      in
      let ok = ref true in
      let handles = ref [] in
      List.iter
        (fun spec ->
          let h = Engine.schedule_at e (Time.seconds spec.at_s) (fun () -> ()) in
          handles := (h, spec.cancel_tgt) :: !handles;
          ok := !ok && check_stats ())
        prog.events;
      List.iter
        (fun (h, tgt) -> if tgt <> None then Engine.cancel h)
        !handles;
      ok := !ok && check_stats ();
      Engine.run e;
      let s = Engine.pool_stats e in
      !ok && check_stats () && s.Engine.queued = 0 && s.Engine.free = s.Engine.capacity
      && Engine.pending e = 0)

let test_pool_reuse () =
  (* Cells recycle through the free list: scheduling the same load
     repeatedly must not grow the pool past its first high-water mark.
     (A cell live in two schedules at once would trip the wheel's
     alloc/release state checks as Invalid_argument.) *)
  let e = Engine.create () in
  let sink () = () in
  let round () =
    for i = 1 to 1000 do
      let at = Time.(Engine.now e + Time.us (float_of_int i)) in
      if i mod 2 = 0 then ignore (Engine.schedule_at e at sink)
      else Engine.call_at e at (fun (_ : int) -> ()) i
    done;
    Engine.run e
  in
  round ();
  let cap_after_first = (Engine.pool_stats e).Engine.capacity in
  for _ = 1 to 10 do
    round ()
  done;
  let s = Engine.pool_stats e in
  Alcotest.(check int) "pool did not grow on reuse" cap_after_first s.Engine.capacity;
  Alcotest.(check int) "all cells back on the free list" s.Engine.capacity s.Engine.free;
  Alcotest.(check bool) "high water bounded by one round" true (s.Engine.high_water <= 1024)

let test_engine_call_fifo_with_closures () =
  (* call_at/call2_at share the same (time, seq) order as schedule_at:
     same-instant events of any kind fire in scheduling order. *)
  let e = Engine.create () in
  let order = ref [] in
  let push tag = order := tag :: !order in
  ignore (Engine.schedule_at e (Time.seconds 1.0) (fun () -> push 1));
  Engine.call_at e (Time.seconds 1.0) push 2;
  Engine.call2_at e (Time.seconds 1.0) (fun a b -> push (a + b)) 1 2;
  ignore (Engine.schedule_at e (Time.seconds 1.0) (fun () -> push 4));
  Engine.call_after e Time.zero push 0;
  Engine.run e;
  Alcotest.(check (list int)) "mixed-kind fifo" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_engine_far_future_overflow () =
  (* Events beyond the wheel span (~71 min at 1us slots) take the heap
     path yet stay in global order. *)
  let e = Engine.create () in
  let order = ref [] in
  Engine.call_at e (Time.seconds 10_000.0) (fun x -> order := x :: !order) 3;
  Engine.call_at e (Time.seconds 1e-6) (fun x -> order := x :: !order) 1;
  Engine.call_at e (Time.seconds 5_000.0) (fun x -> order := x :: !order) 2;
  Engine.run e;
  Alcotest.(check (list int)) "heap overflow ordered" [ 1; 2; 3 ] (List.rev !order);
  check_float "clock" 10_000.0 (Time.to_seconds (Engine.now e));
  (* After the far-future drain the wheel re-syncs: near events still work. *)
  Engine.call_after e (Time.us 5.0) (fun x -> order := x :: !order) 4;
  Engine.run e;
  Alcotest.(check int) "post-overflow event fired" 4 (List.hd !order)

let test_engine_pending_excludes_cancelled () =
  let e = Engine.create () in
  let hs =
    List.init 10 (fun i ->
        Engine.schedule_at e (Time.seconds (float_of_int (i + 1))) (fun () -> ()))
  in
  Alcotest.(check int) "all pending" 10 (Engine.pending e);
  List.iteri (fun i h -> if i < 4 then Engine.cancel h) hs;
  Alcotest.(check int) "cancelled excluded" 6 (Engine.pending e);
  (* Cancelling past the half-way point triggers the lazy purge and the
     pool reflects it. *)
  List.iteri (fun i h -> if i < 6 then Engine.cancel h) hs;
  Alcotest.(check int) "after purge" 4 (Engine.pending e);
  Alcotest.(check int) "tombstones swept from pool" 4
    (Engine.pool_stats e).Engine.queued;
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let test_channel_latency_and_bandwidth () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let ch =
    Channel.create e ~latency:(Time.ms 1.0) ~bytes_per_sec:1000.0
      ~deliver:(fun msg -> arrivals := (msg, Time.to_seconds (Engine.now e)) :: !arrivals)
      ()
  in
  (* 100 bytes at 1000 B/s = 100 ms transfer + 1 ms latency. *)
  Channel.send ch ~bytes:100 "m1";
  Engine.run e;
  (match !arrivals with
  | [ ("m1", t) ] -> check_float "arrival" 0.101 t
  | _ -> Alcotest.fail "expected one delivery")

let test_channel_fifo_serialization () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let ch =
    Channel.create e ~latency:Time.zero ~bytes_per_sec:1000.0
      ~deliver:(fun msg -> arrivals := (msg, Time.to_seconds (Engine.now e)) :: !arrivals)
      ()
  in
  Channel.send ch ~bytes:100 "a";
  Channel.send ch ~bytes:100 "b";
  Engine.run e;
  (match List.rev !arrivals with
  | [ ("a", ta); ("b", tb) ] ->
    check_float "first" 0.1 ta;
    check_float "second queued behind first" 0.2 tb
  | _ -> Alcotest.fail "expected two deliveries");
  Alcotest.(check int) "bytes counted" 200 (Channel.bytes_sent ch);
  Alcotest.(check int) "messages counted" 2 (Channel.messages_sent ch)

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

let test_recorder_filter () =
  let e = Engine.create () in
  let r = Recorder.create e in
  ignore
    (Engine.schedule_at e (Time.seconds 1.0) (fun () ->
         Recorder.record r ~actor:"mb1" ~kind:"pkt" ~detail:"x"));
  ignore
    (Engine.schedule_at e (Time.seconds 2.0) (fun () ->
         Recorder.record r ~actor:"mb2" ~kind:"pkt" ~detail:"y"));
  ignore
    (Engine.schedule_at e (Time.seconds 3.0) (fun () ->
         Recorder.record r ~actor:"mb1" ~kind:"get-start" ~detail:"z"));
  Engine.run e;
  Alcotest.(check int) "all" 3 (List.length (Recorder.entries r));
  Alcotest.(check int) "by actor" 2 (List.length (Recorder.filter ~actor:"mb1" r));
  Alcotest.(check int) "by kind" 2 (Recorder.count ~kind:"pkt" r);
  Alcotest.(check int) "by window" 1
    (List.length (Recorder.filter ~since:(Time.seconds 1.5) ~until:(Time.seconds 2.5) r))

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let test_telemetry_registry () =
  let tel = Telemetry.create () in
  let c = Telemetry.counter tel "c" in
  Telemetry.incr c;
  Telemetry.add c 4;
  Alcotest.(check int) "counter" 5 (Telemetry.counter_value c);
  Alcotest.(check bool) "same handle on re-request" true (Telemetry.counter tel "c" == c);
  let g = Telemetry.gauge tel "g" in
  Telemetry.set_gauge g 7;
  Telemetry.set_gauge g 3;
  Alcotest.(check int) "gauge value" 3 (Telemetry.gauge_value g);
  Alcotest.(check int) "gauge peak" 7 (Telemetry.gauge_peak g);
  (match Telemetry.gauge tel "c" with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ());
  (* Null sinks accept writes and never surface anywhere. *)
  Telemetry.incr Telemetry.null_counter;
  Telemetry.set_gauge Telemetry.null_gauge 42;
  Telemetry.observe Telemetry.null_histogram 1.0;
  let h = Telemetry.histogram tel "lat" in
  Telemetry.observe h 2e-6;
  Telemetry.observe h 5e-3;
  Alcotest.(check int) "hist count" 2 (Telemetry.hist_count h);
  check_float "hist sum" (2e-6 +. 5e-3) (Telemetry.hist_sum h);
  check_float "hist max" 5e-3 (Telemetry.hist_max h)

let test_telemetry_snapshot_diff () =
  let open Openmb_wire in
  let tel = Telemetry.create () in
  let c = Telemetry.counter tel "ops" in
  let h = Telemetry.histogram tel "lat" in
  Telemetry.incr c;
  Telemetry.observe h 1e-6;
  let before = Telemetry.snapshot tel in
  Telemetry.add c 9;
  Telemetry.observe h 1e-3;
  let d = Telemetry.diff ~before ~after:(Telemetry.snapshot tel) in
  let j = Json.of_string (Telemetry.snapshot_to_json d) in
  Alcotest.(check int) "counter delta" 9
    (Json.get_int (Json.member "ops" (Json.member "counters" j)));
  Alcotest.(check int) "hist delta count" 1
    (Json.get_int (Json.member "count" (Json.member "lat" (Json.member "histograms" j))))

(* The same rank rule the histogram uses: the ceil(q*n)-th smallest. *)
let true_quantile samples q =
  let arr = Array.of_list (List.sort compare samples) in
  let n = Array.length arr in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let rank = if rank < 1 then 1 else if rank > n then n else rank in
  arr.(rank - 1)

(* Buckets are factor-of-two wide, so the reported quantile (the
   containing bucket's upper bound) is sandwiched by the true one:
   at least it (minus 1ns truncation), less than twice it (plus
   slack). *)
let prop_hist_quantile_bounds =
  QCheck2.Test.make ~name:"histogram quantile within its bucket bounds" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (float_range 1e-9 10.0))
        (float_range 0.0 1.0))
    (fun (samples, q) ->
      let tel = Telemetry.create () in
      let h = Telemetry.histogram tel "lat" in
      List.iter (Telemetry.observe h) samples;
      let v = Telemetry.quantile h q in
      let t = true_quantile samples q in
      v >= t -. 2e-9 && v <= (2.0 *. t) +. 4e-9)

let prop_hist_quantile_monotone =
  QCheck2.Test.make ~name:"histogram quantile monotone in q" ~count:300
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 100) (float_range 0.0 5.0))
        (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (samples, qa, qb) ->
      let q1 = Float.min qa qb and q2 = Float.max qa qb in
      let tel = Telemetry.create () in
      let h = Telemetry.histogram tel "lat" in
      List.iter (Telemetry.observe h) samples;
      Telemetry.quantile h q1 <= Telemetry.quantile h q2)

let prop_hist_bucket_monotone =
  (* A larger sample never lands in a lower bucket: the single-sample
     quantile (its bucket's upper bound) is monotone in the sample. *)
  QCheck2.Test.make ~name:"histogram buckets monotone in value" ~count:300
    QCheck2.Gen.(pair (float_range 0.0 10.0) (float_range 0.0 10.0))
    (fun (a, b) ->
      let v1 = Float.min a b and v2 = Float.max a b in
      let one v =
        let tel = Telemetry.create () in
        let h = Telemetry.histogram tel "x" in
        Telemetry.observe h v;
        Telemetry.quantile h 1.0
      in
      one v1 <= one v2)

(* ------------------------------------------------------------------ *)
(* Registry merge (sharded telemetry aggregation)                      *)
(* ------------------------------------------------------------------ *)

let test_registry_merge () =
  let mk f =
    let tel = Telemetry.create () in
    f tel;
    Telemetry.snapshot tel
  in
  let a =
    mk (fun tel ->
        Telemetry.add (Telemetry.counter tel "ops") 7;
        Telemetry.set_gauge (Telemetry.gauge tel "depth") 9;
        Telemetry.set_gauge (Telemetry.gauge tel "depth") 2;
        Telemetry.observe (Telemetry.histogram tel "lat") 1.0;
        Telemetry.add (Telemetry.counter tel "only_a") 3)
  in
  let b =
    mk (fun tel ->
        Telemetry.add (Telemetry.counter tel "ops") 5;
        Telemetry.set_gauge (Telemetry.gauge tel "depth") 4;
        Telemetry.observe (Telemetry.histogram tel "lat") 4.0;
        Telemetry.observe (Telemetry.histogram tel "lat") 2.0)
  in
  let m = Telemetry.Registry.merge a b in
  Alcotest.(check (option int)) "counters sum" (Some 12) (Telemetry.snap_counter m "ops");
  Alcotest.(check (option int)) "disjoint names survive" (Some 3)
    (Telemetry.snap_counter m "only_a");
  Alcotest.(check (option (pair int int)))
    "gauge: last writer's value, max peak" (Some (4, 9))
    (Telemetry.snap_gauge m "depth");
  (match Telemetry.snap_hist m "lat" with
  | Some (count, sum, mx) ->
    Alcotest.(check int) "hist count adds" 3 count;
    Alcotest.(check (float 1e-9)) "hist sum adds" 7.0 sum;
    Alcotest.(check (float 1e-9)) "hist max" 4.0 mx
  | None -> Alcotest.fail "merged histogram missing");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Telemetry.merge: \"x\" is a counter on one side and a histogram on the other")
    (fun () ->
      ignore
        (Telemetry.Registry.merge
           (mk (fun tel -> Telemetry.incr (Telemetry.counter tel "x")))
           (mk (fun tel -> Telemetry.observe (Telemetry.histogram tel "x") 1.0))))

(* Random registry programs over a small shared name pool.  Histogram
   observations are integer-valued so float sums stay exact and merge
   associativity is checkable with structural equality. *)
type tel_op = Cadd of int * int | Gset of int * int | Hobs of int * int

let gen_tel_ops ~gauges =
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (oneof
         ([
            map2 (fun i n -> Cadd (i, n)) (int_bound 2) (int_range 0 1_000);
            map2 (fun i v -> Hobs (i, v)) (int_bound 1) (int_range 0 1_000);
          ]
         @ if gauges then [ map2 (fun i v -> Gset (i, v)) (int_bound 1) (int_range 0 500) ]
           else [])))

let snap_of_ops ops =
  let tel = Telemetry.create () in
  List.iter
    (function
      | Cadd (i, n) -> Telemetry.add (Telemetry.counter tel (Printf.sprintf "c%d" i)) n
      | Gset (i, v) -> Telemetry.set_gauge (Telemetry.gauge tel (Printf.sprintf "g%d" i)) v
      | Hobs (i, v) ->
        Telemetry.observe
          (Telemetry.histogram tel (Printf.sprintf "h%d" i))
          (float_of_int v))
    ops;
  Telemetry.snapshot tel

let prop_merge_associative =
  QCheck2.Test.make ~name:"registry merge is associative" ~count:300
    QCheck2.Gen.(
      triple (gen_tel_ops ~gauges:true) (gen_tel_ops ~gauges:true)
        (gen_tel_ops ~gauges:true))
    (fun (xa, xb, xc) ->
      let a = snap_of_ops xa and b = snap_of_ops xb and c = snap_of_ops xc in
      Telemetry.Registry.merge (Telemetry.Registry.merge a b) c
      = Telemetry.Registry.merge a (Telemetry.Registry.merge b c))

let prop_merge_commutative =
  (* Gauges are last-writer by design, so commutativity is only claimed
     for counter/histogram registries — the shard-aggregation case. *)
  QCheck2.Test.make ~name:"registry merge commutes on counters and histograms"
    ~count:300
    QCheck2.Gen.(pair (gen_tel_ops ~gauges:false) (gen_tel_ops ~gauges:false))
    (fun (xa, xb) ->
      let a = snap_of_ops xa and b = snap_of_ops xb in
      Telemetry.Registry.merge a b = Telemetry.Registry.merge b a)

let prop_merge_quantile_sandwich =
  (* A merged histogram's quantile can't escape the envelope of the
     per-shard quantiles: pooling samples interpolates between the
     parts. *)
  QCheck2.Test.make ~name:"merged quantile sandwiched by per-shard quantiles"
    ~count:300
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 100) (int_range 0 100_000))
        (list_size (int_range 1 100) (int_range 0 100_000))
        (float_range 0.0 1.0))
    (fun (va, vb, q) ->
      let snap vs = snap_of_ops (List.map (fun v -> Hobs (0, v)) vs) in
      let a = snap va and b = snap vb in
      let m = Telemetry.Registry.merge a b in
      let quant s =
        match Telemetry.snap_hist_quantile s "h0" q with
        | Some v -> v
        | None -> QCheck2.Test.fail_reportf "histogram h0 missing from snapshot"
      in
      let qa = quant a and qb = quant b and qm = quant m in
      Float.min qa qb <= qm && qm <= Float.max qa qb)

let test_trace_ring_overwrite () =
  let tr = Telemetry.Trace.create ~capacity:16 () in
  let t i = Time.seconds (float_of_int i) in
  let spans =
    List.init 40 (fun i ->
        Telemetry.Trace.span_begin tr ~now:(t i) ~actor:"a" ~name:"s" ~op:i ())
  in
  Alcotest.(check int) "total" 40 (Telemetry.Trace.total tr);
  Alcotest.(check int) "length capped" 16 (Telemetry.Trace.length tr);
  Alcotest.(check int) "overwritten" 24 (Telemetry.Trace.overwritten tr);
  (* Ending an overwritten span is a no-op: its bogus end time must not
     land on whichever newer row reused the slot. *)
  Telemetry.Trace.span_end tr ~now:(Time.seconds 999.0) (List.hd spans);
  let bogus =
    Telemetry.Trace.fold tr ~init:false
      ~f:(fun acc ~actor:_ ~name:_ ~op:_ ~a0:_ ~a1:_ ~t0:_ ~t1 ~detail:_ ->
        acc || Time.to_seconds t1 = 999.0)
  in
  Alcotest.(check bool) "overwritten span_end is a no-op" false bogus;
  (* The live rows are exactly the newest [capacity], oldest first. *)
  let ops =
    List.rev
      (Telemetry.Trace.fold tr ~init:[]
         ~f:(fun acc ~actor:_ ~name:_ ~op ~a0:_ ~a1:_ ~t0:_ ~t1:_ ~detail:_ ->
           op :: acc))
  in
  Alcotest.(check (list int)) "newest rows live" (List.init 16 (fun i -> 24 + i)) ops;
  (* A live span still closes normally. *)
  Telemetry.Trace.span_end tr ~now:(Time.seconds 100.0) (List.nth spans 39);
  let closed =
    Telemetry.Trace.fold tr ~init:0
      ~f:(fun acc ~actor:_ ~name:_ ~op:_ ~a0:_ ~a1:_ ~t0:_ ~t1 ~detail:_ ->
        if Time.to_seconds t1 >= 0.0 then acc + 1 else acc)
  in
  Alcotest.(check int) "one closed" 1 closed

let test_trace_chrome_export () =
  let open Openmb_wire in
  let tel = Telemetry.create () in
  let s =
    Telemetry.span_begin tel ~now:(Time.ms 1.0) ~actor:"controller" ~name:"move"
      ~op:7 ~a0:3 ()
  in
  Telemetry.span_end tel ~now:(Time.ms 2.0) s;
  Telemetry.instant tel ~now:(Time.ms 3.0) ~actor:"mb" ~name:"tick" ();
  let file = Filename.temp_file "openmb_trace" ".json" in
  Out_channel.with_open_text file (fun oc -> Telemetry.export_chrome tel oc);
  let json = Json.of_string (In_channel.with_open_text file In_channel.input_all) in
  Sys.remove file;
  match Json.member "traceEvents" json with
  | Json.List evs ->
    (* Two actor-name metadata rows + one complete + one instant. *)
    Alcotest.(check int) "event count" 4 (List.length evs);
    let complete =
      List.find
        (fun e -> match Json.member "ph" e with Json.String "X" -> true | _ -> false)
        evs
    in
    Alcotest.(check int) "op_id arg" 7
      (Json.get_int (Json.member "op_id" (Json.member "args" complete)));
    check_float "duration us" 1000.0
      (match Json.member "dur" complete with
      | Json.Float f -> f
      | Json.Int i -> float_of_int i
      | _ -> nan)
  | _ -> Alcotest.fail "no traceEvents list"

let test_heap_exn () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "peek_exn empty"
    (Invalid_argument "Heap.peek_exn: empty heap") (fun () ->
      ignore (Heap.peek_exn h));
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h));
  List.iter (fun x -> Heap.push h x) [ 3; 1; 2 ];
  Alcotest.(check int) "peek_exn" 1 (Heap.peek_exn h);
  Alcotest.(check int) "pop_exn 1" 1 (Heap.pop_exn h);
  Alcotest.(check int) "pop_exn 2" 2 (Heap.pop_exn h);
  Alcotest.(check int) "pop_exn 3" 3 (Heap.pop_exn h);
  Alcotest.(check bool) "empty again" true (Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Impairment profiles (Faults)                                        *)
(* ------------------------------------------------------------------ *)

(* A fresh injector applying [link_profile] to every link, nothing
   else.  [deliveries] takes [~now] explicitly, so properties can walk
   virtual time without stepping the engine. *)
let faults_with link_profile =
  let engine = Engine.create () in
  let plan = { (Faults.clean_plan ~seed:1) with Faults.link = link_profile } in
  let t = Faults.create engine plan in
  (t, Faults.link t ~name:"wire" ())

(* Token-bucket conservation: every send is either delivered exactly
   once with a queueing delay in [0, max_queue] or tail-dropped, the
   two outcomes partition the sends, and the shaper is the only loss
   cause in play. *)
let prop_shaper_conservation =
  QCheck2.Test.make ~name:"token bucket conserves and bounds queueing delay"
    ~count:150
    QCheck2.Gen.(
      quad
        (float_range 100.0 100_000.0)
        (int_range 64 10_000)
        (float_range 0.001 0.5)
        (list_size (int_range 1 150) (pair (float_range 0.0 5.0) (int_range 1 4096))))
    (fun (rate, burst, maxq, sends) ->
      let sends = List.sort compare sends in
      let prof =
        {
          Faults.clean_dir with
          rate =
            Some
              {
                Faults.rate_bytes_per_sec = rate;
                burst_bytes = burst;
                max_queue = Time.seconds maxq;
              };
        }
      in
      let t, l = faults_with (Faults.symmetric prof) in
      let delivered = ref 0 in
      let ok =
        List.for_all
          (fun (at, bytes) ->
            match Faults.deliveries l ~now:(Time.seconds at) ~bytes with
            | [] -> true
            | [ d ] ->
              incr delivered;
              Time.compare d Time.zero >= 0 && Time.to_seconds d <= maxq +. 1e-9
            | _ -> false)
          sends
      in
      ok
      && !delivered + Faults.shaper_dropped t = List.length sends
      && Faults.lost t = Faults.shaper_dropped t
      && Faults.dropped t = 0)

let gen_jitter_spec =
  let open QCheck2.Gen in
  oneof
    [
      map (fun c -> Dist.Constant c) (float_range (-0.5) 2.0);
      map2
        (fun lo w -> Dist.Uniform_spec { lo; hi = lo +. w })
        (float_range 0.0 1.0) (float_range 0.0 2.0);
      map (fun mean -> Dist.Exponential_spec { mean }) (float_range 0.01 1.0);
      map2
        (fun mean stddev -> Dist.Normal_spec { mean; stddev })
        (float_range 0.0 1.0) (float_range 0.01 0.5);
      map2
        (fun mu sigma -> Dist.Lognormal_spec { mu; sigma })
        (float_range (-1.0) 0.5) (float_range 0.05 0.8);
      map3
        (fun shape lo w -> Dist.Pareto_spec { shape; lo; hi = lo +. w })
        (float_range 1.1 3.0) (float_range 0.01 1.0) (float_range 0.0 5.0);
    ]

(* Every jitter delay falls inside the spec's advertised support,
   clamped at zero (jitter only ever delays). *)
let prop_jitter_within_support =
  QCheck2.Test.make ~name:"jitter delays stay within Dist.support" ~count:200
    QCheck2.Gen.(
      pair gen_jitter_spec (list_size (int_range 1 100) (float_range 0.0 5.0)))
    (fun (spec, times) ->
      let lo, hi = Dist.support spec in
      let lo = Float.max 0.0 lo and hi = Float.max 0.0 hi in
      let prof = { Faults.clean_dir with jitter = Some spec } in
      let _t, l = faults_with (Faults.symmetric prof) in
      List.for_all
        (fun at ->
          match Faults.deliveries l ~now:(Time.seconds at) ~bytes:100 with
          | [ d ] ->
            let d = Time.to_seconds d in
            d >= lo -. 1e-9 && (hi = infinity || d <= hi +. 1e-9)
          | _ -> false)
        times)

(* Blackhole windows lose exactly the in-window sends — no bleed into
   surrounding traffic, and each loss is attributed to the blackhole
   counter. *)
let prop_blackhole_exact =
  QCheck2.Test.make ~name:"blackhole windows lose exactly the in-window sends"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 3) (pair (float_range 0.0 8.0) (float_range 0.0 2.0)))
        (list_size (int_range 1 150) (float_range 0.0 10.0)))
    (fun (windows, times) ->
      let bhs =
        List.map
          (fun (f, w) ->
            { Faults.bh_from = Time.seconds f; bh_until = Time.seconds (f +. w) })
          windows
      in
      let prof = { Faults.clean_dir with blackholes = bhs } in
      let t, l = faults_with (Faults.symmetric prof) in
      let in_window at =
        List.exists
          (fun b ->
            Time.compare at b.Faults.bh_from >= 0 && Time.compare at b.bh_until < 0)
          bhs
      in
      let expected_lost = ref 0 in
      let ok =
        List.for_all
          (fun s ->
            let at = Time.seconds s in
            let lost = Faults.deliveries l ~now:at ~bytes:64 = [] in
            if in_window at then begin
              incr expected_lost;
              lost
            end
            else not lost)
          times
      in
      ok && Faults.blackholed t = !expected_lost && Faults.lost t = !expected_lost)

(* Channel-level determinism: the same impairment plan over the same
   traffic makes bit-identical fault decisions — the property the soak's
   printed-plan replay rests on. *)
let prop_impairment_rerun_identical =
  QCheck2.Test.make ~name:"same plan, same traffic, same fault decisions" ~count:60
    QCheck2.Gen.(pair small_nat (int_range 10 120))
    (fun (seed, n) ->
      let plan =
        Faults.random_impairment_plan ~seed ~mbs:[ "m" ] ~horizon:(Time.seconds 10.0)
      in
      let run () =
        let engine = Engine.create () in
        let t = Faults.create engine plan in
        let fwd = Faults.link t ~name:"wire" () in
        let rev = Faults.link t ~dir:`Rev ~name:"wire" () in
        let g = Prng.create ~seed:(seed lxor 0x7E57) in
        let out = ref [] in
        for _ = 1 to n do
          let at = Time.seconds (Prng.float g 10.0) in
          let bytes = 1 + Prng.int g 4096 in
          let dir = if Prng.chance g 0.5 then fwd else rev in
          out := Faults.deliveries dir ~now:at ~bytes :: !out
        done;
        ( !out,
          Faults.dropped t,
          Faults.duplicated t,
          Faults.delayed t,
          Faults.corrupted t,
          Faults.throttled t,
          Faults.shaper_dropped t,
          Faults.blackholed t )
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Telemetry remove/reset                                              *)
(* ------------------------------------------------------------------ *)

let test_telemetry_remove_reset () =
  let tel = Telemetry.create () in
  let c = Telemetry.counter tel "x" in
  Telemetry.add c 5;
  Telemetry.reset_counter c;
  Alcotest.(check int) "counter reset" 0 (Telemetry.counter_value c);
  Telemetry.incr c;
  Alcotest.(check int) "counts again after reset" 1 (Telemetry.counter_value c);
  let g = Telemetry.gauge tel "y" in
  Telemetry.set_gauge g 7;
  Telemetry.reset_gauge g;
  Alcotest.(check int) "gauge reset" 0 (Telemetry.gauge_value g);
  Alcotest.(check bool) "remove existing" true (Telemetry.remove tel "x");
  Alcotest.(check bool) "remove missing" false (Telemetry.remove tel "x");
  (* The detached handle becomes a sink: writes must not resurrect the
     removed row. *)
  Telemetry.add c 100;
  Alcotest.(check (option int))
    "removed stays gone" None
    (Telemetry.snap_counter (Telemetry.snapshot tel) "x");
  let c' = Telemetry.counter tel "x" in
  Alcotest.(check int) "recreated starts fresh" 0 (Telemetry.counter_value c')

(* Random registry programs extended with remove/reset: merge must stay
   associative — a reset metric is just a smaller value, and a removed
   one is absent from the snapshot on every side identically. *)
type tel_op_rr = Base of tel_op | Crst of int | Grst of int | Rm of string

let gen_tel_ops_rr =
  QCheck2.Gen.(
    list_size (int_range 0 50)
      (oneof
         [
           map2 (fun i n -> Base (Cadd (i, n))) (int_bound 2) (int_range 0 1_000);
           map2 (fun i v -> Base (Gset (i, v))) (int_bound 1) (int_range 0 500);
           map2 (fun i v -> Base (Hobs (i, v))) (int_bound 1) (int_range 0 1_000);
           map (fun i -> Crst i) (int_bound 2);
           map (fun i -> Grst i) (int_bound 1);
           map2
             (fun k i -> Rm (Printf.sprintf "%s%d" k i))
             (oneofl [ "c"; "g"; "h" ])
             (int_bound 2);
         ]))

let snap_of_ops_rr ops =
  let tel = Telemetry.create () in
  List.iter
    (function
      | Base (Cadd (i, n)) ->
        Telemetry.add (Telemetry.counter tel (Printf.sprintf "c%d" i)) n
      | Base (Gset (i, v)) ->
        Telemetry.set_gauge (Telemetry.gauge tel (Printf.sprintf "g%d" i)) v
      | Base (Hobs (i, v)) ->
        Telemetry.observe
          (Telemetry.histogram tel (Printf.sprintf "h%d" i))
          (float_of_int v)
      | Crst i -> Telemetry.reset_counter (Telemetry.counter tel (Printf.sprintf "c%d" i))
      | Grst i -> Telemetry.reset_gauge (Telemetry.gauge tel (Printf.sprintf "g%d" i))
      | Rm name -> ignore (Telemetry.remove tel name))
    ops;
  Telemetry.snapshot tel

let prop_merge_associative_after_reset =
  QCheck2.Test.make ~name:"registry merge stays associative under remove/reset"
    ~count:300
    QCheck2.Gen.(triple gen_tel_ops_rr gen_tel_ops_rr gen_tel_ops_rr)
    (fun (xa, xb, xc) ->
      let a = snap_of_ops_rr xa and b = snap_of_ops_rr xb and c = snap_of_ops_rr xc in
      Telemetry.Registry.merge (Telemetry.Registry.merge a b) c
      = Telemetry.Registry.merge a (Telemetry.Registry.merge b c))

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)
(* ------------------------------------------------------------------ *)

(* Drive a scraper for exactly [n] samples: a sentinel event pins the
   horizon (the tick auto-stops when it would be the only pending
   event) and [~until] bounds the last tick to (n-1) periods. *)
let scrape_values ?(cap = 16) ~every values n =
  let engine = Engine.create () in
  let ts = Timeseries.create ~cap engine in
  let i = ref 0 in
  Timeseries.add ts ~name:"v"
    (Timeseries.Poll
       (fun () ->
         let v = values.(!i) in
         incr i;
         v));
  (* Accumulate the horizon with the same repeated addition the tick
     uses, so the (n-1)-th tick lands exactly on [until] even where
     n * every is not float-exact. *)
  let horizon = ref Time.zero in
  for _ = 2 to n do
    horizon := Time.(!horizon + every)
  done;
  let horizon = !horizon in
  ignore (Engine.schedule_at engine horizon (fun () -> ()));
  Timeseries.start ts ~until:horizon ~every;
  Engine.run engine;
  (engine, ts)

let test_timeseries_basics () =
  let values = Array.init 40 float_of_int in
  let _, ts = scrape_values ~cap:16 ~every:(Time.seconds 1.0) values 40 in
  Alcotest.(check int) "total" 40 (Timeseries.total ts);
  Alcotest.(check bool) "auto-stopped" false (Timeseries.running ts);
  Alcotest.(check int) "retained" 16 (Timeseries.retained ts);
  let si = Timeseries.index ts "v" in
  check_float "raw keeps absolute indexing" 24.0 (Timeseries.raw_get ts ~series:si 24);
  check_float "newest sample" 39.0 (Timeseries.raw_get ts ~series:si 39);
  Alcotest.check_raises "evicted sample rejected"
    (Invalid_argument "Timeseries.raw_get: index outside retained window")
    (fun () -> ignore (Timeseries.raw_get ts ~series:si 23));
  check_float "sample timestamps" 39.0 (Timeseries.time_of_sample ts 39);
  Alcotest.(check int) "10x buckets" 4 (Timeseries.completed_buckets ts ~level:0);
  let mn, mx, mean, last = Timeseries.bucket_get ts ~series:si ~level:0 3 in
  check_float "bucket min" 30.0 mn;
  check_float "bucket max" 39.0 mx;
  check_float "bucket mean" 34.5 mean;
  check_float "bucket last" 39.0 last

let test_timeseries_merge_json () =
  let n = 30 in
  let mk c =
    let values = Array.make n c in
    let _, ts = scrape_values ~cap:8 ~every:(Time.ms 1.0) values n in
    Timeseries.snapshot ts
  in
  let merged = Timeseries.merge_all [ mk 1.0; mk 2.0 ] in
  let json = Timeseries.to_json merged in
  (* Well-formed JSON carrying the summed series. *)
  (match Openmb_wire.Json.of_string json with
  | Openmb_wire.Json.Assoc _ -> ()
  | _ -> Alcotest.fail "merged snapshot JSON is not an object"
  | exception Openmb_wire.Json.Parse_error _ ->
    Alcotest.fail "merged snapshot JSON failed to parse");
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "series present" true (contains ~sub:"\"v\"" json);
  (* Sum mode: 1.0 + 2.0 everywhere in the overlapping window. *)
  Alcotest.(check bool) "summed values" true (contains ~sub:"3" json)

(* Every retained completed bucket at every rollup level aggregates
   exactly its absolute sample range [f*b, f*(b+1)) — wrap or no wrap —
   and the bounds sandwich both the bucket mean and the raw samples.
   Integer-valued floats keep the reference sums exact. *)
let prop_rollup_buckets_exact =
  QCheck2.Test.make ~name:"rollup buckets aggregate absolute sample ranges exactly"
    ~count:100
    QCheck2.Gen.(
      triple (int_range 1 400) (int_range 16 32)
        (array_size (return 400) (map float_of_int (int_range (-1000) 1000))))
    (fun (n, cap, values) ->
      let _, ts = scrape_values ~cap ~every:(Time.ms 1.0) values n in
      if Timeseries.total ts <> n then
        QCheck2.Test.fail_reportf "sampled %d of %d" (Timeseries.total ts) n;
      let si = Timeseries.index ts "v" in
      for k = max 0 (n - cap) to n - 1 do
        if Timeseries.raw_get ts ~series:si k <> values.(k) then
          QCheck2.Test.fail_reportf "raw[%d] drifted after wrap" k
      done;
      for l = 0 to Timeseries.levels - 1 do
        let f = Timeseries.level_factor l in
        let nb = Timeseries.completed_buckets ts ~level:l in
        if nb <> n / f then
          QCheck2.Test.fail_reportf "level %d: %d buckets from %d samples" l nb n;
        for b = nb - Timeseries.retained_buckets ts ~level:l to nb - 1 do
          let mn, mx, mean, last = Timeseries.bucket_get ts ~series:si ~level:l b in
          let emn = ref infinity and emx = ref neg_infinity and esum = ref 0.0 in
          for k = f * b to (f * (b + 1)) - 1 do
            let v = values.(k) in
            if v < !emn then emn := v;
            if v > !emx then emx := v;
            esum := !esum +. v
          done;
          if mn <> !emn || mx <> !emx then
            QCheck2.Test.fail_reportf "level %d bucket %d bounds mismatch" l b;
          if last <> values.((f * (b + 1)) - 1) then
            QCheck2.Test.fail_reportf "level %d bucket %d last mismatch" l b;
          if Float.abs (mean -. (!esum /. float_of_int f)) > 1e-9 then
            QCheck2.Test.fail_reportf "level %d bucket %d mean mismatch" l b;
          if not (mn <= mean && mean <= mx) then
            QCheck2.Test.fail_reportf "level %d bucket %d mean escapes [min,max]" l b;
          for k = f * b to (f * (b + 1)) - 1 do
            if k >= n - cap then begin
              let v = Timeseries.raw_get ts ~series:si k in
              if not (mn <= v && v <= mx) then
                QCheck2.Test.fail_reportf "level %d bucket %d does not sandwich raw[%d]"
                  l b k
            end
          done
        done
      done;
      true)

(* ------------------------------------------------------------------ *)
(* SLO burn rates                                                      *)
(* ------------------------------------------------------------------ *)

(* 20 good samples then sustained badness: with a 5-sample window and a
   10% budget the first bad sample burns at 2x and trips the objective
   exactly once (edge-triggered). *)
let test_slo_breach () =
  let engine = Engine.create () in
  let ts = Timeseries.create ~cap:64 engine in
  let i = ref 0 in
  Timeseries.add ts ~name:"lat"
    (Timeseries.Poll
       (fun () ->
         incr i;
         if !i <= 20 then 0.001 else 0.010));
  let slo = Slo.create ts in
  Slo.add slo
    (Slo.objective ~budget:0.1 ~windows:[ (5, 1.0) ] ~name:"lat-slo" ~series:"lat"
       Slo.Le 0.002);
  Slo.attach slo;
  let seen = ref [] in
  Slo.set_on_breach slo (fun br -> seen := br.Slo.br_objective :: !seen);
  let horizon = Time.seconds 39.0 in
  ignore (Engine.schedule_at engine horizon (fun () -> ()));
  Timeseries.start ts ~until:horizon ~every:(Time.seconds 1.0);
  Engine.run engine;
  Alcotest.(check int) "edge-triggered once" 1 (Slo.breach_count slo);
  Alcotest.(check (list string)) "hook fired" [ "lat-slo" ] !seen;
  Alcotest.(check bool) "still in breach" true (Slo.in_breach slo "lat-slo");
  Alcotest.(check bool) "burn rate >= threshold" true (Slo.burn_rate slo "lat-slo" >= 1.0);
  match Slo.breaches slo with
  | [ br ] ->
    check_float "offending value recorded" 0.010 br.Slo.br_value;
    check_float "virtual timestamp" 20.0 br.Slo.br_at
  | _ -> Alcotest.fail "expected exactly one breach"

let test_slo_quiet () =
  let engine = Engine.create () in
  let ts = Timeseries.create ~cap:64 engine in
  Timeseries.add ts ~name:"lat" (Timeseries.Poll (fun () -> 0.001));
  let slo = Slo.create ts in
  Slo.add slo (Slo.objective ~name:"lat-slo" ~series:"lat" Slo.Le 0.002);
  Slo.attach slo;
  let horizon = Time.seconds 50.0 in
  ignore (Engine.schedule_at engine horizon (fun () -> ()));
  Timeseries.start ts ~until:horizon ~every:(Time.seconds 1.0);
  Engine.run engine;
  Alcotest.(check int) "no breach on healthy series" 0 (Slo.breach_count slo);
  Alcotest.(check bool) "not in breach" false (Slo.in_breach slo "lat-slo")

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flight_recorder_bundle () =
  let tel = Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  Telemetry.add (Telemetry.counter tel "pkts") 3;
  let tr = Telemetry.trace tel in
  let s = Telemetry.Trace.span_begin tr ~now:Time.zero ~actor:"mb" ~name:"op" ~op:1 () in
  Telemetry.Trace.span_end tr ~now:(Time.ms 1.0) s;
  let ts = Timeseries.create ~cap:64 engine in
  let i = ref 0 in
  Timeseries.add ts ~name:"lat"
    (Timeseries.Poll
       (fun () ->
         incr i;
         if !i <= 10 then 0.001 else 0.010));
  let slo = Slo.create ts in
  Slo.add slo
    (Slo.objective ~budget:0.1 ~windows:[ (5, 1.0) ] ~name:"lat-slo" ~series:"lat"
       Slo.Le 0.002);
  Slo.attach slo;
  let fr =
    Flight_recorder.create ~telemetry:tel ~timeseries:ts ~slo ~fault_plan:"plan{demo}" ()
  in
  Flight_recorder.arm fr ~engine;
  let horizon = Time.seconds 30.0 in
  ignore (Engine.schedule_at engine horizon (fun () -> ()));
  Timeseries.start ts ~until:horizon ~every:(Time.seconds 1.0);
  Engine.run engine;
  Alcotest.(check int) "one bundle on first breach" 1 (Flight_recorder.dumps fr);
  let bundle =
    match Flight_recorder.last_bundle fr with
    | Some b -> b
    | None -> Alcotest.fail "no bundle captured"
  in
  (match Openmb_wire.Json.of_string bundle with
  | Openmb_wire.Json.Assoc fields ->
    List.iter
      (fun key ->
        if not (List.mem_assoc key fields) then
          Alcotest.failf "bundle missing %S section" key)
      [ "reason"; "at_s"; "fault_plan"; "breaches"; "series"; "registry"; "span_tail" ]
  | _ -> Alcotest.fail "bundle is not a JSON object"
  | exception Openmb_wire.Json.Parse_error _ ->
    Alcotest.fail "bundle failed to parse as JSON");
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "replayable plan embedded" true (contains ~sub:"plan{demo}" bundle);
  Alcotest.(check bool) "breached series window" true (contains ~sub:"\"lat\"" bundle);
  Alcotest.(check bool) "breach log" true (contains ~sub:"lat-slo" bundle);
  Alcotest.(check bool) "span tail" true (contains ~sub:"\"mb\"" bundle)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openmb_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "exn accessors" `Quick test_heap_exn;
        ]
        @ qcheck [ prop_heap_sorts ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "zipf popularity" `Quick test_dist_zipf_rank1_most_popular;
          Alcotest.test_case "empirical endpoints" `Quick test_dist_empirical_endpoints;
          Alcotest.test_case "bounded pareto bounds" `Quick test_dist_bounded_pareto_bounds;
          Alcotest.test_case "weighted index" `Quick test_dist_weighted_index;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile interpolation" `Quick
            test_stats_percentile_interpolation;
          Alcotest.test_case "fraction above" `Quick test_stats_fraction_above;
          Alcotest.test_case "cdf monotone" `Quick test_stats_cdf_monotone;
          Alcotest.test_case "histogram total" `Quick test_stats_histogram_total;
        ]
        @ qcheck [ prop_stats_mean_bounded ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "mixed-kind fifo" `Quick test_engine_call_fifo_with_closures;
          Alcotest.test_case "far-future overflow" `Quick test_engine_far_future_overflow;
          Alcotest.test_case "pending excludes cancelled" `Quick
            test_engine_pending_excludes_cancelled;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
        ]
        @ qcheck
            [
              prop_engine_time_order;
              prop_wheel_equiv;
              prop_wheel_equiv_coarse;
              prop_wheel_equiv_fine;
              prop_pool_invariants;
            ] );
      ( "channel",
        [
          Alcotest.test_case "latency and bandwidth" `Quick
            test_channel_latency_and_bandwidth;
          Alcotest.test_case "fifo serialization" `Quick test_channel_fifo_serialization;
        ] );
      ( "faults",
        qcheck
          [
            prop_shaper_conservation;
            prop_jitter_within_support;
            prop_blackhole_exact;
            prop_impairment_rerun_identical;
          ] );
      ("recorder", [ Alcotest.test_case "filter" `Quick test_recorder_filter ]);
      ( "telemetry",
        [
          Alcotest.test_case "registry" `Quick test_telemetry_registry;
          Alcotest.test_case "snapshot diff" `Quick test_telemetry_snapshot_diff;
          Alcotest.test_case "registry merge" `Quick test_registry_merge;
          Alcotest.test_case "ring overwrite" `Quick test_trace_ring_overwrite;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
          Alcotest.test_case "remove and reset" `Quick test_telemetry_remove_reset;
        ]
        @ qcheck
            [
              prop_hist_quantile_bounds;
              prop_hist_quantile_monotone;
              prop_hist_bucket_monotone;
              prop_merge_associative;
              prop_merge_commutative;
              prop_merge_quantile_sandwich;
              prop_merge_associative_after_reset;
            ] );
      ( "timeseries",
        [
          Alcotest.test_case "scrape, wrap, rollups" `Quick test_timeseries_basics;
          Alcotest.test_case "merge + json" `Quick test_timeseries_merge_json;
        ]
        @ qcheck [ prop_rollup_buckets_exact ] );
      ( "slo",
        [
          Alcotest.test_case "burn-rate breach" `Quick test_slo_breach;
          Alcotest.test_case "healthy series" `Quick test_slo_quiet;
        ] );
      ( "flight_recorder",
        [ Alcotest.test_case "breach bundle" `Quick test_flight_recorder_bundle ] );
    ]
