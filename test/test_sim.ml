(* Unit and property tests for the simulation substrate. *)

open Openmb_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (drain [])

let test_heap_fifo_ties () =
  (* Equal keys pop in insertion order. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let labels = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, l) ->
      labels := l :: !labels;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "fifo ties" [ "z"; "a"; "b"; "c" ] (List.rev !labels)

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h)

let test_heap_clear () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "size after clear" 0 (Heap.size h);
  Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* PRNG and distributions                                              *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:99 and b = Prng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:99 in
  let c = Prng.split a in
  (* Splitting then drawing from the parent must not change the
     child's stream. *)
  let expected = List.init 10 (fun _ -> Prng.bits64 (Prng.split (Prng.create ~seed:99))) in
  ignore expected;
  let child_first = Prng.bits64 c in
  let a2 = Prng.create ~seed:99 in
  let c2 = Prng.split a2 in
  ignore (Prng.bits64 a2);
  Alcotest.(check int64) "child unaffected by parent draws" child_first (Prng.bits64 c2)

let test_prng_bounds () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "int_in range" true (v >= -5 && v <= 5)
  done

let test_prng_float_mean () =
  let g = Prng.create ~seed:5 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float g 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_dist_exponential_mean () =
  let g = Prng.create ~seed:8 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential g ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_dist_zipf_rank1_most_popular () =
  let g = Prng.create ~seed:21 in
  let counts = Array.make 11 0 in
  for _ = 1 to 10000 do
    let r = Dist.zipf g ~n:10 ~s:1.2 in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 beats rank 10" true (counts.(1) > counts.(10) * 3);
  Alcotest.(check int) "rank 0 unused" 0 counts.(0)

let test_dist_empirical_endpoints () =
  let g = Prng.create ~seed:2 in
  let points = [| (1.0, 0.5); (10.0, 1.0) |] in
  for _ = 1 to 1000 do
    let v = Dist.empirical g ~points in
    Alcotest.(check bool) "within hull" true (v >= 0.0 && v <= 10.0)
  done

let test_dist_bounded_pareto_bounds () =
  let g = Prng.create ~seed:77 in
  for _ = 1 to 1000 do
    let v = Dist.bounded_pareto g ~shape:1.2 ~lo:2.0 ~hi:50.0 in
    Alcotest.(check bool) "in [lo,hi]" true (v >= 2.0 -. 1e-9 && v <= 50.0 +. 1e-9)
  done

let test_dist_weighted_index () =
  let g = Prng.create ~seed:6 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Dist.weighted_index g ~weights:[| 0.0; 1.0; 9.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(0);
  Alcotest.(check bool) "9:1 ratio" true (counts.(2) > counts.(1) * 5)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "total" 10.0 (Stats.total s);
  check_float "min" 1.0 (Stats.min_value s);
  check_float "max" 4.0 (Stats.max_value s);
  check_float "median" 2.5 (Stats.median s)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 0.0; 10.0 ];
  check_float "p25" 2.5 (Stats.percentile s 25.0);
  check_float "p100" 10.0 (Stats.percentile s 100.0);
  check_float "p0" 0.0 (Stats.percentile s 0.0)

let test_stats_fraction_above () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check_float "fraction above 90" 0.10 (Stats.fraction_above s 90.0);
  check_float "fraction above 0" 1.0 (Stats.fraction_above s 0.0)

let test_stats_cdf_monotone () =
  let s = Stats.create () in
  let g = Prng.create ~seed:4 in
  for _ = 1 to 500 do
    Stats.add s (Prng.float g 100.0)
  done;
  let cdf = Stats.cdf s ~points:20 in
  Alcotest.(check int) "points" 20 (List.length cdf);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone cdf);
  let _, last = List.nth cdf 19 in
  check_float "ends at 1" 1.0 last

let test_stats_histogram_total () =
  let s = Stats.create () in
  for i = 0 to 99 do
    Stats.add s (float_of_int i)
  done;
  let h = Stats.histogram s ~bins:10 in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples binned" 100 total

let prop_stats_mean_bounded =
  QCheck2.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let m = Stats.mean s in
      m >= Stats.min_value s -. 1e-6 && m <= Stats.max_value s +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  let log tag () = order := tag :: !order in
  ignore (Engine.schedule_at e (Time.seconds 2.0) (log "b"));
  ignore (Engine.schedule_at e (Time.seconds 1.0) (log "a"));
  ignore (Engine.schedule_at e (Time.seconds 3.0) (log "c"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order);
  check_float "clock at last event" 3.0 (Time.to_seconds (Engine.now e))

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore
      (Engine.schedule_at e (Time.seconds 1.0) (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e (Time.seconds 1.0) (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check bool) "is_cancelled" true (Engine.is_cancelled h)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick n () =
    incr count;
    if n > 0 then ignore (Engine.schedule_after e (Time.seconds 1.0) (tick (n - 1)))
  in
  ignore (Engine.schedule_after e Time.zero (tick 9));
  Engine.run e;
  Alcotest.(check int) "chain of 10" 10 !count;
  check_float "clock" 9.0 (Time.to_seconds (Engine.now e))

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e (Time.seconds (float_of_int i)) (fun () -> incr count))
  done;
  Engine.run ~until:(Time.seconds 5.5) e;
  Alcotest.(check int) "five fired" 5 !count;
  check_float "clock advanced to until" 5.5 (Time.to_seconds (Engine.now e));
  Engine.run e;
  Alcotest.(check int) "rest fired" 10 !count

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e (Time.seconds 5.0) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past scheduling fails"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      ignore (Engine.schedule_at e (Time.seconds 1.0) (fun () -> ())))

let prop_engine_time_order =
  (* Whatever the scheduling order, callbacks execute in non-decreasing
     virtual time. *)
  QCheck2.Test.make ~name:"events execute in time order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) (float_range 0.0 100.0))
    (fun times ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter
        (fun t ->
          ignore
            (Engine.schedule_at e (Time.seconds t) (fun () ->
                 seen := Time.to_seconds (Engine.now e) :: !seen)))
        times;
      Engine.run e;
      let order = List.rev !seen in
      List.sort Float.compare order = order
      && List.length order = List.length times)

(* ------------------------------------------------------------------ *)
(* Channel                                                             *)
(* ------------------------------------------------------------------ *)

let test_channel_latency_and_bandwidth () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let ch =
    Channel.create e ~latency:(Time.ms 1.0) ~bytes_per_sec:1000.0
      ~deliver:(fun msg -> arrivals := (msg, Time.to_seconds (Engine.now e)) :: !arrivals)
      ()
  in
  (* 100 bytes at 1000 B/s = 100 ms transfer + 1 ms latency. *)
  Channel.send ch ~bytes:100 "m1";
  Engine.run e;
  (match !arrivals with
  | [ ("m1", t) ] -> check_float "arrival" 0.101 t
  | _ -> Alcotest.fail "expected one delivery")

let test_channel_fifo_serialization () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let ch =
    Channel.create e ~latency:Time.zero ~bytes_per_sec:1000.0
      ~deliver:(fun msg -> arrivals := (msg, Time.to_seconds (Engine.now e)) :: !arrivals)
      ()
  in
  Channel.send ch ~bytes:100 "a";
  Channel.send ch ~bytes:100 "b";
  Engine.run e;
  (match List.rev !arrivals with
  | [ ("a", ta); ("b", tb) ] ->
    check_float "first" 0.1 ta;
    check_float "second queued behind first" 0.2 tb
  | _ -> Alcotest.fail "expected two deliveries");
  Alcotest.(check int) "bytes counted" 200 (Channel.bytes_sent ch);
  Alcotest.(check int) "messages counted" 2 (Channel.messages_sent ch)

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

let test_recorder_filter () =
  let e = Engine.create () in
  let r = Recorder.create e in
  ignore
    (Engine.schedule_at e (Time.seconds 1.0) (fun () ->
         Recorder.record r ~actor:"mb1" ~kind:"pkt" ~detail:"x"));
  ignore
    (Engine.schedule_at e (Time.seconds 2.0) (fun () ->
         Recorder.record r ~actor:"mb2" ~kind:"pkt" ~detail:"y"));
  ignore
    (Engine.schedule_at e (Time.seconds 3.0) (fun () ->
         Recorder.record r ~actor:"mb1" ~kind:"get-start" ~detail:"z"));
  Engine.run e;
  Alcotest.(check int) "all" 3 (List.length (Recorder.entries r));
  Alcotest.(check int) "by actor" 2 (List.length (Recorder.filter ~actor:"mb1" r));
  Alcotest.(check int) "by kind" 2 (Recorder.count ~kind:"pkt" r);
  Alcotest.(check int) "by window" 1
    (List.length (Recorder.filter ~since:(Time.seconds 1.5) ~until:(Time.seconds 2.5) r))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "openmb_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ]
        @ qcheck [ prop_heap_sorts ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "zipf popularity" `Quick test_dist_zipf_rank1_most_popular;
          Alcotest.test_case "empirical endpoints" `Quick test_dist_empirical_endpoints;
          Alcotest.test_case "bounded pareto bounds" `Quick test_dist_bounded_pareto_bounds;
          Alcotest.test_case "weighted index" `Quick test_dist_weighted_index;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile interpolation" `Quick
            test_stats_percentile_interpolation;
          Alcotest.test_case "fraction above" `Quick test_stats_fraction_above;
          Alcotest.test_case "cdf monotone" `Quick test_stats_cdf_monotone;
          Alcotest.test_case "histogram total" `Quick test_stats_histogram_total;
        ]
        @ qcheck [ prop_stats_mean_bounded ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
        ]
        @ qcheck [ prop_engine_time_order ] );
      ( "channel",
        [
          Alcotest.test_case "latency and bandwidth" `Quick
            test_channel_latency_and_bandwidth;
          Alcotest.test_case "fifo serialization" `Quick test_channel_fifo_serialization;
        ] );
      ("recorder", [ Alcotest.test_case "filter" `Quick test_recorder_filter ]);
    ]
