open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox

type t = {
  engine : Engine.t;
  recorder : Recorder.t option;
  tel : Telemetry.t;
  ctrl : Controller.t;
  faults : Faults.t option;
  sdn : Sdn_controller.t;
  switch : Switch.t;
  sink : Host.t;
}

let create ?ctrl_config ?faults ?telemetry ?(install_delay = Time.ms 10.0)
    ?(with_recorder = true) () =
  let tel = match telemetry with Some tel -> tel | None -> Telemetry.create () in
  let engine = Engine.create ~telemetry:tel () in
  let recorder = if with_recorder then Some (Recorder.create engine) else None in
  let faults = Option.map (fun plan -> Faults.create ~telemetry:tel engine plan) faults in
  let ctrl =
    Controller.create engine ?config:ctrl_config ?recorder ?faults ~telemetry:tel ()
  in
  let sdn = Sdn_controller.create engine ~install_delay () in
  let switch = Switch.create engine ~telemetry:tel ~name:"s1" () in
  Sdn_controller.register_switch sdn switch;
  let sink = Host.create ~name:"sink" () in
  { engine; recorder; tel; ctrl; faults; sdn; switch; sink }

let engine t = t.engine
let recorder t = t.recorder
let telemetry t = t.tel
let controller t = t.ctrl
let faults t = t.faults
let sdn t = t.sdn
let switch t = t.switch
let sink t = t.sink

let attach_mb_agent ?receive_batch t ~port ~receive ~base ~impl =
  let to_mb = Link.create t.engine ~name:("s1-" ^ port) ~dst:receive () in
  (* With a batch receiver, batches arriving on the ingress link stay
     whole; the egress link also carries batches onward (the sink is
     batch-unaware, so the link drains them member-by-member there). *)
  Option.iter (Link.set_dst_batch to_mb) receive_batch;
  Switch.attach_port t.switch ~port to_mb;
  let to_sink = Link.create t.engine ~name:(port ^ "-sink") ~dst:(Host.receive t.sink) () in
  Mb_base.set_egress base (Link.send to_sink);
  if receive_batch <> None then
    Mb_base.set_egress_batch base (Link.send_batch to_sink);
  let agent = Mb_agent.create t.engine ?recorder:t.recorder ~telemetry:t.tel ~impl () in
  Controller.connect t.ctrl agent;
  agent

let attach_mb ?receive_batch t ~port ~receive ~base ~impl =
  ignore (attach_mb_agent ?receive_batch t ~port ~receive ~base ~impl)

let attach_port_to_sink t ~port =
  let link = Link.create t.engine ~name:("s1-" ^ port) ~dst:(Host.receive t.sink) () in
  Switch.attach_port t.switch ~port link

let chain ?receive_batch ~receive base =
  Mb_base.set_egress base receive;
  Option.iter (Mb_base.set_egress_batch base) receive_batch

let install_default_route t ~port =
  ignore
    (Flow_table.install (Switch.table t.switch) ~priority:1 ~match_:Hfl.any
       ~action:(Flow_table.Forward port))

let route t ~match_ ~port ?(priority = 100) ?on_done () =
  Sdn_controller.update_route t.sdn ~switch:"s1" ~match_
    ~new_action:(Flow_table.Forward port) ~priority ?on_done ()

let inject t trace ~into = Openmb_traffic.Trace.replay t.engine trace ~into

let inject_batched t trace ?pool ~batch ~window ~into () =
  Openmb_traffic.Trace.replay_batched t.engine trace ?pool ~batch ~window ~into ()

let run ?until t = Engine.run ?until t.engine

let at t time f = ignore (Engine.schedule_at t.engine time f)
