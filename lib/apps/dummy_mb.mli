(** Synthetic middlebox for controller benchmarking.

    §8.3 isolates the MB controller's performance with "dummy" MBs that
    replay traces of past state in response to gets, ack puts, and
    generate events for the lifetime of the experiment — all state
    202 bytes and all events 128 bytes.  This module is that MB, plus
    enough configurability to double as the test suite's minimal
    southbound implementation. *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?cost:Openmb_core.Southbound.cost_model ->
  ?granularity:Openmb_net.Hfl.granularity ->
  ?chunk_bytes:int ->
  ?kind:string ->
  name:string ->
  unit ->
  t
(** [chunk_bytes] (default 202) sizes each per-flow chunk's sealed
    body.  [cost] defaults to near-zero state-op costs so controller
    time dominates. *)

val default_cost : Openmb_core.Southbound.cost_model
(** Negligible MB-side costs (1 µs scale). *)

val impl : t -> Openmb_core.Southbound.impl
val base : t -> Openmb_mbox.Mb_base.t

val populate : t -> n:int -> unit
(** Install [n] synthetic per-flow supporting records under distinct
    keys (10.0.x.y sources). *)

val populate_reporting : t -> n:int -> unit
(** Install [n] synthetic per-flow reporting records. *)

val set_shared_support : t -> string -> unit
(** Install an opaque shared supporting blob. *)

val set_shared_report : t -> string -> unit

val shared_support : t -> string option
(** Current blob; merged puts concatenate with ["+"], so tests can
    observe merge semantics. *)

val shared_report : t -> string option

val chunk_count : t -> int
(** Per-flow supporting entries resident. *)

val report_count : t -> int

val has_state_for : t -> Openmb_net.Packet.t -> bool
(** Whether a per-flow supporting entry exists for the packet's flow
    (either direction) — the chaos tests' "replayed against present
    state" check. *)

val key_for : int -> Openmb_net.Hfl.t
(** Key of the [i]-th synthetic record installed by {!populate}. *)

val support_entries : t -> (string * string) list
(** Per-flow supporting records as (key string, value) pairs sorted by
    key — lets tests compare two MBs' state tables for equality. *)

val report_entries : t -> (string * string) list

val start_events : t -> rate_pps:float -> unit
(** Begin raising re-process events (128-byte packets keyed to resident
    chunks, round-robin) at the given rate until {!stop_events}. *)

val stop_events : t -> unit

val reprocessed : t -> int
(** Packets this MB replayed via [Reprocess_packet] requests. *)

val packets_seen : t -> int
(** Packets processed with side effects. *)
