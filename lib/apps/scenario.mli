(** Deployment wiring for the evaluation scenarios.

    Builds the common testbed shape: a traffic source feeding an
    OpenFlow switch whose ports lead to middlebox slots, with each
    middlebox's egress draining into a sink host; an SDN controller
    owning the switch and an MB controller owning the middleboxes —
    the two control planes a control application coordinates. *)

type t

val create :
  ?ctrl_config:Openmb_core.Controller.config ->
  ?faults:Openmb_sim.Faults.plan ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?install_delay:Openmb_sim.Time.t ->
  ?with_recorder:bool ->
  unit ->
  t
(** Fresh engine, recorder (when [with_recorder], default true), MB
    controller, SDN controller and one switch named ["s1"].  [faults]
    instantiates a fault-injection plan against the engine and hands it
    to the MB controller: every controller–MB channel draws from the
    plan's link profile and MBs attached later get the plan's scheduled
    crashes armed.

    One {!Openmb_sim.Telemetry.t} instance ([telemetry], or a fresh one)
    is shared by every component the scenario wires — engine, fault
    injector, controller, switch and agents — so registry counters
    aggregate deployment-wide and controller/agent trace spans link up.
    Middlebox bases are built by the caller: pass {!telemetry} to their
    [create] to include data-path metrics. *)

val engine : t -> Openmb_sim.Engine.t
val recorder : t -> Openmb_sim.Recorder.t option

(** The deployment-wide telemetry instance (shared with the
    controller's — {!Openmb_core.Controller.telemetry} returns the same
    value). *)
val telemetry : t -> Openmb_sim.Telemetry.t
val controller : t -> Openmb_core.Controller.t
val faults : t -> Openmb_sim.Faults.t option
val sdn : t -> Openmb_net.Sdn_controller.t
val switch : t -> Openmb_net.Switch.t
val sink : t -> Openmb_net.Host.t

val attach_mb :
  ?receive_batch:(Openmb_net.Packet_batch.t -> unit) ->
  t ->
  port:string ->
  receive:(Openmb_net.Packet.t -> unit) ->
  base:Openmb_mbox.Mb_base.t ->
  impl:Openmb_core.Southbound.impl ->
  unit
(** Wire a middlebox into the deployment: switch port [port] leads to
    [receive]; the MB's egress leads to the sink; the MB connects to
    the MB controller via a fresh agent (shared recorder).  With
    [?receive_batch] (the MB's [receive_batch]), batches arriving on the
    ingress link stay whole and the MB's egress forwards batches to the
    sink link (which drains them scalar into the batch-unaware
    sink). *)

val attach_mb_agent :
  ?receive_batch:(Openmb_net.Packet_batch.t -> unit) ->
  t ->
  port:string ->
  receive:(Openmb_net.Packet.t -> unit) ->
  base:Openmb_mbox.Mb_base.t ->
  impl:Openmb_core.Southbound.impl ->
  Openmb_core.Mb_agent.t
(** Like {!attach_mb} but returns the created agent, so tests can crash
    and restart it directly. *)

val attach_port_to_sink : t -> port:string -> unit
(** A switch port that bypasses middleboxes. *)

val chain :
  ?receive_batch:(Openmb_net.Packet_batch.t -> unit) ->
  receive:(Openmb_net.Packet.t -> unit) ->
  Openmb_mbox.Mb_base.t ->
  unit
(** [chain ~receive base] points [base]'s egress at another MB's
    [receive] — for in-path pairs like RE encoder→switch→decoder this
    links MB stages directly.  With [?receive_batch], surviving batches
    are handed to the next hop whole, in a single engine event. *)

val install_default_route : t -> port:string -> unit
(** Lowest-priority rule sending everything to [port] (installed
    immediately, no SDN delay — initial provisioning). *)

val route :
  t ->
  match_:Openmb_net.Hfl.t ->
  port:string ->
  ?priority:int ->
  ?on_done:(unit -> unit) ->
  unit ->
  unit
(** Routing update through the SDN controller (takes install-delay
    time; [on_done] fires when active). *)

val inject : t -> Openmb_traffic.Trace.t -> into:(Openmb_net.Packet.t -> unit) -> unit
(** Replay a trace into an entry point ([Switch.receive (switch t)] or
    an upstream MB's receive). *)

val inject_batched :
  t ->
  Openmb_traffic.Trace.t ->
  ?pool:Openmb_net.Packet_batch.pool ->
  batch:int ->
  window:Openmb_sim.Time.t ->
  into:(Openmb_net.Packet_batch.t -> unit) ->
  unit ->
  unit
(** Batch replay into a batch entry point
    ([Switch.receive_batch (switch t)]) — see
    {!Openmb_traffic.Trace.replay_batched}. *)

val run : ?until:Openmb_sim.Time.t -> t -> unit
(** Drive the engine. *)

val at : t -> Openmb_sim.Time.t -> (unit -> unit) -> unit
(** Schedule a control action. *)
