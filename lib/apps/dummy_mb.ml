open Openmb_sim
open Openmb_net
open Openmb_core
open Openmb_mbox

type t = {
  base : Mb_base.t;
  granularity : Hfl.granularity;
  chunk_bytes : int;
  support : string State_table.t;
  report : string State_table.t;
  mutable sh_support : string option;
  mutable sh_report : string option;
  mutable event_task : Engine.handle option;
  mutable event_rr : int;
  mutable reprocessed : int;
  mutable packets_seen : int;
  (* Latched by [on_crash] when the hosting agent dies while some
     entries carry a moved mark: the reply to the get that laid those
     marks may have died with the agent's dedup cache, so the next
     matching get is treated as a lost-reply retransmission and
     refused (see [get_perflow]).  Cleared by the rollback. *)
  mutable export_suspect : bool;
}

let default_cost : Southbound.cost_model =
  {
    per_packet = Time.us 1.0;
    op_slowdown = 1.0;
    scan_per_entry = Time.us 0.01;
    serialize_per_chunk = Time.us 1.0;
    serialize_per_byte = Time.zero;
    deserialize_per_chunk = Time.us 1.0;
    deserialize_per_byte = Time.zero;
  }

let create engine ?recorder ?(cost = default_cost) ?(granularity = Hfl.full_granularity)
    ?(chunk_bytes = 202) ?(kind = "dummy") ~name () =
  let base = Mb_base.create engine ?recorder ~name ~kind ~cost () in
  {
    base;
    granularity;
    chunk_bytes;
    support = State_table.create ~granularity ();
    report = State_table.create ~granularity ();
    sh_support = None;
    sh_report = None;
    event_task = None;
    event_rr = 0;
    reprocessed = 0;
    packets_seen = 0;
    export_suspect = false;
  }

let base t = t.base

let key_for i =
  [
    Hfl.Src_ip (Addr.prefix (Addr.of_string (Printf.sprintf "10.0.%d.%d" (i / 250) (1 + (i mod 250)))) 32);
    Hfl.Src_port (10000 + i);
  ]

(* Filler sized so the sealed chunk body lands on [chunk_bytes].  The
   padding mixes structured text with flow-dependent hex so it
   compresses like real serialized state (roughly the paper's 38%)
   rather than like a run of constants. *)
let blob_for t i =
  let body = Printf.sprintf "{\"flow\":%d,\"state\":\"" i in
  let overhead = String.length body + String.length "\"}" + 5 (* magic + mode byte *) in
  let pad = max 0 (t.chunk_bytes - overhead) in
  let filler = Buffer.create pad in
  let x = ref (i + 0x9E37) in
  while Buffer.length filler < pad do
    x := (!x * 1103515245) + 12345;
    Buffer.add_string filler (Printf.sprintf "seq=%04x;" (!x land 0xFFFF))
  done;
  body ^ String.sub (Buffer.contents filler) 0 pad ^ "\"}"

let populate_table t table ~n =
  for i = 0 to n - 1 do
    let key =
      List.filter (fun f -> List.mem (Hfl.dim_of_field f) t.granularity) (key_for i)
    in
    State_table.insert table ~key (blob_for t i)
  done

let populate t ~n = populate_table t t.support ~n
let populate_reporting t ~n = populate_table t t.report ~n

let set_shared_support t s = t.sh_support <- Some s
let set_shared_report t s = t.sh_report <- Some s
let shared_support t = t.sh_support
let shared_report t = t.sh_report
let chunk_count t = State_table.size t.support
let report_count t = State_table.size t.report

let entries_of table =
  List.sort compare
    (State_table.fold table ~init:[] ~f:(fun acc e ->
         (Hfl.to_string e.State_table.key, e.value) :: acc))

let support_entries t = entries_of t.support
let report_entries t = entries_of t.report

(* ------------------------------------------------------------------ *)
(* Southbound implementation                                           *)
(* ------------------------------------------------------------------ *)

let get_perflow t table ~role hfl =
  if not (Hfl.compatible_with_granularity hfl t.granularity) then
    Error Errors.Granularity_too_fine
  else begin
    (* Matching entries already marked moved are normally skipped: an
       earlier pending transfer exported them and its deferred delete
       will collect them, so a concurrent overlapping get exports only
       the unmarked remainder.  But when the hosting agent crashed
       while marks were outstanding ([export_suspect]), the reply that
       exported them may have died with the agent's dedup cache and
       this get is its retransmission re-executing against a fresh
       incarnation — exporting only the remainder would let the
       controller close the stream without the chunks that died with
       the crash, silently completing a partial move.  Fail instead so
       the transfer aborts, the rollback clears the marks and the
       re-run exports everything. *)
    let dirty = ref false in
    State_table.iter_matching table hfl (fun (e : string State_table.entry) ->
        if e.moved then dirty := true);
    if !dirty && t.export_suspect then
      Error (Errors.Illegal_operation "export possibly lost in a crash for this range")
    else begin
      (* One pass: skip already-exported entries, mark and seal the
         rest as they are visited. *)
      let chunks = ref [] in
      State_table.iter_matching table hfl (fun (e : string State_table.entry) ->
          if not e.moved then begin
            e.moved <- true;
            chunks :=
              Mb_base.seal_raw t.base ~role ~partition:Taxonomy.Per_flow ~key:e.key e.value
              :: !chunks
          end);
      Ok (List.rev !chunks)
    end
  end

let put_perflow t table ~role (chunk : Chunk.t) =
  if chunk.role <> role || chunk.partition <> Taxonomy.Per_flow then
    Error (Errors.Illegal_operation "wrong chunk class for this put")
  else
    match Mb_base.unseal_raw t.base chunk with
    | Error e -> Error e
    | Ok plain ->
      State_table.insert table ~key:chunk.key plain;
      Ok ()

let get_shared t slot ~role () =
  match slot with
  | None -> Ok None
  | Some v ->
    Ok (Some (Mb_base.seal_raw t.base ~role ~partition:Taxonomy.Shared ~key:Hfl.any v))

(* Merge semantics: concatenate with "+" so tests can see both
   contributions. *)
let put_shared t ~role ~get ~set (chunk : Chunk.t) =
  if chunk.Chunk.role <> role || chunk.partition <> Taxonomy.Shared then
    Error (Errors.Illegal_operation "wrong chunk class for this put")
  else
    match Mb_base.unseal_raw t.base chunk with
    | Error e -> Error e
    | Ok v ->
      (match get () with None -> set v | Some existing -> set (existing ^ "+" ^ v));
      Ok ()

(* Transactional rollback: give exported-but-undeleted entries back to
   this MB by clearing their moved marks, so an aborted move leaves the
   source authoritative and re-exportable. *)
let abort_perflow t hfl =
  State_table.iter_matching t.support hfl (fun (e : string State_table.entry) ->
      e.moved <- false);
  State_table.iter_matching t.report hfl (fun (e : string State_table.entry) ->
      e.moved <- false);
  (* The marks the crash made suspect are gone; exports are clean again. *)
  t.export_suspect <- false

(* A crash can only have lost an export reply if some export was
   outstanding when it hit — i.e. some entry still carries a moved
   mark.  A crash with no marks anywhere has nothing to suspect, and
   latching anyway would poison a far-later unrelated transfer. *)
let on_crash t () =
  let any_moved table =
    State_table.fold table ~init:false ~f:(fun acc e -> acc || e.State_table.moved)
  in
  if any_moved t.support || any_moved t.report then t.export_suspect <- true

(* Existence check by key coverage, not five-tuple probe: populate's
   synthetic keys pin only source ip/port, so they are invisible to the
   packed-table fast path a five-tuple lookup takes.  O(entries), which
   is fine for its test-harness role. *)
let has_state_for t p =
  State_table.fold t.support ~init:false ~f:(fun acc e ->
      acc || Hfl.matches_packet e.State_table.key p)

let process_packet t p ~side_effects =
  if side_effects then begin
    t.packets_seen <- t.packets_seen + 1;
    match State_table.find_bidir t.support (Five_tuple.of_packet p) with
    | Some entry when entry.moved ->
      Mb_base.raise_event t.base (Event.Reprocess { key = entry.key; packet = p })
    | Some _ | None -> ()
  end
  else t.reprocessed <- t.reprocessed + 1

let stats t hfl =
  let sup = State_table.matching t.support hfl in
  let rep = State_table.matching t.report hfl in
  {
    Southbound.perflow_support_chunks = List.length sup;
    perflow_report_chunks = List.length rep;
    perflow_support_bytes = List.length sup * t.chunk_bytes;
    perflow_report_bytes = List.length rep * t.chunk_bytes;
    shared_support_bytes =
      (match t.sh_support with None -> 0 | Some s -> String.length s);
    shared_report_bytes = (match t.sh_report with None -> 0 | Some s -> String.length s);
  }

let impl t =
  let default =
    Mb_base.default_impl t.base ~table_entries:(fun () -> State_table.size t.support)
  in
  {
    default with
    granularity = t.granularity;
    get_support_perflow = get_perflow t t.support ~role:Taxonomy.Supporting;
    put_support_perflow = put_perflow t t.support ~role:Taxonomy.Supporting;
    del_support_perflow =
      (fun hfl -> Ok (List.length (State_table.remove_moved_matching t.support hfl)));
    get_support_shared =
      (fun () -> get_shared t t.sh_support ~role:Taxonomy.Supporting ());
    put_support_shared =
      put_shared t ~role:Taxonomy.Supporting
        ~get:(fun () -> t.sh_support)
        ~set:(fun v -> t.sh_support <- Some v);
    get_report_perflow = get_perflow t t.report ~role:Taxonomy.Reporting;
    put_report_perflow = put_perflow t t.report ~role:Taxonomy.Reporting;
    del_report_perflow =
      (fun hfl -> Ok (List.length (State_table.remove_moved_matching t.report hfl)));
    get_report_shared = (fun () -> get_shared t t.sh_report ~role:Taxonomy.Reporting ());
    put_report_shared =
      put_shared t ~role:Taxonomy.Reporting
        ~get:(fun () -> t.sh_report)
        ~set:(fun v -> t.sh_report <- Some v);
    abort_perflow = abort_perflow t;
    on_crash = on_crash t;
    stats = stats t;
    process_packet = process_packet t;
  }

(* ------------------------------------------------------------------ *)
(* Synthetic event generation (§8.3: events are 128 bytes)             *)
(* ------------------------------------------------------------------ *)

let event_packet t i =
  (* 128 bytes total: header (54) + one token (64) + 10 trailing. *)
  let key = key_for i in
  let src =
    match key with
    | Hfl.Src_ip p :: _ -> Addr.prefix_base p
    | _ -> Addr.of_string "10.0.0.1"
  in
  Packet.make
    ~body:(Packet.Raw (Payload.of_tokens_trailing [| i |] ~trailing:10))
    ~id:(900000 + i)
    ~ts:(Engine.now (Mb_base.engine t.base))
    ~src_ip:src ~dst_ip:(Addr.of_string "1.1.1.1") ~src_port:(10000 + i) ~dst_port:80
    ~proto:Packet.Tcp ()

let rec schedule_events t ~rate_pps =
  let interval = Time.seconds (1.0 /. rate_pps) in
  let h =
    Engine.schedule_after (Mb_base.engine t.base) interval (fun () ->
        let n = max 1 (State_table.size t.support) in
        let i = t.event_rr mod n in
        t.event_rr <- t.event_rr + 1;
        let key =
          List.filter (fun f -> List.mem (Hfl.dim_of_field f) t.granularity) (key_for i)
        in
        Mb_base.raise_event t.base (Event.Reprocess { key; packet = event_packet t i });
        if t.event_task <> None then schedule_events t ~rate_pps)
  in
  t.event_task <- Some h

let stop_events t =
  (match t.event_task with Some h -> Engine.cancel h | None -> ());
  t.event_task <- None

let start_events t ~rate_pps =
  stop_events t;
  schedule_events t ~rate_pps

let reprocessed t = t.reprocessed
let packets_seen t = t.packets_seen
