(* LZSS with a 4 KiB sliding window and 3-byte hash-chain match
   finding.  Output format: groups of 8 tokens preceded by a flag byte;
   bit i set means token i is a (offset, length) back-reference encoded
   in two bytes (12-bit offset, 4-bit length-3), clear means a literal
   byte. *)

let window_size = 4096
let min_match = 3
let max_match = 18 (* 4-bit length field stores length - min_match *)

let hash3 s i =
  (Char.code s.[i] lsl 10) lxor (Char.code s.[i + 1] lsl 5) lxor Char.code s.[i + 2]

(* A reusable workspace: the hash-chain head and prev arrays, plus the
   output buffers, persist across calls.  Resetting the head array for
   a new input is O(1) — each head slot carries the epoch it was last
   written in and reads as empty under any other epoch — so a call
   costs no 32 K-word allocation or clear.  The encoded output is
   byte-for-byte what a fresh workspace (or the pre-workspace
   implementation) produces. *)
type workspace = {
  head : int array;  (* head.(h) = most recent position with hash h *)
  stamp : int array;  (* epoch that wrote head.(h); other epochs read -1 *)
  prev : int array;  (* prev.(i mod window) = previous position, forming chains *)
  mutable epoch : int;
  out : Buffer.t;
  group : Buffer.t;
}

let create_workspace () =
  {
    head = Array.make 32768 (-1);
    stamp = Array.make 32768 (-1);
    prev = Array.make window_size (-1);
    epoch = 0;
    out = Buffer.create 512;
    group = Buffer.create 17;
  }

(* [compress_to ws input] encodes [input] into [ws.out] (cleared
   first) and leaves the result there; the [compress*] entry points
   below decide whether to materialize it. *)
let compress_to ws input =
  let n = String.length input in
  Buffer.clear ws.out;
  if n > 0 then begin
    let { head; stamp; prev; out; group; _ } = ws in
    ws.epoch <- ws.epoch + 1;
    let epoch = ws.epoch in
    let head_get h = if stamp.(h) = epoch then head.(h) else -1 in
    let insert pos =
      if pos + min_match <= n then begin
        let h = hash3 input pos land 32767 in
        prev.(pos land (window_size - 1)) <- head_get h;
        head.(h) <- pos;
        stamp.(h) <- epoch
      end
    in
    let find_match pos =
      if pos + min_match > n then None
      else begin
        let h = hash3 input pos land 32767 in
        let limit = pos - window_size in
        let best_len = ref 0 and best_off = ref 0 in
        let candidate = ref (head_get h) in
        let tries = ref 32 in
        while !candidate >= 0 && !candidate > limit && !tries > 0 do
          let cand = !candidate in
          let max_here = min max_match (n - pos) in
          let len = ref 0 in
          while !len < max_here && input.[cand + !len] = input.[pos + !len] do
            incr len
          done;
          if !len > !best_len then begin
            best_len := !len;
            best_off := pos - cand
          end;
          candidate := prev.(cand land (window_size - 1));
          decr tries
        done;
        if !best_len >= min_match then Some (!best_off, !best_len) else None
      end
    in
    let pos = ref 0 in
    let flags = ref 0 and flag_count = ref 0 in
    Buffer.clear group;
    let flush_group () =
      if !flag_count > 0 then begin
        Buffer.add_char out (Char.chr !flags);
        Buffer.add_buffer out group;
        Buffer.clear group;
        flags := 0;
        flag_count := 0
      end
    in
    while !pos < n do
      (match find_match !pos with
      | Some (off, len) ->
        flags := !flags lor (1 lsl !flag_count);
        (* 12-bit offset (1..4095), 4-bit length - min_match. *)
        let b1 = (off lsr 4) land 0xFF in
        let b2 = ((off land 0xF) lsl 4) lor (len - min_match) in
        Buffer.add_char group (Char.chr b1);
        Buffer.add_char group (Char.chr b2);
        for k = 0 to len - 1 do
          insert (!pos + k)
        done;
        pos := !pos + len
      | None ->
        Buffer.add_char group input.[!pos];
        insert !pos;
        incr pos);
      incr flag_count;
      if !flag_count = 8 then flush_group ()
    done;
    flush_group ()
  end

let compress_with ws input =
  compress_to ws input;
  Buffer.contents ws.out

(* Shared workspace for the plain entry points.  Created on first use
   so modules that never compress pay nothing. *)
let global = lazy (create_workspace ())

let compress input = compress_with (Lazy.force global) input

let decompress input =
  let n = String.length input in
  let out = Buffer.create (n * 2) in
  let pos = ref 0 in
  let byte () =
    if !pos >= n then invalid_arg "Compress.decompress: truncated input";
    let c = input.[!pos] in
    incr pos;
    c
  in
  while !pos < n do
    let flags = Char.code (byte ()) in
    let k = ref 0 in
    while !k < 8 && !pos < n do
      if flags land (1 lsl !k) <> 0 then begin
        let b1 = Char.code (byte ()) in
        let b2 = Char.code (byte ()) in
        let off = (b1 lsl 4) lor (b2 lsr 4) in
        let len = (b2 land 0xF) + min_match in
        if off = 0 || off > Buffer.length out then
          invalid_arg "Compress.decompress: bad back-reference";
        let start = Buffer.length out - off in
        for i = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + i))
        done
      end
      else Buffer.add_char out (byte ());
      incr k
    done
  done;
  Buffer.contents out

let compressed_size s =
  compress_to (Lazy.force global) s;
  Buffer.length (Lazy.force global).out

let ratio s =
  let n = String.length s in
  if n = 0 then 0.0
  else
    let c = compressed_size s in
    Float.max 0.0 (1.0 -. (float_of_int c /. float_of_int n))
