exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

type sink = { put_char : char -> unit; put_string : string -> unit }

let buffer_sink buf =
  { put_char = Buffer.add_char buf; put_string = Buffer.add_string buf }

let counting_sink () =
  let n = ref 0 in
  ( { put_char = (fun _ -> incr n); put_string = (fun s -> n := !n + String.length s) },
    fun () -> !n )

let u8 k v = k.put_char (Char.unsafe_chr (v land 0xFF))

let u16 k v =
  u8 k (v lsr 8);
  u8 k v

let u32 k v =
  u8 k (v lsr 24);
  u8 k (v lsr 16);
  u8 k (v lsr 8);
  u8 k v

(* Base-128 emitter over the raw (two's-complement) bit pattern; [lsr]
   makes the loop terminate for any int. *)
let rec base128 k v =
  if v land lnot 0x7F = 0 then u8 k v
  else begin
    u8 k (0x80 lor (v land 0x7F));
    base128 k (v lsr 7)
  end

let uvarint k v =
  if v < 0 then invalid_arg "Binary.uvarint: negative";
  base128 k v

(* Zigzag over OCaml's 63-bit int: sign bit is bit 62. *)
let varint k v = base128 k ((v lsl 1) lxor (v asr 62))

let f64 k v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    k.put_char
      (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

let str k s =
  uvarint k (String.length s);
  k.put_string s

type reader = { src : string; mutable pos : int }

let reader ?(pos = 0) src = { src; pos }

let get_u8 r =
  if r.pos >= String.length r.src then fail "Binary: truncated input at byte %d" r.pos;
  let c = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  c

let get_u16 r =
  let a = get_u8 r in
  (a lsl 8) lor get_u8 r

let get_u32 r =
  let a = get_u16 r in
  (a lsl 16) lor get_u16 r

let get_uvarint r =
  let rec go shift acc =
    if shift > 62 then fail "Binary: varint overflow at byte %d" r.pos;
    let b = get_u8 r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_varint r =
  let u = get_uvarint r in
  (u lsr 1) lxor (0 - (u land 1))

let get_f64 r =
  let bits = ref 0L in
  for _ = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (get_u8 r))
  done;
  Int64.float_of_bits !bits

let get_str r =
  let n = get_uvarint r in
  if r.pos + n > String.length r.src then
    fail "Binary: string of %d bytes exceeds input at byte %d" n r.pos;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Length-prefixed frames                                              *)
(* ------------------------------------------------------------------ *)

let frame body =
  let buf = Buffer.create (String.length body + 4) in
  u32 (buffer_sink buf) (String.length body);
  Buffer.add_string buf body;
  Buffer.contents buf

let unframe r =
  let n = get_u32 r in
  if r.pos + n > String.length r.src then
    fail "Binary: frame of %d bytes exceeds input at byte %d" n r.pos;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s
