(** LZ-style compression for state transfers.

    The paper's controller profile (§8.3) shows that move latency is
    dominated by socket reads and that compressing state by 38% cuts a
    500-chunk move from 110 ms to 70 ms.  This module provides a real
    (self-contained) LZSS compressor so the compression bench measures
    an actual ratio on actual serialized state rather than assuming
    one. *)

type workspace
(** Reusable compressor scratch state: the 32 K-entry hash-chain head
    array, the window-sized chain links and the output buffer.  A
    workspace makes repeated calls allocation-free apart from the
    result string — resetting between inputs is O(1) (an epoch bump),
    not a 32 K-word clear — which is what lets a 1000-chunk transfer
    compress every chunk without re-paying the table setup. *)

val create_workspace : unit -> workspace

val compress_with : workspace -> string -> string
(** [compress_with ws s] is {!compress}[ s] computed with [ws]'s
    scratch state.  The output is byte-for-byte identical to a fresh
    workspace's (prior inputs never leak into the encoding), so either
    side of a transfer may reuse or not reuse workspaces freely. *)

val compress : string -> string
(** [compress s] is an LZSS encoding of [s], using a shared internal
    workspace.  Worst case it is slightly larger than the input (one
    flag bit per literal byte). *)

val decompress : string -> string
(** Inverse of {!compress}.  Raises [Invalid_argument] on input that
    was not produced by {!compress}. *)

val compressed_size : string -> int
(** [compressed_size s] is [String.length (compress s)] without
    materializing the output string. *)

val ratio : string -> float
(** [ratio s] is [1 - compressed_size s / length s]: the fraction of
    bytes saved (0 for incompressible input, approaching 1 for highly
    redundant input).  Returns [0.] for the empty string. *)
