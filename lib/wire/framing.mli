(** Wire framing negotiated on each controller–MB channel.

    [Json] is the paper's prototype encoding (JSON-C over UNIX
    sockets) and the default; [Binary] is the compact encoding of
    {!Binary}.  Decoders distinguish the two by the first body byte
    ([Binary] bodies carry a [0x42] tag, JSON text starts with ['{']),
    so a JSON peer keeps working against a binary-capable one. *)

type t = Json | Binary

val to_string : t -> string

val of_string : string -> t
(** Raises [Invalid_argument] on unknown names. *)

val pp : Format.formatter -> t -> unit
