type t = Json | Binary

let to_string = function Json -> "json" | Binary -> "binary"

let of_string = function
  | "json" -> Json
  | "binary" -> Binary
  | s -> invalid_arg (Printf.sprintf "Framing.of_string: %S" s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
