(** Compact binary wire primitives.

    Building blocks of the binary protocol framing: big-endian fixed
    ints, LEB128 varints (zigzag for signed values), IEEE-754 doubles
    and length-prefixed strings, plus [u32]-length-prefixed frames for
    stream transport.  Encoders write through a {!sink} so the exact
    wire size can be computed with {!counting_sink} without
    materializing the bytes. *)

exception Decode_error of string
(** Raised by every [get_*] on malformed or truncated input. *)

type sink = { put_char : char -> unit; put_string : string -> unit }

val buffer_sink : Buffer.t -> sink
val counting_sink : unit -> sink * (unit -> int)
(** A sink that discards output; the closure returns the byte count so
    far. *)

val u8 : sink -> int -> unit
val u16 : sink -> int -> unit
(** Big-endian. *)

val u32 : sink -> int -> unit
(** Big-endian. *)

val uvarint : sink -> int -> unit
(** LEB128; raises [Invalid_argument] on negative input. *)

val varint : sink -> int -> unit
(** Zigzag LEB128 for signed values. *)

val f64 : sink -> float -> unit
(** IEEE-754 bits, big-endian; exact round-trip. *)

val str : sink -> string -> unit
(** [uvarint] length followed by the bytes. *)

type reader = { src : string; mutable pos : int }

val reader : ?pos:int -> string -> reader

val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
val get_uvarint : reader -> int
val get_varint : reader -> int
val get_f64 : reader -> float
val get_str : reader -> string

val frame : string -> string
(** [u32] byte length followed by the body. *)

val unframe : reader -> string
(** Inverse of {!frame}: reads one length-prefixed body. *)
