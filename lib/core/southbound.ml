open Openmb_sim

type stats = {
  perflow_support_chunks : int;
  perflow_report_chunks : int;
  perflow_support_bytes : int;
  perflow_report_bytes : int;
  shared_support_bytes : int;
  shared_report_bytes : int;
}

let empty_stats =
  {
    perflow_support_chunks = 0;
    perflow_report_chunks = 0;
    perflow_support_bytes = 0;
    perflow_report_bytes = 0;
    shared_support_bytes = 0;
    shared_report_bytes = 0;
  }

type cost_model = {
  per_packet : Time.t;
  op_slowdown : float;
  scan_per_entry : Time.t;
  serialize_per_chunk : Time.t;
  serialize_per_byte : Time.t;
  deserialize_per_chunk : Time.t;
  deserialize_per_byte : Time.t;
}

type impl = {
  name : string;
  kind : string;
  granularity : Openmb_net.Hfl.granularity;
  cost : cost_model;
  table_entries : unit -> int;
  get_config : Config_tree.path -> (Config_tree.entry list, Errors.t) result;
  set_config : Config_tree.path -> Openmb_wire.Json.t list -> (unit, Errors.t) result;
  del_config : Config_tree.path -> (unit, Errors.t) result;
  get_support_perflow : Openmb_net.Hfl.t -> (Chunk.t list, Errors.t) result;
  put_support_perflow : Chunk.t -> (unit, Errors.t) result;
  del_support_perflow : Openmb_net.Hfl.t -> (int, Errors.t) result;
  get_support_shared : unit -> (Chunk.t option, Errors.t) result;
  put_support_shared : Chunk.t -> (unit, Errors.t) result;
  get_report_perflow : Openmb_net.Hfl.t -> (Chunk.t list, Errors.t) result;
  put_report_perflow : Chunk.t -> (unit, Errors.t) result;
  del_report_perflow : Openmb_net.Hfl.t -> (int, Errors.t) result;
  get_report_shared : unit -> (Chunk.t option, Errors.t) result;
  put_report_shared : Chunk.t -> (unit, Errors.t) result;
  abort_perflow : Openmb_net.Hfl.t -> unit;
  on_crash : unit -> unit;
  stats : Openmb_net.Hfl.t -> stats;
  process_packet : Openmb_net.Packet.t -> side_effects:bool -> unit;
  set_event_sink : (Event.t -> unit) -> unit;
  set_op_active : bool -> unit;
}

let check_granularity impl hfl =
  if Openmb_net.Hfl.compatible_with_granularity hfl impl.granularity then Ok ()
  else Error Errors.Granularity_too_fine

(* Dispatch one chunk to the put operation its role/partition selects —
   chunks self-describe, so batch application needs no side channel. *)
let put_chunk impl (chunk : Chunk.t) =
  match (chunk.Chunk.role, chunk.Chunk.partition) with
  | Taxonomy.Supporting, Taxonomy.Per_flow -> impl.put_support_perflow chunk
  | Taxonomy.Supporting, Taxonomy.Shared -> impl.put_support_shared chunk
  | Taxonomy.Reporting, Taxonomy.Per_flow -> impl.put_report_perflow chunk
  | Taxonomy.Reporting, Taxonomy.Shared -> impl.put_report_shared chunk
  | Taxonomy.Configuring, (Taxonomy.Per_flow | Taxonomy.Shared) ->
    (* Configuration state never travels as chunks; mirror the
       controller's single-put mapping. *)
    impl.put_support_shared chunk

let default_cost =
  {
    per_packet = Time.us 100.0;
    op_slowdown = 1.02;
    scan_per_entry = Time.us 1.0;
    serialize_per_chunk = Time.us 50.0;
    serialize_per_byte = Time.us 0.02;
    deserialize_per_chunk = Time.us 10.0;
    deserialize_per_byte = Time.us 0.01;
  }
