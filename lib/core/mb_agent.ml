open Openmb_sim

type t = {
  engine : Engine.t;
  recorder : Recorder.t option;
  tel : Telemetry.t option;
  c_dedup : Telemetry.counter;
  c_events : Telemetry.counter;
  h_serialize : Telemetry.histogram;
  h_apply : Telemetry.histogram;
  (* Open agent-side spans keyed by op id; tagged with the controller's
     causality id so exported traces link both halves of an op. *)
  op_spans : Telemetry.Trace.span Openmb_net.Flat_table.t;
  impl : Southbound.impl;
  filter : Event.Filter.t;
  mutable send_reply : Message.from_mb -> unit;
  mutable send_event : Message.from_mb -> unit;
  mutable cpu_free_at : Time.t;
  mutable active_ops : int;
  mutable ops_handled : int;
  mutable events_raised : int;
  (* Crash model: a crash abandons everything in flight on the control
     thread (epoch bump suppresses scheduled continuations) and wipes
     the volatile dedup caches; durable configuration and the MB's own
     state tables survive.  While down, requests and raised events are
     dropped on the floor. *)
  mutable crashed : bool;
  mutable epoch : int;
  mutable crash_count : int;
  (* Fencing token: op ids encode the issuing controller's replication
     epoch in their high bits (id_base = epoch lsl 40), and epochs only
     grow.  Once any op from epoch [e] is seen, ops from epochs < e are
     a deposed leader's stragglers — a reordering op channel can land
     them *after* the successor's recovery aborts, where executing one
     (e.g. a get that re-marks just-rolled-back entries as exported)
     would corrupt the takeover.  Tracked durably: a crash does not
     reset it, exactly as a lease check against a config store would
     survive the MB restarting. *)
  mutable ctrl_epoch : int;
  (* Volatile at-most-once bookkeeping, in int-keyed flat tables (the
     id rides in key word [pa]).  [ops] holds every op this incarnation
     has seen: an entry appears (empty) when execution starts, so
     duplicates of an in-flight op are dropped (the running execution
     will answer), and accumulates the op's replies so duplicated
     deliveries of a completed op replay instead of re-executing.
     [applied_seq] maps mutation sequence numbers to their final reply
     so retried puts are idempotent even across op ids. *)
  ops : Message.reply list Openmb_net.Flat_table.t;
  applied_seq : Message.reply Openmb_net.Flat_table.t;
}

(* Int-keyed probes into the flat cores: the id is word [pa], [pb] is 0.
   Op ids and sequence numbers are non-negative, as the mixer needs. *)
let[@inline] ihash k = Openmb_net.Five_tuple.hash_words ~pa:k ~pb:0
let ft_find tbl k = Openmb_net.Flat_table.find tbl ~pa:k ~pb:0 ~h:(ihash k)
let ft_replace tbl k v = Openmb_net.Flat_table.replace tbl ~pa:k ~pb:0 ~h:(ihash k) v

let ft_remove tbl k =
  ignore (Openmb_net.Flat_table.remove tbl ~pa:k ~pb:0 ~h:(ihash k) : bool)

let record t ~kind ~detail =
  match t.recorder with
  | Some r -> Recorder.record r ~actor:t.impl.name ~kind ~detail
  | None -> ()

let not_attached _ = failwith "Mb_agent: not attached to a controller"

let create engine ?recorder ?telemetry ~impl () =
  let c name =
    match telemetry with
    | Some tel -> Telemetry.counter tel name
    | None -> Telemetry.null_counter
  in
  let h name =
    match telemetry with
    | Some tel -> Telemetry.histogram tel name
    | None -> Telemetry.null_histogram
  in
  let t =
    {
      engine;
      recorder;
      tel = telemetry;
      c_dedup = c "mb.dedup_hits";
      c_events = c "mb.events_raised";
      h_serialize = h "mb.serialize";
      h_apply = h "mb.apply";
      op_spans = Openmb_net.Flat_table.create ~capacity:64 ();
      impl;
      filter = Event.Filter.create ();
      send_reply = not_attached;
      send_event = not_attached;
      cpu_free_at = Time.zero;
      active_ops = 0;
      ops_handled = 0;
      events_raised = 0;
      crashed = false;
      epoch = 0;
      crash_count = 0;
      ctrl_epoch = 0;
      ops = Openmb_net.Flat_table.create ~capacity:64 ();
      applied_seq = Openmb_net.Flat_table.create ~capacity:64 ();
    }
  in
  (* Events raised by the MB's packet-processing logic flow out through
     the agent; re-process events always pass, introspection events are
     filtered (§4.2.2). *)
  impl.set_event_sink (fun ev ->
      if (not t.crashed) && Event.Filter.admits t.filter ev then begin
        t.events_raised <- t.events_raised + 1;
        Telemetry.incr t.c_events;
        record t ~kind:"event-raise" ~detail:(Event.describe ev);
        t.send_event (Message.Event_msg ev)
      end);
  t

let impl t = t.impl
let name t = t.impl.name
let engine t = t.engine
let telemetry t = t.tel

let set_uplinks t ~send_reply ~send_event =
  t.send_reply <- send_reply;
  t.send_event <- send_event

let op_active t = t.active_ops > 0
let ops_handled t = t.ops_handled
let events_raised t = t.events_raised
let is_crashed t = t.crashed
let crash_count t = t.crash_count

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    t.crash_count <- t.crash_count + 1;
    t.epoch <- t.epoch + 1;
    t.active_ops <- 0;
    t.impl.set_op_active false;
    t.cpu_free_at <- Engine.now t.engine;
    Openmb_net.Flat_table.clear t.ops;
    Openmb_net.Flat_table.clear t.applied_seq;
    Openmb_net.Flat_table.clear t.op_spans;
    t.impl.on_crash ();
    record t ~kind:"crash" ~detail:""
  end

let restart t =
  if t.crashed then begin
    t.crashed <- false;
    t.cpu_free_at <- Engine.now t.engine;
    record t ~kind:"restart" ~detail:""
  end

(* Charge [cost] of serial control-thread CPU, then run [k].  The MB
   keeps processing packets meanwhile (its data path is separate); the
   impl is told an op is active so it can apply the 2% slowdown.  A
   crash between scheduling and execution abandons [k]. *)
let exec t cost k =
  let epoch = t.epoch in
  let start = Time.max (Engine.now t.engine) t.cpu_free_at in
  t.cpu_free_at <- Time.(start + cost);
  t.active_ops <- t.active_ops + 1;
  if t.active_ops = 1 then t.impl.set_op_active true;
  Engine.call_at t.engine t.cpu_free_at
    (fun () ->
      if t.epoch = epoch then begin
        k ();
        t.active_ops <- t.active_ops - 1;
        if t.active_ops = 0 then t.impl.set_op_active false
      end)
    ()

let chunk_serialize_cost (cost : Southbound.cost_model) chunk =
  Time.(
    cost.serialize_per_chunk
    + seconds
        (to_seconds cost.serialize_per_byte *. float_of_int (Chunk.size_bytes chunk)))

let chunk_deserialize_cost (cost : Southbound.cost_model) chunk =
  Time.(
    cost.deserialize_per_chunk
    + seconds
        (to_seconds cost.deserialize_per_byte *. float_of_int (Chunk.size_bytes chunk)))

let scan_cost t =
  Time.seconds
    (Time.to_seconds t.impl.cost.scan_per_entry *. float_of_int (t.impl.table_entries ()))

let config_op_cost = Time.us 200.0

let send_reply_raw t op reply = t.send_reply (Message.Reply { op; reply })

let begin_op_span t op tid req =
  match t.tel with
  | None -> ()
  | Some tel ->
    let span =
      Telemetry.span_begin tel ~now:(Engine.now t.engine) ~actor:t.impl.name
        ~name:("mb." ^ Message.request_name req) ~op:tid ~a0:op ()
    in
    ft_replace t.op_spans op span

(* Everything but a mid-stream chunk finishes the op on the agent side. *)
let reply_is_terminal = function Message.State_chunk _ -> false | _ -> true

let end_op_span t op =
  match ft_find t.op_spans op with
  | None -> ()
  | Some span ->
    ft_remove t.op_spans op;
    (match t.tel with
    | Some tel -> Telemetry.span_end tel ~now:(Engine.now t.engine) span
    | None -> ())

let reply t op reply =
  let prev = match ft_find t.ops op with Some l -> l | None -> [] in
  ft_replace t.ops op (reply :: prev);
  send_reply_raw t op reply;
  if reply_is_terminal reply then end_op_span t op

let reply_result t op = function
  | Ok () -> reply t op Message.Ack
  | Error e -> reply t op (Message.Op_error e)

(* Execute a streaming get: linear scan, then serialize and send each
   matching chunk in turn, then the end-of-state marker carrying the
   chunk count. *)
let handle_get t op ~what (fetch : unit -> (Chunk.t list, Errors.t) result) =
  record t ~kind:"get-start" ~detail:what;
  exec t (scan_cost t) (fun () ->
      match fetch () with
      | Error e -> reply t op (Message.Op_error e)
      | Ok chunks ->
        let count = List.length chunks in
        List.iter
          (fun chunk ->
            let cost = chunk_serialize_cost t.impl.cost chunk in
            Telemetry.observe t.h_serialize (Time.to_seconds cost);
            exec t cost (fun () -> reply t op (Message.State_chunk chunk)))
          chunks;
        exec t Time.zero (fun () ->
            record t ~kind:"get-end" ~detail:(Printf.sprintf "%s count=%d" what count);
            reply t op (Message.End_of_state { count })))

(* Shared-state gets return zero or one chunk and skip the scan. *)
let handle_get_shared t op ~what (fetch : unit -> (Chunk.t option, Errors.t) result) =
  record t ~kind:"get-start" ~detail:what;
  exec t Time.zero (fun () ->
      match fetch () with
      | Error e -> reply t op (Message.Op_error e)
      | Ok None ->
        record t ~kind:"get-end" ~detail:(what ^ " count=0");
        reply t op (Message.End_of_state { count = 0 })
      | Ok (Some chunk) ->
        let cost = chunk_serialize_cost t.impl.cost chunk in
        Telemetry.observe t.h_serialize (Time.to_seconds cost);
        exec t cost (fun () ->
            reply t op (Message.State_chunk chunk);
            record t ~kind:"get-end" ~detail:(what ^ " count=1");
            reply t op (Message.End_of_state { count = 1 })))

let handle_put t op ~what ~seq chunk (store : Chunk.t -> (unit, Errors.t) result) =
  let cost = chunk_deserialize_cost t.impl.cost chunk in
  Telemetry.observe t.h_apply (Time.to_seconds cost);
  exec t cost (fun () ->
      record t ~kind:"put" ~detail:what;
      let r =
        match store chunk with Ok () -> Message.Ack | Error e -> Message.Op_error e
      in
      ft_replace t.applied_seq seq r;
      reply t op r)

let handle_del t op (remove : unit -> (int, Errors.t) result) =
  exec t (scan_cost t) (fun () ->
      match remove () with
      | Ok n ->
        record t ~kind:"del" ~detail:(Printf.sprintf "removed=%d" n);
        reply t op Message.Ack
      | Error e -> reply t op (Message.Op_error e))

let seq_of_request = function
  | Message.Put_support_perflow { seq; _ }
  | Message.Put_support_shared { seq; _ }
  | Message.Put_report_perflow { seq; _ }
  | Message.Put_report_shared { seq; _ }
  | Message.Put_batch { seq; _ } ->
    Some seq
  | Message.Get_config _ | Message.Set_config _ | Message.Del_config _
  | Message.Get_support_perflow _ | Message.Del_support_perflow _
  | Message.Get_support_shared | Message.Get_report_perflow _
  | Message.Del_report_perflow _ | Message.Get_report_shared | Message.Get_stats _
  | Message.Enable_events _ | Message.Disable_events _ | Message.Reprocess_packet _
  | Message.Abort_perflow _ ->
    None

let execute t op req =
  let i = t.impl in
  match req with
  | Message.Get_config path ->
    exec t config_op_cost (fun () ->
        match i.get_config path with
        | Ok entries -> reply t op (Message.Config_values entries)
        | Error e -> reply t op (Message.Op_error e))
  | Message.Set_config (path, values) ->
    exec t config_op_cost (fun () -> reply_result t op (i.set_config path values))
  | Message.Del_config path ->
    exec t config_op_cost (fun () -> reply_result t op (i.del_config path))
  | Message.Get_support_perflow hfl ->
    handle_get t op
      ~what:("support " ^ Openmb_net.Hfl.to_string hfl)
      (fun () -> i.get_support_perflow hfl)
  | Message.Put_support_perflow { seq; chunk } ->
    handle_put t op ~what:"support" ~seq chunk i.put_support_perflow
  | Message.Del_support_perflow hfl ->
    handle_del t op (fun () -> i.del_support_perflow hfl)
  | Message.Get_support_shared ->
    handle_get_shared t op ~what:"support-shared" i.get_support_shared
  | Message.Put_support_shared { seq; chunk } ->
    handle_put t op ~what:"support-shared" ~seq chunk i.put_support_shared
  | Message.Get_report_perflow hfl ->
    handle_get t op
      ~what:("report " ^ Openmb_net.Hfl.to_string hfl)
      (fun () -> i.get_report_perflow hfl)
  | Message.Put_report_perflow { seq; chunk } ->
    handle_put t op ~what:"report" ~seq chunk i.put_report_perflow
  | Message.Del_report_perflow hfl ->
    handle_del t op (fun () -> i.del_report_perflow hfl)
  | Message.Get_report_shared ->
    handle_get_shared t op ~what:"report-shared" i.get_report_shared
  | Message.Put_report_shared { seq; chunk } ->
    handle_put t op ~what:"report-shared" ~seq chunk i.put_report_shared
  | Message.Get_stats hfl ->
    exec t config_op_cost (fun () -> reply t op (Message.Stats_reply (i.stats hfl)))
  | Message.Enable_events { codes; key } ->
    Event.Filter.enable t.filter ~codes ~key;
    reply t op Message.Ack
  | Message.Disable_events { codes } ->
    Event.Filter.disable t.filter ~codes;
    reply t op Message.Ack
  | Message.Put_batch { seq; chunks } ->
    (* Deserialization cost is the sum over the batch — the work is the
       same as N individual puts — but the control-thread round trip,
       the reply and the controller-side ack processing are paid
       once. *)
    let cost =
      List.fold_left
        (fun acc c ->
          let dc = chunk_deserialize_cost i.cost c in
          Telemetry.observe t.h_apply (Time.to_seconds dc);
          Time.(acc + dc))
        Time.zero chunks
    in
    exec t cost (fun () ->
        let count = List.length chunks in
        let errors = ref [] in
        List.iteri
          (fun idx c ->
            match Southbound.put_chunk i c with
            | Ok () -> ()
            | Error e -> errors := (idx, e) :: !errors)
          chunks;
        let errors = List.rev !errors in
        record t ~kind:"put-batch"
          ~detail:(Printf.sprintf "n=%d errors=%d" count (List.length errors));
        let r = Message.Batch_ack { seq; count; errors } in
        ft_replace t.applied_seq seq r;
        reply t op r)
  | Message.Abort_perflow hfl ->
    exec t config_op_cost (fun () ->
        record t ~kind:"abort-perflow" ~detail:(Openmb_net.Hfl.to_string hfl);
        i.abort_perflow hfl;
        reply t op Message.Ack)
  | Message.Reprocess_packet { key; packet } ->
    (* Re-processing updates state but performs no external
       side-effects (§4.2.1).  It rides the MB's packet path, not the
       control thread, so no control CPU is charged here; the ack lets
       the controller's retry machinery know the event landed. *)
    record t ~kind:"event-proc"
      ~detail:
        (Printf.sprintf "%s %s" (Openmb_net.Hfl.to_string key)
           (Openmb_net.Packet.flow_label packet));
    i.process_packet packet ~side_effects:false;
    reply t op Message.Ack

let handle_request t { Message.op; tid; req } =
  if t.crashed then
    record t ~kind:"drop" ~detail:("crashed: " ^ Message.describe_request req)
  else if op asr 40 < t.ctrl_epoch then
    (* Fenced-out straggler from a deposed leader (see [ctrl_epoch]);
       its issuer is already silenced, so no reply is owed either. *)
    record t ~kind:"drop"
      ~detail:(Printf.sprintf "stale epoch op=%d: %s" op (Message.describe_request req))
  else begin
    if op asr 40 > t.ctrl_epoch then t.ctrl_epoch <- op asr 40;
    t.ops_handled <- t.ops_handled + 1;
    let seq_hit =
      match seq_of_request req with
      | Some seq -> (
        match ft_find t.applied_seq seq with
        | Some r -> Some (seq, r)
        | None -> None)
      | None -> None
    in
    match seq_hit with
    | Some (seq, r) ->
      (* Already-applied mutation (retry or duplicated delivery):
         replay the recorded outcome under the incoming op id without
         touching state. *)
      Telemetry.incr t.c_dedup;
      record t ~kind:"dedup" ~detail:(Printf.sprintf "seq=%d" seq);
      exec t Time.zero (fun () -> send_reply_raw t op r)
    | None -> (
      (* One probe decides all three op-id cases: unseen (entry absent),
         in flight with nothing sent yet (empty list), or already
         replied (replay). *)
      match ft_find t.ops op with
      | Some (_ :: _ as replies) ->
        Telemetry.incr t.c_dedup;
        record t ~kind:"dedup" ~detail:(Printf.sprintf "op=%d" op);
        exec t Time.zero (fun () -> List.iter (send_reply_raw t op) (List.rev replies))
      | Some [] -> record t ~kind:"dedup-drop" ~detail:(Printf.sprintf "op=%d" op)
      | None ->
        ft_replace t.ops op [];
        begin_op_span t op tid req;
        execute t op req)
  end
