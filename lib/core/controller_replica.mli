(** Replicated controller: a leader / warm-standby pair with
    log-shipping state replication and automatic failover.

    The OpenMB controller of §5 is a single process; this module wraps
    two of them into one highly-available deployment.  The leader
    serves the northbound API and streams a sequence-numbered op log —
    move intents and their outcomes — to the standby over a
    fault-injectable channel with cumulative acks and heartbeat-driven
    retransmission (snapshot re-sync bootstraps a rejoining peer).  The
    standby runs a silence-based failure detector; when the leader goes
    quiet past the failover timeout it promotes itself:

    - the deposed leader is {e fenced} ({!Controller.fence} — modeling
      lease expiry at the config store), so nothing it still tries can
      reach an agent;
    - a fresh {!Controller.t} re-adopts every agent with an
      epoch-shifted op/sequence base (the agents never crashed, so
      their dedup caches survive the old leader);
    - deferred deletes of recently completed moves are re-issued
      (idempotent: they only touch moved-marked entries);
    - every move still pending is rolled back via the transactional
      [abortPerflow] path and re-run.

    With only two replicas there is no quorum: a partition can promote
    the standby while the leader lives.  Fencing keeps that safe
    (split-brain cannot issue conflicting ops); the deposed leader
    rejoins as the new warm standby, so availability ping-pongs rather
    than halting.  All decisions are driven by the simulation clock and
    the deployment's fault plan, so whole-cluster runs stay
    deterministic. *)

type t

type config = {
  heartbeat_every : Openmb_sim.Time.t;
      (** Leader → standby heartbeat period; also the retransmission
          tick for unacknowledged log entries. *)
  failover_timeout : Openmb_sim.Time.t;
      (** Silence after which the standby promotes itself.  Must
          comfortably exceed [heartbeat_every] plus log-link jitter or
          healthy deployments will flap. *)
  log_latency : Openmb_sim.Time.t;
      (** Propagation latency of the replication channel. *)
  log_bandwidth : float;  (** Bytes/second of the replication channel. *)
  move_retry_backoff : Openmb_sim.Time.t;
      (** Base of the exponential backoff between replica-level re-runs
          of a failed move (attempt [n] waits [base * 2^n], capped). *)
  move_retry_cap : Openmb_sim.Time.t;
  max_move_attempts : int;
      (** Move attempts before the client sees the underlying error.
          Long soaks set this high: every injected pathology is
          bounded, so a retried move eventually lands. *)
  cleanup_linger : Openmb_sim.Time.t;
      (** How long a completed move stays replayable.  A takeover
          within this window re-issues the move's deferred delete,
          covering a leader that died between a move's completion and
          its quiescence-delayed cleanup.  Must exceed the controller
          quiescence by a healthy margin. *)
  ctrl : Controller.config;  (** Config for each member's controller. *)
}

val default_config : config
(** 100 ms heartbeats, 500 ms failover timeout, 200 µs / 125 MB/s log
    channel, up to 16 move attempts backing off 200 ms → 30 s, 20 s
    cleanup linger, {!Controller.default_config} members. *)

val create :
  Openmb_sim.Engine.t ->
  ?config:config ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?faults:Openmb_sim.Faults.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?names:string * string ->
  unit ->
  t
(** Create the pair ([names] defaults to [("ctrl-a", "ctrl-b")]); the
    first member starts as leader, the second as warm standby.  With
    [?faults], both the controller–MB channels and the replication link
    (plan name ["replica/log"]: log stream on the forward direction,
    acks on the reverse) suffer the plan's impairments.  The pair keeps
    heartbeat / detector timers armed until {!stop}, so drive the
    engine with [Engine.run ~until]. *)

val connect : t -> ?framing:Openmb_wire.Framing.t -> Mb_agent.t -> unit
(** Adopt an agent: connects it to the current leader and remembers it
    for re-adoption at every takeover.  Raises [Failure] if no leader
    is live. *)

val move :
  t ->
  src:string ->
  dst:string ->
  key:Openmb_net.Hfl.t ->
  on_done:((Controller.move_result, Errors.t) result -> unit) ->
  unit
(** Replicated {!Controller.move_internal}: the intent is logged to the
    standby before the first attempt, failed attempts are rolled back
    ([abortPerflow]) and re-run with exponential backoff, and a
    takeover resumes the move on the new leader.  [on_done] fires once,
    with the final outcome; a client-visible error means
    [max_move_attempts] genuine failures. *)

val kill : t -> name:string -> unit
(** Crash a member.  A killed leader simply goes silent — the standby's
    detector notices and promotes itself after [failover_timeout].
    Idempotent on a dead member. *)

val revive : t -> name:string -> unit
(** Restart a dead member.  If a leader is live it rejoins as warm
    standby and is re-synced via snapshot; if the whole pair was down
    it promotes itself on the log prefix it had applied before dying. *)

val stop : t -> unit
(** Cancel the heartbeat and detector timers so a final [Engine.run]
    can drain; in-flight moves are not interrupted but no further
    failover decisions are made. *)

(** {1 Introspection} *)

val telemetry : t -> Openmb_sim.Telemetry.t

val leader : t -> Controller.t option
(** The live leader's controller (for read-side northbound calls and
    counters); [None] while the whole pair is down. *)

val leader_name : t -> string option

val role : t -> name:string -> [ `Leader | `Standby | `Down ]

val epoch : t -> int
(** Takeover count; each promotion shifts the op/sequence id base of
    every re-adopted connection by [epoch lsl 40]. *)

val failovers : t -> int
val log_entries : t -> int
val log_retransmits : t -> int
val snapshots : t -> int
val heartbeats : t -> int

val moves_retried : t -> int
(** Replica-level re-runs after a failed attempt (op-level retries are
    counted by the member controllers). *)

val moves_rerun : t -> int
(** Pending moves resumed by takeovers. *)

val moves_resubmitted : t -> int
(** The subset of {!moves_rerun} whose intent never reached the
    standby's log — covered by client re-submission, not replay. *)

val deletes_reissued : t -> int
(** Deferred deletes replayed by takeovers. *)

val log_lag : t -> int
(** Replicable op-log entries appended but not yet acked by the
    standby (the ["replica.log_lag"] registry gauge — the health
    series the scraper watches for a dead replication link). *)

val pending_moves : t -> int
