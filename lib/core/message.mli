(** The OpenMB wire protocol.

    The controller and middleboxes exchange JSON messages to invoke
    operations, send and receive state, and raise and forward events
    (§7).  Every message has a faithful JSON encoding (used by the
    tests and available for logging); transfer costs on the simulated
    channels use {!request_wire_bytes}/{!reply_wire_bytes}, which agree
    with the encoded size without materializing the JSON on the hot
    path. *)

type op_id = int
(** Correlates replies with requests within one MB connection. *)

type request =
  | Get_config of Config_tree.path
  | Set_config of Config_tree.path * Openmb_wire.Json.t list
  | Del_config of Config_tree.path
  | Get_support_perflow of Openmb_net.Hfl.t
  | Put_support_perflow of { seq : int; chunk : Chunk.t }
  | Del_support_perflow of Openmb_net.Hfl.t
  | Get_support_shared
  | Put_support_shared of { seq : int; chunk : Chunk.t }
  | Get_report_perflow of Openmb_net.Hfl.t
  | Put_report_perflow of { seq : int; chunk : Chunk.t }
  | Del_report_perflow of Openmb_net.Hfl.t
  | Get_report_shared
  | Put_report_shared of { seq : int; chunk : Chunk.t }
  | Get_stats of Openmb_net.Hfl.t
  | Enable_events of { codes : string list; key : Openmb_net.Hfl.t }
  | Disable_events of { codes : string list }
  | Reprocess_packet of { key : Openmb_net.Hfl.t; packet : Openmb_net.Packet.t }
      (** Controller forwarding a re-process event to the destination
          MB. *)
  | Put_batch of { seq : int; chunks : Chunk.t list }
      (** Several state chunks installed with one message and one
          coalesced {!Batch_ack}: the controller's transfer pipeline
          batches streamed chunks instead of paying one put/ack round
          trip each.  Chunks self-describe their role and partition, so
          a batch may mix supporting and reporting state. *)
  | Abort_perflow of Openmb_net.Hfl.t
      (** Roll back an in-progress per-flow export: un-mark the
          exported-but-not-deleted entries matching the key so a later
          transfer can export them again.  Sent by the controller when
          a transactional move aborts. *)

(** Mutating requests that may be retried ([Put_*], {!Put_batch})
    carry a connection-scoped sequence number [seq]; the agent applies
    each sequence number at most once and replays the original reply
    for duplicates, making retries and duplicated deliveries
    idempotent. *)

type reply =
  | State_chunk of Chunk.t  (** One streamed piece of state during a get. *)
  | End_of_state of { count : int }  (** Terminates a get stream. *)
  | Ack  (** Successful put/del/set/enable/disable/reprocess. *)
  | Config_values of Config_tree.entry list
  | Stats_reply of Southbound.stats
  | Op_error of Errors.t
  | Batch_ack of { seq : int; count : int; errors : (int * Errors.t) list }
      (** Reply to {!Put_batch}: [count] chunks were processed in
          order; [errors] lists the zero-based indices that failed and
          why.  An empty [errors] acknowledges every chunk.  [seq]
          echoes the batch's sequence number. *)

type to_mb = { op : op_id; tid : int; req : request }
(** Controller → MB.  [tid] is the telemetry trace (causality) id: the
    controller stamps each southbound request with the id of the span
    that issued it, and the agent tags its own spans with the same id,
    linking both sides of an operation in an exported trace.  [0] means
    "untraced"; the JSON encoding omits the field in that case, and the
    binary encoding carries it as one varint after [op]. *)

type from_mb =
  | Reply of { op : op_id; reply : reply }
  | Event_msg of Event.t  (** MB-initiated, not tied to an op. *)

val request_to_json : to_mb -> Openmb_wire.Json.t
val request_of_json : Openmb_wire.Json.t -> to_mb
(** Raises [Invalid_argument] on messages not produced by
    {!request_to_json}. *)

val from_mb_to_json : from_mb -> Openmb_wire.Json.t
val from_mb_of_json : Openmb_wire.Json.t -> from_mb
(** Raises [Invalid_argument] on messages not produced by
    {!from_mb_to_json}. *)

(** {1 Wire strings}

    Each message also has a compact binary encoding
    ({!Openmb_wire.Framing.Binary}): a [0x42] tag byte followed by
    varint/fixed-width fields ({!Openmb_wire.Binary}).  The decoders
    accept either encoding — binary bodies are recognized by their tag
    byte, anything else is parsed as JSON — so a channel that never
    negotiated binary framing keeps working. *)

val request_to_wire : ?framing:Openmb_wire.Framing.t -> to_mb -> string
(** Encode under the given framing (default [Json]). *)

val request_of_wire : string -> to_mb
(** Decode either framing.  Raises [Openmb_wire.Binary.Decode_error] on
    malformed binary input and [Invalid_argument] /
    [Openmb_wire.Json.Parse_error] on malformed JSON. *)

val from_mb_to_wire : ?framing:Openmb_wire.Framing.t -> from_mb -> string
val from_mb_of_wire : string -> from_mb

val chunk_to_wire : Chunk.t -> string
(** Standalone length-prefixed binary frame for one state chunk (bulk
    state streams). *)

val chunk_of_wire : string -> Chunk.t

val request_wire_bytes : ?framing:Openmb_wire.Framing.t -> to_mb -> int
(** Wire size of the message; dominated by chunk/packet bodies for
    state-bearing messages.  JSON sizes are the prototype's estimates;
    binary sizes are exact (computed against a counting sink, including
    the frame's length prefix). *)

val reply_wire_bytes : ?framing:Openmb_wire.Framing.t -> from_mb -> int

val request_name : request -> string
(** The constructor's wire name (["getSupportPerflow"], …) as a static
    literal — suitable as a span name. *)

val describe_request : request -> string
(** Short label like ["getSupportPerflow nw_src=1.1.1.0/24"]. *)

val describe_reply : reply -> string
