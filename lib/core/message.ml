open Openmb_wire
open Openmb_net

type op_id = int

type request =
  | Get_config of Config_tree.path
  | Set_config of Config_tree.path * Json.t list
  | Del_config of Config_tree.path
  | Get_support_perflow of Hfl.t
  | Put_support_perflow of { seq : int; chunk : Chunk.t }
  | Del_support_perflow of Hfl.t
  | Get_support_shared
  | Put_support_shared of { seq : int; chunk : Chunk.t }
  | Get_report_perflow of Hfl.t
  | Put_report_perflow of { seq : int; chunk : Chunk.t }
  | Del_report_perflow of Hfl.t
  | Get_report_shared
  | Put_report_shared of { seq : int; chunk : Chunk.t }
  | Get_stats of Hfl.t
  | Enable_events of { codes : string list; key : Hfl.t }
  | Disable_events of { codes : string list }
  | Reprocess_packet of { key : Hfl.t; packet : Packet.t }
  | Put_batch of { seq : int; chunks : Chunk.t list }
  | Abort_perflow of Hfl.t

type reply =
  | State_chunk of Chunk.t
  | End_of_state of { count : int }
  | Ack
  | Config_values of Config_tree.entry list
  | Stats_reply of Southbound.stats
  | Op_error of Errors.t
  | Batch_ack of { seq : int; count : int; errors : (int * Errors.t) list }

type to_mb = { op : op_id; tid : int; req : request }

type from_mb = Reply of { op : op_id; reply : reply } | Event_msg of Event.t

(* ------------------------------------------------------------------ *)
(* JSON encodings                                                      *)
(* ------------------------------------------------------------------ *)

let hfl_to_json hfl = Json.String (Hfl.to_string hfl)
let hfl_of_json j = Hfl.of_string (Json.get_string j)
let path_to_json p = Json.String (Config_tree.path_to_string p)
let path_of_json j = Config_tree.path_of_string (Json.get_string j)

let chunk_to_json (c : Chunk.t) =
  Json.Assoc
    [
      ("kind", Json.String c.mb_kind);
      ("role", Json.String (Taxonomy.role_to_string c.role));
      ("partition", Json.String (Taxonomy.partition_to_string c.partition));
      ("key", hfl_to_json c.key);
      ("cipher", Json.String c.cipher);
    ]

let chunk_of_json j : Chunk.t =
  {
    mb_kind = Json.get_string (Json.member "kind" j);
    role = Taxonomy.role_of_string (Json.get_string (Json.member "role" j));
    partition =
      Taxonomy.partition_of_string (Json.get_string (Json.member "partition" j));
    key = hfl_of_json (Json.member "key" j);
    cipher = Json.get_string (Json.member "cipher" j);
  }

let flags_to_json (f : Packet.tcp_flags) =
  Json.Assoc
    [
      ("syn", Json.Bool f.syn);
      ("ack", Json.Bool f.ack);
      ("fin", Json.Bool f.fin);
      ("rst", Json.Bool f.rst);
    ]

let flags_of_json j : Packet.tcp_flags =
  {
    syn = Json.get_bool (Json.member "syn" j);
    ack = Json.get_bool (Json.member "ack" j);
    fin = Json.get_bool (Json.member "fin" j);
    rst = Json.get_bool (Json.member "rst" j);
  }

let app_to_json = function
  | Packet.Plain -> Json.Null
  | Packet.Http_request { method_; host; uri } ->
    Json.Assoc
      [
        ("t", Json.String "req");
        ("method", Json.String method_);
        ("host", Json.String host);
        ("uri", Json.String uri);
      ]
  | Packet.Http_response { status } ->
    Json.Assoc [ ("t", Json.String "resp"); ("status", Json.Int status) ]

let app_of_json = function
  | Json.Null -> Packet.Plain
  | j -> (
    match Json.get_string (Json.member "t" j) with
    | "req" ->
      Packet.Http_request
        {
          method_ = Json.get_string (Json.member "method" j);
          host = Json.get_string (Json.member "host" j);
          uri = Json.get_string (Json.member "uri" j);
        }
    | "resp" -> Packet.Http_response { status = Json.get_int (Json.member "status" j) }
    | s -> invalid_arg (Printf.sprintf "Message.app_of_json: %S" s))

let payload_to_json p =
  Json.Assoc
    [
      ("tokens", Json.List (Array.to_list (Array.map (fun t -> Json.Int t) (Payload.tokens p))));
      ("trailing", Json.Int (Payload.size_bytes p mod Payload.token_bytes));
    ]

let payload_of_json j =
  let tokens =
    Array.of_list (List.map Json.get_int (Json.get_list (Json.member "tokens" j)))
  in
  let trailing = Json.get_int (Json.member "trailing" j) in
  Payload.of_tokens_trailing tokens ~trailing

let segment_to_json = function
  | Packet.Literal p -> Json.Assoc [ ("t", Json.String "lit"); ("payload", payload_to_json p) ]
  | Packet.Shim { offset; len } ->
    Json.Assoc
      [ ("t", Json.String "shim"); ("offset", Json.Int offset); ("len", Json.Int len) ]

let segment_of_json j =
  match Json.get_string (Json.member "t" j) with
  | "lit" -> Packet.Literal (payload_of_json (Json.member "payload" j))
  | "shim" ->
    Packet.Shim
      { offset = Json.get_int (Json.member "offset" j); len = Json.get_int (Json.member "len" j) }
  | s -> invalid_arg (Printf.sprintf "Message.segment_of_json: %S" s)

let body_to_json = function
  | Packet.Raw p -> Json.Assoc [ ("t", Json.String "raw"); ("payload", payload_to_json p) ]
  | Packet.Encoded { cache_id; append_base; segments; orig } ->
    Json.Assoc
      [
        ("t", Json.String "enc");
        ("cache", Json.Int cache_id);
        ("base", Json.Int append_base);
        ("segments", Json.List (List.map segment_to_json segments));
        ("orig", payload_to_json orig);
      ]

let body_of_json j =
  match Json.get_string (Json.member "t" j) with
  | "raw" -> Packet.Raw (payload_of_json (Json.member "payload" j))
  | "enc" ->
    Packet.Encoded
      {
        cache_id = Json.get_int (Json.member "cache" j);
        append_base = Json.get_int (Json.member "base" j);
        segments = List.map segment_of_json (Json.get_list (Json.member "segments" j));
        orig = payload_of_json (Json.member "orig" j);
      }
  | s -> invalid_arg (Printf.sprintf "Message.body_of_json: %S" s)

let packet_to_json (p : Packet.t) =
  Json.Assoc
    [
      ("id", Json.Int p.id);
      ("ts", Json.Float (Openmb_sim.Time.to_seconds p.ts));
      ("src_ip", Json.String (Addr.to_string p.src_ip));
      ("dst_ip", Json.String (Addr.to_string p.dst_ip));
      ("src_port", Json.Int p.src_port);
      ("dst_port", Json.Int p.dst_port);
      ("proto", Json.String (Packet.proto_to_string p.proto));
      ("flags", flags_to_json p.flags);
      ("app", app_to_json p.app);
      ("body", body_to_json p.body);
    ]

let packet_of_json j : Packet.t =
  {
    id = Json.get_int (Json.member "id" j);
    ts = Openmb_sim.Time.seconds (Json.get_float (Json.member "ts" j));
    src_ip = Addr.of_string (Json.get_string (Json.member "src_ip" j));
    dst_ip = Addr.of_string (Json.get_string (Json.member "dst_ip" j));
    src_port = Json.get_int (Json.member "src_port" j);
    dst_port = Json.get_int (Json.member "dst_port" j);
    proto = Packet.proto_of_string (Json.get_string (Json.member "proto" j));
    flags = flags_of_json (Json.member "flags" j);
    app = app_of_json (Json.member "app" j);
    body = body_of_json (Json.member "body" j);
  }

let request_body_to_json = function
  | Get_config p -> ("getConfig", [ ("key", path_to_json p) ])
  | Set_config (p, vs) -> ("setConfig", [ ("key", path_to_json p); ("values", Json.List vs) ])
  | Del_config p -> ("delConfig", [ ("key", path_to_json p) ])
  | Get_support_perflow h -> ("getSupportPerflow", [ ("key", hfl_to_json h) ])
  | Put_support_perflow { seq; chunk } ->
    ("putSupportPerflow", [ ("seq", Json.Int seq); ("chunk", chunk_to_json chunk) ])
  | Del_support_perflow h -> ("delSupportPerflow", [ ("key", hfl_to_json h) ])
  | Get_support_shared -> ("getSupportShared", [])
  | Put_support_shared { seq; chunk } ->
    ("putSupportShared", [ ("seq", Json.Int seq); ("chunk", chunk_to_json chunk) ])
  | Get_report_perflow h -> ("getReportPerflow", [ ("key", hfl_to_json h) ])
  | Put_report_perflow { seq; chunk } ->
    ("putReportPerflow", [ ("seq", Json.Int seq); ("chunk", chunk_to_json chunk) ])
  | Del_report_perflow h -> ("delReportPerflow", [ ("key", hfl_to_json h) ])
  | Get_report_shared -> ("getReportShared", [])
  | Put_report_shared { seq; chunk } ->
    ("putReportShared", [ ("seq", Json.Int seq); ("chunk", chunk_to_json chunk) ])
  | Get_stats h -> ("getStats", [ ("key", hfl_to_json h) ])
  | Enable_events { codes; key } ->
    ( "enableEvents",
      [
        ("codes", Json.List (List.map (fun c -> Json.String c) codes));
        ("key", hfl_to_json key);
      ] )
  | Disable_events { codes } ->
    ("disableEvents", [ ("codes", Json.List (List.map (fun c -> Json.String c) codes)) ])
  | Reprocess_packet { key; packet } ->
    ("reprocessPacket", [ ("key", hfl_to_json key); ("packet", packet_to_json packet) ])
  | Put_batch { seq; chunks } ->
    ( "putBatch",
      [ ("seq", Json.Int seq); ("chunks", Json.List (List.map chunk_to_json chunks)) ] )
  | Abort_perflow h -> ("abortPerflow", [ ("key", hfl_to_json h) ])

let request_to_json { op; tid; req } =
  let name, fields = request_body_to_json req in
  (* The trace id is omitted when absent so untraced runs produce the
     original (pre-telemetry) JSON byte-for-byte. *)
  let fields = if tid = 0 then fields else ("tid", Json.Int tid) :: fields in
  Json.Assoc (("op", Json.Int op) :: ("type", Json.String name) :: fields)

let request_of_json j =
  let op = Json.get_int (Json.member "op" j) in
  let tid = match Json.member "tid" j with Json.Null -> 0 | v -> Json.get_int v in
  let key_field () = Json.member "key" j in
  let seq_field () = Json.get_int (Json.member "seq" j) in
  let chunk_field () = chunk_of_json (Json.member "chunk" j) in
  let req =
    match Json.get_string (Json.member "type" j) with
    | "getConfig" -> Get_config (path_of_json (key_field ()))
    | "setConfig" ->
      Set_config (path_of_json (key_field ()), Json.get_list (Json.member "values" j))
    | "delConfig" -> Del_config (path_of_json (key_field ()))
    | "getSupportPerflow" -> Get_support_perflow (hfl_of_json (key_field ()))
    | "putSupportPerflow" -> Put_support_perflow { seq = seq_field (); chunk = chunk_field () }
    | "delSupportPerflow" -> Del_support_perflow (hfl_of_json (key_field ()))
    | "getSupportShared" -> Get_support_shared
    | "putSupportShared" -> Put_support_shared { seq = seq_field (); chunk = chunk_field () }
    | "getReportPerflow" -> Get_report_perflow (hfl_of_json (key_field ()))
    | "putReportPerflow" -> Put_report_perflow { seq = seq_field (); chunk = chunk_field () }
    | "delReportPerflow" -> Del_report_perflow (hfl_of_json (key_field ()))
    | "getReportShared" -> Get_report_shared
    | "putReportShared" -> Put_report_shared { seq = seq_field (); chunk = chunk_field () }
    | "getStats" -> Get_stats (hfl_of_json (key_field ()))
    | "enableEvents" ->
      Enable_events
        {
          codes = List.map Json.get_string (Json.get_list (Json.member "codes" j));
          key = hfl_of_json (key_field ());
        }
    | "disableEvents" ->
      Disable_events
        { codes = List.map Json.get_string (Json.get_list (Json.member "codes" j)) }
    | "reprocessPacket" ->
      Reprocess_packet
        { key = hfl_of_json (key_field ()); packet = packet_of_json (Json.member "packet" j) }
    | "putBatch" ->
      Put_batch
        {
          seq = seq_field ();
          chunks = List.map chunk_of_json (Json.get_list (Json.member "chunks" j));
        }
    | "abortPerflow" -> Abort_perflow (hfl_of_json (key_field ()))
    | s -> invalid_arg (Printf.sprintf "Message.request_of_json: unknown type %S" s)
  in
  { op; tid; req }

let stats_to_json (s : Southbound.stats) =
  Json.Assoc
    [
      ("pf_support_chunks", Json.Int s.perflow_support_chunks);
      ("pf_report_chunks", Json.Int s.perflow_report_chunks);
      ("pf_support_bytes", Json.Int s.perflow_support_bytes);
      ("pf_report_bytes", Json.Int s.perflow_report_bytes);
      ("sh_support_bytes", Json.Int s.shared_support_bytes);
      ("sh_report_bytes", Json.Int s.shared_report_bytes);
    ]

let stats_of_json j : Southbound.stats =
  {
    perflow_support_chunks = Json.get_int (Json.member "pf_support_chunks" j);
    perflow_report_chunks = Json.get_int (Json.member "pf_report_chunks" j);
    perflow_support_bytes = Json.get_int (Json.member "pf_support_bytes" j);
    perflow_report_bytes = Json.get_int (Json.member "pf_report_bytes" j);
    shared_support_bytes = Json.get_int (Json.member "sh_support_bytes" j);
    shared_report_bytes = Json.get_int (Json.member "sh_report_bytes" j);
  }

let error_to_json (e : Errors.t) =
  let code, arg =
    match e with
    | Granularity_too_fine -> ("granularity", "")
    | Unknown_mb s -> ("unknown_mb", s)
    | Unknown_config_key s -> ("unknown_config_key", s)
    | Illegal_operation s -> ("illegal_operation", s)
    | Bad_chunk s -> ("bad_chunk", s)
    | Op_failed s -> ("op_failed", s)
    | Timeout s -> ("timeout", s)
    | Move_aborted s -> ("move_aborted", s)
  in
  Json.Assoc [ ("code", Json.String code); ("arg", Json.String arg) ]

let error_of_json j : Errors.t =
  let arg = Json.get_string (Json.member "arg" j) in
  match Json.get_string (Json.member "code" j) with
  | "granularity" -> Granularity_too_fine
  | "unknown_mb" -> Unknown_mb arg
  | "unknown_config_key" -> Unknown_config_key arg
  | "illegal_operation" -> Illegal_operation arg
  | "bad_chunk" -> Bad_chunk arg
  | "op_failed" -> Op_failed arg
  | "timeout" -> Timeout arg
  | "move_aborted" -> Move_aborted arg
  | s -> invalid_arg (Printf.sprintf "Message.error_of_json: %S" s)

let entry_to_json (e : Config_tree.entry) =
  Json.Assoc
    [ ("key", Json.String (Config_tree.path_to_string e.path)); ("values", Json.List e.values) ]

let entry_of_json j : Config_tree.entry =
  {
    path = Config_tree.path_of_string (Json.get_string (Json.member "key" j));
    values = Json.get_list (Json.member "values" j);
  }

let reply_to_json = function
  | State_chunk c -> ("stateChunk", [ ("chunk", chunk_to_json c) ])
  | End_of_state { count } -> ("endOfState", [ ("count", Json.Int count) ])
  | Ack -> ("ack", [])
  | Config_values es -> ("configValues", [ ("entries", Json.List (List.map entry_to_json es)) ])
  | Stats_reply s -> ("stats", [ ("stats", stats_to_json s) ])
  | Op_error e -> ("error", [ ("error", error_to_json e) ])
  | Batch_ack { seq; count; errors } ->
    ( "batchAck",
      [
        ("seq", Json.Int seq);
        ("count", Json.Int count);
        ( "errors",
          Json.List
            (List.map
               (fun (i, e) ->
                 Json.Assoc [ ("i", Json.Int i); ("error", error_to_json e) ])
               errors) );
      ] )

let event_to_json = function
  | Event.Reprocess { key; packet } ->
    Json.Assoc
      [
        ("t", Json.String "reprocess");
        ("key", hfl_to_json key);
        ("packet", packet_to_json packet);
      ]
  | Event.Introspect { code; key; info } ->
    Json.Assoc
      [
        ("t", Json.String "introspect");
        ("code", Json.String code);
        ("key", hfl_to_json key);
        ("info", info);
      ]

let event_of_json j =
  match Json.get_string (Json.member "t" j) with
  | "reprocess" ->
    Event.Reprocess
      { key = hfl_of_json (Json.member "key" j); packet = packet_of_json (Json.member "packet" j) }
  | "introspect" ->
    Event.Introspect
      {
        code = Json.get_string (Json.member "code" j);
        key = hfl_of_json (Json.member "key" j);
        info = Json.member "info" j;
      }
  | s -> invalid_arg (Printf.sprintf "Message.event_of_json: %S" s)

let from_mb_to_json = function
  | Reply { op; reply } ->
    let name, fields = reply_to_json reply in
    Json.Assoc (("op", Json.Int op) :: ("type", Json.String name) :: fields)
  | Event_msg ev -> Json.Assoc [ ("type", Json.String "event"); ("event", event_to_json ev) ]

let from_mb_of_json j =
  match Json.get_string (Json.member "type" j) with
  | "event" -> Event_msg (event_of_json (Json.member "event" j))
  | name ->
    let op = Json.get_int (Json.member "op" j) in
    let reply =
      match name with
      | "stateChunk" -> State_chunk (chunk_of_json (Json.member "chunk" j))
      | "endOfState" -> End_of_state { count = Json.get_int (Json.member "count" j) }
      | "ack" -> Ack
      | "configValues" ->
        Config_values (List.map entry_of_json (Json.get_list (Json.member "entries" j)))
      | "stats" -> Stats_reply (stats_of_json (Json.member "stats" j))
      | "error" -> Op_error (error_of_json (Json.member "error" j))
      | "batchAck" ->
        Batch_ack
          {
            seq = Json.get_int (Json.member "seq" j);
            count = Json.get_int (Json.member "count" j);
            errors =
              List.map
                (fun ej ->
                  (Json.get_int (Json.member "i" ej), error_of_json (Json.member "error" ej)))
                (Json.get_list (Json.member "errors" j));
          }
      | s -> invalid_arg (Printf.sprintf "Message.from_mb_of_json: unknown type %S" s)
    in
    Reply { op; reply }

(* ------------------------------------------------------------------ *)
(* Binary encoding                                                     *)
(*                                                                     *)
(* Compact alternative to the JSON encoding, negotiated per channel    *)
(* (Framing.Binary).  Bodies start with a 0x42 tag so decoders can     *)
(* fall back to JSON for peers that never negotiated: JSON text starts *)
(* with '{'.  Writers go through a Binary.sink, so the exact wire size *)
(* is computable without materializing the bytes.                      *)
(* ------------------------------------------------------------------ *)

let binary_tag = 'B'

let proto_to_u8 = function Packet.Tcp -> 0 | Packet.Udp -> 1 | Packet.Icmp -> 2

let proto_of_u8 = function
  | 0 -> Packet.Tcp
  | 1 -> Packet.Udp
  | 2 -> Packet.Icmp
  | n -> raise (Binary.Decode_error (Printf.sprintf "Message: proto tag %d" n))

let bad_tag what n =
  raise (Binary.Decode_error (Printf.sprintf "Message: unknown %s tag %d" what n))

let w_hfl k hfl =
  Binary.uvarint k (List.length hfl);
  List.iter
    (fun f ->
      match f with
      | Hfl.Src_ip p ->
        Binary.u8 k 0;
        Binary.u32 k (Addr.to_int (Addr.prefix_base p));
        Binary.u8 k (Addr.prefix_len p)
      | Hfl.Dst_ip p ->
        Binary.u8 k 1;
        Binary.u32 k (Addr.to_int (Addr.prefix_base p));
        Binary.u8 k (Addr.prefix_len p)
      | Hfl.Src_port v ->
        Binary.u8 k 2;
        Binary.u16 k v
      | Hfl.Dst_port v ->
        Binary.u8 k 3;
        Binary.u16 k v
      | Hfl.Proto v ->
        Binary.u8 k 4;
        Binary.u8 k (proto_to_u8 v))
    hfl

let r_hfl r =
  let n = Binary.get_uvarint r in
  List.init n (fun _ ->
      match Binary.get_u8 r with
      | 0 ->
        let base = Binary.get_u32 r in
        Hfl.Src_ip (Addr.prefix (Addr.of_int base) (Binary.get_u8 r))
      | 1 ->
        let base = Binary.get_u32 r in
        Hfl.Dst_ip (Addr.prefix (Addr.of_int base) (Binary.get_u8 r))
      | 2 -> Hfl.Src_port (Binary.get_u16 r)
      | 3 -> Hfl.Dst_port (Binary.get_u16 r)
      | 4 -> Hfl.Proto (proto_of_u8 (Binary.get_u8 r))
      | n -> bad_tag "hfl field" n)

let w_path k p = Binary.str k (Config_tree.path_to_string p)
let r_path r = Config_tree.path_of_string (Binary.get_str r)

let role_to_u8 = function
  | Taxonomy.Configuring -> 0
  | Taxonomy.Supporting -> 1
  | Taxonomy.Reporting -> 2

let role_of_u8 = function
  | 0 -> Taxonomy.Configuring
  | 1 -> Taxonomy.Supporting
  | 2 -> Taxonomy.Reporting
  | n -> bad_tag "role" n

let w_chunk k (c : Chunk.t) =
  Binary.str k c.mb_kind;
  Binary.u8 k (role_to_u8 c.role);
  Binary.u8 k (match c.partition with Taxonomy.Per_flow -> 0 | Taxonomy.Shared -> 1);
  w_hfl k c.key;
  Binary.str k c.cipher

let r_chunk r : Chunk.t =
  let mb_kind = Binary.get_str r in
  let role = role_of_u8 (Binary.get_u8 r) in
  let partition =
    match Binary.get_u8 r with
    | 0 -> Taxonomy.Per_flow
    | 1 -> Taxonomy.Shared
    | n -> bad_tag "partition" n
  in
  let key = r_hfl r in
  let cipher = Binary.get_str r in
  { mb_kind; role; partition; key; cipher }

let w_flags k (f : Packet.tcp_flags) =
  Binary.u8 k
    ((if f.syn then 1 else 0)
    lor (if f.ack then 2 else 0)
    lor (if f.fin then 4 else 0)
    lor if f.rst then 8 else 0)

let r_flags r : Packet.tcp_flags =
  let b = Binary.get_u8 r in
  { syn = b land 1 <> 0; ack = b land 2 <> 0; fin = b land 4 <> 0; rst = b land 8 <> 0 }

let w_app k = function
  | Packet.Plain -> Binary.u8 k 0
  | Packet.Http_request { method_; host; uri } ->
    Binary.u8 k 1;
    Binary.str k method_;
    Binary.str k host;
    Binary.str k uri
  | Packet.Http_response { status } ->
    Binary.u8 k 2;
    Binary.uvarint k status

let r_app r =
  match Binary.get_u8 r with
  | 0 -> Packet.Plain
  | 1 ->
    let method_ = Binary.get_str r in
    let host = Binary.get_str r in
    Packet.Http_request { method_; host; uri = Binary.get_str r }
  | 2 -> Packet.Http_response { status = Binary.get_uvarint r }
  | n -> bad_tag "app" n

let w_payload k p =
  let tokens = Payload.tokens p in
  Binary.uvarint k (Array.length tokens);
  Array.iter (Binary.varint k) tokens;
  Binary.uvarint k (Payload.size_bytes p mod Payload.token_bytes)

let r_payload r =
  let n = Binary.get_uvarint r in
  let tokens = Array.init n (fun _ -> Binary.get_varint r) in
  Payload.of_tokens_trailing tokens ~trailing:(Binary.get_uvarint r)

let w_segment k = function
  | Packet.Literal p ->
    Binary.u8 k 0;
    w_payload k p
  | Packet.Shim { offset; len } ->
    Binary.u8 k 1;
    Binary.uvarint k offset;
    Binary.uvarint k len

let r_segment r =
  match Binary.get_u8 r with
  | 0 -> Packet.Literal (r_payload r)
  | 1 ->
    let offset = Binary.get_uvarint r in
    Packet.Shim { offset; len = Binary.get_uvarint r }
  | n -> bad_tag "segment" n

let w_body k = function
  | Packet.Raw p ->
    Binary.u8 k 0;
    w_payload k p
  | Packet.Encoded { cache_id; append_base; segments; orig } ->
    Binary.u8 k 1;
    Binary.varint k cache_id;
    Binary.varint k append_base;
    Binary.uvarint k (List.length segments);
    List.iter (w_segment k) segments;
    w_payload k orig

let r_body r =
  match Binary.get_u8 r with
  | 0 -> Packet.Raw (r_payload r)
  | 1 ->
    let cache_id = Binary.get_varint r in
    let append_base = Binary.get_varint r in
    let nseg = Binary.get_uvarint r in
    let segments = List.init nseg (fun _ -> r_segment r) in
    Packet.Encoded { cache_id; append_base; segments; orig = r_payload r }
  | n -> bad_tag "body" n

let w_packet k (p : Packet.t) =
  Binary.uvarint k p.id;
  Binary.f64 k (Openmb_sim.Time.to_seconds p.ts);
  Binary.u32 k (Addr.to_int p.src_ip);
  Binary.u32 k (Addr.to_int p.dst_ip);
  Binary.u16 k p.src_port;
  Binary.u16 k p.dst_port;
  Binary.u8 k (proto_to_u8 p.proto);
  w_flags k p.flags;
  w_app k p.app;
  w_body k p.body

let r_packet r : Packet.t =
  let id = Binary.get_uvarint r in
  let ts = Openmb_sim.Time.seconds (Binary.get_f64 r) in
  let src_ip = Addr.of_int (Binary.get_u32 r) in
  let dst_ip = Addr.of_int (Binary.get_u32 r) in
  let src_port = Binary.get_u16 r in
  let dst_port = Binary.get_u16 r in
  let proto = proto_of_u8 (Binary.get_u8 r) in
  let flags = r_flags r in
  let app = r_app r in
  { id; ts; src_ip; dst_ip; src_port; dst_port; proto; flags; app; body = r_body r }

let rec w_json k = function
  | Json.Null -> Binary.u8 k 0
  | Json.Bool b ->
    Binary.u8 k 1;
    Binary.u8 k (if b then 1 else 0)
  | Json.Int v ->
    Binary.u8 k 2;
    Binary.varint k v
  | Json.Float v ->
    Binary.u8 k 3;
    Binary.f64 k v
  | Json.String s ->
    Binary.u8 k 4;
    Binary.str k s
  | Json.List items ->
    Binary.u8 k 5;
    Binary.uvarint k (List.length items);
    List.iter (w_json k) items
  | Json.Assoc fields ->
    Binary.u8 k 6;
    Binary.uvarint k (List.length fields);
    List.iter
      (fun (name, v) ->
        Binary.str k name;
        w_json k v)
      fields

let rec r_json r =
  match Binary.get_u8 r with
  | 0 -> Json.Null
  | 1 -> Json.Bool (Binary.get_u8 r <> 0)
  | 2 -> Json.Int (Binary.get_varint r)
  | 3 -> Json.Float (Binary.get_f64 r)
  | 4 -> Json.String (Binary.get_str r)
  | 5 ->
    let n = Binary.get_uvarint r in
    Json.List (List.init n (fun _ -> r_json r))
  | 6 ->
    let n = Binary.get_uvarint r in
    Json.Assoc
      (List.init n (fun _ ->
           let name = Binary.get_str r in
           (name, r_json r)))
  | n -> bad_tag "json" n

let w_string_list k l =
  Binary.uvarint k (List.length l);
  List.iter (Binary.str k) l

let r_string_list r =
  let n = Binary.get_uvarint r in
  List.init n (fun _ -> Binary.get_str r)

let w_json_list k l =
  Binary.uvarint k (List.length l);
  List.iter (w_json k) l

let r_json_list r =
  let n = Binary.get_uvarint r in
  List.init n (fun _ -> r_json r)

let request_write k { op; tid; req } =
  k.Binary.put_char binary_tag;
  Binary.uvarint k op;
  Binary.uvarint k tid;
  match req with
  | Get_config p ->
    Binary.u8 k 0;
    w_path k p
  | Set_config (p, vs) ->
    Binary.u8 k 1;
    w_path k p;
    w_json_list k vs
  | Del_config p ->
    Binary.u8 k 2;
    w_path k p
  | Get_support_perflow h ->
    Binary.u8 k 3;
    w_hfl k h
  | Put_support_perflow { seq; chunk } ->
    Binary.u8 k 4;
    Binary.uvarint k seq;
    w_chunk k chunk
  | Del_support_perflow h ->
    Binary.u8 k 5;
    w_hfl k h
  | Get_support_shared -> Binary.u8 k 6
  | Put_support_shared { seq; chunk } ->
    Binary.u8 k 7;
    Binary.uvarint k seq;
    w_chunk k chunk
  | Get_report_perflow h ->
    Binary.u8 k 8;
    w_hfl k h
  | Put_report_perflow { seq; chunk } ->
    Binary.u8 k 9;
    Binary.uvarint k seq;
    w_chunk k chunk
  | Del_report_perflow h ->
    Binary.u8 k 10;
    w_hfl k h
  | Get_report_shared -> Binary.u8 k 11
  | Put_report_shared { seq; chunk } ->
    Binary.u8 k 12;
    Binary.uvarint k seq;
    w_chunk k chunk
  | Get_stats h ->
    Binary.u8 k 13;
    w_hfl k h
  | Enable_events { codes; key } ->
    Binary.u8 k 14;
    w_string_list k codes;
    w_hfl k key
  | Disable_events { codes } ->
    Binary.u8 k 15;
    w_string_list k codes
  | Reprocess_packet { key; packet } ->
    Binary.u8 k 16;
    w_hfl k key;
    w_packet k packet
  | Put_batch { seq; chunks } ->
    Binary.u8 k 17;
    Binary.uvarint k seq;
    Binary.uvarint k (List.length chunks);
    List.iter (w_chunk k) chunks
  | Abort_perflow h ->
    Binary.u8 k 18;
    w_hfl k h

let request_read r =
  let op = Binary.get_uvarint r in
  let tid = Binary.get_uvarint r in
  let req =
    match Binary.get_u8 r with
    | 0 -> Get_config (r_path r)
    | 1 ->
      let p = r_path r in
      Set_config (p, r_json_list r)
    | 2 -> Del_config (r_path r)
    | 3 -> Get_support_perflow (r_hfl r)
    | 4 ->
      let seq = Binary.get_uvarint r in
      Put_support_perflow { seq; chunk = r_chunk r }
    | 5 -> Del_support_perflow (r_hfl r)
    | 6 -> Get_support_shared
    | 7 ->
      let seq = Binary.get_uvarint r in
      Put_support_shared { seq; chunk = r_chunk r }
    | 8 -> Get_report_perflow (r_hfl r)
    | 9 ->
      let seq = Binary.get_uvarint r in
      Put_report_perflow { seq; chunk = r_chunk r }
    | 10 -> Del_report_perflow (r_hfl r)
    | 11 -> Get_report_shared
    | 12 ->
      let seq = Binary.get_uvarint r in
      Put_report_shared { seq; chunk = r_chunk r }
    | 13 -> Get_stats (r_hfl r)
    | 14 ->
      let codes = r_string_list r in
      Enable_events { codes; key = r_hfl r }
    | 15 -> Disable_events { codes = r_string_list r }
    | 16 ->
      let key = r_hfl r in
      Reprocess_packet { key; packet = r_packet r }
    | 17 ->
      let seq = Binary.get_uvarint r in
      let n = Binary.get_uvarint r in
      Put_batch { seq; chunks = List.init n (fun _ -> r_chunk r) }
    | 18 -> Abort_perflow (r_hfl r)
    | n -> bad_tag "request" n
  in
  { op; tid; req }

let error_to_u8 : Errors.t -> int = function
  | Granularity_too_fine -> 0
  | Unknown_mb _ -> 1
  | Unknown_config_key _ -> 2
  | Illegal_operation _ -> 3
  | Bad_chunk _ -> 4
  | Op_failed _ -> 5
  | Timeout _ -> 6
  | Move_aborted _ -> 7

let error_arg : Errors.t -> string = function
  | Granularity_too_fine -> ""
  | Unknown_mb s | Unknown_config_key s | Illegal_operation s | Bad_chunk s
  | Op_failed s | Timeout s | Move_aborted s ->
    s

let w_error k e =
  Binary.u8 k (error_to_u8 e);
  Binary.str k (error_arg e)

let r_error r : Errors.t =
  let code = Binary.get_u8 r in
  let arg = Binary.get_str r in
  match code with
  | 0 -> Granularity_too_fine
  | 1 -> Unknown_mb arg
  | 2 -> Unknown_config_key arg
  | 3 -> Illegal_operation arg
  | 4 -> Bad_chunk arg
  | 5 -> Op_failed arg
  | 6 -> Timeout arg
  | 7 -> Move_aborted arg
  | n -> bad_tag "error" n

let w_stats k (s : Southbound.stats) =
  Binary.uvarint k s.perflow_support_chunks;
  Binary.uvarint k s.perflow_report_chunks;
  Binary.uvarint k s.perflow_support_bytes;
  Binary.uvarint k s.perflow_report_bytes;
  Binary.uvarint k s.shared_support_bytes;
  Binary.uvarint k s.shared_report_bytes

let r_stats r : Southbound.stats =
  let perflow_support_chunks = Binary.get_uvarint r in
  let perflow_report_chunks = Binary.get_uvarint r in
  let perflow_support_bytes = Binary.get_uvarint r in
  let perflow_report_bytes = Binary.get_uvarint r in
  let shared_support_bytes = Binary.get_uvarint r in
  {
    perflow_support_chunks;
    perflow_report_chunks;
    perflow_support_bytes;
    perflow_report_bytes;
    shared_support_bytes;
    shared_report_bytes = Binary.get_uvarint r;
  }

let w_entry k (e : Config_tree.entry) =
  w_path k e.path;
  w_json_list k e.values

let r_entry r : Config_tree.entry =
  let path = r_path r in
  { path; values = r_json_list r }

let w_event k = function
  | Event.Reprocess { key; packet } ->
    Binary.u8 k 0;
    w_hfl k key;
    w_packet k packet
  | Event.Introspect { code; key; info } ->
    Binary.u8 k 1;
    Binary.str k code;
    w_hfl k key;
    w_json k info

let r_event r =
  match Binary.get_u8 r with
  | 0 ->
    let key = r_hfl r in
    Event.Reprocess { key; packet = r_packet r }
  | 1 ->
    let code = Binary.get_str r in
    let key = r_hfl r in
    Event.Introspect { code; key; info = r_json r }
  | n -> bad_tag "event" n

let from_mb_write k = function
  | Reply { op; reply } ->
    k.Binary.put_char binary_tag;
    Binary.u8 k 0;
    Binary.uvarint k op;
    (match reply with
    | State_chunk c ->
      Binary.u8 k 0;
      w_chunk k c
    | End_of_state { count } ->
      Binary.u8 k 1;
      Binary.uvarint k count
    | Ack -> Binary.u8 k 2
    | Config_values es ->
      Binary.u8 k 3;
      Binary.uvarint k (List.length es);
      List.iter (w_entry k) es
    | Stats_reply s ->
      Binary.u8 k 4;
      w_stats k s
    | Op_error e ->
      Binary.u8 k 5;
      w_error k e
    | Batch_ack { seq; count; errors } ->
      Binary.u8 k 6;
      Binary.uvarint k seq;
      Binary.uvarint k count;
      Binary.uvarint k (List.length errors);
      List.iter
        (fun (i, e) ->
          Binary.uvarint k i;
          w_error k e)
        errors)
  | Event_msg ev ->
    k.Binary.put_char binary_tag;
    Binary.u8 k 1;
    w_event k ev

let from_mb_read r =
  match Binary.get_u8 r with
  | 0 ->
    let op = Binary.get_uvarint r in
    let reply =
      match Binary.get_u8 r with
      | 0 -> State_chunk (r_chunk r)
      | 1 -> End_of_state { count = Binary.get_uvarint r }
      | 2 -> Ack
      | 3 ->
        let n = Binary.get_uvarint r in
        Config_values (List.init n (fun _ -> r_entry r))
      | 4 -> Stats_reply (r_stats r)
      | 5 -> Op_error (r_error r)
      | 6 ->
        let seq = Binary.get_uvarint r in
        let count = Binary.get_uvarint r in
        let n_err = Binary.get_uvarint r in
        Batch_ack
          {
            seq;
            count;
            errors =
              List.init n_err (fun _ ->
                  let i = Binary.get_uvarint r in
                  (i, r_error r));
          }
      | n -> bad_tag "reply" n
    in
    Reply { op; reply }
  | 1 -> Event_msg (r_event r)
  | n -> bad_tag "from_mb" n

(* ------------------------------------------------------------------ *)
(* Wire strings                                                        *)
(* ------------------------------------------------------------------ *)

let consumed what (r : Binary.reader) =
  if r.pos <> String.length r.src then
    raise
      (Binary.Decode_error
         (Printf.sprintf "Message: %d trailing bytes after %s"
            (String.length r.src - r.pos) what))

let to_wire write_binary to_json ~framing v =
  match framing with
  | Framing.Json -> Json.to_string (to_json v)
  | Framing.Binary ->
    let buf = Buffer.create 128 in
    write_binary (Binary.buffer_sink buf) v;
    Buffer.contents buf

let of_wire read_binary of_json what s =
  if String.length s > 0 && s.[0] = binary_tag then begin
    let r = Binary.reader ~pos:1 s in
    let v = read_binary r in
    consumed what r;
    v
  end
  else of_json (Json.of_string s)

let request_to_wire ?(framing = Framing.Json) m =
  to_wire request_write request_to_json ~framing m

let request_of_wire s = of_wire request_read request_of_json "request" s

let from_mb_to_wire ?(framing = Framing.Json) m =
  to_wire from_mb_write from_mb_to_json ~framing m

let from_mb_of_wire s = of_wire from_mb_read from_mb_of_json "reply/event" s

let chunk_to_wire c =
  let buf = Buffer.create 128 in
  w_chunk (Binary.buffer_sink buf) c;
  Binary.frame (Buffer.contents buf)

let chunk_of_wire s =
  let r = Binary.reader s in
  let body = Binary.unframe r in
  consumed "chunk frame" r;
  let br = Binary.reader body in
  let c = r_chunk br in
  consumed "chunk" br;
  c

(* ------------------------------------------------------------------ *)
(* Wire sizes                                                          *)
(* ------------------------------------------------------------------ *)

(* JSON framing overhead covering the op id, type tag and JSON
   punctuation.  State- and packet-bearing messages avoid materializing
   the (large) JSON text on the hot path; everything else measures the
   actual encoding.  The binary sizes are exact: the writers run
   against a counting sink (no bytes materialized), plus the u32
   length prefix of the stream frame. *)
let json_overhead = 48

let counted write v =
  let k, count = Binary.counting_sink () in
  write k v;
  4 + count ()

let request_wire_bytes ?(framing:Framing.t = Framing.Json) m =
  match framing with
  | Framing.Binary -> counted request_write m
  | Framing.Json -> (
    match m.req with
    | Put_support_perflow { chunk = c; _ }
    | Put_support_shared { chunk = c; _ }
    | Put_report_perflow { chunk = c; _ }
    | Put_report_shared { chunk = c; _ } ->
      json_overhead + Chunk.size_bytes c + String.length (Hfl.to_string c.key)
    | Put_batch { chunks; _ } ->
      (* One message envelope plus, per chunk, the chunk object's own
         punctuation — sized like a single put so batching N chunks
         saves exactly N-1 envelopes on the simulated channel. *)
      List.fold_left
        (fun acc c ->
          acc + json_overhead + Chunk.size_bytes c + String.length (Hfl.to_string c.key))
        json_overhead chunks
    | Reprocess_packet { key; packet } ->
      json_overhead + Packet.wire_bytes packet
      + String.length (Hfl.to_string key)
    | Get_config _ | Set_config _ | Del_config _ | Get_support_perflow _
    | Del_support_perflow _ | Get_support_shared | Get_report_perflow _
    | Del_report_perflow _ | Get_report_shared | Get_stats _ | Enable_events _
    | Disable_events _ | Abort_perflow _ ->
      Json.wire_size (request_to_json m))

let reply_wire_bytes ?(framing:Framing.t = Framing.Json) m =
  match framing with
  | Framing.Binary -> counted from_mb_write m
  | Framing.Json -> (
    match m with
    | Reply { reply = State_chunk c; _ } ->
      json_overhead + Chunk.size_bytes c + String.length (Hfl.to_string c.key)
    | Event_msg ev -> json_overhead + Event.wire_bytes ev
    | Reply
        {
          op;
          reply =
            ( End_of_state _ | Ack | Config_values _ | Stats_reply _ | Op_error _
            | Batch_ack _ ) as reply;
        } ->
      Json.wire_size (from_mb_to_json (Reply { op; reply })))

(* ------------------------------------------------------------------ *)
(* Descriptions                                                        *)
(* ------------------------------------------------------------------ *)

(* Constructor name as a static literal: span names intern these, so
   stamping a span from a request allocates nothing after first use. *)
let request_name = function
  | Get_config _ -> "getConfig"
  | Set_config _ -> "setConfig"
  | Del_config _ -> "delConfig"
  | Get_support_perflow _ -> "getSupportPerflow"
  | Put_support_perflow _ -> "putSupportPerflow"
  | Del_support_perflow _ -> "delSupportPerflow"
  | Get_support_shared -> "getSupportShared"
  | Put_support_shared _ -> "putSupportShared"
  | Get_report_perflow _ -> "getReportPerflow"
  | Put_report_perflow _ -> "putReportPerflow"
  | Del_report_perflow _ -> "delReportPerflow"
  | Get_report_shared -> "getReportShared"
  | Put_report_shared _ -> "putReportShared"
  | Get_stats _ -> "getStats"
  | Enable_events _ -> "enableEvents"
  | Disable_events _ -> "disableEvents"
  | Reprocess_packet _ -> "reprocessPacket"
  | Put_batch _ -> "putBatch"
  | Abort_perflow _ -> "abortPerflow"

let describe_request req =
  let name, _ = request_body_to_json req in
  let detail =
    match req with
    | Get_config p | Set_config (p, _) | Del_config p -> Config_tree.path_to_string p
    | Get_support_perflow h | Del_support_perflow h | Get_report_perflow h
    | Del_report_perflow h | Get_stats h | Abort_perflow h ->
      Hfl.to_string h
    | Put_support_perflow { chunk = c; _ }
    | Put_support_shared { chunk = c; _ }
    | Put_report_perflow { chunk = c; _ }
    | Put_report_shared { chunk = c; _ } ->
      Chunk.describe c
    | Get_support_shared | Get_report_shared -> ""
    | Enable_events { codes; _ } | Disable_events { codes } -> String.concat "," codes
    | Reprocess_packet { packet; _ } -> Packet.flow_label packet
    | Put_batch { chunks; _ } ->
      Printf.sprintf "n=%d (%dB)" (List.length chunks)
        (List.fold_left (fun acc c -> acc + Chunk.size_bytes c) 0 chunks)
  in
  if detail = "" then name else name ^ " " ^ detail

let describe_reply = function
  | State_chunk c -> "stateChunk " ^ Chunk.describe c
  | End_of_state { count } -> Printf.sprintf "endOfState count=%d" count
  | Ack -> "ack"
  | Config_values es -> Printf.sprintf "configValues n=%d" (List.length es)
  | Stats_reply _ -> "stats"
  | Op_error e -> "error " ^ Errors.to_string e
  | Batch_ack { seq; count; errors } ->
    Printf.sprintf "batchAck seq=%d count=%d errors=%d" seq count (List.length errors)
