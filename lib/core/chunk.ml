type t = {
  mb_kind : string;
  role : Taxonomy.role;
  partition : Taxonomy.partition;
  key : Openmb_net.Hfl.t;
  cipher : string;
}

let magic = "OMB1"

(* Keystream: SplitMix64 seeded from a hash of the MB kind, standing in
   for a per-vendor symmetric key.  The stream is consumed LSB-first,
   so eight consecutive stream bytes are exactly one [bits64] output
   read little-endian — the in-place XOR below applies whole 64-bit
   blocks and only falls back to per-byte work for the tail, producing
   the same bytes as the original byte-at-a-time loop. *)
let xor_inplace ~mb_kind buf =
  let g = Openmb_sim.Prng.create ~seed:(Hashtbl.hash ("vendor-secret:" ^ mb_kind)) in
  let n = Bytes.length buf in
  let blocks = n / 8 in
  for b = 0 to blocks - 1 do
    let k = Openmb_sim.Prng.bits64 g in
    let off = b * 8 in
    Bytes.set_int64_le buf off (Int64.logxor (Bytes.get_int64_le buf off) k)
  done;
  if n land 7 <> 0 then begin
    let block = ref (Openmb_sim.Prng.bits64 g) in
    for i = blocks * 8 to n - 1 do
      let k = Int64.to_int (Int64.logand !block 0xFFL) in
      block := Int64.shift_right_logical !block 8;
      Bytes.unsafe_set buf i
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get buf i) lxor k))
    done
  end

let xor_keystream ~mb_kind s =
  let buf = Bytes.of_string s in
  xor_inplace ~mb_kind buf;
  Bytes.unsafe_to_string buf

let compression_enabled = ref false

let magic_len = String.length magic

(* Assemble [magic ^ flag ^ body] straight into the output bytes and
   encrypt in place: one allocation per seal, no intermediate
   concatenations. *)
let seal_body ~mb_kind ~flag body =
  let n = magic_len + 1 + String.length body in
  let buf = Bytes.create n in
  Bytes.blit_string magic 0 buf 0 magic_len;
  Bytes.set buf magic_len flag;
  Bytes.blit_string body 0 buf (magic_len + 1) (String.length body);
  xor_inplace ~mb_kind buf;
  Bytes.unsafe_to_string buf

let seal ~mb_kind ~role ~partition ~key ~plain =
  (* Compress-then-encrypt: the XOR keystream destroys redundancy, so
     any compression must happen on the plaintext.  A flag byte after
     the magic records whether the body is compressed. *)
  let cipher =
    if !compression_enabled then begin
      let c = Openmb_wire.Compress.compress plain in
      if String.length c < String.length plain then seal_body ~mb_kind ~flag:'C' c
      else seal_body ~mb_kind ~flag:'R' plain
    end
    else seal_body ~mb_kind ~flag:'R' plain
  in
  { mb_kind; role; partition; key; cipher }

let unseal ~mb_kind t =
  let plain = xor_keystream ~mb_kind t.cipher in
  let ml = magic_len in
  if String.length plain >= ml + 1 && String.sub plain 0 ml = magic then begin
    let body = String.sub plain (ml + 1) (String.length plain - ml - 1) in
    match plain.[ml] with
    | 'R' -> Ok body
    | 'C' -> (
      match Openmb_wire.Compress.decompress body with
      | s -> Ok s
      | exception Invalid_argument _ ->
        Error (Errors.Bad_chunk "corrupt compressed chunk body"))
    | _ -> Error (Errors.Bad_chunk "corrupt chunk framing")
  end
  else
    Error
      (Errors.Bad_chunk
         (Printf.sprintf "cannot unseal %s chunk with kind %s key" t.mb_kind mb_kind))

let size_bytes t = String.length t.cipher

let describe t =
  Printf.sprintf "%s/%s %s (%dB)"
    (Taxonomy.role_to_string t.role)
    (Taxonomy.partition_to_string t.partition)
    (match t.key with [] -> "<shared>" | key -> Openmb_net.Hfl.to_string key)
    (size_bytes t)
