(** Errors surfaced by the OpenMB APIs. *)

type t =
  | Granularity_too_fine
      (** A per-flow state request constrained a dimension finer than
          the MB's state granularity (§4.1.2). *)
  | Unknown_mb of string  (** Northbound call names an unregistered MB. *)
  | Unknown_config_key of string
      (** [getConfig]/[delConfig] on a key the MB does not define. *)
  | Illegal_operation of string
      (** Operation violates the state taxonomy (e.g. putting a
          reporting chunk through a supporting-state call). *)
  | Bad_chunk of string
      (** Chunk cannot be unsealed or is structurally invalid for the
          receiving MB. *)
  | Op_failed of string  (** MB-specific failure. *)
  | Timeout of string
      (** A southbound request exhausted its retries without a reply —
          the MB is crashed, partitioned, or persistently lossy. *)
  | Move_aborted of string
      (** A transactional transfer ([moveInternal], [cloneSupport],
          [mergeInternal]) was rolled back: source state is intact and
          buffered events were flushed back to the source. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
