type t =
  | Granularity_too_fine
  | Unknown_mb of string
  | Unknown_config_key of string
  | Illegal_operation of string
  | Bad_chunk of string
  | Op_failed of string
  | Timeout of string
  | Move_aborted of string

let to_string = function
  | Granularity_too_fine -> "request granularity finer than MB state granularity"
  | Unknown_mb name -> Printf.sprintf "unknown middlebox %S" name
  | Unknown_config_key key -> Printf.sprintf "unknown configuration key %S" key
  | Illegal_operation what -> Printf.sprintf "illegal operation: %s" what
  | Bad_chunk what -> Printf.sprintf "bad state chunk: %s" what
  | Op_failed what -> Printf.sprintf "operation failed: %s" what
  | Timeout what -> Printf.sprintf "timed out: %s" what
  | Move_aborted why -> Printf.sprintf "move aborted: %s" why

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal a b =
  match (a, b) with
  | Granularity_too_fine, Granularity_too_fine -> true
  | Unknown_mb x, Unknown_mb y
  | Unknown_config_key x, Unknown_config_key y
  | Illegal_operation x, Illegal_operation y
  | Bad_chunk x, Bad_chunk y
  | Op_failed x, Op_failed y
  | Timeout x, Timeout y
  | Move_aborted x, Move_aborted y -> String.equal x y
  | ( ( Granularity_too_fine | Unknown_mb _ | Unknown_config_key _ | Illegal_operation _
      | Bad_chunk _ | Op_failed _ | Timeout _ | Move_aborted _ ),
      _ ) -> false
