open Openmb_sim
open Openmb_net

type config = {
  heartbeat_every : Time.t;
  failover_timeout : Time.t;
  log_latency : Time.t;
  log_bandwidth : float;
  move_retry_backoff : Time.t;
  move_retry_cap : Time.t;
  max_move_attempts : int;
  cleanup_linger : Time.t;
  ctrl : Controller.config;
}

let default_config =
  {
    heartbeat_every = Time.ms 100.0;
    failover_timeout = Time.ms 500.0;
    log_latency = Time.us 200.0;
    log_bandwidth = 125e6;
    move_retry_backoff = Time.ms 200.0;
    move_retry_cap = Time.seconds 30.0;
    max_move_attempts = 16;
    cleanup_linger = Time.seconds 20.0;
    ctrl = Controller.default_config;
  }

type intent = { i_lsn : int; i_src : string; i_dst : string; i_key : Hfl.t }

(* The replicated op log.  Move intents and their outcomes consume
   sequence numbers; heartbeats and snapshots do not.  A snapshot is
   the leader's full replicable state (Raft's InstallSnapshot shape):
   it both bootstraps a rejoining standby and serves as the
   retransmission unit while the standby is behind its base. *)
type log_entry =
  | Log_snapshot of {
      base : int;  (* the standby resumes contiguous apply at [base] *)
      pending : intent list;
      recent_done : (intent * Time.t) list;
    }
  | Log_move_start of intent
  | Log_move_done of { lsn : int; start_lsn : int; ok : bool }
  | Log_heartbeat of { watermark : int }

let intent_bytes i =
  32 + String.length i.i_src + String.length i.i_dst
  + String.length (Hfl.to_string i.i_key)

let entry_bytes = function
  | Log_snapshot { pending; recent_done; _ } ->
    List.fold_left (fun a i -> a + intent_bytes i) 48 pending
    + List.fold_left (fun a (i, _) -> a + intent_bytes i + 8) 0 recent_done
  | Log_move_start i -> 16 + intent_bytes i
  | Log_move_done _ -> 32
  | Log_heartbeat _ -> 16

type role = Leader | Standby | Down

type member = {
  m_name : string;
  mutable role : role;
  mutable ctrl : Controller.t option;
  (* Standby-side replica state, built exclusively from log deliveries:
     out-of-order entries wait in [stash] until the gap before them
     closes, [intents] holds moves started but not finished, and
     [done_intents] keeps recently completed moves so a takeover can
     re-issue their deferred deletes. *)
  stash : (int, log_entry) Hashtbl.t;
  intents : (int, intent) Hashtbl.t;
  done_intents : (int, intent * Time.t) Hashtbl.t;
  mutable applied_lsn : int;
  mutable synced : bool;
  mutable last_heard : Time.t;
  mutable det_timer : Engine.handle option;
}

type move_state = Running | Done_ok of Time.t | Settled

(* A northbound move as the client sees it.  Records linger after
   completion ([Done_ok]) for [cleanup_linger], so a takeover knows
   which deferred deletes may have died with the old leader. *)
type inflight = {
  f_intent : intent;
  f_on_done : (Controller.move_result, Errors.t) result -> unit;
  mutable f_attempts : int;
  mutable f_state : move_state;
}

type t = {
  engine : Engine.t;
  cfg : config;
  recorder : Recorder.t option;
  faults : Faults.t option;
  tel : Telemetry.t;
  mutable agents : (Mb_agent.t * Openmb_wire.Framing.t option) list;
  a : member;
  b : member;
  mutable epoch : int;
  mutable next_lsn : int;
  inflight : (int, inflight) Hashtbl.t;
  (* Leader-side replication endpoint; torn down and rebuilt (with a
     new generation) whenever the pair's roles change, so deliveries
     scheduled on a dead incarnation are recognizably stale. *)
  mutable log_ch : log_entry Channel.t option;
  mutable ack_ch : int Channel.t option;
  mutable repl_gen : int;
  unacked : (int, log_entry) Hashtbl.t;
  mutable snapshot_base : int;
  mutable acked_lsn : int;
  mutable hb_timer : Engine.handle option;
  mutable stopped : bool;
  c_failovers : Telemetry.counter;
  c_log : Telemetry.counter;
  c_retrans : Telemetry.counter;
  c_snapshots : Telemetry.counter;
  c_heartbeats : Telemetry.counter;
  c_move_retries : Telemetry.counter;
  c_moves_rerun : Telemetry.counter;
  c_moves_resubmitted : Telemetry.counter;
  c_deletes_reissued : Telemetry.counter;
  (* Replicable entries appended but not yet acked by the standby —
     the op-log lag the health scraper watches; a lag that only grows
     means the replication link is dead or the standby is gone. *)
  g_lag : Telemetry.gauge;
}

let update_lag t = Telemetry.set_gauge t.g_lag (Hashtbl.length t.unacked)

let record t ~kind ~detail =
  match t.recorder with
  | Some r -> Recorder.record r ~actor:"replica" ~kind ~detail
  | None -> ()

let partner t m = if m == t.a then t.b else t.a

let leader_member t =
  if t.a.role = Leader then Some t.a
  else if t.b.role = Leader then Some t.b
  else None

let standby_member t =
  if t.a.role = Standby then Some t.a
  else if t.b.role = Standby then Some t.b
  else None

let member_named t name =
  if String.equal t.a.m_name name then t.a
  else if String.equal t.b.m_name name then t.b
  else failwith (Printf.sprintf "Controller_replica: unknown member %s" name)

let cancel_timer = function Some h -> Engine.cancel h | None -> ()

let mk_member name =
  {
    m_name = name;
    role = Down;
    ctrl = None;
    stash = Hashtbl.create 32;
    intents = Hashtbl.create 16;
    done_intents = Hashtbl.create 16;
    applied_lsn = -1;
    synced = false;
    last_heard = Time.zero;
    det_timer = None;
  }

let reset_standby_state m =
  Hashtbl.reset m.stash;
  Hashtbl.reset m.intents;
  Hashtbl.reset m.done_intents;
  m.applied_lsn <- -1;
  m.synced <- false

(* ------------------------------------------------------------------ *)
(* Log replication (leader side)                                       *)
(* ------------------------------------------------------------------ *)

let send_log t entry =
  match t.log_ch with
  | None -> ()
  | Some ch -> Channel.send ch ~bytes:(entry_bytes entry) entry

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> Int.compare k1 k2)

let within_linger t ~now at =
  Time.compare Time.(now - at) t.cfg.cleanup_linger <= 0

(* Collapse everything replicable into one snapshot and restart the
   stream from [next_lsn].  Used to bootstrap a rejoining standby and
   re-sent on every heartbeat until the standby's ack reaches the
   base — the ARQ that survives snapshot loss on a faulty log link. *)
let send_snapshot t =
  let now = Engine.now t.engine in
  t.snapshot_base <- t.next_lsn;
  Hashtbl.reset t.unacked;
  update_lag t;
  let pending =
    sorted_bindings t.inflight
    |> List.filter_map (fun (_, f) ->
           match f.f_state with Running -> Some f.f_intent | _ -> None)
  in
  let recent_done =
    sorted_bindings t.inflight
    |> List.filter_map (fun (_, f) ->
           match f.f_state with
           | Done_ok at when within_linger t ~now at -> Some (f.f_intent, at)
           | _ -> None)
  in
  Telemetry.incr t.c_snapshots;
  send_log t (Log_snapshot { base = t.snapshot_base; pending; recent_done })

let append_log t entry =
  (match entry with
  | Log_move_start { i_lsn = lsn; _ } | Log_move_done { lsn; _ } ->
    Hashtbl.replace t.unacked lsn entry;
    update_lag t
  | Log_snapshot _ | Log_heartbeat _ -> ());
  Telemetry.incr t.c_log;
  if standby_member t <> None then send_log t entry

let alloc_lsn t =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  lsn

(* ------------------------------------------------------------------ *)
(* Log replication (standby side)                                      *)
(* ------------------------------------------------------------------ *)

let apply_entry t sb entry =
  match entry with
  | Log_move_start i -> Hashtbl.replace sb.intents i.i_lsn i
  | Log_move_done { start_lsn; ok; _ } -> (
    match Hashtbl.find_opt sb.intents start_lsn with
    | None -> ()
    | Some i ->
      Hashtbl.remove sb.intents start_lsn;
      if ok then
        Hashtbl.replace sb.done_intents start_lsn (i, Engine.now t.engine))
  | Log_snapshot _ | Log_heartbeat _ -> ()

let stash_and_apply t sb lsn entry =
  if sb.synced && lsn > sb.applied_lsn then begin
    Hashtbl.replace sb.stash lsn entry;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt sb.stash (sb.applied_lsn + 1) with
      | None -> continue := false
      | Some e ->
        Hashtbl.remove sb.stash (sb.applied_lsn + 1);
        sb.applied_lsn <- sb.applied_lsn + 1;
        apply_entry t sb e
    done
  end

let send_ack t lsn =
  match t.ack_ch with None -> () | Some ch -> Channel.send ch ~bytes:16 lsn

let on_log_entry t gen sb entry =
  if (not t.stopped) && gen = t.repl_gen && sb.role = Standby then begin
    sb.last_heard <- Engine.now t.engine;
    (match entry with
    | Log_snapshot { base; pending; recent_done } ->
      reset_standby_state sb;
      List.iter (fun i -> Hashtbl.replace sb.intents i.i_lsn i) pending;
      List.iter
        (fun (i, at) -> Hashtbl.replace sb.done_intents i.i_lsn (i, at))
        recent_done;
      sb.applied_lsn <- base - 1;
      sb.synced <- true
    | Log_heartbeat _ -> ()
    | Log_move_start i -> stash_and_apply t sb i.i_lsn entry
    | Log_move_done { lsn; _ } -> stash_and_apply t sb lsn entry);
    send_ack t sb.applied_lsn
  end

let on_ack t gen lsn =
  if (not t.stopped) && gen = t.repl_gen && leader_member t <> None then
    if lsn > t.acked_lsn then begin
      t.acked_lsn <- lsn;
      Hashtbl.iter
        (fun l _ -> if l <= lsn then Hashtbl.remove t.unacked l)
        (Hashtbl.copy t.unacked);
      update_lag t
    end

(* Both directions of the replication link share one fault-plan name,
   so an impairment profile shapes the op stream ([`Fwd]) and the acks
   ([`Rev]) independently, and partitions sever both. *)
let establish_replication t =
  match (leader_member t, standby_member t) with
  | Some _, Some sb ->
    t.repl_gen <- t.repl_gen + 1;
    let gen = t.repl_gen in
    let dir_link d =
      Option.map (fun f -> Faults.link f ~dir:d ~name:"replica/log" ()) t.faults
    in
    t.log_ch <-
      Some
        (Channel.create t.engine
           ?faults:(dir_link `Fwd)
           ~telemetry:t.tel ~latency:t.cfg.log_latency
           ~bytes_per_sec:t.cfg.log_bandwidth
           ~deliver:(fun e -> on_log_entry t gen sb e)
           ());
    t.ack_ch <-
      Some
        (Channel.create t.engine
           ?faults:(dir_link `Rev)
           ~telemetry:t.tel ~latency:t.cfg.log_latency
           ~bytes_per_sec:t.cfg.log_bandwidth
           ~deliver:(fun lsn -> on_ack t gen lsn)
           ());
    t.acked_lsn <- -1;
    send_snapshot t
  | _ ->
    t.repl_gen <- t.repl_gen + 1;
    t.log_ch <- None;
    t.ack_ch <- None

(* ------------------------------------------------------------------ *)
(* Moves: attempt, retry, takeover re-run                              *)
(* ------------------------------------------------------------------ *)

let move_backoff t attempts =
  let base = Time.to_seconds t.cfg.move_retry_backoff in
  let cap = Time.to_seconds t.cfg.move_retry_cap in
  Time.seconds (Float.min (base *. (2.0 ** float_of_int (min attempts 24))) cap)

(* Every closure in an attempt chain captures the epoch it was started
   under; a takeover bumps the epoch, killing stale chains outright —
   the new leader re-runs what is still pending, exactly once. *)
let rec start_attempt t lsn =
  match Hashtbl.find_opt t.inflight lsn with
  | None -> ()
  | Some f when f.f_state <> Running -> ()
  | Some f -> (
    match leader_member t with
    | None | Some { ctrl = None; _ } ->
      (* No live controller: the promotion that installs one re-runs
         every pending move, so there is nothing to schedule here. *)
      ()
    | Some { ctrl = Some ctrl; _ } ->
      let ep = t.epoch in
      let i = f.f_intent in
      Controller.move_internal ctrl ~src:i.i_src ~dst:i.i_dst ~key:i.i_key
        ~on_done:(fun res ->
          if (not t.stopped) && ep = t.epoch && f.f_state = Running then
            handle_move_result t lsn f res))

and handle_move_result t lsn f res =
  match res with
  | Ok mv ->
    let now = Engine.now t.engine in
    f.f_state <- Done_ok now;
    append_log t
      (Log_move_done { lsn = alloc_lsn t; start_lsn = lsn; ok = true });
    record t ~kind:"move-done"
      ~detail:
        (Printf.sprintf "lsn=%d %s->%s attempts=%d" lsn f.f_intent.i_src
           f.f_intent.i_dst (f.f_attempts + 1));
    schedule_settle t lsn;
    f.f_on_done (Ok mv)
  | Error e ->
    f.f_attempts <- f.f_attempts + 1;
    if f.f_attempts >= t.cfg.max_move_attempts then begin
      f.f_state <- Settled;
      Hashtbl.remove t.inflight lsn;
      append_log t
        (Log_move_done { lsn = alloc_lsn t; start_lsn = lsn; ok = false });
      record t ~kind:"move-failed"
        ~detail:(Printf.sprintf "lsn=%d %s" lsn (Errors.to_string e));
      f.f_on_done (Error e)
    end
    else begin
      Telemetry.incr t.c_move_retries;
      let ep = t.epoch in
      ignore
        (Engine.schedule_after t.engine
           (move_backoff t f.f_attempts)
           (fun () ->
             if (not t.stopped) && ep = t.epoch && f.f_state = Running then
               rerun_move t lsn))
    end

(* Abort-then-attempt: clear whatever moved marks a failed (or deposed)
   attempt left at the source, with an acknowledged round trip so the
   un-marking cannot race the re-run's export even on a reordering op
   channel, then try the move again. *)
and rerun_move t lsn =
  match Hashtbl.find_opt t.inflight lsn with
  | None -> ()
  | Some f when f.f_state <> Running -> ()
  | Some f -> (
    match leader_member t with
    | None | Some { ctrl = None; _ } -> ()
    | Some { ctrl = Some ctrl; _ } ->
      let ep = t.epoch in
      let i = f.f_intent in
      Controller.abort_perflow ctrl ~mb:i.i_src ~key:i.i_key
        ~on_done:(fun _ ->
          (* Best effort: if the abort itself failed (source crashed,
             partition outlasting its retries), the move attempt below
             fails the same way and re-enters the backoff loop. *)
          if (not t.stopped) && ep = t.epoch && f.f_state = Running then
            start_attempt t lsn))

(* A completed move stays in [inflight] for [cleanup_linger] so a
   takeover within that window re-issues its deferred delete; after
   the linger the delete is assumed durable and the record dropped. *)
and schedule_settle t lsn =
  ignore
    (Engine.schedule_after t.engine t.cfg.cleanup_linger (fun () ->
         match Hashtbl.find_opt t.inflight lsn with
         | Some f when f.f_state <> Running ->
           f.f_state <- Settled;
           Hashtbl.remove t.inflight lsn
         | Some _ | None -> ()))

(* ------------------------------------------------------------------ *)
(* Roles: promotion, heartbeats, failure detection                     *)
(* ------------------------------------------------------------------ *)

let rec promote t m =
  t.epoch <- t.epoch + 1;
  Telemetry.incr t.c_failovers;
  let o = partner t m in
  let o_was_alive = o.role = Leader in
  (* Fence the deposed leader: in deployment terms its lease epoch just
     expired at the config store, so nothing it still tries can land.
     Demote it before the recovery below — [rerun_move] resolves the
     leader by role, and a partner still marked [Leader] would shadow
     the promoting member and silently swallow every re-run. *)
  (match o.ctrl with Some c -> Controller.fence c | None -> ());
  o.ctrl <- None;
  if o_was_alive then o.role <- Standby;
  cancel_timer m.det_timer;
  m.det_timer <- None;
  let ctrl =
    Controller.create t.engine ~config:t.cfg.ctrl ?recorder:t.recorder
      ?faults:t.faults ~telemetry:t.tel ()
  in
  m.role <- Leader;
  m.ctrl <- Some ctrl;
  record t ~kind:"takeover"
    ~detail:(Printf.sprintf "%s epoch=%d" m.m_name t.epoch);
  (* Re-adopt every agent.  The agents did not crash: their dedup
     caches still hold the old leader's op and sequence numbers, so the
     new connection numbers from an epoch-shifted base; the plan's
     crash schedule was armed by the first connect and must not fire
     twice. *)
  let id_base = t.epoch lsl 40 in
  List.iter
    (fun (agent, framing) ->
      Controller.connect ctrl ?framing ~id_base ~arm_faults:false agent)
    (List.rev t.agents);
  (* Recovery, in log order.  First re-issue the deferred deletes of
     recently completed moves — the old leader may have died between a
     move's completion and its quiescence-delayed delete; the delete
     only touches moved-marked entries, so replaying it is idempotent.
     Then abort-and-re-run every move still pending.  Pending moves
     known from the standby's log view are replays; pending moves the
     log never delivered are covered because their clients re-submit to
     the new leader (modeled by the shared inflight table), counted
     separately. *)
  let now = Engine.now t.engine in
  let deletes = Hashtbl.create 8 in
  Hashtbl.iter
    (fun lsn (i, at) ->
      if within_linger t ~now at then Hashtbl.replace deletes lsn i)
    m.done_intents;
  Hashtbl.iter
    (fun lsn f ->
      match f.f_state with
      | Done_ok at when within_linger t ~now at -> Hashtbl.replace deletes lsn f.f_intent
      | _ -> ())
    t.inflight;
  List.iter
    (fun (_, i) ->
      Telemetry.incr t.c_deletes_reissued;
      Controller.delete_perflow ctrl ~mb:i.i_src ~key:i.i_key
        ~on_done:(fun _ -> ()))
    (sorted_bindings deletes);
  let from_log = Hashtbl.copy m.intents in
  List.iter
    (fun (lsn, f) ->
      if f.f_state = Running then begin
        Telemetry.incr t.c_moves_rerun;
        if not (Hashtbl.mem from_log lsn) then
          Telemetry.incr t.c_moves_resubmitted;
        rerun_move t lsn
      end)
    (sorted_bindings t.inflight);
  reset_standby_state m;
  (* A deposed-but-alive partner immediately rejoins as the new warm
     standby; a killed one stays down until revived. *)
  if o_was_alive then begin
    reset_standby_state o;
    o.role <- Standby;
    o.last_heard <- Engine.now t.engine;
    arm_detector t o
  end;
  establish_replication t;
  ensure_heartbeat t

and arm_detector t m =
  cancel_timer m.det_timer;
  let interval =
    Time.seconds (Time.to_seconds t.cfg.failover_timeout /. 4.0)
  in
  let rec tick () =
    m.det_timer <- None;
    if (not t.stopped) && m.role = Standby then begin
      let now = Engine.now t.engine in
      if Time.compare Time.(now - m.last_heard) t.cfg.failover_timeout > 0 then
        promote t m
      else m.det_timer <- Some (Engine.schedule_after t.engine interval tick)
    end
  in
  m.det_timer <- Some (Engine.schedule_after t.engine interval tick)

and ensure_heartbeat t =
  if t.hb_timer = None && not t.stopped then begin
    let rec tick () =
      t.hb_timer <- None;
      if not t.stopped then begin
        (match (leader_member t, standby_member t) with
        | Some _, Some _ ->
          Telemetry.incr t.c_heartbeats;
          if t.acked_lsn < t.snapshot_base - 1 then begin
            (* The standby never confirmed the snapshot base: re-send
               it rather than entries it cannot yet apply. *)
            Telemetry.incr t.c_retrans;
            send_snapshot t
          end
          else begin
            send_log t (Log_heartbeat { watermark = t.next_lsn - 1 });
            List.iter
              (fun (_, e) ->
                Telemetry.incr t.c_retrans;
                send_log t e)
              (sorted_bindings t.unacked)
          end
        | _ -> ());
        t.hb_timer <- Some (Engine.schedule_after t.engine t.cfg.heartbeat_every tick)
      end
    in
    t.hb_timer <- Some (Engine.schedule_after t.engine t.cfg.heartbeat_every tick)
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create engine ?(config = default_config) ?recorder ?faults ?telemetry
    ?(names = ("ctrl-a", "ctrl-b")) () =
  let tel =
    match telemetry with Some tel -> tel | None -> Telemetry.create ()
  in
  let t =
    {
      engine;
      cfg = config;
      recorder;
      faults;
      tel;
      agents = [];
      a = mk_member (fst names);
      b = mk_member (snd names);
      epoch = 0;
      next_lsn = 0;
      inflight = Hashtbl.create 32;
      log_ch = None;
      ack_ch = None;
      repl_gen = 0;
      unacked = Hashtbl.create 32;
      snapshot_base = 0;
      acked_lsn = -1;
      hb_timer = None;
      stopped = false;
      c_failovers = Telemetry.counter tel "replica.failovers";
      c_log = Telemetry.counter tel "replica.log_entries";
      c_retrans = Telemetry.counter tel "replica.log_retransmits";
      c_snapshots = Telemetry.counter tel "replica.snapshots";
      c_heartbeats = Telemetry.counter tel "replica.heartbeats";
      c_move_retries = Telemetry.counter tel "replica.move_retries";
      c_moves_rerun = Telemetry.counter tel "replica.moves_rerun";
      c_moves_resubmitted = Telemetry.counter tel "replica.moves_resubmitted";
      c_deletes_reissued = Telemetry.counter tel "replica.deletes_reissued";
      g_lag = Telemetry.gauge tel "replica.log_lag";
    }
  in
  t.a.role <- Leader;
  t.a.ctrl <-
    Some
      (Controller.create engine ~config:config.ctrl ?recorder ?faults
         ~telemetry:tel ());
  t.b.role <- Standby;
  t.b.synced <- true;
  t.b.last_heard <- Engine.now engine;
  establish_replication t;
  ensure_heartbeat t;
  arm_detector t t.b;
  t

let connect t ?framing agent =
  t.agents <- (agent, framing) :: t.agents;
  match leader_member t with
  | Some { ctrl = Some ctrl; _ } ->
    Controller.connect ctrl ?framing ~id_base:(t.epoch lsl 40) ~arm_faults:true
      agent
  | _ -> failwith "Controller_replica.connect: no live leader"

let move t ~src ~dst ~key ~on_done =
  if t.stopped then
    ignore
      (Engine.schedule_after t.engine Time.zero (fun () ->
           on_done (Error (Errors.Op_failed "replica stopped"))))
  else begin
    let lsn = alloc_lsn t in
    let intent = { i_lsn = lsn; i_src = src; i_dst = dst; i_key = key } in
    Hashtbl.replace t.inflight lsn
      { f_intent = intent; f_on_done = on_done; f_attempts = 0; f_state = Running };
    append_log t (Log_move_start intent);
    record t ~kind:"move-submit"
      ~detail:(Printf.sprintf "lsn=%d %s->%s" lsn src dst);
    start_attempt t lsn
  end

let kill t ~name =
  let m = member_named t name in
  if m.role <> Down then begin
    record t ~kind:"kill" ~detail:name;
    (match m.ctrl with Some c -> Controller.fence c | None -> ());
    m.ctrl <- None;
    cancel_timer m.det_timer;
    m.det_timer <- None;
    (* A dead leader simply goes silent; the standby's failure detector
       notices the missing heartbeats and promotes itself.  A dead
       standby is noticed by the leader's next snapshot re-sync when it
       revives. *)
    m.role <- Down;
    if leader_member t = None && standby_member t = None then begin
      t.log_ch <- None;
      t.ack_ch <- None
    end
  end

let revive t ~name =
  let m = member_named t name in
  if m.role = Down && not t.stopped then begin
    record t ~kind:"revive" ~detail:name;
    match leader_member t with
    | None ->
      (* Cold start: the revived process promotes itself on whatever
         log prefix it had applied before dying. *)
      promote t m
    | Some _ ->
      reset_standby_state m;
      m.role <- Standby;
      m.last_heard <- Engine.now t.engine;
      arm_detector t m;
      establish_replication t
  end

let stop t =
  t.stopped <- true;
  cancel_timer t.hb_timer;
  t.hb_timer <- None;
  cancel_timer t.a.det_timer;
  t.a.det_timer <- None;
  cancel_timer t.b.det_timer;
  t.b.det_timer <- None

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let telemetry t = t.tel
let epoch t = t.epoch
let leader t = Option.bind (leader_member t) (fun m -> m.ctrl)
let leader_name t = Option.map (fun m -> m.m_name) (leader_member t)

let role t ~name =
  match (member_named t name).role with
  | Leader -> `Leader
  | Standby -> `Standby
  | Down -> `Down

let failovers t = Telemetry.counter_value t.c_failovers
let log_entries t = Telemetry.counter_value t.c_log
let log_retransmits t = Telemetry.counter_value t.c_retrans
let snapshots t = Telemetry.counter_value t.c_snapshots
let heartbeats t = Telemetry.counter_value t.c_heartbeats
let moves_retried t = Telemetry.counter_value t.c_move_retries
let moves_rerun t = Telemetry.counter_value t.c_moves_rerun
let moves_resubmitted t = Telemetry.counter_value t.c_moves_resubmitted
let deletes_reissued t = Telemetry.counter_value t.c_deletes_reissued
let log_lag t = Telemetry.gauge_value t.g_lag
let pending_moves t =
  Hashtbl.fold
    (fun _ f n -> if f.f_state = Running then n + 1 else n)
    t.inflight 0
