(** The MB-facing ("southbound") API (§4).

    Every OpenMB-capable middlebox implements {!impl}: a set of
    synchronous state-access operations mirroring the paper's API —
    configuration get/set/del, per-flow and shared supporting state,
    per-flow and shared reporting state — plus packet processing and an
    event sink.  {!Mb_agent} wraps an [impl] to attach it to the MB
    controller over simulated channels and to charge the simulated CPU
    costs from the [impl]'s {!cost_model}. *)

type stats = {
  perflow_support_chunks : int;
  perflow_report_chunks : int;
  perflow_support_bytes : int;
  perflow_report_bytes : int;
  shared_support_bytes : int;
  shared_report_bytes : int;
}
(** Answer to the [stats] northbound call: how much state of each class
    exists for a key. *)

val empty_stats : stats

type cost_model = {
  per_packet : Openmb_sim.Time.t;
      (** Normal per-packet processing latency (the paper measures
          6.93 ms for Bro, 0.78 ms end-to-end for RE). *)
  op_slowdown : float;
      (** Multiplier (> 1.0) applied to per-packet latency while a
          state operation is in progress; 1.02 reproduces the paper's
          ≤2% penalty. *)
  scan_per_entry : Openmb_sim.Time.t;
      (** Per-table-entry cost of the linear search performed on gets
          (§7: Bro and PRADS scan their connection tables). *)
  serialize_per_chunk : Openmb_sim.Time.t;
      (** Fixed serialization cost per exported chunk. *)
  serialize_per_byte : Openmb_sim.Time.t;
      (** Size-proportional serialization cost. *)
  deserialize_per_chunk : Openmb_sim.Time.t;
      (** Fixed import cost per chunk (puts are ≈6× cheaper than gets
          in the paper because no scan is needed). *)
  deserialize_per_byte : Openmb_sim.Time.t;  (** Size-proportional import cost. *)
}
(** Simulated CPU costs charged by the {!Mb_agent} when executing
    southbound operations. *)

type impl = {
  name : string;  (** Instance name, unique per deployment. *)
  kind : string;  (** MB type, e.g. ["bro"]; governs chunk sealing. *)
  granularity : Openmb_net.Hfl.granularity;
      (** Dimensions this MB keys per-flow state on. *)
  cost : cost_model;
  table_entries : unit -> int;
      (** Current per-flow table population (for scan cost). *)
  get_config : Config_tree.path -> (Config_tree.entry list, Errors.t) result;
  set_config : Config_tree.path -> Openmb_wire.Json.t list -> (unit, Errors.t) result;
  del_config : Config_tree.path -> (unit, Errors.t) result;
  get_support_perflow : Openmb_net.Hfl.t -> (Chunk.t list, Errors.t) result;
      (** Also marks the matching state as moved so subsequent updates
          raise re-process events. *)
  put_support_perflow : Chunk.t -> (unit, Errors.t) result;
  del_support_perflow : Openmb_net.Hfl.t -> (int, Errors.t) result;
  get_support_shared : unit -> (Chunk.t option, Errors.t) result;
  put_support_shared : Chunk.t -> (unit, Errors.t) result;
      (** Merges when shared supporting state already exists (§4.1.2). *)
  get_report_perflow : Openmb_net.Hfl.t -> (Chunk.t list, Errors.t) result;
  put_report_perflow : Chunk.t -> (unit, Errors.t) result;
  del_report_perflow : Openmb_net.Hfl.t -> (int, Errors.t) result;
  get_report_shared : unit -> (Chunk.t option, Errors.t) result;
  put_report_shared : Chunk.t -> (unit, Errors.t) result;
      (** Merges or starts afresh per MB-specific logic (§4.1.3). *)
  abort_perflow : Openmb_net.Hfl.t -> unit;
      (** Roll back an in-progress per-flow export: clear the
          moved-but-not-deleted marks on entries matching the key so
          the state is owned by this MB again and a later transfer can
          re-export it.  Must be a no-op for keys with no marked
          entries. *)
  on_crash : unit -> unit;
      (** Notification that the hosting agent crashed.  The agent's
          volatile dedup caches are gone, so any op reply still in
          flight is lost and the controller's retransmissions will
          re-execute against this (surviving) MB state.  MBs whose
          export bookkeeping cannot tolerate a re-executed get should
          latch that here. *)
  stats : Openmb_net.Hfl.t -> stats;
  process_packet : Openmb_net.Packet.t -> side_effects:bool -> unit;
      (** Run the MB's packet-processing logic.  With
          [side_effects:false] (re-process events) state is updated but
          no traffic is emitted and no alerts/log entries are
          generated twice (§4.2.1). *)
  set_event_sink : (Event.t -> unit) -> unit;
      (** Install the callback the MB raises events through; the agent
          installs itself here. *)
  set_op_active : bool -> unit;
      (** Called by the agent when a state operation starts/finishes
          executing on this MB, so the packet path can apply
          [cost.op_slowdown]. *)
}
(** One OpenMB-capable middlebox. *)

val check_granularity : impl -> Openmb_net.Hfl.t -> (unit, Errors.t) result
(** [Error Granularity_too_fine] when the request constrains dimensions
    outside the MB's granularity. *)

val put_chunk : impl -> Chunk.t -> (unit, Errors.t) result
(** Apply one chunk via the put operation selected by its role and
    partition — the dispatch used when a [putBatch] installs a mixed
    batch in one shot. *)

val default_cost : cost_model
(** Neutral cost model for tests: 100 µs per packet, 2% op slowdown,
    microsecond-scale state-op costs. *)
