(** The OpenMB middlebox controller (§5).

    The controller brokers every exchange of state and events between
    middleboxes: it translates northbound calls into sequences of
    southbound operations, streams state chunks from source to
    destination, tracks put acknowledgements, buffers re-process events
    until the state they apply to has been installed at the
    destination, and issues the deferred deletes once events quiesce
    (Figure 5).

    All controller work passes through a single simulated CPU, so
    concurrent operations contend — reproducing the linear scaling of
    Figure 10(b).  State transfers can optionally be compressed (§8.3).

    Because the host simulation is single-threaded and event-driven,
    northbound calls are continuation-passing: each takes an [on_done]
    callback fired when the operation returns. *)

type t

type config = {
  quiescence : Openmb_sim.Time.t;
      (** Idle time after which a transfer's events are assumed done
          and the deferred delete is issued (paper: 5 s). *)
  cpu_fixed : Openmb_sim.Time.t;
      (** Controller CPU per processed message (thread wake-up,
          locking). *)
  cpu_per_byte : Openmb_sim.Time.t;
      (** Controller CPU per message byte (socket read, JSON parse). *)
  channel_latency : Openmb_sim.Time.t;
      (** Propagation latency of the controller–MB connections. *)
  channel_bandwidth : float;  (** Bytes/second of those connections. *)
  forward_events : bool;
      (** Forward re-process events to destinations (true in OpenMB;
          the event ablation bench disables it to demonstrate the lost
          state updates). *)
  framing : Openmb_wire.Framing.t;
      (** Wire framing negotiated with MBs at connect time ([Json]
          unless a {!connect} override says otherwise); determines
          message sizes and hence channel transfer costs. *)
  batch_chunks : int;
      (** Maximum chunks coalesced into one [putBatch] message during a
          transfer.  [<= 1] disables batching and issues one put per
          chunk (the original pipeline, kept as the semantic
          reference). *)
  batch_bytes : int;
      (** Byte bound on a batch: a batch is cut early once its chunks
          reach this size, so a few large chunks don't ride in one
          oversized message. *)
  put_window : int;
      (** Maximum [putBatch] messages in flight to the destination at
          once; acks refill the window.  Batching and windowing change
          only message timing, never the per-key ack bookkeeping. *)
  request_timeout : Openmb_sim.Time.t;
      (** Base idle timeout on a southbound op: if no reply activity is
          seen for this long, the op is retried (if idempotent) or
          failed with {!Errors.Timeout}.  [Time.zero] disables timeouts
          and retries entirely. *)
  retry_backoff_cap : Openmb_sim.Time.t;
      (** Upper bound on the exponential backoff between retries
          (attempt [n] waits [request_timeout * 2^n], capped here). *)
  max_retries : int;
      (** Retransmissions attempted on an idempotent op before it is
          failed with {!Errors.Timeout}.  Retried mutations are safe:
          they carry a sequence number the agent applies at most
          once. *)
}

val default_config : config
(** 5 s quiescence, 8 µs + 0.3 µs/byte CPU, 200 µs / 125 MB/s
    channels — calibrated to the paper's controller numbers; transfers
    batch up to 16 chunks / 32 KiB per [putBatch] with a 4-batch send
    window.  Requests time out after 30 s idle with up to 4 retries
    backing off to 120 s — generous enough that only real failures trip
    it.  (Compression of transfers is controlled by
    {!Chunk.compression_enabled}.) *)

val create :
  Openmb_sim.Engine.t ->
  ?config:config ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?faults:Openmb_sim.Faults.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  unit ->
  t
(** [faults], when given, subjects every controller–MB channel to the
    fault plan's link profile (named ["<mb>/op"], ["<mb>/reply"],
    ["<mb>/event"]) and arms the plan's scheduled MB crashes at
    {!connect} time.

    [telemetry] hosts the controller's registry metrics
    (["controller.*"] counters/gauges, the ["controller.op_latency"],
    ["controller.serialization_window"] and
    ["controller.transfer_duration"] histograms) and its trace spans —
    one span per southbound op (named after the request, stamped with a
    fresh causality id that also rides the wire message as
    {!Message.to_mb.tid}) and one per transfer.  Without it the
    controller keeps a private instance, so the {!counters} accessors
    work either way; share one instance across controller and agents to
    get linked cross-component traces. *)

val telemetry : t -> Openmb_sim.Telemetry.t
(** The instance passed to {!create} (or the private default). *)

type remote = {
  to_agent : Openmb_sim.Shard.route;
      (** Posts execution onto the agent's shard (controller → MB
          deliveries: requests, state chunks). *)
  to_controller : Openmb_sim.Shard.route;
      (** Posts execution onto the controller's shard (MB → controller
          deliveries: replies, events). *)
  agent_faults : Openmb_sim.Faults.t option;
      (** Fault instance owned by the {e agent's} shard, applied to the
          reply/event channels (their sends run on the agent's domain,
          so they must not draw from the controller-shard instance).
          [None] leaves those channels fault-free. *)
}
(** Routing for an MB agent living on another shard of a
    {!Openmb_sim.Sharded_engine}. *)

val connect :
  t ->
  ?framing:Openmb_wire.Framing.t ->
  ?remote:remote ->
  ?id_base:int ->
  ?arm_faults:bool ->
  Mb_agent.t ->
  unit
(** Establish the op and event connections to an MB agent and register
    it under its impl name.  Raises [Failure] on duplicate names.
    [framing] overrides the config's wire framing for this MB's
    channels.

    [id_base] (default 0) offsets the connection's op and sequence
    counters.  A successor controller re-adopting an agent after a
    failover must number above anything its predecessor could have
    issued — the agent's dedup caches survived — so replicas pass an
    epoch-shifted base.  [arm_faults:false] skips arming the fault
    plan's crash schedule for this MB (a re-adoption must not
    double-schedule crashes the first connect already armed).

    With [?remote], the agent lives on a different shard: the op
    channel stays on the controller's engine but delivers through
    [remote.to_agent], while the reply and event channels live on the
    {e agent's} engine (sends happen there) and deliver through
    [remote.to_controller].  Those channels use the agent's telemetry
    instance and [remote.agent_faults], keeping every mutation
    shard-local; cross-shard deliveries are clamped to the next epoch
    barrier, which adds up to one epoch of latency per direction. *)

val disconnect : t -> string -> unit
(** Forget an MB (e.g. a terminated instance); in-flight operations on
    it are abandoned. *)

val mb_names : t -> string list

(** {1 Northbound API}

    The six operations of §5 plus introspection subscription. *)

type move_result = {
  chunks_moved : int;
  bytes_moved : int;
  events_forwarded : int;
  duration : Openmb_sim.Time.t;  (** Call start to return. *)
}

val read_config :
  t ->
  src:string ->
  key:Config_tree.path ->
  on_done:((Config_tree.entry list, Errors.t) result -> unit) ->
  unit

val write_config :
  t ->
  dst:string ->
  key:Config_tree.path ->
  values:Openmb_wire.Json.t list ->
  on_done:((unit, Errors.t) result -> unit) ->
  unit

val del_config :
  t ->
  dst:string ->
  key:Config_tree.path ->
  on_done:((unit, Errors.t) result -> unit) ->
  unit

val stats :
  t ->
  src:string ->
  key:Openmb_net.Hfl.t ->
  on_done:((Southbound.stats, Errors.t) result -> unit) ->
  unit

val move_internal :
  t ->
  src:string ->
  dst:string ->
  key:Openmb_net.Hfl.t ->
  on_done:((move_result, Errors.t) result -> unit) ->
  unit
(** Move the per-flow supporting and reporting state matching [key]
    from [src] to [dst].  [on_done] fires when every exported chunk has
    been acknowledged by [dst]; event forwarding continues afterwards,
    and the state is deleted from [src] once events quiesce.

    The move is transactional: if any leg fails mid-transfer (an op
    error, a timeout after retries are exhausted, a destination crash),
    [on_done] fires with [Error (Move_aborted _)], buffered re-process
    events are flushed back to [src], its exported entries are
    un-marked ([abortPerflow]) so they remain re-exportable, and no
    delete is ever issued — the source keeps its state intact.  The
    destination may retain partial copies; the source stays
    authoritative. *)

val clone_support :
  t ->
  src:string ->
  dst:string ->
  on_done:((move_result, Errors.t) result -> unit) ->
  unit
(** Clone shared supporting state from [src] to [dst]; no delete is
    ever issued (§5). *)

val merge_internal :
  t ->
  src:string ->
  dst:string ->
  on_done:((move_result, Errors.t) result -> unit) ->
  unit
(** Transfer shared supporting and reporting state from [src] into
    [dst], which merges it with its own (§4.1.2–4.1.3). *)

val subscribe_introspection :
  t ->
  ?expires_after:Openmb_sim.Time.t ->
  mb:string ->
  codes:string list ->
  key:Openmb_net.Hfl.t ->
  handler:(Event.t -> unit) ->
  unit ->
  unit
(** Enable matching introspection events at [mb] and deliver them to
    [handler].  With [expires_after], the subscription (and the MB-side
    event generation) is torn down after that long — §4.2.2's guard
    against event overload. *)

val unsubscribe_introspection : t -> mb:string -> codes:string list -> unit
(** Remove subscriptions on [mb] whose code lists intersect [codes]
    ([codes = []] removes all of them) and disable the MB-side
    generation. *)

val abort_perflow :
  t ->
  mb:string ->
  key:Openmb_net.Hfl.t ->
  on_done:((unit, Errors.t) result -> unit) ->
  unit
(** Clear the moved marks matching [key] at [mb], making the state
    re-exportable.  The transactional abort path issues this
    internally; it is exposed northbound so a successor controller can
    roll back a predecessor's partial export before re-running the
    move. *)

val delete_perflow :
  t ->
  mb:string ->
  key:Openmb_net.Hfl.t ->
  on_done:((unit, Errors.t) result -> unit) ->
  unit
(** Issue the deferred delete of moved per-flow state (supporting and
    reporting) matching [key] at [mb].  Removes only entries marked
    moved by a completed export, so re-issuing it after a failover —
    whether or not the dead leader's own delete ran — is idempotent. *)

val clone_config :
  t ->
  src:string ->
  dst:string ->
  key:Config_tree.path ->
  on_done:((int, Errors.t) result -> unit) ->
  unit
(** The [cloneConfig] composition of §5: read the configuration subtree
    at [key] from [src] and write every entry to [dst]; returns the
    number of entries cloned. *)

(** {1 Reporting} *)

type counters = {
  msgs_processed : int;  (** Messages that crossed the controller CPU. *)
  evt_forwarded : int;  (** Re-process events forwarded to destinations. *)
  evt_dropped : int;  (** Re-process events that matched no active transfer. *)
  evt_returned : int;
      (** Buffered re-process events flushed back to the source by an
          aborted transfer. *)
  evt_buffered_peak : int;
      (** High-water mark of buffered re-process events. *)
  op_retries : int;  (** Southbound requests retransmitted. *)
  op_timeouts : int;  (** Southbound requests failed with {!Errors.Timeout}. *)
  aborted_transfers : int;  (** Transfers rolled back ({!Errors.Move_aborted}). *)
  dedup_hits : int;
      (** Duplicate requests the agents answered from their replay
          caches.  Counted by agents sharing this controller's
          telemetry instance; [0] when agents keep their own. *)
}

val counters : t -> counters
(** Snapshot of every controller counter — the single stats surface the
    benches print and the chaos oracle asserts over (a fault-free run
    must show [evt_dropped = 0] and no retries, timeouts or aborts). *)

val pp_counters : Format.formatter -> counters -> unit

val events_buffered_peak : t -> int
(** High-water mark of buffered re-process events across transfers. *)

val events_forwarded : t -> int
(** Total re-process events forwarded to destinations. *)

val events_dropped : t -> int
(** Re-process events that matched no active transfer. *)

val events_returned : t -> int
(** Buffered events an aborted transfer replayed back to its source. *)

val active_transfers : t -> int
(** Transfers still forwarding events (including returned ones awaiting
    quiescence). *)

val messages_processed : t -> int
(** Messages that crossed the controller CPU. *)

val op_retries : t -> int
val op_timeouts : t -> int
val transfers_aborted : t -> int

(** {1 Fencing}

    Replicated deployments ({!Controller_replica}) fence a deposed
    leader at takeover.  Fencing models lease expiry: the config store
    stops honoring the old epoch, so nothing the deposed instance does
    can reach an agent. *)

val fence : t -> unit
(** Permanently silence this controller: every pending and future CPU
    dispatch — sends, receives, retry timers, quiescence deletes — is
    discarded.  Idempotent; there is no unfence. *)

val is_fenced : t -> bool
