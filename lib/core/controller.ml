open Openmb_sim
open Openmb_net

type config = {
  quiescence : Time.t;
  cpu_fixed : Time.t;
  cpu_per_byte : Time.t;
  channel_latency : Time.t;
  channel_bandwidth : float;
  forward_events : bool;
  framing : Openmb_wire.Framing.t;
  batch_chunks : int;
  batch_bytes : int;
  put_window : int;
  request_timeout : Time.t;
  retry_backoff_cap : Time.t;
  max_retries : int;
}

let default_config =
  {
    quiescence = Time.seconds 5.0;
    cpu_fixed = Time.us 8.0;
    cpu_per_byte = Time.us 0.3;
    channel_latency = Time.us 200.0;
    channel_bandwidth = 125e6;
    forward_events = true;
    framing = Openmb_wire.Framing.Json;
    batch_chunks = 16;
    batch_bytes = 32768;
    put_window = 4;
    (* Generous enough that a healthy deployment never trips it even
       under heavy controller contention; chaos configs tighten it. *)
    request_timeout = Time.seconds 30.0;
    retry_backoff_cap = Time.seconds 120.0;
    max_retries = 4;
  }

type move_result = {
  chunks_moved : int;
  bytes_moved : int;
  events_forwarded : int;
  duration : Time.t;
}

type counters = {
  msgs_processed : int;
  evt_forwarded : int;
  evt_dropped : int;
  evt_returned : int;
  evt_buffered_peak : int;
  op_retries : int;
  op_timeouts : int;
  aborted_transfers : int;
  dedup_hits : int;
}

(* A handler consumes successive replies to one op; [`Done] removes it. *)
type handler = Message.reply -> [ `Keep | `Done ]

(* One in-flight southbound request.  [po_last_activity] is refreshed
   by every reply on the op, so a streaming get stays alive as long as
   chunks keep arriving; the timeout chain measures idleness against
   it.  Only idempotent requests are retried. *)
type pending_op = {
  po_req : Message.request;
  po_handler : handler;
  po_retryable : bool;
  po_tid : int;
      (* Causality id stamped on the wire message; the agent tags its
         spans with it, linking both sides of the op in a trace. *)
  po_span : Telemetry.Trace.span;
  po_started : Time.t;
  mutable po_attempts : int;
  mutable po_last_activity : Time.t;
}

type conn = {
  agent : Mb_agent.t;
  to_mb : Message.to_mb Channel.t;
  framing : Openmb_wire.Framing.t;
      (* Negotiated when the channel was set up; sizes every message on
         this connection. *)
  mutable next_op : int;
  mutable next_seq : int;
      (* Sequence numbers stamped on mutating requests so the agent can
         deduplicate retries and duplicated deliveries. *)
  pending : (int, pending_op) Hashtbl.t;
}

type transfer_kind = T_move | T_clone | T_merge

type transfer = {
  t_id : int;
  t_span : Telemetry.Trace.span;
  kind : transfer_kind;
  src : string;
  dst : string;
  hfl : Hfl.t;
  started : Time.t;
  mutable open_gets : int;
  mutable pending_puts : int;
  (* Windowed batching pipeline: streamed chunks queue here until a
     size-bounded Put_batch is cut; at most [put_window] batches are in
     flight at once.  Each queued or in-flight chunk is counted in
     [pending_puts] and marked in [putting] from the moment it is
     received — identical bookkeeping to the per-chunk path. *)
  queued : Chunk.t Queue.t;
  mutable queued_bytes : int;
  mutable inflight_batches : int;
  mutable returned : bool;
  mutable chunks : int;
  mutable bytes : int;
  mutable events_fwd : int;
  acked : (string, unit) Hashtbl.t;
  putting : (string, int) Hashtbl.t;
      (* Outstanding put count per key: a flow with both a supporting
         and a reporting chunk is only [acked] — and its buffered
         events only flushed — once every chunk under the key has been
         acknowledged. *)
  buffered : (string, Event.t Queue.t) Hashtbl.t;
  mutable buffered_count : int;
  mutable last_event : Time.t;
  put_started : (string, Time.t) Hashtbl.t;
      (* First time a chunk for the key was received from the get
         stream; the gap to the key's completing ack is the per-flow
         serialization window (the paper's Fig. 7 metric). *)
  on_done : (move_result, Errors.t) result -> unit;
}

type subscription = {
  sub_mb : string;
  sub_codes : string list;
  sub_key : Hfl.t;
  sub_handler : Event.t -> unit;
}

type t = {
  engine : Engine.t;
  cfg : config;
  recorder : Recorder.t option;
  faults : Faults.t option;
  tel : Telemetry.t;
  mbs : (string, conn) Hashtbl.t;
  mutable transfers : transfer list;
  mutable next_transfer : int;
  mutable subscriptions : subscription list;
  mutable cpu_free_at : Time.t;
  (* A fenced controller is a dead leader: its lease has expired and a
     replica has taken over.  Every CPU dispatch — sends, receives,
     timeout retries, quiescence finalization — is gated on this flag,
     so a fenced instance can never emit another southbound op or
     mutate shared state, no matter what timers were already armed. *)
  mutable fenced : bool;
  (* Registry-backed counters; the [counters] record below is a view of
     these.  [c_dedup] is shared with agents on the same telemetry
     instance — the agent increments it on a replayed reply. *)
  c_msgs : Telemetry.counter;
  c_evt_fwd : Telemetry.counter;
  c_evt_dropped : Telemetry.counter;
  c_evt_returned : Telemetry.counter;
  c_retries : Telemetry.counter;
  c_timeouts : Telemetry.counter;
  c_aborted : Telemetry.counter;
  c_dedup : Telemetry.counter;
  g_buf : Telemetry.gauge;
  g_window : Telemetry.gauge;
  h_op : Telemetry.histogram;
  h_serial : Telemetry.histogram;
  h_transfer : Telemetry.histogram;
}

let create engine ?(config = default_config) ?recorder ?faults ?telemetry () =
  (* Without a shared instance the controller keeps a private one, so
     the counter accessors below stay per-controller either way. *)
  let tel = match telemetry with Some tel -> tel | None -> Telemetry.create () in
  {
    engine;
    cfg = config;
    recorder;
    faults;
    tel;
    mbs = Hashtbl.create 8;
    transfers = [];
    next_transfer = 0;
    subscriptions = [];
    cpu_free_at = Time.zero;
    fenced = false;
    c_msgs = Telemetry.counter tel "controller.msgs";
    c_evt_fwd = Telemetry.counter tel "controller.evt_forwarded";
    c_evt_dropped = Telemetry.counter tel "controller.evt_dropped";
    c_evt_returned = Telemetry.counter tel "controller.evt_returned";
    c_retries = Telemetry.counter tel "controller.op_retries";
    c_timeouts = Telemetry.counter tel "controller.op_timeouts";
    c_aborted = Telemetry.counter tel "controller.transfers_aborted";
    c_dedup = Telemetry.counter tel "mb.dedup_hits";
    g_buf = Telemetry.gauge tel "controller.evt_buffered";
    g_window = Telemetry.gauge tel "controller.put_window";
    h_op = Telemetry.histogram tel "controller.op_latency";
    h_serial = Telemetry.histogram tel "controller.serialization_window";
    h_transfer = Telemetry.histogram tel "controller.transfer_duration";
  }

let telemetry t = t.tel

let record t ~kind ~detail =
  match t.recorder with
  | Some r -> Recorder.record r ~actor:"controller" ~kind ~detail
  | None -> ()

(* Charge the (serial) controller CPU for a message of [bytes] bytes,
   then run [k].  Concurrent operations contend here, which is what
   makes simultaneous moves slow each other down (Fig. 10b). *)
let cpu t bytes k =
  if not t.fenced then begin
    let cost =
      Time.(t.cfg.cpu_fixed + seconds (to_seconds t.cfg.cpu_per_byte *. float_of_int bytes))
    in
    let start = Time.max (Engine.now t.engine) t.cpu_free_at in
    t.cpu_free_at <- Time.(start + cost);
    Telemetry.incr t.c_msgs;
    (* The continuation re-checks the fence: a takeover between dispatch
       and execution must still silence this instance. *)
    Engine.call_at t.engine t.cpu_free_at (fun () -> if not t.fenced then k ()) ()
  end

let fence t =
  if not t.fenced then begin
    t.fenced <- true;
    record t ~kind:"fenced" ~detail:"controller fenced (lease expired)"
  end

let is_fenced t = t.fenced

let find_conn t name = Hashtbl.find_opt t.mbs name

let alloc_seq conn =
  let s = conn.next_seq in
  conn.next_seq <- s + 1;
  s

(* ------------------------------------------------------------------ *)
(* Request transmission, timeouts and retries                          *)
(* ------------------------------------------------------------------ *)

let timeouts_enabled t = Time.compare t.cfg.request_timeout Time.zero > 0

(* Attempt [n] waits [request_timeout * 2^n], capped. *)
let backoff_delay t attempts =
  let base = Time.to_seconds t.cfg.request_timeout in
  let cap = Time.to_seconds t.cfg.retry_backoff_cap in
  Time.seconds (Float.min (base *. (2.0 ** float_of_int attempts)) cap)

let transmit t conn op tid req =
  let msg = { Message.op; tid; req } in
  let bytes = Message.request_wire_bytes ~framing:conn.framing msg in
  cpu t bytes (fun () -> Channel.send conn.to_mb ~bytes msg)

(* One timer chain per op: each firing either re-arms (activity since),
   retransmits and re-arms (idle, retryable, attempts left), or fails
   the op with [Errors.Timeout].  Exactly one check event is
   outstanding per pending op; resolution (reply or disconnect) ends
   the chain at its next firing. *)
let rec check_timeout t conn op po () =
  if (not t.fenced) && Hashtbl.mem conn.pending op then begin
    let delay = backoff_delay t po.po_attempts in
    let due = Time.(po.po_last_activity + delay) in
    let now = Engine.now t.engine in
    if Time.compare now due < 0 then
      ignore (Engine.schedule_at t.engine due (check_timeout t conn op po))
    else if po.po_retryable && po.po_attempts < t.cfg.max_retries then begin
      po.po_attempts <- po.po_attempts + 1;
      po.po_last_activity <- now;
      Telemetry.incr t.c_retries;
      Telemetry.instant t.tel ~now ~actor:"controller" ~name:"op-retry" ~op:po.po_tid
        ~a0:po.po_attempts ();
      record t ~kind:"op-retry"
        ~detail:
          (Printf.sprintf "op=%d attempt=%d %s" op po.po_attempts
             (Message.describe_request po.po_req));
      transmit t conn op po.po_tid po.po_req;
      ignore
        (Engine.schedule_at t.engine
           Time.(now + backoff_delay t po.po_attempts)
           (check_timeout t conn op po))
    end
    else begin
      Hashtbl.remove conn.pending op;
      Telemetry.incr t.c_timeouts;
      Telemetry.span_end t.tel ~now po.po_span;
      Telemetry.observe t.h_op Time.(to_seconds (now - po.po_started));
      record t ~kind:"op-timeout"
        ~detail:(Printf.sprintf "op=%d %s" op (Message.describe_request po.po_req));
      ignore
        (po.po_handler
           (Message.Op_error (Errors.Timeout (Message.describe_request po.po_req))))
    end
  end

(* Send [req] to [conn], registering [handler] for its replies. *)
let op_send ?(retryable = true) t conn req handler =
  let op = conn.next_op in
  conn.next_op <- op + 1;
  let now = Engine.now t.engine in
  let tid = Telemetry.next_op_id t.tel in
  let span =
    Telemetry.span_begin t.tel ~now ~actor:"controller"
      ~name:(Message.request_name req) ~op:tid ~a0:op ()
  in
  let po =
    {
      po_req = req;
      po_handler = handler;
      po_retryable = retryable;
      po_tid = tid;
      po_span = span;
      po_started = now;
      po_attempts = 0;
      po_last_activity = now;
    }
  in
  Hashtbl.replace conn.pending op po;
  transmit t conn op tid req;
  if timeouts_enabled t then
    ignore
      (Engine.schedule_at t.engine
         Time.(Engine.now t.engine + backoff_delay t 0)
         (check_timeout t conn op po))

(* Fire-and-forget request (deferred deletes, event forwarding). *)
let op_send_ignore t conn req =
  op_send t conn req (fun _ -> `Done)

let fail_async t err on_done =
  ignore (Engine.schedule_after t.engine Time.zero (fun () -> on_done (Error err)))

(* ------------------------------------------------------------------ *)
(* Event handling                                                      *)
(* ------------------------------------------------------------------ *)

let shared_key_id = ""

let transfer_key_id transfer key =
  match transfer.kind with
  | T_move -> Hfl.to_string key
  | T_clone | T_merge -> shared_key_id

let forward_reprocess t transfer ev =
  if not t.cfg.forward_events then Telemetry.incr t.c_evt_dropped
  else
  match ev with
  | Event.Reprocess { key; packet } -> (
    match find_conn t transfer.dst with
    | None -> Telemetry.incr t.c_evt_dropped
    | Some dst_conn ->
      transfer.events_fwd <- transfer.events_fwd + 1;
      Telemetry.incr t.c_evt_fwd;
      record t ~kind:"event-fwd"
        ~detail:(Printf.sprintf "%s->%s %s" transfer.src transfer.dst (Event.describe ev));
      op_send_ignore t dst_conn (Message.Reprocess_packet { key; packet }))
  | Event.Introspect _ -> ()

let buffer_event t transfer key ev =
  let id = transfer_key_id transfer key in
  let q =
    match Hashtbl.find_opt transfer.buffered id with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace transfer.buffered id q;
      q
  in
  Queue.push ev q;
  transfer.buffered_count <- transfer.buffered_count + 1;
  let total =
    List.fold_left (fun acc tr -> acc + tr.buffered_count) 0 t.transfers
  in
  Telemetry.set_gauge t.g_buf total

let flush_buffered t transfer id =
  match Hashtbl.find_opt transfer.buffered id with
  | None -> ()
  | Some q ->
    Hashtbl.remove transfer.buffered id;
    Queue.iter
      (fun ev ->
        transfer.buffered_count <- transfer.buffered_count - 1;
        forward_reprocess t transfer ev)
      q

let handle_reprocess_event t src_name ev key =
  (* Route to the transfer whose source raised it and whose scope
     covers the key.  Events about shared state carry the empty key and
     can only belong to a clone/merge; keyed events prefer a move
     transfer covering the key, falling back to a concurrent
     clone/merge (which replays every packet).  Most-recent transfer
     wins on a remaining tie. *)
  let is_shared_event = key = Hfl.any in
  let move_match tr =
    String.equal tr.src src_name
    && (match tr.kind with T_move -> true | T_clone | T_merge -> false)
    && Hfl.subsumes tr.hfl key
  in
  let shared_match tr =
    String.equal tr.src src_name
    && match tr.kind with T_clone | T_merge -> true | T_move -> false
  in
  let found =
    if is_shared_event then List.find_opt shared_match t.transfers
    else
      match List.find_opt move_match t.transfers with
      | Some tr -> Some tr
      | None -> List.find_opt shared_match t.transfers
  in
  match found with
  | None -> Telemetry.incr t.c_evt_dropped
  | Some transfer ->
    transfer.last_event <- Engine.now t.engine;
    let id = transfer_key_id transfer key in
    (* Forward once the destination holds the state the event applies
       to: either its puts have all been acknowledged, or the source's
       export stream has ended without a chunk for this key — the flow
       started mid-move and exists only through its replayed packets. *)
    let ready =
      Hashtbl.mem transfer.acked id
      || (transfer.open_gets = 0 && not (Hashtbl.mem transfer.putting id))
    in
    if ready then forward_reprocess t transfer ev else buffer_event t transfer key ev

let handle_introspect_event t src_name ev =
  match ev with
  | Event.Introspect { code; key; _ } ->
    List.iter
      (fun s ->
        if
          String.equal s.sub_mb src_name
          && (s.sub_codes = [] || List.mem code s.sub_codes)
          && Hfl.subsumes s.sub_key key
        then s.sub_handler ev)
      t.subscriptions
  | Event.Reprocess _ -> ()

(* ------------------------------------------------------------------ *)
(* Connection management                                               *)
(* ------------------------------------------------------------------ *)

let dispatch_from_mb t mb_name msg =
  match msg with
  | Message.Event_msg (Event.Reprocess { key; _ } as ev) ->
    handle_reprocess_event t mb_name ev key
  | Message.Event_msg (Event.Introspect _ as ev) -> handle_introspect_event t mb_name ev
  | Message.Reply { op; reply } -> (
    match find_conn t mb_name with
    | None -> ()
    | Some conn -> (
      match Hashtbl.find_opt conn.pending op with
      | None -> ()
      | Some po -> (
        let now = Engine.now t.engine in
        po.po_last_activity <- now;
        match po.po_handler reply with
        | `Keep -> ()
        | `Done ->
          Hashtbl.remove conn.pending op;
          Telemetry.span_end t.tel ~now po.po_span;
          Telemetry.observe t.h_op Time.(to_seconds (now - po.po_started)))))

type remote = {
  to_agent : Shard.route;
  to_controller : Shard.route;
  agent_faults : Faults.t option;
}

let connect t ?framing ?remote ?(id_base = 0) ?(arm_faults = true) agent =
  let name = Mb_agent.name agent in
  if Hashtbl.mem t.mbs name then
    failwith (Printf.sprintf "Controller.connect: duplicate MB name %s" name);
  (* The framing is negotiated once per MB connection — the config
     default unless this MB asked for an override — and sizes every
     message on its three channels. *)
  let framing = Option.value framing ~default:t.cfg.framing in
  (* Control-plane direction mapping: the op channel is the link's
     forward direction, replies and events travel the reverse one. *)
  let faulted inst tag dir =
    match inst with
    | None -> None
    | Some f -> Some (Faults.link f ~dir ~name:(name ^ "/" ^ tag) ())
  in
  let deliver msg =
    (* Receiving costs controller CPU proportional to message size. *)
    cpu t (Message.reply_wire_bytes ~framing msg) (fun () -> dispatch_from_mb t name msg)
  in
  (* Up-channels (MB → controller) are driven by the agent's sends, so
     with a remote agent they must live on the agent's engine, draw from
     the agent's telemetry and fault instances, and only hand the final
     delivery back to the controller's shard via the route. *)
  let mk_channel tag =
    match remote with
    | None ->
      Channel.create t.engine ?faults:(faulted t.faults tag `Rev) ~telemetry:t.tel
        ~latency:t.cfg.channel_latency ~bytes_per_sec:t.cfg.channel_bandwidth ~deliver ()
    | Some r ->
      Channel.create (Mb_agent.engine agent)
        ?faults:(faulted r.agent_faults tag `Rev)
        ?telemetry:(Mb_agent.telemetry agent)
        ~via:r.to_controller.Shard.route ~latency:t.cfg.channel_latency
        ~bytes_per_sec:t.cfg.channel_bandwidth ~deliver ()
  in
  let reply_ch = mk_channel "reply" and event_ch = mk_channel "event" in
  (* The op channel is driven by controller sends and stays local; with
     a remote agent only the delivery execution crosses shards. *)
  let to_mb =
    Channel.create t.engine ?faults:(faulted t.faults "op" `Fwd) ~telemetry:t.tel
      ?via:(Option.map (fun r -> r.to_agent.Shard.route) remote)
      ~latency:t.cfg.channel_latency ~bytes_per_sec:t.cfg.channel_bandwidth
      ~deliver:(fun msg -> Mb_agent.handle_request agent msg)
      ()
  in
  Mb_agent.set_uplinks agent
    ~send_reply:(fun msg ->
      Channel.send reply_ch ~bytes:(Message.reply_wire_bytes ~framing msg) msg)
    ~send_event:(fun msg ->
      Channel.send event_ch ~bytes:(Message.reply_wire_bytes ~framing msg) msg);
  (* Crash schedules mutate the agent, so they are armed on the agent's
     own fault instance when it has one; otherwise the controller-side
     plan fires them and routes the mutation onto the agent's shard.
     [arm_faults = false] skips arming entirely — a replica re-adopting
     an agent after failover must not double-schedule the plan's
     crashes. *)
  (if not arm_faults then ()
   else
  match remote with
  | Some { agent_faults = Some f; _ } ->
    Faults.arm_crashes f ~name
      ~on_crash:(fun () -> Mb_agent.crash agent)
      ~on_restart:(fun () -> Mb_agent.restart agent)
  | Some ({ agent_faults = None; _ } as r) -> (
    match t.faults with
    | None -> ()
    | Some f ->
      let route k = r.to_agent.Shard.route ~at:(Engine.now t.engine) k () in
      Faults.arm_crashes f ~name
        ~on_crash:(fun () -> route (fun () -> Mb_agent.crash agent))
        ~on_restart:(fun () -> route (fun () -> Mb_agent.restart agent)))
  | None -> (
    match t.faults with
    | None -> ()
    | Some f ->
      Faults.arm_crashes f ~name
        ~on_crash:(fun () -> Mb_agent.crash agent)
        ~on_restart:(fun () -> Mb_agent.restart agent)));
  (* [id_base] offsets this connection's op and sequence counters.  An
     agent's dedup caches survive a controller failover (the agent did
     not crash), so a successor controller must start numbering above
     anything its predecessor could have issued or its first mutations
     would be swallowed as replays. *)
  Hashtbl.replace t.mbs name
    {
      agent;
      to_mb;
      framing;
      next_op = id_base;
      next_seq = id_base;
      pending = Hashtbl.create 16;
    }

let disconnect t name =
  (match find_conn t name with
  | Some conn ->
    (* Abandon in-flight ops: their handlers never fire and their
       timeout chains die at the next check. *)
    Hashtbl.reset conn.pending
  | None -> ());
  Hashtbl.remove t.mbs name;
  t.transfers <-
    List.filter (fun tr -> not (String.equal tr.src name || String.equal tr.dst name))
      t.transfers

let mb_names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.mbs []

(* ------------------------------------------------------------------ *)
(* Simple northbound operations                                        *)
(* ------------------------------------------------------------------ *)

let with_conn t name on_err k =
  match find_conn t name with
  | None -> fail_async t (Errors.Unknown_mb name) on_err
  | Some conn -> k conn

let read_config t ~src ~key ~on_done =
  with_conn t src on_done (fun conn ->
      op_send t conn (Message.Get_config key) (fun reply ->
          (match reply with
          | Message.Config_values entries -> on_done (Ok entries)
          | Message.Op_error e -> on_done (Error e)
          | Message.State_chunk _ | Message.End_of_state _ | Message.Ack
          | Message.Stats_reply _ | Message.Batch_ack _ ->
            on_done (Error (Errors.Op_failed "unexpected reply to getConfig")));
          `Done))

let expect_ack on_done reply =
  (match reply with
  | Message.Ack -> on_done (Ok ())
  | Message.Op_error e -> on_done (Error e)
  | Message.State_chunk _ | Message.End_of_state _ | Message.Config_values _
  | Message.Stats_reply _ | Message.Batch_ack _ ->
    on_done (Error (Errors.Op_failed "unexpected reply")));
  `Done

let write_config t ~dst ~key ~values ~on_done =
  with_conn t dst on_done (fun conn ->
      op_send t conn (Message.Set_config (key, values)) (expect_ack on_done))

let del_config t ~dst ~key ~on_done =
  with_conn t dst on_done (fun conn ->
      op_send t conn (Message.Del_config key) (expect_ack on_done))

(* Northbound failover-recovery surface.  [abort_perflow] clears the
   moved marks a dead leader's partial export left at [mb], making the
   state re-exportable before a successor re-runs the move.
   [delete_perflow] re-issues the deferred delete of a move whose
   completion outlived its leader: it removes only moved-marked entries,
   so replaying it after the original delete (or against untouched
   state) is harmless. *)
let abort_perflow t ~mb ~key ~on_done =
  with_conn t mb on_done (fun conn ->
      op_send t conn (Message.Abort_perflow key) (expect_ack on_done))

let delete_perflow t ~mb ~key ~on_done =
  with_conn t mb on_done (fun conn ->
      let remaining = ref 2 in
      let failed = ref None in
      let leg reply =
        (match reply with
        | Message.Ack -> ()
        | Message.Op_error e -> if !failed = None then failed := Some e
        | Message.State_chunk _ | Message.End_of_state _ | Message.Config_values _
        | Message.Stats_reply _ | Message.Batch_ack _ ->
          if !failed = None then failed := Some (Errors.Op_failed "unexpected reply"));
        decr remaining;
        if !remaining = 0 then
          on_done (match !failed with Some e -> Error e | None -> Ok ());
        `Done
      in
      op_send t conn (Message.Del_support_perflow key) leg;
      op_send t conn (Message.Del_report_perflow key) leg)

let stats t ~src ~key ~on_done =
  with_conn t src on_done (fun conn ->
      op_send t conn (Message.Get_stats key) (fun reply ->
          (match reply with
          | Message.Stats_reply s -> on_done (Ok s)
          | Message.Op_error e -> on_done (Error e)
          | Message.State_chunk _ | Message.End_of_state _ | Message.Ack
          | Message.Config_values _ | Message.Batch_ack _ ->
            on_done (Error (Errors.Op_failed "unexpected reply to stats")));
          `Done))

let unsubscribe_introspection t ~mb ~codes =
  t.subscriptions <-
    List.filter
      (fun s ->
        not
          (String.equal s.sub_mb mb
          && (codes = [] || List.exists (fun c -> List.mem c s.sub_codes) codes)))
      t.subscriptions;
  match find_conn t mb with
  | None -> ()
  | Some conn -> op_send_ignore t conn (Message.Disable_events { codes })

let subscribe_introspection t ?expires_after ~mb ~codes ~key ~handler () =
  with_conn t mb
    (fun _ -> ())
    (fun conn ->
      t.subscriptions <-
        { sub_mb = mb; sub_codes = codes; sub_key = key; sub_handler = handler }
        :: t.subscriptions;
      op_send_ignore t conn (Message.Enable_events { codes; key });
      (* §4.2.2: event generation can be limited to a fixed period so
         controller, network and MB are not at risk of overload. *)
      match expires_after with
      | None -> ()
      | Some delay ->
        ignore
          (Engine.schedule_after t.engine delay (fun () ->
               unsubscribe_introspection t ~mb ~codes)))

(* cloneConfig (§5): a composition of readConfig and writeConfig that
   duplicates a configuration subtree onto another instance. *)
let clone_config t ~src ~dst ~key ~on_done =
  read_config t ~src ~key ~on_done:(fun res ->
      match res with
      | Error e -> on_done (Error e)
      | Ok entries ->
        let total = List.length entries in
        if total = 0 then on_done (Ok 0)
        else begin
          let remaining = ref total in
          let failed = ref None in
          List.iter
            (fun (entry : Config_tree.entry) ->
              write_config t ~dst ~key:entry.path ~values:entry.values
                ~on_done:(fun res ->
                  (match res with
                  | Error e when !failed = None -> failed := Some e
                  | Error _ | Ok () -> ());
                  decr remaining;
                  if !remaining = 0 then
                    match !failed with
                    | Some e -> on_done (Error e)
                    | None -> on_done (Ok total)))
            entries
        end)

(* ------------------------------------------------------------------ *)
(* Transfers: move / clone / merge                                     *)
(* ------------------------------------------------------------------ *)

let finalize_transfer t transfer =
  t.transfers <- List.filter (fun tr -> tr.t_id <> transfer.t_id) t.transfers;
  record t ~kind:"transfer-final"
    ~detail:(Printf.sprintf "#%d %s->%s" transfer.t_id transfer.src transfer.dst);
  match transfer.kind with
  | T_move -> (
    (* Deferred delete of the moved state at the source (Fig. 5). *)
    match find_conn t transfer.src with
    | None -> ()
    | Some src_conn ->
      op_send_ignore t src_conn (Message.Del_support_perflow transfer.hfl);
      op_send_ignore t src_conn (Message.Del_report_perflow transfer.hfl))
  | T_clone | T_merge -> ()

let rec schedule_quiescence_check t transfer =
  let due = Time.(transfer.last_event + t.cfg.quiescence) in
  let delay = Time.(due - Engine.now t.engine) in
  (* Clamp to a positive minimum: floating-point rounding can make
     [due - now] collapse to zero while [now - last_event] still
     compares below the quiescence threshold, which would re-arm the
     check at the same instant forever. *)
  let delay = Time.max delay (Time.ms 1.0) in
  ignore
    (Engine.schedule_after t.engine delay (fun () ->
         if (not t.fenced) && List.exists (fun tr -> tr.t_id = transfer.t_id) t.transfers
         then begin
           let idle = Time.(Engine.now t.engine - transfer.last_event) in
           if Time.compare idle t.cfg.quiescence >= 0 then finalize_transfer t transfer
           else schedule_quiescence_check t transfer
         end))

let maybe_return t transfer =
  if (not transfer.returned) && transfer.open_gets = 0 && transfer.pending_puts = 0 then begin
    transfer.returned <- true;
    Telemetry.span_end t.tel ~now:(Engine.now t.engine) transfer.t_span;
    Telemetry.observe t.h_transfer
      Time.(to_seconds (Engine.now t.engine - transfer.started));
    (* Any still-buffered events belong to flows that started mid-move
       (no chunk was ever exported for them): replay them now, in
       order — the destination rebuilds their state from scratch. *)
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) transfer.buffered [] in
    List.iter (flush_buffered t transfer) ids;
    transfer.last_event <- Engine.now t.engine;
    record t ~kind:"transfer-done"
      ~detail:
        (Printf.sprintf "#%d %s->%s chunks=%d" transfer.t_id transfer.src transfer.dst
           transfer.chunks);
    transfer.on_done
      (Ok
         {
           chunks_moved = transfer.chunks;
           bytes_moved = transfer.bytes;
           events_forwarded = transfer.events_fwd;
           duration = Time.(Engine.now t.engine - transfer.started);
         });
    schedule_quiescence_check t transfer
  end

(* Transactional rollback (the paper's move/clone are all-or-nothing
   from the caller's perspective): on any mid-transfer failure the
   source keeps its state — buffered re-process events flush back to
   it, and an [Abort_perflow] clears the moved marks its exports left
   behind so the state is re-exportable.  The destination may retain
   already-installed copies; the source stays authoritative and no
   delete is ever issued.  The caller sees [Error (Move_aborted _)]
   naming the underlying cause. *)
let abort_transfer t transfer err =
  if not transfer.returned then begin
    transfer.returned <- true;
    t.transfers <- List.filter (fun tr -> tr.t_id <> transfer.t_id) t.transfers;
    Telemetry.incr t.c_aborted;
    Telemetry.span_end t.tel ~now:(Engine.now t.engine) transfer.t_span;
    (match find_conn t transfer.src with
    | None ->
      Hashtbl.iter
        (fun _ q -> Telemetry.add t.c_evt_dropped (Queue.length q))
        transfer.buffered
    | Some src_conn ->
      Hashtbl.iter
        (fun _ q ->
          Queue.iter
            (fun ev ->
              match ev with
              | Event.Reprocess { key; packet } ->
                Telemetry.incr t.c_evt_returned;
                op_send_ignore t src_conn (Message.Reprocess_packet { key; packet })
              | Event.Introspect _ -> ())
            q)
        transfer.buffered;
      match transfer.kind with
      | T_move -> op_send_ignore t src_conn (Message.Abort_perflow transfer.hfl)
      | T_clone | T_merge -> ());
    Hashtbl.reset transfer.buffered;
    transfer.buffered_count <- 0;
    record t ~kind:"transfer-abort"
      ~detail:
        (Printf.sprintf "#%d %s->%s: %s" transfer.t_id transfer.src transfer.dst
           (Errors.to_string err));
    let err =
      match err with
      | Errors.Move_aborted _ -> err
      | e -> Errors.Move_aborted (Errors.to_string e)
    in
    transfer.on_done (Error err)
  end

let chunk_key_id (chunk : Chunk.t) =
  match chunk.partition with
  | Taxonomy.Per_flow -> Hfl.to_string chunk.key
  | Taxonomy.Shared -> shared_key_id

(* Track a chunk the moment it is received from the get stream: it is
   now this transfer's responsibility, events on its key must buffer
   until the destination acknowledges it. *)
let track_chunk t transfer (chunk : Chunk.t) =
  transfer.pending_puts <- transfer.pending_puts + 1;
  transfer.chunks <- transfer.chunks + 1;
  transfer.bytes <- transfer.bytes + Chunk.size_bytes chunk;
  let id = chunk_key_id chunk in
  if not (Hashtbl.mem transfer.put_started id) then
    Hashtbl.replace transfer.put_started id (Engine.now t.engine);
  let n = try Hashtbl.find transfer.putting id with Not_found -> 0 in
  Hashtbl.replace transfer.putting id (n + 1)

(* The per-key bookkeeping one acknowledged chunk performs; the batched
   path runs it once per chunk, in batch order, so reprocess-event
   buffering and flushing behave exactly as under sequential acks.  A
   key becomes [acked] — and its buffered events flush — only when its
   last outstanding chunk is acknowledged, so a flow with both
   supporting and reporting state never sees events forwarded after
   half its state landed. *)
let ack_chunk t transfer key_id =
  transfer.pending_puts <- transfer.pending_puts - 1;
  let n = try Hashtbl.find transfer.putting key_id with Not_found -> 1 in
  if n <= 1 then begin
    Hashtbl.remove transfer.putting key_id;
    Hashtbl.replace transfer.acked key_id ();
    (* Every chunk under the key is installed: the key's serialization
       window — first export to last ack — closes here. *)
    (match Hashtbl.find_opt transfer.put_started key_id with
    | Some started ->
      Hashtbl.remove transfer.put_started key_id;
      Telemetry.observe t.h_serial Time.(to_seconds (Engine.now t.engine - started))
    | None -> ());
    flush_buffered t transfer key_id
  end
  else Hashtbl.replace transfer.putting key_id (n - 1)

(* Issue a put for a streamed chunk and track its acknowledgement —
   the legacy one-message-per-chunk path, kept for [batch_chunks <= 1]
   (and as the semantic reference the equivalence property test holds
   the batched pipeline to). *)
let issue_put t transfer dst_conn (chunk : Chunk.t) =
  let seq = alloc_seq dst_conn in
  let req =
    match (chunk.role, chunk.partition) with
    | Taxonomy.Supporting, Taxonomy.Per_flow -> Message.Put_support_perflow { seq; chunk }
    | Taxonomy.Supporting, Taxonomy.Shared -> Message.Put_support_shared { seq; chunk }
    | Taxonomy.Reporting, Taxonomy.Per_flow -> Message.Put_report_perflow { seq; chunk }
    | Taxonomy.Reporting, Taxonomy.Shared -> Message.Put_report_shared { seq; chunk }
    | Taxonomy.Configuring, (Taxonomy.Per_flow | Taxonomy.Shared) ->
      (* Configuration state never travels as chunks. *)
      Message.Put_support_shared { seq; chunk }
  in
  track_chunk t transfer chunk;
  let key_id = chunk_key_id chunk in
  op_send t dst_conn req (fun reply ->
      (match reply with
      | Message.Ack ->
        ack_chunk t transfer key_id;
        maybe_return t transfer
      | Message.Op_error e -> abort_transfer t transfer e
      | Message.State_chunk _ | Message.End_of_state _ | Message.Config_values _
      | Message.Stats_reply _ | Message.Batch_ack _ ->
        abort_transfer t transfer (Errors.Op_failed "unexpected reply to put"));
      `Done)

(* Cut one size-bounded batch off the head of the queue, preserving
   stream order. *)
let next_batch t transfer =
  let batch = ref [] and n = ref 0 and bytes = ref 0 in
  while
    (not (Queue.is_empty transfer.queued))
    && !n < t.cfg.batch_chunks
    && (!n = 0 || !bytes < t.cfg.batch_bytes)
  do
    let c = Queue.pop transfer.queued in
    transfer.queued_bytes <- transfer.queued_bytes - Chunk.size_bytes c;
    batch := c :: !batch;
    incr n;
    bytes := !bytes + Chunk.size_bytes c
  done;
  List.rev !batch

(* Drain the queue into Put_batch messages while the send window has
   room.  A batch is cut when enough chunks or bytes have accumulated,
   or unconditionally once every get stream has ended (the flush of the
   final partial batch).  Acks re-enter here to refill the window. *)
let rec pump t transfer dst_conn =
  let ready_to_cut () =
    (not transfer.returned)
    && (not (Queue.is_empty transfer.queued))
    && transfer.inflight_batches < t.cfg.put_window
    && (Queue.length transfer.queued >= t.cfg.batch_chunks
       || transfer.queued_bytes >= t.cfg.batch_bytes
       || transfer.open_gets = 0)
  in
  if ready_to_cut () then begin
    let batch = next_batch t transfer in
    transfer.inflight_batches <- transfer.inflight_batches + 1;
    Telemetry.set_gauge t.g_window transfer.inflight_batches;
    op_send t dst_conn
      (Message.Put_batch { seq = alloc_seq dst_conn; chunks = batch })
      (fun reply ->
        transfer.inflight_batches <- transfer.inflight_batches - 1;
        Telemetry.set_gauge t.g_window transfer.inflight_batches;
        (match reply with
        | Message.Batch_ack { seq = _; count = _; errors } ->
          (* Acknowledge the batch's chunks in order up to the first
             failure — exactly what N sequential acks would do. *)
          (try
             List.iteri
               (fun idx chunk ->
                 match List.assoc_opt idx errors with
                 | Some e ->
                   abort_transfer t transfer e;
                   raise Exit
                 | None -> ack_chunk t transfer (chunk_key_id chunk))
               batch
           with Exit -> ());
          maybe_return t transfer;
          pump t transfer dst_conn
        | Message.Op_error e -> abort_transfer t transfer e
        | Message.Ack | Message.State_chunk _ | Message.End_of_state _
        | Message.Config_values _ | Message.Stats_reply _ ->
          abort_transfer t transfer (Errors.Op_failed "unexpected reply to putBatch"));
        `Done);
    pump t transfer dst_conn
  end

let enqueue_chunk t transfer dst_conn chunk =
  track_chunk t transfer chunk;
  Queue.push chunk transfer.queued;
  transfer.queued_bytes <- transfer.queued_bytes + Chunk.size_bytes chunk;
  pump t transfer dst_conn

(* Handler for one of the source-side get streams of a transfer.  Each
   stream keeps its own accounting so losses, duplicates and reorder on
   the reply channel are detected rather than silently corrupting the
   move: duplicated chunks are dropped, and the stream only closes once
   the [End_of_state] count has been reconciled against the chunks
   actually received — a missing chunk keeps the op open until its
   timeout aborts the transfer. *)
let get_stream_handler t transfer dst_conn =
  let seen = Hashtbl.create 16 in
  let received = ref 0 in
  let announced = ref (-1) in
  let close () =
    transfer.open_gets <- transfer.open_gets - 1;
    if t.cfg.batch_chunks > 1 then pump t transfer dst_conn;
    maybe_return t transfer
  in
  fun reply ->
    if transfer.returned then `Done
    else
      match reply with
      | Message.State_chunk chunk ->
        let id = chunk_key_id chunk in
        if Hashtbl.mem seen id then `Keep
        else begin
          Hashtbl.replace seen id ();
          incr received;
          if t.cfg.batch_chunks <= 1 then issue_put t transfer dst_conn chunk
          else enqueue_chunk t transfer dst_conn chunk;
          if !announced >= 0 && !received >= !announced then begin
            close ();
            `Done
          end
          else `Keep
        end
      | Message.End_of_state { count } ->
        if !received >= count then begin
          close ();
          `Done
        end
        else begin
          (* Chunks overtaken by the end marker are still in flight:
             keep the op open until they arrive (or its timeout aborts
             the transfer). *)
          announced := count;
          `Keep
        end
      | Message.Op_error e ->
        abort_transfer t transfer e;
        `Done
      | Message.Ack | Message.Config_values _ | Message.Stats_reply _
      | Message.Batch_ack _ ->
        abort_transfer t transfer (Errors.Op_failed "unexpected reply to get");
        `Done

let start_transfer t ~kind ~src ~dst ~hfl ~gets ~on_done =
  match (find_conn t src, find_conn t dst) with
  | None, _ -> fail_async t (Errors.Unknown_mb src) on_done
  | _, None -> fail_async t (Errors.Unknown_mb dst) on_done
  | Some src_conn, Some dst_conn ->
    let src_impl = Mb_agent.impl src_conn.agent in
    let dst_impl = Mb_agent.impl dst_conn.agent in
    if not (String.equal src_impl.kind dst_impl.kind) then
      fail_async t
        (Errors.Illegal_operation
           (Printf.sprintf "cannot transfer state between MB kinds %s and %s"
              src_impl.kind dst_impl.kind))
        on_done
    else begin
      match Southbound.check_granularity src_impl hfl with
      | Error e -> fail_async t e on_done
      | Ok () ->
        let kind_name =
          match kind with T_move -> "move" | T_clone -> "clone" | T_merge -> "merge"
        in
        let transfer =
          {
            t_id = t.next_transfer;
            t_span =
              Telemetry.span_begin t.tel ~now:(Engine.now t.engine) ~actor:"controller"
                ~name:kind_name
                ~op:(Telemetry.next_op_id t.tel)
                ~a0:t.next_transfer ();
            kind;
            src;
            dst;
            hfl;
            started = Engine.now t.engine;
            open_gets = List.length gets;
            pending_puts = 0;
            queued = Queue.create ();
            queued_bytes = 0;
            inflight_batches = 0;
            returned = false;
            chunks = 0;
            bytes = 0;
            events_fwd = 0;
            acked = Hashtbl.create 64;
            putting = Hashtbl.create 64;
            buffered = Hashtbl.create 16;
            buffered_count = 0;
            last_event = Engine.now t.engine;
            put_started = Hashtbl.create 64;
            on_done;
          }
        in
        t.next_transfer <- t.next_transfer + 1;
        t.transfers <- transfer :: t.transfers;
        record t ~kind:"transfer-start"
          ~detail:
            (Printf.sprintf "#%d %s %s->%s %s" transfer.t_id kind_name src dst
               (Hfl.to_string hfl));
        (* Gets are retryable, and retransmission doubles as the stream's
           ARQ: the agent replays a completed op's cached replies under
           the same op number (re-delivering chunks lost on the reply
           channel; the handler's dedup absorbs the repeats), drops the
           duplicate while the op is still executing, and only re-executes
           when the original request never arrived — in which case nothing
           was exported and a fresh export is sound.  The unsound case, an
           agent restart wiping the replay cache mid-transfer, is refused
           at the source (moved marks present → error → abort). *)
        List.iter
          (fun req ->
            op_send t src_conn req (get_stream_handler t transfer dst_conn))
          gets
    end

let move_internal t ~src ~dst ~key ~on_done =
  start_transfer t ~kind:T_move ~src ~dst ~hfl:key
    ~gets:[ Message.Get_support_perflow key; Message.Get_report_perflow key ]
    ~on_done

let clone_support t ~src ~dst ~on_done =
  start_transfer t ~kind:T_clone ~src ~dst ~hfl:Hfl.any
    ~gets:[ Message.Get_support_shared ] ~on_done

let merge_internal t ~src ~dst ~on_done =
  start_transfer t ~kind:T_merge ~src ~dst ~hfl:Hfl.any
    ~gets:[ Message.Get_support_shared; Message.Get_report_shared ]
    ~on_done

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let events_buffered_peak t = Telemetry.gauge_peak t.g_buf
let events_forwarded t = Telemetry.counter_value t.c_evt_fwd
let events_dropped t = Telemetry.counter_value t.c_evt_dropped
let events_returned t = Telemetry.counter_value t.c_evt_returned
let active_transfers t = List.length t.transfers
let messages_processed t = Telemetry.counter_value t.c_msgs
let op_retries t = Telemetry.counter_value t.c_retries
let op_timeouts t = Telemetry.counter_value t.c_timeouts
let transfers_aborted t = Telemetry.counter_value t.c_aborted

(* The record is a point-in-time view of the registry counters; the
   registry itself (via [telemetry]) is the richer interface. *)
let counters t =
  {
    msgs_processed = Telemetry.counter_value t.c_msgs;
    evt_forwarded = Telemetry.counter_value t.c_evt_fwd;
    evt_dropped = Telemetry.counter_value t.c_evt_dropped;
    evt_returned = Telemetry.counter_value t.c_evt_returned;
    evt_buffered_peak = Telemetry.gauge_peak t.g_buf;
    op_retries = Telemetry.counter_value t.c_retries;
    op_timeouts = Telemetry.counter_value t.c_timeouts;
    aborted_transfers = Telemetry.counter_value t.c_aborted;
    dedup_hits = Telemetry.counter_value t.c_dedup;
  }

let pp_counters fmt c =
  Format.fprintf fmt
    "msgs=%d fwd=%d dropped=%d returned=%d buf-peak=%d retries=%d timeouts=%d aborts=%d \
     dedup=%d"
    c.msgs_processed c.evt_forwarded c.evt_dropped c.evt_returned c.evt_buffered_peak
    c.op_retries c.op_timeouts c.aborted_transfers c.dedup_hits
