(** Middlebox-side OpenMB runtime.

    Wraps a {!Southbound.impl} and attaches it to the MB controller:
    receives requests from the controller connection, executes them on
    the MB's (serial) control thread while charging the impl's
    simulated CPU costs, streams state chunks and acknowledgements
    back, and forwards the MB's events — subject to the introspection
    filter — up the event connection.

    This is the analog of the ≈500-line common code base the paper
    links into each modified middlebox (§7). *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  impl:Southbound.impl ->
  unit ->
  t
(** An agent not yet attached to a controller.

    With [telemetry], the agent counts its replay-cache hits
    (["mb.dedup_hits"]) and raised events (["mb.events_raised"]),
    observes per-chunk serialize/deserialize costs (["mb.serialize"],
    ["mb.apply"] histograms), and emits one trace span per executed
    request — tagged with the causality id ({!Message.to_mb.tid}) the
    controller stamped on the wire message, so a shared instance links
    both sides of every op.  Pass the controller's
    {!Controller.telemetry} to get linked traces. *)

val impl : t -> Southbound.impl
val name : t -> string

val engine : t -> Openmb_sim.Engine.t
(** The engine this agent executes on — the agent's shard in a sharded
    simulation.  {!Controller.connect} with [?remote] uses it to keep
    the agent-side channels on the agent's engine. *)

val telemetry : t -> Openmb_sim.Telemetry.t option
(** The instance passed to {!create}, if any. *)

val set_uplinks :
  t ->
  send_reply:(Message.from_mb -> unit) ->
  send_event:(Message.from_mb -> unit) ->
  unit
(** Install the transmit functions toward the controller (set up by
    {!Controller.connect}): one for op replies, one for events,
    mirroring the paper's two threads per MB. *)

val handle_request : t -> Message.to_mb -> unit
(** Entry point for requests arriving from the controller.  Requests
    are executed at most once: duplicated deliveries of a completed op
    replay its recorded replies, duplicates of a running op are
    dropped, and sequence-numbered mutations ([Put_*], [Put_batch])
    replay their original outcome even when retried under a fresh op
    id.  While {!crash}ed, requests are silently dropped. *)

(** {1 Crash model}

    A crash abandons everything in flight on the control thread and
    wipes the volatile at-most-once caches — after a {!restart} a
    retried put re-applies, which is safe because per-flow puts
    overwrite.  Durable state survives: the MB's own state tables, its
    configuration tree, and the introspection filter. *)

val crash : t -> unit
(** Take the MB down: drop in-flight southbound operations, stop
    accepting requests, and stop emitting events.  Idempotent. *)

val restart : t -> unit
(** Bring a crashed MB back up with empty volatile caches.  A no-op if
    not crashed. *)

val is_crashed : t -> bool
val crash_count : t -> int

val op_active : t -> bool
(** Whether a state operation is currently executing. *)

val ops_handled : t -> int
(** Total requests processed (for reporting). *)

val events_raised : t -> int
(** Events the MB emitted that passed the filter and were sent. *)
