open Openmb_sim
open Openmb_net

type t = Packet.t array

let of_packets pkts =
  let arr = Array.of_list pkts in
  Array.stable_sort (fun (a : Packet.t) (b : Packet.t) -> Time.compare a.ts b.ts) arr;
  arr

let packets t = Array.to_list t
let packet_count t = Array.length t

let payload_bytes t =
  Array.fold_left (fun acc p -> acc + Packet.body_bytes p) 0 t

let duration t = if Array.length t = 0 then Time.zero else t.(Array.length t - 1).Packet.ts

let merge traces = of_packets (List.concat_map packets traces)

let filter t ~f = Array.of_list (List.filter f (Array.to_list t))

let replay engine t ~into =
  (* Closure-free: one pooled event cell per packet, no per-packet
     closure or handle. *)
  Array.iter (fun (p : Packet.t) -> Engine.call_at engine p.ts into p) t

let replay_batched engine t ?pool ~batch ~window ~into () =
  (* Accumulate the trace through a size-or-deadline window and schedule
     one injection event per emitted batch: the scalar path's
     event-per-packet becomes an event per batch. *)
  let bld =
    Packet_batch.Builder.create ?pool ~size:batch ~window
      ~emit:(fun ~at b -> Engine.call_at engine at into b)
      ()
  in
  Array.iter (Packet_batch.Builder.add bld) t;
  Packet_batch.Builder.flush bld

module Id_gen = struct
  type gen = int ref

  let create () = ref 0

  let next g =
    let v = !g in
    incr g;
    v
end
