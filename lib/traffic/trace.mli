(** Packet traces.

    A trace is a time-sorted sequence of packets; replaying it
    schedules each packet's injection into the simulated network at its
    timestamp.  The generators in this library synthesize traces with
    the distributional properties of the paper's three capture sets
    (cloud, university data center, high-redundancy). *)

type t
(** An immutable, time-sorted packet trace. *)

val of_packets : Openmb_net.Packet.t list -> t
(** Sorts by timestamp (stable). *)

val packets : t -> Openmb_net.Packet.t list
val packet_count : t -> int

val payload_bytes : t -> int
(** Total body bytes across the trace. *)

val duration : t -> Openmb_sim.Time.t
(** Last timestamp (traces start at/after zero). *)

val merge : t list -> t
(** Interleave traces by timestamp. *)

val filter : t -> f:(Openmb_net.Packet.t -> bool) -> t

val replay : Openmb_sim.Engine.t -> t -> into:(Openmb_net.Packet.t -> unit) -> unit
(** Schedule every packet's delivery to [into] at its timestamp.
    Raises [Invalid_argument] if the engine clock is already past the
    first packet. *)

val replay_batched :
  Openmb_sim.Engine.t ->
  t ->
  ?pool:Openmb_net.Packet_batch.pool ->
  batch:int ->
  window:Openmb_sim.Time.t ->
  into:(Openmb_net.Packet_batch.t -> unit) ->
  unit ->
  unit
(** Batch replay: packets are grouped through a size-or-deadline window
    ({!Openmb_net.Packet_batch.Builder}) of at most [batch] members and
    at most [window] of timestamp spread, and each batch is delivered to
    [into] as one scheduled event (a full batch at its last member's
    timestamp, a window-expired one at its deadline).  [into] owns each
    batch.  With [?pool], batches are drawn from that pool. *)

module Id_gen : sig
  type gen
  (** Packet-id allocator shared across a run's generators. *)

  val create : unit -> gen
  val next : gen -> int
end
