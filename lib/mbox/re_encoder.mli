(** Redundancy-elimination encoder (SmartRE analog).

    Maintains one packet cache and fingerprint table {e per decoder}
    (§6.1 footnote 5).  For each packet it finds maximal runs of
    payload tokens already present in the assigned decoder's cache,
    replaces them with shims, appends the original payload to that
    cache, and forwards the (possibly smaller) encoded packet.

    Configuration state (§6.1):
    - ["NumCaches"]: raising it clones cache 0 into the new slots —
      the internal clone triggered by [writeConfig(Enc, "NumCaches", [2])];
    - ["CacheFlows"]: ordered list of destination prefixes; a packet is
      encoded against the cache whose prefix matches first
      (default: cache 0 for everything). *)

type mode = Explicit | Implicit
(** Position-sync mode stamped on encoded packets: [Explicit] carries
    the append offset (OpenMB-enabled deployments); [Implicit] is
    classic SmartRE, relying on identical packet arrival order. *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?cost:Openmb_core.Southbound.cost_model ->
  ?capacity_tokens:int ->
  ?mode:mode ->
  name:string ->
  unit ->
  t
(** [capacity_tokens] defaults to 65536 (4 MiB of content); [mode] to
    [Explicit]. *)

val default_cost : Openmb_core.Southbound.cost_model

val impl : t -> Openmb_core.Southbound.impl
val base : t -> Mb_base.t

val receive : t -> Openmb_net.Packet.t -> unit

val receive_batch : t -> Openmb_net.Packet_batch.t -> unit
(** Batch entry point: members are encoded in index order (shared
    cache state makes order observable). *)

val num_caches : t -> int

val cache : t -> int -> Re_cache.t
(** Direct cache access for tests; raises [Invalid_argument] for an
    unknown index. *)

val encoded_bytes : t -> int
(** Total payload bytes replaced by shims (the paper's "encoded
    bytes"). *)

val encoded_bytes_for : t -> int -> int
(** Same, for one cache. *)

val total_payload_bytes : t -> int
(** Total payload bytes that entered the encoder. *)
