open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

(* During a live migration two encoder-side caches (the original and
   its clone) briefly send interleaved streams through the same
   decoders.  The streams share an offset space up to the split point
   and diverge after it, so a single ring cannot hold both: the decoder
   keeps one ring per cache id, reading through to the other rings for
   offsets below the split (where the caches were mirrored and thus
   identical).  Outside migrations exactly one ring ever
   materializes. *)

type t = {
  base : Mb_base.t;
  mode : Re_encoder.mode;
  rings : (int, Re_cache.t) Hashtbl.t;
  capacity : int;
  mutable id : int;  (* ring exported by getSupportShared / CacheId config *)
  mutable cloned : bool;  (* raise re-process events on cache updates *)
  mutable decoded_bytes : int;
  mutable undecodable_bytes : int;
  mutable ok_pkts : int;
  mutable failed_pkts : int;
}

let default_cost : Southbound.cost_model =
  {
    per_packet = Time.us 390.0;
    op_slowdown = 1.02;
    scan_per_entry = Time.us 1.0;
    serialize_per_chunk = Time.ms 2.0;
    serialize_per_byte = Time.us 0.5;
    deserialize_per_chunk = Time.ms 1.0;
    deserialize_per_byte = Time.us 0.25;
  }

let create engine ?recorder ?telemetry ?(cost = default_cost) ?(capacity_tokens = 65536)
    ?(mode = Re_encoder.Explicit) ?(cache_id = 0) ~name () =
  let base = Mb_base.create engine ?recorder ?telemetry ~name ~kind:"re-decoder" ~cost () in
  Config_tree.set (Mb_base.config base) [ "CacheId" ] [ Json.Int cache_id ];
  Config_tree.set (Mb_base.config base) [ "SyncEvents" ] [ Json.Bool true ];
  {
    base;
    mode;
    rings = Hashtbl.create 4;
    capacity = capacity_tokens;
    id = cache_id;
    cloned = false;
    decoded_bytes = 0;
    undecodable_bytes = 0;
    ok_pkts = 0;
    failed_pkts = 0;
  }

let base t = t.base

let ring t cid =
  match Hashtbl.find_opt t.rings cid with
  | Some r -> r
  | None ->
    let r = Re_cache.create ~capacity:t.capacity () in
    Hashtbl.replace t.rings cid r;
    r

let cache t = ring t t.id
let cache_id t = t.id
let set_cache_id t id = t.id <- id

let shim_expanded_bytes segments =
  List.fold_left
    (fun acc seg ->
      match seg with
      | Packet.Shim { len; _ } -> acc + (len * Payload.token_bytes)
      | Packet.Literal _ -> acc)
    0 segments

(* Read one token for stream [cid]: its own ring first, then the other
   rings — sound for offsets below the caches' split point, where the
   encoder kept them mirrored and the contents are identical. *)
let read_token t cid ~offset =
  match Re_cache.read (ring t cid) ~offset with
  | Some _ as hit -> hit
  | None ->
    Hashtbl.fold
      (fun other r acc ->
        match acc with
        | Some _ -> acc
        | None -> if other = cid then None else Re_cache.read r ~offset)
      t.rings None

(* Reconstruct the payload.  Returns the token sequence, whether every
   shim resolved, and a per-token validity mask: tokens from literals
   or successful lookups are known-good, tokens from failed shim
   lookups are sentinels.  (An implicit-mode decoder that drifted
   produces wrong-but-"valid" content — exactly as undecodable as
   missing content, which the ground-truth comparison decides.) *)
let reconstruct t cid segments =
  let out = ref [] in
  let mask = ref [] in
  let complete = ref true in
  List.iter
    (fun seg ->
      match seg with
      | Packet.Literal p ->
        let toks = Payload.tokens p in
        out := toks :: !out;
        mask := Array.make (Array.length toks) true :: !mask
      | Packet.Shim { offset; len } ->
        let toks = Array.make len (-1) in
        let valid = Array.make len true in
        for i = 0 to len - 1 do
          match read_token t cid ~offset:(offset + i) with
          | Some token -> toks.(i) <- token
          | None ->
            complete := false;
            valid.(i) <- false
        done;
        out := toks :: !out;
        mask := valid :: !mask)
    segments;
  (Array.concat (List.rev !out), !complete, Array.concat (List.rev !mask))

let cache_update t cid packet tokens ~valid ~append_base ~side_effects =
  (match t.mode with
  | Re_encoder.Explicit ->
    (* Position-stamped writes into the stream's own ring; tokens from
       failed shim lookups are skipped rather than written as garbage,
       so one undecodable packet leaves a bounded gap instead of
       corrupting the cache. *)
    let r = ring t cid in
    Array.iteri
      (fun i token -> if valid.(i) then Re_cache.write r ~offset:(append_base + i) ~token)
      tokens
  | Re_encoder.Implicit ->
    (* Classic behaviour: the decoder appends whatever it reconstructed
       at its own head — the desynchronization the baselines exhibit. *)
    ignore (Re_cache.append (ring t cid) tokens));
  ignore side_effects;
  if t.cloned then
    Mb_base.raise_event t.base (Event.Reprocess { key = Hfl.any; packet })

let decode t (p : Packet.t) ~side_effects =
  match p.body with
  | Packet.Raw _ -> Some p
  | Packet.Encoded { cache_id; append_base; segments; orig } ->
    let shim_bytes = shim_expanded_bytes segments in
    let tokens, complete, valid = reconstruct t cache_id segments in
    let correct = complete && Payload.equal (Payload.of_tokens tokens) orig in
    cache_update t cache_id p tokens ~valid ~append_base ~side_effects;
    if correct then begin
      t.ok_pkts <- t.ok_pkts + 1;
      t.decoded_bytes <- t.decoded_bytes + shim_bytes;
      Some { p with body = Packet.Raw orig }
    end
    else begin
      t.failed_pkts <- t.failed_pkts + 1;
      t.undecodable_bytes <- t.undecodable_bytes + shim_bytes;
      Mb_base.record t.base ~kind:"undecodable"
        ~detail:(Printf.sprintf "%dB of shims (cache %d)" shim_bytes cache_id);
      None
    end

let receive t p =
  Mb_base.inject t.base p ~side_effects:true ~work:(fun p ->
      match decode t p ~side_effects:true with
      | Some decoded -> Mb_base.forward t.base decoded
      | None -> ())

let receive_batch t b =
  Mb_base.process_batch t.base b ~side_effects:true
    ~process:(fun p -> decode t p ~side_effects:true)

(* ------------------------------------------------------------------ *)
(* Southbound implementation                                           *)
(* ------------------------------------------------------------------ *)

let set_config t path values =
  let store () =
    match Config_tree.set (Mb_base.config t.base) path values with
    | () -> Ok ()
    | exception Invalid_argument msg -> Error (Errors.Op_failed msg)
  in
  match (path, values) with
  | [ "CacheId" ], [ Json.Int id ] ->
    t.id <- id;
    store ()
  | [ "SyncEvents" ], [ Json.Bool b ] ->
    t.cloned <- t.cloned && b;
    store ()
  | _ -> store ()

let impl t =
  let default = Mb_base.default_impl t.base ~table_entries:(fun () -> 0) in
  {
    default with
    set_config = set_config t;
    get_support_shared =
      (fun () ->
        t.cloned <- true;
        Ok
          (Some
             (Mb_base.seal_raw t.base ~role:Taxonomy.Supporting ~partition:Taxonomy.Shared
                ~key:Hfl.any
                (Re_cache.serialize (cache t)))));
    put_support_shared =
      (fun chunk ->
        if chunk.Chunk.role <> Taxonomy.Supporting || chunk.partition <> Taxonomy.Shared
        then Error (Errors.Illegal_operation "expected shared supporting chunk")
        else
          match Mb_base.unseal_raw t.base chunk with
          | Error e -> Error e
          | Ok plain -> (
            match Re_cache.deserialize plain with
            | imported ->
              Hashtbl.replace t.rings t.id imported;
              Ok ()
            | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg)));
    stats =
      (fun _ ->
        {
          Southbound.empty_stats with
          shared_support_bytes = String.length (Re_cache.serialize (cache t));
        });
    process_packet =
      (fun p ~side_effects ->
        if side_effects then receive t p
        else
          Mb_base.inject t.base p ~side_effects:false ~work:(fun p ->
              ignore (decode t p ~side_effects:false)));
  }

let decoded_bytes t = t.decoded_bytes
let undecodable_bytes t = t.undecodable_bytes
let packets_decoded t = t.ok_pkts
let packets_failed t = t.failed_pkts
