open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

type mapping = {
  m_int_ip : Addr.t;
  m_int_port : int;
  m_ext_ip : Addr.t;
  m_ext_port : int;
  m_proto : Packet.proto;
  m_created : float;
  m_last_active : float;
}

(* Ports 20000..65000 inclusive per external IP. *)
let port_lo = 20000
let port_hi = 65000
let ports_per_ip = port_hi - port_lo + 1

type t = {
  base : Mb_base.t;
  (* Carrier-grade pool: one external IP caps the NAT at ~45k concurrent
     mappings, so large-scale runs hand in a pool and mappings record
     which address they translated to.  [ext_ips.(0)] is the primary. *)
  ext_ips : Addr.t array;
  internal_prefix : Addr.prefix;
  table : mapping State_table.t;
  (* packed (ext ip, port) -> table key, in the flat open-addressing
     core: the int key rides in word [pa] with [pb = 0]. *)
  by_external : Hfl.t Flat_table.t;
  mutable next_slot : int; (* cursor into ip x port slot space *)
  mutable dropped : int;
}

let pack_external ip port = (Addr.to_int ip lsl 16) lor port

let ext_find t ip port =
  let pa = pack_external ip port in
  Flat_table.find t.by_external ~pa ~pb:0 ~h:(Five_tuple.hash_words ~pa ~pb:0)

let ext_mem t ip port =
  let pa = pack_external ip port in
  Flat_table.mem t.by_external ~pa ~pb:0 ~h:(Five_tuple.hash_words ~pa ~pb:0)

let ext_set t ip port key =
  let pa = pack_external ip port in
  Flat_table.replace t.by_external ~pa ~pb:0 ~h:(Five_tuple.hash_words ~pa ~pb:0) key

let ext_remove t ip port =
  let pa = pack_external ip port in
  ignore (Flat_table.remove t.by_external ~pa ~pb:0 ~h:(Five_tuple.hash_words ~pa ~pb:0) : bool)

let nat_granularity = Hfl.[ Dim_src_ip; Dim_src_port; Dim_proto ]

let default_cost : Southbound.cost_model =
  {
    per_packet = Time.us 60.0;
    op_slowdown = 1.02;
    scan_per_entry = Time.us 10.0;
    serialize_per_chunk = Time.us 100.0;
    serialize_per_byte = Time.us 0.02;
    deserialize_per_chunk = Time.us 20.0;
    deserialize_per_byte = Time.us 0.005;
  }

let create engine ?recorder ?telemetry ?(cost = default_cost) ?(external_ips = []) ~external_ip
    ~internal_prefix ~name () =
  let base = Mb_base.create engine ?recorder ?telemetry ~name ~kind:"nat" ~cost () in
  Config_tree.set (Mb_base.config base) [ "external_ip" ]
    [ Json.String (Addr.to_string external_ip) ];
  Config_tree.set (Mb_base.config base) [ "timeout"; "tcp" ] [ Json.Int 300 ];
  Config_tree.set (Mb_base.config base) [ "timeout"; "udp" ] [ Json.Int 60 ];
  {
    base;
    ext_ips = Array.of_list (external_ip :: external_ips);
    internal_prefix;
    table = State_table.create ~granularity:nat_granularity ();
    by_external = Flat_table.create ~capacity:64 ();
    next_slot = 0;
    dropped = 0;
  }

let base t = t.base

let allocate_external t =
  (* Sequential allocation with wrap over the (ip, port) slot space,
     skipping pairs in use. *)
  let nslots = Array.length t.ext_ips * ports_per_ip in
  let rec go slot tried =
    if tried >= nslots then failwith "Nat.allocate_external: port pool exhausted";
    let slot = if slot >= nslots then 0 else slot in
    let ip = t.ext_ips.(slot / ports_per_ip) in
    let port = port_lo + (slot mod ports_per_ip) in
    if not (ext_mem t ip port) then begin
      t.next_slot <- slot + 1;
      (ip, port)
    end
    else go (slot + 1) (tried + 1)
  in
  go t.next_slot 0

let is_outbound t (p : Packet.t) = Addr.in_prefix p.src_ip t.internal_prefix

let process t (p : Packet.t) ~side_effects =
  let ts = Time.to_seconds p.ts in
  if is_outbound t p then begin
    let entry, created =
      State_table.find_or_create_words t.table ~pa:(Five_tuple.word_a_packet p)
        ~pb:(Five_tuple.word_b_packet p)
        ~tuple:(fun () -> Five_tuple.of_packet p)
        ~default:(fun () ->
          let ext_ip, ext_port = allocate_external t in
          {
            m_int_ip = p.src_ip;
            m_int_port = p.src_port;
            m_ext_ip = ext_ip;
            m_ext_port = ext_port;
            m_proto = p.proto;
            m_created = ts;
            m_last_active = ts;
          })
    in
    if created then begin
      ext_set t entry.value.m_ext_ip entry.value.m_ext_port entry.key;
      if side_effects then
        Mb_base.raise_event t.base
          (Event.Introspect
             {
               code = "nat.new_mapping";
               key = entry.key;
               info =
                 Json.Assoc
                   [
                     ("int_ip", Json.String (Addr.to_string entry.value.m_int_ip));
                     ("int_port", Json.Int entry.value.m_int_port);
                     ("ext_port", Json.Int entry.value.m_ext_port);
                     ("proto", Json.String (Packet.proto_to_string entry.value.m_proto));
                   ];
             })
    end;
    entry.value <- { entry.value with m_last_active = ts };
    if entry.moved then
      Mb_base.raise_event t.base (Event.Reprocess { key = entry.key; packet = p });
    if side_effects then
      Some
        {
          p with
          src_ip = entry.value.m_ext_ip;
          src_port = entry.value.m_ext_port;
        }
    else None
  end
  else begin
    (* Inbound: reverse translation by destination (external IP, port).
       The stored key is exact at NAT granularity, so the reverse map
       resolves with two O(1) flat probes — no table scan. *)
    match ext_find t p.dst_ip p.dst_port with
    | None ->
      t.dropped <- t.dropped + 1;
      None
    | Some key -> (
      match State_table.find_key t.table key with
      | Some entry ->
        entry.value <- { entry.value with m_last_active = ts };
        if entry.moved then
          Mb_base.raise_event t.base (Event.Reprocess { key = entry.key; packet = p });
        if side_effects then
          Some { p with dst_ip = entry.value.m_int_ip; dst_port = entry.value.m_int_port }
        else None
      | None ->
        t.dropped <- t.dropped + 1;
        None)
  end

let receive t p =
  Mb_base.inject t.base p ~side_effects:true ~work:(fun p ->
      match process t p ~side_effects:true with
      | Some translated -> Mb_base.forward t.base translated
      | None -> ())

(* Batch path: members are translated in index order — external-port
   allocation is cursor-based, so processing order is part of the NAT's
   observable state and must match the scalar path's. *)
let receive_batch t b =
  Mb_base.process_batch t.base b ~side_effects:true
    ~process:(fun p -> process t p ~side_effects:true)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let mapping_to_json m =
  Json.Assoc
    [
      ("int_ip", Json.String (Addr.to_string m.m_int_ip));
      ("int_port", Json.Int m.m_int_port);
      ("ext_ip", Json.String (Addr.to_string m.m_ext_ip));
      ("ext_port", Json.Int m.m_ext_port);
      ("proto", Json.String (Packet.proto_to_string m.m_proto));
      ("created", Json.Float m.m_created);
      ("last_active", Json.Float m.m_last_active);
    ]

let mapping_of_json ~default_ext_ip j =
  (* [created] is absent when restoring from introspection-event info
     (failure recovery) — default it.  [ext_ip] is absent in chunks
     sealed before the pool extension: those NATs had one address. *)
  let created =
    match Json.member "created" j with Json.Null -> 0.0 | v -> Json.get_float v
  in
  let ext_ip =
    match Json.member "ext_ip" j with
    | Json.Null -> default_ext_ip
    | v -> Addr.of_string (Json.get_string v)
  in
  {
    m_int_ip = Addr.of_string (Json.get_string (Json.member "int_ip" j));
    m_int_port = Json.get_int (Json.member "int_port" j);
    m_ext_ip = ext_ip;
    m_ext_port = Json.get_int (Json.member "ext_port" j);
    m_proto = Packet.proto_of_string (Json.get_string (Json.member "proto" j));
    m_created = created;
    (* Timers are non-critical state: reset on import (§2, failure
       recovery). *)
    m_last_active = created;
  }

let chunk_of_entry t (entry : mapping State_table.entry) =
  Mb_base.seal_json t.base ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow
    ~key:entry.key
    (mapping_to_json entry.value)

let get_support_perflow t hfl =
  match Hfl.compatible_with_granularity hfl (State_table.granularity t.table) with
  | false -> Error Errors.Granularity_too_fine
  | true ->
    (* Skip entries an earlier pending transfer already exported. *)
    let entries =
      List.filter
        (fun (e : mapping State_table.entry) -> not e.moved)
        (State_table.matching t.table hfl)
    in
    List.iter (fun (e : mapping State_table.entry) -> e.moved <- true) entries;
    State_table.add_move_filter t.table hfl;
    Ok (List.map (chunk_of_entry t) entries)

let put_support_perflow t (chunk : Chunk.t) =
  if chunk.role <> Taxonomy.Supporting || chunk.partition <> Taxonomy.Per_flow then
    Error (Errors.Illegal_operation "expected per-flow supporting chunk")
  else
    match Mb_base.unseal_json t.base chunk with
    | Error e -> Error e
    | Ok json -> (
      match mapping_of_json ~default_ext_ip:t.ext_ips.(0) json with
      | m ->
        State_table.insert t.table ~key:chunk.key m;
        ext_set t m.m_ext_ip m.m_ext_port chunk.key;
        Ok ()
      | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg))

let del_support_perflow t hfl =
  let removed = State_table.remove_moved_matching t.table hfl in
  State_table.remove_move_filter t.table hfl;
  List.iter
    (fun (e : mapping State_table.entry) -> ext_remove t e.value.m_ext_ip e.value.m_ext_port)
    removed;
  Ok (List.length removed)

let stats t hfl =
  let entries = State_table.matching t.table hfl in
  let bytes =
    List.fold_left (fun acc e -> acc + Chunk.size_bytes (chunk_of_entry t e)) 0 entries
  in
  {
    Southbound.empty_stats with
    perflow_support_chunks = List.length entries;
    perflow_support_bytes = bytes;
  }

(* Static mappings (port forwarding) installed through configuration —
   also the failure-recovery application's restore path: critical
   state re-created via the configuring interface, with non-critical
   timers at defaults. *)
let set_config t path values =
  let store () =
    match Config_tree.set (Mb_base.config t.base) path values with
    | () -> Ok ()
    | exception Invalid_argument msg -> Error (Errors.Op_failed msg)
  in
  match path with
  | [ "static_mappings" ] -> (
    match List.map (mapping_of_json ~default_ext_ip:t.ext_ips.(0)) values with
    | ms ->
      List.iter
        (fun m ->
          let key =
            [
              Hfl.Src_ip (Addr.prefix m.m_int_ip 32);
              Hfl.Src_port m.m_int_port;
              Hfl.Proto m.m_proto;
            ]
          in
          State_table.insert t.table ~key m;
          ext_set t m.m_ext_ip m.m_ext_port key)
        ms;
      store ()
    | exception Invalid_argument msg -> Error (Errors.Op_failed msg))
  | _ -> store ()

let impl t =
  let default =
    Mb_base.default_impl t.base ~table_entries:(fun () -> State_table.size t.table)
  in
  {
    default with
    granularity = nat_granularity;
    set_config = set_config t;
    get_support_perflow = get_support_perflow t;
    put_support_perflow = put_support_perflow t;
    del_support_perflow = del_support_perflow t;
    stats = stats t;
    process_packet =
      (fun p ~side_effects ->
        if side_effects then receive t p
        else
          Mb_base.inject t.base p ~side_effects:false ~work:(fun p ->
              ignore (process t p ~side_effects:false)));
  }

let mappings t = State_table.fold t.table ~init:[] ~f:(fun acc e -> e.value :: acc)
let mapping_count t = State_table.size t.table

let lookup_external t ~ext_port =
  (* Port-only lookup: scan the (small) IP pool for the first hit. *)
  let n = Array.length t.ext_ips in
  let rec go i =
    if i >= n then None
    else
      match ext_find t t.ext_ips.(i) ext_port with
      | None -> go (i + 1)
      | Some key -> (
        match State_table.find_key t.table key with
        | Some e -> Some e.value
        | None -> None)
  in
  go 0

let packets_dropped t = t.dropped
