(** Generic per-flow state table used by all middleboxes.

    Entries are keyed at the owning MB's granularity (a projection of
    the five-tuple onto the dimensions it distinguishes, §4.1.2) and
    carry the [moved] flag the paper adds to Bro's [Connection] class:
    once a get has exported an entry, updates to it raise re-process
    events until the entry is deleted.

    Lookups by five-tuple are O(1); lookups by header-field list (gets,
    deletes, stats) are the linear scan the paper's prototype performs
    (§7, footnote 6). *)

type 'a entry = {
  key : Openmb_net.Hfl.t;  (** The entry's state key at MB granularity. *)
  id : string Lazy.t;
      (** Memoized [Hfl.to_string key], so index maintenance and
          coarse-key bookkeeping never re-stringify the key. *)
  mutable value : 'a;
  mutable moved : bool;
      (** Set when the entry has been exported by a get; packet-driven
          updates must then raise re-process events. *)
}

type 'a t

val create :
  ?indexed:bool ->
  ?packed:bool ->
  granularity:Openmb_net.Hfl.granularity ->
  unit ->
  'a t
(** With [indexed] (default false), a secondary source-address index
    accelerates {!matching} for exact-source requests from a full scan
    to O(matches) — the paper's footnote-6 suggestion of adopting
    switch-style lookup structures.  Results are identical either
    way.

    Tables are keyed by packed integer five-tuples
    ({!Openmb_net.Five_tuple.pack}), so the packet path never builds a
    field list or key string.  Coarse granularities participate by
    masking out the bits of absent dimensions, so every tuple with the
    same granularity projection probes the same slot; only imported
    keys whose shape differs from the table's granularity (wildcard
    prefixes, extra or missing dimensions) fall back to string keys.
    [packed:false] forces the all-string legacy layout (used by the
    equivalence tests); behaviour is identical either way. *)

val granularity : 'a t -> Openmb_net.Hfl.granularity

val size : 'a t -> int
(** Number of entries (the scan cost driver). *)

val key_of : 'a t -> Openmb_net.Five_tuple.t -> Openmb_net.Hfl.t
(** Projection of a tuple onto this table's granularity. *)

val find : 'a t -> Openmb_net.Five_tuple.t -> 'a entry option
(** Exact-direction lookup. *)

val find_bidir : 'a t -> Openmb_net.Five_tuple.t -> 'a entry option
(** Lookup trying the tuple, then its reverse — for connection-oriented
    MBs whose state is keyed on the originator direction. *)

val find_or_create :
  'a t -> Openmb_net.Five_tuple.t -> default:(unit -> 'a) -> 'a entry * bool
(** Bidirectional find; on miss, creates an entry keyed on the tuple as
    given.  The boolean is [true] when the entry was created. *)

val find_or_create_words :
  'a t ->
  pa:int ->
  pb:int ->
  tuple:(unit -> Openmb_net.Five_tuple.t) ->
  default:(unit -> 'a) ->
  'a entry * bool
(** {!find_or_create} probing directly with the tuple's two packed
    words ({!Openmb_net.Five_tuple.word_a}/[word_b]) — the batch paths
    pass a {!Openmb_net.Packet_batch}'s key columns and only
    materialize the tuple (via [tuple ()]) when an entry must be
    created, so the hit path allocates nothing. *)

val find_key : 'a t -> Openmb_net.Hfl.t -> 'a entry option
(** Exact lookup under a stored key (the key as {!insert} would store
    it): an O(1) flat probe when the key has the table's granularity
    shape, the string-keyed fallback otherwise.  Unlike {!matching}
    this never scans. *)

val insert : 'a t -> key:Openmb_net.Hfl.t -> 'a -> unit
(** Install an entry under an explicit key (state import).  Replaces
    any existing entry with that key and clears its [moved] flag. *)

val matching : 'a t -> Openmb_net.Hfl.t -> 'a entry list
(** Linear scan for entries whose key is subsumed by the request. *)

val iter_matching : 'a t -> Openmb_net.Hfl.t -> ('a entry -> unit) -> unit
(** [iter_matching t hfl f] applies [f] to every entry {!matching}
    would return, without building the list — the batch-export
    iteration used when a get streams a large table. *)

val remove_matching : 'a t -> Openmb_net.Hfl.t -> 'a entry list
(** Remove and return all matching entries. *)

val remove_moved_matching : 'a t -> Openmb_net.Hfl.t -> 'a entry list
(** Remove and return the matching entries whose [moved] flag is set —
    the delete that completes a move.  Entries re-imported since the
    export (flag cleared by {!insert}) belong to a newer transfer and
    are kept. *)

val remove_key : 'a t -> Openmb_net.Hfl.t -> bool

val add_move_filter : 'a t -> Openmb_net.Hfl.t -> unit
(** Register an in-progress move's scope: entries created under a
    registered filter are born with [moved] set, so flows that start
    mid-move are re-processed at the destination rather than stranding
    state here.  Called by the MB's get; removed by the matching
    delete. *)

val remove_move_filter : 'a t -> Openmb_net.Hfl.t -> unit
(** Unregister a move filter (compared up to constraint order). *)

val iter : 'a t -> ('a entry -> unit) -> unit

val fold : 'a t -> init:'b -> f:('b -> 'a entry -> 'b) -> 'b

val clear : 'a t -> unit
